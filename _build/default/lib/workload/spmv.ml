(* Sparse matrix-vector multiply, CSR layout (scientific/graph flavour):
   the inner loop gathers x[col[j]] — a load whose address comes from
   another load — while the inner-loop bound itself is loaded per row.
   Baseline hardware overlaps many gathers; taint-style defenses must hold
   them until their index loads bind, which is exactly STT's expensive
   case.  Levioso only ties each gather to its own quickly-resolving loop
   branch instance. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let rows = 6000
let nnz_per_row_max = 4
let x_size = 16384

let perm_base = Layout.data_base  (* random row visit order: rows entries *)
let row_ptr_base = Layout.data_base + 8192  (* rows+1 entries *)
let x_base = Layout.data_base + 16384
let col_base = Layout.data_base + 65536  (* col indices and values interleaved *)

let mem_init mem =
  let rng = Layout.rng 11 in
  let cursor = ref 0 in
  for r = 0 to rows - 1 do
    mem.(row_ptr_base + r) <- !cursor;
    let nnz = Rng.int_in rng 1 nnz_per_row_max in
    for _ = 1 to nnz do
      mem.(col_base + (2 * !cursor)) <- Rng.int rng x_size;
      mem.(col_base + (2 * !cursor) + 1) <- Rng.int_in rng 1 9;
      incr cursor
    done
  done;
  mem.(row_ptr_base + rows) <- !cursor;
  for i = 0 to x_size - 1 do
    mem.(x_base + i) <- Rng.int rng 100
  done;
  (* rows are visited in a shuffled order (work-queue style), so the
     row-bound loads are themselves cache misses and the inner-loop branch
     stays unresolved while gathers pile up behind it *)
  let order = Array.init rows Fun.id in
  Rng.shuffle rng order;
  Array.iteri (fun i r -> mem.(perm_base + i) <- r) order

let build b =
  let r = Builder.fresh_reg b in
  let row = Builder.fresh_reg b in
  let j = Builder.fresh_reg b in
  let row_end = Builder.fresh_reg b in
  let col = Builder.fresh_reg b in
  let v = Builder.fresh_reg b in
  let x = Builder.fresh_reg b in
  let acc = Builder.fresh_reg b in
  let idx2 = Builder.fresh_reg b in
  Builder.mov b acc (Ir.Imm 0);
  Builder.for_down b ~counter:r ~from:(Ir.Imm rows) (fun () ->
      Builder.load b row (Ir.Reg r) (Ir.Imm perm_base);
      Builder.load b j (Ir.Reg row) (Ir.Imm row_ptr_base);
      Builder.load b row_end (Ir.Reg row) (Ir.Imm (row_ptr_base + 1));
      Builder.while_ b
        ~cond:(fun () -> (Ir.Lt, Ir.Reg j, Ir.Reg row_end))
        (fun () ->
          Builder.alu b Ir.Shl idx2 (Ir.Reg j) (Ir.Imm 1);
          Builder.load b col (Ir.Reg idx2) (Ir.Imm col_base);
          Builder.load b v (Ir.Reg idx2) (Ir.Imm (col_base + 1));
          Builder.load b x (Ir.Reg col) (Ir.Imm x_base);
          Builder.mul b x (Ir.Reg x) (Ir.Reg v);
          Builder.add b acc (Ir.Reg acc) (Ir.Reg x);
          Builder.add b j (Ir.Reg j) (Ir.Imm 1)));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg acc);
  Builder.halt b

let workload =
  Workload.make ~name:"spmv"
    ~description:"CSR sparse matrix-vector multiply with indexed gathers"
    ~build ~mem_init
