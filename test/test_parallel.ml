(* The domain pool: ordering, degeneration to serial, exception
   propagation — and the property the evaluation harness rests on, that
   a parallel (workload x policy) matrix is bit-identical to a serial
   one. *)

module Parallel = Levioso_util.Parallel
module Ir = Levioso_ir.Ir
module Parser = Levioso_ir.Parser
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Summary = Levioso_uarch.Summary
module Json = Levioso_telemetry.Json
module Registry = Levioso_core.Registry

let test_map_preserves_order () =
  Parallel.with_pool ~size:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "same as List.map" (List.map (fun x -> x * x) xs)
        (Parallel.map pool (fun x -> x * x) xs))

let test_empty_and_singleton () =
  Parallel.with_pool ~size:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Parallel.map pool Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Parallel.map pool Fun.id [ 7 ]))

let test_size_one_is_serial () =
  Parallel.with_pool ~size:1 (fun pool ->
      Alcotest.(check int) "clamped size" 1 (Parallel.size pool);
      let caller = Domain.self () in
      let ran_in =
        Parallel.map pool (fun _ -> Domain.self ()) (List.init 8 Fun.id)
      in
      List.iter
        (fun d ->
          Alcotest.(check bool) "ran in calling domain" true (d = caller))
        ran_in)

let test_size_clamped () =
  Parallel.with_pool ~size:(-3) (fun pool ->
      Alcotest.(check int) "negative clamps to 1" 1 (Parallel.size pool))

let test_exceptions_propagate () =
  Parallel.with_pool ~size:4 (fun pool ->
      Alcotest.check_raises "raises" (Failure "boom-3") (fun () ->
          ignore
            (Parallel.map pool
               (fun x -> if x = 3 then failwith "boom-3" else x)
               (List.init 10 Fun.id)
              : int list));
      (* lowest-indexed failure wins, whatever order workers finish in *)
      Alcotest.check_raises "first by index" (Failure "boom-2") (fun () ->
          ignore
            (Parallel.map pool
               (fun x -> if x >= 2 then failwith (Printf.sprintf "boom-%d" x) else x)
               (List.init 10 Fun.id)
              : int list));
      (* the pool survives a failed map *)
      Alcotest.(check (list int))
        "pool usable after exception" [ 0; 1; 2 ]
        (Parallel.map pool Fun.id [ 0; 1; 2 ]))

let test_map_after_shutdown_raises () =
  let pool = Parallel.create ~size:2 () in
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Parallel.map: pool has been shut down") (fun () ->
      ignore (Parallel.map pool Fun.id [ 1 ] : int list))

(* A submitter blocked on a full bounded queue when shutdown begins must
   be woken and rejected — not left to enqueue a task behind the Stop
   markers that no worker will ever run (stranding its await forever and
   hanging the daemon's shutdown join). *)
let test_blocked_submit_rejected_on_shutdown () =
  let pool = Parallel.create ~size:2 ~max_pending:1 () in
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let gated () =
    Atomic.incr started;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  (* occupy both workers, then fill the single queue slot *)
  let _w1 = Parallel.async pool gated in
  let _w2 = Parallel.async pool gated in
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  let filler = Parallel.async pool (fun () -> ()) in
  let rejected = Atomic.make false in
  let submitter =
    Thread.create
      (fun () ->
        match Parallel.async pool (fun () -> ()) with
        | (_ : unit Parallel.future) -> ()
        | exception Invalid_argument _ -> Atomic.set rejected true)
      ()
  in
  Thread.delay 0.05;
  let shutter = Thread.create (fun () -> Parallel.shutdown pool) () in
  Thread.delay 0.05;
  Atomic.set release true;
  Thread.join submitter;
  Thread.join shutter;
  Alcotest.(check bool) "blocked submit rejected" true (Atomic.get rejected);
  (* work enqueued before shutdown still drains *)
  Parallel.await filler

(* --- parallel simulation determinism ------------------------------- *)

let kernel =
  {|
      mov r1, #0
      mov r2, #0
    head:
      bge r1, #40, out
      and r3, r1, #63
      load r4, [r3 + #1024]
      rem r5, r4, #3
      beq r5, #0, skip
      add r2, r2, r4
    skip:
      add r1, r1, #1
      jump head
    out:
      store [r0 + #500], r2
      halt
  |}

let kernel_mem mem =
  for i = 0 to 63 do
    mem.(1024 + i) <- (i * 17) mod 29
  done

let config = { Config.default with Config.mem_words = 65536 }

let summary_string policy =
  let pipe =
    Pipeline.create ~mem_init:kernel_mem config
      ~policy:(Registry.find_exn policy) (Parser.parse_exn kernel)
  in
  Pipeline.run pipe;
  Json.to_string (Summary.of_pipeline ~workload:"kernel" ~policy pipe)

let test_parallel_matrix_bit_identical () =
  let policies =
    [ "unsafe"; "fence"; "delay"; "dom"; "stt"; "levioso"; "levioso-static" ]
  in
  let serial = List.map summary_string policies in
  let parallel =
    Parallel.with_pool ~size:4 (fun pool ->
        Parallel.map pool summary_string policies)
  in
  List.iter2
    (fun s p -> Alcotest.(check string) "summary bit-identical" s p)
    serial parallel

(* The observational timing hook behind the serve daemon's queue-wait /
   execution-time accounting: stamps exist exactly once a future
   settles, are ordered, and show real queue wait on a saturated pool.
   (A size-1 pool runs async inline at submission, so saturation needs
   two real workers held at a gate.) *)
let test_future_times () =
  Parallel.with_pool ~size:2 (fun pool ->
      let release = Atomic.make false in
      let gate () =
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done
      in
      let slow_a = Parallel.async pool gate in
      let slow_b = Parallel.async pool gate in
      let fast = Parallel.async pool (fun () -> ()) in
      Alcotest.(check bool) "no stamps while queued" true
        (Parallel.times fast = None);
      Thread.delay 0.03;
      Atomic.set release true;
      Parallel.await slow_a;
      Parallel.await slow_b;
      Parallel.await fast;
      (match (Parallel.times slow_a, Parallel.times slow_b, Parallel.times fast)
       with
      | Some a1, Some a2, Some b ->
        let ordered (tm : Parallel.times) =
          tm.Parallel.submitted_s <= tm.Parallel.started_s +. 1e-9
          && tm.Parallel.started_s <= tm.Parallel.finished_s +. 1e-9
        in
        Alcotest.(check bool) "stamps ordered" true
          (ordered a1 && ordered a2 && ordered b);
        Alcotest.(check bool) "queued future started after a worker freed" true
          (b.Parallel.started_s
          >= Float.min a1.Parallel.finished_s a2.Parallel.finished_s -. 1e-6);
        Alcotest.(check bool) "queue wait visible on a saturated pool" true
          (b.Parallel.started_s -. b.Parallel.submitted_s >= 0.02)
      | _ -> Alcotest.fail "settled futures must carry stamps");
      let boom = Parallel.async pool (fun () -> failwith "boom") in
      (match Parallel.await boom with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "expected the failure to propagate");
      Alcotest.(check bool) "failed future still stamped" true
        (Parallel.times boom <> None))

let suite =
  ( "parallel",
    [
      Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
      Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
      Alcotest.test_case "size 1 degenerates to serial" `Quick
        test_size_one_is_serial;
      Alcotest.test_case "size is clamped" `Quick test_size_clamped;
      Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
      Alcotest.test_case "map after shutdown raises" `Quick
        test_map_after_shutdown_raises;
      Alcotest.test_case "blocked submit rejected on shutdown" `Quick
        test_blocked_submit_rejected_on_shutdown;
      Alcotest.test_case "future timing stamps" `Quick test_future_times;
      Alcotest.test_case "parallel matrix bit-identical to serial" `Slow
        test_parallel_matrix_bit_identical;
    ] )
