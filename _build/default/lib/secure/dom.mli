(** Delay-on-Miss (modelled on Sakalis et al., ISCA'19) — the stand-in for
    the paper's second prior defense.

    Speculative loads (those with an older unresolved branch) are split by
    where their data currently lives:

    - {b L1 hits} execute immediately but {e invisibly}: the access leaves
      no microarchitectural footprint (no fill, no replacement update), so
      a squashed hit is indistinguishable from one that never happened;
    - {b misses} are delayed until the load is bound (no older unresolved
      branch) — a miss would have to change cache state to complete, and
      that change is exactly the Spectre transmission.

    Non-speculative loads behave normally.  Flushes are delayed while
    speculative (they too mutate cache state).

    Coverage is {e comprehensive} in the same sense as full delay: the
    defense keys on the transmission, not on where the secret came from,
    so it blocks both the sandbox gadget and the non-speculative-secret
    gadget.  Its cost sits between the unsafe baseline and full delay:
    L1-resident working sets speculate freely. *)

val maker : Levioso_uarch.Pipeline.policy_maker
