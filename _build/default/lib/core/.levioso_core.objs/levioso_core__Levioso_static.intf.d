lib/core/levioso_static.mli: Levioso_uarch
