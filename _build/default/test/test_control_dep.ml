module Cfg = Levioso_ir.Cfg
module Parser = Levioso_ir.Parser
module Control_dep = Levioso_analysis.Control_dep
module Int_set = Levioso_analysis.Control_dep.Int_set

let analyze src =
  let cfg = Cfg.build (Parser.parse_exn src) in
  (cfg, Control_dep.compute cfg)

let deps_of cd pc = Int_set.elements (Control_dep.of_pc cd pc)

let test_if_then_else () =
  let _, cd =
    analyze
      {|
        beq r1, #0, else_    ; pc 0 (branch)
        mov r2, #1           ; pc 1: dep on 0
        jump join            ; pc 2: dep on 0
      else_:
        mov r2, #2           ; pc 3: dep on 0
      join:
        halt                 ; pc 4: free
      |}
  in
  Alcotest.(check (list int)) "then arm" [ 0 ] (deps_of cd 1);
  Alcotest.(check (list int)) "else arm" [ 0 ] (deps_of cd 3);
  Alcotest.(check (list int)) "join free" [] (deps_of cd 4);
  Alcotest.(check (list int)) "branch itself free" [] (deps_of cd 0)

let test_loop_body_depends_on_header () =
  let _, cd =
    analyze
      {|
        mov r1, #0       ; pc 0: free
      head:
        bge r1, #10, out ; pc 1: loop branch, control-dep on itself (loop)
        add r1, r1, #1   ; pc 2: dep on 1
        jump head        ; pc 3: dep on 1
      out:
        halt             ; pc 4: free
      |}
  in
  Alcotest.(check (list int)) "body" [ 1 ] (deps_of cd 2);
  Alcotest.(check (list int)) "exit free" [] (deps_of cd 4);
  (* The loop header re-executes depending on its own previous outcome. *)
  Alcotest.(check (list int)) "header self-dependence" [ 1 ] (deps_of cd 1)

let test_nested () =
  let _, cd =
    analyze
      {|
        beq r1, #0, out     ; pc 0
        beq r2, #0, inner   ; pc 1: dep on 0
        mov r3, #1          ; pc 2: dep on 0 and 1
      inner:
        mov r4, #1          ; pc 3: dep on 0
      out:
        halt                ; pc 4: free
      |}
  in
  Alcotest.(check (list int)) "inner branch" [ 0 ] (deps_of cd 1);
  (* Control dependence is direct, not transitive: pc 2 depends on the
     inner branch only (the outer dependence is carried by pc 1 itself). *)
  Alcotest.(check (list int)) "doubly nested" [ 1 ] (deps_of cd 2);
  Alcotest.(check (list int)) "after inner join" [ 0 ] (deps_of cd 3);
  Alcotest.(check (list int)) "after outer join" [] (deps_of cd 4)

let test_region_size () =
  let _, cd =
    analyze
      {|
        beq r1, #0, skip  ; pc 0
        mov r2, #1        ; pc 1
        mov r3, #1        ; pc 2
      skip:
        halt              ; pc 3
      |}
  in
  Alcotest.(check int) "two instrs in region" 2 (Control_dep.region_size cd 0)

let test_straight_line_all_free () =
  let _, cd = analyze {|
      mov r1, #1
      mov r2, #2
      halt
    |} in
  List.iter
    (fun pc -> Alcotest.(check (list int)) "free" [] (deps_of cd pc))
    [ 0; 1; 2 ]

let suite =
  ( "control-dep",
    [
      Alcotest.test_case "if-then-else" `Quick test_if_then_else;
      Alcotest.test_case "loop body" `Quick test_loop_body_depends_on_header;
      Alcotest.test_case "nested" `Quick test_nested;
      Alcotest.test_case "region size" `Quick test_region_size;
      Alcotest.test_case "straight line" `Quick test_straight_line_all_free;
    ] )
