(** Greedy minimization of failing programs.

    Given a predicate [keep] that holds on a failing program ("this still
    reproduces the bug"), {!run} searches for a smaller/simpler program on
    which [keep] still holds, by iterating three passes to a fixpoint:

    - {b block removal} (ddmin-style): delete contiguous instruction
      ranges of halving size, remapping branch/jump targets across the
      gap (targets inside a deleted range collapse to its start);
    - {b instruction weakening}: replace single instructions with an
      architectural no-op (a write to r0), which keeps all targets
      stable;
    - {b operand simplification}: registers become [#0], immediates head
      toward zero by halving (this is also what shrinks loop bounds,
      since loop trip counts are immediates moved into counter
      registers).

    Every candidate is checked with {!Levioso_ir.Ir.validate} before
    [keep] is consulted, so [keep] only ever sees well-formed programs.
    The search is deterministic and bounded by [budget] calls to [keep]. *)

val run :
  ?budget:int ->
  keep:(Levioso_ir.Ir.program -> bool) ->
  Levioso_ir.Ir.program ->
  Levioso_ir.Ir.program
(** [run ~keep p] returns a program on which [keep] holds — [p] itself if
    nothing smaller reproduces (or if [keep p] is already false, in which
    case there is nothing to preserve and [p] comes straight back).
    [budget] defaults to 2000 predicate evaluations. *)
