lib/workload/suite.mli: Workload
