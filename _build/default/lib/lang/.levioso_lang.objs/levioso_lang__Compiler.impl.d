lib/lang/compiler.ml: Codegen Lparser
