examples/source_spectre.ml: Array Levioso_core Levioso_lang Levioso_uarch List Printf
