lib/workload/layout.ml: Levioso_util
