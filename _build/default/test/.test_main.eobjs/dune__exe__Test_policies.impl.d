test/test_policies.ml: Alcotest Array Levioso_core Levioso_ir Levioso_uarch List Printf
