test/test_opt.ml: Alcotest Array Levioso_ir Levioso_lang Levioso_opt Levioso_workload List Printf
