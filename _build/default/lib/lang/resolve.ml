module String_set = Set.Make (String)
module String_map = Map.Make (String)

let builtins = [ "load"; "store"; "flush"; "rdcycle" ]

(* every call site (callee, arity) in an expression *)
let rec expr_calls acc = function
  | Ast.Lit _ | Ast.Var _ -> acc
  | Ast.Binop (_, a, b) -> expr_calls (expr_calls acc a) b
  | Ast.Neg e | Ast.Not e | Ast.Load e | Ast.Rdcycle (Some e) -> expr_calls acc e
  | Ast.Rdcycle None -> acc
  | Ast.Call (f, args) ->
    List.fold_left expr_calls ((f, List.length args) :: acc) args

let rec block_calls acc stmts = List.fold_left stmt_calls acc stmts

and stmt_calls acc = function
  | Ast.Decl (_, e) | Ast.Assign (_, e) | Ast.Flush e | Ast.Expr_stmt e ->
    expr_calls acc e
  | Ast.Store (a, v) -> expr_calls (expr_calls acc a) v
  | Ast.If (c, t, e) ->
    let acc = expr_calls acc c in
    let acc = block_calls acc t in
    Option.fold ~none:acc ~some:(block_calls acc) e
  | Ast.While (c, b) -> block_calls (expr_calls acc c) b
  | Ast.Return (Some e) -> expr_calls acc e
  | Ast.Return None | Ast.Halt -> acc

(* variable discipline within one function: declared-before-use, no
   redeclaration *)
let check_vars (fn : Ast.fn) errors =
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let declared = ref String_set.empty in
  List.iter
    (fun p ->
      if String_set.mem p !declared then
        err "fn %s: duplicate parameter %s" fn.Ast.name p;
      declared := String_set.add p !declared)
    fn.Ast.params;
  let rec use_expr = function
    | Ast.Lit _ | Ast.Rdcycle None -> ()
    | Ast.Var x ->
      if not (String_set.mem x !declared) then
        err "fn %s: use of undeclared variable %s" fn.Ast.name x
    | Ast.Binop (_, a, b) ->
      use_expr a;
      use_expr b
    | Ast.Neg e | Ast.Not e | Ast.Load e | Ast.Rdcycle (Some e) -> use_expr e
    | Ast.Call (_, args) -> List.iter use_expr args
  in
  let rec walk_block stmts = List.iter walk_stmt stmts
  and walk_stmt = function
    | Ast.Decl (x, e) ->
      use_expr e;
      if String_set.mem x !declared then
        err "fn %s: duplicate declaration of %s" fn.Ast.name x;
      declared := String_set.add x !declared
    | Ast.Assign (x, e) ->
      use_expr e;
      if not (String_set.mem x !declared) then
        err "fn %s: assignment to undeclared variable %s" fn.Ast.name x
    | Ast.If (c, t, e) ->
      use_expr c;
      walk_block t;
      Option.iter walk_block e
    | Ast.While (c, b) ->
      use_expr c;
      walk_block b
    | Ast.Store (a, v) ->
      use_expr a;
      use_expr v
    | Ast.Flush e | Ast.Expr_stmt e -> use_expr e
    | Ast.Return (Some e) -> use_expr e
    | Ast.Return None | Ast.Halt -> ()
  in
  walk_block fn.Ast.body

(* depth-first cycle detection over the call graph *)
let check_recursion fns errors =
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let table =
    List.fold_left
      (fun m (f : Ast.fn) -> String_map.add f.Ast.name f m)
      String_map.empty fns
  in
  let state : (string, [ `Visiting | `Done ]) Hashtbl.t = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> ()
    | Some `Visiting -> err "recursion through %s is not supported (no stack)" name
    | None -> (
      match String_map.find_opt name table with
      | None -> ()
      | Some f ->
        Hashtbl.replace state name `Visiting;
        List.iter (fun (callee, _) -> visit callee) (block_calls [] f.Ast.body);
        Hashtbl.replace state name `Done)
  in
  List.iter (fun (f : Ast.fn) -> visit f.Ast.name) fns

let check_main_returns (main : Ast.fn) errors =
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let rec walk stmts = List.iter stmt stmts
  and stmt = function
    | Ast.Return (Some _) -> err "main cannot return a value; store it instead"
    | Ast.If (_, t, e) ->
      walk t;
      Option.iter walk e
    | Ast.While (_, b) -> walk b
    | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Flush _ | Ast.Expr_stmt _
    | Ast.Return None | Ast.Halt ->
      ()
  in
  walk main.Ast.body

let check fns =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let names = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.fn) ->
      if List.mem f.Ast.name builtins then
        err "fn %s shadows a builtin" f.Ast.name;
      if Hashtbl.mem names f.Ast.name then err "duplicate function %s" f.Ast.name;
      Hashtbl.replace names f.Ast.name (List.length f.Ast.params))
    fns;
  (match List.find_opt (fun (f : Ast.fn) -> f.Ast.name = "main") fns with
  | None -> err "no main function"
  | Some main ->
    if main.Ast.params <> [] then err "main takes no parameters";
    check_main_returns main errors);
  List.iter
    (fun (f : Ast.fn) ->
      List.iter
        (fun (callee, arity) ->
          if List.mem callee builtins then
            err "fn %s: %s is a builtin, not a function call target" f.Ast.name
              callee
          else
            match Hashtbl.find_opt names callee with
            | None -> err "fn %s: call to undefined function %s" f.Ast.name callee
            | Some expected when expected <> arity ->
              err "fn %s: %s expects %d argument(s), got %d" f.Ast.name callee
                expected arity
            | Some _ -> ())
        (block_calls [] f.Ast.body);
      check_vars f errors)
    fns;
  check_recursion fns errors;
  if !errors = [] then Ok () else Error (List.rev !errors)
