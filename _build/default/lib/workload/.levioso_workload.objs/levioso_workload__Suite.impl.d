lib/workload/suite.ml: Bsearch Compact Fsm Graph Hashjoin Histogram List Matmul Pchase Printf Sort Spmv Stream String Strsearch Treewalk Workload
