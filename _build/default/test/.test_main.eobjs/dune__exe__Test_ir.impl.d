test/test_ir.ml: Alcotest Levioso_ir List Result String
