lib/analysis/branch_dep.mli: Control_dep Levioso_ir
