lib/workload/levsuite.ml: Array Layout Levioso_lang Levioso_opt Levioso_util List Printf String Workload
