type clock = unit -> float

type finished = {
  trace : string;
  id : int;
  parent : int;
  name : string;
  start_s : float;
  stop_s : float;
  attrs : (string * string) list;
}

type span = {
  sp_trace : string;
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_start : float;
  mutable sp_attrs : (string * string) list;  (* reversed *)
}

(* One buffer per domain: a connection-handler thread and a pool worker
   never share a mutex, and threads within one domain (the handler
   systhreads all live on domain 0) serialize on their buffer's own
   lock only while consing one record. *)
type buffer = { bmu : Mutex.t; mutable items : finished list }

type t = {
  clock : clock;
  epoch : float;
  next_id : int Atomic.t;
  mu : Mutex.t;  (* guards [buffers] growth only *)
  buffers : (int, buffer) Hashtbl.t;
}

let create ?(clock = Unix.gettimeofday) () =
  {
    clock;
    epoch = clock ();
    next_id = Atomic.make 0;
    mu = Mutex.create ();
    buffers = Hashtbl.create 8;
  }

let now t = t.clock ()

let trace_counter = Atomic.make 0

let mint_trace () =
  Printf.sprintf "tr-%d-%d" (Unix.getpid ())
    (Atomic.fetch_and_add trace_counter 1)

let start t ?(trace = "") ?(parent = -1) name =
  {
    sp_trace = trace;
    sp_id = Atomic.fetch_and_add t.next_id 1;
    sp_parent = parent;
    sp_name = name;
    sp_start = t.clock ();
    sp_attrs = [];
  }

let add_attr sp k v = sp.sp_attrs <- (k, v) :: sp.sp_attrs

let id sp = sp.sp_id

let buffer_for t =
  let d = (Domain.self () :> int) in
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.buffers d with
      | Some b -> b
      | None ->
        let b = { bmu = Mutex.create (); items = [] } in
        Hashtbl.add t.buffers d b;
        b)

let finish t ?(attrs = []) sp =
  let stop_s = t.clock () in
  let f =
    {
      trace = sp.sp_trace;
      id = sp.sp_id;
      parent = sp.sp_parent;
      name = sp.sp_name;
      start_s = sp.sp_start;
      stop_s;
      attrs = List.rev sp.sp_attrs @ attrs;
    }
  in
  let b = buffer_for t in
  Mutex.protect b.bmu (fun () -> b.items <- f :: b.items)

let duration f = f.stop_s -. f.start_s

let drain t =
  let all =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold
          (fun _ b acc ->
            let items =
              Mutex.protect b.bmu (fun () ->
                  let i = b.items in
                  b.items <- [];
                  i)
            in
            List.rev_append items acc)
          t.buffers [])
  in
  List.sort
    (fun a b ->
      match compare a.start_s b.start_s with 0 -> compare a.id b.id | c -> c)
    all

(* --- Chrome trace_event export ----------------------------------------

   Same conventions as Trace's Chrome encoder: complete "X" events at
   1 µs resolution, metadata records naming tracks.  Here a track (tid)
   is a request trace, not a pipeline stage, so Perfetto shows one row
   per request with its stage spans nested by time. *)

let us ~epoch s = int_of_float (Float.round ((s -. epoch) *. 1e6))

let to_chrome ?(epoch = 0.) spans =
  let tids = Hashtbl.create 8 in
  let meta = ref [] in
  let tid_of trace =
    match Hashtbl.find_opt tids trace with
    | Some n -> n
    | None ->
      let n = Hashtbl.length tids in
      Hashtbl.add tids trace n;
      let label = if trace = "" then "untraced" else trace in
      meta :=
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int n);
            ("args", Json.Obj [ ("name", Json.String label) ]);
          ]
        :: !meta;
      n
  in
  let events =
    List.map
      (fun f ->
        let tid = tid_of f.trace in
        Json.Obj
          [
            ("name", Json.String f.name);
            ("cat", Json.String "serve");
            ("ph", Json.String "X");
            ("ts", Json.Int (us ~epoch f.start_s));
            ("dur", Json.Int (max 1 (us ~epoch f.stop_s - us ~epoch f.start_s)));
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
            ( "args",
              Json.Obj
                (("span", Json.Int f.id)
                 :: ("parent", Json.Int f.parent)
                 :: ("trace", Json.String f.trace)
                 :: List.map (fun (k, v) -> (k, Json.String v)) f.attrs) );
          ])
      spans
  in
  Schema.tag [ ("traceEvents", Json.List (List.rev !meta @ events)) ]

let write_chrome ?epoch oc spans =
  Json.to_channel oc (to_chrome ?epoch spans);
  output_char oc '\n'

(* --- access log -------------------------------------------------------- *)

let access_record ~ts ~trace ~request ~index ~workload ~policy ~source ?error
    ~stages ~total_s () =
  Schema.tag
    ([
       ("kind", Json.String "levioso-serve-access");
       ("ts", Json.float ts);
       ("trace", Json.String trace);
       ("request", Json.String request);
       ("index", Json.Int index);
       ("workload", Json.String workload);
       ("policy", Json.String policy);
       ("source", Json.String source);
     ]
    @ (match error with
      | Some e -> [ ("error", Json.String e) ]
      | None -> [])
    @ List.map
        (fun (name, d) -> (name ^ "_s", Json.float (Float.max 0. d)))
        stages
    @ [ ("total_s", Json.float (Float.max 0. total_s)) ])

(* --- latency accounting ------------------------------------------------ *)

module Hist = struct
  (* 1–2.5–5 per decade, 1 µs .. 100 s: shared by every stage so bucket
     boundaries line up across metrics and across daemon restarts. *)
  let bounds =
    Array.of_list
      (List.concat_map
         (fun d ->
           let scale = 10. ** float_of_int d in
           [ 1. *. scale; 2.5 *. scale; 5. *. scale ])
         [ -6; -5; -4; -3; -2; -1; 0; 1 ]
      @ [ 100. ])

  type h = {
    counts : int array;  (* one per bound + overflow *)
    mutable hsum : float;
    mutable hcount : int;
    hmu : Mutex.t;
  }

  let create () =
    {
      counts = Array.make (Array.length bounds + 1) 0;
      hsum = 0.;
      hcount = 0;
      hmu = Mutex.create ();
    }

  let slot v =
    let n = Array.length bounds in
    let rec find i = if i >= n then n else if v <= bounds.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    Mutex.protect h.hmu (fun () ->
        h.counts.(slot v) <- h.counts.(slot v) + 1;
        h.hsum <- h.hsum +. v;
        h.hcount <- h.hcount + 1)

  let count h = Mutex.protect h.hmu (fun () -> h.hcount)
  let sum h = Mutex.protect h.hmu (fun () -> h.hsum)

  let buckets h =
    Mutex.protect h.hmu (fun () ->
        let acc = ref 0 in
        Array.to_list
          (Array.mapi
             (fun i b ->
               acc := !acc + h.counts.(i);
               (b, !acc))
             bounds))

  let percentile h q =
    Mutex.protect h.hmu (fun () ->
        if h.hcount = 0 then 0.
        else begin
          let target =
            max 1 (int_of_float (Float.round (q *. float_of_int h.hcount)))
          in
          let n = Array.length bounds in
          let rec walk i acc =
            if i >= n then bounds.(n - 1)
            else
              let acc = acc + h.counts.(i) in
              if acc >= target then bounds.(i) else walk (i + 1) acc
          in
          walk 0 0
        end)
end

module Window = struct
  type w = {
    data : float array;
    mutable n : int;  (* total ever observed *)
    wmu : Mutex.t;
  }

  let create capacity = { data = Array.make (max 1 capacity) 0.; n = 0; wmu = Mutex.create () }

  let observe w v =
    Mutex.protect w.wmu (fun () ->
        w.data.(w.n mod Array.length w.data) <- v;
        w.n <- w.n + 1)

  let count w = Mutex.protect w.wmu (fun () -> min w.n (Array.length w.data))
  let seen w = Mutex.protect w.wmu (fun () -> w.n)

  let percentile w q =
    Mutex.protect w.wmu (fun () ->
        let n = min w.n (Array.length w.data) in
        if n = 0 then None
        else begin
          let live = Array.sub w.data 0 n in
          Array.sort compare live;
          let rank =
            min (n - 1) (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1))
          in
          Some live.(rank)
        end)
end
