module Cfg = Levioso_ir.Cfg
module Parser = Levioso_ir.Parser
module Reconvergence = Levioso_analysis.Reconvergence
module Postdom = Levioso_analysis.Postdom

let analyze src =
  let cfg = Cfg.build (Parser.parse_exn src) in
  (cfg, Reconvergence.compute cfg)

let test_if_then_else () =
  let _, r =
    analyze
      {|
        beq r1, #0, else_    ; pc 0
        mov r2, #1           ; pc 1
        jump join            ; pc 2
      else_:
        mov r2, #2           ; pc 3
      join:
        halt                 ; pc 4
      |}
  in
  match Reconvergence.point r 0 with
  | Reconvergence.Reconverges_at pc -> Alcotest.(check int) "join" 4 pc
  | Reconvergence.No_reconvergence -> Alcotest.fail "expected reconvergence"

let test_if_then () =
  let _, r =
    analyze {|
        beq r1, #0, skip   ; pc 0
        mov r2, #1         ; pc 1
      skip:
        halt               ; pc 2
      |}
  in
  match Reconvergence.point r 0 with
  | Reconvergence.Reconverges_at pc -> Alcotest.(check int) "skip" 2 pc
  | Reconvergence.No_reconvergence -> Alcotest.fail "expected reconvergence"

let test_loop_branch_reconverges_at_exit () =
  let _, r =
    analyze
      {|
        mov r1, #0           ; pc 0
      head:
        bge r1, #10, out     ; pc 1
        add r1, r1, #1       ; pc 2
        jump head            ; pc 3
      out:
        halt                 ; pc 4
      |}
  in
  match Reconvergence.point r 1 with
  | Reconvergence.Reconverges_at pc -> Alcotest.(check int) "loop exit" 4 pc
  | Reconvergence.No_reconvergence -> Alcotest.fail "expected reconvergence"

let test_branch_to_distinct_halts () =
  (* Arms never meet: no reconvergence. *)
  let _, r = analyze {|
      beq r1, #0, a   ; pc 0
      halt            ; pc 1
    a:
      halt            ; pc 2
    |} in
  (match Reconvergence.point r 0 with
  | Reconvergence.No_reconvergence -> ()
  | Reconvergence.Reconverges_at _ -> Alcotest.fail "arms never meet");
  Alcotest.(check (float 1e-9)) "coverage 0" 0.0 (Reconvergence.coverage r)

let test_nested_ifs () =
  let _, r =
    analyze
      {|
        beq r1, #0, outer_else   ; pc 0
        beq r2, #0, inner_else   ; pc 1
        mov r3, #1               ; pc 2
        jump inner_join          ; pc 3
      inner_else:
        mov r3, #2               ; pc 4
      inner_join:
        jump outer_join          ; pc 5
      outer_else:
        mov r3, #3               ; pc 6
      outer_join:
        halt                     ; pc 7
      |}
  in
  (match Reconvergence.point r 0 with
  | Reconvergence.Reconverges_at pc -> Alcotest.(check int) "outer join" 7 pc
  | Reconvergence.No_reconvergence -> Alcotest.fail "outer reconverges");
  match Reconvergence.point r 1 with
  | Reconvergence.Reconverges_at pc -> Alcotest.(check int) "inner join" 5 pc
  | Reconvergence.No_reconvergence -> Alcotest.fail "inner reconverges"

let test_point_rejects_non_branch () =
  let _, r = analyze "halt" in
  Alcotest.check_raises "invalid arg"
    (Invalid_argument "Reconvergence.point: not a conditional branch")
    (fun () -> ignore (Reconvergence.point r 0))

let test_reconvergence_postdominates_branch () =
  (* Property on a fixed but non-trivial program: the reconvergence block
     post-dominates the branch block. *)
  let cfg, r =
    analyze
      {|
        mov r1, #0
      head:
        bge r1, #8, out
        rem r2, r1, #2
        beq r2, #0, even
        add r3, r3, #1
        jump next
      even:
        add r4, r4, #1
      next:
        add r1, r1, #1
        jump head
      out:
        halt
      |}
  in
  let pd = Postdom.compute cfg in
  List.iter
    (fun pc ->
      match Reconvergence.point r pc with
      | Reconvergence.Reconverges_at rpc ->
        let bblock = Cfg.block_of_pc cfg pc in
        let rblock = Cfg.block_of_pc cfg rpc in
        Alcotest.(check bool)
          (Printf.sprintf "reconv of branch %d postdominates it" pc)
          true
          (Postdom.postdominates pd rblock bblock)
      | Reconvergence.No_reconvergence -> ())
    (Reconvergence.branch_pcs r)

let suite =
  ( "reconvergence",
    [
      Alcotest.test_case "if-then-else" `Quick test_if_then_else;
      Alcotest.test_case "if-then" `Quick test_if_then;
      Alcotest.test_case "loop branch" `Quick test_loop_branch_reconverges_at_exit;
      Alcotest.test_case "distinct halts" `Quick test_branch_to_distinct_halts;
      Alcotest.test_case "nested ifs" `Quick test_nested_ifs;
      Alcotest.test_case "rejects non-branch" `Quick test_point_rejects_non_branch;
      Alcotest.test_case "postdominates branch" `Quick test_reconvergence_postdominates_branch;
    ] )
