(* levioso_report: render, track and compare evaluation results.

   Modes (first matching wins):

     levioso_report --compare OLD.json NEW.json --tolerance 15
         Regression gate: compare the latest bench-history entries (or
         bare matrix files); exit 1 when any overlapping cell slowed
         down by more than the tolerance.

     levioso_report --diff POLICY MATRIX.json [--baseline unsafe]
         Differential attribution: per-cause and per-PC overhead deltas
         of POLICY against the baseline, per workload.

     levioso_report --dashboard DIR [-o dashboard.html]
         Render a levioso_serve continuous-telemetry directory
         (--history-out segments) as a self-contained operational
         dashboard: queue depth, request/error rates, latency
         percentiles, cache hit share, GC heap, alert transitions.

     levioso_report MATRIX.json [-o report.html] [--append HIST --label L]
         Render the matrix as a self-contained HTML report (inline SVG,
         no external resources); optionally append the run's cycles to a
         history file.

   MATRIX.json is anything with a "runs" list (levioso_sim --json,
   levioso_bench --json) or a BENCH_matrix.json trajectory (reduced to
   cycles-only runs). *)

module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Tsdb = Levioso_telemetry.Tsdb
module Html_report = Levioso_uarch.Html_report
module Dashboard = Levioso_uarch.Dashboard
module Diff_report = Levioso_uarch.Diff_report
module Bench_history = Levioso_uarch.Bench_history

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("levioso_report: " ^ msg); exit 2) fmt

let read_json path =
  match open_in_bin path with
  | exception Sys_error msg -> die "%s" msg
  | ic ->
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.of_string body with
    | Ok j -> j
    | Error msg -> die "%s: %s" path msg)

(* Accept either a runs file or a BENCH_matrix trajectory; reduce the
   latter to cycles-only run summaries (default config cells only, so
   sweep configs don't collide with the default-config cell of the same
   workload/policy pair). *)
let normalize_runs path j =
  match Json.member "runs" j with
  | Some (Json.List _) ->
    (match Schema.check ~what:path j with
    | Ok () -> j
    | Error msg -> die "%s" msg)
  | Some _ -> die "%s: \"runs\" is not a list" path
  | None -> (
    match Json.member "matrix" j with
    | Some (Json.List cells) ->
      (match Schema.check ~what:path j with
      | Ok () -> ()
      | Error msg -> die "%s" msg);
      let runs =
        List.filter_map
          (fun cell ->
            let keep =
              match Json.member "default_config" cell with
              | Some (Json.Bool b) -> b
              | _ -> true
            in
            if not keep then None
            else
              match
                ( Json.member "workload" cell,
                  Json.member "policy" cell,
                  Json.member "cycles" cell )
              with
              | Some w, Some p, Some c ->
                let host =
                  match Json.member "host" cell with
                  | Some h -> [ ("host", h) ]
                  | None -> []
                in
                Some
                  (Json.Obj
                     ([
                        ("workload", w);
                        ("policy", p);
                        ("stats", Json.Obj [ ("cycles", c) ]);
                      ]
                     @ host))
              | _ -> None)
          cells
      in
      Schema.tag [ ("runs", Json.List runs) ]
    | _ -> die "%s: neither a \"runs\" file nor a bench trajectory" path)

let runs_of path j =
  match Json.member "runs" (normalize_runs path j) with
  | Some (Json.List runs) -> runs
  | _ -> assert false

let mode_compare old_path new_path tolerance alloc_tolerance =
  let load path =
    match Bench_history.load path with
    | Ok entries -> entries
    | Error msg -> die "%s" msg
  in
  let old_ = load old_path and new_ = load new_path in
  match
    Bench_history.compare_latest ~tolerance ?alloc_tolerance ~old_ ~new_ ()
  with
  | Error msg -> die "%s" msg
  | Ok [] ->
    Printf.printf "no regression beyond %.1f%% (%s -> %s)\n" tolerance
      old_path new_path;
    0
  | Ok regressions ->
    Printf.printf "%d regression(s) beyond %.1f%%:\n"
      (List.length regressions) tolerance;
    List.iter
      (fun r -> print_endline ("  " ^ Bench_history.regression_to_string r))
      regressions;
    1

let mode_diff policy baseline workload top_k as_json path =
  let runs = runs_of path (read_json path) in
  let field k run =
    match Json.member k run with Some (Json.String s) -> Some s | _ -> None
  in
  let find p w =
    List.find_opt
      (fun run -> field "policy" run = Some p && field "workload" run = w)
      runs
  in
  let workloads =
    match workload with
    | Some w -> [ Some w ]
    | None ->
      List.filter_map
        (fun run ->
          if field "policy" run = Some policy then Some (field "workload" run)
          else None)
        runs
      |> List.sort_uniq compare
  in
  if workloads = [] then die "no %s runs in %s" policy path;
  let diffs =
    List.filter_map
      (fun w ->
        match (find policy w, find baseline w) with
        | Some p, Some b -> (
          match Diff_report.compute ~top_k ~baseline:b p with
          | Ok d -> Some d
          | Error msg -> die "%s" msg)
        | None, _ ->
          die "no %s run%s in %s" policy
            (match w with Some w -> " for " ^ w | None -> "")
            path
        | _, None ->
          die "no %s baseline run%s in %s (needed by --diff)" baseline
            (match w with Some w -> " for " ^ w | None -> "")
            path)
      workloads
  in
  if as_json then
    print_endline
      (Json.to_string
         (Schema.tag
            [ ("diffs", Json.List (List.map Diff_report.to_json diffs)) ]))
  else
    List.iter
      (fun d ->
        List.iter
          (fun (k, v) -> Printf.printf "%-34s %s\n" k v)
          (Diff_report.to_rows d);
        print_newline ())
      diffs;
  0

let mode_render path out title append label leak_trace =
  let matrix = normalize_runs path (read_json path) in
  let leak =
    Option.map
      (fun p ->
        let j = read_json p in
        (match Json.member "kind" j with
        | Some (Json.String "levioso-flowtrace") -> ()
        | _ ->
          die
            "%s: not a levioso-flowtrace document (want levioso_sim \
             --leak-trace FILE.json output)"
            p);
        j)
      leak_trace
  in
  let html =
    match Html_report.render ~title ?leak matrix with
    | Ok html -> html
    | Error msg -> die "%s" msg
  in
  let oc = open_out_bin out in
  output_string oc html;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" out (String.length html);
  (match append with
  | None -> ()
  | Some hist_path -> (
    match Bench_history.of_matrix ~label matrix with
    | Error msg -> die "%s" msg
    | Ok entry -> (
      match Bench_history.append ~path:hist_path entry with
      | Error msg -> die "%s" msg
      | Ok n ->
        Printf.printf "appended %S to %s (%d entries)\n" label hist_path n)));
  0

let mode_dashboard dir out title =
  let records =
    match Tsdb.read_dir dir with
    | Ok [] -> die "%s: no time-series segments (run the daemon with --history-out %s)" dir dir
    | Ok records -> records
    | Error msg -> die "%s" msg
  in
  let html =
    match Dashboard.render ~title records with
    | Ok html -> html
    | Error msg -> die "%s" msg
  in
  let oc = open_out_bin out in
  output_string oc html;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" out (String.length html);
  0

let main compare files diff baseline workload tolerance alloc_tolerance top_k
    as_json out title append label leak_trace dashboard =
  match (compare, diff, dashboard, files) with
  | true, _, _, [ old_path; new_path ] ->
    mode_compare old_path new_path tolerance alloc_tolerance
  | true, _, _, _ -> die "--compare needs exactly two files: OLD NEW"
  | false, Some policy, _, [ path ] ->
    mode_diff policy baseline workload top_k as_json path
  | false, Some _, _, _ -> die "--diff needs exactly one matrix file"
  | false, None, Some dir, [] ->
    let title =
      if title = "Levioso report" then "Levioso serve dashboard" else title
    in
    mode_dashboard dir out title
  | false, None, Some _, _ -> die "--dashboard takes no positional files"
  | false, None, None, [ path ] ->
    mode_render path out title append label leak_trace
  | false, None, None, _ -> die "expected one matrix file (try --help)"

open Cmdliner

let files_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE")

let compare_arg =
  Arg.(
    value & flag
    & info [ "compare" ]
        ~doc:
          "Regression gate: compare the latest entries of two history (or \
           matrix) files; exit 1 when a cell slowed down beyond \
           --tolerance.")

let diff_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "diff" ] ~docv:"POLICY"
        ~doc:
          "Differential attribution of $(docv) against --baseline, per \
           workload of the matrix file.")

let baseline_arg =
  Arg.(
    value & opt string "unsafe"
    & info [ "baseline" ] ~docv:"POLICY"
        ~doc:"Baseline policy for --diff (default unsafe).")

let workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"NAME" ~doc:"Restrict --diff to one workload.")

let tolerance_arg =
  Arg.(
    value & opt float 15.0
    & info [ "tolerance" ] ~docv:"PCT"
        ~doc:"Allowed per-cell cycle growth for --compare, in percent.")

let alloc_tolerance_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "alloc-tolerance" ] ~docv:"PCT"
        ~doc:
          "Allowed per-cell host-allocation growth for --compare, in percent \
           (defaults to --tolerance; only checked for cells whose histories \
           recorded host profiles on both sides).")

let top_k_arg =
  Arg.(
    value & opt int 10
    & info [ "top-k" ] ~docv:"K" ~doc:"PCs listed in --diff output.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit --diff output as JSON.")

let out_arg =
  Arg.(
    value & opt string "report.html"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"HTML output path.")

let title_arg =
  Arg.(
    value & opt string "Levioso report"
    & info [ "title" ] ~docv:"TITLE" ~doc:"HTML report title.")

let append_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "append" ] ~docv:"HISTORY"
        ~doc:
          "Also append the matrix's (workload, policy, cycles) cells as one \
           entry to this bench-history file (created if missing).")

let label_arg =
  Arg.(
    value & opt string "run"
    & info [ "label" ] ~docv:"LABEL" ~doc:"Entry label for --append.")

let leak_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "leak-trace" ] ~docv:"FILE"
        ~doc:
          "Embed the leak graph from $(docv) (a levioso-flowtrace JSON \
           document written by levioso_sim --leak-trace FILE.json) as a \
           \"Speculative leakage provenance\" section of the HTML report.")

let dashboard_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dashboard" ] ~docv:"DIR"
        ~doc:
          "Render the levioso_serve continuous-telemetry segments in \
           $(docv) (written by serve --history-out) as a self-contained \
           HTML operational dashboard.  Byte-deterministic: re-rendering \
           the same segments produces an identical file.")

let cmd =
  let doc = "render, track and compare Levioso evaluation results" in
  let info = Cmd.info "levioso_report" ~doc in
  Cmd.v info
    Term.(
      const main $ compare_arg $ files_arg $ diff_arg $ baseline_arg
      $ workload_arg $ tolerance_arg $ alloc_tolerance_arg $ top_k_arg
      $ json_arg $ out_arg $ title_arg $ append_arg $ label_arg
      $ leak_trace_arg $ dashboard_arg)

let () = exit (Cmd.eval' cmd)
