lib/ir/ir.mli:
