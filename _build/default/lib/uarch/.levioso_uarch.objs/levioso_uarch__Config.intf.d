lib/uarch/config.mli:
