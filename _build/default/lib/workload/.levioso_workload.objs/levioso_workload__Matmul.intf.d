lib/workload/matmul.mli: Workload
