(* Shared memory-layout conventions for the kernels.  Every kernel writes
   its final checksum to [result_addr] so runs have an architecturally
   observable output (and the oracle-equivalence tests bite). *)

let result_addr = 256
let data_base = 4096

(* Deterministic input data comes from the shared RNG, one fixed seed per
   kernel so inputs never change across runs. *)
let rng seed = Levioso_util.Rng.create (0xC0FFEE + seed)
