lib/analysis/branch_dep.ml: Array Control_dep Levioso_ir List Queue
