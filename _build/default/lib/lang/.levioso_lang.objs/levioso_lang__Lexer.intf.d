lib/lang/lexer.mli:
