lib/attack/harness.ml: Array Gadget Levioso_core Levioso_uarch List Printf
