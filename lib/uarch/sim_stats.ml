type t = {
  mutable cycles : int;
  mutable committed : int;
  mutable committed_loads : int;
  mutable committed_stores : int;
  mutable committed_branches : int;
  mutable committed_transmitters : int;
  mutable fetched : int;
  mutable squashed : int;
  mutable mispredicts : int;
  mutable policy_stall_cycles : int;
  mutable transmit_stall_cycles : int;
  mutable restricted_committed : int;
  mutable restricted_transmitters : int;
  mutable wrong_path_executed_loads : int;
  mutable wrong_path_transmits : (int * int) list;
  mutable wrong_path_transmit_count : int;
  mutable wrong_path_transmits_dropped : int;
  mutable max_rob_occupancy : int;
}

let create () =
  {
    cycles = 0;
    committed = 0;
    committed_loads = 0;
    committed_stores = 0;
    committed_branches = 0;
    committed_transmitters = 0;
    fetched = 0;
    squashed = 0;
    mispredicts = 0;
    policy_stall_cycles = 0;
    transmit_stall_cycles = 0;
    restricted_committed = 0;
    restricted_transmitters = 0;
    wrong_path_executed_loads = 0;
    wrong_path_transmits = [];
    wrong_path_transmit_count = 0;
    wrong_path_transmits_dropped = 0;
    max_rob_occupancy = 0;
  }

(* The wrong-path transmit pair lists are concatenated newest-run-first;
   the cap is re-applied on [record_], not here, so an aggregate may
   exceed it (the count stays truthful). *)
let accumulate dst src =
  dst.cycles <- dst.cycles + src.cycles;
  dst.committed <- dst.committed + src.committed;
  dst.committed_loads <- dst.committed_loads + src.committed_loads;
  dst.committed_stores <- dst.committed_stores + src.committed_stores;
  dst.committed_branches <- dst.committed_branches + src.committed_branches;
  dst.committed_transmitters <-
    dst.committed_transmitters + src.committed_transmitters;
  dst.fetched <- dst.fetched + src.fetched;
  dst.squashed <- dst.squashed + src.squashed;
  dst.mispredicts <- dst.mispredicts + src.mispredicts;
  dst.policy_stall_cycles <- dst.policy_stall_cycles + src.policy_stall_cycles;
  dst.transmit_stall_cycles <-
    dst.transmit_stall_cycles + src.transmit_stall_cycles;
  dst.restricted_committed <-
    dst.restricted_committed + src.restricted_committed;
  dst.restricted_transmitters <-
    dst.restricted_transmitters + src.restricted_transmitters;
  dst.wrong_path_executed_loads <-
    dst.wrong_path_executed_loads + src.wrong_path_executed_loads;
  dst.wrong_path_transmits <- src.wrong_path_transmits @ dst.wrong_path_transmits;
  dst.wrong_path_transmit_count <-
    dst.wrong_path_transmit_count + src.wrong_path_transmit_count;
  dst.wrong_path_transmits_dropped <-
    dst.wrong_path_transmits_dropped + src.wrong_path_transmits_dropped;
  dst.max_rob_occupancy <- max dst.max_rob_occupancy src.max_rob_occupancy

let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.committed /. float_of_int t.cycles

let mpki t =
  if t.committed = 0 then 0.0
  else float_of_int t.mispredicts *. 1000.0 /. float_of_int t.committed

let cap = 50_000

(* The explicit length counter keeps this O(1); calling [List.length] on
   every record made long runs O(n^2). *)
let record_wrong_path_transmit t ~branch_pc ~pc =
  if t.wrong_path_transmit_count >= cap then
    t.wrong_path_transmits_dropped <- t.wrong_path_transmits_dropped + 1
  else begin
    t.wrong_path_transmits <- (branch_pc, pc) :: t.wrong_path_transmits;
    t.wrong_path_transmit_count <- t.wrong_path_transmit_count + 1
  end

let to_rows t =
  [
    ("cycles", string_of_int t.cycles);
    ("committed", string_of_int t.committed);
    ("IPC", Printf.sprintf "%.3f" (ipc t));
    ("loads / stores", Printf.sprintf "%d / %d" t.committed_loads t.committed_stores);
    ("branches", string_of_int t.committed_branches);
    ("mispredicts (MPKI)", Printf.sprintf "%d (%.2f)" t.mispredicts (mpki t));
    ("fetched / squashed", Printf.sprintf "%d / %d" t.fetched t.squashed);
    ("policy stall entry-cycles", string_of_int t.policy_stall_cycles);
    ("transmitter stall entry-cycles", string_of_int t.transmit_stall_cycles);
    ( "restricted committed (xmit)",
      Printf.sprintf "%d (%d)" t.restricted_committed t.restricted_transmitters );
    ("wrong-path executed loads", string_of_int t.wrong_path_executed_loads);
    ("max ROB occupancy", string_of_int t.max_rob_occupancy);
  ]

let to_json t =
  let module J = Levioso_telemetry.Json in
  J.Obj
    [
      ("cycles", J.Int t.cycles);
      ("committed", J.Int t.committed);
      ("ipc", J.Float (ipc t));
      ("mpki", J.Float (mpki t));
      ("committed_loads", J.Int t.committed_loads);
      ("committed_stores", J.Int t.committed_stores);
      ("committed_branches", J.Int t.committed_branches);
      ("committed_transmitters", J.Int t.committed_transmitters);
      ("fetched", J.Int t.fetched);
      ("squashed", J.Int t.squashed);
      ("mispredicts", J.Int t.mispredicts);
      ("policy_stall_cycles", J.Int t.policy_stall_cycles);
      ("transmit_stall_cycles", J.Int t.transmit_stall_cycles);
      ("restricted_committed", J.Int t.restricted_committed);
      ("restricted_transmitters", J.Int t.restricted_transmitters);
      ("wrong_path_executed_loads", J.Int t.wrong_path_executed_loads);
      ("wrong_path_transmits", J.Int t.wrong_path_transmit_count);
      ("wrong_path_transmits_dropped", J.Int t.wrong_path_transmits_dropped);
      ("max_rob_occupancy", J.Int t.max_rob_occupancy);
    ]

let of_json j =
  let module J = Levioso_telemetry.Json in
  match
    let int k = J.to_int_exn (J.member_exn k j) in
    {
      cycles = int "cycles";
      committed = int "committed";
      committed_loads = int "committed_loads";
      committed_stores = int "committed_stores";
      committed_branches = int "committed_branches";
      committed_transmitters = int "committed_transmitters";
      fetched = int "fetched";
      squashed = int "squashed";
      mispredicts = int "mispredicts";
      policy_stall_cycles = int "policy_stall_cycles";
      transmit_stall_cycles = int "transmit_stall_cycles";
      restricted_committed = int "restricted_committed";
      restricted_transmitters = int "restricted_transmitters";
      wrong_path_executed_loads = int "wrong_path_executed_loads";
      wrong_path_transmits = [];
      wrong_path_transmit_count = int "wrong_path_transmits";
      wrong_path_transmits_dropped = int "wrong_path_transmits_dropped";
      max_rob_occupancy = int "max_rob_occupancy";
    }
  with
  | t -> Ok t
  | exception Invalid_argument msg -> Error ("Sim_stats.of_json: " ^ msg)
