(** Recursive-descent parser for Lev (grammar in {!Compiler}).

    Named [Lparser] to avoid clashing with the IR assembly parser when both
    libraries are open in examples. *)

val parse : string -> (Ast.program, string) result
(** Lex and parse a full source file.  Errors carry line/column. *)

val parse_expr : string -> (Ast.expr, string) result
(** Parse a single expression (tests and the REPL-ish tooling). *)
