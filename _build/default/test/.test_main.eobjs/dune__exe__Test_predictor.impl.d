test/test_predictor.ml: Alcotest Levioso_uarch List Printf
