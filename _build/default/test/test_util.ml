module Rng = Levioso_util.Rng
module Stats = Levioso_util.Stats
module Report = Levioso_util.Report

let check = Alcotest.check

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let w = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (w >= 5 && w <= 9);
    let f = Rng.float r 2.0 in
    Alcotest.(check bool) "in [0,2)" true (f >= 0.0 && f < 2.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr matches
  done;
  Alcotest.(check bool) "split streams differ" true (!matches < 4)

let test_rng_uniformity () =
  (* Chi-squared-ish sanity: each of 8 buckets should get 1000/8 +- 50%. *)
  let r = Rng.create 3 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Rng.int r 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket within 50%" true (c > 500 && c < 1500))
    buckets

let test_shuffle_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 20 Fun.id) sorted

let feq = Alcotest.float 1e-9

let test_mean () =
  check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check feq "empty" 0.0 (Stats.mean [])

let test_geomean () =
  check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check feq "single" 5.0 (Stats.geomean [ 5.0 ])

let test_stddev () =
  check feq "constant" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  check (Alcotest.float 1e-6) "known" 1.0 (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check feq "p50" 3.0 (Stats.percentile 50.0 xs);
  check feq "p100" 5.0 (Stats.percentile 100.0 xs);
  check feq "p1" 1.0 (Stats.percentile 1.0 xs)

let test_overhead_pct () =
  check feq "23%" 23.0 (Stats.overhead_pct ~baseline:100.0 123.0);
  check feq "0%" 0.0 (Stats.overhead_pct ~baseline:100.0 100.0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_table_renders () =
  let s =
    Report.table ~header:[ "a"; "b" ] ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  List.iter
    (fun cell ->
      Alcotest.(check bool) ("contains " ^ cell) true (contains ~needle:cell s))
    [ "a"; "b"; "1"; "22"; "333"; "4" ]

let test_grouped_bars_renders () =
  let s =
    Report.grouped_bars ~title:"t" ~group_labels:[ "g1"; "g2" ]
      ~series:[ ("a", [ 1.0; 2.0 ]); ("b", [ 3.0; 4.0 ]) ]
      ()
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle s))
    [ "g1"; "g2"; "a"; "b"; "4.00" ]

let test_bar_chart_scales () =
  let s = Report.bar_chart ~width:10 ~title:"t" () [ ("x", 10.0); ("y", 5.0) ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "title + 2 bars" 3 (List.length lines)

let suite =
  ( "util",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "overhead pct" `Quick test_overhead_pct;
      Alcotest.test_case "table renders" `Quick test_table_renders;
      Alcotest.test_case "grouped bars" `Quick test_grouped_bars_renders;
      Alcotest.test_case "bar chart scales" `Quick test_bar_chart_scales;
    ] )
