lib/analysis/postdom.mli: Levioso_ir
