(** Threshold + sustained-duration alert rules over time-series samples.

    Rules are one-per-line text, e.g.

    {v
    # queue backing up for half a minute
    queue_depth >= 100 for 30s
    total_p99_ms > 500 for 30s
    errors_per_s > 0
    v}

    [metric OP threshold [for DURs]].  Blank lines and [#] comments are
    skipped.  A rule {e fires} once its condition has held continuously
    for the sustained duration (immediately when no [for] clause is
    given) and {e resolves} on the first sample where the condition is
    false — or where the metric is absent, so a metric that stops being
    reported cannot stay stuck firing.  Metrics ending in [_ms] fall
    back to the corresponding [_s] field scaled by 1000, matching the
    second-denominated names the serve sampler records.

    Evaluation is pure bookkeeping: the caller supplies the sample
    timestamp and a field-lookup function, so the engine itself performs
    no clock reads and unit tests drive time explicitly. *)

type op = Gt | Ge | Lt | Le

type rule = {
  name : string;  (** canonical text, e.g. ["total_p99_ms > 500 for 30s"] *)
  metric : string;
  op : op;
  threshold : float;
  for_s : float;  (** seconds the condition must hold; 0 = immediate *)
}

val parse : string -> (rule list, string) result
(** Parse rule text (the whole file contents).  Errors name the
    offending line. *)

val load : string -> (rule list, string) result
(** [parse] the contents of a file. *)

(** {1 Evaluation} *)

type t

val create : rule list -> t

type transition = {
  rule : rule;
  firing : bool;  (** [true] = just fired, [false] = just resolved *)
  value : float;  (** metric value at the transition sample *)
}

val eval : t -> now:float -> lookup:(string -> float option) -> transition list
(** Feed one sample (its timestamp and field lookup) to every rule;
    returns the state transitions this sample caused, in rule order. *)

val firing : t -> int
(** Number of rules currently firing. *)

val rules : t -> rule list
(** The rules this engine evaluates, in declaration order. *)
