(** Self-contained HTML rendering of a bench matrix.

    [render] turns a {!Summary.matrix} JSON value (the shape
    [levioso_bench --json] and [BENCH_matrix.json] emit) into one HTML
    document with inline CSS and inline SVG charts — no external
    resources, no scripts, so the file opens anywhere and the output is
    byte-deterministic for golden tests:

    - normalized execution overhead per policy, grouped by workload
      (the paper's fig. 3 shape), baseline = the ["unsafe"] run of the
      same workload when present;
    - stacked stall-cause bars per run;
    - the necessary/unnecessary restriction split per audited run;
    - a top-K restricted-PC table per audited run.

    Numbers are rendered with fixed precision; nothing in the output
    depends on time, locale or environment. *)

val render :
  ?title:string ->
  ?leak:Levioso_telemetry.Json.t ->
  Levioso_telemetry.Json.t ->
  (string, string) result
(** [render matrix] is the full HTML document.  [Error] when [matrix]
    has no ["runs"] list.  When [?leak] is given (a
    [levioso-flowtrace] JSON document from [levioso_sim --leak-trace
    FILE.json]), the report gains a "Speculative leakage provenance"
    section: an SVG leak graph, one row per node, edges colored by
    dependence kind, capped at 40 nodes; an empty graph renders as an
    explicit no-leak statement.  Output without [?leak] is unchanged. *)

val render_exn :
  ?title:string ->
  ?leak:Levioso_telemetry.Json.t ->
  Levioso_telemetry.Json.t ->
  string
