module Ir = Levioso_ir.Ir
module Emulator = Levioso_ir.Emulator
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Cache = Levioso_uarch.Cache
module Registry = Levioso_core.Registry

type t = {
  regs : int array;
  mem : int array;
  cycles : int;
  committed : int;
  wrong_path_transmits : int;
  probe : int array;
}

let level_code = function
  | Cache.Hierarchy.L1 -> 0
  | Cache.Hierarchy.L2 -> 1
  | Cache.Hierarchy.Memory -> 2

let observe ?(probe_addrs = [||]) pipe =
  let stats = Pipeline.stats pipe in
  let h = Pipeline.hierarchy pipe in
  {
    regs = Array.copy (Pipeline.regs pipe);
    mem = Array.copy (Pipeline.mem pipe);
    cycles = stats.Sim_stats.cycles;
    committed = stats.Sim_stats.committed;
    wrong_path_transmits = stats.Sim_stats.wrong_path_transmit_count;
    probe = Array.map (fun a -> level_code (Cache.Hierarchy.probe h a)) probe_addrs;
  }

let run ?probe_addrs ?(max_cycles = 1_000_000) ~config ~policy ~mem_init
    program =
  let pipe =
    Pipeline.create ~mem_init config ~policy:(Registry.find_exn policy) program
  in
  Pipeline.run ~max_cycles pipe;
  observe ?probe_addrs pipe

let run_traced ?probe_addrs ?(max_cycles = 1_000_000) ~secret_ranges ~config
    ~policy ~mem_init program =
  let pipe =
    Pipeline.create ~mem_init config ~policy:(Registry.find_exn policy) program
  in
  let ft = Levioso_telemetry.Flowtrace.create () in
  Pipeline.set_flow_tracer pipe ~secret_ranges (fun ~cycle ev ->
      Levioso_telemetry.Flowtrace.feed ft ~cycle ev);
  Pipeline.run ~max_cycles pipe;
  (observe ?probe_addrs pipe, ft)

let equal ?(ignore_mem = [||]) a b =
  let ignored addr = Array.exists (fun x -> x = addr) ignore_mem in
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let rec find_reg r =
    if r >= Array.length a.regs then Ok ()
    else if r <> Ir.zero_reg && a.regs.(r) <> b.regs.(r) then
      fail "r%d: %d vs %d" r a.regs.(r) b.regs.(r)
    else find_reg (r + 1)
  in
  let rec find_mem i =
    if i >= Array.length a.mem then Ok ()
    else if (not (ignored i)) && a.mem.(i) <> b.mem.(i) then
      fail "mem[%d]: %d vs %d" i a.mem.(i) b.mem.(i)
    else find_mem (i + 1)
  in
  let rec find_probe i =
    if i >= Array.length a.probe then Ok ()
    else if a.probe.(i) <> b.probe.(i) then
      fail "probe line %d: level %d vs %d" i a.probe.(i) b.probe.(i)
    else find_probe (i + 1)
  in
  if a.cycles <> b.cycles then fail "cycles: %d vs %d" a.cycles b.cycles
  else if a.committed <> b.committed then
    fail "retired: %d vs %d" a.committed b.committed
  else
    match find_reg 0 with
    | Error _ as e -> e
    | Ok () -> (
      match find_mem 0 with
      | Error _ as e -> e
      | Ok () -> find_probe 0)

let against_emulator ~reference obs =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let rec find_reg r =
    if r >= Array.length obs.regs then Ok ()
    else if r <> Ir.zero_reg && obs.regs.(r) <> reference.Emulator.regs.(r) then
      fail "r%d: pipeline %d, emulator %d" r obs.regs.(r)
        reference.Emulator.regs.(r)
    else find_reg (r + 1)
  in
  let rec find_mem i =
    if i >= Array.length obs.mem then Ok ()
    else if obs.mem.(i) <> reference.Emulator.mem.(i) then
      fail "mem[%d]: pipeline %d, emulator %d" i obs.mem.(i)
        reference.Emulator.mem.(i)
    else find_mem (i + 1)
  in
  if obs.committed <> reference.Emulator.retired then
    fail "retired: pipeline %d, emulator %d" obs.committed
      reference.Emulator.retired
  else
    match find_reg 0 with
    | Error _ as e -> e
    | Ok () -> find_mem 0
