module Ir = Levioso_ir.Ir
module Config = Levioso_uarch.Config
module Parallel = Levioso_util.Parallel
module Treg = Levioso_telemetry.Registry
module Json = Levioso_telemetry.Json

type options = {
  seed : int;
  iters : int;
  time_budget : float option;
  jobs : int;
  oracles : Oracle.t list;
  corpus_dir : string option;
  shrink_budget : int;
  max_failures : int option;
  config : Config.t;
  on_progress : (executed:int -> failures:int -> unit) option;
}

let default_options =
  {
    seed = 1;
    iters = 500;
    time_budget = None;
    jobs = 1;
    oracles = Oracle.all;
    corpus_dir = Some Corpus.default_dir;
    shrink_budget = 2000;
    max_failures = Some 20;
    config = Gen.default_config;
    on_progress = None;
  }

type failure = {
  oracle : string;
  seed : int;
  detail : string;
  original_len : int;
  shrunk_len : int;
  program : Ir.program;
  source : string option;
  path : string option;
  leak : string option;
  leak_path : string option;
}

type report = {
  base_seed : int;
  iterations : int;
  failures : failure list;
  counters : Treg.t;
}

(* SplitMix64 finalizer over (base, i): O(1) random access to iteration
   seeds, so workers need no shared generator state and any single
   iteration can be replayed in isolation. *)
let iter_seed base i =
  let open Int64 in
  let z =
    add (of_int base) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFFL)

let run (o : options) =
  if o.iters = 0 && o.time_budget = None then
    invalid_arg "Campaign.run: iters = 0 requires a time budget";
  if o.oracles = [] then invalid_arg "Campaign.run: no oracles selected";
  let oracles = Array.of_list o.oracles in
  let n = Array.length oracles in
  let counters = Treg.create () in
  let runs_of name = Treg.counter counters (name ^ "/runs") in
  let failures_of name = Treg.counter counters (name ^ "/failures") in
  (* materialize every counter up front so reports list all oracles even
     at zero, and JSON key sets don't depend on which iterations ran *)
  Array.iter
    (fun (o : Oracle.t) ->
      ignore (runs_of o.Oracle.name);
      ignore (failures_of o.Oracle.name))
    oracles;
  let failures = ref [] in
  let handle (i, outcome) =
    let oracle = oracles.(i mod n) in
    let seed = iter_seed o.seed i in
    Treg.Counter.incr (runs_of oracle.Oracle.name);
    List.iter
      (fun (key, v) ->
        Treg.Counter.add
          (Treg.counter counters (oracle.Oracle.name ^ "/" ^ key))
          v)
      outcome.Oracle.extras;
    match outcome.Oracle.verdict with
    | Oracle.Pass -> ()
    | Oracle.Fail f ->
      Treg.Counter.incr (failures_of oracle.Oracle.name);
      let shrunk =
        match f.Oracle.still_fails with
        | Some keep -> Shrink.run ~budget:o.shrink_budget ~keep f.Oracle.program
        | None -> f.Oracle.program
      in
      (* leak provenance is re-derived on the shrunk reproduction, so the
         chain names the instructions a human will actually read *)
      let leak =
        match f.Oracle.leak with
        | Some derive -> derive shrunk
        | None -> None
      in
      let path =
        Option.map
          (fun dir ->
            Corpus.save ~dir
              {
                Corpus.oracle = oracle.Oracle.name;
                seed;
                verdict = "fail";
                detail = f.Oracle.detail;
                source = f.Oracle.source;
                leak;
                program = shrunk;
              })
          o.corpus_dir
      in
      let leak_path =
        match (path, leak) with
        | Some p, Some chain ->
          (* sidecar for CI artifact upload: the chain alone, as text *)
          let lp = Filename.remove_extension p ^ ".leaktrace" in
          let oc = open_out lp in
          output_string oc chain;
          close_out oc;
          Some lp
        | _, _ -> None
      in
      failures :=
        {
          oracle = oracle.Oracle.name;
          seed;
          detail = f.Oracle.detail;
          original_len = Array.length f.Oracle.program;
          shrunk_len = Array.length shrunk;
          program = shrunk;
          source = f.Oracle.source;
          path;
          leak;
          leak_path;
        }
        :: !failures
  in
  let start = Unix.gettimeofday () in
  let out_of_time () =
    match o.time_budget with
    | None -> false
    | Some s -> Unix.gettimeofday () -. start >= s
  in
  let executed = ref 0 in
  Parallel.with_pool ~size:(max 1 o.jobs) (fun pool ->
      (* fixed chunk size, independent of the pool: early-stop decisions
         (time budget, max_failures) land on the same iteration whatever
         -j is, keeping parallel runs bit-identical to serial ones *)
      let chunk = 32 in
      let too_many_failures () =
        match o.max_failures with
        | None -> false
        | Some n -> List.length !failures >= n
      in
      let continue () =
        (o.iters = 0 || !executed < o.iters)
        && (not (out_of_time ()))
        && not (too_many_failures ())
      in
      while continue () do
        let upper =
          if o.iters = 0 then !executed + chunk
          else min o.iters (!executed + chunk)
        in
        let idxs = List.init (upper - !executed) (fun k -> !executed + k) in
        Parallel.map pool
          (fun i ->
            let oracle = oracles.(i mod n) in
            (i, oracle.Oracle.run ~config:o.config ~seed:(iter_seed o.seed i)))
          idxs
        |> List.iter handle;
        executed := upper;
        (* chunk-boundary heartbeat, on the calling domain; purely
           observational, so -j N reports stay bit-identical *)
        match o.on_progress with
        | Some f -> f ~executed:!executed ~failures:(List.length !failures)
        | None -> ()
      done);
  {
    base_seed = o.seed;
    iterations = !executed;
    failures = List.rev !failures;
    counters;
  }

let to_json report =
  Levioso_telemetry.Schema.tag
    [
      ("seed", Json.Int report.base_seed);
      ("iterations", Json.Int report.iterations);
      ("counters", Treg.to_json report.counters);
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("oracle", Json.String f.oracle);
                   ("seed", Json.Int f.seed);
                   ("detail", Json.String f.detail);
                   ("original_len", Json.Int f.original_len);
                   ("shrunk_len", Json.Int f.shrunk_len);
                   ( "path",
                     match f.path with
                     | Some p -> Json.String p
                     | None -> Json.Null );
                   ( "leak",
                     match f.leak with
                     | Some chain -> Json.String chain
                     | None -> Json.Null );
                   ( "leak_path",
                     match f.leak_path with
                     | Some p -> Json.String p
                     | None -> Json.Null );
                 ])
             report.failures) );
    ]

let print oc report =
  Printf.fprintf oc "fuzz campaign: seed %d, %d iterations\n" report.base_seed
    report.iterations;
  List.iter
    (fun (name, value) -> Printf.fprintf oc "  %-42s %s\n" name value)
    (Treg.to_rows report.counters);
  if report.failures = [] then Printf.fprintf oc "  no failures\n"
  else
    List.iter
      (fun f ->
        Printf.fprintf oc
          "  FAIL %s seed %d: %s\n       shrunk %d -> %d instrs%s\n" f.oracle
          f.seed f.detail f.original_len f.shrunk_len
          (match f.path with
          | Some p -> Printf.sprintf " (saved to %s)" p
          | None -> "");
        match f.leak with
        | Some chain ->
          Printf.fprintf oc "       leak chain:\n";
          String.split_on_char '\n' (String.trim chain)
          |> List.iter (fun l -> Printf.fprintf oc "         %s\n" l)
        | None -> ())
      report.failures
