module Baselines = Levioso_secure.Baselines
module Stt = Levioso_secure.Stt
module Dom = Levioso_secure.Dom
module Nda = Levioso_secure.Nda

let table =
  [
    ("unsafe", Baselines.unsafe);
    ("fence", Baselines.fence);
    ("delay", Baselines.delay);
    ("dom", Dom.maker);
    ("stt", Stt.maker);
    ("nda", Nda.maker);
    ("levioso", Levioso_policy.maker ());
    ("levioso-ctrl", Levioso_policy.maker ~track_data:false ());
    ("levioso-static", Levioso_static.maker);
  ]

let names = List.map fst table

let paper_schemes = [ "fence"; "delay"; "dom"; "stt"; "levioso" ]

let find name = List.assoc_opt name table

let find_exn name =
  match find name with
  | Some maker -> maker
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.find_exn: unknown policy %s (known: %s)" name
         (String.concat ", " names))
