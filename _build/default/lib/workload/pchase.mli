(** pointer chasing over a shuffled linked ring (mcf-like) — one kernel of the suite standing in for SPEC CPU2017; see the
    implementation header for the behavioural axes it stresses. *)

val workload : Workload.t
