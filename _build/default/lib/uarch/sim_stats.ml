type t = {
  mutable cycles : int;
  mutable committed : int;
  mutable committed_loads : int;
  mutable committed_stores : int;
  mutable committed_branches : int;
  mutable committed_transmitters : int;
  mutable fetched : int;
  mutable squashed : int;
  mutable mispredicts : int;
  mutable policy_stall_cycles : int;
  mutable transmit_stall_cycles : int;
  mutable restricted_committed : int;
  mutable restricted_transmitters : int;
  mutable wrong_path_executed_loads : int;
  mutable wrong_path_transmits : (int * int) list;
  mutable wrong_path_transmits_dropped : int;
  mutable max_rob_occupancy : int;
}

let create () =
  {
    cycles = 0;
    committed = 0;
    committed_loads = 0;
    committed_stores = 0;
    committed_branches = 0;
    committed_transmitters = 0;
    fetched = 0;
    squashed = 0;
    mispredicts = 0;
    policy_stall_cycles = 0;
    transmit_stall_cycles = 0;
    restricted_committed = 0;
    restricted_transmitters = 0;
    wrong_path_executed_loads = 0;
    wrong_path_transmits = [];
    wrong_path_transmits_dropped = 0;
    max_rob_occupancy = 0;
  }

let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.committed /. float_of_int t.cycles

let mpki t =
  if t.committed = 0 then 0.0
  else float_of_int t.mispredicts *. 1000.0 /. float_of_int t.committed

let cap = 50_000

let record_wrong_path_transmit t ~branch_pc ~pc =
  if List.length t.wrong_path_transmits >= cap then
    t.wrong_path_transmits_dropped <- t.wrong_path_transmits_dropped + 1
  else t.wrong_path_transmits <- (branch_pc, pc) :: t.wrong_path_transmits

let to_rows t =
  [
    ("cycles", string_of_int t.cycles);
    ("committed", string_of_int t.committed);
    ("IPC", Printf.sprintf "%.3f" (ipc t));
    ("loads / stores", Printf.sprintf "%d / %d" t.committed_loads t.committed_stores);
    ("branches", string_of_int t.committed_branches);
    ("mispredicts (MPKI)", Printf.sprintf "%d (%.2f)" t.mispredicts (mpki t));
    ("fetched / squashed", Printf.sprintf "%d / %d" t.fetched t.squashed);
    ("policy stall entry-cycles", string_of_int t.policy_stall_cycles);
    ("transmitter stall entry-cycles", string_of_int t.transmit_stall_cycles);
    ( "restricted committed (xmit)",
      Printf.sprintf "%d (%d)" t.restricted_committed t.restricted_transmitters );
    ("wrong-path executed loads", string_of_int t.wrong_path_executed_loads);
    ("max ROB occupancy", string_of_int t.max_rob_occupancy);
  ]
