module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* Register allocation: a bump pointer for long-lived slots (variables,
   call results) plus a stack discipline for expression temporaries above
   the high-water mark. *)
type regs = {
  mutable next_fixed : int;
  mutable temp_top : int;
}

type ctx = {
  b : Builder.t;
  regs : regs;
  fns : (string, Ast.fn) Hashtbl.t;
  mutable env : (string * Ir.reg) list;  (* innermost binding first *)
}

let alloc_fixed ctx what =
  (* a fixed slot must not land below a live expression temporary (calls
     inside expressions allocate params/results while partial values are
     held in temps), so allocate above both watermarks; temps trapped
     below the new floor simply stay allocated — a small, safe leak *)
  let r = max ctx.regs.next_fixed ctx.regs.temp_top in
  if r >= Ir.num_regs then
    fail "out of registers allocating %s (limit %d)" what (Ir.num_regs - 1);
  ctx.regs.next_fixed <- r + 1;
  if ctx.regs.temp_top < ctx.regs.next_fixed then
    ctx.regs.temp_top <- ctx.regs.next_fixed;
  r

let alloc_temp ctx =
  let r = ctx.regs.temp_top in
  if r >= Ir.num_regs then
    fail "expression too deep: out of temporary registers (limit %d)"
      (Ir.num_regs - 1);
  ctx.regs.temp_top <- r + 1;
  r

let free_temp ctx r =
  (* temporaries release in stack order; fixed slots never do *)
  if r = ctx.regs.temp_top - 1 && r >= ctx.regs.next_fixed then
    ctx.regs.temp_top <- r

let lookup ctx name =
  match List.assoc_opt name ctx.env with
  | Some r -> r
  | None -> fail "internal: unresolved variable %s" name

(* operand + whether it occupies a temporary we should release *)
type value = {
  operand : Ir.operand;
  temp : bool;
}

let imm n = { operand = Ir.Imm n; temp = false }
let of_reg r = { operand = Ir.Reg r; temp = false }

let release ctx v =
  match v.operand with
  | Ir.Reg r when v.temp -> free_temp ctx r
  | Ir.Reg _ | Ir.Imm _ -> ()

let alu_of_binop = function
  | Ast.Add -> Some Ir.Add
  | Ast.Sub -> Some Ir.Sub
  | Ast.Mul -> Some Ir.Mul
  | Ast.Div -> Some Ir.Div
  | Ast.Rem -> Some Ir.Rem
  | Ast.And -> Some Ir.And
  | Ast.Or -> Some Ir.Or
  | Ast.Xor -> Some Ir.Xor
  | Ast.Shl -> Some Ir.Shl
  | Ast.Shr -> Some Ir.Shr
  | Ast.Eq -> Some (Ir.Set Ir.Eq)
  | Ast.Ne -> Some (Ir.Set Ir.Ne)
  | Ast.Lt -> Some (Ir.Set Ir.Lt)
  | Ast.Le -> Some (Ir.Set Ir.Le)
  | Ast.Gt -> Some (Ir.Set Ir.Gt)
  | Ast.Ge -> Some (Ir.Set Ir.Ge)
  | Ast.Logic_and | Ast.Logic_or -> None

(* a call instance being compiled: where return writes its value and jumps *)
type call_frame = {
  result : Ir.reg;
  end_label : string;
}

let rec eval ctx (e : Ast.expr) : value =
  match e with
  | Ast.Lit n -> imm n
  | Ast.Var x -> of_reg (lookup ctx x)
  | Ast.Binop (op, a, b) -> eval_binop ctx op a b
  | Ast.Neg a -> (
    match eval ctx a with
    | { operand = Ir.Imm n; _ } -> imm (-n)
    | va ->
      release ctx va;
      let t = alloc_temp ctx in
      Builder.sub ctx.b t (Ir.Imm 0) va.operand;
      { operand = Ir.Reg t; temp = true })
  | Ast.Not a -> (
    match eval ctx a with
    | { operand = Ir.Imm n; _ } -> imm (if n = 0 then 1 else 0)
    | va ->
      release ctx va;
      let t = alloc_temp ctx in
      Builder.alu ctx.b (Ir.Set Ir.Eq) t va.operand (Ir.Imm 0);
      { operand = Ir.Reg t; temp = true })
  | Ast.Load addr ->
    let va = eval ctx addr in
    release ctx va;
    let t = alloc_temp ctx in
    Builder.load ctx.b t va.operand (Ir.Imm 0);
    { operand = Ir.Reg t; temp = true }
  | Ast.Rdcycle after ->
    let va = Option.map (eval ctx) after in
    Option.iter (release ctx) va;
    let t = alloc_temp ctx in
    let after_operand =
      match va with
      | Some v -> v.operand
      | None -> Ir.Imm 0
    in
    Builder.rdcycle ~after:after_operand ctx.b t;
    { operand = Ir.Reg t; temp = true }
  | Ast.Call (name, args) ->
    let r = inline_call ctx name args in
    (* call results live in fixed slots (they survive arbitrary code);
       copy into a temp so expression lifetimes stay stack-shaped *)
    of_reg r

(* booleanize an operand into a fresh temp (0/1) *)
and booleanize ctx v =
  match v.operand with
  | Ir.Imm n -> imm (if n <> 0 then 1 else 0)
  | Ir.Reg _ ->
    release ctx v;
    let t = alloc_temp ctx in
    Builder.alu ctx.b (Ir.Set Ir.Ne) t v.operand (Ir.Imm 0);
    { operand = Ir.Reg t; temp = true }

and eval_binop ctx op a b =
  match op with
  | Ast.Logic_and | Ast.Logic_or ->
    (* strict boolean logic: both sides evaluate (see Compiler docs) *)
    let va = booleanize ctx (eval ctx a) in
    let vb = booleanize ctx (eval ctx b) in
    (match (va.operand, vb.operand) with
    | Ir.Imm x, Ir.Imm y ->
      release ctx vb;
      release ctx va;
      imm
        (match op with
        | Ast.Logic_and -> if x <> 0 && y <> 0 then 1 else 0
        | _ -> if x <> 0 || y <> 0 then 1 else 0)
    | _ ->
      release ctx vb;
      release ctx va;
      let t = alloc_temp ctx in
      let ir_op =
        match op with
        | Ast.Logic_and -> Ir.And
        | _ -> Ir.Or
      in
      Builder.alu ctx.b ir_op t va.operand vb.operand;
      { operand = Ir.Reg t; temp = true })
  | _ -> (
    let ir_op = Option.get (alu_of_binop op) in
    let va = eval ctx a in
    let vb = eval ctx b in
    match (va.operand, vb.operand) with
    | Ir.Imm x, Ir.Imm y -> imm (Ir.eval_alu ir_op x y)
    | _ ->
      release ctx vb;
      release ctx va;
      let t = alloc_temp ctx in
      Builder.alu ctx.b ir_op t va.operand vb.operand;
      { operand = Ir.Reg t; temp = true })

(* conditions: branch on comparisons directly, otherwise on [e != 0] *)
and cond_triple ctx (e : Ast.expr) =
  let cmp_of = function
    | Ast.Eq -> Some Ir.Eq
    | Ast.Ne -> Some Ir.Ne
    | Ast.Lt -> Some Ir.Lt
    | Ast.Le -> Some Ir.Le
    | Ast.Gt -> Some Ir.Gt
    | Ast.Ge -> Some Ir.Ge
    | _ -> None
  in
  match e with
  | Ast.Binop (op, a, b) when cmp_of op <> None ->
    let va = eval ctx a in
    let vb = eval ctx b in
    release ctx vb;
    release ctx va;
    (Option.get (cmp_of op), va.operand, vb.operand)
  | _ ->
    let v = eval ctx e in
    release ctx v;
    (Ir.Ne, v.operand, Ir.Imm 0)

and stmt ctx frame (s : Ast.stmt) =
  match s with
  | Ast.Decl (x, e) ->
    let v = eval ctx e in
    release ctx v;
    let r = alloc_fixed ctx x in
    Builder.mov ctx.b r v.operand;
    ctx.env <- (x, r) :: ctx.env
  | Ast.Assign (x, e) ->
    let v = eval ctx e in
    release ctx v;
    Builder.mov ctx.b (lookup ctx x) v.operand
  | Ast.If (c, then_, else_) -> (
    let cond = cond_triple ctx c in
    match else_ with
    | None -> Builder.if_then ctx.b ~cond (fun () -> block ctx frame then_)
    | Some eb ->
      Builder.if_then_else ctx.b ~cond
        (fun () -> block ctx frame then_)
        (fun () -> block ctx frame eb))
  | Ast.While (c, body) ->
    Builder.while_ ctx.b
      ~cond:(fun () -> cond_triple ctx c)
      (fun () -> block ctx frame body)
  | Ast.Store (addr, value) ->
    let va = eval ctx addr in
    let vv = eval ctx value in
    release ctx vv;
    release ctx va;
    Builder.store ctx.b va.operand (Ir.Imm 0) vv.operand
  | Ast.Flush addr ->
    let va = eval ctx addr in
    release ctx va;
    Builder.flush ctx.b va.operand (Ir.Imm 0)
  | Ast.Expr_stmt e ->
    let v = eval ctx e in
    release ctx v
  | Ast.Return e ->
    (match (e, frame) with
    | Some _, None -> fail "internal: valued return outside a function body"
    | Some expr, Some f ->
      let v = eval ctx expr in
      release ctx v;
      Builder.mov ctx.b f.result v.operand
    | None, _ -> ());
    (match frame with
    | Some f -> Builder.jump ctx.b f.end_label
    | None ->
      (* returning from main ends the program *)
      Builder.halt ctx.b)
  | Ast.Halt -> Builder.halt ctx.b

and block ctx frame stmts =
  (* variables declared inside the block scope out at its end, but their
     registers stay allocated (flat per-function allocation keeps loop
     bodies from re-allocating every iteration) *)
  let saved_env = ctx.env in
  List.iter (stmt ctx frame) stmts;
  ctx.env <- saved_env

and inline_call ctx name args =
  let f =
    match Hashtbl.find_opt ctx.fns name with
    | Some f -> f
    | None -> fail "internal: call to unknown function %s" name
  in
  (* evaluate arguments into the callee's parameter registers *)
  let param_regs =
    List.map2
      (fun p arg ->
        let v = eval ctx arg in
        release ctx v;
        let r = alloc_fixed ctx (name ^ "." ^ p) in
        Builder.mov ctx.b r v.operand;
        (p, r))
      f.Ast.params args
  in
  let result = alloc_fixed ctx (name ^ ".result") in
  Builder.mov ctx.b result (Ir.Imm 0);
  let end_label = Builder.fresh_label ctx.b in
  let saved_env = ctx.env in
  ctx.env <- param_regs;
  block ctx (Some { result; end_label }) f.Ast.body;
  ctx.env <- saved_env;
  Builder.place ctx.b end_label;
  result

let compile fns =
  match Resolve.check fns with
  | Error errors -> Result.Error (String.concat "\n" errors)
  | Ok () -> (
    let table = Hashtbl.create 16 in
    List.iter (fun (f : Ast.fn) -> Hashtbl.replace table f.Ast.name f) fns;
    let main = Hashtbl.find table "main" in
    let ctx =
      {
        b = Builder.create ();
        regs = { next_fixed = 1; temp_top = 1 };
        fns = table;
        env = [];
      }
    in
    try
      block ctx None main.Ast.body;
      Builder.halt ctx.b;
      Ok (Builder.build ctx.b)
    with Error msg -> Result.Error msg)
