(** Speculative information-flow (taint) traces: the causal chain from a
    mispredicted branch through a secret-tainted load to the transmitter
    that touched the cache.

    The pipeline emits a flat stream of {!event}s (one per interesting
    micro-architectural step); this module turns the stream into a leak
    graph of instruction nodes connected by data, address and speculation
    edges, extracts the backward-closed chains that end in a transmitter,
    and renders them deterministically — as schema-versioned JSON, as a
    JSONL event log, or as stable text for golden tests and
    [levioso_fuzz --replay].

    Node identifiers are allocated by the producer (the pipeline) and are
    monotonic across the whole run — unlike sequence numbers, which are
    reused after a squash.  Everything in this module keys on node ids. *)

type kind = Branch | Load | Store | Flush | Alu | Other

type dep =
  | Data  (** value of the source feeds the value of the destination *)
  | Address  (** value of the source feeds an address computation *)
  | Speculation  (** destination executed under the source's prediction *)

type event =
  | Node of { id : int; seq : int; pc : int; kind : kind; disasm : string }
      (** a new instruction node enters the graph *)
  | Source of { id : int; addr : int }
      (** node [id] loaded from secret address [addr]: taint is born *)
  | Edge of { src : int; dst : int; dep : dep }
  | Transmit of { id : int; addr : int }
      (** node [id] touched the cache at a tainted address [addr] *)
  | Resolved of { id : int; mispredicted : bool }
      (** branch node [id] resolved *)
  | Committed of { id : int }
  | Squashed of { id : int }

val kind_to_string : kind -> string
val dep_to_string : dep -> string

val event_to_json : cycle:int -> event -> Json.t
(** One JSONL record: the event plus the cycle it happened on. *)

(** {1 Leak-graph accumulator} *)

type t

val create : unit -> t

val feed : t -> cycle:int -> event -> unit

val is_empty : t -> bool
(** No transmit ever fired — the leak graph has no chains. *)

val chains : ?probe_filter:(int -> bool) -> t -> int list list
(** Backward closure (over data/address/speculation edges) from each
    transmit node, oldest-node-first within a chain, chains ordered by
    their transmit node id.  [probe_filter] keeps only transmits whose
    cache-visible address satisfies it; if the filter would discard every
    chain, all chains are returned instead (the probe delta may sit on a
    different line than the access that caused it). *)

val to_json : ?probe_filter:(int -> bool) -> t -> Json.t
(** Schema-tagged object with [nodes], [edges] and [chains]. *)

val render : ?probe_filter:(int -> bool) -> t -> string
(** Byte-deterministic text rendering: a header, one stats line, then
    each chain as an indented node list with its incoming edges. *)

(** {1 CLI helpers} *)

val parse_range : what:string -> string -> (int * int, string) result
(** Parse ["A:B"] into [(a, b)] with [0 <= a <= b].  On malformed input
    the error message names [what], quotes the offending value and states
    the expected form — suitable for printing verbatim from a CLI. *)
