(** Workloads written in Lev source and built by the repository's own
    compiler (parse → resolve → codegen → optimizer).

    These complement the hand-scheduled DSL kernels in {!Suite}: compiler-
    generated code has different shapes (mov chains, inlined calls,
    materialized conditions), so running the same defenses over them checks
    that the evaluation's conclusions are not an artifact of hand-written
    IR.  Used by the appendix experiment [fig9] and the integration tests. *)

val all : Workload.t list
(** Four kernels: [lev-primes], [lev-crc], [lev-nbody], [lev-bubble]. *)

val names : string list

val find_exn : string -> Workload.t
(** @raise Invalid_argument on unknown names. *)
