lib/ir/emulator.mli: Ir
