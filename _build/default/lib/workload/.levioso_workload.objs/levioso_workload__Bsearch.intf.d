lib/workload/bsearch.mli: Workload
