lib/workload/workload.mli: Levioso_ir
