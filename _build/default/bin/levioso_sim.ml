(* levioso_sim: run suite workloads under secure-speculation defenses and
   report cycles / IPC / overhead versus the unsafe baseline.

   Examples:
     levioso_sim                          # whole suite x all policies
     levioso_sim -w stream -p levioso -v  # one cell, verbose stats
     levioso_sim -w pchase --rob 384 --predictor bimodal *)

module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Cache = Levioso_uarch.Cache
module Registry = Levioso_core.Registry
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite
module Report = Levioso_util.Report
module Stats = Levioso_util.Stats

let run_one ?(trace = 0) config workload policy =
  let maker = Registry.find_exn policy in
  let pipe =
    Pipeline.create ~mem_init:workload.Workload.mem_init config ~policy:maker
      workload.Workload.program
  in
  if trace > 0 then begin
    let remaining = ref trace in
    Pipeline.set_tracer pipe (fun ~cycle event ->
        if !remaining > 0 then begin
          decr remaining;
          Printf.printf "[%6d] %s\n" cycle (Pipeline.event_to_string event)
        end)
  end;
  Pipeline.run pipe;
  pipe

let verbose_report pipe =
  List.iter
    (fun (k, v) -> Printf.printf "  %-32s %s\n" k v)
    (Sim_stats.to_rows (Pipeline.stats pipe));
  List.iter
    (fun (k, v) -> Printf.printf "  %-32s %d\n" k v)
    (Cache.Hierarchy.stats (Pipeline.hierarchy pipe))

let main workload_names policy_names rob predictor budget verbose trace =
  let config =
    {
      Config.default with
      Config.rob_size = rob;
      predictor;
      depset_budget = budget;
    }
  in
  let find name =
    match Suite.find name with
    | Some w -> w
    | None -> Levioso_workload.Levsuite.find_exn name
  in
  let workloads =
    match workload_names with
    | [] -> Suite.all
    | names -> List.map find names
  in
  let policies =
    match policy_names with
    | [] -> Registry.names
    | names ->
      List.iter (fun n -> ignore (Registry.find_exn n : Pipeline.policy_maker)) names;
      names
  in
  let rows =
    List.map
      (fun w ->
        let cells =
          List.map
            (fun p ->
              let pipe = run_one ~trace config w p in
              let stats = Pipeline.stats pipe in
              if verbose then begin
                Printf.printf "== %s / %s ==\n" w.Workload.name p;
                verbose_report pipe
              end;
              stats.Sim_stats.cycles)
            policies
        in
        (w, cells))
      workloads
  in
  let baseline_of cells =
    match (policies, cells) with
    | "unsafe" :: _, base :: _ -> Some base
    | _ -> None
  in
  let header = "workload" :: List.map (fun p -> p ^ " (cyc)") policies in
  let body =
    List.map
      (fun (w, cells) ->
        let base = baseline_of cells in
        w.Workload.name
        :: List.map
             (fun c ->
               match base with
               | Some b when b > 0 && b <> c ->
                 Printf.sprintf "%d (%+.1f%%)" c
                   (Stats.overhead_pct ~baseline:(float_of_int b) (float_of_int c))
               | Some _ | None -> string_of_int c)
             cells)
      rows
  in
  print_endline (Report.table ~header ~rows:body);
  `Ok ()

open Cmdliner

let workloads_arg =
  let doc =
    "Workload to run (repeatable). Known: "
    ^ String.concat ", " (Suite.names @ Levioso_workload.Levsuite.names)
  in
  Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let policies_arg =
  let doc =
    "Defense policy (repeatable). Known: " ^ String.concat ", " Registry.names
  in
  Arg.(value & opt_all string [] & info [ "p"; "policy" ] ~docv:"NAME" ~doc)

let rob_arg =
  Arg.(
    value
    & opt int Config.default.Config.rob_size
    & info [ "rob" ] ~docv:"N" ~doc:"Reorder-buffer size.")

let predictor_arg =
  let predictor_conv =
    Arg.enum
      [
        ("always-taken", Config.Always_taken);
        ("bimodal", Config.Bimodal);
        ("gshare", Config.Gshare);
        ("tage", Config.Tage);
      ]
  in
  Arg.(
    value
    & opt predictor_conv Config.default.Config.predictor
    & info [ "predictor" ] ~docv:"KIND"
        ~doc:"Branch predictor: always-taken, bimodal, gshare or tage.")

let budget_arg =
  Arg.(
    value
    & opt int Config.default.Config.depset_budget
    & info [ "budget" ] ~docv:"K" ~doc:"Dependency-set hardware budget.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full per-run statistics.")

let trace_arg =
  Arg.(
    value & opt int 0
    & info [ "trace" ] ~docv:"N"
        ~doc:"Print the first N microarchitectural events of each run.")

let cmd =
  let doc = "simulate workloads under secure-speculation defenses" in
  let info = Cmd.info "levioso_sim" ~doc in
  Cmd.v info
    Term.(
      ret
        (const main $ workloads_arg $ policies_arg $ rob_arg $ predictor_arg
       $ budget_arg $ verbose_arg $ trace_arg))

let () = exit (Cmd.eval cmd)
