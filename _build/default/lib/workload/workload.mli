(** The workload abstraction: a program plus its input memory image.

    The kernels in this library stand in for the SPEC CPU2017 suite the
    paper evaluates on (see DESIGN.md, substitutions): each stresses a
    different mix of the properties that determine secure-speculation
    overhead — branch density, branch-resolution latency (do branches
    depend on loads?), transmitter density, and how much work lives past
    each branch's reconvergence point. *)

type t = {
  name : string;
  description : string;
  program : Levioso_ir.Ir.program;
  mem_init : int array -> unit;
      (** applied to the zeroed memory image before the run *)
}

val make :
  name:string ->
  description:string ->
  build:(Levioso_ir.Builder.t -> unit) ->
  mem_init:(int array -> unit) ->
  t
(** Build a workload through the assembler DSL; validates the program. *)
