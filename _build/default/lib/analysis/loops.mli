(** Natural-loop detection over the CFG.

    A back edge is an edge [u -> v] where [v] dominates [u]; its natural
    loop is [v] (the header) plus every block that reaches [u] without
    passing through [v].  Nesting depth counts how many loop bodies contain
    a block.

    Used for compiler statistics (loop counts and depths correlate with how
    often Levioso's active-branch regions wrap around back edges) and by
    tests as an independent cross-check of the dominator tree. *)

type loop = {
  header : int;  (** block id of the loop header *)
  back_edge_source : int;  (** block id of the latch *)
  body : int list;  (** block ids, ascending, header included *)
}

type t

val compute : Levioso_ir.Cfg.t -> t

val loops : t -> loop list
(** One entry per back edge, header order. *)

val depth_of_block : t -> int -> int
(** How many loop bodies contain the block (0 = not in a loop). *)

val max_depth : t -> int

val headers : t -> int list
(** Distinct loop-header blocks, ascending. *)
