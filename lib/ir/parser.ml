(* A small hand-written parser: split into lines, strip comments, collect
   labels on a first pass, then assemble each line.  Operands are [rN],
   [#imm] (decimal, optionally negative) or a bare label (branch targets). *)

exception Parse_error of string
(* internal: carries the line number until [parse] renders the message *)
exception Syntax_error of int * string

let fail line msg = raise (Syntax_error (line, msg))

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Disassembly lines carry a "pc:" prefix ("  12: add r1, r1, #1"); drop it
   so printer output parses back.  A prefix counts only when it is all
   digits and instruction text follows (a bare "name:" line is a label). *)
let strip_pc_prefix s =
  match String.index_opt s ':' with
  | Some p
    when p > 0
         && p < String.length s - 1
         && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 0 p) ->
    String.sub s (p + 1) (String.length s - p - 1)
  | Some _ | None -> s

let tokenize s =
  (* Separate punctuation used by the syntax, then split on blanks. *)
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | ',' | '[' | ']' | '+' -> Buffer.add_string buf (Printf.sprintf " %c " c)
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let parse_reg line tok =
  let len = String.length tok in
  if len >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (len - 1)) with
    | Some r when r >= 0 && r < Ir.num_regs -> r
    | Some _ | None -> fail line ("bad register: " ^ tok)
  else fail line ("expected register, got: " ^ tok)

let parse_operand line tok =
  let len = String.length tok in
  if len >= 2 && tok.[0] = '#' then
    match int_of_string_opt (String.sub tok 1 (len - 1)) with
    | Some i -> Ir.Imm i
    | None -> fail line ("bad immediate: " ^ tok)
  else Ir.Reg (parse_reg line tok)

let cmp_of_suffix = function
  | "eq" -> Some Ir.Eq
  | "ne" -> Some Ir.Ne
  | "lt" -> Some Ir.Lt
  | "le" -> Some Ir.Le
  | "gt" -> Some Ir.Gt
  | "ge" -> Some Ir.Ge
  | _ -> None

let alu_of_mnemonic m =
  match m with
  | "add" -> Some Ir.Add
  | "sub" -> Some Ir.Sub
  | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div
  | "rem" -> Some Ir.Rem
  | "and" -> Some Ir.And
  | "or" -> Some Ir.Or
  | "xor" -> Some Ir.Xor
  | "shl" -> Some Ir.Shl
  | "shr" -> Some Ir.Shr
  | _ ->
    if String.length m = 5 && String.sub m 0 3 = "set" then
      Option.map (fun c -> Ir.Set c) (cmp_of_suffix (String.sub m 3 2))
    else None

(* [mem_operands line toks] parses "[ base + off ]" and returns
   (base, off, rest). *)
let mem_operands line toks =
  match toks with
  | "[" :: base :: "+" :: off :: "]" :: rest ->
    (parse_operand line base, parse_operand line off, rest)
  | "[" :: base :: "]" :: rest -> (parse_operand line base, Ir.Imm 0, rest)
  | _ -> fail line "expected memory operand [base + off]"

type pending =
  | P_ready of Ir.instr
  | P_branch of Ir.cmp * Ir.operand * Ir.operand * string
  | P_jump of string

let parse_line line toks =
  match toks with
  | [] -> None
  | mnemonic :: rest -> (
    match (alu_of_mnemonic mnemonic, rest) with
    | Some op, [ dst; ","; a; ","; b ] ->
      Some
        (P_ready
           (Ir.Alu
              {
                op;
                dst = parse_reg line dst;
                a = parse_operand line a;
                b = parse_operand line b;
              }))
    | Some _, _ -> fail line "alu syntax: op rD, a, b"
    | None, _ -> (
      match (mnemonic, rest) with
      | "mov", [ dst; ","; a ] ->
        Some
          (P_ready
             (Ir.Alu
                {
                  op = Ir.Add;
                  dst = parse_reg line dst;
                  a = parse_operand line a;
                  b = Ir.Imm 0;
                }))
      | "load", dst :: "," :: mem ->
        let base, off, rest = mem_operands line mem in
        if rest <> [] then fail line "trailing tokens after load";
        Some (P_ready (Ir.Load { dst = parse_reg line dst; base; off }))
      | "store", mem -> (
        let base, off, rest = mem_operands line mem in
        match rest with
        | [ ","; src ] ->
          Some (P_ready (Ir.Store { base; off; src = parse_operand line src }))
        | _ -> fail line "store syntax: store [base + off], src")
      | "flush", mem ->
        let base, off, rest = mem_operands line mem in
        if rest <> [] then fail line "trailing tokens after flush";
        Some (P_ready (Ir.Flush { base; off }))
      | "rdcycle", [ dst ] ->
        Some (P_ready (Ir.Rdcycle { dst = parse_reg line dst; after = Ir.Imm 0 }))
      | "rdcycle", [ dst; ","; after ] ->
        Some
          (P_ready
             (Ir.Rdcycle
                { dst = parse_reg line dst; after = parse_operand line after }))
      | "jump", [ label ] -> Some (P_jump label)
      | "halt", [] -> Some (P_ready Ir.Halt)
      | _, _ -> (
        (* bCC a, b, label *)
        if String.length mnemonic = 3 && mnemonic.[0] = 'b' then
          match (cmp_of_suffix (String.sub mnemonic 1 2), rest) with
          | Some cmp, [ a; ","; b; ","; label ] ->
            Some (P_branch (cmp, parse_operand line a, parse_operand line b, label))
          | Some _, _ -> fail line "branch syntax: bcc a, b, label"
          | None, _ -> fail line ("unknown mnemonic: " ^ mnemonic)
        else fail line ("unknown mnemonic: " ^ mnemonic))))

(* Branch targets may also be written [@N] (absolute pc), which is what the
   printer emits — so print/parse round-trips. *)
let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let labels = Hashtbl.create 16 in
    let pendings = ref [] in
    let count = ref 0 in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let s = String.trim (strip_pc_prefix (String.trim (strip_comment raw))) in
        if s <> "" then
          if String.length s > 1 && s.[String.length s - 1] = ':' then begin
            let name = String.trim (String.sub s 0 (String.length s - 1)) in
            if Hashtbl.mem labels name then fail lineno ("duplicate label " ^ name);
            Hashtbl.add labels name !count
          end
          else
            match parse_line lineno (tokenize s) with
            | Some p ->
              pendings := (lineno, p) :: !pendings;
              incr count
            | None -> ())
      lines;
    let resolve lineno name =
      if String.length name > 1 && name.[0] = '@' then
        match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
        | Some pc -> pc
        | None -> fail lineno ("bad absolute target " ^ name)
      else
        match Hashtbl.find_opt labels name with
        | Some pc -> pc
        | None -> fail lineno ("unknown label " ^ name)
    in
    let finish (lineno, p) =
      match p with
      | P_ready i -> i
      | P_branch (cmp, a, b, l) ->
        Ir.Branch { cmp; a; b; target = resolve lineno l }
      | P_jump l -> Ir.Jump { target = resolve lineno l }
    in
    let program = Array.of_list (List.rev_map finish !pendings) in
    match Ir.validate program with
    | Ok () -> Ok program
    | Error msg -> Error msg
  with Syntax_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn text =
  match parse text with
  | Ok p -> p
  | Error msg -> raise (Parse_error msg)
