lib/workload/hashjoin.ml: Array Layout Levioso_ir Levioso_util Workload
