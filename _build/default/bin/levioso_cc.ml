(* levioso_cc: the Lev compiler driver.

   Compiles a .lev source file to the simulator's IR, optionally runs the
   Levioso annotation pass, and can execute the result under any defense:

     levioso_cc prog.lev                 # annotated disassembly to stdout
     levioso_cc prog.lev --run           # execute (emulator), dump mem[64]
     levioso_cc prog.lev --run -p levioso --watch 64 --watch 65 *)

module Ir = Levioso_ir.Ir
module Emulator = Levioso_ir.Emulator
module Compiler = Levioso_lang.Compiler
module Annotation = Levioso_core.Annotation
module Registry = Levioso_core.Registry
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Opt = Levioso_opt.Opt

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let main file run policy watches optimize =
  match Compiler.compile (read_file file) with
  | Error msg ->
    prerr_endline ("levioso_cc: " ^ msg);
    `Error (false, msg)
  | Ok raw ->
    let program = if optimize then Opt.optimize raw else raw in
    if optimize then
      Printf.eprintf "levioso_cc: -O: %d -> %d instructions\n"
        (Array.length raw) (Array.length program);
    let annotation = Annotation.analyze program in
    if not run then begin
      Printf.printf "; %s: %d instructions\n" file (Array.length program);
      print_string (Annotation.disassemble annotation);
      List.iter
        (fun (k, v) -> Printf.printf ";   %-18s %s\n" k v)
        (Annotation.stats annotation)
    end
    else begin
      let pipe =
        Pipeline.create Config.default ~policy:(Registry.find_exn policy) program
      in
      Pipeline.run pipe;
      let stats = Pipeline.stats pipe in
      Printf.printf "%s under %s: %d cycles, %d instructions (IPC %.2f)\n" file
        policy stats.Sim_stats.cycles stats.Sim_stats.committed
        (Sim_stats.ipc stats);
      let watches = if watches = [] then [ 64 ] else watches in
      List.iter
        (fun addr -> Printf.printf "  mem[%d] = %d\n" addr (Pipeline.mem pipe).(addr))
        watches
    end;
    `Ok ()

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Lev source file.")

let run_arg = Arg.(value & flag & info [ "run" ] ~doc:"Execute instead of printing.")

let policy_arg =
  let doc = "Defense policy for --run. Known: " ^ String.concat ", " Registry.names in
  Arg.(value & opt string "unsafe" & info [ "p"; "policy" ] ~docv:"NAME" ~doc)

let watch_arg =
  Arg.(
    value & opt_all int []
    & info [ "watch" ] ~docv:"ADDR" ~doc:"Memory word to print after --run (repeatable).")

let optimize_arg =
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the IR optimizer.")

let cmd =
  let doc = "compile Lev programs for the Levioso simulator" in
  Cmd.v (Cmd.info "levioso_cc" ~doc)
    Term.(
      ret (const main $ file_arg $ run_arg $ policy_arg $ watch_arg $ optimize_arg))

let () = exit (Cmd.eval cmd)
