module Ir = Levioso_ir.Ir
module Parser = Levioso_ir.Parser
module Emulator = Levioso_ir.Emulator
module Encoding = Levioso_ir.Encoding
module Annotation = Levioso_core.Annotation
module Registry = Levioso_core.Registry
module Config = Levioso_uarch.Config
module Compiler = Levioso_lang.Compiler
module Lparser = Levioso_lang.Lparser
module Interp = Levioso_lang.Interp
module Opt = Levioso_opt.Opt

type fail = {
  detail : string;
  program : Ir.program;
  source : string option;
  still_fails : (Ir.program -> bool) option;
  leak : (Ir.program -> string option) option;
}

type verdict =
  | Pass
  | Fail of fail

type outcome = {
  verdict : verdict;
  extras : (string * int) list;
}

type t = {
  name : string;
  describe : string;
  run : config:Config.t -> seed:int -> outcome;
}

let pass = { verdict = Pass; extras = [] }

let failure ?source ?still_fails ?leak program detail =
  { verdict = Fail { detail; program; source; still_fails; leak }; extras = [] }

(* Fuel-guarded emulation.  [Error] means the program itself does not
   terminate within the budget — possible only for shrinker-mangled
   candidates (generated programs terminate by construction), and never
   a policy bug, so callers treat it as "not a reproduction". *)
let emulate ~mem_words ~mem_init program =
  match
    Emulator.run_program ~mem_words ~fuel:2_000_000
      ~init:(fun st -> mem_init st.Emulator.mem)
      program
  with
  | st -> Ok st
  | exception Emulator.Out_of_fuel -> Error "emulator out of fuel"

(* ------------------------------------------------------------------ *)
(* arch-diff                                                           *)
(* ------------------------------------------------------------------ *)

(* Policies that block every speculative transmitter outright: under
   them a non-zero squashed-transmitter count is itself a bug.  The
   selective policies (dom, stt, nda, the levioso family) deliberately
   let safe transmitters run, so the counter is meaningless there. *)
let transmit_checked = [ "fence"; "delay" ]

let policy_verdict ~config ~mem_init ~reference ~policy program =
  match Observe.run ~config ~policy ~mem_init program with
  | obs -> (
    match Observe.against_emulator ~reference obs with
    | Ok ()
      when List.mem policy transmit_checked
           && obs.Observe.wrong_path_transmits > 0 ->
      Error
        (Printf.sprintf "%d wrong-path transmit(s) under a total-blocking policy"
           obs.Observe.wrong_path_transmits)
    | r -> r)
  | exception e -> Error ("pipeline raised " ^ Printexc.to_string e)

let arch_diff =
  let run ~config ~seed =
    let program = Gen.random_program seed in
    let mem_init = Gen.mem_init seed in
    let mem_words = config.Config.mem_words in
    match emulate ~mem_words ~mem_init program with
    | Error msg -> failure program msg
    | Ok reference ->
      let rec loop = function
        | [] -> pass
        | policy :: rest -> (
          match policy_verdict ~config ~mem_init ~reference ~policy program with
          | Ok () -> loop rest
          | Error detail ->
            let still_fails p =
              match emulate ~mem_words ~mem_init p with
              | Error _ -> false
              | Ok reference ->
                Result.is_error
                  (policy_verdict ~config ~mem_init ~reference ~policy p)
            in
            failure ~still_fails program
              (Printf.sprintf "policy %s: %s" policy detail))
      in
      loop Registry.names
  in
  {
    name = "arch-diff";
    describe = "pipeline vs. architectural emulator, every policy";
    run;
  }

(* ------------------------------------------------------------------ *)
(* lang-diff                                                           *)
(* ------------------------------------------------------------------ *)

let first_mem_diff a b =
  let rec go i =
    if i >= Array.length a then None
    else if a.(i) <> b.(i) then Some i
    else go (i + 1)
  in
  go 0

let lang_diff =
  let run ~config:_ ~seed =
    let source = Gen_lev.random_source seed in
    let mem_words = Gen_lev.mem_words in
    let mem_init mem = Gen_lev.init_mem seed mem in
    let run_ir p =
      match emulate ~mem_words ~mem_init p with
      | Ok st -> Ok st.Emulator.mem
      | Error _ as e -> e
    in
    match Compiler.compile source with
    | Error msg -> failure ~source [| Ir.Halt |] ("compile failed: " ^ msg)
    | Ok ir -> (
      match Lparser.parse source with
      | Error msg ->
        failure ~source [| Ir.Halt |] ("printed source re-parse failed: " ^ msg)
      | Ok ast -> (
        let mem_ref = Array.make mem_words 0 in
        mem_init mem_ref;
        match Interp.run ~mem:mem_ref ast with
        | exception Interp.Stuck msg ->
          failure ~source ir ("interpreter stuck: " ^ msg)
        | () -> (
          match run_ir ir with
          | Error msg -> failure ~source ir msg
          | Ok mem_ir -> (
            match first_mem_diff mem_ref mem_ir with
            | Some addr ->
              failure ~source ir
                (Printf.sprintf
                   "compiled code diverges from interpreter at mem[%d]: %d vs %d"
                   addr mem_ref.(addr) mem_ir.(addr))
            | None -> (
              let still_fails p =
                match (run_ir p, run_ir (Opt.optimize p)) with
                | Ok a, Ok b -> a <> b
                | _ -> false
              in
              match run_ir (Opt.optimize ir) with
              | Error msg -> failure ~source ~still_fails ir ("optimized: " ^ msg)
              | Ok mem_opt -> (
                match first_mem_diff mem_ir mem_opt with
                | Some addr ->
                  failure ~source ~still_fails ir
                    (Printf.sprintf
                       "optimizer changed architectural memory at mem[%d]: %d vs %d"
                       addr mem_ir.(addr) mem_opt.(addr))
                | None -> pass))))))
  in
  {
    name = "lang-diff";
    describe = "Lev interpreter vs. compiled (and optimized) IR";
    run;
  }

(* ------------------------------------------------------------------ *)
(* round trips                                                         *)
(* ------------------------------------------------------------------ *)

let text_ok program =
  let text = Ir.program_to_string program in
  match Parser.parse text with
  | Error msg -> Error ("re-parse failed: " ^ msg)
  | Ok p' ->
    if p' = program then Ok ()
    else
      Error
        (match
           first_mem_diff
             (Array.map Hashtbl.hash program)
             (Array.map Hashtbl.hash p')
         with
        | Some pc -> Printf.sprintf "re-parsed program differs at pc %d" pc
        | None -> "re-parsed program differs in length")

let roundtrip_text =
  let run ~config:_ ~seed =
    let program = Gen.random_program seed in
    match text_ok program with
    | Ok () -> pass
    | Error detail ->
      failure ~still_fails:(fun p -> Result.is_error (text_ok p)) program detail
  in
  {
    name = "roundtrip-text";
    describe = "program_to_string . parse = id";
    run;
  }

let encodable_instr instr =
  let seen = ref false in
  let fix = function
    | Ir.Imm 0 -> Ir.Reg Ir.zero_reg
    | Ir.Imm _ when !seen -> Ir.Reg Ir.zero_reg
    | Ir.Imm _ as op ->
      seen := true;
      op
    | Ir.Reg _ as op -> op
  in
  match instr with
  | Ir.Alu { op; dst; a; b } ->
    let a = fix a in
    let b = fix b in
    Ir.Alu { op; dst; a; b }
  | Ir.Load { dst; base; off } ->
    let base = fix base in
    let off = fix off in
    Ir.Load { dst; base; off }
  | Ir.Store { base; off; src } ->
    let base = fix base in
    let off = fix off in
    let src = fix src in
    Ir.Store { base; off; src }
  | Ir.Flush { base; off } ->
    let base = fix base in
    let off = fix off in
    Ir.Flush { base; off }
  | Ir.Rdcycle { dst; after } -> Ir.Rdcycle { dst; after = fix after }
  | Ir.Branch { cmp; a = Ir.Imm _; b = Ir.Imm n; target } ->
    (* constant-vs-constant branches are an encoder error by design *)
    Ir.Branch { cmp; a = Ir.Reg Ir.zero_reg; b = Ir.Imm n; target }
  | Ir.Branch _ | Ir.Jump _ | Ir.Halt -> instr

let encodable program = Array.map encodable_instr program

let mirror = function
  | Ir.Eq -> Ir.Eq
  | Ir.Ne -> Ir.Ne
  | Ir.Lt -> Ir.Gt
  | Ir.Le -> Ir.Ge
  | Ir.Gt -> Ir.Lt
  | Ir.Ge -> Ir.Le

(* decode output vs. the encodable-normalized input: exact match, or the
   encoder's documented mirroring of a constant-on-the-left branch *)
let instr_equiv expected got =
  expected = got
  ||
  match (expected, got) with
  | ( Ir.Branch { cmp; a = Ir.Imm n; b = Ir.Reg r; target },
      Ir.Branch { cmp = cmp'; a = Ir.Reg r'; b = b'; target = target' } ) ->
    cmp' = mirror cmp && r' = r && target' = target
    && (b' = Ir.Imm n || (n = 0 && b' = Ir.Reg Ir.zero_reg))
  | _ -> false

let binary_ok program =
  let p = encodable program in
  let annot = Annotation.analyze p in
  let hints pc =
    match Annotation.hint_for annot pc with
    | Some (Annotation.Reconverges_at r) -> Some r
    | Some Annotation.No_reconvergence | None -> None
  in
  match Encoding.encode ~hints p with
  | Error { Encoding.pc; reason } ->
    Error (Printf.sprintf "encode failed at pc %d: %s" pc reason)
  | Ok words -> (
    match Encoding.decode words with
    | Error msg -> Error ("decode failed: " ^ msg)
    | Ok (p', pairs) ->
      if Array.length p' <> Array.length p then
        Error
          (Printf.sprintf "decode changed program length: %d vs %d"
             (Array.length p) (Array.length p'))
      else begin
        let bad = ref None in
        Array.iteri
          (fun pc instr ->
            if !bad = None && not (instr_equiv instr p'.(pc)) then
              bad := Some pc)
          p;
        match !bad with
        | Some pc ->
          Error
            (Printf.sprintf "pc %d: encoded %s, decoded %s" pc
               (Ir.instr_to_string p.(pc))
               (Ir.instr_to_string p'.(pc)))
        | None ->
          let expected =
            List.filter_map
              (fun pc -> Option.map (fun r -> (pc, r)) (hints pc))
              (List.init (Array.length p) Fun.id)
          in
          if List.sort compare pairs <> List.sort compare expected then
            Error "reconvergence hints did not survive the round trip"
          else Ok ()
      end)

let roundtrip_binary =
  let run ~config:_ ~seed =
    let program = Gen.random_program seed in
    match binary_ok program with
    | Ok () -> pass
    | Error detail ->
      failure
        ~still_fails:(fun p -> Result.is_error (binary_ok p))
        program detail
  in
  {
    name = "roundtrip-binary";
    describe = "binary encode . decode = id, hints included";
    run;
  }

(* ------------------------------------------------------------------ *)
(* noninterference                                                     *)
(* ------------------------------------------------------------------ *)

let ni_policies =
  [
    "fence"; "delay"; "dom"; "stt"; "nda"; "levioso"; "levioso-ctrl";
    "levioso-static";
  ]

(* The oracle is only sound on programs whose architectural execution is
   secret-independent.  Generated cases are by construction; shrunk
   candidates must be re-checked or the shrinker would happily produce
   programs that read the secret architecturally. *)
let arch_secret_free ~mem_words case secrets_a secrets_b program =
  let run secrets =
    emulate ~mem_words
      ~mem_init:(case.Gen.mem_init ~secrets)
      program
  in
  match (run secrets_a, run secrets_b) with
  | Ok a, Ok b ->
    if a.Emulator.retired <> b.Emulator.retired then
      Error "architectural retired count depends on the secret"
    else if a.Emulator.regs <> b.Emulator.regs then
      Error "architectural registers depend on the secret"
    else begin
      let ignored addr = Array.exists (fun x -> x = addr) case.Gen.secret_addrs in
      let bad = ref None in
      Array.iteri
        (fun i v ->
          if !bad = None && (not (ignored i)) && v <> b.Emulator.mem.(i) then
            bad := Some i)
        a.Emulator.mem;
      match !bad with
      | Some addr ->
        Error
          (Printf.sprintf "architectural mem[%d] depends on the secret" addr)
      | None -> Ok ()
    end
  | Error msg, _ | _, Error msg -> Error msg

let ni_pair_diverges ~config ~policy case secrets_a secrets_b program =
  let observe secrets =
    Observe.run ~probe_addrs:case.Gen.probe_addrs ~config ~policy
      ~mem_init:(case.Gen.mem_init ~secrets)
      program
  in
  match (observe secrets_a, observe secrets_b) with
  | a, b -> (
    match Observe.equal ~ignore_mem:case.Gen.secret_addrs a b with
    | Ok () -> Ok None
    | Error msg -> Ok (Some msg))
  | exception e -> Error ("pipeline raised " ^ Printexc.to_string e)

(* Leak provenance for a noninterference failure: re-run the leaking
   policy with the flow tracer seeded from the planted secret slots, and
   render the chains whose transmit address lands on a probe line that
   actually differed between the two runs (falling back to every chain
   when the divergence was not a probe line — e.g. a cycle-count leak).
   Evaluated lazily, on the {e shrunk} reproduction. *)
let ni_leak_chain ~config ~policy case secrets_a secrets_b program =
  let secret_ranges =
    Array.to_list (Array.map (fun a -> (a, a)) case.Gen.secret_addrs)
  in
  match
    ( Observe.run_traced ~probe_addrs:case.Gen.probe_addrs ~secret_ranges
        ~config ~policy
        ~mem_init:(case.Gen.mem_init ~secrets:secrets_a)
        program,
      Observe.run ~probe_addrs:case.Gen.probe_addrs ~config ~policy
        ~mem_init:(case.Gen.mem_init ~secrets:secrets_b)
        program )
  with
  | (obs_a, ft), obs_b ->
    if Levioso_telemetry.Flowtrace.is_empty ft then None
    else begin
      let line_words = config.Config.l1.Config.line_words in
      let diff_lines = ref [] in
      Array.iteri
        (fun i base ->
          if
            i < Array.length obs_b.Observe.probe
            && obs_a.Observe.probe.(i) <> obs_b.Observe.probe.(i)
          then diff_lines := base :: !diff_lines)
        case.Gen.probe_addrs;
      let probe_filter =
        match !diff_lines with
        | [] -> None
        | lines ->
          Some
            (fun addr ->
              List.exists (fun b -> addr >= b && addr < b + line_words) lines)
      in
      Some (Levioso_telemetry.Flowtrace.render ?probe_filter ft)
    end
  | exception _ -> None

let noninterference =
  let run ~config ~seed =
    let case = Gen.ni_case seed in
    let secrets_a, secrets_b = Gen.ni_secret_pair seed case in
    let program = case.Gen.program in
    let mem_words = config.Config.mem_words in
    match arch_secret_free ~mem_words case secrets_a secrets_b program with
    | Error msg -> failure program ("generator broke its own contract: " ^ msg)
    | Ok () ->
      let rec loop = function
        | [] ->
          (* power check: the same pair must be distinguishable without a
             defense, otherwise a pass proves nothing *)
          let diverged =
            match
              ni_pair_diverges ~config ~policy:"unsafe" case secrets_a
                secrets_b program
            with
            | Ok (Some _) -> 1
            | Ok None | Error _ -> 0
          in
          { verdict = Pass; extras = [ ("ni_unsafe_divergence", diverged) ] }
        | policy :: rest -> (
          match
            ni_pair_diverges ~config ~policy case secrets_a secrets_b program
          with
          | Ok None -> loop rest
          | Ok (Some msg) ->
            let still_fails p =
              Result.is_ok
                (arch_secret_free ~mem_words case secrets_a secrets_b p)
              &&
              match
                ni_pair_diverges ~config ~policy case secrets_a secrets_b p
              with
              | Ok (Some _) -> true
              | Ok None | Error _ -> false
            in
            let leak = ni_leak_chain ~config ~policy case secrets_a secrets_b in
            failure ~still_fails ~leak program
              (Printf.sprintf "policy %s leaks the secret: %s" policy msg)
          | Error msg ->
            failure program (Printf.sprintf "policy %s: %s" policy msg))
      in
      loop ni_policies
  in
  {
    name = "noninterference";
    describe = "two-run secret-independence of the attacker view";
    run;
  }

(* ------------------------------------------------------------------ *)

let all =
  [ arch_diff; lang_diff; roundtrip_text; roundtrip_binary; noninterference ]

let names = List.map (fun o -> o.name) all
let find name = List.find_opt (fun o -> o.name = name) all

let input_of t ~seed =
  if t.name = lang_diff.name then begin
    let source = Gen_lev.random_source seed in
    let program =
      match Compiler.compile source with
      | Ok ir -> ir
      | Error _ -> [| Ir.Halt |]
    in
    (program, Some source)
  end
  else if t.name = noninterference.name then
    ((Gen.ni_case seed).Gen.program, None)
  else (Gen.random_program seed, None)
