lib/util/report.mli:
