module Ir = Levioso_ir.Ir

let nop = Ir.Alu { op = Ir.Add; dst = Ir.zero_reg; a = Ir.Imm 0; b = Ir.Imm 0 }

(* Delete [i, j) and remap control-flow targets across the gap; targets
   inside the deleted range collapse to its start (the instruction that
   now sits where the range began). *)
let remove_range p i j =
  let removed = j - i in
  let remap t = if t >= j then t - removed else if t > i then i else t in
  let fix = function
    | Ir.Branch { cmp; a; b; target } ->
      Ir.Branch { cmp; a; b; target = remap target }
    | Ir.Jump { target } -> Ir.Jump { target = remap target }
    | other -> other
  in
  Array.init
    (Array.length p - removed)
    (fun k -> fix (if k < i then p.(k) else p.(k + removed)))

let simpler_operands = function
  | Ir.Reg r when r <> Ir.zero_reg -> [ Ir.Imm 0 ]
  | Ir.Imm 0 | Ir.Reg _ -> []
  | Ir.Imm n -> Ir.Imm 0 :: (if n / 2 <> n then [ Ir.Imm (n / 2) ] else [])

(* Structurally simpler variants of one instruction: each operand
   position simplified independently (cartesian blowup is not worth it —
   the fixpoint loop composes single steps). *)
let simpler_instrs instr =
  let with_ops build ops =
    List.concat
      (List.mapi
         (fun i op ->
           List.map
             (fun op' -> build (List.mapi (fun j o -> if i = j then op' else o) ops))
             (simpler_operands op))
         ops)
  in
  match instr with
  | Ir.Alu { op; dst; a; b } ->
    with_ops
      (function
        | [ a; b ] -> Ir.Alu { op; dst; a; b }
        | _ -> assert false)
      [ a; b ]
  | Ir.Load { dst; base; off } ->
    with_ops
      (function
        | [ base; off ] -> Ir.Load { dst; base; off }
        | _ -> assert false)
      [ base; off ]
  | Ir.Store { base; off; src } ->
    with_ops
      (function
        | [ base; off; src ] -> Ir.Store { base; off; src }
        | _ -> assert false)
      [ base; off; src ]
  | Ir.Branch { cmp; a; b; target } ->
    with_ops
      (function
        | [ a; b ] -> Ir.Branch { cmp; a; b; target }
        | _ -> assert false)
      [ a; b ]
  | Ir.Flush { base; off } ->
    with_ops
      (function
        | [ base; off ] -> Ir.Flush { base; off }
        | _ -> assert false)
      [ base; off ]
  | Ir.Rdcycle { dst; after } ->
    with_ops
      (function
        | [ after ] -> Ir.Rdcycle { dst; after }
        | _ -> assert false)
      [ after ]
  | Ir.Jump _ | Ir.Halt -> []

let run ?(budget = 2000) ~keep p0 =
  let budget = ref budget in
  let try_keep p =
    if !budget <= 0 then false
    else begin
      decr budget;
      match Ir.validate p with
      | Ok () -> keep p
      | Error _ -> false
    end
  in
  if not (try_keep p0) then p0
  else begin
    let cur = ref p0 in
    let changed = ref true in
    let attempt candidate =
      if Array.length candidate < Array.length !cur || candidate <> !cur then
        if try_keep candidate then begin
          cur := candidate;
          changed := true;
          true
        end
        else false
      else false
    in
    while !changed && !budget > 0 do
      changed := false;
      (* pass 1: ddmin-style range removal, largest chunks first *)
      let size = ref (max 1 (Array.length !cur / 2)) in
      while !size >= 1 && !budget > 0 do
        let i = ref 0 in
        while !i < Array.length !cur && !budget > 0 do
          let j = min (Array.length !cur) (!i + !size) in
          if j > !i && not (attempt (remove_range !cur !i j)) then i := !i + !size
        done;
        size := !size / 2
      done;
      (* pass 2: weaken single instructions to a no-op *)
      let pc = ref 0 in
      while !pc < Array.length !cur && !budget > 0 do
        let p = !cur in
        (if p.(!pc) <> nop && p.(!pc) <> Ir.Halt then begin
           let candidate = Array.copy p in
           candidate.(!pc) <- nop;
           ignore (attempt candidate : bool)
         end);
        incr pc
      done;
      (* pass 3: simplify operands in place *)
      let pc = ref 0 in
      while !pc < Array.length !cur && !budget > 0 do
        let variants = simpler_instrs (!cur).(!pc) in
        List.iter
          (fun instr ->
            if !budget > 0 then begin
              let candidate = Array.copy !cur in
              candidate.(!pc) <- instr;
              ignore (attempt candidate : bool)
            end)
          variants;
        incr pc
      done
    done;
    !cur
  end
