lib/lang/lparser.ml: Ast Lexer List Printf Result
