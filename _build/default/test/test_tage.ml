module Tage = Levioso_uarch.Tage
module Config = Levioso_uarch.Config
module Predictor = Levioso_uarch.Predictor

(* Drive the raw TAGE structure the way the pipeline drives Predictor:
   maintain our own history, train with the prediction-time history. *)
let accuracy_raw ~pattern ~rounds =
  let t = Tage.create ~table_bits:10 in
  let history = ref 0 in
  let correct = ref 0 in
  for i = 0 to rounds - 1 do
    let taken = pattern i in
    let guess = Tage.predict t ~pc:100 ~history:!history in
    Tage.update t ~pc:100 ~history:!history ~taken;
    if guess = taken then incr correct;
    history := (!history lsl 1) lor (if taken then 1 else 0)
  done;
  float_of_int !correct /. float_of_int rounds

let test_learns_bias () =
  let acc = accuracy_raw ~pattern:(fun _ -> true) ~rounds:300 in
  Alcotest.(check bool) (Printf.sprintf "bias acc %.2f" acc) true (acc > 0.95)

let test_learns_alternation () =
  let acc = accuracy_raw ~pattern:(fun i -> i mod 2 = 0) ~rounds:600 in
  Alcotest.(check bool) (Printf.sprintf "alternation acc %.2f" acc) true (acc > 0.9)

let test_learns_long_period_loop () =
  (* a loop with trip count 24: taken 23 times, then one not-taken exit.
     Needs >= 24 bits of history — beyond gshare-12, within TAGE's reach. *)
  let pattern i = i mod 24 <> 23 in
  let acc = accuracy_raw ~pattern ~rounds:3000 in
  Alcotest.(check bool) (Printf.sprintf "loop-24 acc %.2f" acc) true (acc > 0.95)

let test_beats_gshare_on_long_period () =
  let pattern i = i mod 24 <> 23 in
  let tage = accuracy_raw ~pattern ~rounds:3000 in
  (* same protocol through the Predictor wrapper for gshare *)
  let gshare_acc =
    let p = Predictor.create { Config.default with Config.predictor = Config.Gshare } in
    let correct = ref 0 in
    for i = 0 to 2999 do
      let taken = pattern i in
      let snap = Predictor.snapshot p in
      let guess = Predictor.predict p ~pc:100 in
      Predictor.update p ~pc:100 ~history:snap ~taken;
      if guess <> taken then begin
        Predictor.restore p snap;
        Predictor.force_history p ~taken
      end;
      if guess = taken then incr correct
    done;
    float_of_int !correct /. 3000.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "tage %.2f > gshare %.2f" tage gshare_acc)
    true (tage > gshare_acc)

let test_distinguishes_pcs () =
  (* two branches with opposite biases at different pcs must not destroy
     each other *)
  let t = Tage.create ~table_bits:10 in
  let history = ref 0 in
  let correct = ref 0 in
  for i = 0 to 599 do
    let pc = if i mod 2 = 0 then 40 else 80 in
    let taken = pc = 40 in
    let guess = Tage.predict t ~pc ~history:!history in
    Tage.update t ~pc ~history:!history ~taken;
    if guess = taken then incr correct;
    history := (!history lsl 1) lor (if taken then 1 else 0)
  done;
  Alcotest.(check bool) "per-pc bias" true (float_of_int !correct /. 600.0 > 0.9)

let test_through_predictor_wrapper () =
  (* Tage selected via the Config plumbs through Predictor + snapshots. *)
  let p = Predictor.create { Config.default with Config.predictor = Config.Tage } in
  let correct = ref 0 in
  for i = 0 to 999 do
    let taken = i mod 3 <> 2 in
    let snap = Predictor.snapshot p in
    let guess = Predictor.predict p ~pc:12 in
    Predictor.update p ~pc:12 ~history:snap ~taken;
    if guess <> taken then begin
      Predictor.restore p snap;
      Predictor.force_history p ~taken
    end;
    if guess = taken then incr correct
  done;
  Alcotest.(check bool)
    (Printf.sprintf "wrapper acc %.2f" (float_of_int !correct /. 1000.0))
    true
    (float_of_int !correct /. 1000.0 > 0.85)

let test_pipeline_runs_with_tage () =
  (* End-to-end: the whole simulator under a TAGE front end stays
     architecturally correct. *)
  let program =
    Levioso_ir.Parser.parse_exn
      {|
        mov r1, #0
        mov r2, #0
      head:
        bge r1, #60, out
        rem r3, r1, #5
        beq r3, #0, skip
        add r2, r2, r1
      skip:
        add r1, r1, #1
        jump head
      out:
        halt
      |}
  in
  let config =
    { Config.default with Config.predictor = Config.Tage; mem_words = 65536 }
  in
  match
    Levioso_core.Levioso_api.check_against_emulator ~config ~policy:"levioso"
      program
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  ( "tage",
    [
      Alcotest.test_case "learns bias" `Quick test_learns_bias;
      Alcotest.test_case "learns alternation" `Quick test_learns_alternation;
      Alcotest.test_case "learns long-period loop" `Quick test_learns_long_period_loop;
      Alcotest.test_case "beats gshare on long period" `Quick test_beats_gshare_on_long_period;
      Alcotest.test_case "distinguishes pcs" `Quick test_distinguishes_pcs;
      Alcotest.test_case "predictor wrapper" `Quick test_through_predictor_wrapper;
      Alcotest.test_case "pipeline end-to-end" `Quick test_pipeline_runs_with_tage;
    ] )
