(* Graph sweep (BFS-relaxation flavour, mcf/omnetpp-like): for every node,
   walk its adjacency list through indirect loads and conditionally
   accumulate a neighbour metric.  Combines load-derived addresses (taint
   pressure) with memory-dependent branches (delay pressure). *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let nodes = 3000
let max_degree = 6

(* Layout: per node i, offsets[i] at data_base + i holds the address of its
   adjacency block; block = degree :: neighbours.  Node metrics live in a
   separate array. *)
let offsets_base = Layout.data_base
let metric_base = Layout.data_base + 4096
let bonus_base = Layout.data_base + 16384
let adj_base = Layout.data_base + 32768

let mem_init mem =
  let rng = Layout.rng 6 in
  let cursor = ref adj_base in
  for i = 0 to nodes - 1 do
    mem.(offsets_base + i) <- !cursor;
    let degree = Rng.int_in rng 1 max_degree in
    mem.(!cursor) <- degree;
    for k = 1 to degree do
      mem.(!cursor + k) <- Rng.int rng nodes
    done;
    cursor := !cursor + degree + 1;
    mem.(metric_base + i) <- Rng.int rng 1000;
    mem.(bonus_base + i) <- Rng.int rng 50
  done

let build b =
  let i = Builder.fresh_reg b in
  let block = Builder.fresh_reg b in
  let degree = Builder.fresh_reg b in
  let k = Builder.fresh_reg b in
  let neighbour = Builder.fresh_reg b in
  let metric = Builder.fresh_reg b in
  let acc = Builder.fresh_reg b in
  Builder.mov b acc (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm nodes) (fun () ->
      Builder.load b block (Ir.Reg i) (Ir.Imm offsets_base);
      Builder.load b degree (Ir.Reg block) (Ir.Imm 0);
      Builder.mov b k (Ir.Imm 0);
      Builder.while_ b
        ~cond:(fun () -> (Ir.Lt, Ir.Reg k, Ir.Reg degree))
        (fun () ->
          Builder.add b k (Ir.Reg k) (Ir.Imm 1);
          Builder.add b neighbour (Ir.Reg block) (Ir.Reg k);
          Builder.load b neighbour (Ir.Reg neighbour) (Ir.Imm 0);
          Builder.load b metric (Ir.Reg neighbour) (Ir.Imm metric_base);
          Builder.if_then b
            ~cond:(Ir.Gt, Ir.Reg metric, Ir.Imm 500)
            (fun () ->
              (* conditional second-level gather *)
              Builder.load b metric (Ir.Reg neighbour) (Ir.Imm bonus_base);
              Builder.add b acc (Ir.Reg acc) (Ir.Reg metric))));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg acc);
  Builder.halt b

let workload =
  Workload.make ~name:"graph"
    ~description:"adjacency-list sweep with conditional relaxation (BFS-like)"
    ~build ~mem_init
