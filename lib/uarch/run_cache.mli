(** On-disk cache of finished (config, workload, policy) run summaries,
    shared by the bench harness, [levioso_sim] and the [levioso_serve]
    daemon.

    One JSON file per simulated cell, keyed by a digest of the full
    microarchitectural {!Config.t}, the workload and policy names, and a
    {e code-version stamp} (by default a digest of the running
    executable).  Any config tweak or rebuild therefore misses cleanly —
    there is no invalidation protocol, just keys that stop matching.

    Entries are sharded into 256 subdirectories by the first two hex
    characters of the key digest so many concurrent writers spread their
    directory traffic; pre-shard flat caches are migrated transparently
    on {!create} (and still hit through a flat-path fallback on
    {!find}).

    The payload is whatever {!Summary.of_pipeline} produced, stored and
    replayed verbatim, so a cache-served [--json] report is bit-identical
    to a freshly simulated one.  Writes go through a unique temp file +
    rename, so N processes (and domains) racing on any mix of keys never
    expose a torn entry to a reader; unreadable or unparsable files are
    treated as misses. *)

type t

val create : ?stamp:string -> dir:string -> unit -> t
(** [stamp] defaults to {!code_stamp}.  The directory is created lazily
    on the first {!store}.  If [dir] already holds flat (pre-shard)
    entries they are renamed into their shard subdirectories here;
    concurrent migrations are safe (a lost rename means another process
    moved the file first). *)

val code_stamp : unit -> string
(** Digest of the running executable ([Sys.executable_name]), memoized.
    ["unstamped"] when the binary cannot be read.  Note that two
    {e different} binaries (say the daemon and a standalone bench) have
    different stamps and therefore keep disjoint entry sets in the same
    directory; pass an explicit [stamp] to [create] to share. *)

val config_key : Config.t -> string
(** Hex digest of the marshalled config — every field participates. *)

val path : t -> config:Config.t -> workload:string -> policy:string -> string
(** The sharded file a cell is stored at (exists or not). *)

val find :
  t -> config:Config.t -> workload:string -> policy:string ->
  Levioso_telemetry.Json.t option
(** [None] on missing, unreadable or unparsable entries.  Checks the
    sharded path first, then the legacy flat path. *)

val store :
  t -> config:Config.t -> workload:string -> policy:string ->
  Levioso_telemetry.Json.t -> unit
(** Atomic (unique temp file, then rename).  Concurrent stores — of
    distinct cells or even of the same key — are safe from any number of
    processes and domains: readers only ever observe complete entries,
    and the last writer of a key wins. *)

val prune : ?now:float -> t -> max_age_days:int -> int
(** Delete entries whose mtime is older than [max_age_days] days (plus
    any [.tmp] debris left by killed writers past the same horizon), and
    remove shard directories emptied by the sweep.  Returns the number
    of entries removed.  Deletion is a plain unlink, so concurrent
    readers of a pruned entry see an ordinary miss and concurrent
    writers are unaffected.  [now] (seconds since the epoch) defaults to
    the current time; it is exposed for tests. *)
