(** Differential overhead attribution between two run summaries.

    Takes two {!Summary.of_pipeline} JSON values for the same workload —
    a defense policy and a baseline (normally ["unsafe"]) — and charges
    the cycle difference to stall causes and static PCs:

    "defense X costs +N cycles (+P%), of which the policy gate accounts
    for M stall-cycles, Q% of the audited restriction cycles were
    unnecessary, concentrated at these top-K PCs."

    Inputs are JSON (not live pipelines) so the diff can run over
    [--json] files, bench matrix cells, and cached summaries alike. *)

type pc_delta = {
  pc : int;
  policy_stalls : int;  (** total stall-cycles charged at this PC *)
  baseline_stalls : int;
  delta : int;  (** [policy_stalls - baseline_stalls] *)
  audit_necessary_cycles : int;
      (** necessary restriction cycles audited at this PC (0 without audit) *)
  audit_unnecessary_cycles : int;
}

type t = {
  workload : string option;
  policy : string;
  baseline : string;
  policy_cycles : int;
  baseline_cycles : int;
  overhead_cycles : int;  (** [policy_cycles - baseline_cycles] *)
  overhead_pct : float;  (** 100 * overhead / baseline *)
  cause_delta : (string * int) list;
      (** per stall cause, policy minus baseline, taxonomy order *)
  audited_cycles : int;  (** total audited restriction cycles, 0 without audit *)
  audited_unnecessary_cycles : int;
  unnecessary_share : float;  (** of audited cycles; 0 without audit *)
  top_pcs : pc_delta list;  (** largest positive delta first *)
}

val compute :
  ?top_k:int ->
  baseline:Levioso_telemetry.Json.t ->
  Levioso_telemetry.Json.t ->
  (t, string) result
(** [compute ~baseline policy_summary] — both arguments are single-run
    summary objects (elements of a ["runs"] list, or [--json] output).
    [top_k] (default 10) bounds [top_pcs].  [Error] on summaries missing
    the stats/stalls sections. *)

val compute_exn :
  ?top_k:int ->
  baseline:Levioso_telemetry.Json.t ->
  Levioso_telemetry.Json.t ->
  t

val to_json : t -> Levioso_telemetry.Json.t
(** Schema-tagged object mirroring the record. *)

val to_rows : t -> (string * string) list
(** Human-readable table for console output. *)
