test/test_branch_dep.ml: Alcotest Levioso_analysis Levioso_ir
