module Ir = Levioso_ir.Ir
module Pipeline = Levioso_uarch.Pipeline
module Config = Levioso_uarch.Config

(* Dependency set of one in-flight instruction: the dynamic branch
   instances (sequence numbers) it depends on, or [All] after a budget
   overflow. *)
type depset =
  | Deps of int list
  | All

(* Union with pruning: branch instances that have already resolved no
   longer constrain anything, and dropping them here is what keeps
   dependency sets from growing along loop-carried chains (an induction
   variable would otherwise accumulate every past loop-branch instance and
   overflow the budget).  In hardware this is the tag-broadcast that clears
   dependency-matrix columns when a branch resolves. *)
let union ~still_unresolved budget a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Deps xs, Deps ys ->
    let merged =
      List.sort_uniq compare
        (List.filter still_unresolved (List.rev_append xs ys))
    in
    if List.length merged > budget then All else Deps merged

let maker ?annotation ?(track_data = true) () (config : Config.t) program pipe =
  let annotation =
    match annotation with
    | Some a -> a
    | None -> Annotation.analyze program
  in
  let budget = config.Config.depset_budget in
  (* Active unresolved branch instances, oldest first:
     (seq, reconvergence pc option). *)
  let active : (int * int option) list ref = ref [] in
  let depsets : (int, depset) Hashtbl.t = Hashtbl.create 256 in
  let depset_of seq =
    Option.value ~default:(Deps []) (Hashtbl.find_opt depsets seq)
  in
  let still_unresolved s = Pipeline.is_unresolved_branch pipe s in
  let on_decode ~seq =
    let pc = Pipeline.pc_of pipe seq in
    (* Fetch reached this pc: every active instance whose reconvergence pc
       this is deactivates — the instruction itself is already
       reconverged with respect to those branches. *)
    active :=
      List.filter
        (fun (s, reconv) -> reconv <> Some pc && still_unresolved s)
        !active;
    let control = Deps (List.map fst !active) in
    let data =
      if track_data then
        List.fold_left
          (fun acc p -> union ~still_unresolved budget acc (depset_of p))
          (Deps []) (Pipeline.producers_of pipe seq)
      else Deps []
    in
    Hashtbl.replace depsets seq (union ~still_unresolved budget control data);
    match Pipeline.instr_of pipe seq with
    | Ir.Branch _ ->
      let reconv =
        match Annotation.hint_for annotation pc with
        | Some (Annotation.Reconverges_at r) -> Some r
        | Some Annotation.No_reconvergence | None -> None
      in
      active := !active @ [ (seq, reconv) ]
    | Ir.Alu _ | Ir.Load _ | Ir.Store _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      ()
  in
  let may_execute ~seq =
    if not (Pipeline.is_transmitter (Pipeline.instr_of pipe seq)) then true
    else
      match depset_of seq with
      | Deps branches ->
        List.for_all
          (fun s -> not (Pipeline.is_unresolved_branch pipe s))
          branches
      | All -> not (Pipeline.exists_older_unresolved_branch pipe ~seq)
  in
  let on_resolve ~seq = active := List.filter (fun (s, _) -> s <> seq) !active in
  let on_squash ~boundary =
    active := List.filter (fun (s, _) -> s <= boundary) !active;
    Hashtbl.filter_map_inplace
      (fun seq d -> if seq > boundary then None else Some d)
      depsets
  in
  let on_commit ~seq = Hashtbl.remove depsets seq in
  (* Provenance: the still-unresolved dynamic branch instances in the
     dependency set, or the overflow marker after a budget blowout. *)
  let explain ~seq =
    match depset_of seq with
    | All -> Levioso_telemetry.Audit.Overflow
    | Deps branches ->
      Levioso_telemetry.Audit.Branch_dep
        (List.filter_map
           (fun s ->
             if Pipeline.is_unresolved_branch pipe s then
               Some (s, Pipeline.pc_of pipe s)
             else None)
           branches)
  in
  {
    Pipeline.policy_name = (if track_data then "levioso" else "levioso-ctrl");
    on_decode;
    on_resolve;
    on_squash;
    on_commit;
    may_execute;
    load_visibility = (fun ~seq:_ -> Pipeline.Normal);
    explain;
  }
