examples/quickstart.mli:
