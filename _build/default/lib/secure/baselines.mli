(** The hardware-only baseline defenses the paper compares against.

    All of them are expressed as {!Levioso_uarch.Pipeline.policy} issue
    gates:

    - {!unsafe}: no restriction — the insecure performance baseline all
      normalized-execution-time figures divide by.
    - {!fence}: full serialization — {e no} instruction may begin execution
      while an older unresolved conditional branch is in flight.  The
      upper bound on restriction; models compiler-inserted lfences after
      every branch.
    - {!delay}: comprehensive delay-of-transmit — {e transmitters}
      (loads/flushes) may not begin execution while {e any} older branch is
      unresolved; everything else runs free.  This is the stand-in for the
      paper's first prior defense (51% overhead in the abstract): it
      protects both speculatively and non-speculatively loaded secrets but
      has no notion of which branches matter. *)

val unsafe : Levioso_uarch.Pipeline.policy_maker

val fence : Levioso_uarch.Pipeline.policy_maker

val delay : Levioso_uarch.Pipeline.policy_maker
