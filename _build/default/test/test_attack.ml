module Ir = Levioso_ir.Ir
module Gadget = Levioso_attack.Gadget
module Harness = Levioso_attack.Harness
module Registry = Levioso_core.Registry

let is_recovered = function
  | Harness.Recovered _ -> true
  | Harness.Wrong_guess _ | Harness.No_signal -> false

let check_verdict name expected verdict =
  Alcotest.(check bool)
    (Printf.sprintf "%s (got %s)" name (Harness.verdict_to_string verdict))
    expected (is_recovered verdict)

let test_gadgets_validate () =
  List.iter
    (fun (g : Gadget.t) ->
      match Ir.validate g.Gadget.program with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (g.Gadget.name ^ ": " ^ msg))
    [
      Gadget.bounds_check_bypass ~secret:1 ();
      Gadget.register_secret ~secret:1 ();
      Gadget.bounds_check_bypass ~timing:true ~secret:1 ();
      Gadget.register_secret ~timing:true ~secret:1 ();
    ]

(* The paper's security table (Table 2): which defense stops which threat
   model.  STT's expected failure on the non-speculative secret is the
   motivating observation for comprehensive schemes. *)
let security_matrix =
  [
    (* policy, leaks sandbox gadget?, leaks register-secret gadget? *)
    ("unsafe", true, true);
    ("fence", false, false);
    ("delay", false, false);
    ("dom", false, false);
    ("stt", false, true);
    ("nda", false, true);
    ("levioso-static", false, false);
    ("levioso", false, false);
    ("levioso-ctrl", false, false);
  ]

let test_security_matrix_cache_probe () =
  List.iter
    (fun (policy, leaks_sandbox, leaks_register) ->
      check_verdict
        (policy ^ " vs bounds-check-bypass")
        leaks_sandbox
        (Harness.run ~policy (Gadget.bounds_check_bypass ~secret:42 ()));
      check_verdict
        (policy ^ " vs register-secret")
        leaks_register
        (Harness.run ~policy (Gadget.register_secret ~secret:42 ())))
    security_matrix

let test_security_matrix_in_program_timing () =
  List.iter
    (fun (policy, leaks_sandbox, leaks_register) ->
      check_verdict
        (policy ^ " timed bounds-check-bypass")
        leaks_sandbox
        (Harness.run_timed ~policy
           (Gadget.bounds_check_bypass ~timing:true ~secret:27 ()));
      check_verdict
        (policy ^ " timed register-secret")
        leaks_register
        (Harness.run_timed ~policy
           (Gadget.register_secret ~timing:true ~secret:27 ())))
    security_matrix

let test_recovers_every_secret_value () =
  (* no aliasing between secret values and probe lines *)
  List.iter
    (fun secret ->
      match Harness.run ~policy:"unsafe" (Gadget.bounds_check_bypass ~secret ()) with
      | Harness.Recovered v -> Alcotest.(check int) "exact value" secret v
      | (Harness.Wrong_guess _ | Harness.No_signal) as v ->
        Alcotest.fail (Printf.sprintf "secret %d: %s" secret (Harness.verdict_to_string v)))
    [ 0; 1; 31; 62; 63 ]

let test_accuracy_endpoints () =
  let make ~secret () = Gadget.register_secret ~secret () in
  Alcotest.(check (float 1e-9)) "unsafe fully broken" 1.0
    (Harness.accuracy ~policy:"unsafe" make);
  Alcotest.(check (float 1e-9)) "stt fully broken on register secrets" 1.0
    (Harness.accuracy ~policy:"stt" make);
  Alcotest.(check (float 1e-9)) "levioso holds" 0.0
    (Harness.accuracy ~policy:"levioso" make)

let test_no_architectural_secret_exposure () =
  (* The gadget never architecturally writes the secret anywhere the
     attacker could read: the emulator (no speculation at all) must leave
     every probe measurement slot untouched by secret-dependent data. *)
  let g = Gadget.bounds_check_bypass ~secret:9 () in
  let state =
    Levioso_ir.Emulator.run_program ~mem_words:(1 lsl 20)
      ~init:(fun s -> g.Gadget.mem_init s.Levioso_ir.Emulator.mem)
      g.Gadget.program
  in
  Alcotest.(check bool) "program halts architecturally" true
    state.Levioso_ir.Emulator.halted

let test_attack_works_across_predictors () =
  (* the attack trains whatever predictor the front end has *)
  List.iter
    (fun predictor ->
      let config = { Levioso_uarch.Config.default with Levioso_uarch.Config.predictor } in
      check_verdict
        (Levioso_uarch.Config.predictor_kind_to_string predictor ^ " leaks under unsafe")
        true
        (Harness.run ~config ~policy:"unsafe" (Gadget.bounds_check_bypass ~secret:17 ())))
    (* always-taken is omitted: it never steers down the fall-through
       wrong path this gadget shape needs *)
    [
      Levioso_uarch.Config.Bimodal;
      Levioso_uarch.Config.Gshare;
      Levioso_uarch.Config.Tage;
    ]

let test_untrained_attack_fails () =
  (* without training the cold predictor does not steer fetch into the
     transmit path *)
  check_verdict "no training, no leak" false
    (Harness.run ~policy:"unsafe" (Gadget.bounds_check_bypass ~training_rounds:0 ~secret:17 ()))

let test_levioso_holds_with_prefetcher () =
  (* a prefetcher widens the channel (neighbour lines get dragged in), but
     gating the demand access gates the prefetch it would trigger too *)
  let config =
    { Levioso_uarch.Config.default with Levioso_uarch.Config.next_line_prefetch = true }
  in
  check_verdict "levioso holds with prefetch" false
    (Harness.run ~config ~policy:"levioso" (Gadget.bounds_check_bypass ~secret:17 ()));
  check_verdict "dom holds with prefetch" false
    (Harness.run ~config ~policy:"dom" (Gadget.register_secret ~secret:17 ()))

let test_defense_overhead_on_gadget_is_finite () =
  (* Defenses must not deadlock on attack code. *)
  List.iter
    (fun policy ->
      let g = Gadget.register_secret ~timing:true ~secret:3 () in
      let (_ : Harness.verdict) = Harness.run_timed ~policy g in
      ())
    Registry.names

let suite =
  ( "attack",
    [
      Alcotest.test_case "gadgets validate" `Quick test_gadgets_validate;
      Alcotest.test_case "security matrix (cache probe)" `Quick
        test_security_matrix_cache_probe;
      Alcotest.test_case "security matrix (in-program timing)" `Quick
        test_security_matrix_in_program_timing;
      Alcotest.test_case "recovers every secret value" `Quick
        test_recovers_every_secret_value;
      Alcotest.test_case "accuracy endpoints" `Quick test_accuracy_endpoints;
      Alcotest.test_case "no architectural exposure" `Quick
        test_no_architectural_secret_exposure;
      Alcotest.test_case "attack across predictors" `Quick test_attack_works_across_predictors;
      Alcotest.test_case "untrained attack fails" `Quick test_untrained_attack_fails;
      Alcotest.test_case "defenses hold with prefetcher" `Quick test_levioso_holds_with_prefetcher;
      Alcotest.test_case "defenses terminate on gadgets" `Quick
        test_defense_overhead_on_gadget_is_finite;
    ] )
