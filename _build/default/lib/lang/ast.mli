(** Abstract syntax of the Lev language. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Logic_and  (** strict (both sides evaluate), boolean-valued *)
  | Logic_or

type expr =
  | Lit of int
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr  (** [!e] = [e == 0] *)
  | Load of expr  (** [load(addr)] *)
  | Rdcycle of expr option  (** [rdcycle()] / [rdcycle(after)] *)
  | Call of string * expr list

type stmt =
  | Decl of string * expr  (** [var x = e;] *)
  | Assign of string * expr
  | If of expr * block * block option
  | While of expr * block
  | Store of expr * expr  (** [store(addr, value);] *)
  | Flush of expr  (** [flush(addr);] *)
  | Expr_stmt of expr  (** call for effect *)
  | Return of expr option
  | Halt

and block = stmt list

type fn = {
  name : string;
  params : string list;
  body : block;
  line : int;  (** declaration site, for error messages *)
}

type program = fn list

val expr_to_string : expr -> string
(** Compact rendering for error messages and tests. *)
