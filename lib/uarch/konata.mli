(** Pipeline → {!Levioso_telemetry.Timeline} adapter.

    Translates {!Pipeline.event}s and {!Levioso_telemetry.Stall.cause}s
    into the generic timeline builder, disassembling left-pane labels
    from the program.  The resulting trace is written in the Kanata 0004
    format and loads directly in Konata. *)

module Timeline = Levioso_telemetry.Timeline

val cause_code : Levioso_telemetry.Stall.cause -> string
(** Short lane-1 stage label Konata colors by: [Policy_gate -> "Gp"],
    [Operand_wait -> "Op"], [Lsq_order -> "Lq"], [Exec_port -> "Xp"],
    [Rob_full -> "Rf"]. *)

val timeline : ?window:int * int -> Levioso_ir.Ir.program -> Timeline.t
(** A timeline whose disassembly labels come from [program]. *)

val feed : Timeline.t -> cycle:int -> Pipeline.event -> unit
(** Record one pipeline event.  Call from a {!Pipeline.set_tracer}
    callback (or multiplex inside an existing one). *)

val feed_stall :
  Timeline.t ->
  cycle:int ->
  seq:int ->
  pc:int ->
  cause:Levioso_telemetry.Stall.cause ->
  unit
(** Record one waiting-cycle attribution.  Call from a
    {!Pipeline.set_stall_tracer} callback. *)

val attach : Timeline.t -> Pipeline.t -> unit
(** Installs both tracers.  Convenience for callers that need no other
    tracer ({!Pipeline.set_tracer} holds a single callback — multiplex
    manually if you also want text/Chrome tracing). *)
