type reason =
  | Branch_dep of (int * int) list
  | Taint of (int * int) list
  | Overflow
  | Unspecified

let reason_kind = function
  | Branch_dep _ -> "branch_dep"
  | Taint _ -> "taint"
  | Overflow -> "overflow"
  | Unspecified -> "unspecified"

let reason_kinds = [ "branch_dep"; "taint"; "overflow"; "unspecified" ]

let reason_index = function
  | Branch_dep _ -> 0
  | Taint _ -> 1
  | Overflow -> 2
  | Unspecified -> 3

type outcome =
  | Issued
  | Squashed

let outcome_to_string = function
  | Issued -> "issued"
  | Squashed -> "squashed"

type event = {
  seq : int;
  pc : int;
  policy : string;
  reason : reason;
  necessary : bool;
  cycles : int;
  end_cycle : int;
  outcome : outcome;
}

type pc_agg = {
  mutable a_events : int;
  mutable a_necessary_cycles : int;
  mutable a_unnecessary_cycles : int;
}

type t = {
  capacity : int;
  ring : event option array;
  mutable n_events : int;  (* total recorded, ring slot = n mod capacity *)
  mutable n_cycles : int;
  mutable nec_events : int;
  mutable nec_cycles : int;
  reason_events : int array;  (* per reason kind *)
  reason_cycles : int array;
  per_pc : (int, pc_agg) Hashtbl.t;
  is_true_dep : pc:int -> branch_pc:int -> bool;
  mutable sink : Trace.sink option;
}

let create ?(capacity = 4096) ?(is_true_dep = fun ~pc:_ ~branch_pc:_ -> true)
    () =
  if capacity < 1 then invalid_arg "Audit.create: capacity must be >= 1";
  {
    capacity;
    ring = Array.make capacity None;
    n_events = 0;
    n_cycles = 0;
    nec_events = 0;
    nec_cycles = 0;
    reason_events = Array.make (List.length reason_kinds) 0;
    reason_cycles = Array.make (List.length reason_kinds) 0;
    per_pc = Hashtbl.create 64;
    is_true_dep;
    sink = None;
  }

let necessary t ~pc ~branch_pcs =
  List.exists (fun branch_pc -> t.is_true_dep ~pc ~branch_pc) branch_pcs

let attach_sink t sink = t.sink <- Some sink

let reason_to_json = function
  | Branch_dep branches ->
    [
      ( "branches",
        Json.List
          (List.map
             (fun (seq, pc) ->
               Json.Obj [ ("seq", Json.Int seq); ("pc", Json.Int pc) ])
             branches) );
    ]
  | Taint roots ->
    [
      ( "roots",
        Json.List
          (List.map
             (fun (seq, pc) ->
               Json.Obj [ ("seq", Json.Int seq); ("pc", Json.Int pc) ])
             roots) );
    ]
  | Overflow | Unspecified -> []

let event_to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("pc", Json.Int e.pc);
       ("policy", Json.String e.policy);
       ("reason", Json.String (reason_kind e.reason));
     ]
    @ reason_to_json e.reason
    @ [
        ("necessary", Json.Bool e.necessary);
        ("cycles", Json.Int e.cycles);
        ("end_cycle", Json.Int e.end_cycle);
        ("outcome", Json.String (outcome_to_string e.outcome));
      ])

let record t e =
  t.ring.(t.n_events mod t.capacity) <- Some e;
  t.n_events <- t.n_events + 1;
  t.n_cycles <- t.n_cycles + e.cycles;
  if e.necessary then begin
    t.nec_events <- t.nec_events + 1;
    t.nec_cycles <- t.nec_cycles + e.cycles
  end;
  let ri = reason_index e.reason in
  t.reason_events.(ri) <- t.reason_events.(ri) + 1;
  t.reason_cycles.(ri) <- t.reason_cycles.(ri) + e.cycles;
  let agg =
    match Hashtbl.find_opt t.per_pc e.pc with
    | Some a -> a
    | None ->
      let a =
        { a_events = 0; a_necessary_cycles = 0; a_unnecessary_cycles = 0 }
      in
      Hashtbl.add t.per_pc e.pc a;
      a
  in
  agg.a_events <- agg.a_events + 1;
  if e.necessary then
    agg.a_necessary_cycles <- agg.a_necessary_cycles + e.cycles
  else agg.a_unnecessary_cycles <- agg.a_unnecessary_cycles + e.cycles;
  match t.sink with
  | None -> ()
  | Some sink ->
    Trace.emit sink
      {
        Trace.cycle = e.end_cycle;
        seq = e.seq;
        pc = e.pc;
        stage = "restrict";
        args =
          [
            ("policy", Json.String e.policy);
            ("reason", Json.String (reason_kind e.reason));
            ("necessary", Json.Bool e.necessary);
            ("cycles", Json.Int e.cycles);
            ("outcome", Json.String (outcome_to_string e.outcome));
          ];
      }

let total_events t = t.n_events
let total_cycles t = t.n_cycles
let necessary_events t = t.nec_events
let necessary_cycles t = t.nec_cycles
let unnecessary_events t = t.n_events - t.nec_events
let unnecessary_cycles t = t.n_cycles - t.nec_cycles

let unnecessary_share t =
  if t.n_cycles = 0 then 0.0
  else float_of_int (unnecessary_cycles t) /. float_of_int t.n_cycles

let by_reason t =
  List.mapi
    (fun i kind -> (kind, t.reason_events.(i), t.reason_cycles.(i)))
    reason_kinds

let top_pcs t ~k =
  Hashtbl.fold
    (fun pc a acc ->
      (pc, a.a_events, a.a_necessary_cycles, a.a_unnecessary_cycles) :: acc)
    t.per_pc []
  |> List.sort (fun (pa, _, na, ua) (pb, _, nb, ub) ->
         match compare (nb + ub) (na + ua) with
         | 0 -> compare pa pb
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

let recent t =
  let n = min t.n_events t.capacity in
  let first = t.n_events - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let dropped t = max 0 (t.n_events - t.capacity)

let to_json ?(top_k = 10) t =
  Schema.tag
    [
      ("events", Json.Int t.n_events);
      ("cycles", Json.Int t.n_cycles);
      ("dropped_events", Json.Int (dropped t));
      ( "necessary",
        Json.Obj
          [
            ("events", Json.Int t.nec_events); ("cycles", Json.Int t.nec_cycles);
          ] );
      ( "unnecessary",
        Json.Obj
          [
            ("events", Json.Int (unnecessary_events t));
            ("cycles", Json.Int (unnecessary_cycles t));
          ] );
      ("unnecessary_share", Json.float (unnecessary_share t));
      ( "by_reason",
        Json.Obj
          (List.map
             (fun (kind, events, cycles) ->
               ( kind,
                 Json.Obj
                   [ ("events", Json.Int events); ("cycles", Json.Int cycles) ]
               ))
             (by_reason t)) );
      ( "top_pcs",
        Json.List
          (List.map
             (fun (pc, events, nec, unnec) ->
               Json.Obj
                 [
                   ("pc", Json.Int pc);
                   ("events", Json.Int events);
                   ("cycles", Json.Int (nec + unnec));
                   ("necessary_cycles", Json.Int nec);
                   ("unnecessary_cycles", Json.Int unnec);
                 ])
             (top_pcs t ~k:top_k)) );
    ]

let to_rows t =
  [
    ("audit events", string_of_int t.n_events);
    ("audit restricted cycles", string_of_int t.n_cycles);
    ( "audit necessary cycles",
      Printf.sprintf "%d (%d events)" t.nec_cycles t.nec_events );
    ( "audit unnecessary cycles",
      Printf.sprintf "%d (%d events)" (unnecessary_cycles t)
        (unnecessary_events t) );
    ("audit unnecessary share", Printf.sprintf "%.1f%%" (100.0 *. unnecessary_share t));
  ]
