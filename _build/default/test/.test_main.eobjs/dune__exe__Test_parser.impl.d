test/test_parser.ml: Alcotest Array Levioso_ir
