lib/core/levioso_static.ml: Array Levioso_analysis Levioso_ir Levioso_uarch List
