module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng
module Config = Levioso_uarch.Config

let data_base = 1024
let data_size = 512

let default_config =
  {
    Config.default with
    Config.mem_words = 4096;
    rob_size = 48;
    predictor = Config.Bimodal;
  }

(* --- unconstrained structured programs ------------------------------- *)

let random_operand rng =
  if Rng.bool rng then Ir.Reg (Rng.int_in rng 1 10)
  else Ir.Imm (Rng.int_in rng (-8) 64)

let alu_ops =
  [| Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Rem; Ir.And; Ir.Or; Ir.Xor |]

let cmps = [| Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge |]

let random_program seed =
  let rng = Rng.create seed in
  let b = Builder.create () in
  let reg () = Rng.int_in rng 1 10 in
  let addr_operand () =
    (* keep data accesses inside a window; the machine masks anyway, but a
       small window makes store/load aliasing (and thus forwarding and
       disambiguation paths) common *)
    Ir.Imm (data_base + Rng.int rng data_size)
  in
  let rec statement depth =
    match Rng.int rng 12 with
    | 0 | 1 | 2 | 3 ->
      Builder.alu b (Rng.pick rng alu_ops) (reg ()) (random_operand rng)
        (random_operand rng)
    | 4 ->
      Builder.alu b
        (Ir.Set (Rng.pick rng cmps))
        (reg ()) (random_operand rng) (random_operand rng)
    | 5 | 6 ->
      let base = if Rng.bool rng then Ir.Reg (reg ()) else addr_operand () in
      Builder.load b (reg ()) base (Ir.Imm (Rng.int rng 16))
    | 7 ->
      let base = if Rng.bool rng then Ir.Reg (reg ()) else addr_operand () in
      Builder.store b base (Ir.Imm (Rng.int rng 16)) (random_operand rng)
    | 8 | 9 when depth < 3 ->
      let cond = (Rng.pick rng cmps, random_operand rng, random_operand rng) in
      if Rng.bool rng then
        Builder.if_then_else b ~cond
          (fun () -> block (depth + 1))
          (fun () -> block (depth + 1))
      else Builder.if_then b ~cond (fun () -> block (depth + 1))
    | 10 when depth < 2 ->
      let counter = Rng.int_in rng 11 14 in
      Builder.for_down b ~counter ~from:(Ir.Imm (Rng.int_in rng 1 6)) (fun () ->
          block (depth + 1))
    | 8 | 9 | 10 | 11 ->
      Builder.alu b Ir.Add (reg ()) (random_operand rng) (random_operand rng)
    | _ -> assert false
  and block depth =
    for _ = 1 to Rng.int_in rng 1 4 do
      statement depth
    done
  in
  for _ = 1 to Rng.int_in rng 3 10 do
    statement 0
  done;
  Builder.halt b;
  Builder.build b

let mem_init seed mem =
  let rng = Rng.create (seed lxor 0x5eed) in
  for i = 0 to data_size - 1 do
    mem.(data_base + i) <- Rng.int_in rng (-100) 100
  done

(* --- noninterference cases ------------------------------------------- *)

(* Word-address layout inside default_config's 4096-word memory.  The
   public window, the gadget machinery and the probe arrays are pairwise
   disjoint; architectural execution only ever touches the public window
   and the gadget constants. *)
let ni_guard_ind_addr = 64 (* holds ni_guard_addr: indirection delays the guard *)
let ni_guard_addr = 72
let ni_arr_base = 256
let ni_arr_size = 16
let ni_secret_base = 512 (* above the array, so [idx < size] really excludes it *)
let ni_public_base = 1024
let ni_public_mask = 255 (* window [1024, 1024+255+15]: clear of the probes *)
let ni_probe_base = 2048
let ni_probe_lines = 32
let ni_max_gadgets = 2

type ni_case = {
  program : Ir.program;
  num_secrets : int;
  secret_addrs : int array;
  probe_addrs : int array;
  mem_init : secrets:int array -> int array -> unit;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let probe_base_of ~line_words gadget =
  ni_probe_base + (gadget * ni_probe_lines * line_words)

(* One Spectre-v1 gadget over its own probe array and secret slot.  Uses
   registers r15-r22 and loop counters r15/r16 — disjoint from the public
   blocks (r1-r10, counters r11-r14), so the public code can never clobber
   gadget state.  The final round flushes the guard indirection (late
   branch resolution) and the probe array, then aims the index at the
   secret slot; the transmit index is masked into the probe range so the
   speculative footprint always lands inside the (flushed) probe array,
   whatever value was planted. *)
let emit_gadget b ~line_words ~gadget ~training =
  let lshift = log2 line_words in
  let t = 15 and s1 = 16 and s2 = 17 in
  let idx = 18 and size = 19 and guard_ptr = 20 and v = 21 and junk = 22 in
  let probe_b = probe_base_of ~line_words gadget in
  let oob = ni_secret_base + gadget - ni_arr_base in
  Builder.for_down b ~counter:t ~from:(Ir.Imm (training + 1)) (fun () ->
      Builder.alu b Ir.And idx (Ir.Reg t) (Ir.Imm (ni_arr_size - 1));
      Builder.if_then b
        ~cond:(Ir.Eq, Ir.Reg t, Ir.Imm 0)
        (fun () ->
          Builder.mov b idx (Ir.Imm oob);
          Builder.flush b (Ir.Imm ni_guard_ind_addr) (Ir.Imm 0);
          Builder.flush b (Ir.Imm ni_guard_addr) (Ir.Imm 0);
          Builder.for_down b ~counter:s1 ~from:(Ir.Imm ni_probe_lines)
            (fun () ->
              Builder.alu b Ir.Shl s2 (Ir.Reg s1) (Ir.Imm lshift);
              Builder.flush b (Ir.Reg s2) (Ir.Imm probe_b)));
      (* the victim: late-resolving bounds check, then the leaky access *)
      Builder.load b guard_ptr (Ir.Imm ni_guard_ind_addr) (Ir.Imm 0);
      Builder.load b size (Ir.Reg guard_ptr) (Ir.Imm 0);
      Builder.if_then b
        ~cond:(Ir.Lt, Ir.Reg idx, Ir.Reg size)
        (fun () ->
          Builder.load b v (Ir.Reg idx) (Ir.Imm ni_arr_base);
          Builder.alu b Ir.And v (Ir.Reg v) (Ir.Imm (ni_probe_lines - 1));
          Builder.alu b Ir.Shl v (Ir.Reg v) (Ir.Imm lshift);
          Builder.load b junk (Ir.Reg v) (Ir.Imm probe_b)))

(* Public computation between gadgets: the same statement grammar as
   {!random_program}, except every memory access first masks its address
   into the public window.  The mask is part of the dataflow, so even
   wrong-path replays of these instructions stay inside the window. *)
let emit_public_block rng b ~stmts =
  let reg () = Rng.int_in rng 1 10 in
  let confined_base () =
    let a = reg () in
    Builder.alu b Ir.And a (random_operand rng) (Ir.Imm ni_public_mask);
    Builder.add b a (Ir.Reg a) (Ir.Imm ni_public_base);
    a
  in
  let rec statement depth =
    match Rng.int rng 13 with
    | 0 | 1 | 2 | 3 ->
      Builder.alu b (Rng.pick rng alu_ops) (reg ()) (random_operand rng)
        (random_operand rng)
    | 4 ->
      Builder.alu b
        (Ir.Set (Rng.pick rng cmps))
        (reg ()) (random_operand rng) (random_operand rng)
    | 5 | 6 ->
      let a = confined_base () in
      Builder.load b (reg ()) (Ir.Reg a) (Ir.Imm (Rng.int rng 16))
    | 7 ->
      let a = confined_base () in
      Builder.store b (Ir.Reg a) (Ir.Imm (Rng.int rng 16)) (random_operand rng)
    | 8 ->
      let a = confined_base () in
      Builder.flush b (Ir.Reg a) (Ir.Imm (Rng.int rng 16))
    | 9 when depth < 2 ->
      let cond = (Rng.pick rng cmps, random_operand rng, random_operand rng) in
      if Rng.bool rng then
        Builder.if_then_else b ~cond
          (fun () -> block (depth + 1))
          (fun () -> block (depth + 1))
      else Builder.if_then b ~cond (fun () -> block (depth + 1))
    | 10 when depth < 1 ->
      let counter = Rng.int_in rng 11 14 in
      Builder.for_down b ~counter ~from:(Ir.Imm (Rng.int_in rng 1 4)) (fun () ->
          block (depth + 1))
    | 11 -> Builder.rdcycle b (reg ())
    | 9 | 10 | 12 ->
      Builder.alu b Ir.Add (reg ()) (random_operand rng) (random_operand rng)
    | _ -> assert false
  and block depth =
    for _ = 1 to Rng.int_in rng 1 3 do
      statement depth
    done
  in
  for _ = 1 to stmts do
    statement 0
  done

let ni_case seed =
  let rng = Rng.create (seed lxor 0x2e51) in
  let line_words = default_config.Config.l1.Config.line_words in
  let gadgets = Rng.int_in rng 1 ni_max_gadgets in
  let b = Builder.create () in
  for g = 0 to gadgets - 1 do
    emit_public_block rng b ~stmts:(Rng.int_in rng 2 5);
    emit_gadget b ~line_words ~gadget:g ~training:(Rng.int_in rng 8 14)
  done;
  emit_public_block rng b ~stmts:(Rng.int_in rng 2 5);
  Builder.halt b;
  let program = Builder.build b in
  let public_seed = Rng.int rng 0x3FFFFFFF in
  let mem_init ~secrets mem =
    let prng = Rng.create (public_seed lxor 0xDA7A) in
    for i = 0 to ni_public_mask + 15 do
      mem.(ni_public_base + i) <- Rng.int_in prng (-100) 100
    done;
    for i = 0 to ni_arr_size - 1 do
      (* benign in-bounds data transmits an arbitrary (public) line *)
      mem.(ni_arr_base + i) <- Rng.int prng ni_probe_lines
    done;
    mem.(ni_guard_ind_addr) <- ni_guard_addr;
    mem.(ni_guard_addr) <- ni_arr_size;
    Array.iteri (fun g s -> mem.(ni_secret_base + g) <- s) secrets
  in
  {
    program;
    num_secrets = gadgets;
    secret_addrs = Array.init gadgets (fun g -> ni_secret_base + g);
    probe_addrs =
      Array.init (gadgets * ni_probe_lines) (fun i ->
          let g = i / ni_probe_lines and l = i mod ni_probe_lines in
          probe_base_of ~line_words g + (l * line_words));
    mem_init;
  }

let ni_secret_pair seed case =
  let rng = Rng.create (seed lxor 0x5ec2e7) in
  let a = Array.init case.num_secrets (fun _ -> Rng.int rng ni_probe_lines) in
  let b =
    Array.map
      (fun s -> (s + 1 + Rng.int rng (ni_probe_lines - 1)) mod ni_probe_lines)
      a
  in
  (a, b)

(* ------------------------------------------------------------------ *)
(* random JSON trees (round-trip property fodder)                      *)
(* ------------------------------------------------------------------ *)

module Json = Levioso_telemetry.Json

let json_string rng =
  let n = Rng.int rng 8 in
  String.init n (fun _ ->
      (* printable ASCII plus the escapes the printer special-cases *)
      match Rng.int rng 20 with
      | 0 -> '"'
      | 1 -> '\\'
      | 2 -> '\n'
      | 3 -> '\t'
      | _ -> Char.chr (32 + Rng.int rng 95))

let rec json_value rng ~depth =
  match if depth = 0 then Rng.int rng 4 else Rng.int rng 6 with
  | 0 -> Json.Null
  | 1 -> Json.Bool (Rng.bool rng)
  | 2 -> Json.Int (Rng.int_in rng (-1_000_000) 1_000_000)
  | 3 ->
    (* quarters round-trip exactly through the %.6g printer *)
    Json.Float (float_of_int (Rng.int_in rng (-2000) 2000) /. 4.0)
  | 4 -> Json.String (json_string rng)
  | 5 when Rng.bool rng ->
    Json.List
      (List.init (Rng.int rng 4) (fun _ -> json_value rng ~depth:(depth - 1)))
  | _ ->
    Json.Obj
      (List.init (Rng.int rng 4) (fun i ->
           (Printf.sprintf "k%d_%s" i (json_string rng),
            json_value rng ~depth:(depth - 1))))

let json seed =
  let rng = Rng.create seed in
  json_value rng ~depth:3
