lib/lang/compiler.mli: Levioso_ir
