lib/workload/bsearch.ml: Array Layout Levioso_ir Levioso_util Workload
