module Emulator = Levioso_ir.Emulator

type t = {
  ck_pc : int;
  ck_retired : int;
  ck_halted : bool;
  ck_regs : int array;
  ck_mem : int array;
  ck_cache : Cache.Hierarchy.hsnapshot;
  ck_pred : Predictor.state;
}

let capture (emu : Emulator.state) ~hierarchy ~predictor =
  {
    ck_pc = emu.Emulator.pc;
    ck_retired = emu.Emulator.retired;
    ck_halted = emu.Emulator.halted;
    ck_regs = Array.copy emu.Emulator.regs;
    ck_mem = Array.copy emu.Emulator.mem;
    ck_cache = Cache.Hierarchy.snapshot hierarchy;
    ck_pred = Predictor.save_state predictor;
  }

let restore_emulator c (emu : Emulator.state) =
  if Array.length emu.Emulator.mem <> Array.length c.ck_mem then
    invalid_arg
      (Printf.sprintf "Checkpoint.restore_emulator: memory size %d <> %d"
         (Array.length emu.Emulator.mem)
         (Array.length c.ck_mem));
  Array.blit c.ck_mem 0 emu.Emulator.mem 0 (Array.length c.ck_mem);
  Array.blit c.ck_regs 0 emu.Emulator.regs 0 (Array.length c.ck_regs);
  emu.Emulator.pc <- c.ck_pc;
  emu.Emulator.retired <- c.ck_retired;
  emu.Emulator.halted <- c.ck_halted

let restore_uarch c ~hierarchy ~predictor =
  Cache.Hierarchy.restore hierarchy c.ck_cache;
  Predictor.restore_state predictor c.ck_pred

let to_pipeline ?registry ?audit c cfg ~policy program =
  if Array.length c.ck_mem <> cfg.Config.mem_words then
    invalid_arg
      (Printf.sprintf
         "Checkpoint.to_pipeline: checkpoint memory has %d words, config \
          wants %d"
         (Array.length c.ck_mem) cfg.Config.mem_words);
  let hierarchy = Cache.Hierarchy.create ?registry cfg in
  let predictor = Predictor.create cfg in
  restore_uarch c ~hierarchy ~predictor;
  let pipe =
    Pipeline.create ?registry ?audit ~memory:(Array.copy c.ck_mem) ~hierarchy
      ~predictor cfg ~policy program
  in
  Pipeline.warm_start pipe ~regs:c.ck_regs ~pc:c.ck_pc;
  pipe
