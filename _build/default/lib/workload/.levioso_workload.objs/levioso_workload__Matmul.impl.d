lib/workload/matmul.ml: Array Layout Levioso_ir Workload
