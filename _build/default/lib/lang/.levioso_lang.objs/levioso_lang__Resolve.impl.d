lib/lang/resolve.ml: Ast Hashtbl List Map Option Printf Set String
