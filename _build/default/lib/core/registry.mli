(** Name → defense-policy registry used by the CLI, the benchmark harness
    and the examples. *)

val names : string list
(** unsafe, fence, delay, dom, stt, nda, levioso, levioso-ctrl,
    levioso-static. *)

val paper_schemes : string list
(** The schemes appearing in the headline figure, in plot order:
    ["fence"; "delay"; "dom"; "stt"; "levioso"].  [delay] and [dom] stand
    in for the paper's two prior comprehensive defenses (51% and 43%);
    [stt] is the sandbox-model contrast of the security table. *)

val find : string -> Levioso_uarch.Pipeline.policy_maker option

val find_exn : string -> Levioso_uarch.Pipeline.policy_maker
(** @raise Invalid_argument on unknown names. *)
