module Cfg = Levioso_ir.Cfg

module Int_set = Set.Make (Int)

type t = { cfg : Cfg.t; block_deps : Int_set.t array }

let compute cfg =
  let pd = Postdom.compute cfg in
  let n = Cfg.num_blocks cfg in
  let block_deps = Array.make n Int_set.empty in
  List.iter
    (fun branch_pc ->
      let bb = Cfg.block_of_pc cfg branch_pc in
      let succs = (Cfg.block cfg bb).Cfg.succs in
      for candidate = 0 to n - 1 do
        (* Ferrante–Ottenstein–Warren: candidate is control-dependent on the
           branch iff it post-dominates some successor but does not
           *strictly* post-dominate the branch block itself.  The non-strict
           form would hide a loop header's dependence on its own branch. *)
        let strictly_postdominates a b = a <> b && Postdom.postdominates pd a b in
        let depends =
          (not (strictly_postdominates candidate bb))
          && List.exists (fun s -> Postdom.postdominates pd candidate s) succs
        in
        if depends then
          block_deps.(candidate) <- Int_set.add branch_pc block_deps.(candidate)
      done)
    (Cfg.branch_pcs cfg);
  { cfg; block_deps }

let of_block t b = t.block_deps.(b)

let of_pc t pc = t.block_deps.(Cfg.block_of_pc t.cfg pc)

let region_size t branch_pc =
  let count = ref 0 in
  Array.iteri
    (fun b deps ->
      if Int_set.mem branch_pc deps then begin
        let blk = Cfg.block t.cfg b in
        count := !count + (blk.Cfg.last - blk.Cfg.first + 1)
      end)
    t.block_deps;
  !count
