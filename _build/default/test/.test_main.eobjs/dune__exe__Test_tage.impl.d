test/test_tage.ml: Alcotest Levioso_core Levioso_ir Levioso_uarch Printf
