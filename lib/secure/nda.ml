module Ir = Levioso_ir.Ir
module Pipeline = Levioso_uarch.Pipeline

let maker _config _program pipe =
  let producer_quarantined p =
    Pipeline.in_flight pipe p
    &&
    match Pipeline.instr_of pipe p with
    | Ir.Load _ -> Pipeline.exists_older_unresolved_branch pipe ~seq:p
    | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      false
  in
  let may_execute ~seq =
    not (List.exists producer_quarantined (Pipeline.producers_of pipe seq))
  in
  (* Provenance: the still-quarantined producer loads feeding the operands. *)
  let explain ~seq =
    Levioso_telemetry.Audit.Taint
      (List.filter_map
         (fun p ->
           if producer_quarantined p then Some (p, Pipeline.pc_of pipe p)
           else None)
         (Pipeline.producers_of pipe seq))
  in
  {
    Pipeline.always_execute_policy with
    policy_name = "nda";
    may_execute;
    explain;
  }
