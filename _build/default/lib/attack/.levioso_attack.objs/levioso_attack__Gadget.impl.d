lib/attack/gadget.ml: Array Levioso_ir
