(** The speculative out-of-order core.

    A cycle-level model with the structures secure-speculation defenses
    care about:

    - fetch follows the branch predictor and really executes down
      mispredicted paths (wrong-path loads access and fill the caches);
    - register renaming with per-branch rename/history snapshots for
      single-cycle squash recovery;
    - a unified ROB/issue window: any operand-ready instruction may begin
      execution, subject to the active {e policy}'s [may_execute] gate —
      this gate is where every defense in the paper plugs in;
    - a conservative LSQ: loads wait until all older store addresses are
      known, with store-to-load forwarding (no memory-dependence
      speculation, hence no Spectre-v4 surface);
    - stores update memory and caches only at commit, so the only
      speculative microarchitectural side effects are load/flush cache
      mutations — exactly the transmitters the defenses gate.

    Per-cycle phase order: commit, complete (branch resolution + squash),
    issue, fetch/rename/dispatch. *)

type t

(** {1 Defense policies}

    A policy is a record of callbacks invoked by the pipeline.  Policies
    identify in-flight instructions by their {e sequence number} (unique,
    monotonically increasing).  [may_execute] is consulted each cycle for
    every operand-ready instruction before it is allowed to begin
    execution. *)

type load_visibility =
  | Normal  (** the access updates cache state (fills, LRU) as usual *)
  | Invisible
      (** the access is served at its current latency without mutating any
          cache state — no fill, no LRU update.  This is how delay-on-miss
          serves speculative L1 hits: correct data, no footprint. *)

type policy = {
  policy_name : string;
  on_decode : seq:int -> unit;
      (** called in fetch order as instructions enter the window *)
  on_resolve : seq:int -> unit;  (** a conditional branch resolved *)
  on_squash : boundary:int -> unit;
      (** every seq strictly greater than [boundary] was squashed *)
  on_commit : seq:int -> unit;
  may_execute : seq:int -> bool;
  load_visibility : seq:int -> load_visibility;
      (** consulted when an approved load accesses the hierarchy *)
  explain : seq:int -> Levioso_telemetry.Audit.reason;
      (** why [may_execute] just refused [seq] — consulted (once per
          restriction episode, at the first refusal) only when auditing
          is enabled, so it may allocate.  Policies with no better
          answer inherit [Unspecified] from {!always_execute_policy}. *)
}

type policy_maker = Config.t -> Levioso_ir.Ir.program -> t -> policy
(** Policies are created against a live pipeline so they can inspect it
    through the view functions below. *)

val always_execute_policy : policy
(** The trivial policy (no restrictions); building block for baselines. *)

(** {1 Construction and execution} *)

val create :
  ?mem_init:(int array -> unit) ->
  ?registry:Levioso_telemetry.Registry.t ->
  ?audit:Levioso_telemetry.Audit.t ->
  ?memory:int array ->
  ?hierarchy:Cache.Hierarchy.h ->
  ?predictor:Predictor.t ->
  Config.t ->
  policy:policy_maker ->
  Levioso_ir.Ir.program ->
  t
(** [registry] hosts this pipeline's telemetry instruments (the cache
    hierarchy's counters register under its ["cache"] scope); a private
    registry is created when omitted.  Pass a
    [Levioso_telemetry.Registry.scope]d view to keep several concurrent
    runs (e.g. one per policy) separable.

    [audit] enables restriction provenance: every policy-refusal episode
    is recorded as one [Levioso_telemetry.Audit] event when it closes
    (the instruction issues or is squashed).  Episodes still open when
    the run halts are not recorded, so the audited cycle total is a
    lower bound on — and in practice almost equal to —
    [Sim_stats.policy_stall_cycles].  Off (no audit argument) the hooks
    cost one branch per refusal.

    [memory], [hierarchy] and [predictor] let the two-tier sampled
    engine adopt live state instead of starting cold: an adopted memory
    array is aliased (not copied; it must have exactly
    [cfg.mem_words] words or @raise Invalid_argument), and an adopted
    hierarchy/predictor is mutated in place — this is how a detailed
    interval inherits the fast tier's functional warming.  [mem_init]
    still runs on whatever memory ends up in use. *)

val step : t -> unit
(** Advance one cycle. *)

val run : ?max_cycles:int -> ?deadlock_window:int -> t -> unit
(** Run until the program halts.
    @raise Deadlock when nothing commits for [deadlock_window] cycles
    (default 100k)
    @raise Failure when [max_cycles] (default 100M) is exceeded. *)

val run_until_committed : ?max_cycles:int -> ?deadlock_window:int -> t -> int -> unit
(** [run_until_committed t n] runs until at least [n] instructions have
    committed in total (or the program halts).  The stop is checked at
    cycle granularity, so up to [commit_width - 1] extra instructions
    may commit past [n]; callers account with actual
    [Sim_stats.committed] deltas.  Same exceptions as {!run}. *)

val warm_start : t -> regs:int array -> pc:int -> unit
(** Seed architectural state before the first cycle: copy [regs] into
    the register file and point fetch at [pc].  For resuming from a
    checkpoint; @raise Invalid_argument once the pipeline has run. *)

val halted : t -> bool

(** {1 Architectural and microarchitectural state} *)

val regs : t -> int array
val mem : t -> int array
val cycle : t -> int
val stats : t -> Sim_stats.t
val hierarchy : t -> Cache.Hierarchy.h
val predictor : t -> Predictor.t
val config : t -> Config.t

val arch_pc : t -> int
(** The architectural PC: the next-to-commit instruction's PC, or the
    fetch PC when the window is empty (an empty window has no unresolved
    branches, so fetch is on the correct path).  This is where a
    checkpoint handoff resumes the fast tier. *)

val stall_attribution : t -> Levioso_telemetry.Stall.t
(** Per-cycle, per-static-PC stall attribution.  Every cycle, each
    in-window instruction still waiting to issue is charged to exactly
    one {!Levioso_telemetry.Stall.cause}; a cycle in which fetch is
    blocked by a full window adds one [Rob_full] charge against the
    fetch PC.  By construction the [Policy_gate] count equals
    [Sim_stats.policy_stall_cycles].  Instructions beyond the cycle's
    spent issue width are charged [Exec_port] (or [Lsq_order] for
    order-blocked loads) without consulting the policy, mirroring the
    issue loop. *)

val registry : t -> Levioso_telemetry.Registry.t
(** The telemetry registry passed to (or created by) {!create}. *)

val audit : t -> Levioso_telemetry.Audit.t option
(** The restriction-provenance recorder passed to {!create}, if any. *)

(** {1 View functions for policies}

    All take sequence numbers.  Unless stated otherwise they may only be
    applied to in-flight sequence numbers. *)

val in_flight : t -> int -> bool

val instr_of : t -> int -> Levioso_ir.Ir.instr

val pc_of : t -> int -> int

val oldest_seq : t -> int
(** Oldest in-flight sequence number (= next to commit). *)

val next_seq : t -> int
(** The sequence number the next dispatched instruction will get. *)

val is_unresolved_branch : t -> int -> bool
(** True for an in-flight conditional branch that has not resolved.
    False for anything else, including committed/squashed seqs. *)

val exists_older_unresolved_branch : t -> seq:int -> bool

val older_unresolved_branches : t -> seq:int -> int list
(** Oldest first. *)

val load_address_if_ready : t -> int -> int option
(** For an in-flight load whose address operands are ready: the (masked)
    effective address it would access.  [None] for non-loads or loads with
    unready operands.  Pure — no cache or pipeline state is touched; this
    is what lets address-sensitive policies (delay-on-miss) decide before
    the access happens. *)

val producers_of : t -> int -> int list
(** Sequence numbers of the in-flight producers of the instruction's
    register operands, captured at rename time.  Producers that had already
    committed at rename time are not included. *)

val is_transmitter : Levioso_ir.Ir.instr -> bool

(** {1 Tracing}

    An optional event stream for debugging and instrumentation: install a
    callback and every microarchitectural event is reported with its
    cycle.  Tracing has zero cost when no tracer is installed. *)

type event =
  | Fetched of { seq : int; pc : int }
  | Issued of { seq : int; pc : int }
  | Completed of { seq : int; pc : int }
  | Committed of { seq : int; pc : int }
  | Branch_resolved of { seq : int; pc : int; taken : bool; mispredicted : bool }
  | Squashed of { boundary : int; count : int }

val set_tracer : t -> (cycle:int -> event -> unit) -> unit

val set_stall_tracer :
  t -> (cycle:int -> seq:int -> pc:int -> cause:Levioso_telemetry.Stall.cause -> unit) -> unit
(** Per-cycle stall attribution stream: invoked once per waiting
    in-window instruction per cycle, with the cause it was charged to
    (the same charge recorded in {!stall_attribution}; [Rob_full]
    fetch-side charges have no instruction and are not reported).  This
    is what timeline rendering uses to label gated instructions.  Zero
    cost when not installed. *)

val set_flow_tracer :
  t ->
  secret_ranges:(int * int) list ->
  (cycle:int -> Levioso_telemetry.Flowtrace.event -> unit) ->
  unit
(** Speculative information-flow (taint) tracing.  Taint is born when a
    load reads an address inside one of [secret_ranges] (inclusive
    [lo, hi] pairs) from the memory hierarchy, propagates through
    register/memory data flow and load-address computation, and is
    reported as a {!Levioso_telemetry.Flowtrace.event} stream: node
    creation, data/address/speculation edges, secret sources, cache
    transmits, and branch-resolution / commit / squash outcomes.  Node
    ids are monotonic across the run (sequence numbers are reused after
    squashes; node ids never are).  Install before {!run}, like the
    other tracers.  Zero cost — and bit-identical architectural results,
    stats and stall attribution — when not installed.
    @raise Invalid_argument on a range with [lo < 0] or [lo > hi]. *)

val event_to_string : event -> string
(** The instructions whose {e execution} leaks through the cache channel:
    loads and flushes.  Stores are not transmitters here because they only
    touch the cache at commit (non-speculatively). *)

(** {1 Diagnostics} *)

val recent_events : t -> (int * event) list
(** A bounded window (last 32) of [(cycle, event)] pairs, oldest first.
    Always on — kept in a ring so the cost is one store per event. *)

type deadlock = {
  dl_cycle : int;  (** cycle at which the deadlock was declared *)
  dl_last_commit_cycle : int;  (** cycle of the last observed commit *)
  dl_policy : string;
  dl_head_seq : int;
  dl_head_pc : int;  (** -1 when the head entry is gone *)
  dl_head_cause : Levioso_telemetry.Stall.cause option;
      (** what the head-of-window instruction was charged to on its most
          recent waiting cycle — for a policy bug (gating the oldest
          instruction) this reads [Policy_gate] *)
  dl_recent_events : (int * event) list;  (** see {!recent_events} *)
}

exception Deadlock of deadlock
(** No instruction committed for an implausibly long time — almost always a
    defense policy bug (gating the oldest instruction).  A printer is
    registered, so an uncaught [Deadlock] renders via
    {!deadlock_to_string}. *)

val deadlock_to_string : deadlock -> string
