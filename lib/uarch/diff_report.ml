module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema

type pc_delta = {
  pc : int;
  policy_stalls : int;
  baseline_stalls : int;
  delta : int;
  audit_necessary_cycles : int;
  audit_unnecessary_cycles : int;
}

type t = {
  workload : string option;
  policy : string;
  baseline : string;
  policy_cycles : int;
  baseline_cycles : int;
  overhead_cycles : int;
  overhead_pct : float;
  cause_delta : (string * int) list;
  audited_cycles : int;
  audited_unnecessary_cycles : int;
  unnecessary_share : float;
  top_pcs : pc_delta list;
}

let cause_names =
  List.map Levioso_telemetry.Stall.cause_to_string
    Levioso_telemetry.Stall.all_causes

let mem_int path j =
  match Json.member path j with
  | Some v -> (try Some (Json.to_int_exn v) with Invalid_argument _ -> None)
  | None -> None

let mem_str path j =
  match Json.member path j with Some (Json.String s) -> Some s | _ -> None

(* stall top_pcs as an assoc pc -> total *)
let stall_pcs summary =
  match Json.member "stalls" summary with
  | None -> []
  | Some stalls -> (
    match Json.member "top_pcs" stalls with
    | Some (Json.List pcs) ->
      List.filter_map
        (fun entry ->
          match (mem_int "pc" entry, mem_int "total" entry) with
          | Some pc, Some total -> Some (pc, total)
          | _ -> None)
        pcs
    | _ -> [])

let audit_pcs summary =
  match Json.member "audit" summary with
  | None -> []
  | Some audit -> (
    match Json.member "top_pcs" audit with
    | Some (Json.List pcs) ->
      List.filter_map
        (fun entry ->
          match
            ( mem_int "pc" entry,
              mem_int "necessary_cycles" entry,
              mem_int "unnecessary_cycles" entry )
          with
          | Some pc, Some nec, Some unnec -> Some (pc, (nec, unnec))
          | _ -> None)
        pcs
    | _ -> [])

let cause_counts summary =
  match Json.member "stalls" summary with
  | None -> []
  | Some stalls -> (
    match Json.member "by_cause" stalls with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          try Some (k, Json.to_int_exn v) with Invalid_argument _ -> None)
        fields
    | _ -> [])

let assoc_or_0 k l = Option.value ~default:0 (List.assoc_opt k l)

let compute ?(top_k = 10) ~baseline policy_summary =
  let cycles summary =
    match Json.member "stats" summary with
    | Some stats -> mem_int "cycles" stats
    | None -> None
  in
  match (cycles policy_summary, cycles baseline) with
  | None, _ -> Error "Diff_report: policy summary has no stats.cycles"
  | _, None -> Error "Diff_report: baseline summary has no stats.cycles"
  | Some policy_cycles, Some baseline_cycles ->
    let policy =
      Option.value ~default:"?" (mem_str "policy" policy_summary)
    in
    let base_name = Option.value ~default:"?" (mem_str "policy" baseline) in
    let workload = mem_str "workload" policy_summary in
    let overhead_cycles = policy_cycles - baseline_cycles in
    let overhead_pct =
      if baseline_cycles = 0 then 0.0
      else 100.0 *. float_of_int overhead_cycles /. float_of_int baseline_cycles
    in
    let pc = cause_counts policy_summary and bc = cause_counts baseline in
    let cause_delta =
      List.map (fun c -> (c, assoc_or_0 c pc - assoc_or_0 c bc)) cause_names
    in
    let audited_cycles, audited_unnecessary_cycles =
      match Json.member "audit" policy_summary with
      | None -> (0, 0)
      | Some audit ->
        let unnec =
          match Json.member "unnecessary" audit with
          | Some u -> Option.value ~default:0 (mem_int "cycles" u)
          | None -> 0
        in
        (Option.value ~default:0 (mem_int "cycles" audit), unnec)
    in
    let unnecessary_share =
      if audited_cycles = 0 then 0.0
      else
        float_of_int audited_unnecessary_cycles /. float_of_int audited_cycles
    in
    let p_pcs = stall_pcs policy_summary
    and b_pcs = stall_pcs baseline
    and a_pcs = audit_pcs policy_summary in
    let all_pcs =
      List.sort_uniq compare (List.map fst p_pcs @ List.map fst b_pcs)
    in
    let top_pcs =
      List.map
        (fun pc ->
          let policy_stalls = assoc_or_0 pc p_pcs in
          let baseline_stalls = assoc_or_0 pc b_pcs in
          let nec, unnec =
            Option.value ~default:(0, 0) (List.assoc_opt pc a_pcs)
          in
          {
            pc;
            policy_stalls;
            baseline_stalls;
            delta = policy_stalls - baseline_stalls;
            audit_necessary_cycles = nec;
            audit_unnecessary_cycles = unnec;
          })
        all_pcs
      |> List.sort (fun a b ->
             match compare b.delta a.delta with
             | 0 -> compare a.pc b.pc
             | c -> c)
      |> List.filteri (fun i _ -> i < top_k)
    in
    Ok
      {
        workload;
        policy;
        baseline = base_name;
        policy_cycles;
        baseline_cycles;
        overhead_cycles;
        overhead_pct;
        cause_delta;
        audited_cycles;
        audited_unnecessary_cycles;
        unnecessary_share;
        top_pcs;
      }

let compute_exn ?top_k ~baseline policy_summary =
  match compute ?top_k ~baseline policy_summary with
  | Ok t -> t
  | Error msg -> invalid_arg msg

let to_json t =
  Schema.tag
    ([
       ( "workload",
         match t.workload with Some w -> Json.String w | None -> Json.Null );
       ("policy", Json.String t.policy);
       ("baseline", Json.String t.baseline);
       ("policy_cycles", Json.Int t.policy_cycles);
       ("baseline_cycles", Json.Int t.baseline_cycles);
       ("overhead_cycles", Json.Int t.overhead_cycles);
       ("overhead_pct", Json.float t.overhead_pct);
       ( "cause_delta",
         Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) t.cause_delta) );
       ("audited_cycles", Json.Int t.audited_cycles);
       ("audited_unnecessary_cycles", Json.Int t.audited_unnecessary_cycles);
       ("unnecessary_share", Json.float t.unnecessary_share);
     ]
    @ [
        ( "top_pcs",
          Json.List
            (List.map
               (fun d ->
                 Json.Obj
                   [
                     ("pc", Json.Int d.pc);
                     ("policy_stalls", Json.Int d.policy_stalls);
                     ("baseline_stalls", Json.Int d.baseline_stalls);
                     ("delta", Json.Int d.delta);
                     ("necessary_cycles", Json.Int d.audit_necessary_cycles);
                     ( "unnecessary_cycles",
                       Json.Int d.audit_unnecessary_cycles );
                   ])
               t.top_pcs) );
      ])

let to_rows t =
  let label =
    Printf.sprintf "%s vs %s%s" t.policy t.baseline
      (match t.workload with Some w -> " on " ^ w | None -> "")
  in
  [
    ("diff", label);
    ( "overhead",
      Printf.sprintf "%+d cycles (%+.1f%%)" t.overhead_cycles t.overhead_pct );
  ]
  @ List.map
      (fun (c, n) -> ("  cause " ^ c, Printf.sprintf "%+d" n))
      t.cause_delta
  @ (if t.audited_cycles = 0 then []
     else
       [
         ( "  audited restriction cycles",
           Printf.sprintf "%d (%.1f%% unnecessary)" t.audited_cycles
             (100.0 *. t.unnecessary_share) );
       ])
  @ List.map
      (fun d ->
        ( Printf.sprintf "  pc %d" d.pc,
          Printf.sprintf "%+d stall-cycles (policy %d, baseline %d%s)" d.delta
            d.policy_stalls d.baseline_stalls
            (if d.audit_necessary_cycles + d.audit_unnecessary_cycles = 0 then
               ""
             else
               Printf.sprintf "; audited %d nec / %d unnec"
                 d.audit_necessary_cycles d.audit_unnecessary_cycles) ))
      t.top_pcs
