test/test_builder.ml: Alcotest Array Levioso_ir List
