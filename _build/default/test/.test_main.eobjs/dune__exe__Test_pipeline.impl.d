test/test_pipeline.ml: Alcotest Array Buffer Levioso_ir Levioso_uarch List Printf
