lib/analysis/loops.mli: Levioso_ir
