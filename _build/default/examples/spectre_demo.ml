(* Spectre end-to-end, entirely inside the simulated machine: the attack
   program trains the branch predictor, flushes the guard, steers a
   wrong-path transmit, then times every probe line with rdcycle and writes
   the measurements to memory.  The harness only reads the verdict.

   Run with:  dune exec examples/spectre_demo.exe *)

module Gadget = Levioso_attack.Gadget
module Harness = Levioso_attack.Harness
module Pipeline = Levioso_uarch.Pipeline
module Config = Levioso_uarch.Config
module Registry = Levioso_core.Registry
module Report = Levioso_util.Report

let policies = [ "unsafe"; "fence"; "delay"; "stt"; "levioso" ]

let secret = 42

(* Show the raw flush+reload histogram for one run, the way attack papers
   plot it: one latency per candidate secret value. *)
let show_histogram policy =
  let gadget = Gadget.bounds_check_bypass ~timing:true ~secret () in
  let pipe =
    Pipeline.create ~mem_init:gadget.Gadget.mem_init Config.default
      ~policy:(Registry.find_exn policy) gadget.Gadget.program
  in
  Pipeline.run pipe;
  let mem = Pipeline.mem pipe in
  let series =
    List.init 8 (fun k ->
        let v = k * 9 in
        ( (if v = secret then Printf.sprintf "value %2d *" v
           else Printf.sprintf "value %2d" v),
          float_of_int mem.(Gadget.timing_results_base + v) ))
  in
  (* include the secret's slot explicitly *)
  let series =
    series @ [ (Printf.sprintf "value %2d *" secret,
                float_of_int mem.(Gadget.timing_results_base + secret)) ]
  in
  print_endline
    (Report.bar_chart
       ~title:(Printf.sprintf "reload latency under %s (* = true secret)" policy)
       () series)

let () =
  Printf.printf "Planting secret byte %d behind the bounds check...\n\n" secret;
  show_histogram "unsafe";
  print_newline ();
  show_histogram "levioso";
  print_endline "\n=== verdicts (in-program flush+reload) ===";
  let rows =
    List.map
      (fun policy ->
        let bcb =
          Harness.run_timed ~policy
            (Gadget.bounds_check_bypass ~timing:true ~secret ())
        in
        let reg =
          Harness.run_timed ~policy (Gadget.register_secret ~timing:true ~secret ())
        in
        [ policy; Harness.verdict_to_string bcb; Harness.verdict_to_string reg ])
      policies
  in
  print_endline
    (Report.table
       ~header:[ "defense"; "sandbox secret (v1)"; "non-speculative secret" ]
       ~rows);
  print_endline
    "\nSTT stops the classic v1 gadget but not the register-resident secret;\n\
     Levioso (like full delay) stops both — at a fraction of the slowdown."
