lib/uarch/tage.ml: Array
