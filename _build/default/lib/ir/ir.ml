type reg = int

let num_regs = 32
let zero_reg = 0

type operand =
  | Reg of reg
  | Imm of int

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Set of cmp

type instr =
  | Alu of { op : alu_op; dst : reg; a : operand; b : operand }
  | Load of { dst : reg; base : operand; off : operand }
  | Store of { base : operand; off : operand; src : operand }
  | Branch of { cmp : cmp; a : operand; b : operand; target : int }
  | Jump of { target : int }
  | Flush of { base : operand; off : operand }
  | Rdcycle of { dst : reg; after : operand }
  | Halt

type program = instr array

let eval_cmp c x y =
  match c with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let eval_alu op x y =
  match op with
  | Add -> x + y
  | Sub -> x - y
  | Mul -> x * y
  | Div -> if y = 0 then 0 else x / y
  | Rem -> if y = 0 then 0 else x mod y
  | And -> x land y
  | Or -> x lor y
  | Xor -> x lxor y
  | Shl -> x lsl (y land 63)
  | Shr -> x asr (y land 63)
  | Set c -> if eval_cmp c x y then 1 else 0

let defs = function
  | Alu { dst; _ } | Load { dst; _ } | Rdcycle { dst; _ } ->
    if dst = zero_reg then None else Some dst
  | Store _ | Branch _ | Jump _ | Flush _ | Halt -> None

let operand_reg = function
  | Reg r when r <> zero_reg -> [ r ]
  | Reg _ | Imm _ -> []

let uses = function
  | Alu { a; b; _ } | Branch { a; b; _ } -> operand_reg a @ operand_reg b
  | Load { base; off; _ } | Flush { base; off } -> operand_reg base @ operand_reg off
  | Store { base; off; src } ->
    operand_reg base @ operand_reg off @ operand_reg src
  | Rdcycle { after; _ } -> operand_reg after
  | Jump _ | Halt -> []

let is_branch = function
  | Branch _ -> true
  | Alu _ | Load _ | Store _ | Jump _ | Flush _ | Rdcycle _ | Halt -> false

let is_control = function
  | Branch _ | Jump _ | Halt -> true
  | Alu _ | Load _ | Store _ | Flush _ | Rdcycle _ -> false

let branch_target = function
  | Branch { target; _ } | Jump { target } -> Some target
  | Alu _ | Load _ | Store _ | Flush _ | Rdcycle _ | Halt -> None

let is_memory_access = function
  | Load _ | Store _ -> true
  | Alu _ | Branch _ | Jump _ | Flush _ | Rdcycle _ | Halt -> false

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let alu_op_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Set c -> "set" ^ cmp_to_string c

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm i -> Printf.sprintf "#%d" i

let instr_to_string instr =
  let op2 = operand_to_string in
  match instr with
  | Alu { op; dst; a; b } ->
    Printf.sprintf "%s r%d, %s, %s" (alu_op_to_string op) dst (op2 a) (op2 b)
  | Load { dst; base; off } ->
    Printf.sprintf "load r%d, [%s + %s]" dst (op2 base) (op2 off)
  | Store { base; off; src } ->
    Printf.sprintf "store [%s + %s], %s" (op2 base) (op2 off) (op2 src)
  | Branch { cmp; a; b; target } ->
    Printf.sprintf "b%s %s, %s, @%d" (cmp_to_string cmp) (op2 a) (op2 b) target
  | Jump { target } -> Printf.sprintf "jump @%d" target
  | Flush { base; off } -> Printf.sprintf "flush [%s + %s]" (op2 base) (op2 off)
  | Rdcycle { dst; after } -> Printf.sprintf "rdcycle r%d, %s" dst (op2 after)
  | Halt -> "halt"

let program_to_string ?(annot = fun _ -> "") program =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun pc instr ->
      let note = annot pc in
      let note = if note = "" then "" else "  ; " ^ note in
      Buffer.add_string buf (Printf.sprintf "%4d: %s%s\n" pc (instr_to_string instr) note))
    program;
  Buffer.contents buf

let validate program =
  let n = Array.length program in
  let check_reg r = r >= 0 && r < num_regs in
  let check_operand = function
    | Reg r -> check_reg r
    | Imm _ -> true
  in
  let bad = ref None in
  let fail pc msg =
    if !bad = None then bad := Some (Printf.sprintf "pc %d: %s" pc msg)
  in
  Array.iteri
    (fun pc instr ->
      (match defs instr with
      | Some r when not (check_reg r) -> fail pc "destination register out of range"
      | Some _ | None -> ());
      let operands_ok =
        match instr with
        | Alu { a; b; dst; _ } -> check_reg dst && check_operand a && check_operand b
        | Load { dst; base; off } -> check_reg dst && check_operand base && check_operand off
        | Store { base; off; src } ->
          check_operand base && check_operand off && check_operand src
        | Branch { a; b; _ } -> check_operand a && check_operand b
        | Flush { base; off } -> check_operand base && check_operand off
        | Rdcycle { dst; after } -> check_reg dst && check_operand after
        | Jump _ | Halt -> true
      in
      if not operands_ok then fail pc "operand register out of range";
      match branch_target instr with
      | Some t when t < 0 || t >= n -> fail pc "branch target out of range"
      | Some _ | None -> ())
    program;
  (if n = 0 then bad := Some "empty program"
   else
     match program.(n - 1) with
     | Halt | Jump _ -> ()
     | Alu _ | Load _ | Store _ | Branch _ | Flush _ | Rdcycle _ ->
       fail (n - 1) "program may fall off the end (last instr not halt/jump)");
  match !bad with
  | Some msg -> Error msg
  | None -> Ok ()
