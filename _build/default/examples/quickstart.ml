(* Quickstart: the whole Levioso flow on one small kernel.

   1. Write a program with the assembler DSL (or Parser for textual asm).
   2. Run the compiler pass: reconvergence analysis + branch hints.
   3. Simulate it on the out-of-order core under different defenses.
   4. Compare cycles: the point of the paper in one screen of output.

   Run with:  dune exec examples/quickstart.exe *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Annotation = Levioso_core.Annotation
module Api = Levioso_core.Levioso_api
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats

(* A guarded gather: sum every table entry flagged interesting.  The flag
   load decides a branch; the table load only *exists* under it.  This is
   the pattern where hardware-only defenses waste the most time. *)
let program =
  let b = Builder.create () in
  let i = Builder.fresh_reg b in
  let flag = Builder.fresh_reg b in
  let value = Builder.fresh_reg b in
  let sum = Builder.fresh_reg b in
  Builder.mov b sum (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm 2000) (fun () ->
      Builder.load b flag (Ir.Reg i) (Ir.Imm 8192);
      Builder.if_then b
        ~cond:(Ir.Eq, Ir.Reg flag, Ir.Imm 1)
        (fun () ->
          Builder.load b value (Ir.Reg i) (Ir.Imm 16384);
          Builder.add b sum (Ir.Reg sum) (Ir.Reg value)));
  Builder.store b (Ir.Imm 64) (Ir.Imm 0) (Ir.Reg sum);
  Builder.build b

let mem_init mem =
  for i = 0 to 1999 do
    mem.(8192 + i) <- (if i mod 3 = 0 then 1 else 0);
    mem.(16384 + i) <- i
  done

let () =
  (* the compiler side: what Levioso annotates *)
  let annotation = Annotation.analyze program in
  print_endline "=== compiler pass (first 12 instructions) ===";
  let listing = Annotation.disassemble annotation in
  String.split_on_char '\n' listing
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  print_endline "...";
  List.iter (fun (k, v) -> Printf.printf "  %-18s %s\n" k v) (Annotation.stats annotation);

  (* the hardware side: one simulation per defense *)
  print_endline "\n=== simulation ===";
  let baseline = ref 0 in
  List.iter
    (fun policy ->
      let pipe = Api.simulate ~mem_init ~policy program in
      let stats = Pipeline.stats pipe in
      if policy = "unsafe" then baseline := stats.Sim_stats.cycles;
      Printf.printf "  %-12s %8d cycles  (IPC %.2f%s)\n" policy
        stats.Sim_stats.cycles (Sim_stats.ipc stats)
        (if policy = "unsafe" then ""
         else
           Printf.sprintf ", %+.1f%% vs unsafe"
             ((float_of_int stats.Sim_stats.cycles /. float_of_int !baseline -. 1.0)
             *. 100.0));
      Printf.printf "%32s checksum mem[64] = %d\n" "" (Pipeline.mem pipe).(64))
    [ "unsafe"; "fence"; "delay"; "stt"; "levioso" ];
  print_endline
    "\nEvery defense computes the same checksum; only the unsafe baseline\n\
     leaks, and Levioso pays the least for stopping it."
