lib/lang/codegen.ml: Ast Hashtbl Levioso_ir List Option Printf Resolve Result String
