type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* NaN/infinity policy: JSON has no encoding for non-finite numbers, and
   silently printing them as [null] created a print→parse asymmetry
   (a [Float nan] came back as [Null]).  The producer is responsible:
   [Json.float] maps non-finite values to [Null] explicitly, and a
   non-finite [Float] reaching the printer is a bug, reported loudly. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg
      (Printf.sprintf
         "Json.to_string: non-finite float %h (sanitize with Json.float)" f)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest of %.6g/%.12g/%.17g that parses back exactly: compact
       for the common case, lossless for values that need the digits
       (epoch-second timestamps die at 6 significant digits) *)
    let s6 = Printf.sprintf "%.6g" f in
    if float_of_string s6 = f then s6
    else
      let s12 = Printf.sprintf "%.12g" f in
      if float_of_string s12 = f then s12 else Printf.sprintf "%.17g" f

let float f = if Float.is_nan f || Float.abs f = Float.infinity then Null else Float f

let rec write ~minify buf indent = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    write_seq ~minify buf indent '[' ']'
      (List.map (fun v -> (None, v)) items)
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    write_seq ~minify buf indent '{' '}'
      (List.map (fun (k, v) -> (Some k, v)) fields)

and write_seq ~minify buf indent open_ close_ items =
  let pad n = if not minify then Buffer.add_string buf (String.make n ' ') in
  let newline () = if not minify then Buffer.add_char buf '\n' in
  Buffer.add_char buf open_;
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_char buf ',';
      newline ();
      pad (indent + 2);
      (match key with
      | Some k ->
        escape_string buf k;
        Buffer.add_string buf (if minify then ":" else ": ")
      | None -> ());
      write ~minify buf (indent + 2) v)
    items;
  newline ();
  pad indent;
  Buffer.add_char buf close_

let to_string ?(minify = false) v =
  let buf = Buffer.create 1024 in
  write ~minify buf 0 v;
  Buffer.contents buf

let to_channel ?minify oc v = output_string oc (to_string ?minify v)

(* --- parsing --------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let expect_keyword c kw v =
  if
    c.pos + String.length kw <= String.length c.src
    && String.sub c.src c.pos (String.length kw) = kw
  then begin
    c.pos <- c.pos + String.length kw;
    v
  end
  else error c ("expected " ^ kw)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.src then error c "truncated \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> error c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* encode the BMP code point as UTF-8 *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | Some x -> error c (Printf.sprintf "bad escape \\%c" x)
      | None -> error c "unterminated escape");
      advance c;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek c with
    | Some ch -> is_num_char ch
    | None -> false
  do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> error c ("bad number " ^ text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> expect_keyword c "null" Null
  | Some 't' -> expect_keyword c "true" (Bool true)
  | Some 'f' -> expect_keyword c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected , or ] in array"
      in
      List (items [])
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> error c "expected , or } in object"
      in
      Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing input after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Json.of_string_exn: " ^ msg)

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> invalid_arg ("Json.member_exn: no field " ^ key)

let to_list_exn = function
  | List items -> items
  | _ -> invalid_arg "Json.to_list_exn: not a list"

let to_int_exn = function
  | Int i -> i
  | _ -> invalid_arg "Json.to_int_exn: not an int"

let to_float_exn = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> invalid_arg "Json.to_float_exn: not a number"

let to_string_exn = function
  | String s -> s
  | _ -> invalid_arg "Json.to_string_exn: not a string"
