lib/workload/treewalk.ml: Array Layout Levioso_ir Levioso_util Workload
