module Ir = Levioso_ir.Ir
module Emulator = Levioso_ir.Emulator
module Lexer = Levioso_lang.Lexer
module Lparser = Levioso_lang.Lparser
module Ast = Levioso_lang.Ast
module Resolve = Levioso_lang.Resolve
module Compiler = Levioso_lang.Compiler
module Api = Levioso_core.Levioso_api
module Config = Levioso_uarch.Config

(* run a Lev program and read back the word main stored at [addr] *)
let run_and_read ?(mem_init = fun _ -> ()) ?(addr = 64) source =
  let program = Compiler.compile_exn source in
  let state =
    Emulator.run_program ~mem_words:65536
      ~init:(fun s -> mem_init s.Emulator.mem)
      program
  in
  state.Emulator.mem.(addr)

(* --- lexer ----------------------------------------------------------- *)

let tokens_of source =
  match Lexer.tokenize source with
  | Ok located -> List.map (fun l -> l.Lexer.token) located
  | Error msg -> Alcotest.fail msg

let test_lexer_basics () =
  Alcotest.(check bool) "operators" true
    (tokens_of "a <= b << 2 != c"
    = [
        Lexer.Ident "a"; Lexer.Le; Lexer.Ident "b"; Lexer.Shl; Lexer.Int 2;
        Lexer.Ne; Lexer.Ident "c"; Lexer.Eof;
      ]);
  Alcotest.(check bool) "keywords vs idents" true
    (tokens_of "if iffy fn fnord"
    = [ Lexer.Kw_if; Lexer.Ident "iffy"; Lexer.Kw_fn; Lexer.Ident "fnord"; Lexer.Eof ])

let test_lexer_comments_and_positions () =
  match Lexer.tokenize "var x = 1; // comment\nx = 2;" with
  | Error msg -> Alcotest.fail msg
  | Ok located ->
    let second_line = List.filter (fun l -> l.Lexer.line = 2) located in
    Alcotest.(check bool) "comment skipped, second line found" true
      (List.length second_line >= 3)

let test_lexer_rejects_garbage () =
  Alcotest.(check bool) "rejects @" true (Result.is_error (Lexer.tokenize "var @ = 1;"))

(* --- parser ---------------------------------------------------------- *)

let parse_expr s =
  match Lparser.parse_expr s with
  | Ok e -> e
  | Error msg -> Alcotest.fail msg

let test_precedence () =
  Alcotest.(check string) "mul binds tighter"
    "(1 + (2 * 3))"
    (Ast.expr_to_string (parse_expr "1 + 2 * 3"));
  Alcotest.(check string) "left assoc"
    "((8 - 4) - 2)"
    (Ast.expr_to_string (parse_expr "8 - 4 - 2"));
  Alcotest.(check string) "comparison below arithmetic"
    "((a + 1) < (b * 2))"
    (Ast.expr_to_string (parse_expr "a + 1 < b * 2"));
  Alcotest.(check string) "logic lowest"
    "((a < b) && (c == d))"
    (Ast.expr_to_string (parse_expr "a < b && c == d"));
  Alcotest.(check string) "parens override"
    "((1 + 2) * 3)"
    (Ast.expr_to_string (parse_expr "(1 + 2) * 3"));
  Alcotest.(check string) "unary"
    "((-a) + (!b))"
    (Ast.expr_to_string (parse_expr "-a + !b"));
  Alcotest.(check string) "shift between compare and add"
    "((1 << (2 + 3)) < x)"
    (Ast.expr_to_string (parse_expr "1 << 2 + 3 < x"))

let test_parse_errors () =
  let bad = [ "fn main( { }"; "fn main() { var = 1; }"; "fn main() { x 1; }";
              "fn main() { if x { } }"; "fn main() { store(1); }" ] in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (Result.is_error (Lparser.parse src)))
    bad

(* --- resolver -------------------------------------------------------- *)

let resolve_errors source =
  match Lparser.parse source with
  | Error msg -> [ "parse: " ^ msg ]
  | Ok ast -> (
    match Resolve.check ast with
    | Ok () -> []
    | Error errors -> errors)

let expect_resolve_error source fragment =
  let errors = resolve_errors source in
  let found =
    List.exists
      (fun e ->
        let nl = String.length fragment and hl = String.length e in
        let rec scan i = i + nl <= hl && (String.sub e i nl = fragment || scan (i + 1)) in
        nl <= hl && scan 0)
      errors
  in
  Alcotest.(check bool)
    (Printf.sprintf "expected error containing %S, got [%s]" fragment
       (String.concat "; " errors))
    true found

let test_resolver () =
  expect_resolve_error "fn f() { }" "no main";
  expect_resolve_error "fn main(x) { }" "main takes no parameters";
  expect_resolve_error "fn main() { x = 1; }" "undeclared variable x";
  expect_resolve_error "fn main() { var x = 1; var x = 2; }" "duplicate declaration";
  expect_resolve_error "fn main() { var y = f(); }" "undefined function f";
  expect_resolve_error "fn main() { var y = g(1); } fn g(a, b) { return a; }"
    "expects 2 argument(s)";
  expect_resolve_error "fn main() { f(); } fn f() { f(); }" "recursion";
  expect_resolve_error "fn main() { f(); } fn f() { g(); } fn g() { f(); }"
    "recursion";
  expect_resolve_error "fn main() { return 3; }" "main cannot return a value";
  expect_resolve_error "fn main() { } fn load(x) { }" "shadows a builtin";
  expect_resolve_error "fn main() { } fn f(a, a) { }" "duplicate parameter"

let test_resolver_accepts_good_program () =
  Alcotest.(check (list string)) "clean" []
    (resolve_errors
       "fn main() { var t = twice(3); store(64, t); } fn twice(x) { return x + x; }")

(* --- codegen / end-to-end semantics ---------------------------------- *)

let test_arithmetic () =
  Alcotest.(check int) "arith" ((7 * 6) + (9 / 2) - (9 mod 4))
    (run_and_read "fn main() { store(64, 7 * 6 + 9 / 2 - 9 % 4); }")

let test_bitwise_and_shift () =
  Alcotest.(check int) "bits"
    ((12 land 10) lor (1 lsl 4) lxor 3)
    (run_and_read "fn main() { store(64, 12 & 10 | 1 << 4 ^ 3); }")

let test_comparisons_yield_bits () =
  Alcotest.(check int) "true" 1 (run_and_read "fn main() { store(64, 3 < 4); }");
  Alcotest.(check int) "false" 0 (run_and_read "fn main() { store(64, 4 < 3); }")

let test_logic_and_not () =
  Alcotest.(check int) "and" 1
    (run_and_read "fn main() { store(64, 5 && -2); }");
  Alcotest.(check int) "or" 1 (run_and_read "fn main() { store(64, 0 || 7); }");
  Alcotest.(check int) "not" 1 (run_and_read "fn main() { store(64, !0); }");
  Alcotest.(check int) "mixed" 1
    (run_and_read "fn main() { var a = 3; store(64, a > 1 && a < 5); }")

let test_if_else () =
  let src branchy =
    Printf.sprintf
      "fn main() { var x = %d; if (x > 10) { store(64, 1); } else { store(64, 2); } }"
      branchy
  in
  Alcotest.(check int) "then" 1 (run_and_read (src 50));
  Alcotest.(check int) "else" 2 (run_and_read (src 5))

let test_while_loop () =
  Alcotest.(check int) "sum 1..100" 5050
    (run_and_read
       "fn main() { var i = 1; var sum = 0; while (i <= 100) { sum = sum + i; i = i + 1; } store(64, sum); }")

let test_nested_control () =
  (* count primes below 50 with trial division *)
  let src =
    {|
      fn main() {
        var n = 2;
        var primes = 0;
        while (n < 50) {
          var d = 2;
          var composite = 0;
          while (d * d <= n) {
            if (n % d == 0) { composite = 1; d = n; }
            d = d + 1;
          }
          if (!composite) { primes = primes + 1; }
          n = n + 1;
        }
        store(64, primes);
      }
    |}
  in
  Alcotest.(check int) "15 primes below 50" 15 (run_and_read src)

let test_memory_builtins () =
  Alcotest.(check int) "load/store chain" 99
    (run_and_read
       ~mem_init:(fun mem -> mem.(1000) <- 98)
       "fn main() { var v = load(1000); store(64, v + 1); }")

let test_functions_and_calls () =
  let src =
    {|
      fn square(x) { return x * x; }
      fn sum_of_squares(a, b) { return square(a) + square(b); }
      fn main() { store(64, sum_of_squares(3, 4)); }
    |}
  in
  Alcotest.(check int) "3^2+4^2" 25 (run_and_read src)

let test_early_return () =
  let src =
    {|
      fn classify(x) {
        if (x < 0) { return 0 - 1; }
        if (x == 0) { return 0; }
        return 1;
      }
      fn main() { store(64, classify(0 - 5) + classify(0) * 10 + classify(7) * 100); }
    |}
  in
  Alcotest.(check int) "sign cases" (-1 + 0 + 100) (run_and_read src)

let test_function_without_return_yields_zero () =
  Alcotest.(check int) "implicit 0" 0
    (run_and_read "fn nothing() { var x = 1; } fn main() { store(64, nothing()); }")

let test_halt_statement () =
  Alcotest.(check int) "halt skips trailing code" 1
    (run_and_read "fn main() { store(64, 1); halt; store(64, 2); }")

let test_register_exhaustion_reported () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "fn main() { ";
  for i = 0 to 40 do
    Buffer.add_string b (Printf.sprintf "var v%d = %d; " i i)
  done;
  Buffer.add_string b "}";
  match Compiler.compile (Buffer.contents b) with
  | Error msg ->
    Alcotest.(check bool) "mentions registers" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected register exhaustion"

let test_compiled_code_is_levioso_ready () =
  (* the whole pipeline: source -> IR -> annotate -> secure simulation *)
  let src =
    {|
      fn main() {
        var i = 0;
        var hits = 0;
        while (i < 200) {
          var v = load(4096 + i);
          if (v % 3 == 0) { hits = hits + load(8192 + i); }
          i = i + 1;
        }
        store(64, hits);
      }
    |}
  in
  let program = Compiler.compile_exn src in
  let annotation = Levioso_core.Annotation.analyze program in
  Alcotest.(check (float 1e-9)) "full reconvergence" 1.0
    (Levioso_core.Annotation.coverage annotation);
  let mem_init mem =
    for i = 0 to 199 do
      mem.(4096 + i) <- i;
      mem.(8192 + i) <- i * 2
    done
  in
  List.iter
    (fun policy ->
      match
        Api.check_against_emulator
          ~config:{ Config.default with Config.mem_words = 65536 }
          ~mem_init ~policy program
      with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (policy ^ ": " ^ msg))
    [ "unsafe"; "delay"; "levioso" ]

let suite =
  ( "lang",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer comments/positions" `Quick test_lexer_comments_and_positions;
      Alcotest.test_case "lexer rejects garbage" `Quick test_lexer_rejects_garbage;
      Alcotest.test_case "operator precedence" `Quick test_precedence;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "resolver diagnostics" `Quick test_resolver;
      Alcotest.test_case "resolver accepts" `Quick test_resolver_accepts_good_program;
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "bitwise and shift" `Quick test_bitwise_and_shift;
      Alcotest.test_case "comparisons" `Quick test_comparisons_yield_bits;
      Alcotest.test_case "logic and not" `Quick test_logic_and_not;
      Alcotest.test_case "if/else" `Quick test_if_else;
      Alcotest.test_case "while loop" `Quick test_while_loop;
      Alcotest.test_case "nested control (primes)" `Quick test_nested_control;
      Alcotest.test_case "memory builtins" `Quick test_memory_builtins;
      Alcotest.test_case "functions and calls" `Quick test_functions_and_calls;
      Alcotest.test_case "early return" `Quick test_early_return;
      Alcotest.test_case "implicit zero return" `Quick test_function_without_return_yields_zero;
      Alcotest.test_case "halt statement" `Quick test_halt_statement;
      Alcotest.test_case "register exhaustion" `Quick test_register_exhaustion_reported;
      Alcotest.test_case "source to secure simulation" `Quick test_compiled_code_is_levioso_ready;
    ] )
