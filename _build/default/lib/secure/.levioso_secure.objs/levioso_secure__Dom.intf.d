lib/secure/dom.mli: Levioso_uarch
