test/test_lang.ml: Alcotest Array Buffer Levioso_core Levioso_ir Levioso_lang Levioso_uarch List Printf Result String
