test/test_util.ml: Alcotest Array Fun Levioso_util List String
