lib/attack/gadget.mli: Levioso_ir
