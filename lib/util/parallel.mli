(** A small fixed-size pool of worker domains (OCaml 5 multicore).

    Built for the evaluation harness: the (workload x policy) simulation
    matrix is embarrassingly parallel, each cell owning all of its
    mutable state, so a bounded set of domains plus an order-preserving
    [map] is all the machinery needed.

    Semantics worth relying on:

    - {!map} returns results in input order, whatever order the workers
      finish in — parallel runs are output-identical to serial ones as
      long as [f] itself is deterministic and shares no mutable state.
    - A pool of size [<= 1] degenerates to plain [List.map] in the
      calling domain: no domains are spawned, no synchronization runs.
    - If [f] raises, {!map} re-raises the exception of the {e
      lowest-indexed} failing element (again independent of scheduling)
      after all submitted work has drained, so the pool stays usable. *)

type t

val create : ?size:int -> ?max_pending:int -> unit -> t
(** [create ?size ?max_pending ()] spawns [size] worker domains when
    [size > 1]; a pool of size 1 spawns none.  [size] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1.
    [max_pending] (clamped to at least 1) bounds the work queue: further
    submissions — {!map} elements and {!async} calls alike — block the
    submitting thread until a worker frees a slot.  This is the
    backpressure the long-lived daemon applies to over-eager clients;
    unbounded when omitted (the batch-harness default). *)

val size : t -> int
(** Worker parallelism of the pool (>= 1); 1 means serial. *)

val queue_depth : t -> int
(** Tasks submitted but not yet picked up by a worker — the daemon's
    queue-depth gauge.  Always 0 for a serial pool. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()] — the [create] default, exposed
    so CLIs can report what [-j 0 (auto)] resolves to. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element on the pool's workers
    and returns the results in input order.

    @raise Invalid_argument if the pool has been shut down.
    @raise exn the exception raised by [f] on the lowest-indexed failing
    element, with its original backtrace, once all elements finished. *)

val iter : t -> ('a -> unit) -> 'a list -> unit
(** [iter pool f xs = ignore (map pool f xs)]. *)

(** {1 Futures}

    Single-task scheduling for request/response servers: a long-lived
    pool accepts work as it arrives ({!async}) and each submitter blocks
    only when it needs its own result ({!await}), so independent client
    requests interleave freely on the same workers. *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** Schedule one task.  On a serial (size-1) pool the task runs
    immediately in the calling thread.  On a bounded pool this blocks
    while the queue is full (backpressure).

    @raise Invalid_argument if the pool has been shut down. *)

val await : 'a future -> 'a
(** Block until the task finished; returns its value or re-raises its
    exception with the original backtrace.  Callable from any thread,
    any number of times (a failed future re-raises on every await). *)

val peek : 'a future -> bool
(** [true] once the task has finished (successfully or not) — a
    non-blocking progress probe. *)

type times = { submitted_s : float; started_s : float; finished_s : float }
(** Wall-clock stamps ([Unix.gettimeofday]) of a task's life:
    [started_s - submitted_s] is queue wait, [finished_s - started_s]
    execution time. *)

val times : 'a future -> times option
(** [Some] once the task finished (successfully or not), [None] while
    it runs.  Purely observational — this is the hook the serve layer's
    latency accounting reads; the pool itself stays telemetry-free. *)

val shutdown : t -> unit
(** Joins all worker domains.  Idempotent.  Any later {!map} raises. *)

val with_pool : ?size:int -> ?max_pending:int -> (t -> 'a) -> 'a
(** [with_pool ?size ?max_pending f] runs [f] on a fresh pool and shuts
    it down afterwards, also on exception. *)
