(* Tags with LRU ordering per set.  [ways.(set)] lists line addresses in
   most-recently-used-first order. *)

type t = {
  geometry : Config.cache_geometry;
  sets : int list array;  (* MRU-first line addresses *)
}

let create geometry = { geometry; sets = Array.make geometry.Config.sets [] }

let line_of t addr = addr / t.geometry.Config.line_words

let set_of t line = line land (t.geometry.Config.sets - 1)

let lookup t addr =
  let line = line_of t addr in
  let s = set_of t line in
  if List.mem line t.sets.(s) then begin
    t.sets.(s) <- line :: List.filter (fun l -> l <> line) t.sets.(s);
    true
  end
  else false

let fill t addr =
  let line = line_of t addr in
  let s = set_of t line in
  let others = List.filter (fun l -> l <> line) t.sets.(s) in
  let kept =
    if List.length others >= t.geometry.Config.ways then
      List.filteri (fun i _ -> i < t.geometry.Config.ways - 1) others
    else others
  in
  t.sets.(s) <- line :: kept

let invalidate t addr =
  let line = line_of t addr in
  let s = set_of t line in
  t.sets.(s) <- List.filter (fun l -> l <> line) t.sets.(s)

let probe t addr =
  let line = line_of t addr in
  List.mem line t.sets.(set_of t line)

let reset t = Array.fill t.sets 0 (Array.length t.sets) []

module Hierarchy = struct
  module Registry = Levioso_telemetry.Registry

  (* Access counters live in a telemetry registry (scoped "cache/") so
     harnesses that pass a shared registry into [create] read them next to
     every other instrument; standalone hierarchies get a private one. *)
  type h = {
    l1 : t;
    l2 : t;
    l1_hit : int;
    l2_hit : int;
    mem_lat : int;
    registry : Registry.t;
    n_l1_hit : Registry.Counter.c;
    n_l1_miss : Registry.Counter.c;
    n_l2_hit : Registry.Counter.c;
    n_l2_miss : Registry.Counter.c;
  }

  type level =
    | L1
    | L2
    | Memory

  let create ?registry (config : Config.t) =
    let registry =
      Registry.scope
        (match registry with
        | Some r -> r
        | None -> Registry.create ())
        "cache"
    in
    {
      l1 = create config.Config.l1;
      l2 = create config.Config.l2;
      l1_hit = config.Config.l1.Config.hit_latency;
      l2_hit = config.Config.l2.Config.hit_latency;
      mem_lat = config.Config.memory_latency;
      registry;
      n_l1_hit = Registry.counter registry "l1_hits";
      n_l1_miss = Registry.counter registry "l1_misses";
      n_l2_hit = Registry.counter registry "l2_hits";
      n_l2_miss = Registry.counter registry "l2_misses";
    }

  let load h addr =
    if lookup h.l1 addr then begin
      Registry.Counter.incr h.n_l1_hit;
      (h.l1_hit, L1)
    end
    else begin
      Registry.Counter.incr h.n_l1_miss;
      if lookup h.l2 addr then begin
        Registry.Counter.incr h.n_l2_hit;
        fill h.l1 addr;
        (h.l2_hit, L2)
      end
      else begin
        Registry.Counter.incr h.n_l2_miss;
        fill h.l2 addr;
        fill h.l1 addr;
        (h.mem_lat, Memory)
      end
    end

  let prefetch h addr =
    fill h.l2 addr;
    fill h.l1 addr

  let store_commit h addr =
    fill h.l2 addr;
    fill h.l1 addr

  let flush h addr =
    invalidate h.l1 addr;
    invalidate h.l2 addr

  let probe h addr =
    if probe h.l1 addr then L1 else if probe h.l2 addr then L2 else Memory

  let load_latency h addr =
    match probe h addr with
    | L1 -> h.l1_hit
    | L2 -> h.l2_hit
    | Memory -> h.mem_lat

  let l1 h = h.l1
  let l2 h = h.l2

  let stats h =
    [
      ("l1_hits", Registry.Counter.value h.n_l1_hit);
      ("l1_misses", Registry.Counter.value h.n_l1_miss);
      ("l2_hits", Registry.Counter.value h.n_l2_hit);
      ("l2_misses", Registry.Counter.value h.n_l2_miss);
    ]

  let registry h = h.registry

  let reset_stats h = Registry.reset h.registry
end
