(* Instructions are buffered with symbolic targets; [build] patches label
   references into pc indices. *)

type pending =
  | Ready of Ir.instr
  | Branch_to of Ir.cmp * Ir.operand * Ir.operand * string
  | Jump_to of string

type t = {
  mutable code : pending list;  (* reverse order *)
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable next_label : int;
  mutable next_reg : int;
}

let create () =
  {
    code = [];
    count = 0;
    labels = Hashtbl.create 16;
    next_label = 0;
    next_reg = 1;
  }

let fresh_reg t =
  if t.next_reg >= Ir.num_regs then failwith "Builder.fresh_reg: register file exhausted";
  let r = t.next_reg in
  t.next_reg <- t.next_reg + 1;
  r

let fresh_label t =
  let name = Printf.sprintf "L%d" t.next_label in
  t.next_label <- t.next_label + 1;
  name

let place t name =
  if Hashtbl.mem t.labels name then failwith ("Builder.place: duplicate label " ^ name);
  Hashtbl.add t.labels name t.count

let here t = t.count

let push t p =
  t.code <- p :: t.code;
  t.count <- t.count + 1

let alu t op dst a b = push t (Ready (Ir.Alu { op; dst; a; b }))
let add t dst a b = alu t Ir.Add dst a b
let sub t dst a b = alu t Ir.Sub dst a b
let mul t dst a b = alu t Ir.Mul dst a b
let mov t dst a = alu t Ir.Add dst a (Ir.Imm 0)
let load t dst base off = push t (Ready (Ir.Load { dst; base; off }))
let store t base off src = push t (Ready (Ir.Store { base; off; src }))
let branch t cmp a b label = push t (Branch_to (cmp, a, b, label))
let jump t label = push t (Jump_to label)
let flush t base off = push t (Ready (Ir.Flush { base; off }))
let rdcycle ?(after = Ir.Imm 0) t dst =
  push t (Ready (Ir.Rdcycle { dst; after }))
let halt t = push t (Ready Ir.Halt)

let negate_cmp = function
  | Ir.Eq -> Ir.Ne
  | Ir.Ne -> Ir.Eq
  | Ir.Lt -> Ir.Ge
  | Ir.Le -> Ir.Gt
  | Ir.Gt -> Ir.Le
  | Ir.Ge -> Ir.Lt

let if_then t ~cond:(cmp, a, b) body =
  let skip = fresh_label t in
  branch t (negate_cmp cmp) a b skip;
  body ();
  place t skip

let if_then_else t ~cond:(cmp, a, b) then_body else_body =
  let else_l = fresh_label t in
  let end_l = fresh_label t in
  branch t (negate_cmp cmp) a b else_l;
  then_body ();
  jump t end_l;
  place t else_l;
  else_body ();
  place t end_l

let while_ t ~cond body =
  let head = fresh_label t in
  let exit = fresh_label t in
  place t head;
  let cmp, a, b = cond () in
  branch t (negate_cmp cmp) a b exit;
  body ();
  jump t head;
  place t exit

let for_down t ~counter ~from body =
  mov t counter from;
  let head = fresh_label t in
  let exit = fresh_label t in
  place t head;
  branch t Ir.Le (Ir.Reg counter) (Ir.Imm 0) exit;
  sub t counter (Ir.Reg counter) (Ir.Imm 1);
  body ();
  jump t head;
  place t exit

let build t =
  (* Guarantee the program cannot fall off the end. *)
  (match t.code with
  | Ready Ir.Halt :: _ | Jump_to _ :: _ -> ()
  | _ -> halt t);
  let resolve name =
    match Hashtbl.find_opt t.labels name with
    | Some pc -> pc
    | None -> failwith ("Builder.build: unplaced label " ^ name)
  in
  let finish = function
    | Ready i -> i
    | Branch_to (cmp, a, b, l) -> Ir.Branch { cmp; a; b; target = resolve l }
    | Jump_to l -> Ir.Jump { target = resolve l }
  in
  let program = Array.of_list (List.rev_map finish t.code) in
  match Ir.validate program with
  | Ok () -> program
  | Error msg -> failwith ("Builder.build: invalid program: " ^ msg)
