module Ring = struct
  type 'a t = { cap : int; slots : 'a option array; mutable pushes : int }

  let create cap =
    if cap < 1 then invalid_arg "Timeline.Ring.create: capacity must be >= 1";
    { cap; slots = Array.make cap None; pushes = 0 }

  let capacity r = r.cap
  let length r = min r.pushes r.cap
  let pushed r = r.pushes

  let push r x =
    r.slots.(r.pushes mod r.cap) <- Some x;
    r.pushes <- r.pushes + 1

  let to_list r =
    let n = length r in
    List.init n (fun i ->
        match r.slots.((r.pushes - n + i) mod r.cap) with
        | Some x -> x
        | None -> assert false)

  let clear r =
    Array.fill r.slots 0 r.cap None;
    r.pushes <- 0
end

let format_version = 1

type insn = {
  seq : int;
  pc : int;
  fetch_c : int;
  mutable issue_c : int option;
  mutable complete_c : int option;
  mutable commit_c : int option;
  mutable squash_c : int option;
  mutable resolve_i : (int * bool * bool) option;
  (* (cycle, cause, code), newest first; reversed at render time *)
  mutable stalls : (int * string * string) list;
}

(* The pipeline reuses sequence numbers: after a squash, re-fetched
   correct-path instructions get the seqs their wrong-path predecessors
   held.  Records are therefore keyed by a private per-fetch instance id
   ([insns]), with [live] mapping each seq to its current instance —
   otherwise the re-fetch would overwrite the squashed record and
   wrong-path work would vanish from the trace. *)
type t = {
  window : (int * int) option;
  disasm : int -> string;
  insns : (int, insn) Hashtbl.t;  (* instance id -> record, in fetch order *)
  live : (int, int) Hashtbl.t;  (* seq -> instance id of latest fetch *)
  mutable next_instance : int;
  mutable last_cycle : int;
  mutable seen : int;
}

let create ?window ?disasm () =
  (match window with
  | Some (a, b) when a < 0 || a > b ->
      invalid_arg (Printf.sprintf "Timeline.create: bad window %d:%d" a b)
  | _ -> ());
  let disasm = match disasm with Some f -> f | None -> Printf.sprintf "pc=%d" in
  {
    window;
    disasm;
    insns = Hashtbl.create 256;
    live = Hashtbl.create 256;
    next_instance = 0;
    last_cycle = 0;
    seen = 0;
  }

let touch t cycle = if cycle > t.last_cycle then t.last_cycle <- cycle

let fetch t ~cycle ~seq ~pc =
  touch t cycle;
  t.seen <- t.seen + 1;
  let keep =
    match t.window with Some (a, b) -> cycle >= a && cycle <= b | None -> true
  in
  if keep then begin
    let id = t.next_instance in
    t.next_instance <- id + 1;
    Hashtbl.replace t.live seq id;
    Hashtbl.replace t.insns id
      {
        seq;
        pc;
        fetch_c = cycle;
        issue_c = None;
        complete_c = None;
        commit_c = None;
        squash_c = None;
        resolve_i = None;
        stalls = [];
      }
  end
  else
    (* a stale mapping would attribute this instance's later events to a
       previous in-window holder of the same seq *)
    Hashtbl.remove t.live seq

let find t seq =
  match Hashtbl.find_opt t.live seq with
  | Some id -> Hashtbl.find_opt t.insns id
  | None -> None

let issue t ~cycle ~seq =
  touch t cycle;
  match find t seq with Some i -> i.issue_c <- Some cycle | None -> ()

let complete t ~cycle ~seq =
  touch t cycle;
  match find t seq with Some i -> i.complete_c <- Some cycle | None -> ()

let commit t ~cycle ~seq =
  touch t cycle;
  match find t seq with Some i -> i.commit_c <- Some cycle | None -> ()

let resolve t ~cycle ~seq ~taken ~mispredicted =
  touch t cycle;
  match find t seq with
  | Some i -> i.resolve_i <- Some (cycle, taken, mispredicted)
  | None -> ()

let squash t ~cycle ~boundary ~count =
  touch t cycle;
  for seq = boundary + 1 to boundary + count do
    match find t seq with
    | Some i when i.commit_c = None && i.squash_c = None ->
        i.squash_c <- Some cycle
    | _ -> ()
  done

let stall t ~cycle ~seq ~cause ~code =
  touch t cycle;
  match find t seq with
  | Some i -> i.stalls <- (cycle, cause, code) :: i.stalls
  | None -> ()

type interval = {
  iv_seq : int;
  iv_pc : int;
  iv_fetch : int;
  iv_issue : int option;
  iv_complete : int option;
  iv_commit : int option;
  iv_squash : int option;
  iv_stalls : (int * string) list;
}

(* fetch order: instance ids are allocated monotonically *)
let sorted_insns t =
  Hashtbl.fold (fun id i acc -> (id, i) :: acc) t.insns []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let intervals t =
  List.map
    (fun i ->
      {
        iv_seq = i.seq;
        iv_pc = i.pc;
        iv_fetch = i.fetch_c;
        iv_issue = i.issue_c;
        iv_complete = i.complete_c;
        iv_commit = i.commit_c;
        iv_squash = i.squash_c;
        iv_stalls = List.rev_map (fun (c, cause, _) -> (c, cause)) i.stalls;
      })
    (sorted_insns t)
  |> List.stable_sort (fun a b -> compare (a.iv_seq, a.iv_fetch) (b.iv_seq, b.iv_fetch))

let recorded t = Hashtbl.length t.insns
let seen t = t.seen

(* Merge consecutive same-cause stall cycles into half-open episodes
   [(first, past_last, cause, code)].  Input is oldest first. *)
let episodes stalls =
  let rec go acc = function
    | [] -> List.rev acc
    | (c, cause, code) :: rest -> (
        match acc with
        | (c0, c1, cause0, code0) :: tl when cause0 = cause && c = c1 ->
            go ((c0, c + 1, cause0, code0) :: tl) rest
        | _ -> go ((c, c + 1, cause, code) :: acc) rest)
  in
  go [] stalls

(* Lane-0 stage segments, half-open [start, past_end).  [term] closes
   still-open stages: the squash cycle for squashed instructions, one
   past the last observed cycle otherwise. *)
let lane0 i term =
  let f_end = i.fetch_c + 1 in
  let base = [ ("F", i.fetch_c, f_end) ] in
  let tail =
    match (i.issue_c, i.complete_c, i.commit_c) with
    | Some isu, Some comp, cm ->
        let c_end = match cm with Some c -> c + 1 | None -> term in
        [ ("I", f_end, isu); ("X", isu, comp); ("C", comp, c_end) ]
    | Some isu, None, _ -> [ ("I", f_end, isu); ("X", isu, term) ]
    | None, _, Some cm ->
        (* Done at dispatch (jump/halt): window residence until commit. *)
        [ ("C", f_end, cm + 1) ]
    | None, _, None -> [ ("I", f_end, term) ]
  in
  List.filter (fun (_, s, e) -> e > s) (base @ tail)

let render ?(meta = []) t out =
  out "Kanata\t0004\n";
  out
    (Printf.sprintf "#levioso-timeline\tv%d\tschema_version=%d\n" format_version
       Schema.version);
  (match t.window with
  | Some (a, b) -> out (Printf.sprintf "#window\t%d:%d\n" a b)
  | None -> ());
  List.iter (fun (k, v) -> out (Printf.sprintf "#%s\t%s\n" k v)) meta;
  let insns = sorted_insns t in
  let horizon = t.last_cycle + 1 in
  (* (cycle, file id, op index within instruction, line) *)
  let ops = ref [] in
  List.iteri
    (fun id i ->
      let opidx = ref 0 in
      let push cycle line =
        ops := (cycle, id, !opidx, line) :: !ops;
        incr opidx
      in
      push i.fetch_c (Printf.sprintf "I\t%d\t%d\t0" id i.seq);
      push i.fetch_c (Printf.sprintf "L\t%d\t0\t%d: %s" id i.pc (t.disasm i.pc));
      push i.fetch_c
        (Printf.sprintf "L\t%d\t1\tseq=%d pc=%d fetch=%d " id i.seq i.pc
           i.fetch_c);
      (match i.resolve_i with
      | Some (c, taken, misp) ->
          push i.fetch_c
            (Printf.sprintf "L\t%d\t1\tresolved@%d taken=%b mispredict=%b " id c
               taken misp)
      | None -> ());
      let term = match i.squash_c with Some s -> s | None -> horizon in
      List.iter
        (fun (stage, s, e) ->
          push s (Printf.sprintf "S\t%d\t0\t%s" id stage);
          push e (Printf.sprintf "E\t%d\t0\t%s" id stage))
        (lane0 i term);
      List.iter
        (fun (c0, c1, cause, code) ->
          push i.fetch_c
            (Printf.sprintf "L\t%d\t1\t%s [%d,%d) " id cause c0 c1);
          push c0 (Printf.sprintf "S\t%d\t1\t%s" id code);
          push c1 (Printf.sprintf "E\t%d\t1\t%s" id code))
        (episodes (List.rev i.stalls));
      match (i.commit_c, i.squash_c) with
      | Some cm, _ -> push (cm + 1) (Printf.sprintf "R\t%d\t%d\t0" id i.seq)
      | None, Some sq -> push sq (Printf.sprintf "R\t%d\t%d\t1" id i.seq)
      | None, None -> ())
    insns;
  let sorted =
    List.sort
      (fun (c1, i1, o1, _) (c2, i2, o2, _) -> compare (c1, i1, o1) (c2, i2, o2))
      !ops
  in
  let cur = ref min_int in
  List.iter
    (fun (c, _, _, line) ->
      if c <> !cur then (
        out (Printf.sprintf "C=\t%d\n" c);
        cur := c);
      out line;
      out "\n")
    sorted

let to_konata_string ?meta t =
  let buf = Buffer.create 4096 in
  render ?meta t (Buffer.add_string buf);
  Buffer.contents buf

let write_konata ?meta t oc = render ?meta t (output_string oc)
