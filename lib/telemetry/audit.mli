(** Restriction provenance: one structured event per policy restriction.

    Stall attribution ({!Stall}) says {e where} cycles went; this module
    says {e why}.  Every time a defense policy refuses [may_execute] for
    an instruction, the pipeline opens a restriction episode; when the
    instruction finally issues (or is squashed) the episode closes and
    one {!event} is recorded carrying the static PC, dynamic sequence
    number, the policy's own explanation of the decision ({!reason}),
    how many cycles the refusal cost, and — the paper's fig2/fig3
    motivating claim, measured rather than asserted — whether the
    restriction was {e necessary}: an instruction restricted while no
    older unresolved branch is a {e true} (static) branch dependency was
    restricted unnecessarily.

    Events land in a bounded ring buffer (recent raw events for
    inspection) and are folded into per-PC / per-reason aggregates that
    are {e not} bounded — the necessary/unnecessary split always covers
    the whole run.  An optional {!Trace} sink streams every event as
    JSONL for offline analysis.

    The necessity classifier is injected at {!create} time (built from
    [lib/analysis/branch_dep] by [Levioso_core.Explain]); this module
    stays dependency-free. *)

(** Why the policy restricted the instruction, as reported by the policy
    itself via its [explain] callback. *)
type reason =
  | Branch_dep of (int * int) list
      (** gated behind unresolved branches [(seq, pc)], oldest first *)
  | Taint of (int * int) list
      (** operands tainted by speculative root loads [(seq, pc)]
          (STT/NDA) *)
  | Overflow
      (** the hardware tracking budget overflowed; the policy fell back
          to conservative gating *)
  | Unspecified  (** the policy offered no explanation *)

val reason_kind : reason -> string
(** ["branch_dep" | "taint" | "overflow" | "unspecified"]. *)

val reason_kinds : string list
(** All four kinds, fixed order (JSON key order). *)

type outcome =
  | Issued  (** the episode ended with the instruction issuing *)
  | Squashed  (** the instruction was squashed while restricted *)

type event = {
  seq : int;  (** dynamic sequence number *)
  pc : int;  (** static PC *)
  policy : string;
  reason : reason;
  necessary : bool;
      (** some older unresolved branch at first refusal was a true
          static dependency of [pc] *)
  cycles : int;  (** cycles the policy refused this instruction *)
  end_cycle : int;  (** cycle the episode closed *)
  outcome : outcome;
}

type t

val create :
  ?capacity:int ->
  ?is_true_dep:(pc:int -> branch_pc:int -> bool) ->
  unit ->
  t
(** [capacity] bounds the raw-event ring (default 4096; aggregates are
    unaffected).  [is_true_dep] is the static branch-dependency oracle;
    when omitted every restriction classifies as necessary (no static
    information). *)

val necessary : t -> pc:int -> branch_pcs:int list -> bool
(** Does any of [branch_pcs] truly gate [pc] per the injected
    classifier?  [false] on an empty list. *)

val record : t -> event -> unit

val attach_sink : t -> Trace.sink -> unit
(** Stream every subsequently recorded event to [sink] as a
    [stage = "restrict"] trace record (cycle = episode end). *)

(** {1 Aggregates} (whole-run, unbounded) *)

val total_events : t -> int
val total_cycles : t -> int

val necessary_cycles : t -> int
val unnecessary_cycles : t -> int
val necessary_events : t -> int
val unnecessary_events : t -> int

val unnecessary_share : t -> float
(** [unnecessary_cycles / total_cycles]; [0.0] when nothing was
    restricted. *)

val by_reason : t -> (string * int * int) list
(** Per reason kind, fixed order: [(kind, events, cycles)]. *)

val top_pcs : t -> k:int -> (int * int * int * int) list
(** The [k] PCs with the most restriction cycles, descending (PC
    ascending on ties): [(pc, events, necessary_cycles,
    unnecessary_cycles)]. *)

(** {1 Inspection and serialization} *)

val recent : t -> event list
(** Ring contents, oldest first (at most [capacity] events). *)

val dropped : t -> int
(** Events evicted from the ring (still aggregated). *)

val to_json : ?top_k:int -> t -> Json.t
(** [{schema_version, events, cycles, dropped_events,
    necessary: {events, cycles}, unnecessary: {events, cycles},
    unnecessary_share, by_reason: {...}, top_pcs: [...]}];
    [top_k] defaults to 10.  Deterministic. *)

val to_rows : t -> (string * string) list
(** Text rendering for verbose reports. *)

val event_to_json : event -> Json.t
