lib/uarch/tage.mli:
