lib/workload/hashjoin.mli: Workload
