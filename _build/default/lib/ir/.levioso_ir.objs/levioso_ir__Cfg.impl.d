lib/ir/cfg.ml: Array Buffer Hashtbl Ir List Printf String
