(** Live run monitor: a heartbeat for long matrix runs and fuzz
    campaigns.

    Bench matrix runs, [levioso_sim] sweeps and fuzz campaigns report
    item starts/completions into a monitor; it periodically renders

    - an in-place ANSI status line (done/total, percent, elapsed, ETA,
      the workload×policy each domain is currently simulating), and
    - atomic machine-readable snapshots: a [progress.json] file
      (schema-tagged) and/or an OpenMetrics text file suitable for
      scraping — both written via temp-file + rename so a tailing
      reader never sees a torn write.

    The monitor is strictly a side channel: it never touches simulation
    state, so results are bit-identical with it on or off, and it is
    mutex-guarded so [-j N] workers can report concurrently without
    perturbing the (ordered, deterministic) result collection. *)

type t

val create :
  ?ansi:out_channel ->
  ?force_ansi:bool ->
  ?json_path:string ->
  ?metrics_path:string ->
  ?min_interval:float ->
  ?total:int ->
  label:string ->
  unit ->
  t
(** [min_interval] (seconds, default 0.5) rate-limits rendering; the
    final [close] snapshot is always written.  [total] may be set later
    via {!set_total} once the work list is known.

    The [ansi] status line is auto-suppressed when the channel is not a
    terminal ([Unix.isatty]) — piping or redirecting stderr keeps logs
    clean without losing the [json_path]/[metrics_path] snapshots.
    [force_ansi] (an explicit [--progress] flag) overrides the
    detection and keeps the line even when piped. *)

val set_total : t -> int -> unit

val inc_total : t -> int -> unit
(** Grow the planned total by [n] (from zero when unset).  Long-lived
    daemons learn of work one client submission at a time, so their
    total accumulates instead of being known up front. *)

val set_gauge : t -> ?help:string -> string -> float -> unit
(** Publish an application gauge (e.g. the daemon's work-queue depth).
    Gauges appear in the JSON snapshot under ["gauges"] and in the
    OpenMetrics text as [levioso_<name>]; setting an existing name
    updates it in place, keeping first-insertion order (the rendered
    metric ordering is stable across updates).  [name] is sanitized to
    the OpenMetrics charset ([a-zA-Z0-9_:]; anything else becomes
    ['_']), and the HELP line is escaped, so caller-supplied strings
    can never corrupt the exposition format. *)

val set_histogram :
  t ->
  ?help:string ->
  string ->
  buckets:(float * int) list ->
  sum:float ->
  count:int ->
  unit
(** Publish a latency histogram: [buckets] are [(upper_bound,
    cumulative_count)] pairs (e.g. {!Span.Hist.buckets}), rendered as
    OpenMetrics [<name>_bucket{le="..."}] series plus the implied
    [+Inf] bucket, [<name>_sum] and [<name>_count].  Same
    sanitization, update-in-place and ordering rules as
    {!set_gauge}; the JSON snapshot carries a compact
    [histograms.<name> = {count, sum_s}] echo. *)

val start : t -> string -> unit
(** [start t what] notes that the calling domain began working on
    [what] (e.g. ["matmul/levioso"]). *)

val item_done : t -> ?wall_s:float -> unit -> unit
(** The calling domain finished its current item; increments the done
    counter and feeds the per-cell wall-clock aggregate. *)

val progress : t -> ?failures:int -> done_:int -> unit -> unit
(** Absolute progress update (fuzz campaigns report executed-iteration
    counts after each chunk rather than per-item start/finish). *)

val snapshot_json : t -> Json.t
(** The current snapshot, as written to [json_path].  Includes a
    [process] object with process-level self-metrics (uptime, GC
    heap/top-heap words, minor/major collection counts, minor words
    allocated) so any monitored CLI reports its own health. *)

val openmetrics : t -> string
(** The current snapshot in OpenMetrics text format (ends with
    [# EOF]).  Alongside the progress and application gauges it exports
    the same process self-metrics as {!snapshot_json}
    ([levioso_uptime_seconds], [levioso_gc_heap_words],
    [levioso_gc_top_heap_words], [levioso_gc_minor_collections],
    [levioso_gc_major_collections], [levioso_gc_minor_words]). *)

val close : t -> unit
(** Forces a final snapshot (files + status line, which gets a
    terminating newline).  Idempotent. *)
