(** adjacency-list sweep with conditional relaxation (BFS-like) — one kernel of the suite standing in for SPEC CPU2017; see the
    implementation header for the behavioural axes it stresses. *)

val workload : Workload.t
