(** Self-contained HTML dashboard over a continuous-telemetry history
    ({!Levioso_telemetry.Tsdb} records, as recorded by
    [levioso_serve serve --history-out] and rendered by
    [levioso_report --dashboard DIR]).

    Same contract as {!Html_report}: one HTML document, inline CSS,
    inline SVG area charts and sparklines, no scripts, no external
    references — it opens from a file:// URL or an artifact store.  The
    output is a pure function of the input records (every float printed
    with a fixed format), so re-rendering the same segments is
    byte-identical and CI diffs dashboards textually. *)

val render :
  ?title:string ->
  Levioso_telemetry.Tsdb.record list ->
  (string, string) result
(** Render panels for queue depth, request/error rates, latency
    percentiles, cache hit share and GC heap, plus alert transitions
    and the newest sample's full field table.  [Error] when the records
    contain no samples. *)

val render_exn :
  ?title:string -> Levioso_telemetry.Tsdb.record list -> string
(** @raise Invalid_argument when {!render} fails. *)
