(** substring scan with early-exit inner loop (text processing) — one kernel of the suite standing in for SPEC CPU2017; see the
    implementation header for the behavioural axes it stresses. *)

val workload : Workload.t
