lib/secure/nda.mli: Levioso_uarch
