type kind = Branch | Load | Store | Flush | Alu | Other

type dep = Data | Address | Speculation

type event =
  | Node of { id : int; seq : int; pc : int; kind : kind; disasm : string }
  | Source of { id : int; addr : int }
  | Edge of { src : int; dst : int; dep : dep }
  | Transmit of { id : int; addr : int }
  | Resolved of { id : int; mispredicted : bool }
  | Committed of { id : int }
  | Squashed of { id : int }

let kind_to_string = function
  | Branch -> "branch"
  | Load -> "load"
  | Store -> "store"
  | Flush -> "flush"
  | Alu -> "alu"
  | Other -> "other"

let dep_to_string = function
  | Data -> "data"
  | Address -> "address"
  | Speculation -> "speculation"

let event_to_json ~cycle ev =
  let base kind fields = Json.Obj (("event", Json.String kind) :: ("cycle", Json.Int cycle) :: fields) in
  match ev with
  | Node { id; seq; pc; kind; disasm } ->
    base "node"
      [ ("id", Json.Int id); ("seq", Json.Int seq); ("pc", Json.Int pc);
        ("kind", Json.String (kind_to_string kind));
        ("disasm", Json.String disasm) ]
  | Source { id; addr } -> base "source" [ ("id", Json.Int id); ("addr", Json.Int addr) ]
  | Edge { src; dst; dep } ->
    base "edge"
      [ ("src", Json.Int src); ("dst", Json.Int dst);
        ("dep", Json.String (dep_to_string dep)) ]
  | Transmit { id; addr } -> base "transmit" [ ("id", Json.Int id); ("addr", Json.Int addr) ]
  | Resolved { id; mispredicted } ->
    base "resolved" [ ("id", Json.Int id); ("mispredicted", Json.Bool mispredicted) ]
  | Committed { id } -> base "committed" [ ("id", Json.Int id) ]
  | Squashed { id } -> base "squashed" [ ("id", Json.Int id) ]

(* ------------------------------------------------------------------ *)
(* Leak-graph accumulator                                             *)

type outcome = Inflight | Commit of int | Squash of int

type node = {
  id : int;
  seq : int;
  pc : int;
  kind : kind;
  disasm : string;
  cycle : int;  (* cycle the node entered the graph *)
  mutable source_addrs : int list;  (* reverse order of arrival *)
  mutable transmit_addrs : int list;
  mutable resolved : (int * bool) option;  (* cycle, mispredicted *)
  mutable outcome : outcome;
  mutable incoming : (int * dep) list;  (* src node id, reverse order *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable order : int list;  (* node ids, reverse insertion order *)
  mutable edges : (int * int * dep) list;  (* reverse order *)
  mutable transmits : int list;  (* node ids with >= 1 transmit, reverse *)
}

let create () =
  { nodes = Hashtbl.create 64; order = []; edges = []; transmits = [] }

let feed t ~cycle ev =
  match ev with
  | Node { id; seq; pc; kind; disasm } ->
    if not (Hashtbl.mem t.nodes id) then begin
      Hashtbl.replace t.nodes id
        { id; seq; pc; kind; disasm; cycle; source_addrs = [];
          transmit_addrs = []; resolved = None; outcome = Inflight;
          incoming = [] };
      t.order <- id :: t.order
    end
  | Source { id; addr } -> (
    match Hashtbl.find_opt t.nodes id with
    | Some n -> n.source_addrs <- addr :: n.source_addrs
    | None -> ())
  | Edge { src; dst; dep } -> (
    match Hashtbl.find_opt t.nodes dst with
    | Some n ->
      if not (List.exists (fun (s, d) -> s = src && d = dep) n.incoming)
      then begin
        n.incoming <- (src, dep) :: n.incoming;
        t.edges <- (src, dst, dep) :: t.edges
      end
    | None -> ())
  | Transmit { id; addr } -> (
    match Hashtbl.find_opt t.nodes id with
    | Some n ->
      if n.transmit_addrs = [] then t.transmits <- id :: t.transmits;
      n.transmit_addrs <- addr :: n.transmit_addrs
    | None -> ())
  | Resolved { id; mispredicted } -> (
    match Hashtbl.find_opt t.nodes id with
    | Some n -> if n.resolved = None then n.resolved <- Some (cycle, mispredicted)
    | None -> ())
  | Committed { id } -> (
    match Hashtbl.find_opt t.nodes id with
    | Some n -> if n.outcome = Inflight then n.outcome <- Commit cycle
    | None -> ())
  | Squashed { id } -> (
    match Hashtbl.find_opt t.nodes id with
    | Some n -> if n.outcome = Inflight then n.outcome <- Squash cycle
    | None -> ())

let is_empty t = t.transmits = []

(* Backward closure from [root] over all incoming edges; returns the
   member node ids sorted ascending (creation order). *)
let closure t root =
  let seen = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt t.nodes id with
      | Some n -> List.iter (fun (src, _) -> go src) n.incoming
      | None -> ()
    end
  in
  go root;
  Hashtbl.fold (fun id () acc -> id :: acc) seen []
  |> List.sort compare

let transmit_ids ?probe_filter t =
  let all = List.rev t.transmits in
  match probe_filter with
  | None -> all
  | Some f ->
    let kept =
      List.filter
        (fun id ->
          match Hashtbl.find_opt t.nodes id with
          | Some n -> List.exists f n.transmit_addrs
          | None -> false)
        all
    in
    if kept = [] then all else kept

let chains ?probe_filter t =
  List.map (closure t) (transmit_ids ?probe_filter t)

let node_json n =
  let outcome, outcome_cycle =
    match n.outcome with
    | Inflight -> ("inflight", Json.Null)
    | Commit c -> ("committed", Json.Int c)
    | Squash c -> ("squashed", Json.Int c)
  in
  let fields =
    [ ("id", Json.Int n.id); ("seq", Json.Int n.seq); ("pc", Json.Int n.pc);
      ("kind", Json.String (kind_to_string n.kind));
      ("disasm", Json.String n.disasm); ("cycle", Json.Int n.cycle);
      ("outcome", Json.String outcome); ("outcome_cycle", outcome_cycle) ]
  in
  let fields =
    match n.resolved with
    | None -> fields
    | Some (c, misp) ->
      fields
      @ [ ("resolved_cycle", Json.Int c); ("mispredicted", Json.Bool misp) ]
  in
  let fields =
    match List.rev n.source_addrs with
    | [] -> fields
    | addrs ->
      fields @ [ ("source_addrs", Json.List (List.map (fun a -> Json.Int a) addrs)) ]
  in
  let fields =
    match List.rev n.transmit_addrs with
    | [] -> fields
    | addrs ->
      fields @ [ ("transmit_addrs", Json.List (List.map (fun a -> Json.Int a) addrs)) ]
  in
  Json.Obj fields

let to_json ?probe_filter t =
  let ids = List.rev t.order in
  let nodes =
    List.map (fun id -> node_json (Hashtbl.find t.nodes id)) ids
  in
  let edges =
    List.rev_map
      (fun (src, dst, dep) ->
        Json.Obj
          [ ("src", Json.Int src); ("dst", Json.Int dst);
            ("dep", Json.String (dep_to_string dep)) ])
      t.edges
  in
  let chains =
    List.map
      (fun c -> Json.List (List.map (fun id -> Json.Int id) c))
      (chains ?probe_filter t)
  in
  Schema.tag
    [ ("kind", Json.String "levioso-flowtrace");
      ("nodes", Json.List nodes); ("edges", Json.List edges);
      ("chains", Json.List chains) ]

let render ?probe_filter t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "levioso-flowtrace v1 schema_version=%d\n" Schema.version;
  let n_nodes = Hashtbl.length t.nodes in
  let n_edges = List.length t.edges in
  let n_sources =
    Hashtbl.fold (fun _ n acc -> if n.source_addrs <> [] then acc + 1 else acc)
      t.nodes 0
  in
  let n_transmits = List.length t.transmits in
  let n_misp =
    Hashtbl.fold
      (fun _ n acc ->
        match n.resolved with Some (_, true) -> acc + 1 | _ -> acc)
      t.nodes 0
  in
  pf "nodes=%d edges=%d sources=%d transmits=%d mispredicts=%d\n" n_nodes
    n_edges n_sources n_transmits n_misp;
  let cs = chains ?probe_filter t in
  if cs = [] then Buffer.add_string b "no leak chains\n"
  else
    List.iteri
      (fun i chain ->
        pf "chain %d (%d nodes)\n" i (List.length chain);
        List.iter
          (fun id ->
            let n = Hashtbl.find t.nodes id in
            let tag =
              match (n.source_addrs, n.transmit_addrs, n.resolved) with
              | _ :: _, _, _ -> " SOURCE"
              | _, _ :: _, _ -> " TRANSMIT"
              | _, _, Some (_, true) -> " MISPREDICT"
              | _ -> ""
            in
            let outcome =
              match n.outcome with
              | Inflight -> "inflight"
              | Commit _ -> "committed"
              | Squash _ -> "squashed"
            in
            pf "  n%d pc=%d seq=%d %s [%s] %s%s" n.id n.pc n.seq
              (kind_to_string n.kind) outcome n.disasm tag;
            (match List.rev n.source_addrs with
            | [] -> ()
            | addrs ->
              pf " secret@%s"
                (String.concat "," (List.map string_of_int addrs)));
            (match List.rev n.transmit_addrs with
            | [] -> ()
            | addrs ->
              pf " probe@%s"
                (String.concat "," (List.map string_of_int addrs)));
            (match List.rev n.incoming with
            | [] -> ()
            | inc ->
              let part (src, dep) =
                Printf.sprintf "%s:n%d" (dep_to_string dep) src
              in
              pf " <- %s" (String.concat " " (List.map part inc)));
            Buffer.add_char b '\n')
          chain)
      cs;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* CLI helpers                                                        *)

let parse_range ~what s =
  let fail () =
    Error
      (Printf.sprintf
         "%s: malformed range %S — expected two integers A:B with 0 <= A <= B \
          (e.g. 100:200)"
         what s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
    let a = String.sub s 0 i in
    let b = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some a, Some b when 0 <= a && a <= b -> Ok (a, b)
    | _ -> fail ())
