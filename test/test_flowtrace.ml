(* Leakage provenance: the taint-flow tracer.  Golden leak traces for
   the stock Spectre-v1 gadget (byte-for-byte, unsafe leaks / levioso
   doesn't), chain-content assertions against the gadget's known layout,
   the zero-effect guarantee (bit-identical architectural results and
   stats with the tracer on or off, over fuzzed programs and every
   registered policy), JSON well-formedness, the CLI range parser, and
   the monitor's isatty auto-suppression. *)

module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Flowtrace = Levioso_telemetry.Flowtrace
module Monitor = Levioso_telemetry.Monitor
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Summary = Levioso_uarch.Summary
module Sim_stats = Levioso_uarch.Sim_stats
module Registry = Levioso_core.Registry
module Gadget = Levioso_attack.Gadget
module Gen = Levioso_fuzz.Gen

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* --- the canonical victim --------------------------------------------- *)

let run_spectre policy =
  let g = Gadget.bounds_check_bypass ~secret:42 () in
  let graph = Flowtrace.create () in
  let pipe =
    Pipeline.create ~mem_init:g.Gadget.mem_init Config.default
      ~policy:(Registry.find_exn policy) g.Gadget.program
  in
  Pipeline.set_flow_tracer pipe
    ~secret_ranges:[ (Gadget.oob_secret_addr, Gadget.oob_secret_addr) ]
    (fun ~cycle ev -> Flowtrace.feed graph ~cycle ev);
  Pipeline.run pipe;
  graph

let test_spectre_unsafe_chain () =
  let graph = run_spectre "unsafe" in
  Alcotest.(check bool) "unsafe leaks" false (Flowtrace.is_empty graph);
  let chains = Flowtrace.chains graph in
  Alcotest.(check bool) "at least one chain" true (chains <> []);
  let text = Flowtrace.render graph in
  (* the chain names the planted secret's address and the probe line the
     secret value 42 selects (probe_base + 42 * line size) *)
  Alcotest.(check bool) "source at the planted secret" true
    (contains
       (Printf.sprintf "SOURCE secret@%d" Gadget.oob_secret_addr)
       text);
  Alcotest.(check bool) "transmit at the secret's probe line" true
    (contains
       (Printf.sprintf "TRANSMIT probe@%d" (Gadget.probe_line_addr 42))
       text);
  Alcotest.(check bool) "chain names the mispredicted branch" true
    (contains "MISPREDICT" text);
  Alcotest.(check bool) "wrong-path work was squashed" true
    (contains "squashed" text);
  (* connectivity: within a chain every node except the roots has an
     incoming edge from another chain member, and there is at least one
     edge of every dependence kind on the canonical gadget *)
  Alcotest.(check bool) "data edge present" true (contains " <- " text);
  Alcotest.(check bool) "speculation edge present" true
    (contains "speculation:n" text);
  Alcotest.(check bool) "address edge present" true (contains "address:n" text)

let test_spectre_levioso_empty () =
  let graph = run_spectre "levioso" in
  Alcotest.(check bool) "levioso does not leak" true
    (Flowtrace.is_empty graph);
  Alcotest.(check (list (list int))) "no chains" [] (Flowtrace.chains graph);
  let text = Flowtrace.render graph in
  Alcotest.(check bool) "renders the empty statement" true
    (contains "no leak chains" text);
  Alcotest.(check bool) "zero transmits in the stats line" true
    (contains "transmits=0" text)

(* --- golden leak traces ----------------------------------------------- *)

let check_golden policy file =
  let text = Flowtrace.render (run_spectre policy) in
  Alcotest.(check bool) "versioned header" true
    (contains
       (Printf.sprintf "levioso-flowtrace v1 schema_version=%d" Schema.version)
       text);
  let golden = read_file file in
  if not (String.equal text golden) then
    Alcotest.failf
      "rendered leak trace differs from %s (%d vs %d bytes); regenerate by \
       re-running with LEVIOSO_BLESS=1"
      file (String.length text) (String.length golden)

let bless_or_check policy file =
  if Sys.getenv_opt "LEVIOSO_BLESS" = Some "1" then begin
    let oc = open_out_bin file in
    output_string oc (Flowtrace.render (run_spectre policy));
    close_out oc
  end
  else check_golden policy file

let test_golden_unsafe () =
  bless_or_check "unsafe" "golden_leaktrace_unsafe.txt"

let test_golden_levioso () =
  bless_or_check "levioso" "golden_leaktrace_levioso.txt"

let test_render_deterministic () =
  (* two independent runs render byte-identically *)
  Alcotest.(check string) "independent runs agree"
    (Flowtrace.render (run_spectre "unsafe"))
    (Flowtrace.render (run_spectre "unsafe"))

(* --- zero-effect guarantee -------------------------------------------- *)

let run_fuzzed ?graph ~seed ~policy () =
  let program = Gen.random_program seed in
  let pipe =
    Pipeline.create
      ~mem_init:(Gen.mem_init seed)
      Gen.default_config
      ~policy:(Registry.find_exn policy)
      program
  in
  (match graph with
  | Some g ->
    Pipeline.set_flow_tracer pipe ~secret_ranges:[ (0, 200); (1000, 1100) ]
      (fun ~cycle ev -> Flowtrace.feed g ~cycle ev)
  | None -> ());
  Pipeline.run pipe;
  pipe

let test_tracer_is_side_channel () =
  List.iter
    (fun seed ->
      List.iter
        (fun policy ->
          let plain = run_fuzzed ~seed ~policy () in
          let g = Flowtrace.create () in
          let traced = run_fuzzed ~graph:g ~seed ~policy () in
          let ctx = Printf.sprintf "seed %d, %s" seed policy in
          Alcotest.(check string)
            (ctx ^ ": identical stats")
            (Json.to_string (Sim_stats.to_json (Pipeline.stats plain)))
            (Json.to_string (Sim_stats.to_json (Pipeline.stats traced)));
          Alcotest.(check string)
            (ctx ^ ": identical summaries")
            (Json.to_string
               (Summary.of_pipeline ~workload:"fuzzed" ~policy plain))
            (Json.to_string
               (Summary.of_pipeline ~workload:"fuzzed" ~policy traced));
          Alcotest.(check (array int))
            (ctx ^ ": identical registers")
            (Pipeline.regs plain) (Pipeline.regs traced);
          Alcotest.(check bool)
            (ctx ^ ": identical memory")
            true
            (Pipeline.mem plain = Pipeline.mem traced))
        Registry.names)
    [ 2; 9; 17 ]

let test_tracer_rejects_bad_ranges () =
  let g = Gadget.bounds_check_bypass ~secret:1 () in
  let pipe =
    Pipeline.create ~mem_init:g.Gadget.mem_init Config.default
      ~policy:(Registry.find_exn "unsafe") g.Gadget.program
  in
  List.iter
    (fun ranges ->
      match
        Pipeline.set_flow_tracer pipe ~secret_ranges:ranges
          (fun ~cycle:_ _ -> ())
      with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "inverted/negative range should be rejected")
    [ [ (5, 2) ]; [ (-1, 3) ] ]

(* --- JSON shapes ------------------------------------------------------- *)

let test_graph_json () =
  let graph = run_spectre "unsafe" in
  let j = Flowtrace.to_json graph in
  Alcotest.(check bool) "schema-tagged" true (Schema.check j = Ok ());
  let mem k =
    match Json.member k j with
    | Some (Json.List l) -> List.length l
    | _ -> -1
  in
  Alcotest.(check bool) "has nodes" true (mem "nodes" > 0);
  Alcotest.(check bool) "has edges" true (mem "edges" > 0);
  Alcotest.(check bool) "has chains" true (mem "chains" > 0);
  (* the serialized text roundtrips through the parser *)
  match Json.of_string (Json.to_string j) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "graph JSON does not reparse: %s" msg

let test_event_json () =
  let evs =
    [
      Flowtrace.Node
        { id = 0; seq = 3; pc = 7; kind = Flowtrace.Load; disasm = "load" };
      Flowtrace.Source { id = 0; addr = 42 };
      Flowtrace.Edge { src = 0; dst = 1; dep = Flowtrace.Address };
      Flowtrace.Transmit { id = 1; addr = 99 };
      Flowtrace.Resolved { id = 2; mispredicted = true };
      Flowtrace.Committed { id = 2 };
      Flowtrace.Squashed { id = 1 };
    ]
  in
  List.iter
    (fun ev ->
      let j = Flowtrace.event_to_json ~cycle:5 ev in
      (match Json.member "event" j with
      | Some (Json.String _) -> ()
      | _ -> Alcotest.fail "event records name their event kind");
      (match Json.member "cycle" j with
      | Some (Json.Int 5) -> ()
      | _ -> Alcotest.fail "event records carry the cycle");
      match Json.of_string (Json.to_string ~minify:true j) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "event JSON does not reparse: %s" msg)
    evs

(* --- CLI range parsing ------------------------------------------------- *)

let test_parse_range () =
  Alcotest.(check bool) "well-formed" true
    (Flowtrace.parse_range ~what:"--secret-range" "100:200" = Ok (100, 200));
  Alcotest.(check bool) "single point" true
    (Flowtrace.parse_range ~what:"--secret-range" "7:7" = Ok (7, 7));
  List.iter
    (fun s ->
      match Flowtrace.parse_range ~what:"--secret-range" s with
      | Ok _ -> Alcotest.failf "%S should be rejected" s
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error for %S names the flag" s)
          true
          (contains "--secret-range" msg);
        Alcotest.(check bool)
          (Printf.sprintf "error for %S quotes the value" s)
          true
          (contains (Printf.sprintf "%S" s) msg);
        Alcotest.(check bool)
          (Printf.sprintf "error for %S shows the expected form" s)
          true
          (contains "A:B" msg))
    [ "oops"; "1:2:3"; "9:4"; "-3:5"; "a:b"; ":" ]

(* --- monitor isatty auto-suppression ---------------------------------- *)

let monitor_output ~force =
  let path = Filename.temp_file "levioso_ansi" ".txt" in
  let oc = open_out path in
  let m =
    Monitor.create ~ansi:oc ~force_ansi:force ~min_interval:0.0 ~total:2
      ~label:"unit" ()
  in
  Monitor.start m "w/p";
  Monitor.item_done m ();
  Monitor.close m;
  close_out oc;
  let body = read_file path in
  Sys.remove path;
  body

let test_monitor_ansi_suppression () =
  (* a plain file is not a TTY: the status line must stay away *)
  Alcotest.(check string) "piped output stays clean" "" (monitor_output ~force:false);
  (* --progress overrides the detection *)
  let forced = monitor_output ~force:true in
  Alcotest.(check bool) "forced output renders the line" true
    (String.length forced > 0);
  Alcotest.(check bool) "forced output mentions progress" true
    (contains "1/2" forced)

let suite =
  ( "flowtrace",
    [
      Alcotest.test_case "spectre-v1 unsafe chain" `Quick
        test_spectre_unsafe_chain;
      Alcotest.test_case "spectre-v1 levioso empty" `Quick
        test_spectre_levioso_empty;
      Alcotest.test_case "golden leak trace (unsafe)" `Quick
        test_golden_unsafe;
      Alcotest.test_case "golden leak trace (levioso)" `Quick
        test_golden_levioso;
      Alcotest.test_case "render deterministic" `Quick
        test_render_deterministic;
      Alcotest.test_case "tracer is a side channel" `Slow
        test_tracer_is_side_channel;
      Alcotest.test_case "tracer rejects bad ranges" `Quick
        test_tracer_rejects_bad_ranges;
      Alcotest.test_case "graph JSON" `Quick test_graph_json;
      Alcotest.test_case "event JSON" `Quick test_event_json;
      Alcotest.test_case "parse range" `Quick test_parse_range;
      Alcotest.test_case "monitor ANSI suppression" `Quick
        test_monitor_ansi_suppression;
    ] )
