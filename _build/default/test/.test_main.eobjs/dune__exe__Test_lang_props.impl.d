test/test_lang_props.ml: Array Levioso_core Levioso_ir Levioso_lang Levioso_opt Levioso_uarch Levioso_util List Printf QCheck QCheck_alcotest String
