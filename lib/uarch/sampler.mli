(** Two-tier sampled simulation (SMARTS-style systematic sampling).

    The fast tier executes the program architecturally on
    {!Levioso_ir.Emulator.run_steps} while keeping the long-lived
    microarchitectural state — cache hierarchy and branch predictor —
    functionally warm through the emulator's observation hooks.  At the
    head of every sampling period the detailed tier takes over: a
    {!Pipeline} is created {e adopting} the shared memory, hierarchy and
    predictor in place, runs [warmup] instructions to fill the
    short-lived structures (ROB, LSQ, in-flight misses), then measures
    [interval] instructions in full cycle-level detail.  Total cycles are
    extrapolated from the instruction-weighted CPI of the measured
    intervals, with a 95%-confidence error bound from their dispersion.

    The architectural results are exact (the fast tier is the oracle
    emulator); only the cycle count is an estimate. *)

type spec = {
  interval : int;  (** instructions measured in detail per sample *)
  warmup : int;  (** detailed instructions discarded before measuring *)
  period : int;
      (** one interval in [period] is sampled; the rest fast-forward *)
}

val default_period : int
(** 10 — used when a spec string omits [:P]. *)

val parse : string -> (spec option, string) result
(** ["off"] → [Ok None]; ["N:W"] or ["N:W:P"] → [Ok (Some spec)];
    anything else → [Error message].  Requires [N > 0], [W >= 0],
    [P >= 1]. *)

val spec_to_string : spec -> string

type result = {
  estimated_cycles : int;  (** extrapolated total cycles *)
  error_pct : float;
      (** 95% confidence half-width of the per-interval CPI as a
          percentage of its mean; 0.0 with fewer than two intervals *)
  intervals : int;  (** measured intervals *)
  measured_instrs : int;
  detailed_instrs : int;  (** warmup + measured (+ commit-width overshoot) *)
  total_instrs : int;  (** instructions retired architecturally *)
  stats : Sim_stats.t;
      (** pooled detailed stats over the whole detailed portion (warmup
          included, matching [stall] span for span so the summary's
          stall-breakdown invariants hold); [stats.cycles] is the
          detailed cycle count, not the estimate *)
  stall : Levioso_telemetry.Stall.t;
      (** pooled per-PC stall attribution of the detailed intervals
          (warmup included) *)
  hierarchy : Cache.Hierarchy.h;
      (** the shared hierarchy, for access-counter reporting; counters
          cover warming accesses too *)
  spec : spec;
}

val warming_hooks :
  Config.t -> Cache.Hierarchy.h -> Predictor.t -> Levioso_ir.Emulator.hooks
(** The fast tier's functional-warming observation hooks: cache fills on
    loads (plus the next-line prefetcher mirror), write-allocate at
    stores, flushes, and committed-path predictor training.  Exposed so
    checkpoint users (and tests) can warm exactly the way the sampled
    engine does. *)

val run :
  ?registry:Levioso_telemetry.Registry.t ->
  ?mem_init:(int array -> unit) ->
  ?fuel:int ->
  spec ->
  Config.t ->
  policy:Pipeline.policy_maker ->
  Levioso_ir.Ir.program ->
  result
(** Run [program] to completion under sampling.  [mem_init] is applied
    once to the shared memory image (interval pipelines never re-run it).
    @raise Levioso_ir.Emulator.Out_of_fuel past [fuel] (default 1G)
    architectural instructions. *)

val to_json : result -> Levioso_telemetry.Json.t
(** The sampling block of a run summary: estimate, error bound, interval
    accounting and the spec — everything needed to judge the estimate. *)
