(** The IR optimizer (the compiler's middle end).

    Three classic passes run to a bounded fixpoint:

    - {b local copy propagation}: uses of registers holding a known copy
      ([add r, x, #0] moves) or constant are rewritten within each basic
      block — the codegen's mov-heavy output shrinks a lot;
    - {b dead-code elimination}: pure instructions (ALU, loads, rdcycle)
      whose results are never used are removed via backward liveness over
      the CFG.  [flush] counts as side-effecting (it is an explicit
      microarchitectural directive), stores and control flow always stay;
    - {b unreachable-code elimination}: instructions no path from the
      entry reaches are dropped.

    Instruction removal remaps all branch/jump targets; the result is
    re-validated, and on any internal inconsistency the original program
    is returned unchanged (optimization must never break a build).

    Caveat stated once, loudly: DCE changes the {e final register file}
    (dead writes disappear) and loads' cache footprints.  Architectural
    {e memory} is preserved exactly — which is what Lev programs can
    observe — and all differential tests compare memory. *)

val copy_propagation : Levioso_ir.Ir.program -> Levioso_ir.Ir.program
(** Substitution only; never changes program length. *)

val dead_code_elimination : Levioso_ir.Ir.program -> Levioso_ir.Ir.program

val remove_unreachable : Levioso_ir.Ir.program -> Levioso_ir.Ir.program

val optimize : Levioso_ir.Ir.program -> Levioso_ir.Ir.program
(** All passes, iterated until nothing changes (bounded). *)
