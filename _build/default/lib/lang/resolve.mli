(** Semantic checks for Lev programs, run before code generation:

    - a zero-parameter [main] function exists;
    - function names are unique and do not shadow the builtins
      ([load], [store], [flush], [rdcycle]);
    - every call names a defined function with the right arity;
    - the call graph is acyclic (calls are compiled by inlining, so
      recursion cannot be expressed on this ISA — there is no stack);
    - every variable is declared ([var] or parameter) before use and at
      most once per function;
    - [return] with a value never appears in [main] (its result would go
      nowhere; use [store]). *)

val check : Ast.program -> (unit, string list) result
(** All diagnostics, not just the first. *)
