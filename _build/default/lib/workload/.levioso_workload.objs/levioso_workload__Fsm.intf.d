lib/workload/fsm.mli: Workload
