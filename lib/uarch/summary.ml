module Json = Levioso_telemetry.Json
module Stall = Levioso_telemetry.Stall
module Audit = Levioso_telemetry.Audit
module Schema = Levioso_telemetry.Schema
module Hostprof = Levioso_telemetry.Hostprof

let of_pipeline ?workload ?policy ?host ?(top_k = 10) pipe =
  let label key v =
    match v with
    | Some s -> [ (key, Json.String s) ]
    | None -> []
  in
  let audit =
    match Pipeline.audit pipe with
    | None -> []
    | Some a -> [ ("audit", Audit.to_json ~top_k a) ]
  in
  let host =
    match host with
    | None -> []
    | Some phases -> [ ("host", Hostprof.phases_to_json phases) ]
  in
  Json.Obj
    (Schema.field :: label "workload" workload
    @ label "policy" policy
    @ [
        ("stats", Sim_stats.to_json (Pipeline.stats pipe));
        ( "cache",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Int v))
               (Cache.Hierarchy.stats (Pipeline.hierarchy pipe))) );
        ("stalls", Stall.to_json ~top_k (Pipeline.stall_attribution pipe));
      ]
    @ audit @ host)

let of_sampled ?workload ?policy ?host ?(top_k = 10) (r : Sampler.result) =
  let label key v =
    match v with
    | Some s -> [ (key, Json.String s) ]
    | None -> []
  in
  let host =
    match host with
    | None -> []
    | Some phases -> [ ("host", Hostprof.phases_to_json phases) ]
  in
  Json.Obj
    (Schema.field :: label "workload" workload
    @ label "policy" policy
    @ [
        ("stats", Sim_stats.to_json r.Sampler.stats);
        ( "cache",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Int v))
               (Cache.Hierarchy.stats r.Sampler.hierarchy)) );
        ("stalls", Stall.to_json ~top_k r.Sampler.stall);
        ("sampled", Sampler.to_json r);
      ]
    @ host)

let runs summaries = Schema.tag [ ("runs", Json.List summaries) ]

let matrix cells =
  runs
    (List.map
       (fun (workload, policy, pipe) -> of_pipeline ~workload ~policy pipe)
       cells)
