module Config = Levioso_uarch.Config
module Sim_stats = Levioso_uarch.Sim_stats

let test_default_valid () =
  Alcotest.(check (result unit string)) "default" (Ok ()) (Config.validate Config.default)

let reject what config =
  Alcotest.(check bool) (what ^ " rejected") true (Result.is_error (Config.validate config))

let test_validation_rejects () =
  reject "rob 1" { Config.default with Config.rob_size = 1 };
  reject "zero width" { Config.default with Config.fetch_width = 0 };
  reject "non-pow2 memory" { Config.default with Config.mem_words = 1000 };
  reject "non-pow2 sets"
    { Config.default with Config.l1 = { Config.default.Config.l1 with Config.sets = 3 } };
  reject "mismatched lines"
    { Config.default with
      Config.l2 = { Config.default.Config.l2 with Config.line_words = 16 } };
  reject "zero budget" { Config.default with Config.depset_budget = 0 };
  reject "zero mshrs" { Config.default with Config.mshrs = 0 }

let test_to_rows_covers_fields () =
  let rows = Config.to_rows Config.default in
  Alcotest.(check bool) "at least 10 rows" true (List.length rows >= 10);
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) (k ^ " non-empty") true (String.length v > 0))
    rows

let test_predictor_names () =
  Alcotest.(check string) "always" "always-taken"
    (Config.predictor_kind_to_string Config.Always_taken);
  Alcotest.(check string) "bimodal" "bimodal"
    (Config.predictor_kind_to_string Config.Bimodal);
  Alcotest.(check string) "gshare" "gshare"
    (Config.predictor_kind_to_string Config.Gshare)

let test_stats_derivations () =
  let s = Sim_stats.create () in
  Alcotest.(check (float 1e-9)) "ipc of empty" 0.0 (Sim_stats.ipc s);
  s.Sim_stats.cycles <- 100;
  s.Sim_stats.committed <- 250;
  Alcotest.(check (float 1e-9)) "ipc" 2.5 (Sim_stats.ipc s);
  s.Sim_stats.mispredicts <- 5;
  Alcotest.(check (float 1e-9)) "mpki" 20.0 (Sim_stats.mpki s)

let test_wrong_path_transmit_cap () =
  let s = Sim_stats.create () in
  for i = 1 to 60_000 do
    Sim_stats.record_wrong_path_transmit s ~branch_pc:i ~pc:i
  done;
  Alcotest.(check int) "capped" 50_000 (List.length s.Sim_stats.wrong_path_transmits);
  Alcotest.(check int) "dropped counted" 10_000 s.Sim_stats.wrong_path_transmits_dropped

let test_stats_rows () =
  let s = Sim_stats.create () in
  Alcotest.(check bool) "rows render" true (List.length (Sim_stats.to_rows s) >= 10)

let suite =
  ( "config",
    [
      Alcotest.test_case "default valid" `Quick test_default_valid;
      Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
      Alcotest.test_case "to_rows" `Quick test_to_rows_covers_fields;
      Alcotest.test_case "predictor names" `Quick test_predictor_names;
      Alcotest.test_case "stats derivations" `Quick test_stats_derivations;
      Alcotest.test_case "transmit record cap" `Quick test_wrong_path_transmit_cap;
      Alcotest.test_case "stats rows" `Quick test_stats_rows;
    ] )
