(** Lexer for the Lev language (the C-like frontend whose compiler hosts
    the Levioso annotation pass; see {!Compiler} for the grammar).

    Tokens carry source positions for error reporting.  Comments run from
    [//] to end of line. *)

type token =
  | Int of int
  | Ident of string
  | Kw_fn
  | Kw_var
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_return
  | Kw_halt
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Semi
  | Assign  (** [=] *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Shl
  | Shr
  | Eq  (** [==] *)
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And_and
  | Or_or
  | Bang
  | Eof

type located = {
  token : token;
  line : int;
  col : int;
}

val tokenize : string -> (located list, string) result
(** The result always ends with an [Eof] token.  Errors name the offending
    character and position. *)

val token_to_string : token -> string
