module Tsdb = Levioso_telemetry.Tsdb

(* ---------- rendering (shared idiom with Html_report) ---------- *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fp = Printf.sprintf

let css =
  "body{font-family:system-ui,sans-serif;margin:2em auto;max-width:70em;\
   color:#222}h1{font-size:1.5em}h2{font-size:1.2em;margin-top:2em;\
   border-bottom:1px solid #ddd;padding-bottom:.2em}table{border-collapse:\
   collapse;margin:1em 0}td,th{border:1px solid #ccc;padding:.25em .6em;\
   text-align:right}th{background:#f5f5f5}td:first-child,th:first-child\
   {text-align:left}svg.chart{margin:.5em 0}svg text.label{font-size:11px;\
   fill:#444}svg text.axis{font-size:10px;fill:#777}.legend{font-size:.85em}\
   .swatch{display:inline-block;width:.9em;height:.9em;margin:0 .3em 0 .9em;\
   vertical-align:-.1em}.firing{color:#e15759;font-weight:bold}\
   .resolved{color:#59a14f}p.nodata{color:#777;font-style:italic}"

(* chart geometry shared by every panel *)
let plot_w = 560
let plot_h = 96
let left = 54
let top = 10
let bottom = 20

let width = left + plot_w + 14
let height = top + plot_h + bottom

(* A time series: (seconds-since-first-sample, value) pairs. *)
let series samples ~t0 field =
  List.filter_map
    (fun (s : Tsdb.sample) ->
      Option.map
        (fun v -> (s.Tsdb.ts -. t0, v))
        (List.assoc_opt field s.Tsdb.fields))
    samples

let x_of ~span t =
  float_of_int left
  +. (float_of_int plot_w *. if span > 0. then t /. span else 0.5)

let y_of ~vmax v =
  float_of_int top
  +. (float_of_int plot_h *. (1. -. (if vmax > 0. then v /. vmax else 0.)))

let svg_open b =
  Buffer.add_string b
    (fp "<svg class=\"chart\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
       width height width height)

let axes b ~span ~vmax ~fmt =
  Buffer.add_string b
    (fp
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ccc\"/>\n"
       left (top + plot_h) (left + plot_w) (top + plot_h));
  Buffer.add_string b
    (fp "<text x=\"%d\" y=\"%d\" class=\"axis\" text-anchor=\"end\">%s</text>\n"
       (left - 6) (top + 8) (esc (fmt vmax)));
  Buffer.add_string b
    (fp "<text x=\"%d\" y=\"%d\" class=\"axis\" text-anchor=\"end\">0</text>\n"
       (left - 6) (top + plot_h));
  Buffer.add_string b
    (fp "<text x=\"%d\" y=\"%d\" class=\"axis\">t+0s</text>\n" left
       (top + plot_h + 14));
  Buffer.add_string b
    (fp
       "<text x=\"%d\" y=\"%d\" class=\"axis\" text-anchor=\"end\">t+%.1fs</text>\n"
       (left + plot_w)
       (top + plot_h + 14)
       span)

let polyline_points ~span ~vmax pts =
  String.concat " "
    (List.map
       (fun (t, v) -> fp "%.1f,%.1f" (x_of ~span t) (y_of ~vmax v))
       pts)

(* One filled area chart (gauge/rate panels). *)
let area_panel b ~title ~desc ~color ~fmt pts =
  Buffer.add_string b (fp "<h2>%s</h2>\n" (esc title));
  Buffer.add_string b (fp "<p>%s</p>\n" desc);
  match pts with
  | [] ->
    Buffer.add_string b
      "<p class=\"nodata\">No data for this metric in the recorded \
       window.</p>\n"
  | pts ->
    let span = List.fold_left (fun acc (t, _) -> Float.max acc t) 0. pts in
    let vmax =
      let m = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. pts in
      if m > 0. then m *. 1.05 else 1.
    in
    let last_t, last_v = List.nth pts (List.length pts - 1) in
    svg_open b;
    axes b ~span ~vmax ~fmt;
    let base = top + plot_h in
    let line = polyline_points ~span ~vmax pts in
    Buffer.add_string b
      (fp
         "<polygon points=\"%.1f,%d %s %.1f,%d\" fill=\"%s\" \
          fill-opacity=\"0.25\"/>\n"
         (x_of ~span (fst (List.hd pts)))
         base line (x_of ~span last_t) base color);
    Buffer.add_string b
      (fp
         "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
          stroke-width=\"1.5\"/>\n"
         line color);
    Buffer.add_string b
      (fp "<text x=\"%.1f\" y=\"%.1f\" class=\"label\">%s</text>\n"
         (Float.min (x_of ~span last_t +. 4.) (float_of_int (width - 40)))
         (Float.max (y_of ~vmax last_v -. 4.) 10.)
         (esc (fmt last_v)));
    Buffer.add_string b "</svg>\n"

(* Several lines on shared axes (the latency-percentile panel). *)
let lines_panel b ~title ~desc ~fmt named_series =
  Buffer.add_string b (fp "<h2>%s</h2>\n" (esc title));
  Buffer.add_string b (fp "<p>%s</p>\n" desc);
  let named_series = List.filter (fun (_, _, pts) -> pts <> []) named_series in
  if named_series = [] then
    Buffer.add_string b
      "<p class=\"nodata\">No data for this metric in the recorded \
       window.</p>\n"
  else begin
    let span =
      List.fold_left
        (fun acc (_, _, pts) ->
          List.fold_left (fun acc (t, _) -> Float.max acc t) acc pts)
        0. named_series
    in
    let vmax =
      let m =
        List.fold_left
          (fun acc (_, _, pts) ->
            List.fold_left (fun acc (_, v) -> Float.max acc v) acc pts)
          0. named_series
      in
      if m > 0. then m *. 1.05 else 1.
    in
    svg_open b;
    axes b ~span ~vmax ~fmt;
    List.iter
      (fun (_, color, pts) ->
        Buffer.add_string b
          (fp
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
              stroke-width=\"1.5\"/>\n"
             (polyline_points ~span ~vmax pts)
             color))
      named_series;
    Buffer.add_string b "</svg>\n";
    Buffer.add_string b "<p class=\"legend\">";
    List.iter
      (fun (name, color, _) ->
        Buffer.add_string b
          (fp "<span class=\"swatch\" style=\"background:%s\"></span>%s \n"
             color (esc name)))
      named_series;
    Buffer.add_string b "</p>\n"
  end

let fmt_count v =
  if Float.abs v >= 1000. then fp "%.3g" v else fp "%g" v

let fmt_ms v = fp "%.2f ms" v
let fmt_rate v = fp "%.2f/s" v
let fmt_share v = fp "%.1f%%" (100. *. v)
let fmt_mwords v = fp "%.2f Mw" v

let render ?(title = "Levioso serve dashboard") records =
  let samples =
    List.sort
      (fun (a : Tsdb.sample) b -> compare a.Tsdb.ts b.Tsdb.ts)
      (Tsdb.samples records)
  in
  let alerts =
    List.filter_map (function Tsdb.Alert a -> Some a | Tsdb.Sample _ -> None) records
  in
  match samples with
  | [] -> Error "dashboard: history contains no samples"
  | first :: _ ->
    let t0 = first.Tsdb.ts in
    let last = List.nth samples (List.length samples - 1) in
    let span = last.Tsdb.ts -. t0 in
    let series = series samples ~t0 in
    let scaled k = List.map (fun (t, v) -> (t, k *. v)) in
    let b = Buffer.create 16384 in
    Buffer.add_string b "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
    Buffer.add_string b (fp "<title>%s</title>\n" (esc title));
    Buffer.add_string b (fp "<style>%s</style>\n" css);
    Buffer.add_string b "</head><body>\n";
    Buffer.add_string b (fp "<h1>%s</h1>\n" (esc title));
    Buffer.add_string b
      (fp "<p>%d samples over %.1fs · %d alert transitions</p>\n"
         (List.length samples) span (List.length alerts));

    area_panel b ~title:"Queue depth" ~color:"#4e79a7" ~fmt:fmt_count
      ~desc:
        "Tasks waiting for a pool worker at each sample — sustained depth \
         means the pool is undersized for the offered load."
      (series "queue_depth");
    area_panel b ~title:"Requests per second" ~color:"#f28e2b" ~fmt:fmt_rate
      ~desc:
        "Request rate between consecutive samples (absent until the second \
         sample, and zero while idle)."
      (series "requests_per_s");
    area_panel b ~title:"Error rate" ~color:"#e15759" ~fmt:fmt_rate
      ~desc:
        "Failed cells and rejected frames per second between consecutive \
         samples."
      (series "errors_per_s");
    lines_panel b ~title:"End-to-end latency percentiles" ~fmt:fmt_ms
      ~desc:
        "Sliding-window percentiles of per-cell total latency (queue + \
         execute + serialize), in milliseconds."
      [
        ("p50", "#59a14f", scaled 1000. (series "total_p50_s"));
        ("p95", "#f28e2b", scaled 1000. (series "total_p95_s"));
        ("p99", "#e15759", scaled 1000. (series "total_p99_s"));
      ];
    area_panel b ~title:"Cache hit share" ~color:"#59a14f" ~fmt:fmt_share
      ~desc:
        "Share of served cells replayed from the shard store between \
         consecutive samples (of cells actually served in that window)."
      (series "cache_hit_share");
    area_panel b ~title:"GC heap" ~color:"#b07aa1" ~fmt:fmt_mwords
      ~desc:"Major heap size in millions of words."
      (scaled 1e-6 (series "gc_heap_words"));

    Buffer.add_string b "<h2>Alerts</h2>\n";
    if alerts = [] then
      Buffer.add_string b
        "<p class=\"nodata\">No alert transitions recorded.</p>\n"
    else begin
      Buffer.add_string b
        "<table><tr><th>rule</th><th>at</th><th>state</th></tr>\n";
      List.iter
        (fun (a : Tsdb.alert) ->
          Buffer.add_string b
            (fp
               "<tr><td>%s</td><td>t+%.1fs</td><td class=\"%s\">%s</td></tr>\n"
               (esc a.Tsdb.rule) (a.Tsdb.a_ts -. t0)
               (if a.Tsdb.firing then "firing" else "resolved")
               (if a.Tsdb.firing then "FIRING" else "resolved")))
        alerts;
      Buffer.add_string b "</table>\n"
    end;

    Buffer.add_string b "<h2>Latest sample</h2>\n";
    Buffer.add_string b
      (fp "<p>Every field of the newest sample (t+%.1fs).</p>\n"
         (last.Tsdb.ts -. t0));
    Buffer.add_string b "<table><tr><th>field</th><th>value</th></tr>\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string b
          (fp "<tr><td>%s</td><td>%g</td></tr>\n" (esc k) v))
      last.Tsdb.fields;
    Buffer.add_string b "</table>\n";

    Buffer.add_string b "</body></html>\n";
    Ok (Buffer.contents b)

let render_exn ?title records =
  match render ?title records with
  | Ok s -> s
  | Error msg -> invalid_arg msg
