lib/workload/pchase.ml: Array Fun Layout Levioso_ir Levioso_util Workload
