lib/lang/ast.ml: List Printf String
