module Domtree = Levioso_analysis.Domtree

(* Tiny adjacency-list harness for hand-built graphs. *)
let graph edges ~n =
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- succs.(a) @ [ b ];
      preds.(b) <- preds.(b) @ [ a ])
    edges;
  Domtree.compute ~num_nodes:n ~entry:0
    ~succs:(fun i -> succs.(i))
    ~preds:(fun i -> preds.(i))

let idom = Alcotest.(option int)

let test_diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let d = graph [ (0, 1); (0, 2); (1, 3); (2, 3) ] ~n:4 in
  Alcotest.check idom "idom 1" (Some 0) (Domtree.idom d 1);
  Alcotest.check idom "idom 2" (Some 0) (Domtree.idom d 2);
  Alcotest.check idom "idom 3 is the fork, not an arm" (Some 0) (Domtree.idom d 3);
  Alcotest.check idom "entry has none" None (Domtree.idom d 0)

let test_chain () =
  let d = graph [ (0, 1); (1, 2); (2, 3) ] ~n:4 in
  Alcotest.check idom "idom 3" (Some 2) (Domtree.idom d 3);
  Alcotest.(check bool) "0 dominates 3" true (Domtree.dominates d 0 3);
  Alcotest.(check bool) "3 does not dominate 0" false (Domtree.dominates d 3 0);
  Alcotest.(check bool) "reflexive" true (Domtree.dominates d 2 2)

let test_loop () =
  (* 0 -> 1 -> 2 -> 1, 1 -> 3 *)
  let d = graph [ (0, 1); (1, 2); (2, 1); (1, 3) ] ~n:4 in
  Alcotest.check idom "loop head dominated by entry" (Some 0) (Domtree.idom d 1);
  Alcotest.check idom "body dominated by head" (Some 1) (Domtree.idom d 2);
  Alcotest.check idom "exit dominated by head" (Some 1) (Domtree.idom d 3)

let test_unreachable () =
  let d = graph [ (0, 1); (2, 3) ] ~n:4 in
  Alcotest.(check bool) "2 unreachable" false (Domtree.reachable d 2);
  Alcotest.check idom "no idom" None (Domtree.idom d 2);
  Alcotest.(check bool) "1 reachable" true (Domtree.reachable d 1)

let test_irreducible () =
  (* 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1, 1 -> 3, 2 -> 3: classic irreducible
     region; both 1 and 2 have idom 0. *)
  let d = graph [ (0, 1); (0, 2); (1, 2); (2, 1); (1, 3); (2, 3) ] ~n:4 in
  Alcotest.check idom "idom 1" (Some 0) (Domtree.idom d 1);
  Alcotest.check idom "idom 2" (Some 0) (Domtree.idom d 2);
  Alcotest.check idom "idom 3" (Some 0) (Domtree.idom d 3)

let test_dominance_frontier () =
  (* Diamond: DF(1) = DF(2) = {3}; DF(0) = {} *)
  let d = graph [ (0, 1); (0, 2); (1, 3); (2, 3) ] ~n:4 in
  Alcotest.(check (list int)) "DF(1)" [ 3 ] (Domtree.dominance_frontier d 1);
  Alcotest.(check (list int)) "DF(2)" [ 3 ] (Domtree.dominance_frontier d 2);
  Alcotest.(check (list int)) "DF(0)" [] (Domtree.dominance_frontier d 0)

let test_self_loop_frontier () =
  (* 0 -> 1, 1 -> 1, 1 -> 2: DF(1) = {1} *)
  let d = graph [ (0, 1); (1, 1); (1, 2) ] ~n:3 in
  Alcotest.(check (list int)) "DF(1) contains itself" [ 1 ]
    (Domtree.dominance_frontier d 1)

let suite =
  ( "domtree",
    [
      Alcotest.test_case "diamond" `Quick test_diamond;
      Alcotest.test_case "chain" `Quick test_chain;
      Alcotest.test_case "loop" `Quick test_loop;
      Alcotest.test_case "unreachable" `Quick test_unreachable;
      Alcotest.test_case "irreducible" `Quick test_irreducible;
      Alcotest.test_case "dominance frontier" `Quick test_dominance_frontier;
      Alcotest.test_case "self-loop frontier" `Quick test_self_loop_frontier;
    ] )
