lib/opt/opt.ml: Array Fun Int Levioso_ir List Set
