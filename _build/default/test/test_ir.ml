module Ir = Levioso_ir.Ir

let check = Alcotest.check

let test_eval_cmp () =
  Alcotest.(check bool) "eq" true (Ir.eval_cmp Ir.Eq 3 3);
  Alcotest.(check bool) "ne" true (Ir.eval_cmp Ir.Ne 3 4);
  Alcotest.(check bool) "lt signed" true (Ir.eval_cmp Ir.Lt (-1) 0);
  Alcotest.(check bool) "le" true (Ir.eval_cmp Ir.Le 2 2);
  Alcotest.(check bool) "gt" false (Ir.eval_cmp Ir.Gt 2 2);
  Alcotest.(check bool) "ge" true (Ir.eval_cmp Ir.Ge 2 2)

let test_eval_alu () =
  check Alcotest.int "add" 7 (Ir.eval_alu Ir.Add 3 4);
  check Alcotest.int "sub" (-1) (Ir.eval_alu Ir.Sub 3 4);
  check Alcotest.int "mul" 12 (Ir.eval_alu Ir.Mul 3 4);
  check Alcotest.int "div" 3 (Ir.eval_alu Ir.Div 13 4);
  check Alcotest.int "div by zero" 0 (Ir.eval_alu Ir.Div 13 0);
  check Alcotest.int "rem" 1 (Ir.eval_alu Ir.Rem 13 4);
  check Alcotest.int "rem by zero" 0 (Ir.eval_alu Ir.Rem 13 0);
  check Alcotest.int "and" 4 (Ir.eval_alu Ir.And 12 6);
  check Alcotest.int "or" 14 (Ir.eval_alu Ir.Or 12 6);
  check Alcotest.int "xor" 10 (Ir.eval_alu Ir.Xor 12 6);
  check Alcotest.int "shl" 24 (Ir.eval_alu Ir.Shl 3 3);
  check Alcotest.int "shr arithmetic" (-2) (Ir.eval_alu Ir.Shr (-8) 2);
  check Alcotest.int "set true" 1 (Ir.eval_alu (Ir.Set Ir.Lt) 1 2);
  check Alcotest.int "set false" 0 (Ir.eval_alu (Ir.Set Ir.Lt) 2 1)

let test_defs_uses () =
  let load = Ir.Load { dst = 3; base = Ir.Reg 1; off = Ir.Imm 4 } in
  check Alcotest.(option int) "load defs" (Some 3) (Ir.defs load);
  check Alcotest.(list int) "load uses" [ 1 ] (Ir.uses load);
  let store = Ir.Store { base = Ir.Reg 1; off = Ir.Reg 2; src = Ir.Reg 3 } in
  check Alcotest.(option int) "store defs" None (Ir.defs store);
  check Alcotest.(list int) "store uses" [ 1; 2; 3 ] (Ir.uses store);
  let to_zero = Ir.Alu { op = Ir.Add; dst = 0; a = Ir.Reg 5; b = Ir.Imm 1 } in
  check Alcotest.(option int) "write to r0 has no def" None (Ir.defs to_zero);
  let rd = Ir.Rdcycle { dst = 2; after = Ir.Reg 7 } in
  check Alcotest.(list int) "rdcycle uses after" [ 7 ] (Ir.uses rd)

let test_classifiers () =
  let br = Ir.Branch { cmp = Ir.Eq; a = Ir.Reg 1; b = Ir.Imm 0; target = 0 } in
  Alcotest.(check bool) "branch is branch" true (Ir.is_branch br);
  Alcotest.(check bool) "branch is control" true (Ir.is_control br);
  Alcotest.(check bool) "jump not branch" false (Ir.is_branch (Ir.Jump { target = 0 }));
  Alcotest.(check bool) "jump is control" true (Ir.is_control (Ir.Jump { target = 0 }));
  Alcotest.(check bool) "halt is control" true (Ir.is_control Ir.Halt);
  check Alcotest.(option int) "branch target" (Some 0) (Ir.branch_target br);
  Alcotest.(check bool) "load is memory" true
    (Ir.is_memory_access (Ir.Load { dst = 1; base = Ir.Imm 0; off = Ir.Imm 0 }))

let test_validate_accepts () =
  let p =
    [|
      Ir.Alu { op = Ir.Add; dst = 1; a = Ir.Imm 1; b = Ir.Imm 2 };
      Ir.Branch { cmp = Ir.Eq; a = Ir.Reg 1; b = Ir.Imm 3; target = 0 };
      Ir.Halt;
    |]
  in
  check Alcotest.(result unit string) "valid" (Ok ()) (Ir.validate p)

let test_validate_rejects_bad_target () =
  let p =
    [| Ir.Branch { cmp = Ir.Eq; a = Ir.Imm 0; b = Ir.Imm 0; target = 99 }; Ir.Halt |]
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Ir.validate p))

let test_validate_rejects_fallthrough () =
  let p = [| Ir.Alu { op = Ir.Add; dst = 1; a = Ir.Imm 1; b = Ir.Imm 2 } |] in
  Alcotest.(check bool) "rejected" true (Result.is_error (Ir.validate p))

let test_validate_rejects_empty () =
  Alcotest.(check bool) "rejected" true (Result.is_error (Ir.validate [||]))

let test_roundtrip_strings () =
  let instrs =
    [
      Ir.Alu { op = Ir.Set Ir.Ge; dst = 2; a = Ir.Reg 1; b = Ir.Imm (-3) };
      Ir.Load { dst = 4; base = Ir.Reg 5; off = Ir.Imm 16 };
      Ir.Store { base = Ir.Reg 5; off = Ir.Imm 0; src = Ir.Reg 4 };
      Ir.Flush { base = Ir.Reg 6; off = Ir.Imm 8 };
      Ir.Rdcycle { dst = 7; after = Ir.Reg 4 };
      Ir.Halt;
    ]
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        ("prints: " ^ Ir.instr_to_string i)
        true
        (String.length (Ir.instr_to_string i) > 0))
    instrs

let suite =
  ( "ir",
    [
      Alcotest.test_case "eval cmp" `Quick test_eval_cmp;
      Alcotest.test_case "eval alu" `Quick test_eval_alu;
      Alcotest.test_case "defs and uses" `Quick test_defs_uses;
      Alcotest.test_case "classifiers" `Quick test_classifiers;
      Alcotest.test_case "validate accepts" `Quick test_validate_accepts;
      Alcotest.test_case "validate rejects bad target" `Quick test_validate_rejects_bad_target;
      Alcotest.test_case "validate rejects fallthrough" `Quick test_validate_rejects_fallthrough;
      Alcotest.test_case "validate rejects empty" `Quick test_validate_rejects_empty;
      Alcotest.test_case "instr printing" `Quick test_roundtrip_strings;
    ] )
