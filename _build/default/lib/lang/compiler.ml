let compile source =
  match Lparser.parse source with
  | Error msg -> Error msg
  | Ok ast -> Codegen.compile ast

let compile_exn source =
  match compile source with
  | Ok program -> program
  | Error msg -> failwith ("Compiler.compile_exn: " ^ msg)
