module Ir = Levioso_ir.Ir
module Stall = Levioso_telemetry.Stall
module Registry = Levioso_telemetry.Registry
module Audit = Levioso_telemetry.Audit
module Ring = Levioso_telemetry.Timeline.Ring
module Flowtrace = Levioso_telemetry.Flowtrace

type load_visibility =
  | Normal
  | Invisible

type policy = {
  policy_name : string;
  on_decode : seq:int -> unit;
  on_resolve : seq:int -> unit;
  on_squash : boundary:int -> unit;
  on_commit : seq:int -> unit;
  may_execute : seq:int -> bool;
  load_visibility : seq:int -> load_visibility;
  explain : seq:int -> Audit.reason;
}

let always_execute_policy =
  {
    policy_name = "always-execute";
    on_decode = (fun ~seq:_ -> ());
    on_resolve = (fun ~seq:_ -> ());
    on_squash = (fun ~boundary:_ -> ());
    on_commit = (fun ~seq:_ -> ());
    may_execute = (fun ~seq:_ -> true);
    load_visibility = (fun ~seq:_ -> Normal);
    explain = (fun ~seq:_ -> Audit.Unspecified);
  }

type event =
  | Fetched of { seq : int; pc : int }
  | Issued of { seq : int; pc : int }
  | Completed of { seq : int; pc : int }
  | Committed of { seq : int; pc : int }
  | Branch_resolved of { seq : int; pc : int; taken : bool; mispredicted : bool }
  | Squashed of { boundary : int; count : int }

let event_to_string = function
  | Fetched { seq; pc } -> Printf.sprintf "fetch   seq=%d pc=%d" seq pc
  | Issued { seq; pc } -> Printf.sprintf "issue   seq=%d pc=%d" seq pc
  | Completed { seq; pc } -> Printf.sprintf "done    seq=%d pc=%d" seq pc
  | Committed { seq; pc } -> Printf.sprintf "commit  seq=%d pc=%d" seq pc
  | Branch_resolved { seq; pc; taken; mispredicted } ->
    Printf.sprintf "resolve seq=%d pc=%d taken=%b mispredict=%b" seq pc taken
      mispredicted
  | Squashed { boundary; count } ->
    Printf.sprintf "squash  boundary=%d count=%d" boundary count

(* Operand sources are captured at rename: immediates and already-committed
   register values become literals; in-flight producers are referenced by
   sequence number. *)
type src =
  | Imm_val of int
  | From_seq of int

type state =
  | Waiting
  | Inflight of int  (* completion cycle *)
  | Done

(* One open restriction episode (audit enabled only): captured at the
   first policy refusal, closed — one audit event — when the entry
   issues or is squashed. *)
type gate = {
  g_reason : Audit.reason;
  g_necessary : bool;
  mutable g_cycles : int;
}

type entry = {
  seq : int;
  pc : int;
  instr : Ir.instr;
  srcs : src array;
  producers : int list;
  mutable st : state;
  mutable value : int;
  mutable addr : int;
  mutable addr_known : bool;
  mutable pred_taken : bool;
  mutable taken : bool;
  mutable resolved : bool;
  mutable started : bool;
  mutable is_miss : bool;  (* holds an MSHR while in flight *)
  mutable policy_stalled : bool;
  mutable gate : gate option;  (* open audit episode, audit enabled only *)
  (* flow tracing (enabled only): the entry's leak-graph node id (-1 =
     no node yet), the taint marker on the value it produces (-1 =
     clean, otherwise the node id of the tainting instruction), and the
     per-source taint markers captured at rename for operands that
     collapsed to literals (committed-register reads). *)
  mutable fi_id : int;
  mutable fi_v : int;
  fi_src : int array;
  (* branches carry recovery snapshots *)
  rename_snap : int option array;
  hist_snap : Predictor.snapshot;
}

(* Shadow taint state for the speculative information-flow tracer.
   Allocated only by [set_flow_tracer]; everything is Option-gated so a
   tracer-off run executes not one extra instruction on the hot path.
   Taint markers are leak-graph node ids: [fl_taint_regs]/[fl_taint_mem]
   shadow the architectural register file and memory (written only at
   commit, so squashes need no rollback), [fl_taint_buf] shadows
   [value_buf] (written at completion, same aliasing argument). *)
type flow = {
  fl_ranges : (int * int) list;  (* secret address ranges, inclusive *)
  fl_cb : cycle:int -> Flowtrace.event -> unit;
  fl_taint_regs : int array;
  fl_taint_mem : int array;
  fl_taint_buf : int array;
  mutable fl_next_id : int;
}

type t = {
  cfg : Config.t;
  program : Ir.program;
  regs : int array;
  memory : int array;
  hierarchy : Cache.Hierarchy.h;
  predictor : Predictor.t;
  slots : entry option array;
  value_buf : int array;
  rename : int option array;
  mutable head_seq : int;
  mutable tail_seq : int;
  mutable fetch_pc : int;
  mutable fetch_resume : int;  (* first cycle fetch may proceed *)
  mutable fetch_stopped : bool;
  mutable outstanding_misses : int;
  mutable cyc : int;
  mutable is_halted : bool;
  mutable policy : policy;
  stats : Sim_stats.t;
  stall : Stall.t;
  reg : Registry.t;
  (* Completion calendar: a power-of-two ring of buckets indexed by
     completion cycle.  Sized so the largest configured latency never
     wraps past an undrained bucket; each bucket keeps its seqs sorted
     ascending so completion order is deterministic without a per-cycle
     sort.  Replaces a (cycle -> seq list) Hashtbl whose
     find_opt/replace double lookup and per-cycle [List.sort compare]
     dominated the complete phase. *)
  completions : int list array;
  completions_mask : int;
  (* In-flight unresolved conditional branches, ascending by seq.
     Maintained at dispatch/resolve/squash so the policy-facing queries
     [exists_older_unresolved_branch] (O(1): compare against the head)
     and [older_unresolved_branches] (O(branches), not O(window)) no
     longer rescan the whole ROB per waiting instruction per cycle. *)
  mutable unresolved_branches : int list;
  mutable tracer : (cycle:int -> event -> unit) option;
  mutable stall_tracer :
    (cycle:int -> seq:int -> pc:int -> cause:Stall.cause -> unit) option;
  mutable flow : flow option;
  (* Always-on bounded window of recent events for deadlock diagnostics
     (and post-mortem inspection); cheap: one ring store per event. *)
  recent : (int * event) Ring.t;
  mutable head_stall_cause : Stall.cause option;
  audit : Audit.t option;
}

type policy_maker = Config.t -> Ir.program -> t -> policy

type deadlock = {
  dl_cycle : int;
  dl_last_commit_cycle : int;
  dl_policy : string;
  dl_head_seq : int;
  dl_head_pc : int;
  dl_head_cause : Stall.cause option;
  dl_recent_events : (int * event) list;
}

exception Deadlock of deadlock

let deadlock_to_string d =
  let cause =
    match d.dl_head_cause with
    | Some c -> Stall.cause_to_string c
    | None -> "unknown"
  in
  let events =
    match d.dl_recent_events with
    | [] -> "none"
    | evs ->
      String.concat "; "
        (List.map
           (fun (c, ev) -> Printf.sprintf "[%d] %s" c (event_to_string ev))
           evs)
  in
  Printf.sprintf
    "no commit since cycle %d (now %d): head seq %d pc %d stalled on %s \
     (policy %s); recent events: %s"
    d.dl_last_commit_cycle d.dl_cycle d.dl_head_seq d.dl_head_pc cause
    d.dl_policy events

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some ("Pipeline.Deadlock: " ^ deadlock_to_string d)
    | _ -> None)

let is_transmitter = function
  | Ir.Load _ | Ir.Flush _ -> true
  | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Rdcycle _ | Ir.Halt ->
    false

let recent_events_capacity = 32
let vb_size t = 2 * t.cfg.Config.rob_size

let slot_of t seq = seq mod t.cfg.Config.rob_size

let in_flight t seq = seq >= t.head_seq && seq < t.tail_seq

let entry_exn t seq =
  match t.slots.(slot_of t seq) with
  | Some e when e.seq = seq -> e
  | Some _ | None -> invalid_arg (Printf.sprintf "Pipeline: seq %d not in flight" seq)

let instr_of t seq = (entry_exn t seq).instr
let pc_of t seq = (entry_exn t seq).pc
let oldest_seq t = t.head_seq
let next_seq t = t.tail_seq

let is_unresolved_branch t seq =
  in_flight t seq
  &&
  let e = entry_exn t seq in
  Ir.is_branch e.instr && not e.resolved

let older_unresolved_branches t ~seq =
  let rec take = function
    | s :: rest when s < seq -> s :: take rest
    | _ :: _ | [] -> []
  in
  take t.unresolved_branches

let exists_older_unresolved_branch t ~seq =
  match t.unresolved_branches with
  | [] -> false
  | oldest :: _ -> oldest < seq

let producers_of t seq = (entry_exn t seq).producers

let regs t = t.regs
let mem t = t.memory
let cycle t = t.cyc
let stats t = t.stats
let stall_attribution t = t.stall
let audit t = t.audit
let registry t = t.reg
let hierarchy t = t.hierarchy
let config t = t.cfg
let halted t = t.is_halted

let set_tracer t f = t.tracer <- Some f
let set_stall_tracer t f = t.stall_tracer <- Some f

let set_flow_tracer t ~secret_ranges f =
  List.iter
    (fun (lo, hi) ->
      if lo < 0 || lo > hi then
        invalid_arg
          (Printf.sprintf "Pipeline.set_flow_tracer: bad secret range %d:%d" lo
             hi))
    secret_ranges;
  t.flow <-
    Some
      {
        fl_ranges = secret_ranges;
        fl_cb = f;
        fl_taint_regs = Array.make Ir.num_regs (-1);
        fl_taint_mem = Array.make (Array.length t.memory) (-1);
        fl_taint_buf = Array.make (2 * t.cfg.Config.rob_size) (-1);
        fl_next_id = 0;
      }
let recent_events t = Ring.to_list t.recent

let emit t event =
  Ring.push t.recent (t.cyc, event);
  match t.tracer with
  | Some f -> f ~cycle:t.cyc event
  | None -> ()

(* One waiting cycle attributed to [cause] for entry [e]: feeds the
   aggregate table, the head-of-window diagnostic (what the oldest
   instruction is blocked on right now), and the optional per-cycle
   stall tracer (timeline rendering). *)
let charge_entry t e cause =
  Stall.charge t.stall ~cause ~pc:e.pc;
  if e.seq = t.head_seq then t.head_stall_cause <- Some cause;
  match t.stall_tracer with
  | Some f -> f ~cycle:t.cyc ~seq:e.seq ~pc:e.pc ~cause
  | None -> ()

let mask_addr t addr = addr land (Array.length t.memory - 1)

let src_ready t = function
  | Imm_val _ -> true
  | From_seq s ->
    s < t.head_seq
    ||
    let e = entry_exn t s in
    e.st = Done

let src_value t = function
  | Imm_val v -> v
  | From_seq s ->
    if s < t.head_seq then t.value_buf.(s mod vb_size t)
    else (entry_exn t s).value

let operands_ready t e = Array.for_all (src_ready t) e.srcs

let load_address_if_ready t seq =
  let e = entry_exn t seq in
  match e.instr with
  | Ir.Load _ when src_ready t e.srcs.(0) && src_ready t e.srcs.(1) ->
    Some (mask_addr t (src_value t e.srcs.(0) + src_value t e.srcs.(1)))
  | Ir.Load _ | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
  | Ir.Rdcycle _ | Ir.Halt ->
    None

(* --- speculative information-flow tracing --------------------------- *)

let flow_kind = function
  | Ir.Branch _ -> Flowtrace.Branch
  | Ir.Load _ -> Flowtrace.Load
  | Ir.Store _ -> Flowtrace.Store
  | Ir.Flush _ -> Flowtrace.Flush
  | Ir.Alu _ -> Flowtrace.Alu
  | Ir.Jump _ | Ir.Rdcycle _ | Ir.Halt -> Flowtrace.Other

(* Lazy node creation: only instructions that carry or observe taint get
   a node, so the graph stays small on big clean workloads. *)
let flow_node t fl e =
  if e.fi_id < 0 then begin
    e.fi_id <- fl.fl_next_id;
    fl.fl_next_id <- fl.fl_next_id + 1;
    fl.fl_cb ~cycle:t.cyc
      (Flowtrace.Node
         {
           id = e.fi_id;
           seq = e.seq;
           pc = e.pc;
           kind = flow_kind e.instr;
           disasm = Ir.instr_to_string e.instr;
         })
  end;
  e.fi_id

(* Taint marker of source operand [i]: committed-register reads collapse
   to literals at rename, so their marker was captured into [fi_src]
   then; in-flight producers are consulted live, committed ones through
   the taint shadow of [value_buf]. *)
let src_taint t fl e i =
  match e.srcs.(i) with
  | Imm_val _ -> if Array.length e.fi_src = 0 then -1 else e.fi_src.(i)
  | From_seq s ->
    if s < t.head_seq then fl.fl_taint_buf.(s mod vb_size t)
    else (entry_exn t s).fi_v

(* Called once per successful issue (flow tracing on).  Classifies each
   operand as address- or data-carrying, decides whether the instruction
   births taint (a load reading a secret range from the hierarchy),
   transmits it (a tainted-address cache access), or merely propagates
   it, and emits the matching graph events. *)
let flow_on_issue t fl e ~forward ~touched_cache =
  let addr_idx, data_idx =
    match e.instr with
    | Ir.Alu _ | Ir.Branch _ -> ([], [ 0; 1 ])
    | Ir.Load _ | Ir.Flush _ -> ([ 0; 1 ], [])
    | Ir.Store _ -> ([ 0; 1 ], [ 2 ])
    | Ir.Rdcycle _ | Ir.Jump _ | Ir.Halt -> ([], [])
  in
  let tainted idx =
    List.filter_map
      (fun i ->
        let m = src_taint t fl e i in
        if m >= 0 then Some m else None)
      idx
  in
  let addr_taints = tainted addr_idx in
  let data_taints = tainted data_idx in
  let mem_taint =
    match (e.instr, forward) with
    | Ir.Load _, Some store -> store.fi_v
    | Ir.Load _, None -> fl.fl_taint_mem.(e.addr)
    | _, _ -> -1
  in
  let in_range a = List.exists (fun (lo, hi) -> a >= lo && a <= hi) fl.fl_ranges in
  let is_source =
    match e.instr with
    | Ir.Load _ -> forward = None && in_range e.addr
    | _ -> false
  in
  let is_transmit = touched_cache && addr_taints <> [] in
  let value_tainted =
    is_source || data_taints <> [] || mem_taint >= 0
    || (match e.instr with
       | Ir.Load _ -> addr_taints <> []
       | _ -> false)
  in
  if is_source || is_transmit || value_tainted || addr_taints <> [] then begin
    let id = flow_node t fl e in
    List.iter
      (fun m -> fl.fl_cb ~cycle:t.cyc (Flowtrace.Edge { src = m; dst = id; dep = Flowtrace.Address }))
      addr_taints;
    List.iter
      (fun m -> fl.fl_cb ~cycle:t.cyc (Flowtrace.Edge { src = m; dst = id; dep = Flowtrace.Data }))
      data_taints;
    if mem_taint >= 0 then
      fl.fl_cb ~cycle:t.cyc
        (Flowtrace.Edge { src = mem_taint; dst = id; dep = Flowtrace.Data });
    if is_source then
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Source { id; addr = e.addr });
    if is_source || is_transmit then
      (* Speculation edges tie the leak to the branches it raced: one per
         older unresolved branch, emitted only for sources and transmits
         to keep the graph lean. *)
      List.iter
        (fun s ->
          let be = entry_exn t s in
          let bid = flow_node t fl be in
          fl.fl_cb ~cycle:t.cyc
            (Flowtrace.Edge { src = bid; dst = id; dep = Flowtrace.Speculation }))
        (older_unresolved_branches t ~seq:e.seq);
    if is_transmit then
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Transmit { id; addr = e.addr });
    if value_tainted then e.fi_v <- id
  end

let flow_issue t e ~forward ~touched_cache =
  match t.flow with
  | None -> ()
  | Some fl -> flow_on_issue t fl e ~forward ~touched_cache

(* --- restriction audit ---------------------------------------------- *)

(* Open an episode at the first refusal: capture the policy's own
   explanation and classify necessity against the older unresolved
   branches standing at this moment — an instruction restricted while
   none of them is a true static branch dependency of its PC was
   restricted unnecessarily. *)
let audit_gate t a e seq =
  match e.gate with
  | Some g -> g.g_cycles <- g.g_cycles + 1
  | None ->
    let branch_pcs =
      List.map (fun s -> (entry_exn t s).pc) (older_unresolved_branches t ~seq)
    in
    e.gate <-
      Some
        {
          g_reason = t.policy.explain ~seq;
          g_necessary = Audit.necessary a ~pc:e.pc ~branch_pcs;
          g_cycles = 1;
        }

let audit_close t a e outcome =
  match e.gate with
  | None -> ()
  | Some g ->
    e.gate <- None;
    Audit.record a
      {
        Audit.seq = e.seq;
        pc = e.pc;
        policy = t.policy.policy_name;
        reason = g.g_reason;
        necessary = g.g_necessary;
        cycles = g.g_cycles;
        end_cycle = t.cyc;
        outcome;
      }

(* --- dispatch ------------------------------------------------------- *)

let rename_operand t = function
  | Ir.Imm i -> Imm_val i
  | Ir.Reg r when r = Ir.zero_reg -> Imm_val 0
  | Ir.Reg r -> (
    match t.rename.(r) with
    | None -> Imm_val t.regs.(r)
    | Some s when s < t.head_seq ->
      (* A rename-snapshot restore can resurrect a mapping to an
         already-committed producer; its value is in the register file. *)
      Imm_val t.regs.(r)
    | Some s -> From_seq s)

let source_operands instr =
  match instr with
  | Ir.Alu { a; b; _ } | Ir.Branch { a; b; _ } -> [| a; b |]
  | Ir.Load { base; off; _ } | Ir.Flush { base; off } -> [| base; off |]
  | Ir.Store { base; off; src } -> [| base; off; src |]
  | Ir.Rdcycle { after; _ } -> [| after |]
  | Ir.Jump _ | Ir.Halt -> [||]

let empty_snapshot = [||]
let no_taints = [||]

let dispatch_one t =
  let pc = t.fetch_pc in
  let instr = t.program.(pc) in
  let seq = t.tail_seq in
  let ops = source_operands instr in
  let srcs = Array.map (rename_operand t) ops in
  (* Rename collapses committed-register reads to literals, which would
     lose their taint — capture the markers now, while the register
     identity is still known. *)
  let fi_src =
    match t.flow with
    | None -> no_taints
    | Some fl ->
      Array.init (Array.length ops) (fun i ->
          match (ops.(i), srcs.(i)) with
          | Ir.Reg r, Imm_val _ when r <> Ir.zero_reg -> fl.fl_taint_regs.(r)
          | _, _ -> -1)
  in
  let producers =
    Array.to_list srcs
    |> List.filter_map (function
         | From_seq s -> Some s
         | Imm_val _ -> None)
  in
  let is_br = Ir.is_branch instr in
  let rename_snap = if is_br then Array.copy t.rename else empty_snapshot in
  let hist_snap = Predictor.snapshot t.predictor in
  let e =
    {
      seq;
      pc;
      instr;
      srcs;
      producers;
      st = Waiting;
      value = 0;
      addr = 0;
      addr_known = false;
      pred_taken = false;
      taken = false;
      resolved = false;
      started = false;
      is_miss = false;
      policy_stalled = false;
      gate = None;
      fi_id = -1;
      fi_v = -1;
      fi_src;
      rename_snap;
      hist_snap;
    }
  in
  t.slots.(slot_of t seq) <- Some e;
  t.tail_seq <- seq + 1;
  (* [seq] exceeds every in-flight seq, so appending keeps the list
     ascending; squash trims it back before any seq is reused. *)
  if is_br then t.unresolved_branches <- t.unresolved_branches @ [ seq ];
  t.stats.Sim_stats.fetched <- t.stats.Sim_stats.fetched + 1;
  emit t (Fetched { seq; pc });
  (* Rename the destination after capturing sources. *)
  (match Ir.defs instr with
  | Some r -> t.rename.(r) <- Some seq
  | None -> ());
  (* Steer fetch. *)
  (match instr with
  | Ir.Branch { target; _ } ->
    let dir = Predictor.predict t.predictor ~pc in
    e.pred_taken <- dir;
    t.fetch_pc <- (if dir then target else pc + 1)
  | Ir.Jump { target } ->
    e.st <- Done;
    t.fetch_pc <- target
  | Ir.Halt ->
    e.st <- Done;
    t.fetch_stopped <- true
  | Ir.Alu _ | Ir.Load _ | Ir.Store _ | Ir.Flush _ | Ir.Rdcycle _ ->
    t.fetch_pc <- pc + 1);
  t.policy.on_decode ~seq

let fetch t =
  let budget = ref t.cfg.Config.fetch_width in
  while
    !budget > 0
    && (not t.fetch_stopped)
    && t.cyc >= t.fetch_resume
    && t.tail_seq - t.head_seq < t.cfg.Config.rob_size
  do
    dispatch_one t;
    decr budget
  done;
  (* Attribution: fetch wanted to dispatch but the window is full — one
     Rob_full charge per blocked cycle, against the stalled fetch PC. *)
  if
    !budget > 0
    && (not t.fetch_stopped)
    && t.cyc >= t.fetch_resume
    && t.tail_seq - t.head_seq >= t.cfg.Config.rob_size
    && t.fetch_pc < Array.length t.program
  then Stall.charge t.stall ~cause:Stall.Rob_full ~pc:t.fetch_pc

(* --- squash --------------------------------------------------------- *)

let squash t ~boundary =
  let branch = entry_exn t boundary in
  emit t (Squashed { boundary; count = t.tail_seq - boundary - 1 });
  for seq = t.tail_seq - 1 downto boundary + 1 do
    let e = entry_exn t seq in
    (match t.audit with
    | Some a -> audit_close t a e Audit.Squashed
    | None -> ());
    t.stats.Sim_stats.squashed <- t.stats.Sim_stats.squashed + 1;
    if e.is_miss then begin
      e.is_miss <- false;
      t.outstanding_misses <- t.outstanding_misses - 1
    end;
    if e.started then begin
      (match e.instr with
      | Ir.Load _ ->
        t.stats.Sim_stats.wrong_path_executed_loads <-
          t.stats.Sim_stats.wrong_path_executed_loads + 1
      | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
      | Ir.Rdcycle _ | Ir.Halt ->
        ());
      if is_transmitter e.instr then
        Sim_stats.record_wrong_path_transmit t.stats ~branch_pc:branch.pc ~pc:e.pc
    end;
    (match t.flow with
    | Some fl when e.fi_id >= 0 ->
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Squashed { id = e.fi_id })
    | Some _ | None -> ());
    t.slots.(slot_of t seq) <- None
  done;
  t.tail_seq <- boundary + 1;
  t.unresolved_branches <-
    List.filter (fun s -> s <= boundary) t.unresolved_branches;
  (* Restore the rename table from the branch's snapshot, dropping mappings
     whose producers have committed meanwhile (their values are in the
     register file). *)
  Array.iteri
    (fun r snap ->
      t.rename.(r) <-
        (match snap with
        | Some s when s < t.head_seq -> None
        | other -> other))
    branch.rename_snap;
  t.policy.on_squash ~boundary

(* --- completion ----------------------------------------------------- *)

(* Ascending insert: buckets hold at most a few seqs (one issue group's
   worth), so this beats sorting the whole bucket when it drains. *)
let rec insert_sorted (seq : int) = function
  | [] -> [ seq ]
  | x :: _ as l when seq <= x -> seq :: l
  | x :: rest -> x :: insert_sorted seq rest

let schedule_completion t seq done_cycle =
  let b = done_cycle land t.completions_mask in
  t.completions.(b) <- insert_sorted seq t.completions.(b)

let resolve_branch t e =
  e.resolved <- true;
  t.unresolved_branches <-
    List.filter (fun s -> s <> e.seq) t.unresolved_branches;
  emit t
    (Branch_resolved
       {
         seq = e.seq;
         pc = e.pc;
         taken = e.taken;
         mispredicted = e.taken <> e.pred_taken;
       });
  t.policy.on_resolve ~seq:e.seq;
  (match t.flow with
  | Some fl when e.fi_id >= 0 ->
    fl.fl_cb ~cycle:t.cyc
      (Flowtrace.Resolved { id = e.fi_id; mispredicted = e.taken <> e.pred_taken })
  | Some _ | None -> ());
  if e.taken <> e.pred_taken then begin
    t.stats.Sim_stats.mispredicts <- t.stats.Sim_stats.mispredicts + 1;
    squash t ~boundary:e.seq;
    Predictor.restore t.predictor e.hist_snap;
    Predictor.force_history t.predictor ~taken:e.taken;
    (match e.instr with
    | Ir.Branch { target; _ } ->
      t.fetch_pc <- (if e.taken then target else e.pc + 1)
    | Ir.Alu _ | Ir.Load _ | Ir.Store _ | Ir.Jump _ | Ir.Flush _ | Ir.Rdcycle _
    | Ir.Halt ->
      assert false);
    t.fetch_stopped <- false;
    t.fetch_resume <- t.cyc + t.cfg.Config.redirect_penalty
  end

let complete t =
  let b = t.cyc land t.completions_mask in
  match t.completions.(b) with
  | [] -> ()
  | seqs ->
    t.completions.(b) <- [];
    (* Buckets are kept sorted ascending at insertion, so the oldest
       mispredicted branch squashes the younger ones before they act. *)
    List.iter
      (fun seq ->
        if in_flight t seq then
          let e = entry_exn t seq in
          match e.st with
          | Inflight c when c = t.cyc ->
            e.st <- Done;
            if e.is_miss then begin
              e.is_miss <- false;
              t.outstanding_misses <- t.outstanding_misses - 1
            end;
            t.value_buf.(seq mod vb_size t) <- e.value;
            (match t.flow with
            | Some fl -> fl.fl_taint_buf.(seq mod vb_size t) <- e.fi_v
            | None -> ());
            emit t (Completed { seq; pc = e.pc });
            if Ir.is_branch e.instr then resolve_branch t e
          | Inflight _ | Waiting | Done -> ())
      seqs

(* --- issue ---------------------------------------------------------- *)

let latency_of_alu t op =
  match op with
  | Ir.Mul -> t.cfg.Config.mul_latency
  | Ir.Div | Ir.Rem -> t.cfg.Config.div_latency
  | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Set _ ->
    t.cfg.Config.alu_latency

(* Conservative memory disambiguation: a load may issue only when every
   older in-flight store has a known address (i.e. has issued). *)
let older_stores_state t load_seq load_addr =
  let rec scan seq youngest_match =
    if seq >= load_seq then `Ready youngest_match
    else
      let e = entry_exn t seq in
      match e.instr with
      | Ir.Store _ ->
        if not e.addr_known then `Blocked
        else if e.addr = load_addr then scan (seq + 1) (Some e)
        else scan (seq + 1) youngest_match
      | Ir.Alu _ | Ir.Load _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
      | Ir.Rdcycle _ | Ir.Halt ->
        scan (seq + 1) youngest_match
  in
  scan t.head_seq None

let start t e done_cycle =
  e.started <- true;
  e.st <- Inflight done_cycle;
  emit t (Issued { seq = e.seq; pc = e.pc });
  schedule_completion t e.seq done_cycle

let try_issue t e =
  let v i = src_value t e.srcs.(i) in
  match e.instr with
  | Ir.Alu { op; _ } ->
    e.value <- Ir.eval_alu op (v 0) (v 1);
    start t e (t.cyc + latency_of_alu t op);
    flow_issue t e ~forward:None ~touched_cache:false;
    true
  | Ir.Branch { cmp; _ } ->
    e.taken <- Ir.eval_cmp cmp (v 0) (v 1);
    start t e (t.cyc + t.cfg.Config.branch_exec_latency);
    flow_issue t e ~forward:None ~touched_cache:false;
    true
  | Ir.Store _ ->
    e.addr <- mask_addr t (v 0 + v 1);
    e.addr_known <- true;
    e.value <- v 2;
    start t e (t.cyc + 1);
    flow_issue t e ~forward:None ~touched_cache:false;
    true
  | Ir.Flush _ ->
    e.addr <- mask_addr t (v 0 + v 1);
    e.addr_known <- true;
    Cache.Hierarchy.flush t.hierarchy e.addr;
    start t e (t.cyc + 1);
    flow_issue t e ~forward:None ~touched_cache:true;
    true
  | Ir.Rdcycle _ ->
    e.value <- t.cyc;
    start t e (t.cyc + 1);
    true
  | Ir.Load _ -> (
    let addr = mask_addr t (v 0 + v 1) in
    match older_stores_state t e.seq addr with
    | `Blocked -> false
    | `Ready (Some store) ->
      e.addr <- addr;
      e.addr_known <- true;
      e.value <- store.value;
      start t e (t.cyc + t.cfg.Config.forward_latency);
      (* a store-to-load forward never touches the cache hierarchy *)
      flow_issue t e ~forward:(Some store) ~touched_cache:false;
      true
    | `Ready None ->
      (* an L1 miss needs an MSHR; when all are busy the load waits *)
      let misses_l1 =
        Cache.Hierarchy.probe t.hierarchy addr <> Cache.Hierarchy.L1
      in
      if misses_l1 && t.outstanding_misses >= t.cfg.Config.mshrs then false
      else begin
        e.addr <- addr;
        e.addr_known <- true;
        if misses_l1 then begin
          e.is_miss <- true;
          t.outstanding_misses <- t.outstanding_misses + 1
        end;
        let vis = t.policy.load_visibility ~seq:e.seq in
        let lat =
          match vis with
          | Normal ->
            let lat, level = Cache.Hierarchy.load t.hierarchy addr in
            if t.cfg.Config.next_line_prefetch && level <> Cache.Hierarchy.L1
            then
              Cache.Hierarchy.prefetch t.hierarchy
                (mask_addr t (addr + t.cfg.Config.l1.Config.line_words));
            lat
          | Invisible -> Cache.Hierarchy.load_latency t.hierarchy addr
        in
        e.value <- t.memory.(addr);
        start t e (t.cyc + lat);
        (* an invisible (delayed-visibility) load leaves no cache trace *)
        flow_issue t e ~forward:None ~touched_cache:(vis = Normal);
        true
      end)
  | Ir.Jump _ | Ir.Halt -> false

(* Would this ready load be refused by memory ordering right now?  Pure:
   mirrors the [try_issue] load path without touching cache or MSHR
   state, so attribution can classify entries past the issue budget. *)
let load_order_blocked t e =
  match e.instr with
  | Ir.Load _ ->
    let addr = mask_addr t (src_value t e.srcs.(0) + src_value t e.srcs.(1)) in
    (match older_stores_state t e.seq addr with
    | `Blocked -> true
    | `Ready (Some _) -> false
    | `Ready None ->
      Cache.Hierarchy.probe t.hierarchy addr <> Cache.Hierarchy.L1
      && t.outstanding_misses >= t.cfg.Config.mshrs)
  | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _ | Ir.Rdcycle _
  | Ir.Halt ->
    false

let issue t =
  let budget = ref t.cfg.Config.issue_width in
  let seq = ref t.head_seq in
  (* The whole window is scanned every cycle so that each waiting
     instruction is charged to exactly one stall cause.  Issue decisions
     (and the legacy policy-stall counters) are confined to [!budget > 0],
     preserving the original semantics where the scan stopped once the
     issue width was spent: the policy is never consulted for entries
     beyond the budget. *)
  while !seq < t.tail_seq do
    let e = entry_exn t !seq in
    (match e.st with
    | Waiting ->
      if not (operands_ready t e) then
        charge_entry t e Stall.Operand_wait
      else if !budget > 0 then begin
        if t.policy.may_execute ~seq:!seq then begin
          if try_issue t e then begin
            decr budget;
            match t.audit with
            | Some a -> audit_close t a e Audit.Issued
            | None -> ()
          end
          else charge_entry t e Stall.Lsq_order
        end
        else begin
          e.policy_stalled <- true;
          t.stats.Sim_stats.policy_stall_cycles <-
            t.stats.Sim_stats.policy_stall_cycles + 1;
          if is_transmitter e.instr then
            t.stats.Sim_stats.transmit_stall_cycles <-
              t.stats.Sim_stats.transmit_stall_cycles + 1;
          charge_entry t e Stall.Policy_gate;
          match t.audit with
          | Some a -> audit_gate t a e !seq
          | None -> ()
        end
      end
      else if load_order_blocked t e then
        charge_entry t e Stall.Lsq_order
      else charge_entry t e Stall.Exec_port
    | Inflight _ | Done -> ());
    incr seq
  done

(* --- commit --------------------------------------------------------- *)

let commit_one t e =
  let s = t.stats in
  s.Sim_stats.committed <- s.Sim_stats.committed + 1;
  if e.policy_stalled then begin
    s.Sim_stats.restricted_committed <- s.Sim_stats.restricted_committed + 1;
    if is_transmitter e.instr then
      s.Sim_stats.restricted_transmitters <- s.Sim_stats.restricted_transmitters + 1
  end;
  if is_transmitter e.instr then
    s.Sim_stats.committed_transmitters <- s.Sim_stats.committed_transmitters + 1;
  (match e.instr with
  | Ir.Load _ -> s.Sim_stats.committed_loads <- s.Sim_stats.committed_loads + 1
  | Ir.Store _ ->
    s.Sim_stats.committed_stores <- s.Sim_stats.committed_stores + 1;
    t.memory.(e.addr) <- e.value;
    Cache.Hierarchy.store_commit t.hierarchy e.addr
  | Ir.Branch _ ->
    s.Sim_stats.committed_branches <- s.Sim_stats.committed_branches + 1;
    Predictor.update t.predictor ~pc:e.pc ~history:e.hist_snap ~taken:e.taken
  | Ir.Halt -> t.is_halted <- true
  | Ir.Alu _ | Ir.Jump _ | Ir.Flush _ | Ir.Rdcycle _ -> ());
  (match Ir.defs e.instr with
  | Some r ->
    t.regs.(r) <- e.value;
    (match t.rename.(r) with
    | Some s when s = e.seq -> t.rename.(r) <- None
    | Some _ | None -> ())
  | None -> ());
  (match t.flow with
  | Some fl ->
    (* Shadow architectural state follows the real one: taint (or clear)
       exactly what this commit wrote. *)
    (match e.instr with
    | Ir.Store _ -> fl.fl_taint_mem.(e.addr) <- e.fi_v
    | Ir.Alu _ | Ir.Load _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      ());
    (match Ir.defs e.instr with
    | Some r -> fl.fl_taint_regs.(r) <- e.fi_v
    | None -> ());
    if e.fi_id >= 0 then
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Committed { id = e.fi_id })
  | None -> ());
  t.policy.on_commit ~seq:e.seq;
  emit t (Committed { seq = e.seq; pc = e.pc });
  t.slots.(slot_of t e.seq) <- None;
  t.head_seq <- e.seq + 1;
  t.head_stall_cause <- None

let commit t =
  let budget = ref t.cfg.Config.commit_width in
  let continue_ = ref true in
  while !budget > 0 && !continue_ && t.head_seq < t.tail_seq && not t.is_halted do
    let e = entry_exn t t.head_seq in
    if e.st = Done then begin
      commit_one t e;
      decr budget
    end
    else continue_ := false
  done

(* --- top level ------------------------------------------------------ *)

let step t =
  if not t.is_halted then begin
    commit t;
    if not t.is_halted then begin
      complete t;
      issue t;
      fetch t;
      let occ = t.tail_seq - t.head_seq in
      if occ > t.stats.Sim_stats.max_rob_occupancy then
        t.stats.Sim_stats.max_rob_occupancy <- occ
    end;
    t.cyc <- t.cyc + 1;
    t.stats.Sim_stats.cycles <- t.cyc
  end

let run ?(max_cycles = 100_000_000) ?(deadlock_window = 100_000) t =
  let last_committed = ref t.stats.Sim_stats.committed in
  let last_progress_cycle = ref t.cyc in
  while not t.is_halted do
    if t.cyc > max_cycles then failwith "Pipeline.run: max_cycles exceeded";
    step t;
    if t.stats.Sim_stats.committed <> !last_committed then begin
      last_committed := t.stats.Sim_stats.committed;
      last_progress_cycle := t.cyc
    end
    else if t.cyc - !last_progress_cycle > deadlock_window then
      raise
        (Deadlock
           {
             dl_cycle = t.cyc;
             dl_last_commit_cycle = !last_progress_cycle;
             dl_policy = t.policy.policy_name;
             dl_head_seq = t.head_seq;
             dl_head_pc = (try (entry_exn t t.head_seq).pc with _ -> -1);
             dl_head_cause = t.head_stall_cause;
             dl_recent_events = Ring.to_list t.recent;
           })
  done

(* Smallest power of two strictly greater than the largest latency any
   instruction can be scheduled with (all latencies come from the config,
   which [validate] requires to be positive), so a bucket is always
   drained before the wheel can wrap back onto it. *)
let completion_wheel_size cfg =
  let open Config in
  let worst =
    List.fold_left max 1
      [
        cfg.alu_latency;
        cfg.mul_latency;
        cfg.div_latency;
        cfg.branch_exec_latency;
        cfg.forward_latency;
        cfg.l1.hit_latency;
        cfg.l2.hit_latency;
        cfg.memory_latency;
      ]
  in
  let rec pow2 n = if n > worst then n else pow2 (2 * n) in
  pow2 1

let create ?(mem_init = fun _ -> ()) ?registry ?audit cfg ~policy program =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pipeline.create: bad config: " ^ msg));
  (match Ir.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pipeline.create: bad program: " ^ msg));
  let reg =
    match registry with
    | Some r -> r
    | None -> Registry.create ()
  in
  let t =
    {
      cfg;
      program;
      regs = Array.make Ir.num_regs 0;
      memory = Array.make cfg.Config.mem_words 0;
      hierarchy = Cache.Hierarchy.create ~registry:reg cfg;
      predictor = Predictor.create cfg;
      slots = Array.make cfg.Config.rob_size None;
      value_buf = Array.make (2 * cfg.Config.rob_size) 0;
      rename = Array.make Ir.num_regs None;
      head_seq = 0;
      tail_seq = 0;
      fetch_pc = 0;
      fetch_resume = 0;
      fetch_stopped = false;
      outstanding_misses = 0;
      cyc = 0;
      is_halted = false;
      policy = always_execute_policy;
      stats = Sim_stats.create ();
      stall = Stall.create ~num_pcs:(Array.length program);
      reg;
      completions = Array.make (completion_wheel_size cfg) [];
      completions_mask = completion_wheel_size cfg - 1;
      unresolved_branches = [];
      tracer = None;
      stall_tracer = None;
      flow = None;
      recent = Ring.create recent_events_capacity;
      head_stall_cause = None;
      audit;
    }
  in
  mem_init t.memory;
  t.policy <- policy cfg program t;
  t
