module Ir = Levioso_ir.Ir
module Parser = Levioso_ir.Parser
module Annotation = Levioso_core.Annotation

let analyze src = Annotation.analyze (Parser.parse_exn src)

let test_hint_on_branch_only () =
  let a =
    analyze {|
      mov r1, #1          ; pc 0
      beq r1, #0, skip    ; pc 1
      mov r2, #2          ; pc 2
    skip:
      halt                ; pc 3
    |}
  in
  Alcotest.(check bool) "non-branch has no hint" true (Annotation.hint_for a 0 = None);
  (match Annotation.hint_for a 1 with
  | Some (Annotation.Reconverges_at pc) -> Alcotest.(check int) "reconv" 3 pc
  | Some Annotation.No_reconvergence | None -> Alcotest.fail "expected hint");
  Alcotest.(check bool) "body has no hint" true (Annotation.hint_for a 2 = None)

let test_no_reconvergence_hint () =
  let a = analyze {|
      beq r1, #0, a
      halt
    a:
      halt
    |} in
  match Annotation.hint_for a 0 with
  | Some Annotation.No_reconvergence -> ()
  | Some (Annotation.Reconverges_at _) | None ->
    Alcotest.fail "expected No_reconvergence"

let test_coverage () =
  let full = analyze {|
      beq r1, #0, skip
      mov r2, #1
    skip:
      halt
    |} in
  Alcotest.(check (float 1e-9)) "full" 1.0 (Annotation.coverage full);
  let half =
    analyze
      {|
        beq r1, #0, skip    ; reconverges at skip
        mov r2, #1
      skip:
        beq r1, #1, a       ; arms never meet
        halt
      a:
        halt
      |}
  in
  Alcotest.(check (float 1e-9)) "half" 0.5 (Annotation.coverage half)

let test_disassemble_contains_hints () =
  let a = analyze {|
      beq r1, #0, skip
      mov r2, #1
    skip:
      halt
    |} in
  let text = Annotation.disassemble a in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec scan i = i + nl <= hl && (String.sub text i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "shows reconv" true (contains "reconv @2")

let test_stats_keys_present () =
  let a = analyze {|
      beq r1, #0, skip
      mov r2, #1
    skip:
      halt
    |} in
  let stats = Annotation.stats a in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("has " ^ key) true (List.mem_assoc key stats))
    [
      "static instrs";
      "branches";
      "reconv coverage";
      "mean region";
      "dep-free instrs";
      "mean dep set";
      "max dep set";
    ]

let test_loop_hint_is_exit () =
  let a =
    analyze
      {|
        mov r1, #0        ; pc 0
      head:
        bge r1, #5, out   ; pc 1
        add r1, r1, #1    ; pc 2
        jump head         ; pc 3
      out:
        halt              ; pc 4
      |}
  in
  match Annotation.hint_for a 1 with
  | Some (Annotation.Reconverges_at pc) -> Alcotest.(check int) "loop exit" 4 pc
  | Some Annotation.No_reconvergence | None -> Alcotest.fail "expected exit hint"

let suite =
  ( "annotation",
    [
      Alcotest.test_case "hint on branch only" `Quick test_hint_on_branch_only;
      Alcotest.test_case "no reconvergence" `Quick test_no_reconvergence_hint;
      Alcotest.test_case "coverage" `Quick test_coverage;
      Alcotest.test_case "disassemble shows hints" `Quick test_disassemble_contains_hints;
      Alcotest.test_case "stats keys" `Quick test_stats_keys_present;
      Alcotest.test_case "loop hint" `Quick test_loop_hint_is_exit;
    ] )
