(** streaming sweep with value-dependent counting branch — one kernel of the suite standing in for SPEC CPU2017; see the
    implementation header for the behavioural axes it stresses. *)

val workload : Workload.t
