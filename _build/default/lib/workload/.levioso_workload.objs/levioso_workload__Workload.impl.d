lib/workload/workload.ml: Levioso_ir
