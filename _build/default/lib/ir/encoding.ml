(* One 64-bit word per instruction.  Layout (bit 0 = LSB):

   common header
     bits  0..5   opcode
     bits  6..10  dst register
     bits 11..15  src-a register      (a-imm flag clear)
     bit  16      a is immediate      (payload-a holds the value)
     bits 17..21  src-b register      (b-imm flag clear)
     bit  22      b is immediate      (payload-b holds the value)
     bits 23..27  src-c register      (c-imm flag clear; stores only)
     bit  28      c is immediate      (payload-b holds the value)

   non-branch payload (signed 35-bit, bits 29..63): one immediate operand
   per instruction, like a classic RISC I-format.  Zero immediates are
   canonicalized to register 0 (which reads as zero), so address forms
   such as [#4096 + #0] still encode.

   branches (compare register to register-or-16-bit-immediate; the dst
   field is repurposed as the immediate flag since branches define nothing)
     bit   6      b is immediate
     bits 11..15  src-a register (must be a register; constant-vs-constant
                  comparisons are unencodable, register-vs-constant with
                  the constant on the left is mirrored at encode time)
     bits 16..31  b payload (signed 16-bit) or register in bits 17..21
     bits 32..47  target pc (unsigned 16-bit)
     bits 48..63  reconvergence hint pc + 1 (0 = no hint)

   Consequences, reported as errors rather than silently mis-encoded:
   at most one (non-zero) immediate operand per non-branch instruction;
   immediates and targets must fit their fields. *)

type error = {
  pc : int;
  reason : string;
}

let ( let* ) = Result.bind

let opcode_of_instr = function
  | Ir.Alu { op; _ } -> (
    match op with
    | Ir.Add -> 0
    | Ir.Sub -> 1
    | Ir.Mul -> 2
    | Ir.Div -> 3
    | Ir.Rem -> 4
    | Ir.And -> 5
    | Ir.Or -> 6
    | Ir.Xor -> 7
    | Ir.Shl -> 8
    | Ir.Shr -> 9
    | Ir.Set Ir.Eq -> 10
    | Ir.Set Ir.Ne -> 11
    | Ir.Set Ir.Lt -> 12
    | Ir.Set Ir.Le -> 13
    | Ir.Set Ir.Gt -> 14
    | Ir.Set Ir.Ge -> 15)
  | Ir.Load _ -> 16
  | Ir.Store _ -> 17
  | Ir.Flush _ -> 18
  | Ir.Rdcycle _ -> 19
  | Ir.Jump _ -> 20
  | Ir.Halt -> 21
  | Ir.Branch { cmp = Ir.Eq; _ } -> 22
  | Ir.Branch { cmp = Ir.Ne; _ } -> 23
  | Ir.Branch { cmp = Ir.Lt; _ } -> 24
  | Ir.Branch { cmp = Ir.Le; _ } -> 25
  | Ir.Branch { cmp = Ir.Gt; _ } -> 26
  | Ir.Branch { cmp = Ir.Ge; _ } -> 27

let alu_of_opcode = function
  | 0 -> Some Ir.Add
  | 1 -> Some Ir.Sub
  | 2 -> Some Ir.Mul
  | 3 -> Some Ir.Div
  | 4 -> Some Ir.Rem
  | 5 -> Some Ir.And
  | 6 -> Some Ir.Or
  | 7 -> Some Ir.Xor
  | 8 -> Some Ir.Shl
  | 9 -> Some Ir.Shr
  | 10 -> Some (Ir.Set Ir.Eq)
  | 11 -> Some (Ir.Set Ir.Ne)
  | 12 -> Some (Ir.Set Ir.Lt)
  | 13 -> Some (Ir.Set Ir.Le)
  | 14 -> Some (Ir.Set Ir.Gt)
  | 15 -> Some (Ir.Set Ir.Ge)
  | _ -> None

let branch_cmp_of_opcode = function
  | 22 -> Some Ir.Eq
  | 23 -> Some Ir.Ne
  | 24 -> Some Ir.Lt
  | 25 -> Some Ir.Le
  | 26 -> Some Ir.Gt
  | 27 -> Some Ir.Ge
  | _ -> None

(* mirror a comparison so its operands can swap *)
let mirror = function
  | Ir.Eq -> Ir.Eq
  | Ir.Ne -> Ir.Ne
  | Ir.Lt -> Ir.Gt
  | Ir.Le -> Ir.Ge
  | Ir.Gt -> Ir.Lt
  | Ir.Ge -> Ir.Le

let fits_signed bits v = v >= -(1 lsl (bits - 1)) && v < 1 lsl (bits - 1)
let mask_bits bits v = v land ((1 lsl bits) - 1)
let sign_extend bits v =
  let m = 1 lsl (bits - 1) in
  (v land ((1 lsl bits) - 1) lxor m) - m

let field word ~lo ~bits = Int64.to_int (Int64.shift_right_logical word lo) land ((1 lsl bits) - 1)
let put acc ~lo v = Int64.logor acc (Int64.shift_left (Int64.of_int v) lo)

(* Assign the up-to-three operands of a non-branch instruction to register
   fields and the single 32-bit payload.  Zero immediates become reads of
   the hard-wired zero register. *)
let encode_plain ~opcode ~dst operands =
  let word = ref (put 0L ~lo:0 opcode) in
  word := put !word ~lo:6 dst;
  let payloads = ref [] in
  let* () =
    List.fold_left
      (fun acc (slot, operand) ->
        let* () = acc in
        let reg_lo, flag_lo =
          match slot with
          | `A -> (11, 16)
          | `B -> (17, 22)
          | `C -> (23, 28)
        in
        match operand with
        | Ir.Imm 0 | Ir.Reg 0 ->
          word := put !word ~lo:reg_lo 0;
          Ok ()
        | Ir.Reg r ->
          word := put !word ~lo:reg_lo r;
          Ok ()
        | Ir.Imm v ->
          if not (fits_signed 35 v) then Error "immediate exceeds 35 bits"
          else begin
            word := put !word ~lo:flag_lo 1;
            payloads := v :: !payloads;
            Ok ()
          end)
      (Ok ()) operands
  in
  match !payloads with
  | [] -> Ok !word
  | [ a ] -> Ok (put !word ~lo:29 (mask_bits 35 a))
  | _ :: _ :: _ -> Error "more than one immediate operand"

let encode_instr ?hint instr =
  match instr with
  | Ir.Alu { dst; a; b; _ } ->
    if hint <> None then Error "hint on a non-branch"
    else encode_plain ~opcode:(opcode_of_instr instr) ~dst [ (`A, a); (`B, b) ]
  | Ir.Load { dst; base; off } ->
    if hint <> None then Error "hint on a non-branch"
    else encode_plain ~opcode:16 ~dst [ (`A, base); (`B, off) ]
  | Ir.Store { base; off; src } ->
    if hint <> None then Error "hint on a non-branch"
    else encode_plain ~opcode:17 ~dst:0 [ (`A, base); (`B, off); (`C, src) ]
  | Ir.Flush { base; off } ->
    if hint <> None then Error "hint on a non-branch"
    else encode_plain ~opcode:18 ~dst:0 [ (`A, base); (`B, off) ]
  | Ir.Rdcycle { dst; after } ->
    if hint <> None then Error "hint on a non-branch"
    else encode_plain ~opcode:19 ~dst [ (`A, after) ]
  | Ir.Jump { target } ->
    if hint <> None then Error "hint on a non-branch"
    else if target < 0 || target >= 1 lsl 16 then Error "target exceeds 16 bits"
    else Ok (put (put 0L ~lo:0 20) ~lo:32 target)
  | Ir.Halt ->
    if hint <> None then Error "hint on a non-branch" else Ok (put 0L ~lo:0 21)
  | Ir.Branch { cmp; a; b; target } -> (
    let* cmp, a, b =
      match (a, b) with
      | Ir.Reg _, _ -> Ok (cmp, a, b)
      | Ir.Imm _, Ir.Reg _ -> Ok (mirror cmp, b, a)
      | Ir.Imm _, Ir.Imm _ -> Error "constant-vs-constant branch"
    in
    let* () =
      if target < 0 || target >= 1 lsl 16 then Error "target exceeds 16 bits"
      else Ok ()
    in
    let* hint_field =
      match hint with
      | None -> Ok 0
      | Some h ->
        if h < 0 || h + 1 >= 1 lsl 16 then Error "hint exceeds 16 bits"
        else Ok (h + 1)
    in
    let word = put 0L ~lo:0 (opcode_of_instr (Ir.Branch { cmp; a; b; target })) in
    let word =
      match a with
      | Ir.Reg r -> put word ~lo:11 r
      | Ir.Imm _ -> assert false
    in
    let* word =
      match b with
      | Ir.Reg r -> Ok (put word ~lo:17 r)
      | Ir.Imm v ->
        if not (fits_signed 16 v) then Error "branch immediate exceeds 16 bits"
        else Ok (put (put word ~lo:6 1) ~lo:16 (mask_bits 16 v))
    in
    Ok (put (put word ~lo:32 target) ~lo:48 hint_field))

let decode_operands word slots =
  List.map
    (fun slot ->
      let reg_lo, flag_lo =
        match slot with
        | `A -> (11, 16)
        | `B -> (17, 22)
        | `C -> (23, 28)
      in
      if field word ~lo:flag_lo ~bits:1 = 1 then
        Ir.Imm (sign_extend 35 (field word ~lo:29 ~bits:35))
      else Ir.Reg (field word ~lo:reg_lo ~bits:5))
    slots

let decode_instr word =
  let opcode = field word ~lo:0 ~bits:6 in
  let dst = field word ~lo:6 ~bits:5 in
  match alu_of_opcode opcode with
  | Some op -> (
    match decode_operands word [ `A; `B ] with
    | [ a; b ] -> Ok (Ir.Alu { op; dst; a; b }, None)
    | _ -> Error "internal: operand arity")
  | None -> (
    match (opcode, branch_cmp_of_opcode opcode) with
    | 16, _ -> (
      match decode_operands word [ `A; `B ] with
      | [ base; off ] -> Ok (Ir.Load { dst; base; off }, None)
      | _ -> Error "internal: operand arity")
    | 17, _ -> (
      match decode_operands word [ `A; `B; `C ] with
      | [ base; off; src ] -> Ok (Ir.Store { base; off; src }, None)
      | _ -> Error "internal: operand arity")
    | 18, _ -> (
      match decode_operands word [ `A; `B ] with
      | [ base; off ] -> Ok (Ir.Flush { base; off }, None)
      | _ -> Error "internal: operand arity")
    | 19, _ -> (
      match decode_operands word [ `A ] with
      | [ after ] -> Ok (Ir.Rdcycle { dst; after }, None)
      | _ -> Error "internal: operand arity")
    | 20, _ -> Ok (Ir.Jump { target = field word ~lo:32 ~bits:16 }, None)
    | 21, _ -> Ok (Ir.Halt, None)
    | _, Some cmp ->
      let a = Ir.Reg (field word ~lo:11 ~bits:5) in
      let b =
        if field word ~lo:6 ~bits:1 = 1 then
          Ir.Imm (sign_extend 16 (field word ~lo:16 ~bits:16))
        else Ir.Reg (field word ~lo:17 ~bits:5)
      in
      let target = field word ~lo:32 ~bits:16 in
      let hint_field = field word ~lo:48 ~bits:16 in
      let hint = if hint_field = 0 then None else Some (hint_field - 1) in
      Ok (Ir.Branch { cmp; a; b; target }, hint)
    | _, None -> Error (Printf.sprintf "unknown opcode %d" opcode))

let encode ?(hints = fun _ -> None) program =
  let words = Array.make (Array.length program) 0L in
  let err = ref None in
  Array.iteri
    (fun pc instr ->
      if !err = None then
        let hint = if Ir.is_branch instr then hints pc else None in
        match encode_instr ?hint instr with
        | Ok w -> words.(pc) <- w
        | Error reason -> err := Some { pc; reason })
    program;
  match !err with
  | Some e -> Error e
  | None -> Ok words

let decode words =
  let hints = ref [] in
  let program = Array.make (Array.length words) Ir.Halt in
  let err = ref None in
  Array.iteri
    (fun pc word ->
      if !err = None then
        match decode_instr word with
        | Ok (instr, hint) ->
          program.(pc) <- instr;
          (match hint with
          | Some h -> hints := (pc, h) :: !hints
          | None -> ())
        | Error reason -> err := Some (Printf.sprintf "pc %d: %s" pc reason))
    words;
  match !err with
  | Some msg -> Error msg
  | None -> Ok (program, List.rev !hints)

let code_size_bytes program = 8 * Array.length program
