(* Substring scan (perlbench flavour): outer sweep with an inner
   match loop that exits on the first mismatch — dense, data-dependent,
   poorly predictable branches with loads under them. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let text_len = 6000
let pattern_len = 4
let text_base = Layout.data_base
let pattern_base = Layout.data_base + 65536

let mem_init mem =
  let rng = Layout.rng 5 in
  (* small alphabet so near-matches (and hence inner-loop work) are common *)
  for i = 0 to text_len - 1 do
    mem.(text_base + i) <- Rng.int rng 4
  done;
  for j = 0 to pattern_len - 1 do
    mem.(pattern_base + j) <- Rng.int rng 4
  done

let build b =
  (* inner loop exits directly on the first mismatching character, so each
     character load is control-dependent on the previous compare branch —
     a true dependence chain under near-matches *)
  let i = Builder.fresh_reg b in
  let j = Builder.fresh_reg b in
  let tc = Builder.fresh_reg b in
  let pc_ = Builder.fresh_reg b in
  let addr = Builder.fresh_reg b in
  let matches = Builder.fresh_reg b in
  Builder.mov b matches (Ir.Imm 0);
  Builder.for_down b ~counter:i
    ~from:(Ir.Imm (text_len - pattern_len))
    (fun () ->
      Builder.mov b j (Ir.Imm 0);
      let break = Builder.fresh_label b in
      Builder.while_ b
        ~cond:(fun () -> (Ir.Lt, Ir.Reg j, Ir.Imm pattern_len))
        (fun () ->
          Builder.add b addr (Ir.Reg i) (Ir.Reg j);
          Builder.load b tc (Ir.Reg addr) (Ir.Imm text_base);
          Builder.load b pc_ (Ir.Reg j) (Ir.Imm pattern_base);
          Builder.branch b Ir.Ne (Ir.Reg tc) (Ir.Reg pc_) break;
          Builder.add b j (Ir.Reg j) (Ir.Imm 1));
      Builder.if_then b
        ~cond:(Ir.Ge, Ir.Reg j, Ir.Imm pattern_len)
        (fun () -> Builder.add b matches (Ir.Reg matches) (Ir.Imm 1));
      Builder.place b break);
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg matches);
  Builder.halt b

let workload =
  Workload.make ~name:"strsearch"
    ~description:"substring scan with early-exit inner loop (text processing)"
    ~build ~mem_init
