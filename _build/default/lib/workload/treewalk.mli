(** random binary-tree descents with key-compare branches — one kernel of the suite standing in for SPEC CPU2017; see the
    implementation header for the behavioural axes it stresses. *)

val workload : Workload.t
