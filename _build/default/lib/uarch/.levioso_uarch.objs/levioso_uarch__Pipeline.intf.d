lib/uarch/pipeline.mli: Cache Config Levioso_ir Sim_stats
