(* The fuzzing subsystem: generators, oracles, shrinker, corpus and the
   campaign driver.  The round-trip properties run the real oracles over
   hundreds of generated programs; the corpus tests round-trip .levir
   persistence through a temp directory; and the campaign test checks the
   parallel driver is bit-identical to the serial one. *)

module Ir = Levioso_ir.Ir
module Parser = Levioso_ir.Parser
module Emulator = Levioso_ir.Emulator
module Json = Levioso_telemetry.Json
module Gen = Levioso_fuzz.Gen
module Gen_lev = Levioso_fuzz.Gen_lev
module Observe = Levioso_fuzz.Observe
module Oracle = Levioso_fuzz.Oracle
module Shrink = Levioso_fuzz.Shrink
module Corpus = Levioso_fuzz.Corpus
module Campaign = Levioso_fuzz.Campaign

let config = Gen.default_config

let run_oracle (oracle : Oracle.t) seed =
  (oracle.Oracle.run ~config ~seed).Oracle.verdict

let check_oracle_over name oracle seeds () =
  List.iter
    (fun seed ->
      match run_oracle oracle seed with
      | Oracle.Pass -> ()
      | Oracle.Fail f ->
        Alcotest.failf "%s failed on seed %d: %s" name seed f.Oracle.detail)
    seeds

let seeds n = List.init n (fun i -> Campaign.iter_seed 42 i)

(* --- oracles over generated populations ------------------------------ *)

let test_roundtrip_text = check_oracle_over "roundtrip-text" Oracle.roundtrip_text (seeds 200)
let test_roundtrip_binary =
  check_oracle_over "roundtrip-binary" Oracle.roundtrip_binary (seeds 200)
let test_arch_diff = check_oracle_over "arch-diff" Oracle.arch_diff (seeds 15)
let test_lang_diff = check_oracle_over "lang-diff" Oracle.lang_diff (seeds 40)

let test_noninterference () =
  List.iter
    (fun seed ->
      let outcome = Oracle.noninterference.Oracle.run ~config ~seed in
      (match outcome.Oracle.verdict with
      | Oracle.Pass -> ()
      | Oracle.Fail f ->
        Alcotest.failf "noninterference failed on seed %d: %s" seed
          f.Oracle.detail);
      (* power: the same secret pair must be distinguishable when nothing
         defends — otherwise the pass above is vacuous *)
      match List.assoc_opt "ni_unsafe_divergence" outcome.Oracle.extras with
      | Some 1 -> ()
      | _ ->
        Alcotest.failf "seed %d: unsafe baseline did not diverge" seed)
    (seeds 10)

(* --- generator contracts --------------------------------------------- *)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        "same seed, same program" true
        (Gen.random_program seed = Gen.random_program seed);
      Alcotest.(check bool)
        "same seed, same source" true
        (Gen_lev.random_source seed = Gen_lev.random_source seed))
    (seeds 20)

let test_generated_programs_validate () =
  List.iter
    (fun seed ->
      match Ir.validate (Gen.random_program seed) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %d: invalid program: %s" seed msg)
    (seeds 100)

let test_ni_case_secret_slots () =
  List.iter
    (fun seed ->
      let case = Gen.ni_case seed in
      let a, b = Gen.ni_secret_pair seed case in
      Alcotest.(check int)
        "one secret per gadget" case.Gen.num_secrets
        (Array.length case.Gen.secret_addrs);
      Array.iteri
        (fun i _ ->
          if a.(i) = b.(i) then
            Alcotest.failf "seed %d: secret slot %d identical in both runs"
              seed i)
        a)
    (seeds 20)

(* --- shrinker --------------------------------------------------------- *)

let test_shrink_to_witness () =
  (* predicate: program still contains a store — the shrinker should cut
     a random program down to almost nothing else *)
  let has_store p =
    Array.exists (function Ir.Store _ -> true | _ -> false) p
  in
  let p0 = Gen.random_program 7 in
  if not (has_store p0) then Alcotest.fail "seed 7 lost its store";
  let shrunk = Shrink.run ~keep:has_store p0 in
  Alcotest.(check bool) "witness survives" true (has_store shrunk);
  Alcotest.(check bool) "program got smaller" true
    (Array.length shrunk < Array.length p0);
  Alcotest.(check bool)
    "result is minimal-ish (a store and a halt)" true
    (Array.length shrunk <= 3);
  match Ir.validate shrunk with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "shrunk program invalid: %s" msg

let test_shrink_remaps_targets () =
  (* a branch jumping over a removable block must keep its (remapped)
     target: validate would reject any out-of-range pc *)
  let keep p = Array.exists (function Ir.Branch _ -> true | _ -> false) p in
  let p0 = Gen.random_program 11 in
  let shrunk = Shrink.run ~keep p0 in
  (match Ir.validate shrunk with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "remapped program invalid: %s" msg);
  Alcotest.(check bool) "branch survives" true (keep shrunk)

let test_shrink_keeps_failing_input_on_false_predicate () =
  let p0 = Gen.random_program 3 in
  let shrunk = Shrink.run ~keep:(fun _ -> false) p0 in
  Alcotest.(check bool) "unshrinkable input returned unchanged" true
    (shrunk == p0)

(* --- corpus ----------------------------------------------------------- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let with_temp_dir f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "levioso_fuzz_test" in
  let rec cleanup d =
    if Sys.file_exists d then begin
      if Sys.is_directory d then begin
        Array.iter (fun f -> cleanup (Filename.concat d f)) (Sys.readdir d);
        Sys.rmdir d
      end
      else Sys.remove d
    end
  in
  cleanup dir;
  Fun.protect ~finally:(fun () -> cleanup dir) (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir (fun dir ->
      let entry =
        {
          Corpus.oracle = "roundtrip-text";
          seed = 123;
          verdict = "pass";
          detail = "regression anchor";
          source = Some "fn main() {\n  store(1, 2);\n}";
          leak = Some "levioso-flowtrace v1\nchain 0 (2 nodes)\n  n0 pc=1";
          program = Gen.random_program 123;
        }
      in
      let path = Corpus.save ~dir entry in
      Alcotest.(check (list string)) "listed" [ path ] (Corpus.files dir);
      match Corpus.load path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded ->
        Alcotest.(check string) "oracle" entry.Corpus.oracle loaded.Corpus.oracle;
        Alcotest.(check int) "seed" entry.Corpus.seed loaded.Corpus.seed;
        Alcotest.(check string) "verdict" entry.Corpus.verdict
          loaded.Corpus.verdict;
        Alcotest.(check string) "detail" entry.Corpus.detail
          loaded.Corpus.detail;
        Alcotest.(check bool) "source survives" true
          (entry.Corpus.source = loaded.Corpus.source);
        Alcotest.(check bool) "leak survives" true
          (entry.Corpus.leak = loaded.Corpus.leak);
        Alcotest.(check bool) "program survives" true
          (entry.Corpus.program = loaded.Corpus.program))

let test_corpus_replay_detects_verdict_drift () =
  with_temp_dir (fun dir ->
      (* a passing seed recorded as "fail" must be reported as stale *)
      let entry =
        {
          Corpus.oracle = "roundtrip-text";
          seed = 5;
          verdict = "fail";
          detail = "made up";
          source = None;
          leak = None;
          program = [| Ir.Halt |];
        }
      in
      let path = Corpus.save ~dir entry in
      match Corpus.load path with
      | Error msg -> Alcotest.fail msg
      | Ok loaded -> (
        match Corpus.replay ~config loaded with
        | Ok () -> Alcotest.fail "stale repro not detected"
        | Error _ -> ()))

let test_checked_in_corpus_replays () =
  (* the repository's own corpus must stay in agreement with the oracles;
     dune runs tests from a sandbox, so resolve relative to the source
     root when the default path is absent *)
  let dir =
    if Sys.file_exists Corpus.default_dir then Corpus.default_dir
    else Filename.concat ".." Corpus.default_dir
  in
  let files = Corpus.files dir in
  if files = [] then
    Alcotest.fail ("no checked-in corpus found under " ^ dir);
  List.iter
    (fun path ->
      match Corpus.load path with
      | Error msg -> Alcotest.fail msg
      | Ok entry -> (
        match Corpus.replay ~config entry with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s: %s" path msg))
    files

(* --- campaign --------------------------------------------------------- *)

let campaign_json ~jobs =
  (* attach a progress callback so determinism is asserted with the
     monitor hook live, not just in the silent configuration *)
  let beats = ref 0 in
  let last = ref 0 in
  let report =
    Campaign.run
      {
        Campaign.default_options with
        Campaign.seed = 9;
        iters = 40;
        jobs;
        corpus_dir = None;
        on_progress =
          Some
            (fun ~executed ~failures:_ ->
              incr beats;
              last := executed);
      }
  in
  Alcotest.(check bool) "progress callback fired" true (!beats > 0);
  Alcotest.(check int) "final heartbeat saw every iteration" 40 !last;
  Json.to_string (Campaign.to_json report)

let test_campaign_parallel_deterministic () =
  Alcotest.(check string)
    "-j 2 report equals -j 1 report" (campaign_json ~jobs:1)
    (campaign_json ~jobs:2)

let test_campaign_counts () =
  let report =
    Campaign.run
      {
        Campaign.default_options with
        Campaign.seed = 4;
        iters = 25;
        corpus_dir = None;
      }
  in
  Alcotest.(check int) "iterations" 25 report.Campaign.iterations;
  Alcotest.(check (list string)) "no failures" []
    (List.map (fun f -> f.Campaign.detail) report.Campaign.failures);
  let total_runs =
    List.fold_left
      (fun acc (o : Oracle.t) ->
        acc
        + Option.value ~default:0
            (Levioso_telemetry.Registry.counter_value report.Campaign.counters
               (o.Oracle.name ^ "/runs")))
      0 Oracle.all
  in
  Alcotest.(check int) "every iteration ran exactly one oracle" 25 total_runs

(* --- sharpened library errors ----------------------------------------- *)

let test_emulator_rejects_bad_mem_words () =
  match Emulator.create ~mem_words:3000 [| Ir.Halt |] with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message carries the value" true
      (contains ~affix:"3000" msg)
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_parser_raises_parse_error () =
  match Parser.parse_exn "add r1, r1" with
  | exception Parser.Parse_error msg ->
    Alcotest.(check bool) "message mentions the line" true
      (contains ~affix:"line 1" msg)
  | _ -> Alcotest.fail "expected Parse_error"

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "roundtrip-text oracle over 200 programs" `Slow
        test_roundtrip_text;
      Alcotest.test_case "roundtrip-binary oracle over 200 programs" `Slow
        test_roundtrip_binary;
      Alcotest.test_case "arch-diff oracle over generated programs" `Slow
        test_arch_diff;
      Alcotest.test_case "lang-diff oracle over generated sources" `Slow
        test_lang_diff;
      Alcotest.test_case "noninterference holds and unsafe leaks" `Slow
        test_noninterference;
      Alcotest.test_case "generators are deterministic" `Quick
        test_generator_deterministic;
      Alcotest.test_case "generated programs validate" `Quick
        test_generated_programs_validate;
      Alcotest.test_case "ni cases plant differing secrets" `Quick
        test_ni_case_secret_slots;
      Alcotest.test_case "shrinker minimizes to the witness" `Quick
        test_shrink_to_witness;
      Alcotest.test_case "shrinker keeps branch targets valid" `Quick
        test_shrink_remaps_targets;
      Alcotest.test_case "shrinker returns input on false predicate" `Quick
        test_shrink_keeps_failing_input_on_false_predicate;
      Alcotest.test_case "corpus save/load round-trips" `Quick
        test_corpus_roundtrip;
      Alcotest.test_case "corpus replay flags verdict drift" `Quick
        test_corpus_replay_detects_verdict_drift;
      Alcotest.test_case "checked-in corpus replays clean" `Slow
        test_checked_in_corpus_replays;
      Alcotest.test_case "campaign -j 2 equals -j 1" `Slow
        test_campaign_parallel_deterministic;
      Alcotest.test_case "campaign counts iterations per oracle" `Quick
        test_campaign_counts;
      Alcotest.test_case "emulator rejects non-power-of-two memory" `Quick
        test_emulator_rejects_bad_mem_words;
      Alcotest.test_case "parse_exn raises Parse_error" `Quick
        test_parser_raises_parse_error;
    ] )
