(** Spectre attack programs, written in the simulator's own ISA.

    Both gadgets follow the classic recipe: train the pattern history so a
    bounds/guard branch predicts the attacker's way, flush the guard's
    operands so the branch stays unresolved for a long window, then steer a
    wrong-path {e transmitter} whose address encodes the secret into the
    probe array.  The two variants differ in where the secret comes from —
    the distinction at the heart of the paper's security table:

    - {!bounds_check_bypass} (sandbox model): the secret is read by a
      {e speculative} out-of-bounds load.  Taint-tracking defenses cover
      this.
    - {!register_secret} (constant-time model): the secret was loaded
      {e non-speculatively} long before and sits in a register; only its
      transmission is speculative.  Taint-tracking defenses do {e not}
      cover this; comprehensive ones (Delay, Levioso) must. *)

type t = {
  name : string;
  program : Levioso_ir.Ir.program;
  mem_init : int array -> unit;
  secret : int;  (** the value the attacker tries to recover *)
}

val probe_base : int
(** Word address of the probe (flush+reload) array. *)

val probe_values : int
(** Number of distinct secret values encodable (one cache line each). *)

val probe_line_addr : int -> int
(** [probe_line_addr v] is the probe address encoding value [v]. *)

val timing_results_base : int
(** Where [~timing:true] programs store per-value reload times. *)

val oob_secret_addr : int
(** Word address of {!bounds_check_bypass}'s planted secret (the
    out-of-bounds slot past the bounds-checked array) — the address to
    seed a flow tracer's secret range with. *)

val reg_secret_addr : int
(** Word address of {!register_secret}'s planted secret (loaded
    architecturally at program start). *)

val bounds_check_bypass :
  ?training_rounds:int -> ?timing:bool -> secret:int -> unit -> t
(** Spectre-v1: out-of-bounds speculative read of a secret beyond a
    bounds-checked array.  [secret] must be in [\[0, probe_values)].
    With [~timing:true] the program additionally measures every probe
    line's reload latency with [rdcycle] and stores the measurements at
    {!timing_results_base} — the complete flush+reload attack then runs
    inside the simulated machine with no harness assistance. *)

val register_secret :
  ?training_rounds:int -> ?timing:bool -> secret:int -> unit -> t
(** The non-speculative-secret variant: the secret is architecturally
    loaded at program start and transmitted from a register on the wrong
    path of a mispredicted guard. *)
