(* Reporting pipeline: differential overhead attribution on real runs,
   byte-deterministic HTML rendering against a checked-in golden file,
   and bench-history regression gating. *)

module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Summary = Levioso_uarch.Summary
module Diff_report = Levioso_uarch.Diff_report
module Html_report = Levioso_uarch.Html_report
module Bench_history = Levioso_uarch.Bench_history
module Registry = Levioso_core.Registry
module Explain = Levioso_core.Explain
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

(* --- differential attribution on real simulator output ---------------- *)

let audited_summary ~workload ~policy =
  let w = Suite.find_exn workload in
  let audit = Explain.audit_for w.Workload.program in
  let pipe =
    Pipeline.create ~mem_init:w.Workload.mem_init ~audit Config.default
      ~policy:(Registry.find_exn policy) w.Workload.program
  in
  Pipeline.run pipe;
  Summary.of_pipeline ~workload ~policy pipe

let test_diff_on_real_runs () =
  let baseline = audited_summary ~workload:"stream" ~policy:"unsafe" in
  let delay = audited_summary ~workload:"stream" ~policy:"delay" in
  let d = Diff_report.compute_exn ~baseline delay in
  Alcotest.(check (option string)) "workload" (Some "stream") d.Diff_report.workload;
  Alcotest.(check string) "policy" "delay" d.Diff_report.policy;
  Alcotest.(check string) "baseline" "unsafe" d.Diff_report.baseline;
  Alcotest.(check int) "overhead is the cycle difference"
    (d.Diff_report.policy_cycles - d.Diff_report.baseline_cycles)
    d.Diff_report.overhead_cycles;
  Alcotest.(check bool) "delay costs cycles" true (d.Diff_report.overhead_cycles > 0);
  let gate_delta =
    try List.assoc "policy_gate" d.Diff_report.cause_delta
    with Not_found -> Alcotest.fail "no policy_gate cause in delta"
  in
  Alcotest.(check bool) "gate delta positive" true (gate_delta > 0);
  Alcotest.(check bool) "audited cycles present" true
    (d.Diff_report.audited_cycles > 0);
  Alcotest.(check bool) "audited cycles bounded by gate stalls" true
    (d.Diff_report.audited_cycles <= gate_delta);
  Alcotest.(check bool) "delay over-restricts stream" true
    (d.Diff_report.unnecessary_share > 0.0);
  Alcotest.(check bool) "share is a ratio" true
    (d.Diff_report.unnecessary_share <= 1.0);
  (match d.Diff_report.top_pcs with
  | [] -> Alcotest.fail "no top PCs in diff"
  | pcs ->
    let deltas = List.map (fun p -> p.Diff_report.delta) pcs in
    Alcotest.(check (list int)) "top PCs sorted by delta desc" deltas
      (List.sort (fun a b -> compare b a) deltas));
  Alcotest.(check bool) "diff json schema-tagged" true
    (Schema.check (Diff_report.to_json d) = Ok ());
  Alcotest.(check bool) "rows render" true (Diff_report.to_rows d <> [])

let test_diff_rejects_garbage () =
  match
    Diff_report.compute ~baseline:(Json.Obj []) (Json.Obj [ ("x", Json.Int 1) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "diff of summaries without stats should fail"

(* --- HTML golden ------------------------------------------------------ *)

let golden_matrix () =
  match Json.of_string (read_file "golden_matrix.json") with
  | Ok j -> j
  | Error msg -> Alcotest.failf "golden_matrix.json: %s" msg

let test_html_golden () =
  let html = Html_report.render_exn (golden_matrix ()) in
  let golden = read_file "golden_report.html" in
  if not (String.equal html golden) then
    Alcotest.failf
      "rendered HTML differs from golden_report.html (%d vs %d bytes); \
       regenerate with: dune exec bin/levioso_report.exe -- \
       test/golden_matrix.json -o test/golden_report.html"
      (String.length html) (String.length golden)

let test_html_deterministic_and_total () =
  let m = golden_matrix () in
  Alcotest.(check string)
    "two renders are byte-identical" (Html_report.render_exn m)
    (Html_report.render_exn m);
  (* a matrix straight out of the simulator renders too *)
  let runs =
    [
      audited_summary ~workload:"bsearch" ~policy:"unsafe";
      audited_summary ~workload:"bsearch" ~policy:"levioso";
    ]
  in
  let html =
    Html_report.render_exn (Schema.tag [ ("runs", Json.List runs) ])
  in
  Alcotest.(check bool) "has doctype" true
    (String.length html > 15 && String.sub html 0 15 = "<!DOCTYPE html>");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions the workload" true (contains "bsearch" html);
  match Html_report.render (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rendering a runs-less object should fail"

(* --- bench history ---------------------------------------------------- *)

let cell ?alloc workload policy cycles =
  { Bench_history.workload; policy; cycles; alloc_mwords = alloc }

let entry label cells = { Bench_history.label; cells }

let test_history_roundtrip_and_append () =
  let path = Filename.temp_file "levioso_hist" ".json" in
  let e1 =
    entry "first" [ cell "stream" "unsafe" 1000; cell "stream" "levioso" 1100 ]
  in
  let e2 =
    entry "second" [ cell "stream" "unsafe" 1000; cell "stream" "levioso" 1105 ]
  in
  Bench_history.save path [ e1 ];
  (match Bench_history.load path with
  | Ok [ e ] ->
    Alcotest.(check string) "label" "first" e.Bench_history.label;
    Alcotest.(check int) "cells" 2 (List.length e.Bench_history.cells)
  | Ok es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
  | Error msg -> Alcotest.fail msg);
  (match Bench_history.append ~path e2 with
  | Ok n -> Alcotest.(check int) "append count" 2 n
  | Error msg -> Alcotest.fail msg);
  (match Bench_history.load path with
  | Ok entries ->
    Alcotest.(check (list string))
      "order preserved" [ "first"; "second" ]
      (List.map (fun e -> e.Bench_history.label) entries)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_history_of_matrix () =
  match Bench_history.of_matrix ~label:"golden" (golden_matrix ()) with
  | Error msg -> Alcotest.fail msg
  | Ok e ->
    Alcotest.(check int) "one cell per run" 6 (List.length e.Bench_history.cells);
    let c = List.hd e.Bench_history.cells in
    Alcotest.(check string) "workload" "alpha" c.Bench_history.workload;
    Alcotest.(check string) "policy" "unsafe" c.Bench_history.policy;
    Alcotest.(check int) "cycles" 1000 c.Bench_history.cycles

let test_compare_flags_regression () =
  let old_ =
    [ entry "base" [ cell "w" "levioso" 1000; cell "w" "delay" 4000 ] ]
  in
  (* levioso slows down 20%, delay improves: only levioso flagged *)
  let new_ =
    [
      entry "old-run" [ cell "w" "levioso" 900; cell "w" "delay" 4100 ];
      entry "current" [ cell "w" "levioso" 1200; cell "w" "delay" 3900 ];
    ]
  in
  (match Bench_history.compare_latest ~tolerance:15.0 ~old_ ~new_ () with
  | Ok [ r ] ->
    Alcotest.(check string) "flagged policy" "levioso" r.Bench_history.r_policy;
    Alcotest.(check string) "metric" "cycles" r.Bench_history.r_metric;
    Alcotest.(check (float 0.01)) "old cycles" 1000.0 r.Bench_history.r_old;
    Alcotest.(check (float 0.01)) "new cycles" 1200.0 r.Bench_history.r_new;
    Alcotest.(check (float 0.01)) "pct" 20.0 r.Bench_history.pct
  | Ok rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs)
  | Error msg -> Alcotest.fail msg);
  (* within tolerance: clean *)
  (match Bench_history.compare_latest ~tolerance:25.0 ~old_ ~new_ () with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "20% growth within 25% tolerance was flagged"
  | Error msg -> Alcotest.fail msg);
  (* disjoint matrices can't be compared *)
  (match
     Bench_history.compare_latest ~tolerance:15.0 ~old_
       ~new_:[ entry "other" [ cell "x" "fence" 5 ] ]
       ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no-overlap comparison should error");
  match Bench_history.compare_latest ~tolerance:15.0 ~old_:[] ~new_ () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty history comparison should error"

let test_compare_flags_alloc_regression () =
  (* cycles hold steady but the host section shows a 50% allocation
     growth: only the alloc metric is flagged *)
  let old_ = [ entry "base" [ cell ~alloc:10.0 "w" "levioso" 1000 ] ] in
  let new_ = [ entry "current" [ cell ~alloc:15.0 "w" "levioso" 1000 ] ] in
  (match Bench_history.compare_latest ~tolerance:5.0 ~old_ ~new_ () with
  | Ok [ r ] ->
    Alcotest.(check string) "metric" "alloc_mwords" r.Bench_history.r_metric;
    Alcotest.(check (float 0.01)) "old alloc" 10.0 r.Bench_history.r_old;
    Alcotest.(check (float 0.01)) "new alloc" 15.0 r.Bench_history.r_new;
    Alcotest.(check (float 0.01)) "pct" 50.0 r.Bench_history.pct
  | Ok rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs)
  | Error msg -> Alcotest.fail msg);
  (* a looser alloc-specific tolerance silences it without loosening the
     cycle gate *)
  (match
     Bench_history.compare_latest ~tolerance:5.0 ~alloc_tolerance:60.0 ~old_
       ~new_ ()
   with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "50% alloc growth within 60% tolerance was flagged"
  | Error msg -> Alcotest.fail msg);
  (* histories recorded before host profiling existed have no alloc
     numbers; comparison must not invent them *)
  let bare = [ entry "pre-host" [ cell "w" "levioso" 1000 ] ] in
  (match Bench_history.compare_latest ~tolerance:5.0 ~old_:bare ~new_ () with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "alloc flagged against a baseline without alloc"
  | Error msg -> Alcotest.fail msg);
  (* alloc numbers survive the JSON round-trip *)
  let path = Filename.temp_file "levioso_hist" ".json" in
  Bench_history.save path new_;
  (match Bench_history.load path with
  | Ok [ e ] -> (
    match (List.hd e.Bench_history.cells).Bench_history.alloc_mwords with
    | Some v -> Alcotest.(check (float 0.01)) "alloc round-trips" 15.0 v
    | None -> Alcotest.fail "alloc_mwords lost in round-trip")
  | Ok _ | Error _ -> Alcotest.fail "round-trip load failed");
  Sys.remove path

let suite =
  ( "report",
    [
      Alcotest.test_case "diff on real runs" `Quick test_diff_on_real_runs;
      Alcotest.test_case "diff rejects garbage" `Quick test_diff_rejects_garbage;
      Alcotest.test_case "html golden" `Quick test_html_golden;
      Alcotest.test_case "html deterministic and total" `Quick
        test_html_deterministic_and_total;
      Alcotest.test_case "history roundtrip and append" `Quick
        test_history_roundtrip_and_append;
      Alcotest.test_case "history of matrix" `Quick test_history_of_matrix;
      Alcotest.test_case "compare flags regression" `Quick
        test_compare_flags_regression;
      Alcotest.test_case "compare flags alloc regression" `Quick
        test_compare_flags_alloc_regression;
    ] )
