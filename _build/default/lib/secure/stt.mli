(** Speculative taint tracking (the stand-in for the paper's second prior
    defense, 43% overhead in the abstract; modelled on STT, Yu et al.,
    MICRO'19).

    Rules implemented:

    - every load is an {e access instruction}: it may execute speculatively
      even under unresolved branches, and its result is {e tainted} with
      the load's own sequence number (a taint {e root});
    - taint propagates through register data flow at rename time;
    - a {e transmitter} (load/flush — instructions whose execution emits a
      cache signal derived from their operands) may begin execution only
      when every taint root feeding its operands is {e bound}: the root
      load has no older unresolved branch (its visibility point has
      passed);
    - {e branches} with tainted operands are gated the same way: resolving
      a branch on speculative data changes the squash pattern, an implicit
      channel STT explicitly closes (and a large share of its cost on
      memory-dependent-branch code);
    - taint sets are capped at the hardware budget
      ({!Levioso_uarch.Config.t}[.depset_budget]); overflow degrades to
      "stall while any older unresolved branch exists".

    The deliberate security gap this reproduces from the paper: data that
    was loaded {e non-speculatively} (or lives in registers) is never
    tainted, so a wrong-path transmitter whose operands are
    non-speculative executes freely and leaks — the constant-time threat
    model STT does not cover.  Table 2 demonstrates exactly this. *)

val maker : Levioso_uarch.Pipeline.policy_maker
