(** Pipeline → {!Levioso_telemetry.Timeline} adapter.

    Translates {!Pipeline.event}s and {!Levioso_telemetry.Stall.cause}s
    into the generic timeline builder, disassembling left-pane labels
    from the program.  The resulting trace is written in the Kanata 0004
    format and loads directly in Konata. *)

module Timeline = Levioso_telemetry.Timeline

val cause_code : Levioso_telemetry.Stall.cause -> string
(** Short lane-1 stage label Konata colors by: [Policy_gate -> "Gp"],
    [Operand_wait -> "Op"], [Lsq_order -> "Lq"], [Exec_port -> "Xp"],
    [Rob_full -> "Rf"]. *)

val timeline : ?window:int * int -> Levioso_ir.Ir.program -> Timeline.t
(** A timeline whose disassembly labels come from [program]. *)

val feed : Timeline.t -> cycle:int -> Pipeline.event -> unit
(** Record one pipeline event.  Call from a {!Pipeline.set_tracer}
    callback (or multiplex inside an existing one). *)

val feed_stall :
  Timeline.t ->
  cycle:int ->
  seq:int ->
  pc:int ->
  cause:Levioso_telemetry.Stall.cause ->
  unit
(** Record one waiting-cycle attribution.  Call from a
    {!Pipeline.set_stall_tracer} callback. *)

val flow_feeder :
  Timeline.t -> cycle:int -> Levioso_telemetry.Flowtrace.event -> unit
(** [flow_feeder tl] is a flow-tracer callback that highlights tainted
    instructions in the timeline: taint sources get a ["Ts"] lane-1
    mark, tainted transmits a ["Tn"] mark.  Multiplex it inside a
    {!Pipeline.set_flow_tracer} callback alongside a leak-graph
    accumulator.  (Partial application is intentional: the feeder owns
    a node-id → seq map fed by [Node] events.) *)

val attach : Timeline.t -> Pipeline.t -> unit
(** Installs both tracers.  Convenience for callers that need no other
    tracer ({!Pipeline.set_tracer} holds a single callback — multiplex
    manually if you also want text/Chrome tracing). *)
