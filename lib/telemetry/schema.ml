let version = 2

let field = ("schema_version", Json.Int version)

let tag fields = Json.Obj (field :: fields)

let check ?(what = "report") j =
  match Json.member "schema_version" j with
  | Some (Json.Int v) when v = version -> Ok ()
  | Some (Json.Int v) ->
    Error (Printf.sprintf "%s: schema_version %d, expected %d" what v version)
  | Some _ -> Error (what ^ ": schema_version is not an integer")
  | None -> Error (what ^ ": missing schema_version")

let check_exn ?what j =
  match check ?what j with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Schema.check_exn: " ^ msg)
