lib/lang/ast.mli:
