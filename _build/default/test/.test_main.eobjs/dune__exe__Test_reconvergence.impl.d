test/test_reconvergence.ml: Alcotest Levioso_analysis Levioso_ir List Printf
