(** Functional (architectural) executor.

    The emulator defines the architectural semantics of the ISA and serves
    as the oracle against which the out-of-order pipeline is checked: for
    any program and any secure-speculation policy, the pipeline must commit
    exactly the state the emulator computes.

    [Rdcycle] is the one deliberately timing-dependent instruction: here it
    returns the number of instructions retired so far, which differs from
    the pipeline's cycle counter.  Oracle-equivalence checks therefore only
    apply to programs that do not consume [Rdcycle] results in
    architecturally visible ways (none of the workloads do; only attack
    probes use it). *)

type state = {
  regs : int array;  (** architectural register file; index 0 reads as 0 *)
  mem : int array;  (** word-addressed memory; length is a power of two *)
  mutable pc : int;
  mutable retired : int;  (** instructions retired so far *)
  mutable halted : bool;
  program : Ir.program;
}

val create : ?mem_words:int -> Ir.program -> state
(** Fresh state: zeroed registers and memory (default 65536 words), pc 0.
    @raise Invalid_argument when [mem_words] is not a power of two (the
    message carries the offending value). *)

exception Out_of_fuel
(** Raised by {!run} when the step budget is exhausted. *)

val mask_addr : state -> int -> int
(** Addresses wrap modulo the memory size (no faults). *)

val step : state -> unit
(** Execute one instruction.  No-op once [halted]. *)

val run : ?fuel:int -> state -> unit
(** Run to [Halt].  @raise Out_of_fuel after [fuel] steps (default 10M). *)

val run_program :
  ?mem_words:int -> ?fuel:int -> ?init:(state -> unit) -> Ir.program -> state
(** Convenience: create, apply [init] (e.g. to preload memory), run. *)
