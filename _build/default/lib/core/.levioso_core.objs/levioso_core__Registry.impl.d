lib/core/registry.ml: Levioso_policy Levioso_secure Levioso_static List Printf String
