module Ast = Levioso_lang.Ast
module Rng = Levioso_util.Rng

let mem_words = 4096
let data_base = 1024
let out_base = 256

let binops =
  [|
    Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.And; Ast.Or; Ast.Xor;
    Ast.Shl; Ast.Shr; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge;
    Ast.Logic_and; Ast.Logic_or;
  |]

(* every load address is masked into the seeded data window *)
let confined_load e =
  Ast.Load (Ast.Binop (Ast.Add, Ast.Lit data_base, Ast.Binop (Ast.And, e, Ast.Lit 255)))

let confined_out e = Ast.Binop (Ast.Add, Ast.Lit out_base, Ast.Binop (Ast.And, e, Ast.Lit 63))

let random_ast seed =
  let rng = Rng.create (seed lxor 0x1e57) in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  (* The codegen's fixed register slots (variables, inline-expansion
     params and results) are never freed, so the whole program shares one
     pool of 31.  Track the total cost as we generate and refuse any
     construct that would overrun: [fns] carries each helper's per-call
     cost (params + result + everything its body allocates), and every
     declaration or call site must [spend] its cost first.  16 leaves
     ample headroom for expression temporaries (and the documented
     trapped-temp leak at call sites). *)
  let fixed_limit = 16 in
  let fixed = ref 0 in
  let spend n =
    if !fixed + n <= fixed_limit then begin
      fixed := !fixed + n;
      true
    end
    else false
  in
  let rec expr ~vars ~fns depth =
    if depth = 0 || Rng.chance rng 0.35 then
      if vars <> [] && Rng.bool rng then
        Ast.Var (Rng.pick rng (Array.of_list vars))
      else Ast.Lit (Rng.int_in rng (-50) 100)
    else
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        Ast.Binop
          ( Rng.pick rng binops,
            expr ~vars ~fns (depth - 1),
            expr ~vars ~fns (depth - 1) )
      | 4 -> Ast.Neg (expr ~vars ~fns (depth - 1))
      | 5 -> Ast.Not (expr ~vars ~fns (depth - 1))
      | 6 | 7 -> confined_load (expr ~vars ~fns (depth - 1))
      | (8 | 9) when fns <> [] -> (
        let name, arity, cost = Rng.pick rng (Array.of_list fns) in
        (* call arguments stay shallow and call-free: inlining multiplies
           the cost of nested calls *)
        if spend cost then
          Ast.Call (name, List.init arity (fun _ -> expr ~vars ~fns:[] 1))
        else confined_load (expr ~vars ~fns (depth - 1)))
      | _ ->
        Ast.Binop
          ( Ast.Add,
            expr ~vars ~fns (depth - 1),
            expr ~vars ~fns (depth - 1) )
  in
  let rec stmts ~vars ~fns depth budget =
    if budget = 0 then ([], vars)
    else
      let store_stmt () =
        (Ast.Store (confined_out (expr ~vars ~fns 2), expr ~vars ~fns 3), vars)
      in
      let s, vars =
        match Rng.int rng 11 with
        | (0 | 1) when spend 1 ->
          let x = fresh "v" in
          (Ast.Decl (x, expr ~vars ~fns 3), x :: vars)
        | 2 | 3 when vars <> [] ->
          ( Ast.Assign (Rng.pick rng (Array.of_list vars), expr ~vars ~fns 3),
            vars )
        | 4 | 5 -> store_stmt ()
        | 6 when depth > 0 ->
          let inner, _ = stmts ~vars ~fns (depth - 1) (Rng.int_in rng 1 3) in
          let else_ =
            if Rng.bool rng then
              Some (fst (stmts ~vars ~fns (depth - 1) (Rng.int_in rng 1 3)))
            else None
          in
          (Ast.If (expr ~vars ~fns 2, inner, else_), vars)
        | 7 when depth > 0 && spend 1 ->
          (* bounded loop: a fresh counter, invisible to the body's
             statements, counts down to zero *)
          let c = fresh "loop" in
          let body, _ = stmts ~vars ~fns (depth - 1) (Rng.int_in rng 1 3) in
          let body =
            body @ [ Ast.Assign (c, Ast.Binop (Ast.Sub, Ast.Var c, Ast.Lit 1)) ]
          in
          ( Ast.If
              ( Ast.Lit 1,
                [
                  Ast.Decl (c, Ast.Lit (Rng.int_in rng 1 5));
                  Ast.While (Ast.Binop (Ast.Gt, Ast.Var c, Ast.Lit 0), body);
                ],
                None ),
            vars )
        | 8 ->
          ( Ast.Flush
              (Ast.Binop
                 ( Ast.Add,
                   Ast.Lit data_base,
                   Ast.Binop (Ast.And, expr ~vars ~fns 2, Ast.Lit 255) )),
            vars )
        | 9 when fns <> [] -> (
          let name, arity, cost = Rng.pick rng (Array.of_list fns) in
          if spend cost then
            ( Ast.Expr_stmt
                (Ast.Call
                   (name, List.init arity (fun _ -> expr ~vars ~fns:[] 2))),
              vars )
          else store_stmt ())
        | _ when spend 1 ->
          let x = fresh "t" in
          (Ast.Decl (x, expr ~vars ~fns 2), x :: vars)
        | _ -> store_stmt ()
      in
      let rest, vars = stmts ~vars ~fns depth (budget - 1) in
      (s :: rest, vars)
  in
  let helper ~fns i =
    let arity = Rng.int rng 3 in
    let params = List.init arity (fun k -> Printf.sprintf "p%d_%d" i k) in
    (* measure the body's own fixed-slot appetite with the shared budget
       machinery, then roll it back: the cost is paid per call site *)
    let before = !fixed in
    let body, vars = stmts ~vars:params ~fns 1 (Rng.int_in rng 1 3) in
    let body = body @ [ Ast.Return (Some (expr ~vars ~fns 2)) ] in
    let body_cost = !fixed - before in
    fixed := before;
    ( { Ast.name = Printf.sprintf "fn%d" i; params; body; line = 1 },
      arity + 1 + body_cost )
  in
  let n_helpers = Rng.int rng 3 in
  let helpers = ref [] and callable = ref [] in
  for i = 1 to n_helpers do
    let f, cost = helper ~fns:!callable i in
    helpers := f :: !helpers;
    callable := (f.Ast.name, List.length f.Ast.params, cost) :: !callable
  done;
  let body, _ = stmts ~vars:[] ~fns:!callable 2 (Rng.int_in rng 3 8) in
  List.rev !helpers @ [ { Ast.name = "main"; params = []; body; line = 1 } ]

(* --- concrete-syntax printer ----------------------------------------- *)

let to_source program =
  let buf = Buffer.create 1024 in
  let pad n = String.make (2 * n) ' ' in
  let line n s = Buffer.add_string buf (pad n ^ s ^ "\n") in
  let e2s = Ast.expr_to_string in
  let rec stmt n = function
    | Ast.Decl (x, e) -> line n (Printf.sprintf "var %s = %s;" x (e2s e))
    | Ast.Assign (x, e) -> line n (Printf.sprintf "%s = %s;" x (e2s e))
    | Ast.If (c, b, else_) ->
      line n (Printf.sprintf "if (%s) {" (e2s c));
      List.iter (stmt (n + 1)) b;
      (match else_ with
      | None -> line n "}"
      | Some b2 ->
        line n "} else {";
        List.iter (stmt (n + 1)) b2;
        line n "}")
    | Ast.While (c, b) ->
      line n (Printf.sprintf "while (%s) {" (e2s c));
      List.iter (stmt (n + 1)) b;
      line n "}"
    | Ast.Store (a, v) -> line n (Printf.sprintf "store(%s, %s);" (e2s a) (e2s v))
    | Ast.Flush a -> line n (Printf.sprintf "flush(%s);" (e2s a))
    | Ast.Expr_stmt e ->
      (* only calls are generated as expression statements — the grammar
         admits nothing else here *)
      line n (e2s e ^ ";")
    | Ast.Return None -> line n "return;"
    | Ast.Return (Some e) -> line n (Printf.sprintf "return %s;" (e2s e))
    | Ast.Halt -> line n "halt;"
  in
  List.iter
    (fun (f : Ast.fn) ->
      line 0
        (Printf.sprintf "fn %s(%s) {" f.Ast.name (String.concat ", " f.Ast.params));
      List.iter (stmt 1) f.Ast.body;
      line 0 "}";
      Buffer.add_char buf '\n')
    program;
  Buffer.contents buf

let random_source seed = to_source (random_ast seed)

let init_mem seed mem =
  let rng = Rng.create (seed lxor 0xDA7A) in
  for i = 0 to 255 do
    mem.(data_base + i) <- Rng.int_in rng (-100) 100
  done
