(* Streaming threshold-count (lbm/nab-flavoured): a sequential sweep whose
   per-element branch depends on the loaded value (slow to resolve), while
   the *next* iteration's load is past that branch's reconvergence point
   and address-independent of it.  This is the pattern where Levioso's
   selectivity pays: delay-all-transmitters keeps stalling iteration i+1's
   load on iteration i's data branch; Levioso lets it fly. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let size = 12288
let threshold = 50
let aux_base = Layout.data_base + 65536

let mem_init mem =
  let rng = Layout.rng 4 in
  for i = 0 to size - 1 do
    mem.(Layout.data_base + i) <- Rng.int rng 100;
    mem.(aux_base + i) <- Rng.int rng 1000
  done

let build b =
  let i = Builder.fresh_reg b in
  let v = Builder.fresh_reg b in
  let aux = Builder.fresh_reg b in
  let count = Builder.fresh_reg b in
  let sum = Builder.fresh_reg b in
  Builder.mov b count (Ir.Imm 0);
  Builder.mov b sum (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm size) (fun () ->
      Builder.load b v (Ir.Reg i) (Ir.Imm Layout.data_base);
      Builder.add b sum (Ir.Reg sum) (Ir.Reg v);
      (* guarded gather: the aux load's address is ready immediately but
         its existence depends on the value-driven branch *)
      Builder.if_then b
        ~cond:(Ir.Gt, Ir.Reg v, Ir.Imm threshold)
        (fun () ->
          Builder.load b aux (Ir.Reg i) (Ir.Imm aux_base);
          Builder.add b count (Ir.Reg count) (Ir.Reg aux)));
  Builder.mul b count (Ir.Reg count) (Ir.Imm 100000);
  Builder.add b sum (Ir.Reg sum) (Ir.Reg count);
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg sum);
  Builder.halt b

let workload =
  Workload.make ~name:"stream"
    ~description:"streaming sweep with value-dependent counting branch"
    ~build ~mem_init

(* Many passes over the same sweep: a >1M-instruction run with the same
   per-iteration behaviour, sized for exercising the two-tier sampled
   engine (where a full detailed simulation is the thing being avoided).
   Deliberately not part of the default suite matrix. *)
let xl_passes = 12

let build_xl b =
  let pass = Builder.fresh_reg b in
  let i = Builder.fresh_reg b in
  let v = Builder.fresh_reg b in
  let aux = Builder.fresh_reg b in
  let count = Builder.fresh_reg b in
  let sum = Builder.fresh_reg b in
  Builder.mov b count (Ir.Imm 0);
  Builder.mov b sum (Ir.Imm 0);
  Builder.for_down b ~counter:pass ~from:(Ir.Imm xl_passes) (fun () ->
      Builder.for_down b ~counter:i ~from:(Ir.Imm size) (fun () ->
          Builder.load b v (Ir.Reg i) (Ir.Imm Layout.data_base);
          Builder.add b sum (Ir.Reg sum) (Ir.Reg v);
          Builder.if_then b
            ~cond:(Ir.Gt, Ir.Reg v, Ir.Imm threshold)
            (fun () ->
              Builder.load b aux (Ir.Reg i) (Ir.Imm aux_base);
              Builder.add b count (Ir.Reg count) (Ir.Reg aux))));
  Builder.mul b count (Ir.Reg count) (Ir.Imm 100000);
  Builder.add b sum (Ir.Reg sum) (Ir.Reg count);
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg sum);
  Builder.halt b

let workload_xl =
  Workload.make ~name:"stream-xl"
    ~description:
      (Printf.sprintf "stream sweep repeated %d times (>1M instructions)"
         xl_passes)
    ~build:build_xl ~mem_init
