module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Emulator = Levioso_ir.Emulator

let run program =
  let state = Emulator.run_program program in
  state.Emulator.regs

let test_straight_line () =
  let b = Builder.create () in
  let r1 = Builder.fresh_reg b in
  let r2 = Builder.fresh_reg b in
  Builder.mov b r1 (Ir.Imm 5);
  Builder.add b r2 (Ir.Reg r1) (Ir.Imm 7);
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "r2 = 12" 12 regs.(r2)

let test_if_then_else_taken () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b in
  let y = Builder.fresh_reg b in
  Builder.mov b x (Ir.Imm 3);
  Builder.if_then_else b
    ~cond:(Ir.Lt, Ir.Reg x, Ir.Imm 10)
    (fun () -> Builder.mov b y (Ir.Imm 1))
    (fun () -> Builder.mov b y (Ir.Imm 2));
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "then branch" 1 regs.(y)

let test_if_then_else_not_taken () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b in
  let y = Builder.fresh_reg b in
  Builder.mov b x (Ir.Imm 30);
  Builder.if_then_else b
    ~cond:(Ir.Lt, Ir.Reg x, Ir.Imm 10)
    (fun () -> Builder.mov b y (Ir.Imm 1))
    (fun () -> Builder.mov b y (Ir.Imm 2));
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "else branch" 2 regs.(y)

let test_if_then_only () =
  let b = Builder.create () in
  let x = Builder.fresh_reg b in
  let y = Builder.fresh_reg b in
  Builder.mov b x (Ir.Imm 1);
  Builder.mov b y (Ir.Imm 10);
  Builder.if_then b
    ~cond:(Ir.Eq, Ir.Reg x, Ir.Imm 1)
    (fun () -> Builder.add b y (Ir.Reg y) (Ir.Imm 5));
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "executed" 15 regs.(y)

let test_while_loop () =
  (* sum of 1..10 *)
  let b = Builder.create () in
  let i = Builder.fresh_reg b in
  let sum = Builder.fresh_reg b in
  Builder.mov b i (Ir.Imm 1);
  Builder.mov b sum (Ir.Imm 0);
  Builder.while_ b
    ~cond:(fun () -> (Ir.Le, Ir.Reg i, Ir.Imm 10))
    (fun () ->
      Builder.add b sum (Ir.Reg sum) (Ir.Reg i);
      Builder.add b i (Ir.Reg i) (Ir.Imm 1));
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "sum 1..10" 55 regs.(sum)

let test_for_down () =
  let b = Builder.create () in
  let i = Builder.fresh_reg b in
  let count = Builder.fresh_reg b in
  Builder.mov b count (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm 5) (fun () ->
      Builder.add b count (Ir.Reg count) (Ir.Imm 1));
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "5 iterations" 5 regs.(count)

let test_nested_control () =
  (* count even numbers in 0..9 *)
  let b = Builder.create () in
  let i = Builder.fresh_reg b in
  let evens = Builder.fresh_reg b in
  let rem = Builder.fresh_reg b in
  Builder.mov b i (Ir.Imm 0);
  Builder.mov b evens (Ir.Imm 0);
  Builder.while_ b
    ~cond:(fun () -> (Ir.Lt, Ir.Reg i, Ir.Imm 10))
    (fun () ->
      Builder.alu b Ir.Rem rem (Ir.Reg i) (Ir.Imm 2);
      Builder.if_then b
        ~cond:(Ir.Eq, Ir.Reg rem, Ir.Imm 0)
        (fun () -> Builder.add b evens (Ir.Reg evens) (Ir.Imm 1));
      Builder.add b i (Ir.Reg i) (Ir.Imm 1));
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "5 evens" 5 regs.(evens)

let test_memory_ops () =
  let b = Builder.create () in
  let v = Builder.fresh_reg b in
  Builder.store b (Ir.Imm 100) (Ir.Imm 0) (Ir.Imm 42);
  Builder.load b v (Ir.Imm 100) (Ir.Imm 0);
  Builder.halt b;
  let regs = run (Builder.build b) in
  Alcotest.(check int) "load after store" 42 regs.(v)

let test_auto_halt_appended () =
  let b = Builder.create () in
  Builder.mov b 1 (Ir.Imm 1);
  let p = Builder.build b in
  Alcotest.(check bool) "ends with halt" true (p.(Array.length p - 1) = Ir.Halt)

let test_unplaced_label_fails () =
  let b = Builder.create () in
  Builder.jump b "nowhere";
  Alcotest.check_raises "unplaced label"
    (Failure "Builder.build: unplaced label nowhere") (fun () ->
      ignore (Builder.build b))

let test_duplicate_label_fails () =
  let b = Builder.create () in
  Builder.place b "x";
  Alcotest.check_raises "duplicate" (Failure "Builder.place: duplicate label x")
    (fun () -> Builder.place b "x")

let test_negate_cmp_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "double negation" true
        (Builder.negate_cmp (Builder.negate_cmp c) = c))
    [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ]

let suite =
  ( "builder",
    [
      Alcotest.test_case "straight line" `Quick test_straight_line;
      Alcotest.test_case "if-then-else taken" `Quick test_if_then_else_taken;
      Alcotest.test_case "if-then-else not taken" `Quick test_if_then_else_not_taken;
      Alcotest.test_case "if-then only" `Quick test_if_then_only;
      Alcotest.test_case "while loop" `Quick test_while_loop;
      Alcotest.test_case "for down" `Quick test_for_down;
      Alcotest.test_case "nested control" `Quick test_nested_control;
      Alcotest.test_case "memory ops" `Quick test_memory_ops;
      Alcotest.test_case "auto halt" `Quick test_auto_halt_appended;
      Alcotest.test_case "unplaced label" `Quick test_unplaced_label_fails;
      Alcotest.test_case "duplicate label" `Quick test_duplicate_label_fails;
      Alcotest.test_case "negate_cmp involution" `Quick test_negate_cmp_involution;
    ] )
