lib/ir/encoding.ml: Array Int64 Ir List Printf Result
