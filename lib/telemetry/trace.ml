type event = {
  cycle : int;
  seq : int;
  pc : int;
  stage : string;
  args : (string * Json.t) list;
}

let event_to_json e =
  Json.Obj
    (("cycle", Json.Int e.cycle)
     :: ("stage", Json.String e.stage)
     :: (if e.seq >= 0 then [ ("seq", Json.Int e.seq) ] else [])
    @ (if e.pc >= 0 then [ ("pc", Json.Int e.pc) ] else [])
    @ e.args)

type format =
  | Jsonl
  | Chrome

let format_of_filename name =
  if Filename.check_suffix name ".jsonl" then Jsonl else Chrome

type output =
  | To_channel of { oc : out_channel; format : format }
  | To_fn of (event -> unit)

type sink = {
  every : int;
  output : output;
  mutable n_seen : int;
  mutable n_written : int;
  mutable closed : bool;
  (* chrome format: distinct tracks per stage, assigned on first use *)
  tids : (string, int) Hashtbl.t;
  mutable cur_pid : int;
  mutable next_pid : int;
}

let make every output =
  if every < 1 then invalid_arg "Trace: ~every must be >= 1";
  {
    every;
    output;
    n_seen = 0;
    n_written = 0;
    closed = false;
    tids = Hashtbl.create 8;
    cur_pid = 0;
    next_pid = 1;
  }

let to_channel ?(every = 1) ~format oc =
  let s = make every (To_channel { oc; format }) in
  (match format with
  | Chrome -> output_string oc "{\"traceEvents\":[\n"
  | Jsonl -> ());
  s

let of_fn ?(every = 1) f = make every (To_fn f)

let tid_of s stage =
  match Hashtbl.find_opt s.tids stage with
  | Some t -> t
  | None ->
    let t = Hashtbl.length s.tids in
    Hashtbl.add s.tids stage t;
    t

(* Low-level record write: handles the Chrome comma separator. *)
let write_json s j =
  match s.output with
  | To_fn _ -> ()
  | To_channel { oc; format = Jsonl } ->
    output_string oc (Json.to_string ~minify:true j);
    output_char oc '\n'
  | To_channel { oc; format = Chrome } ->
    if s.n_written > 0 then output_string oc ",\n";
    output_string oc (Json.to_string ~minify:true j)

let chrome_json s e =
  Json.Obj
    [
      ("name", Json.String e.stage);
      ("cat", Json.String "sim");
      ("ph", Json.String "X");
      ("ts", Json.Int e.cycle);
      ("dur", Json.Int 1);
      ("pid", Json.Int s.cur_pid);
      ("tid", Json.Int (tid_of s e.stage));
      ( "args",
        Json.Obj
          ((if e.seq >= 0 then [ ("seq", Json.Int e.seq) ] else [])
          @ (if e.pc >= 0 then [ ("pc", Json.Int e.pc) ] else [])
          @ e.args) );
    ]

let emit s e =
  if s.closed then invalid_arg "Trace.emit: sink is closed";
  let keep = s.n_seen mod s.every = 0 in
  s.n_seen <- s.n_seen + 1;
  if keep then begin
    (match s.output with
    | To_fn f -> f e
    | To_channel { format = Jsonl; _ } -> write_json s (event_to_json e)
    | To_channel { format = Chrome; _ } -> write_json s (chrome_json s e));
    s.n_written <- s.n_written + 1
  end

let begin_process s ~name =
  if s.closed then invalid_arg "Trace.begin_process: sink is closed";
  let pid = s.next_pid in
  s.next_pid <- pid + 1;
  s.cur_pid <- pid;
  match s.output with
  | To_fn _ -> ()
  | To_channel { format = Jsonl; _ } ->
    write_json s
      (Json.Obj
         [
           ("stage", Json.String "process");
           ("pid", Json.Int pid);
           ("name", Json.String name);
         ]);
    s.n_written <- s.n_written + 1
  | To_channel { format = Chrome; _ } ->
    (* trace_event metadata record naming the process track *)
    write_json s
      (Json.Obj
         [
           ("name", Json.String "process_name");
           ("ph", Json.String "M");
           ("pid", Json.Int pid);
           ("tid", Json.Int 0);
           ("args", Json.Obj [ ("name", Json.String name) ]);
         ]);
    s.n_written <- s.n_written + 1

let close s =
  if not s.closed then begin
    s.closed <- true;
    match s.output with
    | To_fn _ -> ()
    | To_channel { oc; format = Chrome } ->
      output_string oc "\n]}\n";
      flush oc
    | To_channel { oc; format = Jsonl } -> flush oc
  end

let seen s = s.n_seen
let written s = s.n_written
