(* The two-tier engine: emulator batch stepping (decode-once fast path),
   checkpoint fidelity, and the sampled cycle estimate's accuracy. *)

module Emulator = Levioso_ir.Emulator
module Parser = Levioso_ir.Parser
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Cache = Levioso_uarch.Cache
module Predictor = Levioso_uarch.Predictor
module Sampler = Levioso_uarch.Sampler
module Checkpoint = Levioso_uarch.Checkpoint
module Registry = Levioso_core.Registry
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite
module Gen = Levioso_fuzz.Gen

(* --- spec parsing ---------------------------------------------------- *)

let test_parse_spec () =
  (match Sampler.parse "off" with
  | Ok None -> ()
  | _ -> Alcotest.fail "\"off\" must parse to no sampling");
  (match Sampler.parse "5000:2000" with
  | Ok (Some s) ->
    Alcotest.(check int) "interval" 5000 s.Sampler.interval;
    Alcotest.(check int) "warmup" 2000 s.Sampler.warmup;
    Alcotest.(check int) "default period" Sampler.default_period
      s.Sampler.period
  | _ -> Alcotest.fail "N:W must parse");
  (match Sampler.parse "5000:2000:20" with
  | Ok (Some s) ->
    Alcotest.(check int) "explicit period" 20 s.Sampler.period;
    Alcotest.(check string) "round trip" "5000:2000:20"
      (Sampler.spec_to_string s)
  | _ -> Alcotest.fail "N:W:P must parse");
  List.iter
    (fun bad ->
      match Sampler.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" bad)
    [ ""; "1"; "0:1"; "1:-1"; "1:1:0"; "x:y"; "1:2:3:4" ]

(* --- emulator fast path ---------------------------------------------- *)

(* Batch stepping must be observationally identical to the one-at-a-time
   stepper at every chunk boundary, not just at the end. *)
let prop_run_steps_matches_step =
  QCheck.Test.make ~count:60 ~name:"run_steps matches the single-stepper"
    QCheck.small_nat
    (fun seed ->
      let program = Gen.random_program seed in
      let make () =
        let memory = Array.make 4096 0 in
        Gen.mem_init seed memory;
        Emulator.create ~memory program
      in
      let a = make () and b = make () in
      let fuel = ref 200_000 in
      let agree () =
        a.Emulator.pc = b.Emulator.pc
        && a.Emulator.retired = b.Emulator.retired
        && a.Emulator.halted = b.Emulator.halted
        && a.Emulator.regs = b.Emulator.regs
        && a.Emulator.mem = b.Emulator.mem
      in
      let ok = ref true in
      while
        !ok && !fuel > 0 && not (a.Emulator.halted && b.Emulator.halted)
      do
        for _ = 1 to 7 do
          Emulator.step a
        done;
        ignore (Emulator.run_steps b 7 : int);
        fuel := !fuel - 7;
        if not (agree ()) then ok := false
      done;
      if not !ok then
        QCheck.Test.fail_reportf
          "seed %d: batch stepping diverged at retired=%d (step pc=%d, \
           run_steps pc=%d)"
          seed a.Emulator.retired a.Emulator.pc b.Emulator.pc
      else if !fuel <= 0 then
        QCheck.Test.fail_reportf "seed %d: did not terminate" seed
      else true)

let test_run_steps_hooks () =
  let p =
    Parser.parse_exn
      {|
        store [r0 + #8], #3
        load r1, [r0 + #8]
        flush [r0 + #8]
        blt r1, #10, skip
        add r2, r2, #1
      skip:
        load r3, [r0 + #16]
        halt
      |}
  in
  let loads = ref [] and stores = ref [] and flushes = ref [] in
  let branches = ref [] in
  let hooks =
    {
      Emulator.h_load = (fun a -> loads := a :: !loads);
      h_store = (fun a -> stores := a :: !stores);
      h_flush = (fun a -> flushes := a :: !flushes);
      h_branch = (fun ~pc ~taken -> branches := (pc, taken) :: !branches);
    }
  in
  let emu = Emulator.create p in
  ignore (Emulator.run_steps ~hooks emu max_int : int);
  Alcotest.(check (list int)) "loads observed" [ 8; 16 ] (List.rev !loads);
  Alcotest.(check (list int)) "store observed" [ 8 ] !stores;
  Alcotest.(check (list int)) "flush observed" [ 8 ] !flushes;
  Alcotest.(check (list (pair int bool)))
    "branch observed with direction" [ (3, true) ] !branches;
  Alcotest.(check int) "taken branch skipped the add" 0 emu.Emulator.regs.(2)

(* The whole point of the decode-once fast path: once the flat decode
   exists, batch stepping allocates nothing per step.  The budget covers
   the Gc.minor_words probe itself, not the 50k steps. *)
let test_run_steps_zero_alloc () =
  let w = Suite.find_exn "stream" in
  let memory = Array.make Config.default.Config.mem_words 0 in
  w.Workload.mem_init memory;
  let emu = Emulator.create ~memory w.Workload.program in
  ignore (Emulator.run_steps emu 1_000 : int);
  let w0 = Gc.minor_words () in
  ignore (Emulator.run_steps emu 50_000 : int);
  let dw = Gc.minor_words () -. w0 in
  if dw >= 512.0 then
    Alcotest.failf "run_steps allocated %.0f minor words over 50k steps" dw

(* --- checkpoint fidelity --------------------------------------------- *)

(* Fast-forward a random program to its midpoint with functional warming,
   checkpoint, then resume the detailed pipeline to completion — twice,
   independently.  The two resumes must be bit-identical (a resume must
   not corrupt the checkpoint), the final architectural state must match
   the emulator oracle, and retired accounting must close:
   fast-forwarded + committed-on-resume = oracle retired. *)
let prop_checkpoint_fidelity policy =
  QCheck.Test.make ~count:12
    ~name:(Printf.sprintf "checkpoint fidelity under %s" policy)
    QCheck.small_nat
    (fun seed ->
      let cfg = Gen.default_config in
      let mem_words = cfg.Config.mem_words in
      let program = Gen.random_program seed in
      let oracle =
        Emulator.run_program ~mem_words
          ~init:(fun st -> Gen.mem_init seed st.Emulator.mem)
          program
      in
      let memory = Array.make mem_words 0 in
      Gen.mem_init seed memory;
      let emu = Emulator.create ~memory program in
      let hierarchy = Cache.Hierarchy.create cfg in
      let predictor = Predictor.create cfg in
      let hooks = Sampler.warming_hooks cfg hierarchy predictor in
      let k = oracle.Emulator.retired / 2 in
      let executed = Emulator.run_steps ~hooks emu k in
      if executed <> k then
        QCheck.Test.fail_reportf "seed %d: fast tier halted after %d < %d"
          seed executed k
      else begin
        let ck = Checkpoint.capture emu ~hierarchy ~predictor in
        let resume () =
          let pipe =
            Checkpoint.to_pipeline ck cfg ~policy:(Registry.find_exn policy)
              program
          in
          Pipeline.run pipe;
          ( Pipeline.stats pipe,
            Array.copy (Pipeline.regs pipe),
            Array.copy (Pipeline.mem pipe) )
        in
        let s1, r1, m1 = resume () in
        let s2, r2, m2 = resume () in
        if not (s1 = s2 && r1 = r2 && m1 = m2) then
          QCheck.Test.fail_reportf
            "seed %d: two resumes from one checkpoint diverged" seed
        else if r1 <> oracle.Emulator.regs then
          QCheck.Test.fail_reportf
            "seed %d: resumed registers differ from the oracle" seed
        else if m1 <> oracle.Emulator.mem then
          QCheck.Test.fail_reportf
            "seed %d: resumed memory differs from the oracle" seed
        else if k + s1.Sim_stats.committed <> oracle.Emulator.retired then
          QCheck.Test.fail_reportf
            "seed %d: retired accounting %d fast + %d detailed <> %d oracle"
            seed k s1.Sim_stats.committed oracle.Emulator.retired
        else true
      end)

(* Rolling an emulator back to a checkpoint must reproduce the exact
   forward state, even after the live machine ran on. *)
let test_restore_emulator_rolls_back () =
  let seed = 7 in
  let program = Gen.random_program seed in
  let memory = Array.make 4096 0 in
  Gen.mem_init seed memory;
  let emu = Emulator.create ~memory program in
  let cfg = Gen.default_config in
  let hierarchy = Cache.Hierarchy.create cfg in
  let predictor = Predictor.create cfg in
  ignore (Emulator.run_steps emu 50 : int);
  let ck = Checkpoint.capture emu ~hierarchy ~predictor in
  let mark =
    (emu.Emulator.pc, emu.Emulator.retired, Array.copy emu.Emulator.regs,
     Array.copy emu.Emulator.mem)
  in
  Emulator.run emu;
  Checkpoint.restore_emulator ck emu;
  let pc, retired, regs, mem = mark in
  Alcotest.(check int) "pc restored" pc emu.Emulator.pc;
  Alcotest.(check int) "retired restored" retired emu.Emulator.retired;
  Alcotest.(check bool) "regs restored" true (regs = emu.Emulator.regs);
  Alcotest.(check bool) "memory restored" true (mem = emu.Emulator.mem)

(* --- sampled estimate accuracy --------------------------------------- *)

let check_sampled_error ~workload ~policy ~spec bound =
  let w = Suite.find_exn workload in
  let full =
    let pipe =
      Pipeline.create ~mem_init:w.Workload.mem_init Config.default
        ~policy:(Registry.find_exn policy) w.Workload.program
    in
    Pipeline.run pipe;
    (Pipeline.stats pipe).Sim_stats.cycles
  in
  let sp =
    match Sampler.parse spec with
    | Ok (Some s) -> s
    | _ -> Alcotest.failf "bad spec %s" spec
  in
  let r =
    Sampler.run ~mem_init:w.Workload.mem_init sp Config.default
      ~policy:(Registry.find_exn policy) w.Workload.program
  in
  let err =
    100.0
    *. float_of_int (r.Sampler.estimated_cycles - full)
    /. float_of_int full
  in
  if Float.abs err > bound then
    Alcotest.failf "%s/%s @ %s: sampled %d vs full %d = %.2f%% (> %.1f%%)"
      workload policy spec r.Sampler.estimated_cycles full err bound

let test_sampled_error_bound () =
  (* Specs matched to working-set size: the short compact kernel needs
     denser sampling for the same confidence. *)
  List.iter
    (fun (workload, spec) ->
      List.iter
        (fun policy -> check_sampled_error ~workload ~policy ~spec 2.0)
        [ "unsafe"; "levioso" ])
    [ ("stream", "2000:2000:10"); ("compact", "1000:1000:5") ]

let suite =
  ( "sampler",
    [
      Alcotest.test_case "sample spec parsing" `Quick test_parse_spec;
      Alcotest.test_case "run_steps hooks" `Quick test_run_steps_hooks;
      Alcotest.test_case "run_steps zero alloc" `Quick
        test_run_steps_zero_alloc;
      Alcotest.test_case "restore_emulator rolls back" `Quick
        test_restore_emulator_rolls_back;
      Alcotest.test_case "sampled error bound" `Slow test_sampled_error_bound;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        (prop_run_steps_matches_step
        :: List.map prop_checkpoint_fidelity Registry.names) )
