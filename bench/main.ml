(* The evaluation harness: regenerates every table and figure of the
   reconstructed Levioso evaluation (see DESIGN.md section 4 for the
   experiment index and EXPERIMENTS.md for paper-vs-measured records).

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- --list     # experiment ids
     dune exec bench/main.exe -- --only fig3 --only table2
     dune exec bench/main.exe -- --quick    # subsampled workloads
     dune exec bench/main.exe -- --bechamel # micro-benchmarks too
     dune exec bench/main.exe -- --json results.json  # machine-readable
     dune exec bench/main.exe -- -j 8       # matrix on 8 domains
     dune exec bench/main.exe -- --no-cache # ignore bench/.cache
     dune exec bench/main.exe -- --audit    # restriction provenance
                                            # (implies --no-cache)
     dune exec bench/main.exe -- --sample 5000:2000:20  # two-tier sampled
                                            # engine: cycles become
                                            # estimates (implies
                                            # --no-cache, excludes
                                            # --audit)
     dune exec bench/main.exe -- --progress # live status line (stderr)
     dune exec bench/main.exe -- --progress-file progress.json
     dune exec bench/main.exe -- --metrics metrics.prom  # OpenMetrics
     dune exec bench/main.exe -- --remote levioso.sock   # submit the whole
                                            # matrix to a levioso_serve
                                            # daemon (results
                                            # bit-identical to local)
     dune exec bench/main.exe -- --cache-prune 30  # delete stale store
                                            # entries, run nothing

   Every (config, workload, policy) simulation the figures need is
   independent, so the matrix is computed up front on a domain pool
   (-j N, default all cores) and memoized; figures then only read the
   memo.  Results are deterministic: -j N output is bit-identical to
   -j 1.  Finished cells are also persisted under bench/.cache keyed by
   config digest + workload + policy + a digest of this executable, so
   a warm re-run (e.g. --only fig3 after a full run) replays from disk
   instead of re-simulating; any rebuild or config change misses.  Each
   run also drops BENCH_matrix.json (per-cell wall clock + totals) in
   the working directory. *)

module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Cache = Levioso_uarch.Cache
module Summary = Levioso_uarch.Summary
module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Registry = Levioso_core.Registry
module Explain = Levioso_core.Explain
module Annotation = Levioso_core.Annotation
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite
module Gadget = Levioso_attack.Gadget
module Harness = Levioso_attack.Harness
module Report = Levioso_util.Report
module Stats = Levioso_util.Stats
module Parallel = Levioso_util.Parallel
module Run_cache = Levioso_uarch.Run_cache
module Monitor = Levioso_telemetry.Monitor
module Hostprof = Levioso_telemetry.Hostprof
module Sampler = Levioso_uarch.Sampler
module Serve_protocol = Levioso_serve.Protocol
module Serve_client = Levioso_serve.Client

let quick = ref false
let only : string list ref = ref []
let run_bechamel = ref false
let json_out : string option ref = ref None
let jobs = ref 0 (* 0 = auto: Domain.recommended_domain_count *)
let use_cache = ref true
let cache_dir = ref (Filename.concat "bench" ".cache")
let audit = ref false
let sample : Sampler.spec option ref = ref None
let progress = ref false
let progress_file : string option ref = ref None
let metrics_file : string option ref = ref None

(* --remote SOCKET: the whole matrix is submitted to a levioso_serve
   daemon instead of being simulated in-process.  The daemon's cell
   execution makes exactly the same calls as [simulate], so figures and
   --json output are bit-identical either way. *)
let remote : string option ref = ref None
let cache_prune : int option ref = ref None

(* Live heartbeat for the matrix prefetch.  Strictly observational: the
   monitor never touches cell computation, so --json output stays
   bit-identical with it on or off (and across -j N). *)
let monitor : Monitor.t option ref = ref None

let effective_jobs () = if !jobs > 0 then !jobs else Parallel.default_size ()

let workloads () =
  if !quick then List.filteri (fun i _ -> i mod 2 = 0) Suite.all else Suite.all

let paper_schemes = Registry.paper_schemes

(* sweep axes, shared between the figures and the parallel prefetch *)
let fig5_sizes () = if !quick then [ 48; 96 ] else [ 48; 96; 192 ]

let fig6_predictors =
  [ Config.Always_taken; Config.Bimodal; Config.Gshare; Config.Tage ]

let fig7_budgets () = if !quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16 ]
let sweep_schemes = [ "delay"; "dom"; "stt"; "levioso" ]

let fig8_schemes =
  [
    "fence"; "delay"; "dom"; "stt"; "nda"; "levioso-static"; "levioso";
    "levioso-ctrl";
  ]

(* ------------------------------------------------------------------ *)
(* shared simulation matrix: one run per (config, workload, policy)   *)
(* ------------------------------------------------------------------ *)

(* Pipelines are too big to cache whole (8 MB of simulated memory each),
   so each cell keeps its counters plus the machine-readable summary the
   --json report and the on-disk cache reuse. *)
type cell_result = {
  stats : Sim_stats.t;
  summary : Json.t;
  wall_s : float;
  source : string; (* "sim" | "disk" | "sampled" *)
  host : Json.t;
      (* host self-profiling phases (wall clock + Gc.quick_stat deltas);
         lands in BENCH_matrix.json, deliberately NOT in the --json
         summaries, which are byte-compared across -j N *)
}

let matrix : (Config.t * string * string, cell_result) Hashtbl.t =
  Hashtbl.create 256

let matrix_mutex = Mutex.create ()
let disk : Run_cache.t option ref = ref None

(* Two-tier sampled cell: the Sampler replaces Pipeline.run, and the
   extrapolated cycle estimate is written into stats.cycles so every
   figure (they all read stats.cycles) transparently plots estimates.
   The summary keeps the sampling block (estimate, error bound, interval
   accounting) for the --json export. *)
let simulate_sampled sp config (w : Workload.t) policy =
  let t0 = Unix.gettimeofday () in
  let r, run_span =
    Hostprof.measure (fun () ->
        Sampler.run ~mem_init:w.Workload.mem_init sp config
          ~policy:(Registry.find_exn policy) w.Workload.program)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let summary = Summary.of_sampled ~workload:w.Workload.name ~policy r in
  let stats = r.Sampler.stats in
  stats.Sim_stats.cycles <- r.Sampler.estimated_cycles;
  {
    stats;
    summary;
    wall_s;
    source = "sampled";
    host = Hostprof.phases_to_json [ ("run", run_span) ];
  }

let simulate config (w : Workload.t) policy =
  match !sample with
  | Some sp -> simulate_sampled sp config w policy
  | None ->
  let t0 = Unix.gettimeofday () in
  (* Each cell gets a private recorder, so -j N stays bit-identical. *)
  let audit_rec =
    if !audit then Some (Explain.audit_for w.Workload.program) else None
  in
  let pipe, create_span =
    Hostprof.measure (fun () ->
        Pipeline.create ~mem_init:w.Workload.mem_init ?audit:audit_rec config
          ~policy:(Registry.find_exn policy) w.Workload.program)
  in
  let (), run_span = Hostprof.measure (fun () -> Pipeline.run pipe) in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    stats = Pipeline.stats pipe;
    summary = Summary.of_pipeline ~workload:w.Workload.name ~policy pipe;
    wall_s;
    source = "sim";
    host =
      Hostprof.phases_to_json [ ("create", create_span); ("run", run_span) ];
  }

let compute_cell config (w : Workload.t) policy =
  match !disk with
  | None -> simulate config w policy
  | Some cache -> (
    let workload = w.Workload.name in
    let fresh () =
      let c = simulate config w policy in
      Run_cache.store cache ~config ~workload ~policy c.summary;
      c
    in
    let replayed, replay_span =
      Hostprof.measure (fun () ->
          match Run_cache.find cache ~config ~workload ~policy with
          | None -> None
          | Some summary -> (
            (* the stored summary carries everything the figures read; an
               entry from a different schema generation is a miss, not a
               misread *)
            match Schema.check ~what:"cached summary" summary with
            | Error _ -> None
            | Ok () -> (
              match
                Option.map Sim_stats.of_json (Json.member "stats" summary)
              with
              | Some (Ok stats) -> Some (stats, summary)
              | Some (Error _) | None -> None)))
    in
    match replayed with
    | None -> fresh ()
    | Some (stats, summary) ->
      {
        stats;
        summary;
        wall_s = replay_span.Hostprof.wall_s;
        source = "disk";
        host = Hostprof.phases_to_json [ ("replay", replay_span) ];
      })

(* Memoized, thread-safe access: the simulation itself runs outside the
   lock (the prefetch pass deduplicates keys, so no cell is computed
   twice), and figures running after the prefetch hit the memo. *)
let get_cell config (w : Workload.t) policy =
  let key = (config, w.Workload.name, policy) in
  match Mutex.protect matrix_mutex (fun () -> Hashtbl.find_opt matrix key) with
  | Some c -> c
  | None ->
    let c = compute_cell config w policy in
    Mutex.protect matrix_mutex (fun () ->
        match Hashtbl.find_opt matrix key with
        | Some first -> first
        | None ->
          Hashtbl.replace matrix key c;
          c)

let cell w policy = get_cell Config.default w policy
let run_stats config w policy = (get_cell config w policy).stats

let norm_time w policy =
  let base = (cell w "unsafe").stats.Sim_stats.cycles in
  float_of_int (cell w policy).stats.Sim_stats.cycles /. float_of_int base

(* Exactly the cells each experiment reads — the parallel prefetch must
   neither miss one (it would serialize into the figure) nor invent one
   (the --json export would differ between -j 1 and -j N). *)
let cells_of id =
  let ws = workloads () in
  let cross configs ws ps =
    List.concat_map
      (fun c -> List.concat_map (fun w -> List.map (fun p -> (c, w, p)) ps) ws)
      configs
  in
  let dflt ps = cross [ Config.default ] ws ps in
  match id with
  | "fig2" -> dflt [ "delay"; "levioso" ]
  | "fig3" -> dflt (("unsafe" :: paper_schemes) @ [ "levioso-ctrl" ])
  | "fig4" -> dflt paper_schemes
  | "fig5" ->
    cross
      (List.map
         (fun n -> { Config.default with Config.rob_size = n })
         (fig5_sizes ()))
      ws
      ("unsafe" :: sweep_schemes)
  | "fig6" ->
    cross
      (List.map
         (fun p -> { Config.default with Config.predictor = p })
         fig6_predictors)
      ws
      ("unsafe" :: sweep_schemes)
  | "fig7" ->
    cross
      (List.map
         (fun k -> { Config.default with Config.depset_budget = k })
         (fig7_budgets ()))
      ws [ "levioso" ]
    @ dflt [ "unsafe"; "levioso-ctrl"; "levioso-static"; "delay" ]
  | "fig8" -> dflt ("unsafe" :: fig8_schemes)
  | "fig9" ->
    cross [ Config.default ] Levioso_workload.Levsuite.all
      ("unsafe" :: paper_schemes)
  | "audit" -> if !audit then dflt paper_schemes else []
  | _ -> []

(* One batched submission for the whole matrix; the daemon streams the
   results back in submission order and the memo is filled from them, so
   figures afterwards never simulate locally. *)
let remote_fetch socket (todo : (Config.t * Workload.t * string) list) =
  let cells =
    List.map
      (fun (c, (w : Workload.t), p) ->
        {
          Serve_protocol.config = c;
          workload = w.Workload.name;
          policy = p;
          audit = !audit;
          sample = !sample;
        })
      todo
  in
  let todo_arr = Array.of_list todo in
  let client = Serve_client.connect socket in
  Fun.protect
    ~finally:(fun () -> Serve_client.close client)
    (fun () ->
      let results, stats =
        Serve_client.submit ~cache:!use_cache client cells
          ~on_result:(fun _ (r : Serve_client.result_cell) ->
            match !monitor with
            | Some m -> Monitor.item_done m ~wall_s:r.Serve_client.wall_s ()
            | None -> ())
          ~timings:(fun (tm : Serve_client.timings) ->
            (* stderr only: --json on stdout must stay byte-identical to
               a local run of the same matrix *)
            Printf.eprintf
              "--remote: trace %s — ack %.1fms, first result %s, drain \
               %.2fs, total %.2fs\n\
               %!"
              tm.Serve_client.trace
              (tm.Serve_client.ack_s *. 1e3)
              (match tm.Serve_client.first_result_s with
              | Some s -> Printf.sprintf "%.2fs" s
              | None -> "-")
              tm.Serve_client.drain_s tm.Serve_client.total_s)
      in
      if stats.Serve_protocol.failed > 0 then
        Printf.eprintf
          "--remote: %d of %d cells failed daemon-side (falling back to \
           local simulation for them)\n\
           %!"
          stats.Serve_protocol.failed (List.length cells);
      Array.iteri
        (fun i (r : Serve_client.result_cell) ->
          let config, (w : Workload.t), p = todo_arr.(i) in
          (* a failed cell is reported and left out of the memo: the
             figure pass simulates it locally like any other miss, so
             one bad cell no longer aborts the whole bench run *)
          match r.Serve_client.error with
          | Some msg ->
            Printf.eprintf "--remote: cell %d (%s/%s) failed: %s\n%!" i
              w.Workload.name p msg
          | None ->
          let summary = r.Serve_client.summary in
          let stats =
            match Option.map Sim_stats.of_json (Json.member "stats" summary) with
            | Some (Ok stats) -> stats
            | Some (Error msg) ->
              failwith ("--remote: undecodable stats in result: " ^ msg)
            | None -> failwith "--remote: result summary has no stats block"
          in
          (* sampled cells: figures read stats.cycles, which must carry
             the extrapolated estimate — same fixup as simulate_sampled *)
          (match
             Option.bind
               (Json.member "sampled" summary)
               (Json.member "estimated_cycles")
           with
          | Some (Json.Int n) -> stats.Sim_stats.cycles <- n
          | _ -> ());
          Hashtbl.replace matrix
            (config, w.Workload.name, p)
            {
              stats;
              summary;
              wall_s = r.Serve_client.wall_s;
              source = "remote-" ^ r.Serve_client.source;
              (* host self-profiling is local by definition; remote cells
                 have no host phases *)
              host = Json.Obj [];
            })
        results)

let prefetch_matrix ids =
  let seen = Hashtbl.create 256 in
  let todo =
    List.filter
      (fun ((c, w, p) : Config.t * Workload.t * string) ->
        let key = (c, w.Workload.name, p) in
        if Hashtbl.mem seen key || Hashtbl.mem matrix key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      (List.concat_map cells_of ids)
  in
  let n = effective_jobs () in
  (match !monitor with
  | Some m -> Monitor.set_total m (List.length todo)
  | None -> ());
  (match !remote with
  | Some socket -> remote_fetch socket todo
  | None ->
    let work ((c, w, p) : Config.t * Workload.t * string) =
      (match !monitor with
      | Some m -> Monitor.start m (w.Workload.name ^ "/" ^ p)
      | None -> ());
      let r = get_cell c w p in
      match !monitor with
      | Some m -> Monitor.item_done m ~wall_s:r.wall_s ()
      | None -> ()
    in
    if n > 1 && List.length todo > 1 then
      Parallel.with_pool ~size:n (fun pool -> Parallel.iter pool work todo)
    else List.iter work todo);
  match !monitor with Some m -> Monitor.close m | None -> ()

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print_endline (Report.section "table1: simulated core configuration");
  print_endline
    (Report.table ~header:[ "parameter"; "value" ]
       ~rows:(List.map (fun (k, v) -> [ k; v ]) (Config.to_rows Config.default)))

let table2 () =
  print_endline
    (Report.section
       "table2: security evaluation — secret recovery per gadget x defense");
  let secret = 42 in
  let rows =
    List.map
      (fun policy ->
        let v1 = Harness.run ~policy (Gadget.bounds_check_bypass ~secret ()) in
        let v1t =
          Harness.run_timed ~policy
            (Gadget.bounds_check_bypass ~timing:true ~secret ())
        in
        let reg = Harness.run ~policy (Gadget.register_secret ~secret ()) in
        let regt =
          Harness.run_timed ~policy (Gadget.register_secret ~timing:true ~secret ())
        in
        [
          policy;
          Harness.verdict_to_string v1;
          Harness.verdict_to_string v1t;
          Harness.verdict_to_string reg;
          Harness.verdict_to_string regt;
        ])
      ("unsafe" :: paper_schemes)
  in
  print_endline
    (Report.table
       ~header:
         [
           "defense";
           "v1 (probe)";
           "v1 (rdcycle)";
           "reg-secret (probe)";
           "reg-secret (rdcycle)";
         ]
       ~rows);
  print_endline
    "Paper claim reproduced: the taint-tracking prior stops only the sandbox\n\
     gadget; delay/fence/levioso stop both threat models."

let table3 () =
  print_endline (Report.section "table3: compiler statistics per workload");
  let header =
    [ "workload"; "instrs"; "branches"; "reconv"; "region"; "dep-free"; "max set" ]
  in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let annotation = Annotation.analyze w.Workload.program in
        let find k = List.assoc k (Annotation.stats annotation) in
        [
          w.Workload.name;
          find "static instrs";
          find "branches";
          find "reconv coverage";
          find "mean region";
          find "dep-free instrs";
          find "max dep set";
        ])
      (workloads ())
  in
  print_endline (Report.table ~header ~rows)

let fig2 () =
  print_endline
    (Report.section
       "fig2: motivation — transmitters actually dependent on unresolved branches");
  let header =
    [ "workload"; "ready under any older branch"; "true dependency only" ]
  in
  let pct restricted total =
    if total = 0 then "0.0%"
    else
      Printf.sprintf "%.1f%%"
        (100.0 *. float_of_int restricted /. float_of_int total)
  in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let d = cell w "delay" in
        let l = cell w "levioso" in
        [
          w.Workload.name;
          pct d.stats.Sim_stats.restricted_transmitters
            d.stats.Sim_stats.committed_transmitters;
          pct l.stats.Sim_stats.restricted_transmitters
            l.stats.Sim_stats.committed_transmitters;
        ])
      (workloads ())
  in
  print_endline (Report.table ~header ~rows);
  print_endline
    "The gap between the columns is the paper's motivating observation: most\n\
     transmitters that sit behind *some* unresolved branch do not truly\n\
     depend on it."

let fig3 () =
  print_endline
    (Report.section "fig3 (headline): normalized execution time vs unsafe baseline");
  let schemes = paper_schemes @ [ "levioso-ctrl" ] in
  let header = "workload" :: schemes in
  let body =
    List.map
      (fun (w : Workload.t) ->
        w.Workload.name
        :: List.map (fun p -> Printf.sprintf "%.2f" (norm_time w p)) schemes)
      (workloads ())
  in
  let series p = List.map (fun w -> norm_time w p) (workloads ()) in
  let mean_row label f =
    label :: List.map (fun p -> Printf.sprintf "%.2f" (f (series p))) schemes
  in
  let rows =
    body @ [ mean_row "geomean" Stats.geomean; mean_row "arith-mean" Stats.mean ]
  in
  print_endline (Report.table ~header ~rows);
  print_endline
    (Report.grouped_bars ~title:"normalized execution time (1.0 = unsafe)"
       ~group_labels:(List.map (fun w -> w.Workload.name) (workloads ()))
       ~series:(List.map (fun p -> (p, series p)) [ "delay"; "dom"; "levioso" ])
       ());
  let overhead p = Stats.overhead_pct ~baseline:1.0 (Stats.geomean (series p)) in
  Printf.printf
    "\nPaper (abstract): prior defenses 51%% and 43%% overhead, Levioso 23%%.\n\
     Measured geomean overheads: delay %+.1f%%, dom %+.1f%%, levioso %+.1f%%\n\
     (stt %+.1f%%, fence %+.1f%%).  Ordering and the large prior-vs-levioso\n\
     gap are reproduced; see EXPERIMENTS.md for absolute-value discussion.\n"
    (overhead "delay") (overhead "dom") (overhead "levioso") (overhead "stt")
    (overhead "fence")

let fig4 () =
  print_endline
    (Report.section
       "fig4: where the time goes — transmitter stall cycles per kilo-instruction");
  let header = "workload" :: paper_schemes in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        w.Workload.name
        :: List.map
             (fun p ->
               let s = (cell w p).stats in
               Printf.sprintf "%.0f"
                 (1000.0
                 *. float_of_int s.Sim_stats.transmit_stall_cycles
                 /. float_of_int (max 1 s.Sim_stats.committed)))
             paper_schemes)
      (workloads ())
  in
  print_endline (Report.table ~header ~rows)

let sweep_geomeans configs schemes =
  List.map
    (fun (label, config) ->
      let norm w p =
        let base = (run_stats config w "unsafe").Sim_stats.cycles in
        let c = (run_stats config w p).Sim_stats.cycles in
        float_of_int c /. float_of_int base
      in
      ( label,
        List.map
          (fun p -> Stats.geomean (List.map (fun w -> norm w p) (workloads ())))
          schemes ))
    configs

let print_sweep ~title ~axis configs schemes =
  print_endline (Report.section title);
  let results = sweep_geomeans configs schemes in
  let rows =
    List.map
      (fun (label, values) ->
        label :: List.map (fun v -> Printf.sprintf "%.2f" v) values)
      results
  in
  print_endline (Report.table ~header:(axis :: schemes) ~rows)

let fig5 () =
  print_sweep ~title:"fig5: sensitivity — geomean normalized time vs ROB size"
    ~axis:"ROB"
    (List.map
       (fun n -> (string_of_int n, { Config.default with Config.rob_size = n }))
       (fig5_sizes ()))
    sweep_schemes

let fig6 () =
  print_sweep
    ~title:"fig6: sensitivity — geomean normalized time vs branch predictor"
    ~axis:"predictor"
    (List.map
       (fun p ->
         ( Config.predictor_kind_to_string p,
           { Config.default with Config.predictor = p } ))
       fig6_predictors)
    sweep_schemes

let fig7 () =
  print_endline
    (Report.section "fig7: ablation — Levioso dependency-set hardware budget");
  let budgets = fig7_budgets () in
  let rows =
    List.map
      (fun k ->
        let config = { Config.default with Config.depset_budget = k } in
        let norm w =
          let base = (cell w "unsafe").stats.Sim_stats.cycles in
          let c = (run_stats config w "levioso").Sim_stats.cycles in
          float_of_int c /. float_of_int base
        in
        [
          string_of_int k;
          Printf.sprintf "%.2f" (Stats.geomean (List.map norm (workloads ())));
        ])
      budgets
  in
  let reference_row name =
    [
      Printf.sprintf "(%s)" name;
      Printf.sprintf "%.2f"
        (Stats.geomean (List.map (fun w -> norm_time w name) (workloads ())));
    ]
  in
  let reference =
    List.map reference_row [ "levioso-ctrl"; "levioso-static"; "delay" ]
  in
  print_endline
    (Report.table
       ~header:[ "budget K"; "geomean norm. time" ]
       ~rows:(rows @ reference));
  print_endline
    "Small budgets overflow to delay-like conservatism.  The control-only\n\
     variant is cheapest but forfeits operand-propagation coverage, and the\n\
     static-hint variant shows what dynamic instance tracking buys."

let fig8 () =
  print_endline
    (Report.section
       "fig8 (appendix): the full defense spectrum — geomean normalized time");
  let series =
    List.map
      (fun p ->
        (p, Stats.geomean (List.map (fun w -> norm_time w p) (workloads ()))))
      fig8_schemes
  in
  print_endline
    (Report.bar_chart ~title:"geomean normalized execution time (1.0 = unsafe)" ()
       series);
  print_endline
    "Sandbox-model schemes (stt, nda) sit low but leak register secrets;
     among comprehensive schemes the ordering is
     fence > delay > dom > levioso-static > levioso > levioso-ctrl(unsound)."

let fig9 () =
  print_endline
    (Report.section
       "fig9 (appendix): compiled-from-source (Lev) workloads under each scheme");
  let lev = Levioso_workload.Levsuite.all in
  let header = "workload" :: paper_schemes in
  let norm w p =
    let base = (run_stats Config.default w "unsafe").Sim_stats.cycles in
    let c = (run_stats Config.default w p).Sim_stats.cycles in
    float_of_int c /. float_of_int base
  in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        w.Workload.name
        :: List.map (fun p -> Printf.sprintf "%.2f" (norm w p)) paper_schemes)
      lev
  in
  let geo =
    "geomean"
    :: List.map
         (fun p ->
           Printf.sprintf "%.2f" (Stats.geomean (List.map (fun w -> norm w p) lev)))
         paper_schemes
  in
  print_endline (Report.table ~header ~rows:(rows @ [ geo ]));
  print_endline
    "Compiler-generated code (inlined calls, materialized conditions) keeps
     the same defense ordering as the hand-written kernels."

(* The explanation experiment: how much of each defense's restriction is
   over-restriction (no true branch dependency)?  Reads the audit
   section the --audit flag adds to every cell summary. *)
let audit_exp () =
  print_endline
    (Report.section
       "audit: restriction necessity — share of restricted cycles without a \
        true branch dependency");
  if not !audit then
    print_endline
      "  (skipped: run with --audit to collect restriction provenance)"
  else begin
    let share w p =
      match Json.member "audit" (cell w p).summary with
      | Some a -> (
        match
          ( Json.member "cycles" a,
            Option.bind (Json.member "unnecessary" a) (Json.member "cycles") )
        with
        | Some total, Some unnec ->
          Some (Json.to_int_exn total, Json.to_int_exn unnec)
        | _ -> None)
      | None -> None
    in
    let render = function
      | None -> "-"
      | Some (0, _) -> "0.0% (of 0)"
      | Some (total, unnec) ->
        Printf.sprintf "%.1f%% (of %d)"
          (100.0 *. float_of_int unnec /. float_of_int total)
          total
    in
    let header = "workload" :: paper_schemes in
    let rows =
      List.map
        (fun (w : Workload.t) ->
          w.Workload.name
          :: List.map (fun p -> render (share w p)) paper_schemes)
        (workloads ())
    in
    print_endline (Report.table ~header ~rows);
    print_endline
      "Levioso restricts (almost) only true dependencies — its unnecessary\n\
       share stays at the bottom of every row — while branch-blind schemes\n\
       (fence/delay/dom) charge most of their stall cycles to instructions\n\
       with no dependency on the unresolved branch."
  end

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* The pipeline hot-loop regression check: simulated cycles per second of
   wall clock AND minor words allocated per simulated cycle (the
   zero-alloc detailed-core regression metric), on every defense scheme.
   Rows are also stashed for BENCH_matrix.json so CI can gate on them. *)
let microbench_results : Json.t list ref = ref []

let sim_speed () =
  print_endline
    (Report.section
       "bechamel: simulator throughput (Mcyc/s, minor words/cycle)");
  microbench_results := [];
  List.iter
    (fun (wname, policy) ->
      let w = Suite.find_exn wname in
      let pipe, create_span =
        Hostprof.measure (fun () ->
            Pipeline.create ~mem_init:w.Workload.mem_init Config.default
              ~policy:(Registry.find_exn policy) w.Workload.program)
      in
      let (), run_span = Hostprof.measure (fun () -> Pipeline.run pipe) in
      let cyc = (Pipeline.stats pipe).Sim_stats.cycles in
      let words_per_cyc =
        run_span.Hostprof.minor_words /. float_of_int (max 1 cyc)
      in
      Printf.printf "  %-10s %-14s %9d cyc  %7.2f Mcyc/s  %8.2f words/cyc\n"
        wname policy cyc
        (float_of_int cyc /. run_span.Hostprof.wall_s /. 1e6)
        words_per_cyc;
      microbench_results :=
        Json.Obj
          [
            ("workload", Json.String wname);
            ("policy", Json.String policy);
            ("cycles", Json.Int cyc);
            ( "mcyc_per_s",
              Json.Float (float_of_int cyc /. run_span.Hostprof.wall_s /. 1e6)
            );
            ("minor_words_per_cycle", Json.Float words_per_cyc);
            ( "host",
              Hostprof.phases_to_json
                [ ("create", create_span); ("run", run_span) ] );
          ]
        :: !microbench_results)
    (List.map (fun p -> ("matmul", p)) ("unsafe" :: paper_schemes)
    @ [ ("graph", "delay"); ("compact", "stt") ]);
  microbench_results := List.rev !microbench_results

let bechamel () =
  sim_speed ();
  print_endline
    (Report.section "bechamel: simulator micro-benchmarks (Bechamel)");
  let open Bechamel in
  let open Toolkit in
  let small = Suite.find_exn "matmul" in
  let sim policy () =
    let pipe =
      Pipeline.create ~mem_init:small.Workload.mem_init Config.default
        ~policy:(Registry.find_exn policy) small.Workload.program
    in
    Pipeline.run pipe
  in
  let tests =
    [
      Test.make ~name:"pipeline-unsafe" (Staged.stage (sim "unsafe"));
      Test.make ~name:"pipeline-levioso" (Staged.stage (sim "levioso"));
      Test.make ~name:"compiler-pass"
        (Staged.stage (fun () ->
             ignore (Annotation.analyze small.Workload.program : Annotation.t)));
      Test.make ~name:"emulator"
        (Staged.stage (fun () ->
             ignore
               (Levioso_ir.Emulator.run_program ~mem_words:(1 lsl 20)
                  ~init:(fun s -> small.Workload.mem_init s.Levioso_ir.Emulator.mem)
                  small.Workload.program
                 : Levioso_ir.Emulator.state)));
    ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun t ->
      let results = analyze (benchmark t) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-20s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-20s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("audit", audit_exp);
  ]

(* BENCH_matrix.json: the run's trajectory artifact — per-cell wall clock
   and provenance (simulated vs replayed from bench/.cache) plus totals.
   Timing-only by design: the deterministic results live in --json. *)
let write_bench_matrix ~total_wall_s =
  let cells =
    Hashtbl.fold (fun key c acc -> (key, c) :: acc) matrix []
    |> List.sort (fun ((c1, w1, p1), _) ((c2, w2, p2), _) ->
           compare (w1, p1, c1) (w2, p2, c2))
  in
  let entry ((config, w, p), c) =
    Json.Obj
      [
        ("workload", Json.String w);
        ("policy", Json.String p);
        ("config", Json.String (Run_cache.config_key config));
        ("default_config", Json.Bool (config = Config.default));
        ("cycles", Json.Int c.stats.Sim_stats.cycles);
        ("wall_s", Json.Float c.wall_s);
        ("source", Json.String c.source);
        ("host", c.host);
      ]
  in
  let simulated = List.filter (fun (_, c) -> c.source = "sim") cells in
  let artifact =
    Schema.tag
      ([
        ("schema", Json.String "levioso-bench-matrix/v1");
        ("jobs", Json.Int (effective_jobs ()));
        ("cache", Json.Bool (!disk <> None));
        ( "remote",
          match !remote with
          | None -> Json.Null
          | Some socket -> Json.String socket );
        ("quick", Json.Bool !quick);
        ("audit", Json.Bool !audit);
        ( "sample",
          match !sample with
          | None -> Json.String "off"
          | Some sp -> Json.String (Sampler.spec_to_string sp) );
        ("cells", Json.Int (List.length cells));
        ("simulated", Json.Int (List.length simulated));
        ("replayed", Json.Int (List.length cells - List.length simulated));
        ( "cell_wall_s",
          Json.Float (List.fold_left (fun a (_, c) -> a +. c.wall_s) 0.0 cells)
        );
        ("total_wall_s", Json.Float total_wall_s);
      ]
      (* quick runs skip the microbench entirely: omit the key rather
         than commit an empty list claiming a measurement that never
         happened (readers treat absent and present alike) *)
      @ (match !microbench_results with
        | [] -> []
        | results -> [ ("microbench", Json.List results) ])
      @ [ ("matrix", Json.List (List.map entry cells)) ])
  in
  let oc = open_out "BENCH_matrix.json" in
  Json.to_channel oc artifact;
  output_char oc '\n';
  close_out oc

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--bechamel" :: rest ->
      run_bechamel := true;
      parse rest
    | "--only" :: id :: rest ->
      only := id :: !only;
      parse rest
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 0 -> jobs := n
      | Some _ | None ->
        prerr_endline "-j expects a non-negative integer (0 = auto)";
        exit 2);
      parse rest
    | "--cache" :: rest ->
      use_cache := true;
      parse rest
    | "--no-cache" :: rest ->
      use_cache := false;
      parse rest
    | "--audit" :: rest ->
      audit := true;
      parse rest
    | "--sample" :: spec :: rest ->
      (match Sampler.parse spec with
      | Ok s -> sample := s
      | Error msg ->
        prerr_endline ("--sample: " ^ msg);
        exit 2);
      parse rest
    | "--cache-dir" :: dir :: rest ->
      cache_dir := dir;
      use_cache := true;
      parse rest
    | "--cache-prune" :: days :: rest ->
      (match int_of_string_opt days with
      | Some d when d >= 0 -> cache_prune := Some d
      | Some _ | None ->
        prerr_endline "--cache-prune expects a non-negative day count";
        exit 2);
      parse rest
    | "--remote" :: socket :: rest ->
      remote := Some socket;
      parse rest
    | "--progress" :: rest ->
      progress := true;
      parse rest
    | "--progress-file" :: file :: rest ->
      progress_file := Some file;
      parse rest
    | "--metrics" :: file :: rest ->
      metrics_file := Some file;
      parse rest
    | "--list" :: _ ->
      List.iter (fun (id, _) -> print_endline id) experiments;
      print_endline "bechamel";
      exit 0
    | arg :: _ ->
      prerr_endline ("unknown argument: " ^ arg ^ " (try --list)");
      exit 2
  in
  parse args;
  (* Store maintenance mode: prune and exit, running nothing. *)
  (match !cache_prune with
  | Some days ->
    let cache = Run_cache.create ~dir:!cache_dir () in
    let removed = Run_cache.prune cache ~max_age_days:days in
    Printf.printf "cache-prune: removed %d entries older than %d days from %s\n"
      removed days !cache_dir;
    exit 0
  | None -> ());
  (* Audited runs can't replay from disk: cached summaries have no audit
     section and the cache key doesn't cover the flag. *)
  if !audit then use_cache := false;
  if !sample <> None then begin
    (* Sampled cells are estimates; never let them replay as (or pollute
       the cache of) exact runs, and the two-tier engine has no per-event
       audit stream to record. *)
    if !audit then begin
      prerr_endline "--sample cannot be combined with --audit";
      exit 2
    end;
    use_cache := false
  end;
  (* With --remote, caching is the daemon's business (gated per batch by
     --no-cache); a local store would never be consulted. *)
  if !use_cache && !remote = None then
    disk := Some (Run_cache.create ~dir:!cache_dir ());
  if !progress || !progress_file <> None || !metrics_file <> None then
    monitor :=
      Some
        (* status line on a TTY, auto-suppressed when stderr is piped;
           --progress forces it regardless *)
        (Monitor.create ~ansi:stderr ~force_ansi:!progress
           ?json_path:!progress_file ?metrics_path:!metrics_file
           ~label:"bench" ());
  let t_start = Unix.gettimeofday () in
  let selected id = !only = [] || List.mem id !only in
  let ids = List.filter_map (fun (id, _) -> if selected id then Some id else None) experiments in
  (* Fill the matrix — on the domain pool, or via one batched daemon
     submission with --remote — before any figure prints; the figures
     then read memoized cells in deterministic order. *)
  (try prefetch_matrix ids
   with Serve_client.Server_error msg ->
     prerr_endline ("--remote: " ^ msg);
     exit 1);
  List.iter (fun (id, f) -> if selected id then f ()) experiments;
  (* every default-config cell, with its stall breakdown, through the
     same serializer levioso_sim --json uses *)
  (match !json_out with
  | None -> ()
  | Some file ->
    let cells =
      Hashtbl.fold
        (fun (config, w, p) c acc ->
          if config = Config.default then ((w, p), c.summary) :: acc else acc)
        matrix []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd
    in
    let oc = open_out file in
    Json.to_channel oc (Summary.runs cells);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote %d run summaries to %s\n" (List.length cells) file);
  (* micro-benchmarks run on full sweeps by default; skip with --quick.
     They run before write_bench_matrix so their throughput and
     minor-words-per-cycle rows land in the artifact ("bech" is kept as
     an --only alias for older scripts). *)
  if
    !run_bechamel
    || List.mem "bechamel" !only
    || List.mem "bech" !only
    || ((not !quick) && !only = [])
  then bechamel ();
  write_bench_matrix ~total_wall_s:(Unix.gettimeofday () -. t_start)
