(** Blocking client for the {!Protocol} exchange — the library behind
    [levioso_serve submit], [bench --remote] and the serve tests.

    One [t] is one connection; it is not thread-safe (use one connection
    per thread — the daemon multiplexes across connections, not within
    one). *)

exception Server_error of string
(** Raised on connection failures, protocol violations and server-side
    [error] frames. *)

type t

val connect : string -> t
(** Connect to a daemon socket and consume its [hello] frame.
    @raise Server_error on refusal or protocol-generation mismatch. *)

val close : t -> unit

val pool : t -> int
(** Worker count advertised in the server's [hello]. *)

val server_cache : t -> bool
(** Whether the server has a shard store attached. *)

val ping : t -> unit
val list : t -> (string * string) list * string list
val stats : t -> Levioso_telemetry.Json.t

val prune : t -> max_age_days:int -> int
(** Entries removed from the daemon's store. *)

val shutdown : t -> unit
(** Ask the daemon to drain and exit; returns once it acknowledged. *)

type result_cell = {
  source : string;  (** ["sim"] or ["cache"] *)
  wall_s : float;  (** daemon-side wall clock for this cell *)
  summary : Levioso_telemetry.Json.t;
}

val submit :
  ?cache:bool ->
  ?on_result:(int -> result_cell -> unit) ->
  t ->
  Protocol.cell list ->
  result_cell array * Protocol.done_stats
(** Submit a batch and block until its [done] frame.  [on_result] fires
    per streamed result (in submission order) for progress rendering.
    The returned array is indexed like the submitted list.
    [cache] (default [true]) gates the daemon's shared store for this
    batch. *)
