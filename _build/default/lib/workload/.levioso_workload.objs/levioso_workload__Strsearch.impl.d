lib/workload/strsearch.ml: Array Layout Levioso_ir Levioso_util Workload
