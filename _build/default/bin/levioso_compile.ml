(* levioso_compile: run the Levioso compiler pass and show its output —
   annotated disassembly plus the static-analysis statistics the paper's
   compiler table reports.  Input is a suite workload or an assembly file. *)

module Ir = Levioso_ir.Ir
module Parser = Levioso_ir.Parser
module Encoding = Levioso_ir.Encoding
module Annotation = Levioso_core.Annotation
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite

let load_program workload file =
  match (workload, file) with
  | Some name, None -> Ok (name, (Suite.find_exn name).Workload.program)
  | None, Some path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    Result.map (fun p -> (path, p)) (Parser.parse text)
  | Some _, Some _ -> Error "pass either --workload or a file, not both"
  | None, None -> Error "pass --workload NAME or an assembly file"

let main workload file stats_only =
  match load_program workload file with
  | Error msg ->
    prerr_endline ("levioso_compile: " ^ msg);
    `Error (false, msg)
  | Ok (name, program) ->
    let annotation = Annotation.analyze program in
    Printf.printf "; %s: %d instructions\n" name (Array.length program);
    if not stats_only then print_string (Annotation.disassemble annotation);
    Printf.printf "\n; compiler statistics\n";
    List.iter
      (fun (k, v) -> Printf.printf ";   %-18s %s\n" k v)
      (Annotation.stats annotation);
    (* binary encoding: prove the hints fit in the branch words *)
    let hints pc =
      match Annotation.hint_for annotation pc with
      | Some (Annotation.Reconverges_at r) -> Some r
      | Some Annotation.No_reconvergence | None -> None
    in
    (match Encoding.encode ~hints program with
    | Ok words ->
      Printf.printf ";   %-18s %d bytes (8 per instruction, hints inline)\n"
        "encoded size" (8 * Array.length words)
    | Error e ->
      Printf.printf ";   %-18s pc %d: %s\n" "encoding" e.Encoding.pc
        e.Encoding.reason);
    `Ok ()

open Cmdliner

let workload_arg =
  let doc = "Suite workload to compile. Known: " ^ String.concat ", " Suite.names in
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly file.")

let stats_only_arg =
  Arg.(value & flag & info [ "s"; "stats-only" ] ~doc:"Skip the disassembly.")

let cmd =
  let doc = "run the Levioso reconvergence-annotation pass" in
  Cmd.v (Cmd.info "levioso_compile" ~doc)
    Term.(ret (const main $ workload_arg $ file_arg $ stats_only_arg))

let () = exit (Cmd.eval cmd)
