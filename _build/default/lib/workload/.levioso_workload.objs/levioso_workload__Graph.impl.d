lib/workload/graph.ml: Array Layout Levioso_ir Levioso_util Workload
