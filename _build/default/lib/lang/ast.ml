type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Logic_and
  | Logic_or

type expr =
  | Lit of int
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Load of expr
  | Rdcycle of expr option
  | Call of string * expr list

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | If of expr * block * block option
  | While of expr * block
  | Store of expr * expr
  | Flush of expr
  | Expr_stmt of expr
  | Return of expr option
  | Halt

and block = stmt list

type fn = {
  name : string;
  params : string list;
  body : block;
  line : int;
}

type program = fn list

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Logic_and -> "&&"
  | Logic_or -> "||"

let rec expr_to_string = function
  | Lit n -> string_of_int n
  | Var x -> x
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Neg e -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Not e -> Printf.sprintf "(!%s)" (expr_to_string e)
  | Load e -> Printf.sprintf "load(%s)" (expr_to_string e)
  | Rdcycle None -> "rdcycle()"
  | Rdcycle (Some e) -> Printf.sprintf "rdcycle(%s)" (expr_to_string e)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
