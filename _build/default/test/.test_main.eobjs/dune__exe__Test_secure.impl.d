test/test_secure.ml: Alcotest Levioso_core Levioso_ir Levioso_uarch Printf
