(* mcf-like pointer chasing: a shuffled singly-linked ring traversed for a
   fixed number of steps.  The chase is a pure serial dependence chain with
   only the predictable counted loop around it, so every defense should be
   near-free here — the "low bar" of the suite, like mcf's chase phases. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let nodes = 8192  (* 16k words: larger than L1, resident in L2 *)
let steps = 5000

(* node i occupies two words at data_base + 2i: (next pointer, payload) *)
let node_addr i = Layout.data_base + (2 * i)

let mem_init mem =
  let rng = Layout.rng 1 in
  let order = Array.init nodes Fun.id in
  Rng.shuffle rng order;
  (* Link the shuffled permutation into one ring. *)
  Array.iteri
    (fun pos node ->
      let next = order.((pos + 1) mod nodes) in
      mem.(node_addr node) <- node_addr next;
      mem.(node_addr node + 1) <- (node * 31) mod 97)
    order

let build b =
  let ptr = Builder.fresh_reg b in
  let sum = Builder.fresh_reg b in
  let value = Builder.fresh_reg b in
  let i = Builder.fresh_reg b in
  Builder.mov b ptr (Ir.Imm (node_addr 0));
  Builder.mov b sum (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm steps) (fun () ->
      Builder.load b value (Ir.Reg ptr) (Ir.Imm 1);
      Builder.add b sum (Ir.Reg sum) (Ir.Reg value);
      Builder.load b ptr (Ir.Reg ptr) (Ir.Imm 0));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg sum);
  Builder.halt b

let workload =
  Workload.make ~name:"pchase"
    ~description:"pointer chasing over a shuffled linked ring (mcf-like)"
    ~build ~mem_init
