lib/ir/parser.ml: Array Buffer Hashtbl Ir List Option Printf String
