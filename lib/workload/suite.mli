(** The synthetic benchmark suite standing in for SPEC CPU2017 (see
    DESIGN.md for the substitution argument).  Order is the plotting order
    of the evaluation figures. *)

val all : Workload.t list
(** The eleven kernels. *)

val extras : Workload.t list
(** Workloads resolvable through {!find} but excluded from [all] (and so
    from the default matrix): currently the >1M-instruction
    ["stream-xl"] used by the sampled-simulation evaluation. *)

val names : string list

val find : string -> Workload.t option

val find_exn : string -> Workload.t
(** @raise Invalid_argument on unknown names. *)
