(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that
    simulations, workload generation and property tests are bit-reproducible
    from a seed.  The generator is SplitMix64 (Steele, Lea & Flood, 2014):
    tiny state, excellent statistical quality for simulation purposes, and
    trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
