(** Structured trace sink.

    Generalizes the simulator's text tracer: every microarchitectural
    event is a typed record carrying cycle, sequence number, PC and
    stage, and a sink decides the encoding:

    - [Jsonl]: one minified JSON object per line — easy to grep/jq.
    - [Chrome]: the Chrome [trace_event] array format, loadable in
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.
      Each stage renders as its own track (tid), one cycle = 1 µs.

    Sinks support sampling ([~every:k] keeps every k-th event) so
    whole-run traces of long workloads stay cheap.  A sink must be
    {!close}d: the Chrome format needs its closing bracket, and both
    formats buffer. *)

type event = {
  cycle : int;
  seq : int;  (** -1 when the event has no associated instruction *)
  pc : int;  (** -1 when the event has no associated PC *)
  stage : string;  (** "fetch", "issue", "complete", "commit", … *)
  args : (string * Json.t) list;  (** extra event-specific payload *)
}

val event_to_json : event -> Json.t
(** Flat object: cycle/seq/pc/stage then [args] fields (seq and pc are
    omitted when negative). *)

type format =
  | Jsonl
  | Chrome

val format_of_filename : string -> format
(** [.jsonl] → [Jsonl], anything else (including [.json]) → [Chrome]. *)

type sink

val to_channel : ?every:int -> format:format -> out_channel -> sink
(** [every] defaults to 1 (keep everything); [every = k] keeps events
    0, k, 2k, … of the stream.  The channel is NOT closed by {!close} —
    the caller owns it. *)

val of_fn : ?every:int -> (event -> unit) -> sink
(** Deliver (sampled) events to a callback; for tests and custom
    consumers. *)

val emit : sink -> event -> unit

val begin_process : sink -> name:string -> unit
(** Start a new logical process (one simulator run): subsequent events
    group under a fresh pid, and the Chrome encoding emits a
    [process_name] metadata record so Perfetto labels the track.  Not
    subject to sampling.  No-op track-wise for [of_fn] sinks. *)

val close : sink -> unit
(** Writes the Chrome footer (idempotent) and flushes. *)

val seen : sink -> int
(** Events offered to the sink (before sampling). *)

val written : sink -> int
(** Events actually emitted (after sampling). *)
