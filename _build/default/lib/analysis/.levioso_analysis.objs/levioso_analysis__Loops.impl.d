lib/analysis/loops.ml: Array Domtree Hashtbl Levioso_ir List
