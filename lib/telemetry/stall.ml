type cause =
  | Policy_gate
  | Operand_wait
  | Lsq_order
  | Rob_full
  | Exec_port

let all_causes = [ Policy_gate; Operand_wait; Lsq_order; Rob_full; Exec_port ]

let num_causes = List.length all_causes

let cause_index = function
  | Policy_gate -> 0
  | Operand_wait -> 1
  | Lsq_order -> 2
  | Rob_full -> 3
  | Exec_port -> 4

let cause_of_index = function
  | 0 -> Policy_gate
  | 1 -> Operand_wait
  | 2 -> Lsq_order
  | 3 -> Rob_full
  | 4 -> Exec_port
  | i -> invalid_arg (Printf.sprintf "Stall.cause_of_index: %d" i)

let cause_to_string = function
  | Policy_gate -> "policy_gate"
  | Operand_wait -> "operand_wait"
  | Lsq_order -> "lsq_order"
  | Rob_full -> "rob_full"
  | Exec_port -> "exec_port"

(* One flat int array, row per PC — charging is a single increment on the
   per-cycle hot path. *)
type t = {
  num_pcs : int;
  cells : int array;  (* num_pcs * num_causes *)
  totals : int array;  (* per cause *)
}

let create ~num_pcs =
  if num_pcs < 0 then invalid_arg "Stall.create: negative num_pcs";
  {
    num_pcs;
    cells = Array.make (max 1 (num_pcs * num_causes)) 0;
    totals = Array.make num_causes 0;
  }

let charge t ~cause ~pc =
  if pc < 0 || pc >= t.num_pcs then
    invalid_arg (Printf.sprintf "Stall.charge: pc %d out of range" pc);
  let ci = cause_index cause in
  t.cells.((pc * num_causes) + ci) <- t.cells.((pc * num_causes) + ci) + 1;
  t.totals.(ci) <- t.totals.(ci) + 1

let accumulate dst src =
  if dst.num_pcs <> src.num_pcs then
    invalid_arg "Stall.accumulate: different num_pcs";
  for i = 0 to Array.length src.cells - 1 do
    dst.cells.(i) <- dst.cells.(i) + src.cells.(i)
  done;
  for i = 0 to num_causes - 1 do
    dst.totals.(i) <- dst.totals.(i) + src.totals.(i)
  done

let count t cause = t.totals.(cause_index cause)

let total t = Array.fold_left ( + ) 0 t.totals

let by_cause t = List.map (fun c -> (c, count t c)) all_causes

let per_pc_total t ~pc =
  if pc < 0 || pc >= t.num_pcs then 0
  else begin
    let s = ref 0 in
    for ci = 0 to num_causes - 1 do
      s := !s + t.cells.((pc * num_causes) + ci)
    done;
    !s
  end

let pc_causes t pc =
  List.filter_map
    (fun c ->
      let v = t.cells.((pc * num_causes) + cause_index c) in
      if v > 0 then Some (c, v) else None)
    all_causes

let top_pcs t ~k =
  let charged = ref [] in
  for pc = t.num_pcs - 1 downto 0 do
    let tot = per_pc_total t ~pc in
    if tot > 0 then charged := (pc, tot) :: !charged
  done;
  !charged
  |> List.sort (fun (pa, a) (pb, b) ->
         match compare b a with
         | 0 -> compare pa pb
         | c -> c)
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun (pc, tot) -> (pc, tot, pc_causes t pc))

let to_json ?(top_k = 10) t =
  let top = top_pcs t ~k:top_k in
  Json.Obj
    [
      ("total", Json.Int (total t));
      ( "by_cause",
        Json.Obj
          (List.map
             (fun (c, n) -> (cause_to_string c, Json.Int n))
             (by_cause t)) );
      ( "top_pcs",
        Json.List
          (List.map
             (fun (pc, tot, causes) ->
               Json.Obj
                 [
                   ("pc", Json.Int pc);
                   ("total", Json.Int tot);
                   ( "causes",
                     Json.Obj
                       (List.map
                          (fun (c, n) -> (cause_to_string c, Json.Int n))
                          causes) );
                 ])
             top) );
    ]

let top_k = top_pcs

let to_rows t =
  List.map
    (fun (c, n) -> ("stall " ^ cause_to_string c, string_of_int n))
    (by_cause t)
  @ [ ("stall total", string_of_int (total t)) ]
