module Ir = Levioso_ir.Ir
module Cfg = Levioso_ir.Cfg
module Reconvergence = Levioso_analysis.Reconvergence
module Control_dep = Levioso_analysis.Control_dep
module Branch_dep = Levioso_analysis.Branch_dep
module Loops = Levioso_analysis.Loops

type hint =
  | Reconverges_at of int
  | No_reconvergence

type t = {
  program : Ir.program;
  cfg : Cfg.t;
  hints : hint option array;  (* indexed by pc *)
}

let analyze program =
  let cfg = Cfg.build program in
  let reconv = Reconvergence.compute cfg in
  let hints = Array.make (Array.length program) None in
  List.iter
    (fun pc ->
      let hint =
        match Reconvergence.point reconv pc with
        | Reconvergence.Reconverges_at r -> Reconverges_at r
        | Reconvergence.No_reconvergence -> No_reconvergence
      in
      hints.(pc) <- Some hint)
    (Reconvergence.branch_pcs reconv);
  { program; cfg; hints }

let hint_for t pc = t.hints.(pc)

let program t = t.program

let coverage t =
  let branches = ref 0 and proper = ref 0 in
  Array.iter
    (fun h ->
      match h with
      | Some (Reconverges_at _) ->
        incr branches;
        incr proper
      | Some No_reconvergence -> incr branches
      | None -> ())
    t.hints;
  if !branches = 0 then 1.0 else float_of_int !proper /. float_of_int !branches

let disassemble t =
  let annot pc =
    match t.hints.(pc) with
    | Some (Reconverges_at r) -> Printf.sprintf "reconv @%d" r
    | Some No_reconvergence -> "reconv none"
    | None -> ""
  in
  Ir.program_to_string ~annot t.program

let stats t =
  let n = Array.length t.program in
  let branch_pcs = Cfg.branch_pcs t.cfg in
  let num_branches = List.length branch_pcs in
  let cd = Control_dep.compute t.cfg in
  let region_sizes =
    List.map (fun pc -> float_of_int (Control_dep.region_size cd pc)) branch_pcs
  in
  let bd = Branch_dep.compute t.cfg in
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let loop_info = Loops.compute t.cfg in
  [
    ("static instrs", string_of_int n);
    ("branches", string_of_int num_branches);
    ( "loops (max depth)",
      Printf.sprintf "%d (%d)"
        (List.length (Loops.headers loop_info))
        (Loops.max_depth loop_info) );
    ("reconv coverage", Printf.sprintf "%.0f%%" (100.0 *. coverage t));
    ("mean region", Printf.sprintf "%.1f" (mean region_sizes));
    ( "dep-free instrs",
      Printf.sprintf "%.0f%%" (100.0 *. Branch_dep.independent_fraction bd) );
    ("mean dep set", Printf.sprintf "%.1f" (Branch_dep.mean_set_size bd));
    ("max dep set", string_of_int (Branch_dep.max_set_size bd));
  ]
