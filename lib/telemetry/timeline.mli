(** Instruction-lifecycle timelines.

    Consumes the pipeline's stage events (fetch / issue / complete /
    commit / branch-resolve / squash) plus the per-cycle
    stall-attribution hook and renders a pipeline-viewer trace in the
    Kanata 0004 log format, loadable by Konata
    (https://github.com/shioyadan/Konata).

    The module is deliberately generic: it knows nothing about the
    simulator's instruction or stall types — callers feed it cycles,
    sequence numbers, PCs and pre-rendered cause strings.  The
    [Levioso_uarch.Konata] adapter does the translation from
    [Pipeline.event] / [Stall.cause].

    Stage mapping (lane 0):
    - [F]  the fetch cycle;
    - [I]  in-window waiting to issue (this is where stall-cause lane-1
           segments and detail labels land);
    - [X]  issue to completion;
    - [C]  completed, waiting to commit (instructions that are done at
           dispatch — jumps, halt — go straight from [F] to [C]).

    Committed instructions get a retire record; squashed instructions a
    flush record, so wrong-path work shows up struck-through in Konata.

    Recording is observational only: the builder never mutates or
    queries the pipeline, so simulation results are bit-identical with a
    timeline attached or not (asserted by test). *)

(** A fixed-capacity ring buffer.  Reused by the pipeline for its
    recent-event window (deadlock diagnostics) and by the audit layer
    style of bounded capture. *)
module Ring : sig
  type 'a t

  val create : int -> 'a t
  (** @raise Invalid_argument if the capacity is not positive. *)

  val capacity : 'a t -> int

  val length : 'a t -> int
  (** Number of elements currently held ([<= capacity]). *)

  val pushed : 'a t -> int
  (** Total number of pushes ever, including overwritten ones. *)

  val push : 'a t -> 'a -> unit
  (** Appends, overwriting the oldest element when full. *)

  val to_list : 'a t -> 'a list
  (** Oldest first. *)

  val clear : 'a t -> unit
end

type t

val format_version : int
(** Version of the [#levioso-timeline] header comment; bumped on any
    change to how the trace is rendered (golden tests pin the bytes). *)

val create : ?window:int * int -> ?disasm:(int -> string) -> unit -> t
(** [window = (a, b)] records only instructions fetched in cycles
    [a..b] inclusive (events for other instructions are dropped on
    arrival, so memory stays proportional to the window).
    [disasm pc] renders the left-pane label for an instruction at
    static [pc]; defaults to ["pc=<n>"].
    @raise Invalid_argument if [a > b] or [a < 0]. *)

(** {1 Recording} — call in simulation order; cycles must be
    non-decreasing overall and increasing per instruction stage. *)

val fetch : t -> cycle:int -> seq:int -> pc:int -> unit
val issue : t -> cycle:int -> seq:int -> unit
val complete : t -> cycle:int -> seq:int -> unit
val commit : t -> cycle:int -> seq:int -> unit

val resolve : t -> cycle:int -> seq:int -> taken:bool -> mispredicted:bool -> unit
(** Branch resolution; recorded as a hover detail label. *)

val squash : t -> cycle:int -> boundary:int -> count:int -> unit
(** Squash of the [count] instructions younger than [boundary]
    (sequence numbers [boundary+1 .. boundary+count]). *)

val stall : t -> cycle:int -> seq:int -> cause:string -> code:string -> unit
(** One waiting cycle charged to [cause] (full name, for hover text);
    [code] is the short lane-1 stage label Konata colors by (e.g.
    ["Gp"] for a policy gate).  Consecutive cycles with the same cause
    are merged into one segment at render time. *)

(** {1 Inspection} *)

type interval = {
  iv_seq : int;
  iv_pc : int;
  iv_fetch : int;
  iv_issue : int option;
  iv_complete : int option;
  iv_commit : int option;
  iv_squash : int option;
  iv_stalls : (int * string) list;  (** (cycle, cause), oldest first *)
}

val intervals : t -> interval list
(** Recorded fetch instances, ordered by (sequence number, fetch
    cycle).  Sequence numbers repeat when a squashed instruction's seq
    was reused by a re-fetch — each instance keeps its own record, so
    wrong-path work stays visible. *)

val recorded : t -> int
(** Fetch instances currently recorded (after windowing). *)

val seen : t -> int
(** Fetches observed, including those outside the window. *)

(** {1 Rendering} *)

val to_konata_string : ?meta:(string * string) list -> t -> string
(** The full Kanata 0004 log: [Kanata\t0004] header, a
    schema-versioned [#levioso-timeline] comment (plus one [#key\tvalue]
    comment per [meta] pair — Konata ignores [#] lines), then the
    cycle-ordered op stream.  Byte-deterministic for a given recording
    (golden-tested). *)

val write_konata : ?meta:(string * string) list -> t -> out_channel -> unit
