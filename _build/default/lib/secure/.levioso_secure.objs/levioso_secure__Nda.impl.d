lib/secure/nda.ml: Levioso_ir Levioso_uarch List
