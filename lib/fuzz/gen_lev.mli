(** Seeded generation of Lev {e source text}, exercising the full
    compiler path (lexer → parser → resolver → inlining codegen →
    optimizer) rather than just the codegen back end.

    Programs are generated as ASTs (so the reference interpreter can run
    them without a parse step), then printed to concrete syntax; the
    differential oracle compiles the {e printed text}, which makes the
    printer↔parser agreement part of what is being fuzzed.

    Guarantees by construction: the resolver accepts every program
    (helpers are declared before use, never recursive, called with the
    right arity); all loops count a dedicated variable down to zero, so
    execution always terminates; [load]s stay inside the seeded data
    window and [store]s inside a disjoint output window; [rdcycle] is
    never generated (its value differs between the interpreter and the
    machine, so it must not reach memory). *)

val mem_words : int
val data_base : int
(** Loads read from [\[data_base, data_base + 256)]. *)

val out_base : int
(** Stores write into [\[out_base, out_base + 64)]. *)

val random_ast : int -> Levioso_lang.Ast.program
(** [random_ast seed] — deterministic in [seed]. *)

val to_source : Levioso_lang.Ast.program -> string
(** Concrete syntax that lexes, parses and resolves back to an
    equivalent program. *)

val random_source : int -> string
(** [to_source (random_ast seed)]. *)

val init_mem : int -> int array -> unit
(** Seed-derived contents for the data window. *)
