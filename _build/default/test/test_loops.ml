module Cfg = Levioso_ir.Cfg
module Parser = Levioso_ir.Parser
module Loops = Levioso_analysis.Loops
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite
module Compiler = Levioso_lang.Compiler

let analyze src =
  let cfg = Cfg.build (Parser.parse_exn src) in
  (cfg, Loops.compute cfg)

let test_straight_line_has_no_loops () =
  let _, l = analyze "mov r1, #1\nhalt" in
  Alcotest.(check (list int)) "no headers" [] (Loops.headers l);
  Alcotest.(check int) "depth 0" 0 (Loops.max_depth l)

let test_single_loop () =
  let cfg, l =
    analyze
      {|
        mov r1, #0
      head:
        bge r1, #10, out
        add r1, r1, #1
        jump head
      out:
        halt
      |}
  in
  (match Loops.loops l with
  | [ loop ] ->
    Alcotest.(check int) "header is the head block" (Cfg.block_of_pc cfg 1) loop.Loops.header;
    Alcotest.(check bool) "body has header and latch" true
      (List.mem loop.Loops.header loop.Loops.body
      && List.mem loop.Loops.back_edge_source loop.Loops.body)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 loop, got %d" (List.length other)));
  Alcotest.(check int) "max depth 1" 1 (Loops.max_depth l)

let test_nested_loops () =
  let cfg, l =
    analyze
      {|
        mov r1, #0
      outer:
        bge r1, #3, done
        mov r2, #0
      inner:
        bge r2, #3, next
        add r2, r2, #1
        jump inner
      next:
        add r1, r1, #1
        jump outer
      done:
        halt
      |}
  in
  Alcotest.(check int) "two loops" 2 (List.length (Loops.loops l));
  Alcotest.(check int) "max depth 2" 2 (Loops.max_depth l);
  let inner_body_block = Cfg.block_of_pc cfg 4 (* add r2 *) in
  Alcotest.(check int) "inner body depth 2" 2 (Loops.depth_of_block l inner_body_block);
  let outer_only_block = Cfg.block_of_pc cfg 6 (* next: add r1 *) in
  Alcotest.(check int) "outer-only depth 1" 1 (Loops.depth_of_block l outer_only_block)

let test_loop_depths_on_compiled_code () =
  let program =
    Compiler.compile_exn
      {|
        fn main() {
          var i = 0;
          while (i < 4) {
            var j = 0;
            while (j < 4) { j = j + 1; }
            i = i + 1;
          }
          store(64, i);
        }
      |}
  in
  let l = Loops.compute (Cfg.build program) in
  Alcotest.(check int) "two loops from source" 2 (List.length (Loops.loops l));
  Alcotest.(check int) "nesting detected" 2 (Loops.max_depth l)

let test_workloads_loop_shapes () =
  let count name =
    let w = Suite.find_exn name in
    List.length (Loops.headers (Loops.compute (Cfg.build w.Workload.program)))
  in
  Alcotest.(check int) "pchase: one loop" 1 (count "pchase");
  Alcotest.(check bool) "matmul: >= 3 nested loops" true (count "matmul" >= 3);
  Alcotest.(check bool) "bsearch: >= 2 loops" true (count "bsearch" >= 2)

let test_header_dominates_body () =
  (* cross-check against the dominator tree on a branchy program *)
  let cfg, l =
    analyze
      {|
        mov r1, #0
      a:
        bge r1, #6, z
        rem r2, r1, #2
        beq r2, #0, even
        add r3, r3, #1
        jump step
      even:
        add r4, r4, #1
      step:
        add r1, r1, #1
        jump a
      z:
        halt
      |}
  in
  let pd =
    Levioso_analysis.Domtree.compute ~num_nodes:(Cfg.num_blocks cfg)
      ~entry:(Cfg.entry cfg)
      ~succs:(fun b -> (Cfg.block cfg b).Cfg.succs)
      ~preds:(fun b -> (Cfg.block cfg b).Cfg.preds)
  in
  List.iter
    (fun loop ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "header dominates every body block" true
            (Levioso_analysis.Domtree.dominates pd loop.Loops.header b))
        loop.Loops.body)
    (Loops.loops l)

let suite =
  ( "loops",
    [
      Alcotest.test_case "straight line" `Quick test_straight_line_has_no_loops;
      Alcotest.test_case "single loop" `Quick test_single_loop;
      Alcotest.test_case "nested loops" `Quick test_nested_loops;
      Alcotest.test_case "compiled code" `Quick test_loop_depths_on_compiled_code;
      Alcotest.test_case "workload shapes" `Quick test_workloads_loop_shapes;
      Alcotest.test_case "header dominates body" `Quick test_header_dominates_body;
    ] )
