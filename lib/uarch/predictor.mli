(** Branch direction predictors.

    Targets are always known statically in this ISA (direct branches only),
    so prediction is direction-only; there is no BTB and no Spectre-v2
    surface.

    History discipline: there is a single (speculative) global history
    register.  {!predict} shifts the predicted direction in; on a squash
    the pipeline rolls it back with {!restore} to the snapshot captured at
    the mispredicted branch and shifts the now-known direction with
    {!force_history}.  {!update} trains at commit using the snapshot
    captured at prediction time, so history-indexed tables train the entry
    that actually made the prediction. *)

type t

type snapshot

val create : Config.t -> t

val predict : t -> pc:int -> bool
(** Predicted direction (true = taken) for the branch at [pc]; shifts the
    speculative history. *)

val update : t -> pc:int -> history:snapshot -> taken:bool -> unit
(** Commit-time training. *)

val snapshot : t -> snapshot
(** Capture the speculative history (taken when a branch is decoded,
    before {!predict} shifts it). *)

val restore : t -> snapshot -> unit
(** Roll the speculative history back after a squash. *)

val force_history : t -> taken:bool -> unit
(** Shift a now-known direction into the speculative history (used after
    [restore] to account for the resolved branch itself). *)

type state
(** Full predictor state — history {e and} learned tables — for
    checkpointed simulation.  {!snapshot} deliberately carries only the
    history (per-branch squash recovery); [state] is the deep copy a
    checkpoint needs. *)

val save_state : t -> state

val restore_state : t -> state -> unit
(** @raise Invalid_argument when the state was saved from a predictor of
    a different kind or size. *)
