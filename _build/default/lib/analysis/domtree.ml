type t = {
  num_nodes : int;
  entry : int;
  idom : int array;  (* -1 = none *)
  rpo_index : int array;  (* -1 = unreachable *)
  preds : int -> int list;
  succs : int -> int list;
  mutable frontiers : int list array option;
}

(* Reverse postorder from [entry]; unreachable nodes get index -1. *)
let reverse_postorder ~num_nodes ~entry ~succs =
  let visited = Array.make num_nodes false in
  let order = ref [] in
  let rec dfs n =
    if not visited.(n) then begin
      visited.(n) <- true;
      List.iter dfs (succs n);
      order := n :: !order
    end
  in
  dfs entry;
  let rpo = Array.of_list !order in
  let index = Array.make num_nodes (-1) in
  Array.iteri (fun i n -> index.(n) <- i) rpo;
  (rpo, index)

let compute ~num_nodes ~entry ~succs ~preds =
  let rpo, rpo_index = reverse_postorder ~num_nodes ~entry ~succs in
  let idom = Array.make num_nodes (-1) in
  idom.(entry) <- entry;
  (* Walk up the (partially built) dominator tree to the common ancestor,
     comparing by reverse-postorder index. *)
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun n ->
        if n <> entry then begin
          let processed_preds =
            List.filter (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0) (preds n)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(n) <> new_idom then begin
              idom.(n) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { num_nodes; entry; idom; rpo_index; preds; succs; frontiers = None }

let reachable t n = t.rpo_index.(n) >= 0

let idom t n =
  if n = t.entry then None
  else
    let d = t.idom.(n) in
    if d < 0 then None else Some d

let dominates t a b =
  if a = b then true
  else if not (reachable t a && reachable t b) then false
  else begin
    let rec climb n =
      if n = a then true
      else if n = t.entry then false
      else
        let d = t.idom.(n) in
        if d < 0 || d = n then false else climb d
    in
    climb b
  end

let compute_frontiers t =
  let df = Array.make t.num_nodes [] in
  for n = 0 to t.num_nodes - 1 do
    if reachable t n then begin
      let ps = List.filter (reachable t) (t.preds n) in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            (* Walk from each predecessor up to (but excluding) idom(n),
               recording n in the frontier of every node passed. *)
            let rec walk r =
              if r >= 0 && r <> t.idom.(n) then begin
                if not (List.mem n df.(r)) then df.(r) <- n :: df.(r);
                if r <> t.entry then walk t.idom.(r)
              end
            in
            walk p)
          ps
    end
  done;
  df

let dominance_frontier t n =
  let fs =
    match t.frontiers with
    | Some fs -> fs
    | None ->
      let fs = compute_frontiers t in
      t.frontiers <- Some fs;
      fs
  in
  fs.(n)
