(** The compiler side of the Levioso co-design.

    For every conditional branch the pass computes the branch's
    {e reconvergence point} (the pc of its immediate post-dominator block)
    and encodes it as a per-branch hint.  In a real ISA this rides on an
    extended branch encoding or a hint prefix; here it is a sidecar table
    indexed by pc, which the hardware front end consults at decode.

    The hint is the entire software/hardware contract: the front end uses
    it to deactivate a branch's dependency region as soon as fetch passes
    the reconvergence pc, and needs nothing else from the compiler
    (dependency sets themselves are tracked per dynamic branch instance in
    hardware — see {!Levioso_policy}). *)

type hint =
  | Reconverges_at of int
      (** instructions fetched at or after this pc no longer depend on the
          branch's outcome for their existence *)
  | No_reconvergence
      (** the branch's arms only meet at program exit; its region never
          deactivates (conservative) *)

type t

val analyze : Levioso_ir.Ir.program -> t
(** Run the compiler pass (CFG construction, post-dominators,
    reconvergence). *)

val hint_for : t -> int -> hint option
(** [hint_for t pc] is the hint attached to the branch at [pc]; [None] for
    non-branch pcs. *)

val program : t -> Levioso_ir.Ir.program

val coverage : t -> float
(** Fraction of branches with a proper reconvergence point. *)

val disassemble : t -> string
(** Program listing with hint comments — what [levioso_compile] prints. *)

val stats : t -> (string * string) list
(** Compiler statistics for the evaluation table: static instructions,
    branches, reconvergence coverage, mean/max control-region size, and the
    static branch-dependency summary from {!Levioso_analysis.Branch_dep}. *)
