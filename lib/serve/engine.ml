module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sampler = Levioso_uarch.Sampler
module Summary = Levioso_uarch.Summary
module Sim_stats = Levioso_uarch.Sim_stats
module Run_cache = Levioso_uarch.Run_cache
module Registry = Levioso_core.Registry
module Explain = Levioso_core.Explain
module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Workload = Levioso_workload.Workload

type outcome = { summary : Json.t; source : string; wall_s : float }

let validate_cell (c : Protocol.cell) =
  let ( let* ) = Result.bind in
  let* () = Config.validate c.Protocol.config in
  let* () =
    match Catalog.find_workload c.Protocol.workload with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "unknown workload %S" c.Protocol.workload)
  in
  let* () =
    match Registry.find c.Protocol.policy with
    | Some _ -> Ok ()
    | None -> Error (Printf.sprintf "unknown policy %S" c.Protocol.policy)
  in
  if c.Protocol.audit && c.Protocol.sample <> None then
    Error "audit cannot be combined with sampling (no per-event stream)"
  else Ok ()

let cacheable (c : Protocol.cell) =
  (* Audited summaries carry provenance the key does not cover, and
     sampled summaries are estimates: neither may replay as (or shadow)
     an exact run — the same rule bench applies locally. *)
  (not c.Protocol.audit) && c.Protocol.sample = None

(* A stored summary is trusted only if it declares the current artifact
   schema and its stats block parses — mirroring bench's replay guard,
   so daemon replays are exactly as strict as local ones. *)
let replayable summary =
  match Schema.check ~what:"cached summary" summary with
  | Error _ -> false
  | Ok () -> (
    match Option.map Sim_stats.of_json (Json.member "stats" summary) with
    | Some (Ok _) -> true
    | Some (Error _) | None -> false)

let run_cell ?cache (c : Protocol.cell) =
  let w = Catalog.find_workload_exn c.Protocol.workload in
  let policy = Registry.find_exn c.Protocol.policy in
  let config = c.Protocol.config in
  let workload = c.Protocol.workload in
  let t0 = Unix.gettimeofday () in
  let replay =
    match cache with
    | Some store when cacheable c -> (
      match
        Run_cache.find store ~config ~workload ~policy:c.Protocol.policy
      with
      | Some summary when replayable summary -> Some summary
      | Some _ | None -> None)
    | _ -> None
  in
  match replay with
  | Some summary ->
    { summary; source = "cache"; wall_s = Unix.gettimeofday () -. t0 }
  | None ->
    let summary =
      match c.Protocol.sample with
      | Some sp ->
        let r =
          Sampler.run ~mem_init:w.Workload.mem_init sp config ~policy
            w.Workload.program
        in
        Summary.of_sampled ~workload ~policy:c.Protocol.policy r
      | None ->
        let audit =
          if c.Protocol.audit then Some (Explain.audit_for w.Workload.program)
          else None
        in
        (* Exactly the calls a local serial bench cell makes — same
           pipeline construction, same summarizer, no host section — so
           the streamed summary is bit-identical to an in-process run. *)
        let pipe =
          Pipeline.create ~mem_init:w.Workload.mem_init ?audit config ~policy
            w.Workload.program
        in
        Pipeline.run pipe;
        Summary.of_pipeline ~workload ~policy:c.Protocol.policy pipe
    in
    (match cache with
    | Some store when cacheable c ->
      Run_cache.store store ~config ~workload ~policy:c.Protocol.policy summary
    | _ -> ());
    { summary; source = "sim"; wall_s = Unix.gettimeofday () -. t0 }
