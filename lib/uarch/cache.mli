(** Set-associative caches and the two-level hierarchy.

    Caches here track only which lines are present (tags + LRU), not data —
    data always comes from the backing memory array; the cache determines
    *latency* and, crucially for Spectre, *persistent microarchitectural
    state* that survives pipeline squashes.

    Addresses are word addresses; a line holds [line_words] consecutive
    words. *)

type t

val create : Config.cache_geometry -> t

val line_of : t -> int -> int
(** Line address (word address / line size). *)

val lookup : t -> int -> bool
(** Presence check that updates LRU on hit (a cache access). *)

val fill : t -> int -> unit
(** Insert the line containing the address, evicting LRU if needed. *)

val invalidate : t -> int -> unit
(** Drop the line containing the address, if present. *)

val probe : t -> int -> bool
(** Presence check with no LRU side effect (attack-harness oracle). *)

val reset : t -> unit

(** {1 Snapshots}

    Full microarchitectural state capture (tags + LRU order) for
    checkpointed simulation: a snapshot of a warmed cache seeds the
    detailed tier of the two-tier engine. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** @raise Invalid_argument when the snapshot came from a cache with a
    different geometry. *)

(** {1 Hierarchy} *)

module Hierarchy : sig
  type h

  type level =
    | L1
    | L2
    | Memory

  val create : ?registry:Levioso_telemetry.Registry.t -> Config.t -> h
  (** Access counters register under a ["cache"] scope of [registry]
      (a private registry when omitted). *)

  val load : h -> int -> int * level
  (** [load h addr] performs a load access: returns the latency and the
      level that served it, filling lines on the way (this mutates cache
      state even for speculative wrong-path accesses — the side channel). *)

  val load_level : h -> int -> level
  (** Exactly [load] (same mutations, same counters) but returning only
      the serving level — the pipeline's allocation-free load path; pair
      with {!latency_of_level}. *)

  val latency_of_level : h -> level -> int
  (** The configured latency of a level (pure). *)

  val prefetch : h -> int -> unit
  (** Fill the line containing the address into L2 and L1 without counting
      as a demand access (the next-line prefetcher's fill path). *)

  val store_commit : h -> int -> unit
  (** Commit-time store: updates presence without stalling (write-allocate
      into L1/L2). *)

  val flush : h -> int -> unit
  (** Evict the line from every level (the [Flush] instruction). *)

  val probe : h -> int -> level
  (** Non-mutating: which level currently holds the address? *)

  val load_latency : h -> int -> int
  (** What [load] would cost right now, without mutating (timing oracle). *)

  val l1 : h -> t
  (** Direct access to the level-1 cache (tests and harnesses). *)

  val l2 : h -> t

  type hsnapshot
  (** Both levels' tag/LRU state (counters are not part of a snapshot). *)

  val snapshot : h -> hsnapshot

  val restore : h -> hsnapshot -> unit
  (** @raise Invalid_argument on a geometry mismatch. *)

  val stats : h -> (string * int) list
  (** Access counters: l1 hits/misses, l2 hits/misses. *)

  val registry : h -> Levioso_telemetry.Registry.t
  (** The ["cache"] scope holding this hierarchy's counters. *)

  val reset_stats : h -> unit
end
