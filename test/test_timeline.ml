(* The observability layer: ring buffer, Konata timeline rendering
   (golden-tested byte-for-byte), interval well-formedness over fuzzed
   programs and every registered policy, the no-perturbation guarantee
   (identical stats with tracers on or off, monitor on or off, -j 1 or
   -j 2), the live monitor's files, and host self-profiling spans. *)

module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Timeline = Levioso_telemetry.Timeline
module Ring = Levioso_telemetry.Timeline.Ring
module Monitor = Levioso_telemetry.Monitor
module Hostprof = Levioso_telemetry.Hostprof
module Parser = Levioso_ir.Parser
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Konata = Levioso_uarch.Konata
module Summary = Levioso_uarch.Summary
module Sim_stats = Levioso_uarch.Sim_stats
module Registry = Levioso_core.Registry
module Gen = Levioso_fuzz.Gen
module Parallel = Levioso_util.Parallel

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* --- ring buffer ------------------------------------------------------ *)

let test_ring () =
  let r = Ring.create 3 in
  Alcotest.(check int) "capacity" 3 (Ring.capacity r);
  Alcotest.(check (list int)) "empty" [] (Ring.to_list r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check int) "partial length" 2 (Ring.length r);
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (Ring.to_list r);
  Ring.push r 3;
  Ring.push r 4;
  Ring.push r 5;
  Alcotest.(check int) "full length" 3 (Ring.length r);
  Alcotest.(check int) "pushes counted through overwrites" 5 (Ring.pushed r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 3; 4; 5 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "clear resets length" 0 (Ring.length r);
  match Ring.create 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 should be rejected"

(* --- golden Konata traces --------------------------------------------- *)

let small_config = { Config.default with Config.mem_words = 65536 }

(* a loop with a data-dependent accumulator: the exit branch mispredicts,
   so the trace exercises fetch/issue/complete/commit, stall episodes and
   squash (flush) records under both policies *)
let golden_src =
  {|
    mov r1, #0
    mov r2, #0
  head:
    bge r1, #3, out
    load r3, [r1 + #1000]
    add r2, r2, r3
    add r1, r1, #1
    jump head
  out:
    store [r0 + #100], r2
    halt
  |}

let golden_mem_init mem =
  for i = 0 to 2 do
    mem.(1000 + i) <- 10 + i
  done

let golden_trace policy =
  let program = Parser.parse_exn golden_src in
  let tl = Konata.timeline program in
  let pipe =
    Pipeline.create ~mem_init:golden_mem_init small_config
      ~policy:(Registry.find_exn policy) program
  in
  Konata.attach tl pipe;
  Pipeline.run pipe;
  Timeline.to_konata_string
    ~meta:[ ("workload", "golden-loop"); ("policy", policy) ]
    tl

let check_golden policy file =
  let trace = golden_trace policy in
  Alcotest.(check bool) "Kanata 0004 header" true
    (String.length trace > 12 && String.sub trace 0 12 = "Kanata\t0004\n");
  Alcotest.(check bool) "schema-versioned comment" true
    (contains
       (Printf.sprintf "#levioso-timeline\tv%d" Timeline.format_version)
       trace);
  let golden = read_file file in
  if not (String.equal trace golden) then
    Alcotest.failf
      "rendered trace differs from %s (%d vs %d bytes); regenerate by \
       deleting the golden and re-running with LEVIOSO_BLESS=1"
      file (String.length trace) (String.length golden)

let bless_or_check policy file =
  if Sys.getenv_opt "LEVIOSO_BLESS" = Some "1" then begin
    let oc = open_out_bin file in
    output_string oc (golden_trace policy);
    close_out oc
  end
  else check_golden policy file

let test_golden_unsafe () = bless_or_check "unsafe" "golden_timeline_unsafe.kanata"
let test_golden_levioso () = bless_or_check "levioso" "golden_timeline_levioso.kanata"

let test_trace_mentions_squash_and_stalls () =
  let trace = golden_trace "levioso" in
  let lines = String.split_on_char '\n' trace in
  let retire suffix line =
    String.length line > 2
    && String.sub line 0 2 = "R\t"
    && String.length line > String.length suffix
    && String.sub line
         (String.length line - String.length suffix)
         (String.length suffix)
       = suffix
  in
  Alcotest.(check bool) "has commit retire records" true
    (List.exists (retire "\t0") lines);
  (* the loop-exit mispredict squashes wrong-path work: flush records *)
  Alcotest.(check bool) "has flush records" true
    (List.exists (retire "\t1") lines);
  (* levioso gates speculative loads: a policy-gate stall episode *)
  Alcotest.(check bool) "labels policy-gate stalls" true
    (contains "policy_gate" trace)

(* --- windowing -------------------------------------------------------- *)

let test_window_filters () =
  let program = Parser.parse_exn golden_src in
  let all = Konata.timeline program in
  let windowed = Konata.timeline ~window:(0, 2) program in
  let run tl =
    let pipe =
      Pipeline.create ~mem_init:golden_mem_init small_config
        ~policy:(Registry.find_exn "unsafe") program
    in
    Konata.attach tl pipe;
    Pipeline.run pipe
  in
  run all;
  run windowed;
  Alcotest.(check int) "window sees every fetch" (Timeline.seen all)
    (Timeline.seen windowed);
  Alcotest.(check bool) "window records fewer instructions" true
    (Timeline.recorded windowed < Timeline.recorded all);
  Alcotest.(check bool) "window records something" true
    (Timeline.recorded windowed > 0);
  List.iter
    (fun iv ->
      Alcotest.(check bool) "fetched inside window" true
        (iv.Timeline.iv_fetch >= 0 && iv.Timeline.iv_fetch <= 2))
    (Timeline.intervals windowed);
  match Timeline.create ~window:(5, 2) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted window should be rejected"

(* --- interval well-formedness over fuzzed programs -------------------- *)

let check_intervals ~seed ~policy =
  let program = Gen.random_program seed in
  let tl = Konata.timeline program in
  let pipe =
    Pipeline.create
      ~mem_init:(Gen.mem_init seed)
      Gen.default_config
      ~policy:(Registry.find_exn policy)
      program
  in
  Konata.attach tl pipe;
  Pipeline.run pipe;
  List.iter
    (fun iv ->
      let seq = iv.Timeline.iv_seq in
      let ordered what a b =
        if a > b then
          QCheck.Test.fail_reportf
            "seed %d, policy %s, seq %d: %s out of order (%d > %d)" seed
            policy seq what a b
      in
      (match iv.Timeline.iv_issue with
      | Some i -> ordered "fetch/issue" (iv.Timeline.iv_fetch + 1) i
      | None -> ());
      (match (iv.Timeline.iv_issue, iv.Timeline.iv_complete) with
      | Some i, Some c -> ordered "issue/complete" i c
      | None, Some _ ->
        QCheck.Test.fail_reportf
          "seed %d, policy %s, seq %d: completed without issuing" seed policy
          seq
      | _ -> ());
      (match (iv.Timeline.iv_complete, iv.Timeline.iv_commit) with
      | Some c, Some k -> ordered "complete/commit" c k
      | _ -> ());
      (match (iv.Timeline.iv_squash, iv.Timeline.iv_commit) with
      | Some _, Some _ ->
        QCheck.Test.fail_reportf
          "seed %d, policy %s, seq %d: squashed instruction committed" seed
          policy seq
      | _ -> ());
      match iv.Timeline.iv_squash with
      | Some s -> ordered "fetch/squash" (iv.Timeline.iv_fetch + 1) s
      | None -> ())
    (Timeline.intervals tl);
  true

let intervals_prop =
  QCheck.Test.make ~count:8 ~name:"stage intervals well-formed"
    QCheck.small_nat (fun n ->
      let seed = 1 + (n mod 1000) in
      List.for_all
        (fun policy -> check_intervals ~seed ~policy)
        Registry.names)

(* --- observability never perturbs results ----------------------------- *)

let run_golden ?observe () =
  let program = Parser.parse_exn golden_src in
  let pipe =
    Pipeline.create ~mem_init:golden_mem_init small_config
      ~policy:(Registry.find_exn "levioso") program
  in
  (match observe with
  | Some tl -> Konata.attach tl pipe
  | None -> ());
  Pipeline.run pipe;
  pipe

let test_timeline_is_side_channel () =
  let plain = run_golden () in
  let tl = Konata.timeline (Parser.parse_exn golden_src) in
  let observed = run_golden ~observe:tl () in
  Alcotest.(check string) "identical stats"
    (Json.to_string (Sim_stats.to_json (Pipeline.stats plain)))
    (Json.to_string (Sim_stats.to_json (Pipeline.stats observed)));
  Alcotest.(check string) "identical summaries"
    (Json.to_string
       (Summary.of_pipeline ~workload:"golden-loop" ~policy:"levioso" plain))
    (Json.to_string
       (Summary.of_pipeline ~workload:"golden-loop" ~policy:"levioso" observed));
  Alcotest.(check (array int)) "identical registers" (Pipeline.regs plain)
    (Pipeline.regs observed);
  Alcotest.(check bool) "identical memory" true
    (Pipeline.mem plain = Pipeline.mem observed);
  Alcotest.(check bool) "timeline saw the run" true (Timeline.recorded tl > 0)

(* a monitor-instrumented parallel sweep is bit-identical to the serial
   one: the monitor only ever observes, and Parallel.map keeps input
   order *)
let test_monitored_parallel_matrix_deterministic () =
  let cells =
    List.concat_map
      (fun policy -> List.map (fun seed -> (seed, policy)) [ 3; 5 ])
      [ "unsafe"; "levioso" ]
  in
  let sweep ~jobs =
    let json_path = Filename.temp_file "levioso_mon" ".json" in
    let m =
      Monitor.create ~json_path ~min_interval:0.0
        ~total:(List.length cells) ~label:"test-sweep" ()
    in
    let summaries =
      Parallel.with_pool ~size:jobs (fun pool ->
          Parallel.map pool
            (fun (seed, policy) ->
              Monitor.start m (Printf.sprintf "%d/%s" seed policy);
              let program = Gen.random_program seed in
              let pipe =
                Pipeline.create
                  ~mem_init:(Gen.mem_init seed)
                  Gen.default_config
                  ~policy:(Registry.find_exn policy)
                  program
              in
              Pipeline.run pipe;
              Monitor.item_done m ();
              Json.to_string
                (Summary.of_pipeline ~workload:(string_of_int seed) ~policy
                   pipe))
            cells)
    in
    Monitor.close m;
    let snapshot = read_file json_path in
    Sys.remove json_path;
    (String.concat "\n" summaries, snapshot)
  in
  let serial, snap1 = sweep ~jobs:1 in
  let parallel, snap2 = sweep ~jobs:2 in
  Alcotest.(check string) "-j 2 summaries equal -j 1" serial parallel;
  List.iter
    (fun snap ->
      match Json.of_string snap with
      | Error msg -> Alcotest.failf "snapshot unparsable: %s" msg
      | Ok j ->
        Alcotest.(check bool) "snapshot schema-tagged" true
          (Schema.check j = Ok ()))
    [ snap1; snap2 ]

(* --- monitor ---------------------------------------------------------- *)

let test_monitor_files () =
  let json_path = Filename.temp_file "levioso_mon" ".json" in
  let metrics_path = Filename.temp_file "levioso_mon" ".prom" in
  let m =
    Monitor.create ~json_path ~metrics_path ~min_interval:0.0 ~total:4
      ~label:"unit" ()
  in
  Monitor.start m "w/p";
  Monitor.item_done m ~wall_s:0.25 ();
  Monitor.progress m ~failures:1 ~done_:3 ();
  Monitor.close m;
  Monitor.close m;
  (* idempotent *)
  (match Json.of_string (read_file json_path) with
  | Error msg -> Alcotest.failf "progress json: %s" msg
  | Ok j ->
    let member k =
      match j with
      | Json.Obj kvs -> List.assoc_opt k kvs
      | _ -> None
    in
    Alcotest.(check bool) "schema-tagged" true (Schema.check j = Ok ());
    Alcotest.(check (option string)) "label" (Some "unit")
      (match member "label" with
      | Some (Json.String s) -> Some s
      | _ -> None);
    (match member "done" with
    | Some (Json.Int 3) -> ()
    | _ -> Alcotest.fail "done should be 3");
    (match member "total" with
    | Some (Json.Int 4) -> ()
    | _ -> Alcotest.fail "total should be 4");
    match member "failures" with
    | Some (Json.Int 1) -> ()
    | _ -> Alcotest.fail "failures should be 1");
  let metrics = read_file metrics_path in
  Alcotest.(check bool) "openmetrics done gauge" true
    (contains "levioso_progress_done{job=\"unit\"} 3" metrics);
  Alcotest.(check bool) "openmetrics total gauge" true
    (contains "levioso_progress_total{job=\"unit\"} 4" metrics);
  let eof = "# EOF\n" in
  let n = String.length metrics and e = String.length eof in
  Alcotest.(check bool) "openmetrics terminated" true
    (n >= e && String.sub metrics (n - e) e = eof);
  Sys.remove json_path;
  Sys.remove metrics_path

(* --- host profiling --------------------------------------------------- *)

let test_hostprof_measure () =
  let v, span =
    Hostprof.measure (fun () ->
        let acc = ref [] in
        for i = 1 to 10_000 do
          acc := (i, string_of_int i) :: !acc
        done;
        List.length !acc)
  in
  Alcotest.(check int) "thunk result" 10_000 v;
  Alcotest.(check bool) "wall clock non-negative" true (span.Hostprof.wall_s >= 0.0);
  Alcotest.(check bool) "allocation observed" true
    (Hostprof.alloc_mwords span > 0.0);
  let doubled = Hostprof.add span span in
  Alcotest.(check (float 1e-6)) "add sums allocation"
    (2.0 *. Hostprof.alloc_mwords span)
    (Hostprof.alloc_mwords doubled);
  Alcotest.(check bool) "zero is neutral" true
    (Hostprof.add Hostprof.zero span = span);
  match Hostprof.phases_to_json [ ("run", span) ] with
  | Json.Obj kvs ->
    Alcotest.(check bool) "has phases" true (List.mem_assoc "phases" kvs);
    Alcotest.(check bool) "has total" true (List.mem_assoc "total" kvs)
  | _ -> Alcotest.fail "phases_to_json should be an object"

let suite =
  ( "timeline",
    [
      Alcotest.test_case "ring buffer" `Quick test_ring;
      Alcotest.test_case "golden konata (unsafe)" `Quick test_golden_unsafe;
      Alcotest.test_case "golden konata (levioso)" `Quick test_golden_levioso;
      Alcotest.test_case "trace shows squash and stalls" `Quick
        test_trace_mentions_squash_and_stalls;
      Alcotest.test_case "window filters" `Quick test_window_filters;
      QCheck_alcotest.to_alcotest intervals_prop;
      Alcotest.test_case "timeline is a side channel" `Quick
        test_timeline_is_side_channel;
      Alcotest.test_case "monitored parallel sweep deterministic" `Slow
        test_monitored_parallel_matrix_deterministic;
      Alcotest.test_case "monitor files" `Quick test_monitor_files;
      Alcotest.test_case "hostprof measure" `Quick test_hostprof_measure;
    ] )
