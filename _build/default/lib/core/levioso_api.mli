(** One-call entry points tying the whole system together: compile (when
    the scheme needs annotations), simulate under a defense, and return the
    finished pipeline for inspection.  This is the API the examples, CLI
    and benchmark harness use. *)

module Pipeline = Levioso_uarch.Pipeline
module Config = Levioso_uarch.Config
module Sim_stats = Levioso_uarch.Sim_stats

val simulate :
  ?config:Config.t ->
  ?mem_init:(int array -> unit) ->
  policy:string ->
  Levioso_ir.Ir.program ->
  Pipeline.t
(** Build a pipeline with the named defense (see {!Registry.names}), run
    the program to completion and return the machine.
    @raise Invalid_argument on unknown policy names
    @raise Pipeline.Deadlock on policy bugs (none of the shipped ones). *)

val check_against_emulator :
  ?config:Config.t ->
  ?mem_init:(int array -> unit) ->
  policy:string ->
  Levioso_ir.Ir.program ->
  (unit, string) result
(** Run both the pipeline and the architectural emulator; compare final
    registers and memory.  Defenses must never change architectural
    results — this is the oracle-equivalence check used throughout the
    test-suite. *)

val overhead :
  ?config:Config.t ->
  ?mem_init:(int array -> unit) ->
  policy:string ->
  Levioso_ir.Ir.program ->
  float
(** Normalized execution time of [policy] relative to the unsafe baseline
    (1.0 = no overhead) for one program. *)
