(** Blocking client for the {!Protocol} exchange — the library behind
    [levioso_serve submit], [bench --remote] and the serve tests.

    One [t] is one connection; it is not thread-safe (use one connection
    per thread — the daemon multiplexes across connections, not within
    one). *)

exception Server_error of string
(** Raised on connection failures, protocol violations and server-side
    [error] frames. *)

type t

val connect : string -> t
(** Connect to a daemon socket and consume its [hello] frame.
    @raise Server_error on refusal or protocol-generation mismatch. *)

val close : t -> unit

val pool : t -> int
(** Worker count advertised in the server's [hello]. *)

val server_cache : t -> bool
(** Whether the server has a shard store attached. *)

val ping : t -> unit
val list : t -> (string * string) list * string list
val stats : t -> Levioso_telemetry.Json.t

val prune : t -> max_age_days:int -> int
(** Entries removed from the daemon's store. *)

val shutdown : t -> unit
(** Ask the daemon to drain and exit; returns once it acknowledged. *)

val history :
  ?since:float -> ?until:float -> ?last:int -> t -> Levioso_telemetry.Json.t
(** Query the daemon's continuous-telemetry time-series: a schema-tagged
    ["levioso-history"] document (see {!Protocol.history_records}) with
    records in [since <= ts <= until], the newest [last] when
    [last > 0].  @raise Server_error when the daemon runs without
    [--history-out]. *)

type result_cell = {
  source : string;  (** ["sim"], ["cache"] or ["error"] *)
  wall_s : float;  (** daemon-side wall clock for this cell *)
  summary : Levioso_telemetry.Json.t;  (** [Null] when [error] is set *)
  error : string option;
      (** daemon-side per-cell failure; the rest of the batch still
          completed *)
}

type timings = {
  trace : string;  (** the trace id this submission carried *)
  ack_s : float;  (** request written → [ack] received *)
  first_result_s : float option;
      (** request written → first [result] frame; [None] for an empty
          batch *)
  drain_s : float;  (** [ack] → [done] (daemon compute + streaming) *)
  total_s : float;  (** request written → [done] *)
}
(** Client-side latency breakdown of one submission, measured around
    the wire calls — [bench --remote]'s per-batch report. *)

val submit :
  ?cache:bool ->
  ?trace:string ->
  ?on_result:(int -> result_cell -> unit) ->
  ?timings:(timings -> unit) ->
  t ->
  Protocol.cell list ->
  result_cell array * Protocol.done_stats
(** Submit a batch and block until its [done] frame.  [on_result] fires
    per streamed result (in submission order) for progress rendering.
    The returned array is indexed like the submitted list; a cell the
    daemon failed on comes back with [error] set (and counts in
    {!Protocol.done_stats.failed}) instead of aborting the batch.
    [cache] (default [true]) gates the daemon's shared store for this
    batch.  [trace] is the distributed-tracing id carried in the frame
    (minted via {!Levioso_telemetry.Span.mint_trace} when omitted);
    [timings] receives the client-side latency breakdown once the
    [done] frame lands. *)
