module Rng = Levioso_util.Rng

let compile name source =
  match Levioso_lang.Compiler.compile source with
  | Ok program -> Levioso_opt.Opt.optimize program
  | Error msg -> failwith (Printf.sprintf "Levsuite %s: %s" name msg)

let make name description source mem_init =
  { Workload.name; description; program = compile name source; mem_init }

(* trial-division prime counting: data-independent but mispredict-prone
   inner-loop exits *)
let primes =
  make "lev-primes" "trial-division prime count, compiled from Lev source"
    {|
      fn is_prime(n) {
        if (n < 2) { return 0; }
        var d = 2;
        while (d * d <= n) {
          if (n % d == 0) { return 0; }
          d = d + 1;
        }
        return 1;
      }
      fn main() {
        var n = 2;
        var count = 0;
        while (n < 400) {
          count = count + is_prime(n);
          n = n + 1;
        }
        store(256, count);
      }
    |}
    (fun _ -> ())

(* rolling hash over a loaded message: serial load-compute chain *)
let crc =
  make "lev-crc" "rolling hash over a message, compiled from Lev source"
    {|
      fn step(acc, word) {
        var mixed = (acc ^ word) * 31;
        return mixed ^ (mixed >> 7);
      }
      fn main() {
        var i = 0;
        var acc = 5381;
        while (i < 4000) {
          acc = step(acc, load(4096 + i));
          i = i + 1;
        }
        store(256, acc & 1048575);
      }
    |}
    (fun mem ->
      let rng = Layout.rng 21 in
      for i = 0 to 3999 do
        mem.(4096 + i) <- Rng.int rng 65536
      done)

(* fixed-point n-body-ish force accumulation: compute-heavy nested loops
   with a distance-dependent branch *)
let nbody =
  make "lev-nbody" "fixed-point pairwise force sums, compiled from Lev source"
    {|
      fn main() {
        var i = 0;
        var fx = 0;
        while (i < 48) {
          var j = 0;
          while (j < 48) {
            if (j != i) {
              var dx = load(4096 + i) - load(4096 + j);
              var d2 = dx * dx + 1;
              if (d2 < 10000) { fx = fx + 1024 / d2; }
            }
            j = j + 1;
          }
          i = i + 1;
        }
        store(256, fx);
      }
    |}
    (fun mem ->
      let rng = Layout.rng 22 in
      for i = 0 to 47 do
        mem.(4096 + i) <- Rng.int rng 300
      done)

(* bubble sort: quadratic data-dependent compare-and-swap *)
let bubble =
  make "lev-bubble" "bubble sort with data-dependent swaps, compiled from Lev"
    {|
      fn main() {
        var n = 96;
        var pass = 0;
        while (pass < n) {
          var i = 0;
          while (i < n - 1) {
            var a = load(4096 + i);
            var b = load(4096 + i + 1);
            if (a > b) {
              store(4096 + i, b);
              store(4096 + i + 1, a);
            }
            i = i + 1;
          }
          pass = pass + 1;
        }
        store(256, load(4096) * 1000 + load(4096 + 95));
      }
    |}
    (fun mem ->
      let rng = Layout.rng 23 in
      for i = 0 to 95 do
        mem.(4096 + i) <- Rng.int rng 1000
      done)

let all = [ primes; crc; nbody; bubble ]

let names = List.map (fun w -> w.Workload.name) all

let find_exn name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "Levsuite.find_exn: unknown workload %s (known: %s)" name
         (String.concat ", " names))
