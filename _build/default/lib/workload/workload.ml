type t = {
  name : string;
  description : string;
  program : Levioso_ir.Ir.program;
  mem_init : int array -> unit;
}

let make ~name ~description ~build ~mem_init =
  let b = Levioso_ir.Builder.create () in
  build b;
  { name; description; program = Levioso_ir.Builder.build b; mem_init }
