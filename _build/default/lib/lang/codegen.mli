(** Code generation: Lev AST → the simulator's IR.

    Strategy (no stack on this ISA):

    - every variable and temporary lives in a register; literals fold into
      immediate operands (with compile-time constant folding of pure
      operator applications);
    - calls are {e inlined} — the resolver has already rejected recursion —
      with callee locals alpha-renamed into fresh registers;
    - [if]/[while] lower through the {!Levioso_ir.Builder} structured
      helpers, and conditions that are already comparisons branch directly
      instead of materializing a 0/1 value.

    Register pressure beyond the 31 general-purpose registers is a
    compile-time error (deep inlining or very many live locals). *)

exception Error of string

val compile : Ast.program -> (Levioso_ir.Ir.program, string) result
(** Requires {!Resolve.check} to have passed (violations raise). *)
