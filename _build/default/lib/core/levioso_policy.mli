(** The Levioso hardware mechanism: compiler-informed selective delay.

    Dependency tracking per dynamic branch instance:

    + {b Active-branch set} (front end).  When a conditional branch is
      decoded it becomes {e active}.  When fetch reaches the branch's
      compiler-annotated reconvergence pc, the instance deactivates:
      instructions decoded from then on do not {e exist} conditionally on
      that branch.  (Branches annotated [No_reconvergence] deactivate only
      by resolving.)
    + {b Control dependencies}.  Each decoded instruction records the
      sequence numbers of the currently-active unresolved branch instances.
    + {b Data dependencies}.  At rename the instruction additionally
      inherits the dependency sets of its in-flight producers, so values
      computed under a branch keep carrying that branch past the
      reconvergence point.
    + {b Issue gate}.  A transmitter may begin execution only when every
      branch instance in its dependency set has resolved.  Everything else
      executes unrestricted — this is the entire performance advantage
      over {!Levioso_secure.Baselines.delay}, which waits on {e all} older
      branches.

    Dependency sets are capped at the hardware budget
    ({!Levioso_uarch.Config.t}[.depset_budget]); on overflow the entry
    degrades soundly to "wait for all older branches".

    The [track_data] flag exists for the ablation figure: switching it off
    gates only on control dependence, which is cheaper but no longer covers
    operand-propagation leaks past reconvergence. *)

val maker :
  ?annotation:Annotation.t ->
  ?track_data:bool ->
  unit ->
  Levioso_uarch.Pipeline.policy_maker
(** If [annotation] is omitted the compiler pass runs on the program given
    to the pipeline (the common case).  [track_data] defaults to [true]. *)
