lib/ir/encoding.mli: Ir
