lib/util/rng.mli:
