module Json = Levioso_telemetry.Json

type t = { dir : string; stamp : string }

let code_stamp_memo =
  lazy
    (try Digest.to_hex (Digest.file Sys.executable_name)
     with Sys_error _ -> "unstamped")

let code_stamp () = Lazy.force code_stamp_memo

let config_key (config : Config.t) =
  Digest.to_hex (Digest.string (Marshal.to_string config []))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* --- sharded layout ----------------------------------------------------

   Entries live under [dir/<shard>/<workload>__<policy>__<digest16>.json]
   where <shard> is the first two hex characters of the 16-character key
   digest, so concurrent clients spread their directory operations over
   256 subdirectories instead of contending on one.  Pre-shard caches
   kept everything flat in [dir]; [create] migrates those entries by
   renaming them into their shard (a lost rename race just means another
   process migrated the file first), and [find] still falls back to the
   flat path so an entry written by an old binary mid-migration is a hit
   rather than a re-simulation. *)

let shard_chars = 2

let shard_of_key key16 = String.sub key16 0 shard_chars

let entry_key t ~config ~workload ~policy =
  let key =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00" [ config_key config; workload; policy; t.stamp ]))
  in
  String.sub key 0 16

(* The readable prefix is cosmetic (workload/policy names are [a-z0-9-]);
   the digest alone distinguishes entries. *)
let entry_name ~workload ~policy key16 =
  Printf.sprintf "%s__%s__%s.json" workload policy key16

(* [Some digest16] for names of the entry shape, flat or sharded. *)
let key_of_entry_name name =
  if not (Filename.check_suffix name ".json") then None
  else
    let stem = Filename.chop_suffix name ".json" in
    let n = String.length stem in
    if n < 18 then None
    else
      let key = String.sub stem (n - 16) 16 in
      let sep = String.sub stem (n - 18) 2 in
      let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
      if sep = "__" && String.for_all is_hex key then Some key else None

let migrate_flat dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        match key_of_entry_name name with
        | None -> ()
        | Some key -> (
          let src = Filename.concat dir name in
          (* Sys.is_directory raises if a concurrent migrator already
             renamed src away; losing that race is fine, skip it. *)
          try
            if not (Sys.is_directory src) then begin
              let shard_dir = Filename.concat dir (shard_of_key key) in
              mkdir_p shard_dir;
              Sys.rename src (Filename.concat shard_dir name)
            end
          with Sys_error _ -> ()))
      entries

let create ?stamp ~dir () =
  let stamp =
    match stamp with
    | Some s -> s
    | None -> code_stamp ()
  in
  migrate_flat dir;
  { dir; stamp }

let path t ~config ~workload ~policy =
  let key = entry_key t ~config ~workload ~policy in
  Filename.concat
    (Filename.concat t.dir (shard_of_key key))
    (entry_name ~workload ~policy key)

let flat_path t ~config ~workload ~policy =
  Filename.concat t.dir
    (entry_name ~workload ~policy (entry_key t ~config ~workload ~policy))

let read_entry file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
    match Json.of_string contents with
    | Ok j -> Some j
    | Error _ -> None)

let find t ~config ~workload ~policy =
  match read_entry (path t ~config ~workload ~policy) with
  | Some _ as hit -> hit
  | None -> read_entry (flat_path t ~config ~workload ~policy)

(* Every store writes a process-and-call-unique temp file and renames it
   over the entry, so two writers racing on the same key each publish a
   complete entry (last rename wins) and a concurrent reader only ever
   opens a fully written file. *)
let tmp_counter = Atomic.make 0

let store t ~config ~workload ~policy summary =
  let file = path t ~config ~workload ~policy in
  mkdir_p (Filename.dirname file);
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  Json.to_channel oc summary;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp file

(* --- hygiene ---------------------------------------------------------- *)

let is_shard_dir dir name =
  String.length name = shard_chars
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       name
  && Sys.is_directory (Filename.concat dir name)

let prune ?now t ~max_age_days =
  let now = match now with Some n -> n | None -> Unix.time () in
  let cutoff = now -. (float_of_int (max 0 max_age_days) *. 86400.) in
  let removed = ref 0 in
  let consider file =
    let is_entry = key_of_entry_name (Filename.basename file) <> None in
    (* a .tmp older than the horizon is debris from a killed writer *)
    let is_debris = Filename.check_suffix file ".tmp" in
    if is_entry || is_debris then
      match Unix.stat file with
      | exception Unix.Unix_error _ -> ()
      | st ->
        if st.Unix.st_mtime < cutoff then (
          try
            Sys.remove file;
            if is_entry then incr removed
          with Sys_error _ -> ())
  in
  let sweep dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names -> Array.iter (fun n -> consider (Filename.concat dir n)) names
  in
  sweep t.dir;
  (match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun n ->
        if is_shard_dir t.dir n then begin
          let shard = Filename.concat t.dir n in
          sweep shard;
          (* drop shards emptied by the sweep; losing the race to a
             concurrent writer is fine (rmdir fails, the shard stays) *)
          try Unix.rmdir shard with Unix.Unix_error _ -> ()
        end)
      names);
  !removed
