(* Spectre from source: the complete bounds-check-bypass attack written in
   the Lev language, compiled by this repository's own compiler, annotated
   by the Levioso pass, and executed on the out-of-order simulator.

   The victim is ordinary-looking code (a bounds-checked table lookup);
   the attacker part trains it, flushes the guard, and then reloads the
   probe array with rdcycle timing — all in one source file.

   Run with:  dune exec examples/source_spectre.exe *)

module Compiler = Levioso_lang.Compiler
module Annotation = Levioso_core.Annotation
module Registry = Levioso_core.Registry
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline

let secret = 29

(* memory map: guard_ptr at 64 -> 72 (table size 16); table at 1024 with
   the secret planted out of bounds at 1024+600; probe lines at
   16384 + v*8; timing results at 2048 + v *)
let source =
  {|
  // the victim: a bounds-checked table lookup that transmits through a
  // lookup in a second table, as in the original Spectre paper
  fn victim(idx) {
    var size = load(load(64));
    if (idx < size) {
      var v = load(1024 + idx);
      var junk = load(16384 + v * 8);
    }
    return size;
  }

  fn main() {
    // every round is structurally identical: flush the guard chain and the
    // probe array, pick the index branchlessly (in-bounds while training,
    // out-of-bounds on the last round), call the victim.  The victim's
    // bounds check is the only data-dependent branch, at one single pc.
    var t = 40;
    var last = 0;
    while (t >= 0) {
      var attack = t == 0;
      // the flushes must not overtake the previous round's in-flight guard
      // load (which would re-fill the line after the eviction), so their
      // addresses data-depend on the previous victim's result
      flush(64 + (last & 0));
      flush(72 + (last & 0));
      var f = 0;
      while (f < 64) {
        flush(16384 + f * 8);
        f = f + 1;
      }
      var idx = (t & 15) * (1 - attack) + 600 * attack;
      var got = victim(idx);
      t = t - 1;
      last = got;
    }

    // reload: time every probe line; the hot one encodes the secret.
    // serialize behind the victim's guard value (the lfence of real PoCs):
    // the first probe must not pre-execute under the unresolved bounds
    // check or it pollutes its own line
    var prev = last & 0;
    prev = prev + 0; prev = prev + 0; prev = prev + 0; prev = prev + 0;
    prev = prev + 0; prev = prev + 0; prev = prev + 0; prev = prev + 0;
    var v = 0;
    while (v < 64) {
      var t0 = rdcycle(prev);
      var x = load(16384 + v * 8 + (t0 & 0));
      var t1 = rdcycle(x);
      store(2048 + v, t1 - t0);
      prev = t1;
      v = v + 1;
    }
  }
|}

let () =
  let program = Compiler.compile_exn source in
  let annotation = Annotation.analyze program in
  Printf.printf
    "compiled %d instructions, %s branches annotated; planting secret %d\n\n"
    (Array.length program)
    (List.assoc "branches" (Annotation.stats annotation))
    secret;
  List.iter
    (fun policy ->
      let pipe =
        Pipeline.create Config.default
          ~mem_init:(fun mem ->
            mem.(64) <- 72;
            mem.(72) <- 16;
            for i = 0 to 15 do
              mem.(1024 + i) <- 64 (* decoy line outside the probed range *)
            done;
            mem.(1024 + 600) <- secret)
          ~policy:(Registry.find_exn policy) program
      in
      Pipeline.run pipe;
      let mem = Pipeline.mem pipe in
      let times = Array.init 64 (fun v -> mem.(2048 + v)) in
      let slowest = Array.fold_left max 0 times in
      let fastest = Array.fold_left min max_int times in
      let guess = ref None in
      Array.iteri
        (fun v t -> if slowest - fastest > 20 && t < (slowest + fastest) / 2 then
            guess := Some v)
        times;
      (match !guess with
      | Some v when v = secret ->
        Printf.printf "%-10s LEAKED: recovered secret %d\n" policy v
      | Some v -> Printf.printf "%-10s noise: hot line %d (secret %d)\n" policy v secret
      | None -> Printf.printf "%-10s no signal: defense held\n" policy))
    [ "unsafe"; "stt"; "levioso" ];
  print_endline
    "\nThe same source, compiled the same way: only the issue-gate policy\n\
     differs.  Levioso's compiler hints cost nothing when the program is\n\
     honest and close the channel when it is not."
