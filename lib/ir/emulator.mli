(** Functional (architectural) executor.

    The emulator defines the architectural semantics of the ISA and serves
    as the oracle against which the out-of-order pipeline is checked: for
    any program and any secure-speculation policy, the pipeline must commit
    exactly the state the emulator computes.

    [Rdcycle] is the one deliberately timing-dependent instruction: here it
    returns the number of instructions retired so far, which differs from
    the pipeline's cycle counter.  Oracle-equivalence checks therefore only
    apply to programs that do not consume [Rdcycle] results in
    architecturally visible ways (none of the workloads do; only attack
    probes use it). *)

type state = {
  regs : int array;  (** architectural register file; index 0 reads as 0 *)
  mem : int array;  (** word-addressed memory; length is a power of two *)
  mutable pc : int;
  mutable retired : int;  (** instructions retired so far *)
  mutable halted : bool;
  program : Ir.program;
  mutable decoded : int array;
      (** lazily built flat decode of [program] used by {!run_steps};
          empty until first use.  Treat as private. *)
}

val create : ?mem_words:int -> ?memory:int array -> Ir.program -> state
(** Fresh state: zeroed registers and memory (default 65536 words), pc 0.
    [memory] adopts an existing array by aliasing instead of allocating
    one ([mem_words] is then ignored) — this is how the two-tier sampled
    engine shares one memory image between tiers.
    @raise Invalid_argument when the memory size is not a power of two
    (the message carries the offending value). *)

exception Out_of_fuel
(** Raised by {!run} when the step budget is exhausted. *)

val mask_addr : state -> int -> int
(** Addresses wrap modulo the memory size (no faults). *)

val step : state -> unit
(** Execute one instruction.  No-op once [halted]. *)

val run : ?fuel:int -> state -> unit
(** Run to [Halt].  @raise Out_of_fuel after [fuel] steps (default 10M). *)

val run_program :
  ?mem_words:int -> ?fuel:int -> ?init:(state -> unit) -> Ir.program -> state
(** Convenience: create, apply [init] (e.g. to preload memory), run. *)

(** {1 Batched fast path}

    The fast architectural tier of the two-tier sampled engine.  The
    program is decoded once into a flat int array; stepping then runs a
    tail-recursive int loop with zero per-step minor allocation.
    Behaviorally identical to repeated {!step} (checked by unit test),
    including the quirks: [Halt] consumes one retired count, and
    [Rdcycle] observes the retired count {e before} its own
    increment. *)

type hooks = {
  h_load : int -> unit;  (** masked effective address of every load *)
  h_store : int -> unit;  (** masked effective address of every store *)
  h_flush : int -> unit;  (** masked effective address of every flush *)
  h_branch : pc:int -> taken:bool -> unit;
      (** every conditional branch, with its resolved direction *)
}
(** Observation points for functional warming: the sampled-simulation
    driver uses these to keep cache and predictor state warm while
    fast-forwarding.  Hooks must not mutate the emulator state. *)

val no_hooks : hooks

val run_steps : ?hooks:hooks -> state -> int -> int
(** [run_steps state n] executes up to [n] instructions and returns the
    number actually executed (less than [n] only when [Halt] retires or
    the machine was already halted, in which case 0).  [state.pc] and
    [state.retired] are updated on return, not per step. *)
