module Cfg = Levioso_ir.Cfg
module Ir = Levioso_ir.Ir
module Int_set = Control_dep.Int_set

type t = { program : Ir.program; deps : Int_set.t array }

(* Forward data-flow over the CFG.  State: one dependency set per register
   (register 0 pinned to empty), plus one abstract set for memory when
   [track_memory].  Join is pointwise union; the lattice is finite (sets of
   branch pcs) so the fixpoint terminates. *)

type env = { regs : Int_set.t array; mutable memory : Int_set.t }

let empty_env () = { regs = Array.make Ir.num_regs Int_set.empty; memory = Int_set.empty }

let copy_env e = { regs = Array.copy e.regs; memory = e.memory }

let join_into ~src ~dst =
  let changed = ref false in
  Array.iteri
    (fun i s ->
      let u = Int_set.union dst.regs.(i) s in
      if not (Int_set.equal u dst.regs.(i)) then begin
        dst.regs.(i) <- u;
        changed := true
      end)
    src.regs;
  let mu = Int_set.union dst.memory src.memory in
  if not (Int_set.equal mu dst.memory) then begin
    dst.memory <- mu;
    changed := true
  end;
  !changed

let operand_deps env = function
  | Ir.Reg r when r <> Ir.zero_reg -> env.regs.(r)
  | Ir.Reg _ | Ir.Imm _ -> Int_set.empty

let compute ?(track_memory = false) cfg =
  let program = Cfg.program cfg in
  let n = Array.length program in
  let cd = Control_dep.compute cfg in
  let num_blocks = Cfg.num_blocks cfg in
  let entry_env = Array.init num_blocks (fun _ -> empty_env ()) in
  let deps = Array.make n Int_set.empty in
  (* Transfer one block, updating [deps] for its instructions, returning the
     exit environment. *)
  let transfer block_id env =
    let blk = Cfg.block cfg block_id in
    List.iter
      (fun pc ->
        let instr = program.(pc) in
        let control = Control_dep.of_pc cd pc in
        let data =
          List.fold_left
            (fun acc operand -> Int_set.union acc (operand_deps env operand))
            Int_set.empty
            (match instr with
            | Ir.Alu { a; b; _ } | Ir.Branch { a; b; _ } -> [ a; b ]
            | Ir.Load { base; off; _ } | Ir.Flush { base; off } -> [ base; off ]
            | Ir.Store { base; off; src } -> [ base; off; src ]
            | Ir.Jump _ | Ir.Rdcycle _ | Ir.Halt -> [])
        in
        let data =
          match instr with
          | Ir.Load _ when track_memory -> Int_set.union data env.memory
          | Ir.Load _ | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _
          | Ir.Flush _ | Ir.Rdcycle _ | Ir.Halt ->
            data
        in
        let all = Int_set.union control data in
        deps.(pc) <- Int_set.union deps.(pc) all;
        (match Ir.defs instr with
        | Some r -> env.regs.(r) <- all
        | None -> ());
        match instr with
        | Ir.Store _ when track_memory -> env.memory <- Int_set.union env.memory all
        | Ir.Store _ | Ir.Alu _ | Ir.Load _ | Ir.Branch _ | Ir.Jump _
        | Ir.Flush _ | Ir.Rdcycle _ | Ir.Halt ->
          ())
      (Cfg.instr_pcs blk);
    env
  in
  let worklist = Queue.create () in
  (* Seed with every block so each is transferred at least once even when
     the incoming environment join does not change anything. *)
  for b = 0 to num_blocks - 1 do
    Queue.add b worklist
  done;
  let guard = ref (num_blocks * n * Ir.num_regs + 1000) in
  while not (Queue.is_empty worklist) do
    decr guard;
    if !guard < 0 then failwith "Branch_dep.compute: fixpoint did not converge";
    let b = Queue.pop worklist in
    let out_env = transfer b (copy_env entry_env.(b)) in
    List.iter
      (fun s ->
        if join_into ~src:out_env ~dst:entry_env.(s) then Queue.add s worklist)
      (Cfg.block cfg b).Cfg.succs
  done;
  { program; deps }

let deps_of_pc t pc = t.deps.(pc)

let independent_fraction t =
  let n = Array.length t.deps in
  if n = 0 then 1.0
  else
    let free = Array.fold_left (fun acc s -> if Int_set.is_empty s then acc + 1 else acc) 0 t.deps in
    float_of_int free /. float_of_int n

let mean_set_size t =
  let n = Array.length t.deps in
  if n = 0 then 0.0
  else
    let total = Array.fold_left (fun acc s -> acc + Int_set.cardinal s) 0 t.deps in
    float_of_int total /. float_of_int n

let max_set_size t =
  Array.fold_left (fun acc s -> max acc (Int_set.cardinal s)) 0 t.deps
