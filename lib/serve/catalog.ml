module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite
module Levsuite = Levioso_workload.Levsuite
module Gadget = Levioso_attack.Gadget
module Registry = Levioso_core.Registry

(* The stock Spectre-v1 gadget as a pseudo-workload (the canonical
   --leak-trace victim); lives here so the CLI listing, levioso_sim's
   name resolution and the wire protocol's `list` request all agree on
   one name set. *)
let spectre_v1 =
  lazy
    (let g = Gadget.bounds_check_bypass ~secret:42 () in
     {
       Workload.name = "spectre-v1";
       description =
         Printf.sprintf
           "Spectre-v1 bounds-check-bypass gadget (secret at word %d)"
           Gadget.oob_secret_addr;
       program = g.Gadget.program;
       mem_init = g.Gadget.mem_init;
     })

let workloads () =
  Suite.all @ Suite.extras @ Levsuite.all @ [ Lazy.force spectre_v1 ]

let workload_names () =
  List.map (fun (w : Workload.t) -> w.Workload.name) (workloads ())

let listing () =
  List.map
    (fun (w : Workload.t) -> (w.Workload.name, w.Workload.description))
    (workloads ())

let find_workload name =
  List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) (workloads ())

let find_workload_exn name =
  match find_workload name with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %s (known: %s)" name
         (String.concat ", " (workload_names ())))

let policies () = Registry.names
