module Ir = Levioso_ir.Ir
module Parser = Levioso_ir.Parser
module Emulator = Levioso_ir.Emulator

let test_parse_simple () =
  let p = Parser.parse_exn {|
    add r1, r1, #1
    halt
  |} in
  Alcotest.(check int) "two instrs" 2 (Array.length p)

let test_parse_labels_and_loop () =
  let p =
    Parser.parse_exn
      {|
      ; sum 1..5 into r2
        mov r1, #1
        mov r2, #0
      loop:
        bgt r1, #5, end
        add r2, r2, r1
        add r1, r1, #1
        jump loop
      end:
        halt
      |}
  in
  let s = Emulator.run_program p in
  Alcotest.(check int) "sum" 15 s.Emulator.regs.(2)

let test_parse_memory_forms () =
  let p =
    Parser.parse_exn
      {|
        store [r1 + #4], #9
        load r2, [r1 + #4]
        flush [r1 + #4]
        rdcycle r3, r2
        halt
      |}
  in
  let s = Emulator.run_program p in
  Alcotest.(check int) "load" 9 s.Emulator.regs.(2)

let test_parse_bare_memory () =
  let p = Parser.parse_exn {|
    load r1, [r2]
    halt
  |} in
  match p.(0) with
  | Ir.Load { off = Ir.Imm 0; _ } -> ()
  | _ -> Alcotest.fail "expected zero offset"

let test_roundtrip_printer () =
  (* Parse, print, re-parse: same program (labels become @pc comments that
     the printer renders as targets, so compare semantics via emulator). *)
  let src =
    {|
      mov r1, #10
      mov r2, #0
    head:
      ble r1, #0, out
      add r2, r2, r1
      sub r1, r1, #1
      jump head
    out:
      setge r3, r2, #55
      halt
    |}
  in
  let p = Parser.parse_exn src in
  let s = Emulator.run_program p in
  Alcotest.(check int) "sum 55" 55 s.Emulator.regs.(2);
  Alcotest.(check int) "setge" 1 s.Emulator.regs.(3)

let expect_error src =
  match Parser.parse src with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ()

let test_errors () =
  expect_error "bogus r1, r2, r3\nhalt";
  expect_error "add r1, r2\nhalt";
  expect_error "jump nowhere\nhalt";
  expect_error "load r99, [r1 + #0]\nhalt";
  expect_error "add r1, r1, #1" (* falls off the end *)

let test_duplicate_label_error () = expect_error "x:\nx:\nhalt"

let test_parses_disassembly () =
  let p1 =
    Parser.parse_exn
      {|
        mov r1, #4
      head:
        ble r1, #0, out
        sub r1, r1, #1
        jump head
      out:
        halt
      |}
  in
  let p2 = Parser.parse_exn (Ir.program_to_string p1) in
  Alcotest.(check bool) "roundtrip equal" true (p1 = p2)

let test_comments_and_blanks () =
  let p = Parser.parse_exn "\n; only a comment\n\n  halt  ; trailing\n" in
  Alcotest.(check int) "one instr" 1 (Array.length p)

let suite =
  ( "parser",
    [
      Alcotest.test_case "simple" `Quick test_parse_simple;
      Alcotest.test_case "labels and loop" `Quick test_parse_labels_and_loop;
      Alcotest.test_case "memory forms" `Quick test_parse_memory_forms;
      Alcotest.test_case "bare memory operand" `Quick test_parse_bare_memory;
      Alcotest.test_case "program semantics" `Quick test_roundtrip_printer;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "duplicate label" `Quick test_duplicate_label_error;
      Alcotest.test_case "parses disassembly" `Quick test_parses_disassembly;
      Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    ] )
