(** Request-level distributed tracing for the serve path.

    A {!t} is a thread-safe span collector: code anywhere on a request's
    path opens a span ({!start}), attaches string attributes, and
    {!finish}es it; finished spans land in per-domain buffers (one mutex
    per domain, so pool workers never contend with connection-handler
    threads) that {!drain} merges into one deterministic order.

    Spans form a tree: every span carries the trace id of the request it
    belongs to (minted once, client-side, and carried across the wire)
    and the id of its parent span ([-1] for a root).  The collector
    never interprets the tree — exporters do:

    - {!to_chrome} / {!write_chrome}: the Chrome [trace_event] array
      format (same conventions as {!Trace}: 1 µs resolution, complete
      ["X"] events, metadata records naming tracks), one track per
      trace, loadable in Perfetto.  The top-level object is
      schema-tagged like every other JSON artifact in the repo.
    - {!access_record}: one schema-tagged JSONL record per served cell
      with per-stage durations — the daemon's access log.
    - {!Hist}: fixed log-scale latency histograms whose buckets feed
      {!Monitor.set_histogram} (OpenMetrics).
    - {!Window}: sliding-window exact percentiles for the live
      [stats]/[top] views.

    Everything is byte-deterministic given a fixed [clock], so golden
    tests inject a counter clock and compare exporter output textually.
    Collection is strictly observational: simulation results are
    bit-identical with spans on or off. *)

type clock = unit -> float
(** Seconds.  Defaults to [Unix.gettimeofday]; tests inject a fake. *)

type t
(** A collector. *)

type span
(** An open span handle.  Cheap, immutable identity; attributes may be
    added until {!finish}. *)

type finished = {
  trace : string;  (** request trace id this span belongs to *)
  id : int;  (** unique within the collector *)
  parent : int;  (** parent span id, [-1] for a root *)
  name : string;  (** stage name: ["submit"], ["cell"], ["simulate"], … *)
  start_s : float;
  stop_s : float;
  attrs : (string * string) list;  (** in attachment order *)
}

val create : ?clock:clock -> unit -> t
(** The creation instant becomes the exporters' time origin, so Chrome
    timestamps start near zero. *)

val now : t -> float
(** One clock reading — for callers timing stages without a span. *)

val mint_trace : unit -> string
(** A process-unique trace id (["tr-<pid>-<n>"]).  Clients mint one per
    submission and carry it in the wire frame so daemon-side spans
    correlate with the client's request. *)

val start : t -> ?trace:string -> ?parent:int -> string -> span
(** Open a span.  [trace] defaults to [""] (untraced), [parent] to
    [-1] (root). *)

val add_attr : span -> string -> string -> unit
(** Attach one string attribute.  Not thread-safe per span (a span is
    owned by the code path that opened it). *)

val id : span -> int

val finish : t -> ?attrs:(string * string) list -> span -> unit
(** Stamp the stop time and move the span into the calling domain's
    buffer.  [attrs] are appended after any {!add_attr}ed ones.
    Finishing a span twice records it twice — don't. *)

val duration : finished -> float

val drain : t -> finished list
(** Merge every domain's buffer and empty them.  Sorted by
    [(start_s, id)] so the order is deterministic whenever the clock
    is. *)

(** {1 Exporters} *)

val to_chrome : ?epoch:float -> finished list -> Json.t
(** Chrome [trace_event] JSON: a schema-tagged object with a
    ["traceEvents"] array.  One tid per distinct trace id (assigned in
    list order, named by a [thread_name] metadata record), ["X"]
    complete events with microsecond [ts]/[dur] relative to [epoch]
    (default [0.]), span/parent/trace plus attributes under [args]. *)

val write_chrome : ?epoch:float -> out_channel -> finished list -> unit
(** [to_chrome] pretty-printed to a channel, newline-terminated.  The
    caller owns the channel. *)

val access_record :
  ts:float ->
  trace:string ->
  request:string ->
  index:int ->
  workload:string ->
  policy:string ->
  source:string ->
  ?error:string ->
  stages:(string * float) list ->
  total_s:float ->
  unit ->
  Json.t
(** One access-log record (the daemon writes one per served cell, as
    minified JSONL): schema-tagged, [kind = "levioso-serve-access"],
    then identity fields and one [<stage>_s] float per [stages] entry
    (in the given order) plus [total_s].  Durations are clamped to be
    non-negative so clock jitter can never produce a negative stage. *)

(** {1 Latency accounting} *)

(** Fixed log-scale histogram: 1–2.5–5 bucket bounds per decade from
    1 µs to 100 s, plus an overflow bucket.  Mutex-guarded; the bounds
    are fixed so daemon restarts and different stages always bucket
    identically (OpenMetrics requirement). *)
module Hist : sig
  type h

  val bounds : float array
  (** The shared upper bounds, seconds, strictly increasing. *)

  val create : unit -> h
  val observe : h -> float -> unit
  val count : h -> int
  val sum : h -> float

  val buckets : h -> (float * int) list
  (** [(upper_bound, cumulative_count)] per bound — exactly the shape
      {!Monitor.set_histogram} renders ([+Inf] is implied by
      {!count}). *)

  val percentile : h -> float -> float
  (** Upper-bound estimate of the [q]-quantile ([0 < q <= 1]); [0.] when
      empty.  Coarse by construction — use {!Window} for exact
      percentiles over recent samples. *)
end

(** Sliding window of the last [capacity] observations with exact
    percentiles — the [stats] frame's p50/p95/p99.  Mutex-guarded. *)
module Window : sig
  type w

  val create : int -> w
  (** [capacity >= 1] (clamped). *)

  val observe : w -> float -> unit
  val count : w -> int
  (** Observations currently held ([<= capacity]). *)

  val seen : w -> int
  (** Observations ever offered (monotonic). *)

  val percentile : w -> float -> float option
  (** Exact [q]-quantile ([0 < q <= 1]) over the held window; [None]
      when empty. *)
end
