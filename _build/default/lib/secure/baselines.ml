module Pipeline = Levioso_uarch.Pipeline

let unsafe _config _program _pipe =
  { Pipeline.always_execute_policy with policy_name = "unsafe" }

let fence _config _program pipe =
  {
    Pipeline.always_execute_policy with
    policy_name = "fence";
    may_execute =
      (fun ~seq -> not (Pipeline.exists_older_unresolved_branch pipe ~seq));
  }

let delay _config _program pipe =
  {
    Pipeline.always_execute_policy with
    policy_name = "delay";
    may_execute =
      (fun ~seq ->
        (not (Pipeline.is_transmitter (Pipeline.instr_of pipe seq)))
        || not (Pipeline.exists_older_unresolved_branch pipe ~seq));
  }
