type t = {
  label : string;
  ansi : out_channel option;
  json_path : string option;
  metrics_path : string option;
  min_interval : float;
  mu : Mutex.t;
  started : float;
  mutable total : int option;
  mutable done_ : int;
  mutable failures : int option;
  mutable current : (int * string * float) list;  (* domain id, what, since *)
  mutable wall_sum : float;
  mutable wall_max : float;
  mutable wall_n : int;
  mutable gauges : (string * (string * float)) list;  (* name -> help, value *)
  (* name -> help, ((upper_bound, cumulative_count) list, sum, count) *)
  mutable hists : (string * (string * ((float * int) list * float * int))) list;
  mutable last_render : float;
  mutable closed : bool;
}

(* The in-place ANSI status line is for humans at a terminal: when the
   channel is piped or redirected (CI logs, `2> file`), the \r\027[2K
   rewrites turn into noise, so drop it unless the caller forces it
   (an explicit --progress flag). The JSON/OpenMetrics snapshots are
   unaffected. *)
let wants_ansi ~force oc =
  force
  || (try Unix.isatty (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> false)

let create ?ansi ?(force_ansi = false) ?json_path ?metrics_path
    ?(min_interval = 0.5) ?total ~label () =
  let ansi =
    match ansi with
    | Some oc when not (wants_ansi ~force:force_ansi oc) -> None
    | other -> other
  in
  {
    label;
    ansi;
    json_path;
    metrics_path;
    min_interval;
    mu = Mutex.create ();
    started = Unix.gettimeofday ();
    total;
    done_ = 0;
    failures = None;
    current = [];
    wall_sum = 0.;
    wall_max = 0.;
    wall_n = 0;
    gauges = [];
    hists = [];
    last_render = neg_infinity;
    closed = false;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let domain_id () = (Domain.self () :> int)

(* --- snapshot rendering (call with the lock held) --- *)

let eta_s t elapsed =
  match t.total with
  | Some tot when t.done_ >= tot -> Some 0.
  | Some tot when t.done_ > 0 ->
      Some (elapsed /. float_of_int t.done_ *. float_of_int (tot - t.done_))
  | _ -> None

(* Process-level self-metrics: uptime plus GC health, from
   [Gc.quick_stat] (O(1)).  [live_words] is deliberately absent — on
   OCaml 5 [quick_stat] reports it as 0 and the accurate [Gc.stat] walks
   the whole heap, far too expensive for a 0.5 s render cadence — so
   heap/top-heap words stand in for heap pressure. *)
let process_metrics elapsed =
  let q = Gc.quick_stat () in
  [
    ("uptime_seconds", "Wall clock seconds since this process's monitor started.", elapsed);
    ("gc_heap_words", "Major heap size, words.", float_of_int q.Gc.heap_words);
    ("gc_top_heap_words", "Largest major heap size reached, words.", float_of_int q.Gc.top_heap_words);
    ("gc_minor_collections", "Minor collections since start.", float_of_int q.Gc.minor_collections);
    ("gc_major_collections", "Major collection cycles since start.", float_of_int q.Gc.major_collections);
    ("gc_minor_words", "Words allocated in the minor heap since start.", q.Gc.minor_words);
  ]

let snapshot_json_locked t now =
  let elapsed = now -. t.started in
  let current =
    List.sort compare t.current
    |> List.map (fun (d, what, since) ->
           Json.Obj
             [
               ("domain", Json.Int d);
               ("what", Json.String what);
               ("for_s", Json.float (now -. since));
             ])
  in
  Schema.tag
    ([
      ("monitor", Json.String "levioso-progress/v1");
      ("label", Json.String t.label);
      ("done", Json.Int t.done_);
      ("total", match t.total with Some n -> Json.Int n | None -> Json.Null);
      ( "failures",
        match t.failures with Some n -> Json.Int n | None -> Json.Null );
      ("elapsed_s", Json.float elapsed);
      ( "rate_per_s",
        if elapsed > 0. then Json.float (float_of_int t.done_ /. elapsed)
        else Json.Null );
      ("eta_s", match eta_s t elapsed with Some e -> Json.float e | None -> Json.Null);
      ( "cell_wall",
        Json.Obj
          [
            ( "mean_s",
              if t.wall_n > 0 then
                Json.float (t.wall_sum /. float_of_int t.wall_n)
              else Json.Null );
            ("max_s", if t.wall_n > 0 then Json.float t.wall_max else Json.Null);
            ("count", Json.Int t.wall_n);
          ] );
      ("current", Json.List current);
      ( "gauges",
        Json.Obj (List.map (fun (n, (_, v)) -> (n, Json.float v)) t.gauges) );
      ( "process",
        Json.Obj
          (List.map (fun (n, _, v) -> (n, Json.float v)) (process_metrics elapsed)) );
    ]
    @
    match t.hists with
    | [] -> []
    | hists ->
      [
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, (_, (_, sum, count))) ->
                 ( n,
                   Json.Obj
                     [ ("count", Json.Int count); ("sum_s", Json.float sum) ]
                 ))
               hists) );
      ])

let om_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let openmetrics_locked t now =
  let elapsed = now -. t.started in
  let buf = Buffer.create 512 in
  let job = om_escape t.label in
  let labels = Printf.sprintf "{job=\"%s\"}" job in
  let gauge name help v =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (om_escape help));
    Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name labels v)
  in
  let histogram name help (buckets, sum, count) =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (om_escape help));
    List.iter
      (fun (le, n) ->
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{job=\"%s\",le=\"%g\"} %d\n" name job le n))
      buckets;
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket{job=\"%s\",le=\"+Inf\"} %d\n" name job count);
    Buffer.add_string buf (Printf.sprintf "%s_sum%s %g\n" name labels sum);
    Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name labels count)
  in
  gauge "levioso_progress_done" "Items completed."
    (string_of_int t.done_);
  (match t.total with
  | Some tot ->
      gauge "levioso_progress_total" "Items planned." (string_of_int tot)
  | None -> ());
  (match t.failures with
  | Some f ->
      gauge "levioso_progress_failures" "Failures observed."
        (string_of_int f)
  | None -> ());
  gauge "levioso_progress_elapsed_seconds" "Wall clock since start."
    (Printf.sprintf "%.3f" elapsed);
  List.iter
    (fun (name, help, v) ->
      gauge ("levioso_" ^ name) help (Printf.sprintf "%g" v))
    (process_metrics elapsed);
  (* insertion order, matching the JSON snapshot, so diffs between the
     two views line up and the ordering is stable across updates *)
  List.iter
    (fun (name, (help, v)) ->
      gauge ("levioso_" ^ name) help (Printf.sprintf "%g" v))
    t.gauges;
  List.iter
    (fun (name, (help, h)) -> histogram ("levioso_" ^ name) help h)
    t.hists;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let status_line_locked t now =
  let elapsed = now -. t.started in
  let frac =
    match t.total with
    | Some tot when tot > 0 ->
        Printf.sprintf "%d/%d (%.0f%%)" t.done_ tot
          (100. *. float_of_int t.done_ /. float_of_int tot)
    | _ -> Printf.sprintf "%d" t.done_
  in
  let eta =
    match eta_s t elapsed with
    | Some e -> Printf.sprintf " eta %.1fs" e
    | None -> ""
  in
  let fails =
    match t.failures with
    | Some f when f > 0 -> Printf.sprintf " failures %d" f
    | _ -> ""
  in
  let cur =
    match List.sort compare t.current with
    | [] -> ""
    | l ->
        " | "
        ^ String.concat " " (List.map (fun (_, what, _) -> what) l)
  in
  let line =
    Printf.sprintf "%s: %s elapsed %.1fs%s%s%s" t.label frac elapsed eta fails
      cur
  in
  if String.length line > 120 then String.sub line 0 117 ^ "..." else line

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let render_locked ?(final = false) t =
  let now = Unix.gettimeofday () in
  if final || now -. t.last_render >= t.min_interval then (
    t.last_render <- now;
    (match t.json_path with
    | Some p -> write_atomic p (Json.to_string (snapshot_json_locked t now) ^ "\n")
    | None -> ());
    (match t.metrics_path with
    | Some p -> write_atomic p (openmetrics_locked t now)
    | None -> ());
    match t.ansi with
    | Some oc ->
        output_string oc ("\r\027[2K" ^ status_line_locked t now);
        if final then output_char oc '\n';
        flush oc
    | None -> ())

let set_total t n = locked t (fun () -> t.total <- Some n)

(* Long-lived daemons learn of work incrementally, one submission at a
   time, so the planned total only ever grows. *)
let inc_total t n =
  locked t (fun () ->
      t.total <- Some (n + match t.total with Some m -> m | None -> 0);
      render_locked t)

(* OpenMetrics metric names admit [a-zA-Z0-9_:] only; anything else
   (spaces, dashes, slashes from workload names, ...) becomes '_' so a
   caller-supplied name can never corrupt the exposition format. *)
let sanitize_metric_name name =
  if name = "" then "_"
  else
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name

(* Update-in-place on an insertion-ordered assoc: ordering is stable
   across any sequence of updates, so scrapes diff cleanly. *)
let upsert assoc name v =
  match List.assoc_opt name assoc with
  | Some _ -> List.map (fun (n, old) -> if n = name then (n, v) else (n, old)) assoc
  | None -> assoc @ [ (name, v) ]

let set_gauge t ?(help = "Application gauge.") name v =
  let name = sanitize_metric_name name in
  locked t (fun () ->
      t.gauges <- upsert t.gauges name (help, v);
      render_locked t)

let set_histogram t ?(help = "Application latency histogram.") name ~buckets
    ~sum ~count =
  let name = sanitize_metric_name name in
  locked t (fun () ->
      t.hists <- upsert t.hists name (help, (buckets, sum, count));
      render_locked t)

let start t what =
  locked t (fun () ->
      let d = domain_id () in
      let now = Unix.gettimeofday () in
      t.current <- (d, what, now) :: List.filter (fun (d', _, _) -> d' <> d) t.current;
      render_locked t)

let item_done t ?wall_s () =
  locked t (fun () ->
      let d = domain_id () in
      t.current <- List.filter (fun (d', _, _) -> d' <> d) t.current;
      t.done_ <- t.done_ + 1;
      (match wall_s with
      | Some w ->
          t.wall_sum <- t.wall_sum +. w;
          t.wall_max <- Float.max t.wall_max w;
          t.wall_n <- t.wall_n + 1
      | None -> ());
      render_locked t)

let progress t ?failures ~done_ () =
  locked t (fun () ->
      t.done_ <- done_;
      (match failures with Some f -> t.failures <- Some f | None -> ());
      render_locked t)

let snapshot_json t =
  locked t (fun () -> snapshot_json_locked t (Unix.gettimeofday ()))

let openmetrics t =
  locked t (fun () -> openmetrics_locked t (Unix.gettimeofday ()))

let close t =
  locked t (fun () ->
      if not t.closed then (
        t.closed <- true;
        render_locked ~final:true t))
