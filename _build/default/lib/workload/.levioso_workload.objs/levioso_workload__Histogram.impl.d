lib/workload/histogram.ml: Array Layout Levioso_ir Levioso_util Workload
