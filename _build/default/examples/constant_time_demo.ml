(* The constant-time threat model: a victim that never branches on its
   secret and never indexes memory with it — textbook constant-time code —
   still leaks under speculation when *other* mispredicted branches
   transmit its registers on the wrong path.

   This demo sweeps several secret values through the register-secret
   gadget under each defense and reports recovery accuracy, reproducing the
   paper's observation that taint-tracking (sandbox-model) defenses leave
   constant-time code exposed while comprehensive schemes do not.

   Run with:  dune exec examples/constant_time_demo.exe *)

module Gadget = Levioso_attack.Gadget
module Harness = Levioso_attack.Harness
module Report = Levioso_util.Report

let secrets = [ 3; 17; 29; 44; 58 ]

let () =
  print_endline "Victim: secret loaded once, architecturally, into a register.";
  print_endline "Attacker: trains an unrelated guard, flushes it, and lets the";
  print_endline "wrong path transmit the register through the cache.\n";
  let rows =
    List.map
      (fun policy ->
        let verdicts =
          List.map
            (fun secret ->
              Harness.run ~policy (Gadget.register_secret ~secret ()))
            secrets
        in
        let recovered =
          List.length
            (List.filter
               (function
                 | Harness.Recovered _ -> true
                 | Harness.Wrong_guess _ | Harness.No_signal -> false)
               verdicts)
        in
        let detail =
          String.concat " "
            (List.map2
               (fun s v ->
                 match v with
                 | Harness.Recovered _ -> string_of_int s
                 | Harness.Wrong_guess _ | Harness.No_signal -> "-")
               secrets verdicts)
        in
        [
          policy;
          Printf.sprintf "%d / %d" recovered (List.length secrets);
          detail;
        ])
      [ "unsafe"; "fence"; "delay"; "stt"; "levioso"; "levioso-ctrl" ]
  in
  print_endline
    (Report.table ~header:[ "defense"; "secrets recovered"; "which" ] ~rows);
  print_endline
    "\nSTT recovers every secret: it only taints speculatively-loaded data,\n\
     and this secret was loaded architecturally.  Comprehensive schemes\n\
     (fence/delay/levioso) gate the wrong-path transmitter itself."
