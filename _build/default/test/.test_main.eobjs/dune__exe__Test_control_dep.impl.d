test/test_control_dep.ml: Alcotest Levioso_analysis Levioso_ir List
