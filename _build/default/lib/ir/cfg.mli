(** Control-flow graph over basic blocks of a program.

    Block 0 is the entry block (pc 0).  A block's [last] instruction is
    either a control transfer or the instruction just before the next
    leader.  Successor order is significant for branches: the fall-through
    successor comes first, then the taken target. *)

type block = {
  id : int;
  first : int;  (** pc of the first instruction *)
  last : int;  (** pc of the last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
  preds : int list;  (** predecessor block ids *)
}

type t

val build : Ir.program -> t

val program : t -> Ir.program

val blocks : t -> block array

val num_blocks : t -> int

val block : t -> int -> block

val block_of_pc : t -> int -> int
(** Which block contains a given pc. *)

val entry : t -> int
(** Always 0. *)

val exit_blocks : t -> int list
(** Blocks whose last instruction is [Halt]. *)

val branch_pcs : t -> int list
(** pcs of all conditional branches, ascending. *)

val instr_pcs : block -> int list
(** The pcs contained in a block, ascending. *)

val to_string : t -> string
(** Debug rendering: one line per block with ranges and edges. *)
