(** Per-cycle stall attribution.

    Every cycle the pipeline charges each in-window instruction that
    wanted to issue but could not to exactly one {!cause}, keyed by the
    instruction's static PC.  The resulting table answers "where do the
    stall cycles go?" — per cause for the overhead breakdown, per PC for
    naming the top-K costliest branches and loads.

    The cause taxonomy, in the priority order the pipeline applies it
    (first matching cause wins, so charges are disjoint):

    - [Policy_gate]: operands ready, the active defense refused
      [may_execute].  By construction this count equals the legacy
      [Sim_stats.policy_stall_cycles] counter.
    - [Operand_wait]: a source operand is still being produced.
    - [Lsq_order]: a ready load blocked by memory ordering — an older
      store's address is unknown, or all MSHRs are busy.
    - [Exec_port]: issuable, but the cycle's issue width was already
      spent on older instructions (structural).
    - [Rob_full]: fetch could not dispatch because the window is full;
      charged to the fetch PC. *)

type cause =
  | Policy_gate
  | Operand_wait
  | Lsq_order
  | Rob_full
  | Exec_port

val all_causes : cause list
val cause_to_string : cause -> string

val cause_index : cause -> int
(** Dense index, taxonomy order — lets hot paths carry a cause as a bare
    int (-1 for "none") instead of a [cause option]. *)

val cause_of_index : int -> cause
(** Inverse of {!cause_index}.  @raise Invalid_argument out of range. *)

type t

val create : num_pcs:int -> t
(** [num_pcs] is the static program length; PCs outside
    [0, num_pcs) are rejected. *)

val charge : t -> cause:cause -> pc:int -> unit

val accumulate : t -> t -> unit
(** [accumulate dst src] adds every charge in [src] into [dst] — used by
    the sampled-simulation driver to aggregate per-interval attributions.
    @raise Invalid_argument when the tables cover different programs. *)

val total : t -> int
(** Sum of every charge. *)

val by_cause : t -> (cause * int) list
(** One entry per cause, taxonomy order. *)

val count : t -> cause -> int

val per_pc_total : t -> pc:int -> int

val top_k : t -> k:int -> (int * int * (cause * int) list) list
(** The [k] PCs with the largest total charge, descending:
    [(pc, total, nonzero per-cause counts)].  PCs with zero charge are
    omitted. *)

val to_json : ?top_k:int -> t -> Json.t
(** [{total, by_cause: {...}, top_pcs: [{pc, total, causes}]}];
    [top_k] defaults to 10. *)

val to_rows : t -> (string * string) list
