lib/analysis/reconvergence.ml: Levioso_ir List Postdom
