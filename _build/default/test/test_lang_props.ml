(* Differential testing of the Lev compiler: random well-formed programs
   are run through compile→emulate and through the reference AST
   interpreter; the memory images must agree exactly. *)

module Ir = Levioso_ir.Ir
module Emulator = Levioso_ir.Emulator
module Ast = Levioso_lang.Ast
module Resolve = Levioso_lang.Resolve
module Codegen = Levioso_lang.Codegen
module Interp = Levioso_lang.Interp
module Rng = Levioso_util.Rng
module Api = Levioso_core.Levioso_api
module Config = Levioso_uarch.Config

let mem_words = 4096
let data_base = 1024
let out_base = 256

(* --- random AST generation ------------------------------------------- *)

let binops =
  [|
    Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.And; Ast.Or; Ast.Xor;
    Ast.Shl; Ast.Shr; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge;
    Ast.Logic_and; Ast.Logic_or;
  |]

let random_program seed =
  let rng = Rng.create (seed lxor 0x1e5) in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let rec expr vars depth =
    if depth = 0 || Rng.chance rng 0.4 then
      if vars <> [] && Rng.bool rng then Ast.Var (Rng.pick rng (Array.of_list vars))
      else Ast.Lit (Rng.int_in rng (-50) 100)
    else
      match Rng.int rng 8 with
      | 0 | 1 | 2 | 3 ->
        Ast.Binop (Rng.pick rng binops, expr vars (depth - 1), expr vars (depth - 1))
      | 4 -> Ast.Neg (expr vars (depth - 1))
      | 5 -> Ast.Not (expr vars (depth - 1))
      | 6 | 7 ->
        (* loads stay inside the initialized data window *)
        Ast.Load
          (Ast.Binop
             ( Ast.Add,
               Ast.Lit data_base,
               Ast.Binop (Ast.And, expr vars (depth - 1), Ast.Lit 255) ))
      | _ -> assert false
  in
  let rec stmts vars depth budget =
    if budget = 0 then ([], vars)
    else
      let s, vars =
        match Rng.int rng 10 with
        | 0 | 1 ->
          let x = fresh "v" in
          (Ast.Decl (x, expr vars 3), x :: vars)
        | 2 | 3 when vars <> [] ->
          (Ast.Assign (Rng.pick rng (Array.of_list vars), expr vars 3), vars)
        | 4 | 5 ->
          (* stores go to a disjoint, comparable output window *)
          ( Ast.Store
              ( Ast.Binop
                  ( Ast.Add,
                    Ast.Lit out_base,
                    Ast.Binop (Ast.And, expr vars 2, Ast.Lit 63) ),
                expr vars 3 ),
            vars )
        | 6 when depth > 0 ->
          let inner, _ = stmts vars (depth - 1) (Rng.int_in rng 1 3) in
          let else_ =
            if Rng.bool rng then
              Some (fst (stmts vars (depth - 1) (Rng.int_in rng 1 3)))
            else None
          in
          (Ast.If (expr vars 2, inner, else_), vars)
        | 7 when depth > 0 ->
          (* bounded loop: fresh counter counts down to zero *)
          (* the body must not see the counter, or a random assignment
             could make the loop diverge *)
          let c = fresh "loop" in
          let body, _ = stmts vars (depth - 1) (Rng.int_in rng 1 3) in
          let body = body @ [ Ast.Assign (c, Ast.Binop (Ast.Sub, Ast.Var c, Ast.Lit 1)) ] in
          ( Ast.If
              (Ast.Lit 1, [ Ast.Decl (c, Ast.Lit (Rng.int_in rng 1 5));
                            Ast.While (Ast.Binop (Ast.Gt, Ast.Var c, Ast.Lit 0), body) ],
               None),
            vars )
        | _ -> (Ast.Expr_stmt (expr vars 2), vars)
      in
      let rest, vars = stmts vars depth (budget - 1) in
      (s :: rest, vars)
  in
  let body, _ = stmts [] 2 (Rng.int_in rng 3 8) in
  [ { Ast.name = "main"; params = []; body; line = 1 } ]

let init_mem seed mem =
  let rng = Rng.create (seed lxor 0xDA7A) in
  for i = 0 to 255 do
    mem.(data_base + i) <- Rng.int_in rng (-100) 100
  done

(* --- properties ------------------------------------------------------ *)

let count = 80

let prop_generator_produces_valid_programs =
  QCheck.Test.make ~count ~name:"generated ASTs pass the resolver"
    QCheck.small_nat
    (fun seed ->
      match Resolve.check (random_program seed) with
      | Ok () -> true
      | Error errors ->
        QCheck.Test.fail_reportf "seed %d: %s" seed (String.concat "; " errors))

let prop_compiled_matches_interpreter =
  QCheck.Test.make ~count
    ~name:"compile+emulate produces the interpreter's memory image"
    QCheck.small_nat
    (fun seed ->
      let ast = random_program seed in
      match Codegen.compile ast with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: compile: %s" seed msg
      | Ok program ->
        let machine_mem =
          let state =
            Emulator.run_program ~mem_words ~init:(fun s -> init_mem seed s.Emulator.mem)
              program
          in
          state.Emulator.mem
        in
        let interp_mem = Array.make mem_words 0 in
        init_mem seed interp_mem;
        Interp.run ~mem:interp_mem ast;
        if machine_mem = interp_mem then true
        else begin
          let diff = ref (-1) in
          Array.iteri
            (fun i v -> if !diff < 0 && v <> interp_mem.(i) then diff := i)
            machine_mem;
          QCheck.Test.fail_reportf
            "seed %d: mem[%d] machine=%d interp=%d" seed !diff machine_mem.(!diff)
            interp_mem.(!diff)
        end)

let prop_optimizer_preserves_memory =
  QCheck.Test.make ~count
    ~name:"the optimizer preserves the memory image on random programs"
    QCheck.small_nat
    (fun seed ->
      let ast = random_program seed in
      match Codegen.compile ast with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: compile: %s" seed msg
      | Ok program ->
        let optimized = Levioso_opt.Opt.optimize program in
        let mem p =
          let state =
            Emulator.run_program ~mem_words
              ~init:(fun s -> init_mem seed s.Emulator.mem)
              p
          in
          state.Emulator.mem
        in
        if Array.length optimized > Array.length program then
          QCheck.Test.fail_reportf "seed %d: optimizer grew the program" seed
        else if mem program = mem optimized then true
        else QCheck.Test.fail_reportf "seed %d: memory image changed" seed)

let prop_compiled_code_annotates_fully =
  QCheck.Test.make ~count
    ~name:"compiled code always has full reconvergence coverage"
    QCheck.small_nat
    (fun seed ->
      match Codegen.compile (random_program seed) with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: compile: %s" seed msg
      | Ok program ->
        Levioso_core.Annotation.coverage (Levioso_core.Annotation.analyze program)
        = 1.0)

let prop_compiled_code_safe_under_levioso =
  QCheck.Test.make ~count:25
    ~name:"compiled code matches the emulator under the levioso policy"
    QCheck.small_nat
    (fun seed ->
      match Codegen.compile (random_program seed) with
      | Error msg -> QCheck.Test.fail_reportf "seed %d: compile: %s" seed msg
      | Ok program -> (
        let config =
          { Config.default with Config.mem_words; rob_size = 48 }
        in
        match
          Api.check_against_emulator ~config ~mem_init:(init_mem seed)
            ~policy:"levioso" program
        with
        | Ok () -> true
        | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg))

let suite =
  ( "lang-properties",
    List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_generator_produces_valid_programs;
        prop_compiled_matches_interpreter;
        prop_optimizer_preserves_memory;
        prop_compiled_code_annotates_fully;
        prop_compiled_code_safe_under_levioso;
      ] )
