module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Cache = Levioso_uarch.Cache
module Registry = Levioso_core.Registry

type verdict =
  | Recovered of int
  | Wrong_guess of int
  | No_signal

let verdict_to_string = function
  | Recovered v -> Printf.sprintf "RECOVERED (%d)" v
  | Wrong_guess v -> Printf.sprintf "wrong guess (%d)" v
  | No_signal -> "no signal"

let simulate ?(config = Config.default) ~policy (gadget : Gadget.t) =
  let pipe =
    Pipeline.create ~mem_init:gadget.Gadget.mem_init config
      ~policy:(Registry.find_exn policy) gadget.Gadget.program
  in
  Pipeline.run pipe;
  pipe

let judge (gadget : Gadget.t) hot_lines =
  match hot_lines with
  | [ v ] when v = gadget.Gadget.secret -> Recovered v
  | [ v ] -> Wrong_guess v
  | [] | _ :: _ -> No_signal

let run ?config ~policy gadget =
  let pipe = simulate ?config ~policy gadget in
  let h = Pipeline.hierarchy pipe in
  let hot = ref [] in
  for v = Gadget.probe_values - 1 downto 0 do
    if Cache.Hierarchy.probe h (Gadget.probe_line_addr v) <> Cache.Hierarchy.Memory
    then hot := v :: !hot
  done;
  judge gadget !hot

let run_timed ?config ~policy gadget =
  let pipe = simulate ?config ~policy gadget in
  let mem = Pipeline.mem pipe in
  let times =
    Array.init Gadget.probe_values (fun v -> mem.(Gadget.timing_results_base + v))
  in
  (* Hot lines are distinguishably faster than the slowest (cold) probes:
     use a threshold halfway between the extremes. *)
  let slowest = Array.fold_left max 0 times in
  let fastest = Array.fold_left min max_int times in
  if slowest - fastest < 20 then judge gadget []
  else begin
    let threshold = (slowest + fastest) / 2 in
    let hot = ref [] in
    for v = Gadget.probe_values - 1 downto 0 do
      if times.(v) < threshold then hot := v :: !hot
    done;
    judge gadget !hot
  end

let default_secrets = [ 5; 13; 27; 42; 60 ]

let accuracy ?config ?(secrets = default_secrets) ~policy make =
  let recovered =
    List.filter
      (fun secret ->
        match run ?config ~policy (make ~secret ()) with
        | Recovered _ -> true
        | Wrong_guess _ | No_signal -> false)
      secrets
  in
  float_of_int (List.length recovered) /. float_of_int (List.length secrets)
