lib/attack/harness.mli: Gadget Levioso_uarch
