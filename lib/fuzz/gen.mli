(** Seeded, structured IR program generation — the fuzzing subsystem's
    input source, promoted from the ad-hoc generator that used to live in
    [test/test_props.ml] (which now re-exports this module).

    Two families of programs:

    - {!random_program}: unconstrained structured programs (nested
      if/else, bounded count-down loops, store/load aliasing windows,
      [flush]/[rdcycle]) for differential and round-trip oracles.
      Termination is guaranteed by construction: every loop is a
      [for_down] over a dedicated counter register (r11–r14) that no
      generated statement may write.
    - {!ni_case}: programs for the two-run {e noninterference} oracle.
      Every architectural memory access is confined to a public window by
      an explicit mask-and-rebase instruction sequence, and one or two
      Spectre-v1-style gadgets are woven between the public blocks: a
      bounds check whose guard loads through a flushed pointer
      indirection (so the branch resolves late), trained by benign
      rounds, aimed out of bounds at a planted secret slot on the final
      round, transmitting through a per-gadget flushed probe array.  The
      architectural execution provably never reads a secret, so {e any}
      secret-dependence of the final machine state, cache probe trace or
      cycle count is a speculative leak. *)

(** {1 Shared layout} *)

val data_base : int
(** Start of the random-data window {!mem_init} fills (word address). *)

val data_size : int
(** Words in the random-data window. *)

val default_config : Levioso_uarch.Config.t
(** The configuration fuzz oracles simulate under: 4096 memory words, a
    48-entry window and a bimodal predictor (small enough to be fast,
    big enough to speculate deeply). *)

(** {1 Unconstrained programs} *)

val random_operand : Levioso_util.Rng.t -> Levioso_ir.Ir.operand
(** A register r1–r10 or a small immediate. *)

val random_program : int -> Levioso_ir.Ir.program
(** [random_program seed] — deterministic in [seed]. *)

val mem_init : int -> int array -> unit
(** Fill the data window with seed-derived values (the memory image the
    differential oracles run against). *)

(** {1 Noninterference cases} *)

type ni_case = {
  program : Levioso_ir.Ir.program;
  num_secrets : int;  (** one secret slot per gadget *)
  secret_addrs : int array;  (** word addresses of the planted secrets *)
  probe_addrs : int array;
      (** first word of every probe line, across all gadgets — the
          attacker-observable cache locations *)
  mem_init : secrets:int array -> int array -> unit;
      (** initialize public memory (seed-derived, secret-independent) and
          plant [secrets] (length [num_secrets], values in
          [\[0, ni_probe_lines)]) into the secret slots *)
}

val ni_probe_lines : int
(** Probe lines per gadget; secret values index into them. *)

val ni_case : int -> ni_case
(** [ni_case seed] — deterministic in [seed].  Built for
    {!default_config} (memory size, cache line width). *)

val ni_secret_pair : int -> ni_case -> int array * int array
(** [ni_secret_pair seed case] draws the two secret vectors for the two
    runs; every slot differs between the vectors, so a leak of any slot
    is observable. *)

(** {1 Random JSON trees} *)

val json : int -> Levioso_telemetry.Json.t
(** [json seed] — a random JSON tree, deterministic in [seed], built
    only from values that survive a print/parse round trip exactly
    (floats are quarter-integers; strings draw from printable ASCII and
    the escaped control characters).  For the serializer round-trip
    property. *)
