module Ir = Levioso_ir.Ir
module Emulator = Levioso_ir.Emulator
module Parser = Levioso_ir.Parser

let test_r0_hardwired () =
  let p = Parser.parse_exn {|
    add r0, r0, #7
    add r1, r0, #1
    halt
  |} in
  let s = Emulator.run_program p in
  Alcotest.(check int) "r0 stays 0 so r1 = 1" 1 s.Emulator.regs.(1)

let test_address_masking () =
  (* Addresses wrap modulo memory size instead of faulting. *)
  let p = Parser.parse_exn {|
    store [r0 + #4], #77
    mov r1, #1048580
    load r2, [r1 + #0]
    halt
  |} in
  let s = Emulator.run_program ~mem_words:1048576 p in
  Alcotest.(check int) "wrapped load" 77 s.Emulator.regs.(2)

let test_negative_address_masks () =
  let p = Parser.parse_exn {|
    mov r1, #-4
    store [r1 + #0], #5
    load r2, [r1 + #0]
    halt
  |} in
  let s = Emulator.run_program ~mem_words:65536 p in
  Alcotest.(check int) "negative wraps" 5 s.Emulator.regs.(2)

let test_flush_is_noop () =
  let p = Parser.parse_exn {|
    store [r0 + #8], #3
    flush [r0 + #8]
    load r1, [r0 + #8]
    halt
  |} in
  let s = Emulator.run_program p in
  Alcotest.(check int) "flush does not change memory" 3 s.Emulator.regs.(1)

let test_retired_counting () =
  let p = Parser.parse_exn {|
    add r1, r1, #1
    add r1, r1, #1
    halt
  |} in
  let s = Emulator.run_program p in
  Alcotest.(check int) "3 retired" 3 s.Emulator.retired

let test_out_of_fuel () =
  let p = Parser.parse_exn {|
    spin:
      jump spin
  |} in
  Alcotest.check_raises "diverges" Emulator.Out_of_fuel (fun () ->
      ignore (Emulator.run_program ~fuel:1000 p))

let test_step_after_halt_is_noop () =
  let p = Parser.parse_exn "halt" in
  let s = Emulator.create p in
  Emulator.run s;
  let retired = s.Emulator.retired in
  Emulator.step s;
  Alcotest.(check int) "no further retirement" retired s.Emulator.retired

let test_branch_both_directions () =
  let p =
    Parser.parse_exn
      {|
        mov r1, #5
        bge r1, #5, yes
        mov r2, #0
        halt
      yes:
        mov r2, #1
        halt
      |}
  in
  let s = Emulator.run_program p in
  Alcotest.(check int) "taken" 1 s.Emulator.regs.(2)

let test_div_semantics_match_alu () =
  let p = Parser.parse_exn {|
    mov r1, #-7
    div r2, r1, #2
    rem r3, r1, #2
    halt
  |} in
  let s = Emulator.run_program p in
  Alcotest.(check int) "ocaml division" (-3) s.Emulator.regs.(2);
  Alcotest.(check int) "ocaml remainder" (-1) s.Emulator.regs.(3)

let suite =
  ( "emulator",
    [
      Alcotest.test_case "r0 hardwired" `Quick test_r0_hardwired;
      Alcotest.test_case "address masking" `Quick test_address_masking;
      Alcotest.test_case "negative address" `Quick test_negative_address_masks;
      Alcotest.test_case "flush is architectural noop" `Quick test_flush_is_noop;
      Alcotest.test_case "retired counting" `Quick test_retired_counting;
      Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
      Alcotest.test_case "step after halt" `Quick test_step_after_halt_is_noop;
      Alcotest.test_case "branch directions" `Quick test_branch_both_directions;
      Alcotest.test_case "div semantics" `Quick test_div_semantics_match_alu;
    ] )
