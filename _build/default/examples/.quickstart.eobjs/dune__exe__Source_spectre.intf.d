examples/source_spectre.mli:
