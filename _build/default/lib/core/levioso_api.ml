module Pipeline = Levioso_uarch.Pipeline
module Config = Levioso_uarch.Config
module Sim_stats = Levioso_uarch.Sim_stats
module Emulator = Levioso_ir.Emulator

let simulate ?(config = Config.default) ?mem_init ~policy program =
  let maker = Registry.find_exn policy in
  let pipe = Pipeline.create ?mem_init config ~policy:maker program in
  Pipeline.run pipe;
  pipe

let check_against_emulator ?(config = Config.default) ?(mem_init = fun _ -> ())
    ~policy program =
  let pipe = simulate ~config ~mem_init ~policy program in
  let reference =
    Emulator.run_program ~mem_words:config.Config.mem_words
      ~init:(fun state -> mem_init state.Emulator.mem)
      program
  in
  let pregs = Pipeline.regs pipe and pmem = Pipeline.mem pipe in
  let mismatch = ref None in
  Array.iteri
    (fun r v ->
      if !mismatch = None && r <> 0 && v <> reference.Emulator.regs.(r) then
        mismatch :=
          Some (Printf.sprintf "r%d: pipeline %d, emulator %d" r v reference.Emulator.regs.(r)))
    pregs;
  Array.iteri
    (fun a v ->
      if !mismatch = None && v <> reference.Emulator.mem.(a) then
        mismatch :=
          Some (Printf.sprintf "mem[%d]: pipeline %d, emulator %d" a v reference.Emulator.mem.(a)))
    pmem;
  match !mismatch with
  | None -> Ok ()
  | Some msg -> Error (Printf.sprintf "%s diverged from emulator: %s" policy msg)

let overhead ?(config = Config.default) ?mem_init ~policy program =
  let run name =
    let pipe = simulate ~config ?mem_init ~policy:name program in
    float_of_int (Pipeline.stats pipe).Sim_stats.cycles
  in
  let base = run "unsafe" in
  if base = 0.0 then 1.0 else run policy /. base
