lib/workload/spmv.mli: Workload
