(** Schema versioning for every machine-readable report.

    All JSON artifacts the project emits — [levioso_sim --json], the
    bench matrix and its [BENCH_matrix.json] trajectory, the fuzz
    campaign report, audit summaries, diff reports and bench-history
    entries — carry a top-level [schema_version] field.  Parsers check
    it before trusting field layout, so a stale cache entry or an old
    history file fails loudly (or is treated as a miss) instead of being
    misread.

    The version is global: any breaking change to any report bumps it.

    - v1 (implicit): PR 1–3 reports, no version field.
    - v2: [schema_version] added everywhere; audit/diff/history reports
      introduced. *)

val version : int
(** The current version (2). *)

val field : string * Json.t
(** [("schema_version", Int version)] — prepend to an [Obj]'s fields. *)

val tag : (string * Json.t) list -> Json.t
(** [tag fields] is [Obj (field :: fields)]. *)

val check : ?what:string -> Json.t -> (unit, string) result
(** Verify a parsed report declares the current version.  [what] names
    the artifact in the error message. *)

val check_exn : ?what:string -> Json.t -> unit
(** @raise Invalid_argument when {!check} fails. *)
