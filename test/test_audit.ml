(* Restriction provenance: the Audit recorder itself, its wiring into the
   pipeline, and the invariants the explanation layer advertises —
   audited delay cycles never exceed the policy stall counter, and the
   necessity split separates Levioso from branch-blind baselines. *)

module Json = Levioso_telemetry.Json
module Audit = Levioso_telemetry.Audit
module Stall = Levioso_telemetry.Stall
module Schema = Levioso_telemetry.Schema
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Registry = Levioso_core.Registry
module Explain = Levioso_core.Explain
module Gen = Levioso_fuzz.Gen
module Workload = Levioso_workload.Workload
module Suite = Levioso_workload.Suite

(* --- the recorder in isolation --------------------------------------- *)

let event ?(seq = 1) ?(pc = 0) ?(reason = Audit.Unspecified)
    ?(necessary = false) ?(cycles = 1) ?(outcome = Audit.Issued) () =
  {
    Audit.seq;
    pc;
    policy = "test";
    reason;
    necessary;
    cycles;
    end_cycle = 100;
    outcome;
  }

let test_ring_bounds () =
  let a = Audit.create ~capacity:4 () in
  for i = 1 to 10 do
    Audit.record a (event ~seq:i ~cycles:i ())
  done;
  Alcotest.(check int) "all counted" 10 (Audit.total_events a);
  Alcotest.(check int) "cycles summed" 55 (Audit.total_cycles a);
  Alcotest.(check int) "ring keeps capacity" 4 (List.length (Audit.recent a));
  Alcotest.(check int) "dropped" 6 (Audit.dropped a);
  Alcotest.(check (list int))
    "ring keeps the newest" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Audit.seq) (Audit.recent a));
  Alcotest.(check bool)
    "capacity must be positive" true
    (match Audit.create ~capacity:0 () with
    | (_ : Audit.t) -> false
    | exception Invalid_argument _ -> true)

let test_necessity_classification () =
  (* only (pc 5, branch 2) is a true dependency *)
  let a =
    Audit.create ~is_true_dep:(fun ~pc ~branch_pc -> pc = 5 && branch_pc = 2) ()
  in
  Alcotest.(check bool)
    "true dep found" true
    (Audit.necessary a ~pc:5 ~branch_pcs:[ 1; 2; 3 ]);
  Alcotest.(check bool)
    "no dep" false
    (Audit.necessary a ~pc:5 ~branch_pcs:[ 1; 3 ]);
  Alcotest.(check bool)
    "other pc" false
    (Audit.necessary a ~pc:6 ~branch_pcs:[ 2 ]);
  Alcotest.(check bool)
    "no branches, no necessity" false
    (Audit.necessary a ~pc:5 ~branch_pcs:[])

let test_aggregates_and_share () =
  let a = Audit.create () in
  Audit.record a (event ~pc:1 ~necessary:true ~cycles:30 ());
  Audit.record a (event ~pc:1 ~necessary:false ~cycles:10 ());
  Audit.record a
    (event ~pc:2 ~necessary:false ~cycles:60 ~outcome:Audit.Squashed ());
  Alcotest.(check int) "necessary cycles" 30 (Audit.necessary_cycles a);
  Alcotest.(check int) "unnecessary cycles" 70 (Audit.unnecessary_cycles a);
  Alcotest.(check int) "necessary events" 1 (Audit.necessary_events a);
  Alcotest.(check int) "unnecessary events" 2 (Audit.unnecessary_events a);
  Alcotest.(check (float 0.001)) "share" 0.7 (Audit.unnecessary_share a);
  (* top pcs sorted by total cycles, descending *)
  match Audit.top_pcs a ~k:10 with
  | [ (pc1, ev1, nec1, unnec1); (pc2, ev2, nec2, unnec2) ] ->
    Alcotest.(check int) "hottest pc" 2 pc1;
    Alcotest.(check int) "hottest events" 1 ev1;
    Alcotest.(check int) "hottest nec" 0 nec1;
    Alcotest.(check int) "hottest unnec" 60 unnec1;
    Alcotest.(check int) "second pc" 1 pc2;
    Alcotest.(check int) "second events" 2 ev2;
    Alcotest.(check int) "second nec" 30 nec2;
    Alcotest.(check int) "second unnec" 10 unnec2
  | other -> Alcotest.failf "expected 2 pcs, got %d" (List.length other)

let test_audit_json () =
  let a = Audit.create () in
  Audit.record a
    (event ~pc:3 ~reason:(Audit.Branch_dep [ (7, 2) ]) ~necessary:true
       ~cycles:5 ());
  let j = Audit.to_json a in
  Alcotest.(check bool) "schema tagged" true (Schema.check j = Ok ());
  Alcotest.(check int) "events" 1 (Json.to_int_exn (Json.member_exn "events" j));
  Alcotest.(check int) "cycles" 5 (Json.to_int_exn (Json.member_exn "cycles" j));
  let by_reason = Json.member_exn "by_reason" j in
  Alcotest.(check int)
    "branch_dep bucket" 5
    (Json.to_int_exn
       (Json.member_exn "cycles" (Json.member_exn "branch_dep" by_reason)));
  (* per-event serialization keeps the provenance list *)
  let e = Audit.event_to_json (List.hd (Audit.recent a)) in
  Alcotest.(check string)
    "reason kind" "branch_dep"
    (Json.to_string_exn (Json.member_exn "reason" e));
  match Json.member_exn "branches" e with
  | Json.List [ b ] ->
    Alcotest.(check int) "branch seq" 7 (Json.to_int_exn (Json.member_exn "seq" b));
    Alcotest.(check int) "branch pc" 2 (Json.to_int_exn (Json.member_exn "pc" b))
  | _ -> Alcotest.fail "expected one gating branch"

(* --- wired into the pipeline ----------------------------------------- *)

let config = Gen.default_config

let run_audited ~policy ~seed program =
  let audit = Explain.audit_for program in
  let pipe =
    Pipeline.create ~mem_init:(Gen.mem_init seed) ~audit config
      ~policy:(Registry.find_exn policy) program
  in
  Pipeline.run pipe;
  (pipe, audit)

(* The two invariants the audit section advertises, on random structured
   programs under every registered policy:
   - the stall attributor still charges Policy_gate = policy_stall_cycles
     with auditing enabled (the hooks observe, they don't perturb);
   - every audited episode's cycles were Policy_gate charges, and
     episodes still open at halt are unreported, so the audited total is
     bounded by the counter. *)
let prop_audit_invariants policy =
  QCheck.Test.make ~count:20
    ~name:(Printf.sprintf "%s: audited cycles <= policy stalls" policy)
    QCheck.small_nat
    (fun seed ->
      let program = Gen.random_program seed in
      let pipe, audit = run_audited ~policy ~seed program in
      let stats = Pipeline.stats pipe in
      let stall = Pipeline.stall_attribution pipe in
      let gate = Stall.count stall Stall.Policy_gate in
      if gate <> stats.Sim_stats.policy_stall_cycles then
        QCheck.Test.fail_reportf
          "seed %d: Policy_gate %d <> policy_stall_cycles %d with audit on"
          seed gate stats.Sim_stats.policy_stall_cycles
      else if Audit.total_cycles audit > stats.Sim_stats.policy_stall_cycles
      then
        QCheck.Test.fail_reportf
          "seed %d: audited %d cycles > %d policy stall cycles" seed
          (Audit.total_cycles audit) stats.Sim_stats.policy_stall_cycles
      else if
        Audit.necessary_cycles audit + Audit.unnecessary_cycles audit
        <> Audit.total_cycles audit
      then QCheck.Test.fail_reportf "seed %d: necessity split loses cycles" seed
      else if
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Audit.by_reason audit)
        <> Audit.total_cycles audit
      then QCheck.Test.fail_reportf "seed %d: reason split loses cycles" seed
      else true)

let prop_audit_deterministic =
  QCheck.Test.make ~count:10 ~name:"audit totals are deterministic"
    QCheck.small_nat
    (fun seed ->
      let program = Gen.random_program seed in
      let observe () =
        let _, audit = run_audited ~policy:"levioso" ~seed program in
        ( Audit.total_events audit,
          Audit.total_cycles audit,
          Audit.necessary_cycles audit )
      in
      observe () = observe ())

(* The paper's story, as a regression test on real kernels: Levioso's
   restrictions are (almost) all true dependencies, while delay-on-miss
   gates anything behind any branch — so Levioso's unnecessary share
   can never exceed delay's, and on branch-rich kernels it is strictly
   smaller.  (On kernels where every transmitter truly depends on its
   guarding branch both shares are legitimately 0.) *)
let test_levioso_beats_delay_on_necessity () =
  let share w policy =
    let workload = Suite.find_exn w in
    let audit = Explain.audit_for workload.Workload.program in
    let pipe =
      Pipeline.create ~mem_init:workload.Workload.mem_init ~audit
        Config.default
        ~policy:(Registry.find_exn policy)
        workload.Workload.program
    in
    Pipeline.run pipe;
    Audit.unnecessary_share audit
  in
  let strictly_lower = ref 0 in
  List.iter
    (fun w ->
      let lev = share w "levioso" and del = share w "delay" in
      if lev > del then
        Alcotest.failf "%s: levioso unnecessary share %.3f > delay %.3f" w lev
          del;
      if lev < del then incr strictly_lower)
    [ "stream"; "spmv"; "hashjoin"; "bsearch" ];
  Alcotest.(check bool)
    "strictly lower somewhere" true (!strictly_lower >= 1)

(* Summary integration: an audited pipeline's JSON summary carries the
   audit section, an unaudited one doesn't. *)
let test_summary_audit_section () =
  let program = Gen.random_program 3 in
  let pipe, _ = run_audited ~policy:"delay" ~seed:3 program in
  let j = Levioso_uarch.Summary.of_pipeline ~workload:"w" ~policy:"delay" pipe in
  Alcotest.(check bool) "summary tagged" true (Schema.check j = Ok ());
  (match Json.member "audit" j with
  | Some audit -> Alcotest.(check bool) "audit tagged" true (Schema.check audit = Ok ())
  | None -> Alcotest.fail "audited summary lacks audit section");
  let plain =
    let pipe =
      Pipeline.create ~mem_init:(Gen.mem_init 3) config
        ~policy:(Registry.find_exn "delay") program
    in
    Pipeline.run pipe;
    Levioso_uarch.Summary.of_pipeline pipe
  in
  Alcotest.(check bool)
    "unaudited summary has no audit section" true
    (Json.member "audit" plain = None)

let suite =
  ( "audit",
    [
      Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
      Alcotest.test_case "necessity classification" `Quick
        test_necessity_classification;
      Alcotest.test_case "aggregates and share" `Quick test_aggregates_and_share;
      Alcotest.test_case "audit json" `Quick test_audit_json;
      Alcotest.test_case "levioso beats delay on necessity" `Quick
        test_levioso_beats_delay_on_necessity;
      Alcotest.test_case "summary audit section" `Quick
        test_summary_audit_section;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        (List.map prop_audit_invariants Registry.names
        @ [ prop_audit_deterministic ]) )
