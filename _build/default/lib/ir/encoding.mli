(** Binary instruction encoding.

    Each instruction packs into one 64-bit word; this grounds the paper's
    claim that the reconvergence hint costs one extra operand field on
    branches rather than a side table:

    {v
    bits  0..5   opcode
    bits  6..10  dst register
    bits 11..15  src-a register (or, branches: the compare register)
    bit  16      a is immediate (branches: flag moves to bit 6)
    bits 17..21  src-b register (branches: 16-bit immediate in 16..31)
    bit  22      b is immediate
    bits 23..27  src-c register (stores)
    bit  28      c is immediate
    bits 29..63  immediate payload (signed 35)
                 branches instead: target pc (32..47), hint pc+1 (48..63)
    v}

    Limits, reported as errors rather than silently mis-encoded: at most
    one non-zero immediate operand per non-branch instruction (zero
    immediates canonicalize to reads of the hard-wired zero register);
    branches compare a register against a register or 12-bit immediate
    (constant-on-the-left comparisons are mirrored automatically).  The
    textual and builder paths remain the primary interfaces — the encoder
    exists to validate the hardware story (the hint really fits in the
    branch word) and to measure static code size. *)

type error = {
  pc : int;
  reason : string;
}

val encode_instr :
  ?hint:int -> Ir.instr -> (int64, string) result
(** [hint] is a branch's reconvergence pc (16 bits); only valid on
    conditional branches. *)

val decode_instr : int64 -> (Ir.instr * int option, string) result
(** Returns the instruction and, for branches, the decoded hint. *)

val encode :
  ?hints:(int -> int option) -> Ir.program -> (int64 array, error) result
(** [hints pc] supplies the reconvergence pc for the branch at [pc]. *)

val decode : int64 array -> (Ir.program * (int * int) list, string) result
(** Returns the program plus the (branch pc, hint) pairs found. *)

val code_size_bytes : Ir.program -> int
(** Static code size under this encoding (8 bytes per instruction). *)
