module Cfg = Levioso_ir.Cfg
module Branch_dep = Levioso_analysis.Branch_dep
module Int_set = Levioso_analysis.Branch_dep.Int_set
module Audit = Levioso_telemetry.Audit

let classifier program =
  let bd = Branch_dep.compute (Cfg.build program) in
  let n = Array.length program in
  fun ~pc ~branch_pc ->
    pc >= 0 && pc < n && Int_set.mem branch_pc (Branch_dep.deps_of_pc bd pc)

let audit_for ?capacity program =
  Audit.create ?capacity ~is_true_dep:(classifier program) ()
