module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema

type cell = {
  workload : string;
  policy : string;
  cycles : int;
  alloc_mwords : float option;
}

type entry = { label : string; cells : cell list }

(* Host sections carry {phases, total:{minor_words, major_words,
   promoted_words, ...}}; the regression-tracked scalar is words
   allocated (minor + major - promoted) in millions. *)
let alloc_of_host host =
  match Json.member "total" host with
  | None -> None
  | Some total -> (
    let f k = Option.map Json.to_float_exn (Json.member k total) in
    match (f "minor_words", f "major_words", f "promoted_words") with
    | Some mi, Some ma, Some pr -> Some ((mi +. ma -. pr) /. 1e6)
    | _ -> None)

let cell_of_run run =
  let str k = Option.map Json.to_string_exn (Json.member k run) in
  match (str "workload", str "policy") with
  | Some workload, Some policy -> (
    match Json.member "stats" run with
    | Some stats -> (
      match Json.member "cycles" stats with
      | Some c ->
        let alloc_mwords =
          match Json.member "host" run with
          | Some host -> alloc_of_host host
          | None -> None
        in
        Ok { workload; policy; cycles = Json.to_int_exn c; alloc_mwords }
      | None -> Error "run has no stats.cycles")
    | None -> Error "run has no stats")
  | _ -> Error "run has no workload/policy labels"

let of_matrix ~label j =
  match Json.member "runs" j with
  | Some (Json.List runs) ->
    let rec collect acc = function
      | [] -> Ok { label; cells = List.rev acc }
      | run :: rest -> (
        match cell_of_run run with
        | Ok c -> collect (c :: acc) rest
        | Error e -> Error e)
    in
    collect [] runs
  | _ -> Error "matrix JSON has no \"runs\" list"

(* BENCH_matrix.json trajectory files carry cycles directly on each
   matrix cell (no nested stats object) plus the host phases; only
   default-config cells are reducible — sweep configs reuse (workload,
   policy) labels and would make the comparison key ambiguous. *)
let cell_of_trajectory run =
  let str k = Option.map Json.to_string_exn (Json.member k run) in
  match (str "workload", str "policy", Json.member "cycles" run) with
  | Some workload, Some policy, Some c ->
    let alloc_mwords =
      match Json.member "host" run with
      | Some host -> alloc_of_host host
      | None -> None
    in
    Ok { workload; policy; cycles = Json.to_int_exn c; alloc_mwords }
  | _ -> Error "matrix cell has no workload/policy/cycles"

let of_trajectory ~label j =
  match Json.member "matrix" j with
  | Some (Json.List runs) ->
    let default_only =
      List.filter
        (fun run ->
          match Json.member "default_config" run with
          | Some (Json.Bool b) -> b
          | _ -> true)
        runs
    in
    let rec collect acc = function
      | [] -> Ok { label; cells = List.rev acc }
      | run :: rest -> (
        match cell_of_trajectory run with
        | Ok c -> collect (c :: acc) rest
        | Error e -> Error e)
    in
    collect [] default_only
  | _ -> Error "JSON has neither an \"entries\", \"runs\" nor \"matrix\" list"

let cell_to_json c =
  Json.Obj
    ([
       ("workload", Json.String c.workload);
       ("policy", Json.String c.policy);
       ("cycles", Json.Int c.cycles);
     ]
    @
    match c.alloc_mwords with
    | Some a -> [ ("alloc_mwords", Json.float a) ]
    | None -> [])

let entry_to_json e =
  Json.Obj
    [
      ("label", Json.String e.label);
      ("cells", Json.List (List.map cell_to_json e.cells));
    ]

let cell_of_json j =
  {
    workload = Json.to_string_exn (Json.member_exn "workload" j);
    policy = Json.to_string_exn (Json.member_exn "policy" j);
    cycles = Json.to_int_exn (Json.member_exn "cycles" j);
    alloc_mwords =
      (match Json.member "alloc_mwords" j with
      | Some (Json.Null) | None -> None
      | Some v -> Some (Json.to_float_exn v));
  }

let entry_of_json j =
  {
    label = Json.to_string_exn (Json.member_exn "label" j);
    cells = List.map cell_of_json (Json.to_list_exn (Json.member_exn "cells" j));
  }

let read_file path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  | exception Sys_error msg -> Error msg

let load path =
  match read_file path with
  | Error msg -> Error msg
  | Ok body -> (
    match Json.of_string body with
    | Error msg -> Error (path ^ ": " ^ msg)
    | Ok j -> (
      match Schema.check ~what:path j with
      | Error msg -> Error msg
      | Ok () -> (
        match Json.member "entries" j with
        | Some (Json.List entries) -> (
          match List.map entry_of_json entries with
          | entries -> Ok entries
          | exception Invalid_argument msg -> Error (path ^ ": " ^ msg))
        | Some _ -> Error (path ^ ": \"entries\" is not a list")
        | None -> (
          (* fall back: a bare matrix file (summary runs) or a
             BENCH_matrix.json trajectory artifact *)
          let reduced =
            if Json.member "runs" j <> None then of_matrix ~label:"matrix" j
            else of_trajectory ~label:"matrix" j
          in
          match reduced with
          | Ok e -> Ok [ e ]
          | Error msg -> Error (path ^ ": " ^ msg)))))

let save path entries =
  let j = Schema.tag [ ("entries", Json.List (List.map entry_to_json entries)) ] in
  let oc = open_out_bin path in
  Json.to_channel oc j;
  output_char oc '\n';
  close_out oc

let append ~path entry =
  let existing =
    if Sys.file_exists path then load path else Ok []
  in
  match existing with
  | Error msg -> Error msg
  | Ok entries ->
    let entries = entries @ [ entry ] in
    save path entries;
    Ok (List.length entries)

type regression = {
  r_workload : string;
  r_policy : string;
  r_metric : string;
  r_old : float;
  r_new : float;
  pct : float;
}

let check_metric ~metric ~tolerance ~workload ~policy ~old_v ~new_v =
  if old_v <= 0. then None
  else
    let pct = 100.0 *. (new_v -. old_v) /. old_v in
    if pct > tolerance then
      Some
        {
          r_workload = workload;
          r_policy = policy;
          r_metric = metric;
          r_old = old_v;
          r_new = new_v;
          pct;
        }
    else None

let compare_latest ~tolerance ?alloc_tolerance ~old_ ~new_ () =
  let alloc_tolerance =
    match alloc_tolerance with Some t -> t | None -> tolerance
  in
  match (List.rev old_, List.rev new_) with
  | [], _ -> Error "old history is empty"
  | _, [] -> Error "new history is empty"
  | o :: _, n :: _ ->
    let overlap = ref 0 in
    let regressions =
      List.concat_map
        (fun nc ->
          match
            List.find_opt
              (fun oc -> oc.workload = nc.workload && oc.policy = nc.policy)
              o.cells
          with
          | None -> []
          | Some oc ->
            incr overlap;
            let cycles =
              check_metric ~metric:"cycles" ~tolerance ~workload:nc.workload
                ~policy:nc.policy
                ~old_v:(float_of_int oc.cycles)
                ~new_v:(float_of_int nc.cycles)
            in
            let alloc =
              (* Only comparable when both sides were host-profiled;
                 old baselines without host sections simply opt out. *)
              match (oc.alloc_mwords, nc.alloc_mwords) with
              | Some oa, Some na ->
                check_metric ~metric:"alloc_mwords" ~tolerance:alloc_tolerance
                  ~workload:nc.workload ~policy:nc.policy ~old_v:oa ~new_v:na
              | _ -> None
            in
            List.filter_map Fun.id [ cycles; alloc ])
        n.cells
    in
    if !overlap = 0 then Error "no overlapping cells between histories"
    else Ok regressions

let regression_to_string r =
  let fmt v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3f" v
  in
  Printf.sprintf "%s/%s: %s -> %s %s (%+.1f%%)" r.r_workload r.r_policy
    (fmt r.r_old) (fmt r.r_new) r.r_metric r.pct
