(** Named counters and distributions, with scoping.

    A registry replaces ad-hoc mutable stat fields: components create
    counters and histograms by name, the harness reads everything back
    uniformly as rows or JSON.  A {e scope} is a registry view that
    prefixes every name ([scope r "levioso"] yields names like
    ["levioso/issue_stalls"]) — this is how per-policy instrumentation
    stays separable when several policies run in one process.

    Counters are plain [int]s; histograms record observations and
    report count / mean / p50 / p95 / max.  An unbounded histogram keeps
    every observation (exact percentiles); one created with [~bound:k]
    keeps a uniform [k]-sample reservoir (Algorithm R, deterministic
    replacement stream seeded from the instrument name) so memory stays
    O(k) — count, mean and max remain exact, percentiles are sampled.
    Creation is idempotent:
    asking for an existing name returns the existing instrument (so a
    policy re-created for another run accumulates into the same series
    unless the registry is fresh). *)

type t

module Counter : sig
  type c

  val incr : c -> unit
  val add : c -> int -> unit
  val value : c -> int
  val name : c -> string
end

module Histogram : sig
  type h

  val observe : h -> int -> unit

  val count : h -> int
  (** Total observations (exact, even past a reservoir bound). *)

  val stored : h -> int
  (** Observations actually held (= [count] while unbounded or under the
      bound; = the bound afterwards). *)

  val mean : h -> float
  val percentile : h -> float -> int
  (** [percentile h 95.0] — nearest-rank on the stored observations
      (exact when unbounded, sampled past a reservoir bound).
      @raise Invalid_argument on an empty histogram. *)

  val max_value : h -> int
  (** 0 for an empty histogram. *)

  val name : h -> string
end

val create : unit -> t

val scope : t -> string -> t
(** A view whose instruments are named ["<prefix>/<name>"].  Instruments
    live in the parent; scoping nests. *)

val counter : t -> string -> Counter.c
(** Find-or-create. @raise Invalid_argument if the name exists as a
    histogram. *)

val histogram : ?bound:int -> t -> string -> Histogram.h
(** Find-or-create.  [bound] (default 0 = unbounded) caps stored
    observations via reservoir sampling; it applies at creation and is
    ignored when the instrument already exists.
    @raise Invalid_argument if the name exists as a counter. *)

val counter_value : t -> string -> int option
(** Read a counter by (fully scoped relative) name without creating it. *)

val names : t -> string list
(** Every instrument under this scope, sorted, scope prefix stripped. *)

val to_rows : t -> (string * string) list
(** Human-readable dump of the instruments under this scope, sorted by
    name.  Histograms render as "n=… mean=… p50=… p95=… max=…". *)

val to_json : t -> Json.t
(** Object keyed by name; counters as ints, histograms as
    [{count, mean, p50, p95, max}].  Covers the instruments under this
    scope, names relative to it. *)

val reset : t -> unit
(** Zero every instrument under this scope (instruments survive, values
    clear). *)
