module Cfg = Levioso_ir.Cfg

type t = { dom : Domtree.t; exit_node : int }

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let exit_node = n in
  let exits = Cfg.exit_blocks cfg in
  (* Reverse graph: successors are CFG predecessors; the virtual exit's
     successors are the Halt blocks, and it is the entry of the reverse
     graph. *)
  let succs id =
    if id = exit_node then exits else (Cfg.block cfg id).Cfg.preds
  in
  let preds id =
    if id = exit_node then []
    else
      let real = (Cfg.block cfg id).Cfg.succs in
      if List.mem id exits then exit_node :: real else real
  in
  let dom = Domtree.compute ~num_nodes:(n + 1) ~entry:exit_node ~succs ~preds in
  { dom; exit_node }

let ipostdom t b =
  match Domtree.idom t.dom b with
  | Some d when d <> t.exit_node -> Some d
  | Some _ | None -> None

let postdominates t a b = Domtree.dominates t.dom a b

let virtual_exit t = t.exit_node
