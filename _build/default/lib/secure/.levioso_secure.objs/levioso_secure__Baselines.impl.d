lib/secure/baselines.ml: Levioso_uarch
