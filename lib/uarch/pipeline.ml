module Ir = Levioso_ir.Ir
module Stall = Levioso_telemetry.Stall
module Registry = Levioso_telemetry.Registry
module Audit = Levioso_telemetry.Audit
module Flowtrace = Levioso_telemetry.Flowtrace

type load_visibility =
  | Normal
  | Invisible

type policy = {
  policy_name : string;
  on_decode : seq:int -> unit;
  on_resolve : seq:int -> unit;
  on_squash : boundary:int -> unit;
  on_commit : seq:int -> unit;
  may_execute : seq:int -> bool;
  load_visibility : seq:int -> load_visibility;
  explain : seq:int -> Audit.reason;
}

let always_execute_policy =
  {
    policy_name = "always-execute";
    on_decode = (fun ~seq:_ -> ());
    on_resolve = (fun ~seq:_ -> ());
    on_squash = (fun ~boundary:_ -> ());
    on_commit = (fun ~seq:_ -> ());
    may_execute = (fun ~seq:_ -> true);
    load_visibility = (fun ~seq:_ -> Normal);
    explain = (fun ~seq:_ -> Audit.Unspecified);
  }

type event =
  | Fetched of { seq : int; pc : int }
  | Issued of { seq : int; pc : int }
  | Completed of { seq : int; pc : int }
  | Committed of { seq : int; pc : int }
  | Branch_resolved of { seq : int; pc : int; taken : bool; mispredicted : bool }
  | Squashed of { boundary : int; count : int }

let event_to_string = function
  | Fetched { seq; pc } -> Printf.sprintf "fetch   seq=%d pc=%d" seq pc
  | Issued { seq; pc } -> Printf.sprintf "issue   seq=%d pc=%d" seq pc
  | Completed { seq; pc } -> Printf.sprintf "done    seq=%d pc=%d" seq pc
  | Committed { seq; pc } -> Printf.sprintf "commit  seq=%d pc=%d" seq pc
  | Branch_resolved { seq; pc; taken; mispredicted } ->
    Printf.sprintf "resolve seq=%d pc=%d taken=%b mispredict=%b" seq pc taken
      mispredicted
  | Squashed { boundary; count } ->
    Printf.sprintf "squash  boundary=%d count=%d" boundary count

(* Hot-path state encodings.  The per-cycle structures avoid boxed
   values entirely: source operands, in-flight state, the rename table,
   completion buckets and the unresolved-branch queue are all bare ints
   with -1 (or the codes below) as sentinels, so a tracer-off cycle
   allocates nothing. *)

(* entry.st *)
let st_waiting = 0
let st_inflight = 1
let st_done = 2

(* One open restriction episode (audit enabled only): captured at the
   first policy refusal, closed — one audit event — when the entry
   issues or is squashed. *)
type gate = {
  g_reason : Audit.reason;
  g_necessary : bool;
  mutable g_cycles : int;
}

(* ROB entries live in a preallocated arena ([t.slots]) and are reused
   across instructions: dispatch overwrites every field in place, so the
   per-instruction cost is stores into existing blocks, not a fresh
   record + arrays.  Operand sources captured at rename: [src_kind.(i)]
   is 0 for a literal (immediates and already-committed register reads,
   value in [src_val]) and 1 for an in-flight producer ([src_val] holds
   its seq). *)
type entry = {
  mutable seq : int;
  mutable pc : int;
  mutable instr : Ir.instr;
  mutable n_srcs : int;
  src_kind : int array;  (* length 3 *)
  src_val : int array;  (* length 3 *)
  mutable st : int;  (* st_waiting / st_inflight / st_done *)
  mutable done_cycle : int;  (* meaningful when st_inflight *)
  mutable value : int;
  mutable addr : int;
  mutable addr_known : bool;
  mutable pred_taken : bool;
  mutable taken : bool;
  mutable resolved : bool;
  mutable started : bool;
  mutable is_miss : bool;  (* holds an MSHR while in flight *)
  mutable policy_stalled : bool;
  mutable gate : gate option;  (* open audit episode, audit enabled only *)
  (* flow tracing (enabled only): the entry's leak-graph node id (-1 =
     no node yet), the taint marker on the value it produces (-1 =
     clean, otherwise the node id of the tainting instruction), and the
     per-source taint markers captured at rename for operands that
     collapsed to literals (committed-register reads). *)
  mutable fi_id : int;
  mutable fi_v : int;
  fi_src : int array;  (* length 3 *)
  (* branches carry recovery snapshots (blitted in place at dispatch) *)
  rename_snap : int array;  (* length num_regs; -1 = no mapping *)
  mutable hist_snap : Predictor.snapshot;
}

(* Shadow taint state for the speculative information-flow tracer.
   Allocated only by [set_flow_tracer]; everything is Option-gated so a
   tracer-off run executes not one extra instruction on the hot path.
   Taint markers are leak-graph node ids: [fl_taint_regs]/[fl_taint_mem]
   shadow the architectural register file and memory (written only at
   commit, so squashes need no rollback), [fl_taint_buf] shadows
   [value_buf] (written at completion, same aliasing argument). *)
type flow = {
  fl_ranges : (int * int) list;  (* secret address ranges, inclusive *)
  fl_cb : cycle:int -> Flowtrace.event -> unit;
  fl_taint_regs : int array;
  fl_taint_mem : int array;
  fl_taint_buf : int array;
  mutable fl_next_id : int;
}

type t = {
  cfg : Config.t;
  program : Ir.program;
  rob : int;  (* cfg.rob_size *)
  vb : int;  (* value_buf length = 2 * rob *)
  regs : int array;
  memory : int array;
  mem_mask : int;
  hierarchy : Cache.Hierarchy.h;
  predictor : Predictor.t;
  slots : entry array;  (* arena, indexed seq mod rob *)
  value_buf : int array;
  rename : int array;  (* -1 = architectural (no in-flight producer) *)
  mutable head_seq : int;
  mutable tail_seq : int;
  mutable fetch_pc : int;
  mutable fetch_resume : int;  (* first cycle fetch may proceed *)
  mutable fetch_stopped : bool;
  mutable outstanding_misses : int;
  mutable cyc : int;
  mutable is_halted : bool;
  mutable policy : policy;
  stats : Sim_stats.t;
  stall : Stall.t;
  reg : Registry.t;
  (* Completion calendar: a power-of-two ring of buckets indexed by
     completion cycle, flattened into [comp_buf] ([comp_cap] ints per
     bucket, occupancy in [comp_len]).  Sized so the largest configured
     latency never wraps past an undrained bucket; each bucket keeps its
     seqs sorted ascending (insertion shift) so completion order is
     deterministic without a per-cycle sort or any list consing. *)
  comp_buf : int array;
  comp_len : int array;
  comp_cap : int;
  completions_mask : int;
  (* In-flight unresolved conditional branches, ascending by seq, in a
     flat queue ([ub_len] live entries).  Maintained at dispatch /
     resolve / squash so the policy-facing queries
     [exists_older_unresolved_branch] (O(1): compare against the head)
     and [older_unresolved_branches] (O(branches), not O(window)) never
     rescan the whole ROB. *)
  ub : int array;
  mutable ub_len : int;
  mutable tracer : (cycle:int -> event -> unit) option;
  mutable stall_tracer :
    (cycle:int -> seq:int -> pc:int -> cause:Stall.cause -> unit) option;
  mutable flow : flow option;
  (* Always-on bounded window of recent events for deadlock diagnostics
     (and post-mortem inspection), stored flat — 5 ints per event
     (cycle, tag, a, b, c) — so recording never allocates; events are
     materialized only by [recent_events]. *)
  recent_buf : int array;
  mutable recent_len : int;  (* total events ever pushed *)
  mutable head_stall_cause : int;  (* Stall.cause_index, -1 = none *)
  audit : Audit.t option;
}

type policy_maker = Config.t -> Ir.program -> t -> policy

type deadlock = {
  dl_cycle : int;
  dl_last_commit_cycle : int;
  dl_policy : string;
  dl_head_seq : int;
  dl_head_pc : int;
  dl_head_cause : Stall.cause option;
  dl_recent_events : (int * event) list;
}

exception Deadlock of deadlock

let deadlock_to_string d =
  let cause =
    match d.dl_head_cause with
    | Some c -> Stall.cause_to_string c
    | None -> "unknown"
  in
  let events =
    match d.dl_recent_events with
    | [] -> "none"
    | evs ->
      String.concat "; "
        (List.map
           (fun (c, ev) -> Printf.sprintf "[%d] %s" c (event_to_string ev))
           evs)
  in
  Printf.sprintf
    "no commit since cycle %d (now %d): head seq %d pc %d stalled on %s \
     (policy %s); recent events: %s"
    d.dl_last_commit_cycle d.dl_cycle d.dl_head_seq d.dl_head_pc cause
    d.dl_policy events

let () =
  Printexc.register_printer (function
    | Deadlock d -> Some ("Pipeline.Deadlock: " ^ deadlock_to_string d)
    | _ -> None)

let is_transmitter = function
  | Ir.Load _ | Ir.Flush _ -> true
  | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Rdcycle _ | Ir.Halt ->
    false

let recent_events_capacity = 32

let in_flight t seq = seq >= t.head_seq && seq < t.tail_seq

(* In any window of <= rob in-flight seqs, [slot_of] is injective, so an
   in-flight seq's slot necessarily holds its entry; anything outside
   the window is stale arena contents. *)
let entry_exn t seq =
  if seq >= t.head_seq && seq < t.tail_seq then t.slots.(seq mod t.rob)
  else invalid_arg (Printf.sprintf "Pipeline: seq %d not in flight" seq)

let instr_of t seq = (entry_exn t seq).instr
let pc_of t seq = (entry_exn t seq).pc
let oldest_seq t = t.head_seq
let next_seq t = t.tail_seq

let is_unresolved_branch t seq =
  in_flight t seq
  &&
  let e = entry_exn t seq in
  Ir.is_branch e.instr && not e.resolved

let older_unresolved_branches t ~seq =
  let rec count i = if i < t.ub_len && t.ub.(i) < seq then count (i + 1) else i in
  let n = count 0 in
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.ub.(i) :: acc) in
  build (n - 1) []

let exists_older_unresolved_branch t ~seq = t.ub_len > 0 && t.ub.(0) < seq

let producers_of t seq =
  let e = entry_exn t seq in
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if e.src_kind.(i) = 1 then e.src_val.(i) :: acc else acc)
  in
  go (e.n_srcs - 1) []

let regs t = t.regs
let mem t = t.memory
let cycle t = t.cyc
let stats t = t.stats
let stall_attribution t = t.stall
let audit t = t.audit
let registry t = t.reg
let hierarchy t = t.hierarchy
let predictor t = t.predictor
let config t = t.cfg
let halted t = t.is_halted

let arch_pc t =
  (* An empty window means no unresolved branch is in flight, so
     [fetch_pc] is on the architecturally-correct path. *)
  if t.head_seq < t.tail_seq then t.slots.(t.head_seq mod t.rob).pc
  else t.fetch_pc

let set_tracer t f = t.tracer <- Some f
let set_stall_tracer t f = t.stall_tracer <- Some f

let set_flow_tracer t ~secret_ranges f =
  List.iter
    (fun (lo, hi) ->
      if lo < 0 || lo > hi then
        invalid_arg
          (Printf.sprintf "Pipeline.set_flow_tracer: bad secret range %d:%d" lo
             hi))
    secret_ranges;
  t.flow <-
    Some
      {
        fl_ranges = secret_ranges;
        fl_cb = f;
        fl_taint_regs = Array.make Ir.num_regs (-1);
        fl_taint_mem = Array.make (Array.length t.memory) (-1);
        fl_taint_buf = Array.make t.vb (-1);
        fl_next_id = 0;
      }

(* --- event recording ------------------------------------------------- *)

(* Event tags in the flat ring.  For seq-carrying tags a=seq, b=pc; for
   resolves c packs taken (bit 0) and mispredicted (bit 1); for squashes
   a=boundary, b=count. *)
let tag_fetched = 0
let tag_issued = 1
let tag_completed = 2
let tag_committed = 3
let tag_resolved = 4
let tag_squashed = 5

let decode_event tag a b c =
  match tag with
  | 0 -> Fetched { seq = a; pc = b }
  | 1 -> Issued { seq = a; pc = b }
  | 2 -> Completed { seq = a; pc = b }
  | 3 -> Committed { seq = a; pc = b }
  | 4 ->
    Branch_resolved
      { seq = a; pc = b; taken = c land 1 = 1; mispredicted = c land 2 = 2 }
  | _ -> Squashed { boundary = a; count = b }

let ring_store t tag a b c =
  let i = t.recent_len mod recent_events_capacity * 5 in
  t.recent_buf.(i) <- t.cyc;
  t.recent_buf.(i + 1) <- tag;
  t.recent_buf.(i + 2) <- a;
  t.recent_buf.(i + 3) <- b;
  t.recent_buf.(i + 4) <- c;
  t.recent_len <- t.recent_len + 1

(* The event variant is constructed only when a tracer is installed; the
   always-on ring sees bare ints. *)
let emit_seq t tag seq pc =
  ring_store t tag seq pc 0;
  match t.tracer with
  | None -> ()
  | Some f -> f ~cycle:t.cyc (decode_event tag seq pc 0)

let emit_resolved t seq pc ~taken ~mispredicted =
  let c = (if taken then 1 else 0) lor (if mispredicted then 2 else 0) in
  ring_store t tag_resolved seq pc c;
  match t.tracer with
  | None -> ()
  | Some f -> f ~cycle:t.cyc (Branch_resolved { seq; pc; taken; mispredicted })

let emit_squashed t boundary count =
  ring_store t tag_squashed boundary count 0;
  match t.tracer with
  | None -> ()
  | Some f -> f ~cycle:t.cyc (Squashed { boundary; count })

let recent_events t =
  let n = min t.recent_len recent_events_capacity in
  let rec go k acc =
    if k < t.recent_len - n then acc
    else
      let i = k mod recent_events_capacity * 5 in
      go (k - 1)
        (( t.recent_buf.(i),
           decode_event
             t.recent_buf.(i + 1)
             t.recent_buf.(i + 2)
             t.recent_buf.(i + 3)
             t.recent_buf.(i + 4) )
        :: acc)
  in
  go (t.recent_len - 1) []

(* One waiting cycle attributed to [cause] for entry [e]: feeds the
   aggregate table, the head-of-window diagnostic (what the oldest
   instruction is blocked on right now), and the optional per-cycle
   stall tracer (timeline rendering). *)
let charge_entry t e cause =
  Stall.charge t.stall ~cause ~pc:e.pc;
  if e.seq = t.head_seq then t.head_stall_cause <- Stall.cause_index cause;
  match t.stall_tracer with
  | Some f -> f ~cycle:t.cyc ~seq:e.seq ~pc:e.pc ~cause
  | None -> ()

let mask_addr t addr = addr land t.mem_mask

let src_ready t e i =
  e.src_kind.(i) = 0
  ||
  let s = e.src_val.(i) in
  s < t.head_seq || t.slots.(s mod t.rob).st = st_done

let src_value t e i =
  if e.src_kind.(i) = 0 then e.src_val.(i)
  else
    let s = e.src_val.(i) in
    if s < t.head_seq then t.value_buf.(s mod t.vb)
    else t.slots.(s mod t.rob).value

let operands_ready t e =
  let n = e.n_srcs in
  (n < 1 || src_ready t e 0)
  && (n < 2 || src_ready t e 1)
  && (n < 3 || src_ready t e 2)

let load_address_if_ready t seq =
  let e = entry_exn t seq in
  match e.instr with
  | Ir.Load _ when src_ready t e 0 && src_ready t e 1 ->
    Some (mask_addr t (src_value t e 0 + src_value t e 1))
  | Ir.Load _ | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
  | Ir.Rdcycle _ | Ir.Halt ->
    None

let def_reg = function
  | Ir.Alu { dst; _ } | Ir.Load { dst; _ } | Ir.Rdcycle { dst; _ } ->
    if dst = Ir.zero_reg then -1 else dst
  | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _ | Ir.Halt -> -1

(* --- speculative information-flow tracing --------------------------- *)

let flow_kind = function
  | Ir.Branch _ -> Flowtrace.Branch
  | Ir.Load _ -> Flowtrace.Load
  | Ir.Store _ -> Flowtrace.Store
  | Ir.Flush _ -> Flowtrace.Flush
  | Ir.Alu _ -> Flowtrace.Alu
  | Ir.Jump _ | Ir.Rdcycle _ | Ir.Halt -> Flowtrace.Other

(* Lazy node creation: only instructions that carry or observe taint get
   a node, so the graph stays small on big clean workloads. *)
let flow_node t fl e =
  if e.fi_id < 0 then begin
    e.fi_id <- fl.fl_next_id;
    fl.fl_next_id <- fl.fl_next_id + 1;
    fl.fl_cb ~cycle:t.cyc
      (Flowtrace.Node
         {
           id = e.fi_id;
           seq = e.seq;
           pc = e.pc;
           kind = flow_kind e.instr;
           disasm = Ir.instr_to_string e.instr;
         })
  end;
  e.fi_id

(* Taint marker of source operand [i]: committed-register reads collapse
   to literals at rename, so their marker was captured into [fi_src]
   then; in-flight producers are consulted live, committed ones through
   the taint shadow of [value_buf]. *)
let src_taint t fl e i =
  if e.src_kind.(i) = 0 then e.fi_src.(i)
  else
    let s = e.src_val.(i) in
    if s < t.head_seq then fl.fl_taint_buf.(s mod t.vb)
    else t.slots.(s mod t.rob).fi_v

(* Called once per successful issue (flow tracing on).  Classifies each
   operand as address- or data-carrying, decides whether the instruction
   births taint (a load reading a secret range from the hierarchy),
   transmits it (a tainted-address cache access), or merely propagates
   it, and emits the matching graph events.  [forward_seq] is the
   forwarding store's seq for a store-to-load forward, -1 otherwise. *)
let flow_on_issue t fl e ~forward_seq ~touched_cache =
  let addr_idx, data_idx =
    match e.instr with
    | Ir.Alu _ | Ir.Branch _ -> ([], [ 0; 1 ])
    | Ir.Load _ | Ir.Flush _ -> ([ 0; 1 ], [])
    | Ir.Store _ -> ([ 0; 1 ], [ 2 ])
    | Ir.Rdcycle _ | Ir.Jump _ | Ir.Halt -> ([], [])
  in
  let tainted idx =
    List.filter_map
      (fun i ->
        let m = src_taint t fl e i in
        if m >= 0 then Some m else None)
      idx
  in
  let addr_taints = tainted addr_idx in
  let data_taints = tainted data_idx in
  let mem_taint =
    match e.instr with
    | Ir.Load _ ->
      if forward_seq >= 0 then t.slots.(forward_seq mod t.rob).fi_v
      else fl.fl_taint_mem.(e.addr)
    | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      -1
  in
  let in_range a = List.exists (fun (lo, hi) -> a >= lo && a <= hi) fl.fl_ranges in
  let is_source =
    match e.instr with
    | Ir.Load _ -> forward_seq < 0 && in_range e.addr
    | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      false
  in
  let is_transmit = touched_cache && addr_taints <> [] in
  let value_tainted =
    is_source || data_taints <> [] || mem_taint >= 0
    || (match e.instr with
       | Ir.Load _ -> addr_taints <> []
       | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
       | Ir.Rdcycle _ | Ir.Halt ->
         false)
  in
  if is_source || is_transmit || value_tainted || addr_taints <> [] then begin
    let id = flow_node t fl e in
    List.iter
      (fun m -> fl.fl_cb ~cycle:t.cyc (Flowtrace.Edge { src = m; dst = id; dep = Flowtrace.Address }))
      addr_taints;
    List.iter
      (fun m -> fl.fl_cb ~cycle:t.cyc (Flowtrace.Edge { src = m; dst = id; dep = Flowtrace.Data }))
      data_taints;
    if mem_taint >= 0 then
      fl.fl_cb ~cycle:t.cyc
        (Flowtrace.Edge { src = mem_taint; dst = id; dep = Flowtrace.Data });
    if is_source then
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Source { id; addr = e.addr });
    if is_source || is_transmit then
      (* Speculation edges tie the leak to the branches it raced: one per
         older unresolved branch, emitted only for sources and transmits
         to keep the graph lean. *)
      List.iter
        (fun s ->
          let be = entry_exn t s in
          let bid = flow_node t fl be in
          fl.fl_cb ~cycle:t.cyc
            (Flowtrace.Edge { src = bid; dst = id; dep = Flowtrace.Speculation }))
        (older_unresolved_branches t ~seq:e.seq);
    if is_transmit then
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Transmit { id; addr = e.addr });
    if value_tainted then e.fi_v <- id
  end

let flow_issue t e ~forward_seq ~touched_cache =
  match t.flow with
  | None -> ()
  | Some fl -> flow_on_issue t fl e ~forward_seq ~touched_cache

(* --- restriction audit ---------------------------------------------- *)

(* Open an episode at the first refusal: capture the policy's own
   explanation and classify necessity against the older unresolved
   branches standing at this moment — an instruction restricted while
   none of them is a true static branch dependency of its PC was
   restricted unnecessarily. *)
let audit_gate t a e seq =
  match e.gate with
  | Some g -> g.g_cycles <- g.g_cycles + 1
  | None ->
    let branch_pcs =
      List.map (fun s -> (entry_exn t s).pc) (older_unresolved_branches t ~seq)
    in
    e.gate <-
      Some
        {
          g_reason = t.policy.explain ~seq;
          g_necessary = Audit.necessary a ~pc:e.pc ~branch_pcs;
          g_cycles = 1;
        }

let audit_close t a e outcome =
  match e.gate with
  | None -> ()
  | Some g ->
    e.gate <- None;
    Audit.record a
      {
        Audit.seq = e.seq;
        pc = e.pc;
        policy = t.policy.policy_name;
        reason = g.g_reason;
        necessary = g.g_necessary;
        cycles = g.g_cycles;
        end_cycle = t.cyc;
        outcome;
      }

(* --- dispatch ------------------------------------------------------- *)

(* Rename one source operand in place: immediates and already-committed
   register values become literals (kind 0); in-flight producers are
   referenced by seq (kind 1).  A rename-snapshot restore can resurrect
   a mapping to an already-committed producer, hence the [< head_seq]
   literal collapse (its value is in the register file). *)
let set_src t e i op =
  match op with
  | Ir.Imm v ->
    e.src_kind.(i) <- 0;
    e.src_val.(i) <- v;
    e.fi_src.(i) <- -1
  | Ir.Reg r ->
    if r = Ir.zero_reg then begin
      e.src_kind.(i) <- 0;
      e.src_val.(i) <- 0;
      e.fi_src.(i) <- -1
    end
    else
      let s = t.rename.(r) in
      if s < t.head_seq then begin
        e.src_kind.(i) <- 0;
        e.src_val.(i) <- t.regs.(r);
        (* the literal collapse would lose the register's taint — capture
           the marker now, while the register identity is still known *)
        e.fi_src.(i) <-
          (match t.flow with
          | Some fl -> fl.fl_taint_regs.(r)
          | None -> -1)
      end
      else begin
        e.src_kind.(i) <- 1;
        e.src_val.(i) <- s;
        e.fi_src.(i) <- -1
      end

let dispatch_one t =
  let pc = t.fetch_pc in
  let instr = t.program.(pc) in
  let seq = t.tail_seq in
  let e = t.slots.(seq mod t.rob) in
  e.seq <- seq;
  e.pc <- pc;
  e.instr <- instr;
  e.st <- st_waiting;
  e.done_cycle <- 0;
  e.value <- 0;
  e.addr <- 0;
  e.addr_known <- false;
  e.pred_taken <- false;
  e.taken <- false;
  e.resolved <- false;
  e.started <- false;
  e.is_miss <- false;
  e.policy_stalled <- false;
  e.gate <- None;
  e.fi_id <- -1;
  e.fi_v <- -1;
  (match instr with
  | Ir.Alu { a; b; _ } | Ir.Branch { a; b; _ } ->
    e.n_srcs <- 2;
    set_src t e 0 a;
    set_src t e 1 b
  | Ir.Load { base; off; _ } | Ir.Flush { base; off } ->
    e.n_srcs <- 2;
    set_src t e 0 base;
    set_src t e 1 off
  | Ir.Store { base; off; src } ->
    e.n_srcs <- 3;
    set_src t e 0 base;
    set_src t e 1 off;
    set_src t e 2 src
  | Ir.Rdcycle { after; _ } ->
    e.n_srcs <- 1;
    set_src t e 0 after
  | Ir.Jump _ | Ir.Halt -> e.n_srcs <- 0);
  let is_br = Ir.is_branch instr in
  if is_br then Array.blit t.rename 0 e.rename_snap 0 (Array.length t.rename);
  e.hist_snap <- Predictor.snapshot t.predictor;
  t.tail_seq <- seq + 1;
  (* [seq] exceeds every in-flight seq, so appending keeps the queue
     ascending; squash trims it back before any seq is reused. *)
  if is_br then begin
    t.ub.(t.ub_len) <- seq;
    t.ub_len <- t.ub_len + 1
  end;
  t.stats.Sim_stats.fetched <- t.stats.Sim_stats.fetched + 1;
  emit_seq t tag_fetched seq pc;
  (* Rename the destination after capturing sources. *)
  let d = def_reg instr in
  if d >= 0 then t.rename.(d) <- seq;
  (* Steer fetch. *)
  (match instr with
  | Ir.Branch { target; _ } ->
    let dir = Predictor.predict t.predictor ~pc in
    e.pred_taken <- dir;
    t.fetch_pc <- (if dir then target else pc + 1)
  | Ir.Jump { target } ->
    e.st <- st_done;
    t.fetch_pc <- target
  | Ir.Halt ->
    e.st <- st_done;
    t.fetch_stopped <- true
  | Ir.Alu _ | Ir.Load _ | Ir.Store _ | Ir.Flush _ | Ir.Rdcycle _ ->
    t.fetch_pc <- pc + 1);
  t.policy.on_decode ~seq

let fetch t =
  if (not t.fetch_stopped) && t.cyc >= t.fetch_resume then begin
    let rec go budget =
      if budget > 0 && (not t.fetch_stopped) && t.tail_seq - t.head_seq < t.rob
      then begin
        dispatch_one t;
        go (budget - 1)
      end
      else budget
    in
    let remaining = go t.cfg.Config.fetch_width in
    (* Attribution: fetch wanted to dispatch but the window is full — one
       Rob_full charge per blocked cycle, against the stalled fetch PC. *)
    if
      remaining > 0
      && (not t.fetch_stopped)
      && t.tail_seq - t.head_seq >= t.rob
      && t.fetch_pc < Array.length t.program
    then Stall.charge t.stall ~cause:Stall.Rob_full ~pc:t.fetch_pc
  end

(* --- squash --------------------------------------------------------- *)

let squash t ~boundary =
  let branch = entry_exn t boundary in
  emit_squashed t boundary (t.tail_seq - boundary - 1);
  for seq = t.tail_seq - 1 downto boundary + 1 do
    let e = t.slots.(seq mod t.rob) in
    (match t.audit with
    | Some a -> audit_close t a e Audit.Squashed
    | None -> ());
    t.stats.Sim_stats.squashed <- t.stats.Sim_stats.squashed + 1;
    if e.is_miss then begin
      e.is_miss <- false;
      t.outstanding_misses <- t.outstanding_misses - 1
    end;
    if e.started then begin
      (match e.instr with
      | Ir.Load _ ->
        t.stats.Sim_stats.wrong_path_executed_loads <-
          t.stats.Sim_stats.wrong_path_executed_loads + 1
      | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
      | Ir.Rdcycle _ | Ir.Halt ->
        ());
      if is_transmitter e.instr then
        Sim_stats.record_wrong_path_transmit t.stats ~branch_pc:branch.pc ~pc:e.pc
    end;
    match t.flow with
    | Some fl when e.fi_id >= 0 ->
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Squashed { id = e.fi_id })
    | Some _ | None -> ()
  done;
  t.tail_seq <- boundary + 1;
  (* ascending, so everything younger than the boundary is a suffix *)
  let rec trim n = if n > 0 && t.ub.(n - 1) > boundary then trim (n - 1) else n in
  t.ub_len <- trim t.ub_len;
  (* Restore the rename table from the branch's snapshot, dropping mappings
     whose producers have committed meanwhile (their values are in the
     register file). *)
  for r = 0 to Array.length t.rename - 1 do
    let s = branch.rename_snap.(r) in
    t.rename.(r) <- (if s >= 0 && s < t.head_seq then -1 else s)
  done;
  t.policy.on_squash ~boundary

(* --- completion ----------------------------------------------------- *)

(* Ascending insertion shift: buckets hold at most a few seqs (one issue
   group's worth), so this beats sorting the whole bucket at drain. *)
let schedule_completion t seq done_cycle =
  let b = done_cycle land t.completions_mask in
  let base = b * t.comp_cap in
  let len = t.comp_len.(b) in
  assert (len < t.comp_cap);
  let rec place i =
    if i > 0 && t.comp_buf.(base + i - 1) > seq then begin
      t.comp_buf.(base + i) <- t.comp_buf.(base + i - 1);
      place (i - 1)
    end
    else t.comp_buf.(base + i) <- seq
  in
  place len;
  t.comp_len.(b) <- len + 1

let ub_remove t seq =
  let n = t.ub_len in
  let rec find i = if i >= n then n else if t.ub.(i) = seq then i else find (i + 1) in
  let i = find 0 in
  if i < n then begin
    for k = i to n - 2 do
      t.ub.(k) <- t.ub.(k + 1)
    done;
    t.ub_len <- n - 1
  end

let resolve_branch t e =
  e.resolved <- true;
  ub_remove t e.seq;
  let mispredicted = e.taken <> e.pred_taken in
  emit_resolved t e.seq e.pc ~taken:e.taken ~mispredicted;
  t.policy.on_resolve ~seq:e.seq;
  (match t.flow with
  | Some fl when e.fi_id >= 0 ->
    fl.fl_cb ~cycle:t.cyc (Flowtrace.Resolved { id = e.fi_id; mispredicted })
  | Some _ | None -> ());
  if mispredicted then begin
    t.stats.Sim_stats.mispredicts <- t.stats.Sim_stats.mispredicts + 1;
    squash t ~boundary:e.seq;
    Predictor.restore t.predictor e.hist_snap;
    Predictor.force_history t.predictor ~taken:e.taken;
    (match e.instr with
    | Ir.Branch { target; _ } ->
      t.fetch_pc <- (if e.taken then target else e.pc + 1)
    | Ir.Alu _ | Ir.Load _ | Ir.Store _ | Ir.Jump _ | Ir.Flush _ | Ir.Rdcycle _
    | Ir.Halt ->
      assert false);
    t.fetch_stopped <- false;
    t.fetch_resume <- t.cyc + t.cfg.Config.redirect_penalty
  end

let complete t =
  let b = t.cyc land t.completions_mask in
  let n = t.comp_len.(b) in
  if n > 0 then begin
    t.comp_len.(b) <- 0;
    let base = b * t.comp_cap in
    (* Buckets are kept sorted ascending at insertion, so the oldest
       mispredicted branch squashes the younger ones before they act;
       nothing schedules completions during the drain, so iterating the
       buffer in place is safe. *)
    for k = 0 to n - 1 do
      let seq = t.comp_buf.(base + k) in
      if in_flight t seq then begin
        let e = t.slots.(seq mod t.rob) in
        if e.st = st_inflight && e.done_cycle = t.cyc then begin
          e.st <- st_done;
          if e.is_miss then begin
            e.is_miss <- false;
            t.outstanding_misses <- t.outstanding_misses - 1
          end;
          t.value_buf.(seq mod t.vb) <- e.value;
          (match t.flow with
          | Some fl -> fl.fl_taint_buf.(seq mod t.vb) <- e.fi_v
          | None -> ());
          emit_seq t tag_completed seq e.pc;
          if Ir.is_branch e.instr then resolve_branch t e
        end
      end
    done
  end

(* --- issue ---------------------------------------------------------- *)

let latency_of_alu t op =
  match op with
  | Ir.Mul -> t.cfg.Config.mul_latency
  | Ir.Div | Ir.Rem -> t.cfg.Config.div_latency
  | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Set _ ->
    t.cfg.Config.alu_latency

(* Conservative memory disambiguation: a load may issue only when every
   older in-flight store has a known address (i.e. has issued).  Result
   coding: -2 blocked (unknown older store address), -1 ready with no
   matching store, otherwise the youngest matching store's seq. *)
let older_stores_scan t load_seq load_addr =
  let rec scan seq youngest =
    if seq >= load_seq then youngest
    else
      let e = t.slots.(seq mod t.rob) in
      match e.instr with
      | Ir.Store _ ->
        if not e.addr_known then -2
        else if e.addr = load_addr then scan (seq + 1) e.seq
        else scan (seq + 1) youngest
      | Ir.Alu _ | Ir.Load _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
      | Ir.Rdcycle _ | Ir.Halt ->
        scan (seq + 1) youngest
  in
  scan t.head_seq (-1)

let start t e done_cycle =
  e.started <- true;
  e.st <- st_inflight;
  e.done_cycle <- done_cycle;
  emit_seq t tag_issued e.seq e.pc;
  schedule_completion t e.seq done_cycle

let try_issue t e =
  match e.instr with
  | Ir.Alu { op; _ } ->
    e.value <- Ir.eval_alu op (src_value t e 0) (src_value t e 1);
    start t e (t.cyc + latency_of_alu t op);
    flow_issue t e ~forward_seq:(-1) ~touched_cache:false;
    true
  | Ir.Branch { cmp; _ } ->
    e.taken <- Ir.eval_cmp cmp (src_value t e 0) (src_value t e 1);
    start t e (t.cyc + t.cfg.Config.branch_exec_latency);
    flow_issue t e ~forward_seq:(-1) ~touched_cache:false;
    true
  | Ir.Store _ ->
    e.addr <- mask_addr t (src_value t e 0 + src_value t e 1);
    e.addr_known <- true;
    e.value <- src_value t e 2;
    start t e (t.cyc + 1);
    flow_issue t e ~forward_seq:(-1) ~touched_cache:false;
    true
  | Ir.Flush _ ->
    e.addr <- mask_addr t (src_value t e 0 + src_value t e 1);
    e.addr_known <- true;
    Cache.Hierarchy.flush t.hierarchy e.addr;
    start t e (t.cyc + 1);
    flow_issue t e ~forward_seq:(-1) ~touched_cache:true;
    true
  | Ir.Rdcycle _ ->
    e.value <- t.cyc;
    start t e (t.cyc + 1);
    true
  | Ir.Load _ ->
    let addr = mask_addr t (src_value t e 0 + src_value t e 1) in
    let store_seq = older_stores_scan t e.seq addr in
    if store_seq = -2 then false
    else if store_seq >= 0 then begin
      e.addr <- addr;
      e.addr_known <- true;
      e.value <- t.slots.(store_seq mod t.rob).value;
      start t e (t.cyc + t.cfg.Config.forward_latency);
      (* a store-to-load forward never touches the cache hierarchy *)
      flow_issue t e ~forward_seq:store_seq ~touched_cache:false;
      true
    end
    else begin
      (* an L1 miss needs an MSHR; when all are busy the load waits *)
      let misses_l1 =
        Cache.Hierarchy.probe t.hierarchy addr <> Cache.Hierarchy.L1
      in
      if misses_l1 && t.outstanding_misses >= t.cfg.Config.mshrs then false
      else begin
        e.addr <- addr;
        e.addr_known <- true;
        if misses_l1 then begin
          e.is_miss <- true;
          t.outstanding_misses <- t.outstanding_misses + 1
        end;
        let vis = t.policy.load_visibility ~seq:e.seq in
        let lat =
          match vis with
          | Normal ->
            let level = Cache.Hierarchy.load_level t.hierarchy addr in
            if t.cfg.Config.next_line_prefetch && level <> Cache.Hierarchy.L1
            then
              Cache.Hierarchy.prefetch t.hierarchy
                (mask_addr t (addr + t.cfg.Config.l1.Config.line_words));
            Cache.Hierarchy.latency_of_level t.hierarchy level
          | Invisible -> Cache.Hierarchy.load_latency t.hierarchy addr
        in
        e.value <- t.memory.(addr);
        start t e (t.cyc + lat);
        (* an invisible (delayed-visibility) load leaves no cache trace *)
        flow_issue t e ~forward_seq:(-1) ~touched_cache:(vis = Normal);
        true
      end
    end
  | Ir.Jump _ | Ir.Halt -> false

(* Would this ready load be refused by memory ordering right now?  Pure:
   mirrors the [try_issue] load path without touching cache or MSHR
   state, so attribution can classify entries past the issue budget. *)
let load_order_blocked t e =
  match e.instr with
  | Ir.Load _ ->
    let addr = mask_addr t (src_value t e 0 + src_value t e 1) in
    let store_seq = older_stores_scan t e.seq addr in
    if store_seq = -2 then true
    else if store_seq >= 0 then false
    else
      Cache.Hierarchy.probe t.hierarchy addr <> Cache.Hierarchy.L1
      && t.outstanding_misses >= t.cfg.Config.mshrs
  | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _ | Ir.Rdcycle _
  | Ir.Halt ->
    false

let issue t =
  (* The whole window is scanned every cycle so that each waiting
     instruction is charged to exactly one stall cause.  Issue decisions
     (and the legacy policy-stall counters) are confined to [budget > 0],
     preserving the original semantics where the scan stopped once the
     issue width was spent: the policy is never consulted for entries
     beyond the budget. *)
  let rec go seq budget =
    if seq < t.tail_seq then begin
      let e = t.slots.(seq mod t.rob) in
      let budget =
        if e.st <> st_waiting then budget
        else if not (operands_ready t e) then begin
          charge_entry t e Stall.Operand_wait;
          budget
        end
        else if budget > 0 then begin
          if t.policy.may_execute ~seq then
            if try_issue t e then begin
              (match t.audit with
              | Some a -> audit_close t a e Audit.Issued
              | None -> ());
              budget - 1
            end
            else begin
              charge_entry t e Stall.Lsq_order;
              budget
            end
          else begin
            e.policy_stalled <- true;
            t.stats.Sim_stats.policy_stall_cycles <-
              t.stats.Sim_stats.policy_stall_cycles + 1;
            if is_transmitter e.instr then
              t.stats.Sim_stats.transmit_stall_cycles <-
                t.stats.Sim_stats.transmit_stall_cycles + 1;
            charge_entry t e Stall.Policy_gate;
            (match t.audit with
            | Some a -> audit_gate t a e seq
            | None -> ());
            budget
          end
        end
        else if load_order_blocked t e then begin
          charge_entry t e Stall.Lsq_order;
          budget
        end
        else begin
          charge_entry t e Stall.Exec_port;
          budget
        end
      in
      go (seq + 1) budget
    end
  in
  go t.head_seq t.cfg.Config.issue_width

(* --- commit --------------------------------------------------------- *)

let commit_one t e =
  let s = t.stats in
  s.Sim_stats.committed <- s.Sim_stats.committed + 1;
  if e.policy_stalled then begin
    s.Sim_stats.restricted_committed <- s.Sim_stats.restricted_committed + 1;
    if is_transmitter e.instr then
      s.Sim_stats.restricted_transmitters <- s.Sim_stats.restricted_transmitters + 1
  end;
  if is_transmitter e.instr then
    s.Sim_stats.committed_transmitters <- s.Sim_stats.committed_transmitters + 1;
  (match e.instr with
  | Ir.Load _ -> s.Sim_stats.committed_loads <- s.Sim_stats.committed_loads + 1
  | Ir.Store _ ->
    s.Sim_stats.committed_stores <- s.Sim_stats.committed_stores + 1;
    t.memory.(e.addr) <- e.value;
    Cache.Hierarchy.store_commit t.hierarchy e.addr
  | Ir.Branch _ ->
    s.Sim_stats.committed_branches <- s.Sim_stats.committed_branches + 1;
    Predictor.update t.predictor ~pc:e.pc ~history:e.hist_snap ~taken:e.taken
  | Ir.Halt -> t.is_halted <- true
  | Ir.Alu _ | Ir.Jump _ | Ir.Flush _ | Ir.Rdcycle _ -> ());
  let d = def_reg e.instr in
  if d >= 0 then begin
    t.regs.(d) <- e.value;
    if t.rename.(d) = e.seq then t.rename.(d) <- -1
  end;
  (match t.flow with
  | Some fl ->
    (* Shadow architectural state follows the real one: taint (or clear)
       exactly what this commit wrote. *)
    (match e.instr with
    | Ir.Store _ -> fl.fl_taint_mem.(e.addr) <- e.fi_v
    | Ir.Alu _ | Ir.Load _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      ());
    if d >= 0 then fl.fl_taint_regs.(d) <- e.fi_v;
    if e.fi_id >= 0 then
      fl.fl_cb ~cycle:t.cyc (Flowtrace.Committed { id = e.fi_id })
  | None -> ());
  t.policy.on_commit ~seq:e.seq;
  emit_seq t tag_committed e.seq e.pc;
  t.head_seq <- e.seq + 1;
  t.head_stall_cause <- -1

let commit t =
  let rec go budget =
    if budget > 0 && t.head_seq < t.tail_seq && not t.is_halted then begin
      let e = t.slots.(t.head_seq mod t.rob) in
      if e.st = st_done then begin
        commit_one t e;
        go (budget - 1)
      end
    end
  in
  go t.cfg.Config.commit_width

(* --- top level ------------------------------------------------------ *)

let step t =
  if not t.is_halted then begin
    commit t;
    if not t.is_halted then begin
      complete t;
      issue t;
      fetch t;
      let occ = t.tail_seq - t.head_seq in
      if occ > t.stats.Sim_stats.max_rob_occupancy then
        t.stats.Sim_stats.max_rob_occupancy <- occ
    end;
    t.cyc <- t.cyc + 1;
    t.stats.Sim_stats.cycles <- t.cyc
  end

let run_loop ~max_cycles ~deadlock_window ~stop t =
  let last_committed = ref t.stats.Sim_stats.committed in
  let last_progress_cycle = ref t.cyc in
  while (not t.is_halted) && not (stop ()) do
    if t.cyc > max_cycles then failwith "Pipeline.run: max_cycles exceeded";
    step t;
    if t.stats.Sim_stats.committed <> !last_committed then begin
      last_committed := t.stats.Sim_stats.committed;
      last_progress_cycle := t.cyc
    end
    else if t.cyc - !last_progress_cycle > deadlock_window then
      raise
        (Deadlock
           {
             dl_cycle = t.cyc;
             dl_last_commit_cycle = !last_progress_cycle;
             dl_policy = t.policy.policy_name;
             dl_head_seq = t.head_seq;
             dl_head_pc = (try (entry_exn t t.head_seq).pc with _ -> -1);
             dl_head_cause =
               (if t.head_stall_cause < 0 then None
                else Some (Stall.cause_of_index t.head_stall_cause));
             dl_recent_events = recent_events t;
           })
  done

let run ?(max_cycles = 100_000_000) ?(deadlock_window = 100_000) t =
  run_loop ~max_cycles ~deadlock_window ~stop:(fun () -> false) t

let run_until_committed ?(max_cycles = 100_000_000) ?(deadlock_window = 100_000)
    t target =
  run_loop ~max_cycles ~deadlock_window
    ~stop:(fun () -> t.stats.Sim_stats.committed >= target)
    t

let warm_start t ~regs ~pc =
  if t.cyc <> 0 || t.tail_seq <> 0 then
    invalid_arg "Pipeline.warm_start: pipeline has already run";
  if Array.length regs <> Ir.num_regs then
    invalid_arg "Pipeline.warm_start: bad register file size";
  if pc < 0 || pc >= Array.length t.program then
    invalid_arg (Printf.sprintf "Pipeline.warm_start: pc %d out of range" pc);
  Array.blit regs 0 t.regs 0 Ir.num_regs;
  t.fetch_pc <- pc

(* Smallest power of two strictly greater than the largest latency any
   instruction can be scheduled with (all latencies come from the config,
   which [validate] requires to be positive), so a bucket is always
   drained before the wheel can wrap back onto it. *)
let completion_wheel_size cfg =
  let open Config in
  let worst =
    List.fold_left max 1
      [
        cfg.alu_latency;
        cfg.mul_latency;
        cfg.div_latency;
        cfg.branch_exec_latency;
        cfg.forward_latency;
        cfg.l1.hit_latency;
        cfg.l2.hit_latency;
        cfg.memory_latency;
      ]
  in
  let rec pow2 n = if n > worst then n else pow2 (2 * n) in
  pow2 1

let create ?(mem_init = fun _ -> ()) ?registry ?audit ?memory ?hierarchy
    ?predictor cfg ~policy program =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pipeline.create: bad config: " ^ msg));
  (match Ir.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Pipeline.create: bad program: " ^ msg));
  let reg =
    match registry with
    | Some r -> r
    | None -> Registry.create ()
  in
  let rob = cfg.Config.rob_size in
  let memory =
    match memory with
    | Some m ->
      if Array.length m <> cfg.Config.mem_words then
        invalid_arg
          (Printf.sprintf
             "Pipeline.create: adopted memory has %d words, config wants %d"
             (Array.length m) cfg.Config.mem_words);
      m
    | None -> Array.make cfg.Config.mem_words 0
  in
  let hierarchy =
    match hierarchy with
    | Some h -> h
    | None -> Cache.Hierarchy.create ~registry:reg cfg
  in
  let predictor =
    match predictor with
    | Some p -> p
    | None -> Predictor.create cfg
  in
  let hist0 = Predictor.snapshot predictor in
  let wheel = completion_wheel_size cfg in
  (* A bucket holds only seqs completing at one absolute cycle T; each
     was issued at T - lat for one of <= 8 distinct configured
     latencies, at most issue_width per cycle — rob + 16*width is a
     comfortable over-bound even with squash-then-reissue reuse. *)
  let comp_cap = rob + (16 * cfg.Config.issue_width) in
  let t =
    {
      cfg;
      program;
      rob;
      vb = 2 * rob;
      regs = Array.make Ir.num_regs 0;
      memory;
      mem_mask = Array.length memory - 1;
      hierarchy;
      predictor;
      slots =
        Array.init rob (fun _ ->
            {
              seq = -1;
              pc = 0;
              instr = Ir.Halt;
              n_srcs = 0;
              src_kind = Array.make 3 0;
              src_val = Array.make 3 0;
              st = st_waiting;
              done_cycle = 0;
              value = 0;
              addr = 0;
              addr_known = false;
              pred_taken = false;
              taken = false;
              resolved = false;
              started = false;
              is_miss = false;
              policy_stalled = false;
              gate = None;
              fi_id = -1;
              fi_v = -1;
              fi_src = Array.make 3 (-1);
              rename_snap = Array.make Ir.num_regs (-1);
              hist_snap = hist0;
            });
      value_buf = Array.make (2 * rob) 0;
      rename = Array.make Ir.num_regs (-1);
      head_seq = 0;
      tail_seq = 0;
      fetch_pc = 0;
      fetch_resume = 0;
      fetch_stopped = false;
      outstanding_misses = 0;
      cyc = 0;
      is_halted = false;
      policy = always_execute_policy;
      stats = Sim_stats.create ();
      stall = Stall.create ~num_pcs:(Array.length program);
      reg;
      comp_buf = Array.make (wheel * comp_cap) 0;
      comp_len = Array.make wheel 0;
      comp_cap;
      completions_mask = wheel - 1;
      ub = Array.make rob 0;
      ub_len = 0;
      tracer = None;
      stall_tracer = None;
      flow = None;
      recent_buf = Array.make (recent_events_capacity * 5) 0;
      recent_len = 0;
      head_stall_cause = -1;
      audit;
    }
  in
  mem_init t.memory;
  t.policy <- policy cfg program t;
  t
