lib/ir/emulator.ml: Array Ir
