module Emulator = Levioso_ir.Emulator
module Stall = Levioso_telemetry.Stall
module Registry = Levioso_telemetry.Registry
module Json = Levioso_telemetry.Json

type spec = { interval : int; warmup : int; period : int }

let default_period = 10

let spec_to_string s =
  Printf.sprintf "%d:%d:%d" s.interval s.warmup s.period

let parse str =
  if str = "off" then Ok None
  else begin
    let fail () =
      Error
        (Printf.sprintf
           "bad sample spec %S: expected \"off\" or N:W[:P] with interval N \
            > 0, warmup W >= 0, period P >= 1"
           str)
    in
    match String.split_on_char ':' str with
    | ([ _; _ ] | [ _; _; _ ]) as parts -> (
      match List.map int_of_string_opt parts with
      | [ Some n; Some w ] when n > 0 && w >= 0 ->
        Ok (Some { interval = n; warmup = w; period = default_period })
      | [ Some n; Some w; Some p ] when n > 0 && w >= 0 && p >= 1 ->
        Ok (Some { interval = n; warmup = w; period = p })
      | _ -> fail ())
    | _ -> fail ()
  end

type result = {
  estimated_cycles : int;
  error_pct : float;
      (** 95% confidence half-width of the per-interval CPI, as a
          percentage of the mean; 0 with fewer than two intervals *)
  intervals : int;
  measured_instrs : int;
  detailed_instrs : int;
  total_instrs : int;
  stats : Sim_stats.t;
  stall : Stall.t;
  hierarchy : Cache.Hierarchy.h;
  spec : spec;
}

(* Functional update on an all-mutable record is still a copy. *)
let stats_copy (s : Sim_stats.t) = { s with Sim_stats.cycles = s.Sim_stats.cycles }

(* a - b, fieldwise; the wrong-path pair list is not meaningfully
   subtractable and comes back empty (its count is). *)
let stats_delta (a : Sim_stats.t) (b : Sim_stats.t) =
  {
    Sim_stats.cycles = a.Sim_stats.cycles - b.Sim_stats.cycles;
    committed = a.committed - b.committed;
    committed_loads = a.committed_loads - b.committed_loads;
    committed_stores = a.committed_stores - b.committed_stores;
    committed_branches = a.committed_branches - b.committed_branches;
    committed_transmitters = a.committed_transmitters - b.committed_transmitters;
    fetched = a.fetched - b.fetched;
    squashed = a.squashed - b.squashed;
    mispredicts = a.mispredicts - b.mispredicts;
    policy_stall_cycles = a.policy_stall_cycles - b.policy_stall_cycles;
    transmit_stall_cycles = a.transmit_stall_cycles - b.transmit_stall_cycles;
    restricted_committed = a.restricted_committed - b.restricted_committed;
    restricted_transmitters =
      a.restricted_transmitters - b.restricted_transmitters;
    wrong_path_executed_loads =
      a.wrong_path_executed_loads - b.wrong_path_executed_loads;
    wrong_path_transmits = [];
    wrong_path_transmit_count =
      a.wrong_path_transmit_count - b.wrong_path_transmit_count;
    wrong_path_transmits_dropped =
      a.wrong_path_transmits_dropped - b.wrong_path_transmits_dropped;
    max_rob_occupancy = a.max_rob_occupancy;
  }

(* Functional warming: mirror exactly the microarchitectural state
   mutations the detailed pipeline performs on the committed path — cache
   fills on loads (plus the next-line prefetcher), write-allocate at
   stores, flushes, and predictor training.  (Wrong-path pollution is the
   one thing warming cannot reproduce; that is what the detailed warmup
   interval is for.) *)
let warming_hooks cfg hierarchy predictor =
  let line_words = cfg.Config.l1.Config.line_words in
  let mem_mask = cfg.Config.mem_words - 1 in
  let nlp = cfg.Config.next_line_prefetch in
  {
    Emulator.h_load =
      (fun addr ->
        let level = Cache.Hierarchy.load_level hierarchy addr in
        if nlp && level <> Cache.Hierarchy.L1 then
          Cache.Hierarchy.prefetch hierarchy ((addr + line_words) land mem_mask));
    h_store = (fun addr -> Cache.Hierarchy.store_commit hierarchy addr);
    h_flush = (fun addr -> Cache.Hierarchy.flush hierarchy addr);
    h_branch =
      (fun ~pc ~taken ->
        (* The committed-path history discipline: predict shifts the
           predicted bit; commit trains against the pre-predict snapshot;
           a mispredict rolls the history back and shifts the real
           direction. *)
        let h = Predictor.snapshot predictor in
        let dir = Predictor.predict predictor ~pc in
        Predictor.update predictor ~pc ~history:h ~taken;
        if dir <> taken then begin
          Predictor.restore predictor h;
          Predictor.force_history predictor ~taken
        end);
  }

let run ?registry ?(mem_init = fun (_ : int array) -> ()) ?(fuel = 1_000_000_000)
    spec cfg ~policy program =
  let reg =
    match registry with
    | Some r -> r
    | None -> Registry.create ()
  in
  let hierarchy = Cache.Hierarchy.create ~registry:reg cfg in
  let predictor = Predictor.create cfg in
  let memory = Array.make cfg.Config.mem_words 0 in
  mem_init memory;
  let emu = Emulator.create ~memory program in
  let hooks = warming_hooks cfg hierarchy predictor in
  let num_pcs = Array.length program in
  let pooled = Sim_stats.create () in
  let stall = Stall.create ~num_pcs in
  (* per measured interval, newest first *)
  let samples = ref [] in
  let detailed_instrs = ref 0 in
  let detailed_cycles = ref 0 in
  let period_instrs = spec.period * spec.interval in
  while not emu.Emulator.halted do
    if emu.Emulator.retired > fuel then raise Emulator.Out_of_fuel;
    (* Detailed interval at the head of each period: adopt the warmed
       memory/cache/predictor in place, warm the pipeline structures for
       [warmup] instructions (discarded), measure [interval]
       instructions, then hand the architectural state back. *)
    let pipe =
      Pipeline.create ~registry:reg ~memory ~hierarchy ~predictor cfg ~policy
        program
    in
    Pipeline.warm_start pipe ~regs:emu.Emulator.regs ~pc:emu.Emulator.pc;
    let st = Pipeline.stats pipe in
    if spec.warmup > 0 then Pipeline.run_until_committed pipe spec.warmup;
    let before = stats_copy st in
    Pipeline.run_until_committed pipe
      (before.Sim_stats.committed + spec.interval);
    let d = stats_delta st before in
    (* Pool stats and stall attribution over the same span — the whole
       detailed portion, warmup included — so the summary's stall
       breakdown keeps its sum/policy_gate invariants against the stats
       counters.  The CPI estimate below still uses only the measured
       deltas. *)
    Sim_stats.accumulate pooled st;
    Stall.accumulate stall (Pipeline.stall_attribution pipe);
    if d.Sim_stats.committed > 0 then
      samples := (d.Sim_stats.cycles, d.Sim_stats.committed) :: !samples;
    detailed_instrs := !detailed_instrs + st.Sim_stats.committed;
    detailed_cycles := !detailed_cycles + st.Sim_stats.cycles;
    (* Architectural handoff: committed registers, next-to-commit PC.
       In-flight (uncommitted) work is discarded; the fast tier re-runs
       it architecturally. *)
    emu.Emulator.retired <- emu.Emulator.retired + st.Sim_stats.committed;
    if Pipeline.halted pipe then emu.Emulator.halted <- true
    else begin
      Array.blit (Pipeline.regs pipe) 0 emu.Emulator.regs 0
        (Array.length emu.Emulator.regs);
      emu.Emulator.pc <- Pipeline.arch_pc pipe;
      (* Fast-forward the rest of the period with functional warming. *)
      let skip = period_instrs - st.Sim_stats.committed in
      if skip > 0 then ignore (Emulator.run_steps ~hooks emu skip : int)
    end
  done;
  let total_instrs = emu.Emulator.retired in
  let samples = List.rev !samples in
  let m_cycles = List.fold_left (fun acc (c, _) -> acc + c) 0 samples in
  let m_instrs = List.fold_left (fun acc (_, n) -> acc + n) 0 samples in
  (* Instruction-weighted CPI over the measured portions; when the
     program was too short to outlive any warmup, fall back to the full
     detailed portion (which then covers the whole run). *)
  let num, den =
    if m_instrs > 0 then (m_cycles, m_instrs)
    else (!detailed_cycles, !detailed_instrs)
  in
  let cpi = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  let estimated_cycles =
    int_of_float (Float.round (cpi *. float_of_int total_instrs))
  in
  let error_pct =
    let k = List.length samples in
    if k < 2 then 0.0
    else begin
      let cpis =
        List.map (fun (c, n) -> float_of_int c /. float_of_int n) samples
      in
      let fk = float_of_int k in
      let mean = List.fold_left ( +. ) 0.0 cpis /. fk in
      if mean <= 0.0 then 0.0
      else begin
        let var =
          List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 cpis
          /. (fk -. 1.0)
        in
        1.96 *. sqrt var /. sqrt fk /. mean *. 100.0
      end
    end
  in
  {
    estimated_cycles;
    error_pct;
    intervals = List.length samples;
    measured_instrs = m_instrs;
    detailed_instrs = !detailed_instrs;
    total_instrs;
    stats = pooled;
    stall;
    hierarchy;
    spec;
  }

let to_json r =
  let detail_fraction =
    if r.total_instrs = 0 then 0.0
    else float_of_int r.detailed_instrs /. float_of_int r.total_instrs
  in
  Json.Obj
    [
      ("estimated_cycles", Json.Int r.estimated_cycles);
      ("error_pct", Json.Float r.error_pct);
      ("intervals", Json.Int r.intervals);
      ("measured_instrs", Json.Int r.measured_instrs);
      ("detailed_instrs", Json.Int r.detailed_instrs);
      ("total_instrs", Json.Int r.total_instrs);
      ("detail_fraction", Json.Float detail_fraction);
      ("interval", Json.Int r.spec.interval);
      ("warmup", Json.Int r.spec.warmup);
      ("period", Json.Int r.spec.period);
    ]
