lib/workload/treewalk.mli: Workload
