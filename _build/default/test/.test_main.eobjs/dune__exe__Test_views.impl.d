test/test_views.ml: Alcotest Levioso_ir Levioso_uarch List String
