lib/uarch/pipeline.ml: Array Cache Config Hashtbl Levioso_ir List Option Predictor Printf Sim_stats
