(* Mechanism-level tests of the prior defenses: not "does the attack
   fail" (test_attack) or "how slow" (test_policies) but "does the rule
   fire exactly when its paper says it should". *)

module Parser = Levioso_ir.Parser
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Registry = Levioso_core.Registry

let config =
  { Config.default with Config.mem_words = 65536; predictor = Config.Always_taken }

let stats ~policy src =
  let program = Parser.parse_exn src in
  let pipe = Pipeline.create config ~policy:(Registry.find_exn policy) program in
  Pipeline.run pipe;
  Pipeline.stats pipe

(* --- STT -------------------------------------------------------------- *)

let test_stt_taint_clears_at_visibility_point () =
  (* a tainted-address load becomes executable the moment the branch older
     than its root load resolves — not when the root load commits.  The
     root is speculative only w.r.t. the quick branch, so total stalls stay
     tiny; under a *slow* covering branch the same chain stalls long. *)
  (* bodies live at the TAKEN target so the always-taken predictor fetches
     them while the branch is unresolved *)
  let quick =
    {|
      mov r9, #1
      bne r9, #0, body       ; resolves immediately: root binds at once
      halt
    body:
      load r1, [r0 + #1024]  ; root load (speculative for ~2 cycles)
      load r2, [r1 + #2048]  ; tainted address
      halt
    |}
  in
  let slow =
    {|
      load r9, [r0 + #512]   ; branch operand: memory latency
      beq r9, #0, body       ; taken (r9 = 0) but resolves late
      halt
    body:
      load r1, [r0 + #1024]
      load r2, [r1 + #2048]
      halt
    |}
  in
  let quick_stall = (stats ~policy:"stt" quick).Sim_stats.transmit_stall_cycles in
  let slow_stall = (stats ~policy:"stt" slow).Sim_stats.transmit_stall_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "quick %d < slow %d" quick_stall slow_stall)
    true
    (quick_stall < slow_stall)

let test_stt_untainted_addresses_flow_freely () =
  (* loads whose addresses derive only from immediates/committed data are
     never STT-stalled, even under unresolved branches *)
  let src =
    {|
      load r9, [r0 + #512]   ; slow branch operand
      beq r9, #0, body
      halt
    body:
      load r1, [r0 + #1024]  ; untainted address: free under STT
      load r2, [r0 + #1032]
      halt
    |}
  in
  Alcotest.(check int) "no transmitter stalls" 0
    (stats ~policy:"stt" src).Sim_stats.transmit_stall_cycles

(* --- NDA -------------------------------------------------------------- *)

let test_nda_quarantines_only_load_outputs () =
  (* an ALU-only chain under a slow branch flows freely under NDA... *)
  let alu_chain =
    {|
      load r9, [r0 + #512]
      beq r9, #0, body
      halt
    body:
      mov r1, #5
      add r2, r1, r1
      mul r3, r2, r2
      halt
    |}
  in
  (* ...but a consumer of a speculative load's output must wait *)
  let load_consumer =
    {|
      load r9, [r0 + #512]
      beq r9, #0, body
      halt
    body:
      load r1, [r0 + #1024]
      add r2, r1, #1         ; quarantined until the load binds
      halt
    |}
  in
  Alcotest.(check int) "alu chain unstalled" 0
    (stats ~policy:"nda" alu_chain).Sim_stats.policy_stall_cycles;
  Alcotest.(check bool) "load consumer stalled" true
    ((stats ~policy:"nda" load_consumer).Sim_stats.policy_stall_cycles > 0)

let test_nda_loads_themselves_execute () =
  (* NDA lets the access happen; only the use is quarantined — so the
     wrong-path load DOES execute (and leaks, per the security matrix) *)
  let src =
    {|
      load r9, [r0 + #512]
      load r9, [r9 + #768]
      beq r9, #999, wrong
      mov r3, #1
      halt
    wrong:
      load r1, [r0 + #1024]
      halt
    |}
  in
  Alcotest.(check bool) "speculative load executed" true
    ((stats ~policy:"nda" src).Sim_stats.wrong_path_executed_loads >= 1)

(* --- Delay vs Fence scope --------------------------------------------- *)

let test_delay_gates_only_transmitters () =
  let src =
    {|
      load r9, [r0 + #512]
      beq r9, #0, body
      halt
    body:
      mov r1, #5
      add r2, r1, r1
      load r3, [r0 + #1024]
      halt
    |}
  in
  let d = stats ~policy:"delay" src in
  let f = stats ~policy:"fence" src in
  Alcotest.(check bool) "delay: gates only the load" true
    (d.Sim_stats.policy_stall_cycles = d.Sim_stats.transmit_stall_cycles
    && d.Sim_stats.transmit_stall_cycles > 0);
  Alcotest.(check bool) "fence: ALU work gated too" true
    (f.Sim_stats.policy_stall_cycles > f.Sim_stats.transmit_stall_cycles)

(* --- Levioso region boundaries ----------------------------------------- *)

let test_levioso_region_ends_exactly_at_reconvergence () =
  (* same slow branch; the load sits either inside the if-region or at its
     reconvergence point — one instruction apart, opposite treatment *)
  let inside =
    {|
      load r9, [r0 + #512]
      blt r9, #100, arm      ; taken (r9 = 0 < 100), resolves late
      halt
    arm:
      load r1, [r0 + #1024]  ; inside the region (arms never meet)
      halt
    |}
  in
  let at_reconv =
    {|
      load r9, [r0 + #512]
      bge r9, #100, join     ; region is empty
    join:
      load r1, [r0 + #1024]  ; at the reconvergence point
      halt
    |}
  in
  let inside_stall =
    (stats ~policy:"levioso" inside).Sim_stats.transmit_stall_cycles
  in
  let reconv_stall =
    (stats ~policy:"levioso" at_reconv).Sim_stats.transmit_stall_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "inside stalls (%d), reconvergence point does not (%d)"
       inside_stall reconv_stall)
    true
    (inside_stall > 0 && reconv_stall = 0)

let suite =
  ( "secure-mechanisms",
    [
      Alcotest.test_case "stt visibility point" `Quick
        test_stt_taint_clears_at_visibility_point;
      Alcotest.test_case "stt untainted free" `Quick test_stt_untainted_addresses_flow_freely;
      Alcotest.test_case "nda quarantine scope" `Quick test_nda_quarantines_only_load_outputs;
      Alcotest.test_case "nda access allowed" `Quick test_nda_loads_themselves_execute;
      Alcotest.test_case "delay vs fence scope" `Quick test_delay_gates_only_transmitters;
      Alcotest.test_case "levioso region boundary" `Quick
        test_levioso_region_ends_exactly_at_reconvergence;
    ] )
