module Counter = struct
  type c = { c_name : string; mutable value : int }

  let incr c = c.value <- c.value + 1
  let add c n = c.value <- c.value + n
  let value c = c.value
  let name c = c.c_name
end

module Histogram = struct
  (* Observations are kept verbatim in a growable buffer; simulator runs
     observe at most a few hundred thousand values, and exact percentiles
     are worth more here than a bucketed sketch. *)
  type h = {
    h_name : string;
    mutable data : int array;
    mutable len : int;
    mutable max_v : int;
    mutable sum : int;
  }

  let observe h v =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (max 16 (2 * h.len)) 0 in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- v;
    h.len <- h.len + 1;
    h.sum <- h.sum + v;
    if v > h.max_v then h.max_v <- v

  let count h = h.len

  let mean h = if h.len = 0 then 0.0 else float_of_int h.sum /. float_of_int h.len

  let percentile h p =
    if h.len = 0 then invalid_arg "Histogram.percentile: empty histogram";
    let sorted = Array.sub h.data 0 h.len in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.len)) in
    sorted.(max 0 (min (h.len - 1) (rank - 1)))

  let max_value h = h.max_v
  let name h = h.h_name

  let reset h =
    h.len <- 0;
    h.max_v <- 0;
    h.sum <- 0
end

type instrument =
  | I_counter of Counter.c
  | I_histogram of Histogram.h

type t = { prefix : string; table : (string, instrument) Hashtbl.t }

let create () = { prefix = ""; table = Hashtbl.create 32 }

let scope t sub = { t with prefix = t.prefix ^ sub ^ "/" }

let counter t name =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.table full with
  | Some (I_counter c) -> c
  | Some (I_histogram _) ->
    invalid_arg ("Registry.counter: " ^ full ^ " exists as a histogram")
  | None ->
    let c = { Counter.c_name = full; value = 0 } in
    Hashtbl.add t.table full (I_counter c);
    c

let histogram t name =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.table full with
  | Some (I_histogram h) -> h
  | Some (I_counter _) ->
    invalid_arg ("Registry.histogram: " ^ full ^ " exists as a counter")
  | None ->
    let h =
      { Histogram.h_name = full; data = [||]; len = 0; max_v = 0; sum = 0 }
    in
    Hashtbl.add t.table full (I_histogram h);
    h

let counter_value t name =
  match Hashtbl.find_opt t.table (t.prefix ^ name) with
  | Some (I_counter c) -> Some (Counter.value c)
  | Some (I_histogram _) | None -> None

let in_scope t full =
  String.length full >= String.length t.prefix
  && String.sub full 0 (String.length t.prefix) = t.prefix

let strip t full =
  String.sub full (String.length t.prefix)
    (String.length full - String.length t.prefix)

let instruments t =
  Hashtbl.fold
    (fun full i acc -> if in_scope t full then (strip t full, i) :: acc else acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names t = List.map fst (instruments t)

let to_rows t =
  List.map
    (fun (name, i) ->
      match i with
      | I_counter c -> (name, string_of_int (Counter.value c))
      | I_histogram h ->
        let render =
          if Histogram.count h = 0 then "n=0"
          else
            Printf.sprintf "n=%d mean=%.1f p50=%d p95=%d max=%d"
              (Histogram.count h) (Histogram.mean h)
              (Histogram.percentile h 50.0)
              (Histogram.percentile h 95.0)
              (Histogram.max_value h)
        in
        (name, render))
    (instruments t)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, i) ->
         match i with
         | I_counter c -> (name, Json.Int (Counter.value c))
         | I_histogram h ->
           let n = Histogram.count h in
           ( name,
             Json.Obj
               [
                 ("count", Json.Int n);
                 ("mean", Json.Float (Histogram.mean h));
                 ("p50", if n = 0 then Json.Null else Json.Int (Histogram.percentile h 50.0));
                 ("p95", if n = 0 then Json.Null else Json.Int (Histogram.percentile h 95.0));
                 ("max", Json.Int (Histogram.max_value h));
               ] ))
       (instruments t))

let reset t =
  Hashtbl.iter
    (fun full i ->
      if in_scope t full then
        match i with
        | I_counter c -> c.Counter.value <- 0
        | I_histogram h -> Histogram.reset h)
    t.table
