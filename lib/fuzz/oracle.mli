(** The fuzzing oracles: properties that must hold on every generated
    input, each packaged with enough context to shrink and persist a
    failure.

    - {b arch-diff}: under {e every} registered policy, the pipeline's
      final registers, memory and retired count must equal the
      architectural emulator's — speculation control must never change
      architectural results.  For the total-blocking policies (fence,
      delay) the squashed-transmitter count must additionally be zero.
    - {b lang-diff}: a random Lev source program must compile, and the
      compiled IR run on the emulator must produce exactly the memory
      image of the reference AST interpreter; the optimizer must preserve
      that image.
    - {b roundtrip-text}: [program_to_string] → [Parser.parse] is the
      identity.
    - {b roundtrip-binary}: binary encode → decode preserves the program
      (modulo the encoder's documented canonicalizations) and the
      compiler's reconvergence hints ride through the branch words intact.
    - {b noninterference}: the two-run security oracle — a program whose
      architectural execution provably never reads the planted secrets is
      run twice with different secrets under each comprehensive policy;
      the attacker view (cycles, retired count, registers, public memory,
      cache probe trace) must be bit-identical.  The same pair run under
      [unsafe] is expected to diverge, which validates the oracle's power
      and is reported as an extra counter, not a failure. *)

type fail = {
  detail : string;  (** human-readable description of the divergence *)
  program : Levioso_ir.Ir.program;  (** the failing input *)
  source : string option;  (** Lev source, for compiler-path failures *)
  still_fails : (Levioso_ir.Ir.program -> bool) option;
      (** shrinker predicate: does a candidate program still exhibit
          this failure?  [None] when the failure is not meaningfully
          shrinkable at the IR level (e.g. a source-level compile
          error). *)
  leak : (Levioso_ir.Ir.program -> string option) option;
      (** leak provenance: re-run a (typically shrunk) reproduction with
          the speculative flow tracer and render the leak chain —
          mispredicted branch, tainted load, transmitter, probe address.
          Only the noninterference oracle provides this; [None] when the
          run produced no taint flow. *)
}

type verdict =
  | Pass
  | Fail of fail

type outcome = {
  verdict : verdict;
  extras : (string * int) list;
      (** oracle-specific side counters (e.g. unsafe-baseline
          divergences observed by the noninterference oracle) *)
}

type t = {
  name : string;
  describe : string;
  run : config:Levioso_uarch.Config.t -> seed:int -> outcome;
}

val arch_diff : t
val lang_diff : t
val roundtrip_text : t
val roundtrip_binary : t
val noninterference : t

val all : t list
(** Every oracle, in the order above. *)

val names : string list

val find : string -> t option

val ni_policies : string list
(** The policies the noninterference oracle holds to the two-run
    property. *)

val input_of :
  t -> seed:int -> Levioso_ir.Ir.program * string option
(** The generated input an oracle runs at a seed (program, and the Lev
    source for the compiler-path oracle) — what {!Corpus} records when a
    seed is saved as a regression anchor rather than captured from a
    failure. *)

val encodable : Levioso_ir.Ir.program -> Levioso_ir.Ir.program
(** Rewrite a program into the encoder's input domain: at most one
    non-zero immediate per non-branch instruction (later ones become
    zero-register reads), no constant-vs-constant branches.  Exposed for
    the round-trip tests. *)
