(** Counters collected by one pipeline run.

    Everything the evaluation figures need comes from these counters plus
    the cache hierarchy's own counters. *)

type t = {
  mutable cycles : int;
  mutable committed : int;
  mutable committed_loads : int;
  mutable committed_stores : int;
  mutable committed_branches : int;
  mutable committed_transmitters : int;
  mutable fetched : int;
  mutable squashed : int;
  mutable mispredicts : int;
  mutable policy_stall_cycles : int;
      (** entry-cycles during which an operand-ready instruction was held
          back by the active defense *)
  mutable transmit_stall_cycles : int;
      (** the subset of [policy_stall_cycles] charged to transmitters *)
  mutable restricted_committed : int;
      (** committed instructions that were policy-stalled at least once *)
  mutable restricted_transmitters : int;
  mutable wrong_path_executed_loads : int;
      (** squashed loads that had already accessed the cache *)
  mutable wrong_path_transmits : (int * int) list;
      (** (squashing-branch pc, transmitter pc) pairs, newest first, capped *)
  mutable wrong_path_transmit_count : int;
      (** length of [wrong_path_transmits], maintained so recording stays
          O(1) *)
  mutable wrong_path_transmits_dropped : int;
  mutable max_rob_occupancy : int;
}

val create : unit -> t

val accumulate : t -> t -> unit
(** [accumulate dst src] adds [src]'s counters into [dst]
    ([max_rob_occupancy] takes the max) — how the sampled-simulation
    driver pools per-interval detailed stats. *)

val ipc : t -> float

val mpki : t -> float
(** Branch mispredictions per kilo committed instruction. *)

val record_wrong_path_transmit : t -> branch_pc:int -> pc:int -> unit
(** Appends to [wrong_path_transmits], keeping at most 50_000 events. *)

val to_rows : t -> (string * string) list

val to_json : t -> Levioso_telemetry.Json.t
(** Every counter plus derived [ipc]/[mpki], as a flat object.
    [wrong_path_transmits] serializes as its count, not the pair list. *)

val of_json : Levioso_telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}, used by the bench result cache to replay runs
    without re-simulating.  The [wrong_path_transmits] pair list is not
    serialized, so it comes back empty; its count round-trips. *)
