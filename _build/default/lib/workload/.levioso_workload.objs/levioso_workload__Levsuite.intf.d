lib/workload/levsuite.mli: Workload
