(* Stream compaction (xz/filter flavour): copy the elements that pass a
   predicate to a dense output — the output address is itself
   data-dependent on every earlier branch outcome, so the store/load stream
   carries long dependence chains through a branchy loop. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let size = 9000
let input_base = Layout.data_base
let output_base = Layout.data_base + 16384

let mem_init mem =
  let rng = Layout.rng 9 in
  for i = 0 to size - 1 do
    mem.(input_base + i) <- Rng.int rng 256
  done

let build b =
  let i = Builder.fresh_reg b in
  let v = Builder.fresh_reg b in
  let out = Builder.fresh_reg b in
  let check = Builder.fresh_reg b in
  Builder.mov b out (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm size) (fun () ->
      Builder.load b v (Ir.Reg i) (Ir.Imm input_base);
      Builder.if_then b
        ~cond:(Ir.Lt, Ir.Reg v, Ir.Imm 96)
        (fun () ->
          Builder.store b (Ir.Reg out) (Ir.Imm output_base) (Ir.Reg v);
          Builder.add b out (Ir.Reg out) (Ir.Imm 1)));
  (* checksum: kept count plus a sample of the output *)
  Builder.mov b check (Ir.Reg out);
  Builder.alu b Ir.Shr v (Ir.Reg out) (Ir.Imm 1);
  Builder.load b v (Ir.Reg v) (Ir.Imm output_base);
  Builder.mul b v (Ir.Reg v) (Ir.Imm 10000);
  Builder.add b check (Ir.Reg check) (Ir.Reg v);
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg check);
  Builder.halt b

let workload =
  Workload.make ~name:"compact"
    ~description:"predicate-based stream compaction (filter/compress kernel)"
    ~build ~mem_init
