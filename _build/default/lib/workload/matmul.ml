(* Dense matrix multiply (namd/lbm compute flavour): perfectly predictable
   counted loops, streaming loads, multiply-accumulate — the kernel where
   every defense should be near-free and the figures need a low bar. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder

let n = 20
let a_base = Layout.data_base
let b_base = Layout.data_base + 1024
let c_base = Layout.data_base + 2048

let mem_init mem =
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      mem.(a_base + (i * n) + j) <- ((i + j) * 7) mod 13;
      mem.(b_base + (i * n) + j) <- ((i * j) + 3) mod 17
    done
  done

let build b =
  let i = Builder.fresh_reg b in
  let j = Builder.fresh_reg b in
  let k = Builder.fresh_reg b in
  let acc = Builder.fresh_reg b in
  let av = Builder.fresh_reg b in
  let bv = Builder.fresh_reg b in
  let ai = Builder.fresh_reg b in
  let bi = Builder.fresh_reg b in
  let check = Builder.fresh_reg b in
  Builder.for_down b ~counter:i ~from:(Ir.Imm n) (fun () ->
      Builder.for_down b ~counter:j ~from:(Ir.Imm n) (fun () ->
          Builder.mov b acc (Ir.Imm 0);
          Builder.for_down b ~counter:k ~from:(Ir.Imm n) (fun () ->
              (* a[i][k] *)
              Builder.mul b ai (Ir.Reg i) (Ir.Imm n);
              Builder.add b ai (Ir.Reg ai) (Ir.Reg k);
              Builder.load b av (Ir.Reg ai) (Ir.Imm a_base);
              (* b[k][j] *)
              Builder.mul b bi (Ir.Reg k) (Ir.Imm n);
              Builder.add b bi (Ir.Reg bi) (Ir.Reg j);
              Builder.load b bv (Ir.Reg bi) (Ir.Imm b_base);
              Builder.mul b av (Ir.Reg av) (Ir.Reg bv);
              Builder.add b acc (Ir.Reg acc) (Ir.Reg av));
          Builder.mul b ai (Ir.Reg i) (Ir.Imm n);
          Builder.add b ai (Ir.Reg ai) (Ir.Reg j);
          Builder.store b (Ir.Reg ai) (Ir.Imm c_base) (Ir.Reg acc)));
  (* checksum: trace of C *)
  Builder.mov b check (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm n) (fun () ->
      Builder.mul b ai (Ir.Reg i) (Ir.Imm (n + 1));
      Builder.load b av (Ir.Reg ai) (Ir.Imm c_base);
      Builder.add b check (Ir.Reg check) (Ir.Reg av));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg check);
  Builder.halt b

let workload =
  Workload.make ~name:"matmul"
    ~description:"dense integer matrix multiply (predictable compute)"
    ~build ~mem_init
