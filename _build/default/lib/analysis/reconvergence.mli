(** Reconvergence points of conditional branches.

    The reconvergence point of a branch is the first program point that
    every path leaving the branch must reach — its block's immediate
    post-dominator.  Instructions fetched between a branch and its
    reconvergence point are the ones whose *existence* depends on the
    branch outcome; this is exactly the "true branch dependency"
    information Levioso's compiler pass communicates to the hardware. *)

type point =
  | Reconverges_at of int
      (** pc of the first instruction of the reconvergence block *)
  | No_reconvergence
      (** the paths only meet at program exit (or not at all):
          conservatively, everything younger depends on the branch *)

type t

val compute : Levioso_ir.Cfg.t -> t

val point : t -> int -> point
(** [point t branch_pc].  @raise Invalid_argument if [branch_pc] is not a
    conditional branch. *)

val branch_pcs : t -> int list
(** All conditional branch pcs, ascending. *)

val coverage : t -> float
(** Fraction of branches with a proper reconvergence point (statistic
    reported in the compiler table). *)
