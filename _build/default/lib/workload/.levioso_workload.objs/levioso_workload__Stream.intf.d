lib/workload/stream.mli: Workload
