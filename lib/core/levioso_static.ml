module Ir = Levioso_ir.Ir
module Cfg = Levioso_ir.Cfg
module Branch_dep = Levioso_analysis.Branch_dep
module Int_set = Levioso_analysis.Branch_dep.Int_set
module Pipeline = Levioso_uarch.Pipeline
module Config = Levioso_uarch.Config

let maker (config : Config.t) program pipe =
  (* the "compiler output": per-pc static dependency sets, with the same
     hardware budget discipline as the dynamic scheme *)
  let bd = Branch_dep.compute (Cfg.build program) in
  let budget = config.Config.depset_budget in
  let deps =
    Array.init (Array.length program) (fun pc ->
        let s = Branch_dep.deps_of_pc bd pc in
        if Int_set.cardinal s > budget then None (* overflow: depend on all *)
        else Some s)
  in
  let may_execute ~seq =
    if not (Pipeline.is_transmitter (Pipeline.instr_of pipe seq)) then true
    else
      match deps.(Pipeline.pc_of pipe seq) with
      | None -> not (Pipeline.exists_older_unresolved_branch pipe ~seq)
      | Some set ->
        not
          (List.exists
             (fun b -> Int_set.mem (Pipeline.pc_of pipe b) set)
             (Pipeline.older_unresolved_branches pipe ~seq))
  in
  (* Provenance: the older unresolved branches whose static pc is in the
     instruction's dependency set (all of them after an overflow). *)
  let explain ~seq =
    match deps.(Pipeline.pc_of pipe seq) with
    | None -> Levioso_telemetry.Audit.Overflow
    | Some set ->
      Levioso_telemetry.Audit.Branch_dep
        (List.filter_map
           (fun b ->
             let bpc = Pipeline.pc_of pipe b in
             if Int_set.mem bpc set then Some (b, bpc) else None)
           (Pipeline.older_unresolved_branches pipe ~seq))
  in
  {
    Pipeline.always_execute_policy with
    policy_name = "levioso-static";
    may_execute;
    explain;
  }
