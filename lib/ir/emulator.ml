type state = {
  regs : int array;
  mem : int array;
  mutable pc : int;
  mutable retired : int;
  mutable halted : bool;
  program : Ir.program;
}

exception Out_of_fuel

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(mem_words = 65536) program =
  if not (is_power_of_two mem_words) then
    invalid_arg
      (Printf.sprintf "Emulator.create: mem_words must be a power of two, got %d"
         mem_words);
  {
    regs = Array.make Ir.num_regs 0;
    mem = Array.make mem_words 0;
    pc = 0;
    retired = 0;
    halted = false;
    program;
  }

let mask_addr state addr = addr land (Array.length state.mem - 1)

let read_reg state r = if r = Ir.zero_reg then 0 else state.regs.(r)

let write_reg state r v = if r <> Ir.zero_reg then state.regs.(r) <- v

let operand state = function
  | Ir.Reg r -> read_reg state r
  | Ir.Imm i -> i

let step state =
  if not state.halted then begin
    let instr = state.program.(state.pc) in
    let next = state.pc + 1 in
    (match instr with
    | Ir.Alu { op; dst; a; b } ->
      write_reg state dst (Ir.eval_alu op (operand state a) (operand state b));
      state.pc <- next
    | Ir.Load { dst; base; off } ->
      let addr = mask_addr state (operand state base + operand state off) in
      write_reg state dst state.mem.(addr);
      state.pc <- next
    | Ir.Store { base; off; src } ->
      let addr = mask_addr state (operand state base + operand state off) in
      state.mem.(addr) <- operand state src;
      state.pc <- next
    | Ir.Branch { cmp; a; b; target } ->
      let taken = Ir.eval_cmp cmp (operand state a) (operand state b) in
      state.pc <- (if taken then target else next)
    | Ir.Jump { target } -> state.pc <- target
    | Ir.Flush _ -> state.pc <- next (* no cache architecturally *)
    | Ir.Rdcycle { dst; _ } ->
      write_reg state dst state.retired;
      state.pc <- next
    | Ir.Halt -> state.halted <- true);
    state.retired <- state.retired + 1
  end

let run ?(fuel = 10_000_000) state =
  let budget = ref fuel in
  while not state.halted do
    if !budget <= 0 then raise Out_of_fuel;
    decr budget;
    step state
  done

let run_program ?mem_words ?fuel ?(init = fun _ -> ()) program =
  let state = create ?mem_words program in
  init state;
  run ?fuel state;
  state
