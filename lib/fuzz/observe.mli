(** Run a program on the pipeline under a named policy and capture
    everything the fuzz oracles compare: final architectural state, the
    retired-instruction and cycle counts, the squashed-transmitter count,
    and (optionally) a cache probe trace — the attacker's view of which
    hierarchy level holds each probed line after the run. *)

type t = {
  regs : int array;  (** final architectural register file *)
  mem : int array;  (** final memory image *)
  cycles : int;
  committed : int;  (** instructions retired *)
  wrong_path_transmits : int;
      (** transmitters that executed and were then squashed *)
  probe : int array;
      (** one entry per requested probe address: 0 = L1, 1 = L2,
          2 = memory (cold) — empty when no probes were requested *)
}

val run :
  ?probe_addrs:int array ->
  ?max_cycles:int ->
  config:Levioso_uarch.Config.t ->
  policy:string ->
  mem_init:(int array -> unit) ->
  Levioso_ir.Ir.program ->
  t
(** Simulate to completion on a private pipeline (fresh telemetry, no
    shared mutable state — safe to call from worker domains).
    [max_cycles] defaults to one million — far beyond any generated
    program, but low enough that a shrinker-created runaway is cut off
    quickly.
    @raise Invalid_argument on unknown policy names
    @raise Levioso_uarch.Pipeline.Deadlock on policy bugs
    @raise Failure when [max_cycles] is exceeded. *)

val run_traced :
  ?probe_addrs:int array ->
  ?max_cycles:int ->
  secret_ranges:(int * int) list ->
  config:Levioso_uarch.Config.t ->
  policy:string ->
  mem_init:(int array -> unit) ->
  Levioso_ir.Ir.program ->
  t * Levioso_telemetry.Flowtrace.t
(** Like {!run}, but with the speculative information-flow tracer
    installed (taint seeded from [secret_ranges], inclusive address
    pairs); returns the observation together with the accumulated leak
    graph.  The observation itself is bit-identical to {!run}'s — the
    tracer has the pipeline's zero-effect guarantee. *)

val equal :
  ?ignore_mem:int array -> t -> t -> (unit, string) result
(** Structural equality of two observations; [Error] describes the first
    difference found (register, memory word, cycle count, retired count
    or probe level).  [ignore_mem] lists word addresses excluded from the
    memory comparison (the planted secret slots, which differ by
    construction).  [wrong_path_transmits] is {e not} compared — it is a
    diagnostic, not an architectural observable. *)

val against_emulator :
  reference:Levioso_ir.Emulator.state -> t -> (unit, string) result
(** Compare a pipeline observation with the architectural emulator's
    final registers, memory and retired count (the oracle-equivalence
    check: no defense may change architectural results). *)
