let fmt_f x = Printf.sprintf "%.2f" x

let table ~header ~rows =
  let all = header :: rows in
  let arity = List.length header in
  List.iter (fun r -> assert (List.length r = arity)) rows;
  let widths = Array.make arity 0 in
  let note_row r =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) r
  in
  List.iter note_row all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row r = "| " ^ String.concat " | " (List.mapi pad r) ^ " |" in
  let rule =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let body = List.map render_row rows in
  String.concat "\n" (rule :: render_row header :: rule :: body @ [ rule ])

let bar ?(width = 50) value max_value =
  let n =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (value /. max_value *. float_of_int width))
  in
  String.make (max 0 n) '#'

let bar_chart ?(width = 50) ~title () series =
  let max_value = List.fold_left (fun m (_, v) -> max m v) 0.0 series in
  let label_w =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 series
  in
  let line (label, v) =
    Printf.sprintf "  %-*s %8s |%s" label_w label (fmt_f v) (bar ~width v max_value)
  in
  String.concat "\n" (title :: List.map line series)

let grouped_bars ?(width = 40) ~title ~group_labels ~series () =
  let max_value =
    List.fold_left
      (fun m (_, vs) -> List.fold_left max m vs)
      0.0 series
  in
  let series_label_w =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 series
  in
  let group_w =
    List.fold_left (fun m l -> max m (String.length l)) 0 group_labels
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  List.iteri
    (fun gi glabel ->
      Buffer.add_string buf (Printf.sprintf "\n %-*s" group_w glabel);
      List.iter
        (fun (slabel, vs) ->
          let v = List.nth vs gi in
          Buffer.add_string buf
            (Printf.sprintf "\n   %-*s %8s |%s" series_label_w slabel (fmt_f v)
               (bar ~width v max_value)))
        series)
    group_labels;
  Buffer.contents buf

let section title =
  let rule = String.make 72 '=' in
  Printf.sprintf "\n%s\n%s\n%s" rule title rule
