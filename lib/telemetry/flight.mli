(** Crash flight recorder: bounded in-memory rings of the most recent
    time-series samples and per-request span records, dumped to a
    schema-tagged post-mortem JSON when something goes wrong (deadlock
    diagnostic, uncaught server error) or on demand (SIGUSR1).

    The recorder performs no clock reads and no I/O of its own until
    {!dump}/{!write}: the serve path already timestamps every sample and
    access record it produces, so feeding the rings costs two mutexed
    list pushes per event.  Rings are capacity-bounded, oldest entries
    evicted first, so memory stays O(capacity) under unbounded load. *)

type t

val create : ?samples:int -> ?records:int -> unit -> t
(** Ring capacities; both default to 256. *)

val add_sample : t -> Tsdb.sample -> unit
val add_record : t -> Json.t -> unit
(** [add_record] takes an already-built span/access record verbatim. *)

val sample_count : t -> int
(** Samples currently held (≤ capacity). *)

val dump : t -> reason:string -> ts:float -> Json.t
(** Snapshot both rings (oldest first) as a ["levioso-postmortem"]
    document: [schema_version], [kind], [reason], [ts], [samples]
    (tsdb-sample objects) and [records]. *)

val write :
  t -> dir:string -> reason:string -> ts:float -> (string, string) result
(** {!dump} to the first free [postmortem-NNN.json] under [dir]
    (atomic temp-file + rename); returns the path written. *)
