(** The levioso_serve daemon: a Unix-domain-socket front end that
    schedules batched simulation requests onto one shared
    {!Levioso_util.Parallel} pool and one shared {!Levioso_uarch.Run_cache}
    shard store.

    One systhread per connection handles that client's frames
    sequentially; concurrency comes from many connections feeding the
    pool, whose bounded queue (see [queue_max]) provides backpressure by
    blocking the submitting handler.  Identical cells submitted
    concurrently by different clients are merged onto a single
    computation (best-effort in-flight memo) — safe because cells are
    deterministic.

    Results are streamed back in submission order, so a client's view is
    bit-identical to a serial in-process run of the same matrix. *)

type opts = {
  socket_path : string;  (** created on start, unlinked on stop *)
  pool_size : int;  (** simulation domains (clamped to >= 1) *)
  queue_max : int option;
      (** bound on queued cells; [None] = unbounded *)
  cache : Levioso_uarch.Run_cache.t option;
      (** shared shard store; [None] disables replay/persist *)
  monitor : Levioso_telemetry.Monitor.t option;
      (** live progress + OpenMetrics queue/throughput gauges and
          per-stage latency histograms *)
  log : (string -> unit) option;  (** daemon-side event log lines *)
  spans : Levioso_telemetry.Span.t option;
      (** request-level tracing: with a collector, every submission
          opens a [submit] root span with one [cell] child per cell and
          engine-stage grandchildren; the caller drains and exports
          after {!run} returns.  [None] = tracing off: no clock reads
          on the execution path.  Either way the simulation results are
          bit-identical — collection is observational. *)
  access_log : out_channel option;
      (** one minified schema-tagged JSONL record per served cell
          (see {!Levioso_telemetry.Span.access_record}), flushed per
          line so `tail -f` works; engine stage durations appear only
          when [spans] is also set.  The caller owns the channel. *)
}

val run : ?on_ready:(unit -> unit) -> opts -> unit
(** Bind, serve until a [shutdown] frame arrives, drain outstanding
    work, then clean up (socket unlinked, monitor closed).  [on_ready]
    fires once the socket is accepting — tests use it to connect
    without polling.

    @raise Failure if [socket_path] is already served by a live daemon
    (a stale socket from a dead one is silently replaced). *)
