examples/constant_time_demo.ml: Levioso_attack Levioso_util List Printf String
