(** Necessity classification for restriction-provenance auditing.

    The audit layer ([Levioso_telemetry.Audit]) labels each restriction
    episode {e necessary} or {e unnecessary}; the oracle it needs —
    "is this instruction truly dependent on that branch?" — is exactly
    the static analysis Levioso's compiler pass runs
    ([Levioso_analysis.Branch_dep]).  This module packages that analysis
    as the closure the (dependency-free) telemetry layer expects.

    A restriction is {e necessary} when at least one of the unresolved
    branches gating it has the gated instruction in its static
    dependency cone — i.e. a conservative defense would also have to
    wait there.  Anything else is pure over-restriction: the cycles a
    dependency-aware defense (Levioso) gets back. *)

val classifier :
  Levioso_ir.Ir.program -> pc:int -> branch_pc:int -> bool
(** [classifier program ~pc ~branch_pc] is true when the instruction at
    [pc] is (control- or data-) dependent on the branch at [branch_pc]
    per [Branch_dep.compute].  The analysis runs once, at partial
    application time — apply to the program first and reuse the
    closure. *)

val audit_for :
  ?capacity:int -> Levioso_ir.Ir.program -> Levioso_telemetry.Audit.t
(** An audit recorder whose necessity oracle is [classifier program].
    [capacity] bounds the event ring as in [Audit.create]. *)
