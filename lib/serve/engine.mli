(** Execution of one wire-protocol cell, shared by the daemon and the
    in-process tests.

    The simulation path makes {e exactly} the calls a local serial bench
    cell makes ([Pipeline.create] → [Pipeline.run] →
    [Summary.of_pipeline], or the [Sampler] pair for sampled cells, with
    no host section), so a remote summary is bit-identical to an
    in-process run of the same cell. *)

type scope = {
  spans : Levioso_telemetry.Span.t;
  trace : string;  (** request trace id the cell belongs to *)
  parent : int;  (** the cell span's id — stage spans nest under it *)
}
(** Where to hang this cell's stage spans.  Omitted = tracing off: no
    clock reads, no allocation, the exact PR 8 execution path. *)

type outcome = {
  summary : Levioso_telemetry.Json.t;
  source : string;  (** ["sim"] or ["cache"] *)
  wall_s : float;
  stages : (string * float) list;
      (** per-stage durations in execution order (["cache_probe"],
          ["replay"], ["simulate"]) — non-empty only when a [scope] was
          passed; feeds the daemon's access log *)
}

val validate_cell : Protocol.cell -> (unit, string) result
(** Config sanity, workload/policy existence, audit×sample conflict.
    The daemon checks per cell and turns a failure into that cell's
    [error] result while the rest of the batch proceeds. *)

val cacheable : Protocol.cell -> bool
(** Plain cells only: audited and sampled summaries never enter (or
    replay from) the shared store. *)

val run_cell :
  ?cache:Levioso_uarch.Run_cache.t -> ?scope:scope -> Protocol.cell -> outcome
(** Replay from the shard store when possible (schema-checked, stats
    block must parse — the same strictness as bench's local replay),
    otherwise simulate and store.  With a [scope], emits
    [cache_probe]/[replay]/[simulate] child spans (hit/miss and
    workload/policy attributes) and fills [stages]; the summary bits
    are identical either way.

    @raise Invalid_argument on unknown workload/policy names; call
    {!validate_cell} first. *)
