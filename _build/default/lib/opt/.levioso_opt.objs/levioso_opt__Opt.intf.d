lib/opt/opt.mli: Levioso_ir
