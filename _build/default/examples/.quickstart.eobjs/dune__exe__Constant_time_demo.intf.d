examples/constant_time_demo.mli:
