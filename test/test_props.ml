(* Property-based tests: random structured programs are run through every
   defense and compared against the architectural emulator, and the
   compiler analyses are checked on the same random population. *)

module Ir = Levioso_ir.Ir
module Cfg = Levioso_ir.Cfg
module Emulator = Levioso_ir.Emulator
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Registry = Levioso_core.Registry
module Api = Levioso_core.Levioso_api
module Postdom = Levioso_analysis.Postdom
module Reconvergence = Levioso_analysis.Reconvergence
module Control_dep = Levioso_analysis.Control_dep
module Branch_dep = Levioso_analysis.Branch_dep

(* The random-program generator lives in the fuzzing subsystem now
   (lib/fuzz/gen.ml) — these tests consume it through Levioso_fuzz.Gen so
   the property-test population and the fuzzer population stay one and
   the same. *)

module Gen = Levioso_fuzz.Gen

let config = Gen.default_config
let random_program = Gen.random_program
let mem_init = Gen.mem_init

(* --- properties ------------------------------------------------------ *)

let count = 60

let prop_policies_match_emulator policy =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "%s matches emulator on random programs" policy)
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      match
        Api.check_against_emulator ~config ~mem_init:(mem_init seed) ~policy
          program
      with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

let prop_comprehensive_never_runs_wrong_path_transmit policy =
  QCheck.Test.make ~count
    ~name:(Printf.sprintf "%s never executes a squashed transmitter" policy)
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let pipe =
        Pipeline.create ~mem_init:(mem_init seed) config
          ~policy:(Registry.find_exn policy) program
      in
      Pipeline.run pipe;
      let stats = Pipeline.stats pipe in
      if stats.Sim_stats.wrong_path_transmits = [] then true
      else
        let branch_pc, pc = List.hd stats.Sim_stats.wrong_path_transmits in
        QCheck.Test.fail_reportf
          "seed %d: squashed transmitter at pc %d (branch %d) executed" seed pc
          branch_pc)

let prop_reconvergence_postdominates =
  QCheck.Test.make ~count ~name:"reconvergence point postdominates its branch"
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let cfg = Cfg.build program in
      let pd = Postdom.compute cfg in
      let reconv = Reconvergence.compute cfg in
      List.for_all
        (fun pc ->
          match Reconvergence.point reconv pc with
          | Reconvergence.Reconverges_at rpc ->
            Postdom.postdominates pd (Cfg.block_of_pc cfg rpc)
              (Cfg.block_of_pc cfg pc)
          | Reconvergence.No_reconvergence -> true)
        (Reconvergence.branch_pcs reconv))

let prop_branch_dep_superset_of_control_dep =
  QCheck.Test.make ~count
    ~name:"static branch deps contain control deps at every pc"
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let cfg = Cfg.build program in
      let cd = Control_dep.compute cfg in
      let bd = Branch_dep.compute cfg in
      let ok = ref true in
      Array.iteri
        (fun pc _ ->
          if
            not
              (Control_dep.Int_set.subset (Control_dep.of_pc cd pc)
                 (Branch_dep.deps_of_pc bd pc))
          then ok := false)
        program;
      !ok)

let prop_structured_programs_reconverge =
  QCheck.Test.make ~count
    ~name:"builder-generated structured code always reconverges"
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let cfg = Cfg.build program in
      let reconv = Reconvergence.compute cfg in
      Reconvergence.coverage reconv = 1.0)

let prop_levioso_not_slower_than_delay =
  (* On structured programs Levioso restricts a subset of what delay
     restricts, so it can never stall transmitters for longer in total. *)
  QCheck.Test.make ~count:30
    ~name:"levioso stalls at most as many entry-cycles as delay"
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let run policy =
        let pipe =
          Pipeline.create ~mem_init:(mem_init seed) config
            ~policy:(Registry.find_exn policy) program
        in
        Pipeline.run pipe;
        (Pipeline.stats pipe).Sim_stats.cycles
      in
      let lev = run "levioso" and del = run "delay" in
      if lev <= del + (del / 10) + 50 then true
      else QCheck.Test.fail_reportf "seed %d: levioso %d vs delay %d" seed lev del)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count ~name:"disassembly parses back to the same program"
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let text = Levioso_ir.Ir.program_to_string program in
      match Levioso_ir.Parser.parse text with
      | Ok reparsed -> reparsed = program
      | Error msg -> QCheck.Test.fail_reportf "seed %d: %s" seed msg)

let prop_emulator_deterministic =
  QCheck.Test.make ~count ~name:"emulator runs are deterministic"
    QCheck.small_nat
    (fun seed ->
      let program = random_program seed in
      let run () =
        let s =
          Emulator.run_program ~mem_words:4096
            ~init:(fun st -> mem_init seed st.Emulator.mem)
            program
        in
        (Array.copy s.Emulator.regs, s.Emulator.retired)
      in
      run () = run ())

let suite =
  ( "properties",
    List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      (List.map prop_policies_match_emulator Registry.names
      @ List.map prop_comprehensive_never_runs_wrong_path_transmit
          [ "fence"; "delay" ]
      @ [
          prop_reconvergence_postdominates;
          prop_branch_dep_superset_of_control_dep;
          prop_structured_programs_reconverge;
          prop_print_parse_roundtrip;
          prop_levioso_not_slower_than_delay;
          prop_emulator_deterministic;
        ]) )
