(** Small statistics helpers used by the benchmark harness and reports. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list.  All inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], nearest-rank method.
    @raise Invalid_argument on the empty list. *)

val minimum : float list -> float
(** Smallest element. @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** Largest element. @raise Invalid_argument on the empty list. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 when [b = 0]. *)

val overhead_pct : baseline:float -> float -> float
(** [overhead_pct ~baseline x] is the slowdown of [x] relative to
    [baseline] in percent, e.g. 23.0 for a 1.23x normalized time. *)
