(* Random binary-tree descent (omnetpp/deepsjeng flavour): each step loads
   a node key, branches on the comparison, and loads the chosen child
   pointer — the next address is both control- and data-dependent on a
   memory-dependent branch.  A fully *true* dependence chain: the worst
   case the Levioso paper concedes, and heavy for every scheme. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let tree_nodes = 4095  (* perfect tree of depth 12 *)
let descents = 500

(* node i occupies 3 words at data_base + 3i: key, left-addr, right-addr *)
let node_addr i = Layout.data_base + (3 * i)

let mem_init mem =
  let rng = Layout.rng 10 in
  (* heap-shaped perfect tree; keys random so descent paths are random *)
  for i = 0 to tree_nodes - 1 do
    mem.(node_addr i) <- Rng.int rng 100_000;
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    mem.(node_addr i + 1) <-
      (if left < tree_nodes then node_addr left else node_addr 0);
    mem.(node_addr i + 2) <-
      (if right < tree_nodes then node_addr right else node_addr 0)
  done

let depth = 11

let build b =
  let q = Builder.fresh_reg b in
  let d = Builder.fresh_reg b in
  let node = Builder.fresh_reg b in
  let key = Builder.fresh_reg b in
  let target = Builder.fresh_reg b in
  let acc = Builder.fresh_reg b in
  Builder.mov b acc (Ir.Imm 0);
  Builder.for_down b ~counter:q ~from:(Ir.Imm descents) (fun () ->
      (* targets biased low: ~85% of compares go left, so the descent
         branches are predictable and speculation normally wins *)
      Builder.mul b target (Ir.Reg q) (Ir.Imm 75329);
      Builder.alu b Ir.Rem target (Ir.Reg target) (Ir.Imm 15_000);
      Builder.mov b node (Ir.Imm (node_addr 0));
      Builder.for_down b ~counter:d ~from:(Ir.Imm depth) (fun () ->
          Builder.load b key (Ir.Reg node) (Ir.Imm 0);
          Builder.add b acc (Ir.Reg acc) (Ir.Reg key);
          Builder.if_then_else b
            ~cond:(Ir.Lt, Ir.Reg target, Ir.Reg key)
            (fun () -> Builder.load b node (Ir.Reg node) (Ir.Imm 1))
            (fun () -> Builder.load b node (Ir.Reg node) (Ir.Imm 2))));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg acc);
  Builder.halt b

let workload =
  Workload.make ~name:"treewalk"
    ~description:"random binary-tree descents with key-compare branches"
    ~build ~mem_init
