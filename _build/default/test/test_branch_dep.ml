module Cfg = Levioso_ir.Cfg
module Parser = Levioso_ir.Parser
module Branch_dep = Levioso_analysis.Branch_dep
module Int_set = Levioso_analysis.Branch_dep.Int_set

let analyze ?track_memory src =
  Branch_dep.compute ?track_memory (Cfg.build (Parser.parse_exn src))

let deps bd pc = Int_set.elements (Branch_dep.deps_of_pc bd pc)

let test_data_flow_closure () =
  (* r2 is written under the branch; the load after the join inherits the
     dependence through r2 even though it is control-independent. *)
  let bd =
    analyze
      {|
        beq r1, #0, join     ; pc 0
        mov r2, #64          ; pc 1: control-dep on 0
      join:
        load r3, [r2 + #0]   ; pc 2: data-dep on 0 via r2
        halt                 ; pc 3: free
      |}
  in
  Alcotest.(check (list int)) "load inherits" [ 0 ] (deps bd 2);
  Alcotest.(check (list int)) "halt free" [] (deps bd 3)

let test_control_only () =
  let bd =
    analyze
      {|
        beq r1, #0, join   ; pc 0
        mov r2, #1         ; pc 1
      join:
        mov r3, #2         ; pc 2: fresh value, no dependence
        halt
      |}
  in
  Alcotest.(check (list int)) "region" [ 0 ] (deps bd 1);
  Alcotest.(check (list int)) "independent" [] (deps bd 2)

let test_loop_fixpoint_terminates_and_propagates () =
  (* The accumulator carries the loop-branch dependence around the back
     edge; the fixpoint must terminate with pc 2 depending on pc 1. *)
  let bd =
    analyze
      {|
        mov r1, #0        ; pc 0
      head:
        bge r1, #10, out  ; pc 1
        add r1, r1, #1    ; pc 2
        jump head         ; pc 3
      out:
        store [r0 + #0], r1 ; pc 4: r1 written in loop -> data dep on 1
        halt
      |}
  in
  Alcotest.(check (list int)) "body" [ 1 ] (deps bd 2);
  Alcotest.(check (list int)) "store after loop inherits via r1" [ 1 ] (deps bd 4)

let test_memory_channel_off_by_default () =
  let src =
    {|
      beq r1, #0, skip      ; pc 0
      store [r0 + #8], #5   ; pc 1
    skip:
      load r2, [r0 + #8]    ; pc 2
      halt
    |}
  in
  let bd = analyze src in
  Alcotest.(check (list int)) "no memory channel" [] (deps bd 2);
  let bd_mem = analyze ~track_memory:true src in
  Alcotest.(check (list int)) "memory channel on" [ 0 ] (deps bd_mem 2)

let test_statistics () =
  let bd =
    analyze
      {|
        mov r1, #1          ; free
        beq r1, #0, skip    ; free
        mov r2, #2          ; dep
      skip:
        halt                ; free
      |}
  in
  Alcotest.(check (float 1e-9)) "independent fraction" 0.75
    (Branch_dep.independent_fraction bd);
  Alcotest.(check int) "max set" 1 (Branch_dep.max_set_size bd);
  Alcotest.(check (float 1e-9)) "mean set" 0.25 (Branch_dep.mean_set_size bd)

let test_overwrite_clears_dependence () =
  let bd =
    analyze
      {|
        beq r1, #0, join  ; pc 0
        mov r2, #1        ; pc 1: dep
      join:
        mov r2, #9        ; pc 2: overwrites -> r2 clean afterwards
        load r3, [r2 + #0]; pc 3: free
        halt
      |}
  in
  Alcotest.(check (list int)) "fresh write" [] (deps bd 3)

let suite =
  ( "branch-dep",
    [
      Alcotest.test_case "data-flow closure" `Quick test_data_flow_closure;
      Alcotest.test_case "control only" `Quick test_control_only;
      Alcotest.test_case "loop fixpoint" `Quick test_loop_fixpoint_terminates_and_propagates;
      Alcotest.test_case "memory channel" `Quick test_memory_channel_off_by_default;
      Alcotest.test_case "statistics" `Quick test_statistics;
      Alcotest.test_case "overwrite clears" `Quick test_overwrite_clears_dependence;
    ] )
