(** The one name set every surface agrees on: the full workload roster
    (suite kernels, findable extras like [stream-xl], compiled Lev
    workloads, and the [spectre-v1] gadget pseudo-workload) plus the
    policy registry — backing [levioso_sim --list-workloads/-policies]
    and the wire protocol's [list] request. *)

val workloads : unit -> Levioso_workload.Workload.t list
(** Every resolvable workload, in listing order. *)

val workload_names : unit -> string list

val listing : unit -> (string * string) list
(** [(name, description)] pairs of {!workloads}. *)

val find_workload : string -> Levioso_workload.Workload.t option

val find_workload_exn : string -> Levioso_workload.Workload.t
(** @raise Invalid_argument on unknown names, listing the known ones. *)

val policies : unit -> string list
(** [Levioso_core.Registry.names]. *)
