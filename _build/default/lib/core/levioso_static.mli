(** The static-hint ablation of Levioso.

    Instead of tracking dependencies per dynamic branch {e instance} (the
    paper's mechanism, {!Levioso_policy}), the compiler emits each
    instruction's {e static} branch-dependency set — the branch pcs it may
    depend on, from {!Levioso_analysis.Branch_dep} — and the hardware
    stalls a transmitter while {e any} older unresolved branch's pc is in
    that set.

    This is sound (the static set over-approximates every dynamic
    dependence) and far simpler in hardware (no active-region tracking, no
    rename-time propagation), but conservative around loops: an unresolved
    instance of a loop branch from a {e previous} iteration matches the
    static pc of a dependence on the {e current} iteration's instance, so
    transmitters in loop bodies wait more than they must.  The gap between
    this variant and full Levioso in the ablation figure is the measured
    value of dynamic instance tracking. *)

val maker : Levioso_uarch.Pipeline.policy_maker
