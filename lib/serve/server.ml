module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Monitor = Levioso_telemetry.Monitor
module Span = Levioso_telemetry.Span
module Tsdb = Levioso_telemetry.Tsdb
module Alerts = Levioso_telemetry.Alerts
module Flight = Levioso_telemetry.Flight
module Run_cache = Levioso_uarch.Run_cache
module Pipeline = Levioso_uarch.Pipeline
module Parallel = Levioso_util.Parallel

type history_opts = {
  history_dir : string;
  history_interval_s : float;
  alert_rules : Alerts.rule list;
}

type opts = {
  socket_path : string;
  pool_size : int;
  queue_max : int option;
  cache : Run_cache.t option;
  monitor : Monitor.t option;
  log : (string -> unit) option;
  spans : Span.t option;
  access_log : out_channel option;
  history : history_opts option;
}

(* The latency-accounting stages every cell passes through, in path
   order.  Sliding windows (exact p50/p95/p99 for the stats frame and
   `top`) and log-scale histograms (OpenMetrics) are always on — they
   are a handful of float writes per cell and never touch results;
   span collection and the access log stay Option-gated. *)
let lat_stages = [ "queue"; "exec"; "serialize"; "total" ]

let window_capacity = 512

(* Continuous-telemetry state, allocated only under --history-out.  A
   daemon without it constructs none of this: the sampler thread, its
   clock reads and the flight-recorder rings simply do not exist, which
   is the zero-effect guarantee. *)
type hist = {
  h_dir : string;
  h_interval_s : float;
  tsdb : Tsdb.t;
  halerts : Alerts.t;
  flight : Flight.t;
  (* reason for a requested post-mortem dump (SIGUSR1 handler writes,
     sampler thread drains — a signal handler must not take locks) *)
  dump_req : string option Atomic.t;
  h_stop : bool Atomic.t;
  (* previous tick's (ts, requests, errors, simulated, cached) for rates *)
  mutable h_prev : (float * float * float * float * float) option;
}

type t = {
  opts : opts;
  listener : Unix.file_descr;
  pool : Parallel.t;
  running : bool Atomic.t;
  started : float;
  (* best-effort memo of cells currently being computed, so N clients
     submitting the same matrix concurrently pay for one simulation of
     each cell instead of N (the disk store only helps after a cell
     finishes) *)
  inflight : (string, Engine.outcome Parallel.future) Hashtbl.t;
  inflight_mu : Mutex.t;
  clients : (Thread.t * Unix.file_descr) list ref;
  clients_mu : Mutex.t;
  next_conn : int Atomic.t;
  (* lifetime counters for the stats frame / OpenMetrics gauges *)
  simulated : int Atomic.t;
  cached : int Atomic.t;
  merged : int Atomic.t;
  requests : int Atomic.t;
  errors : int Atomic.t;
  (* per-stage latency accounting: sliding windows for percentiles,
     fixed log-scale histograms for OpenMetrics *)
  lat : (string * Span.Window.w) list;
  lat_hist : (string * Span.Hist.h) list;
  access_mu : Mutex.t;
  history : hist option;
}

let log t msg = match t.opts.log with Some f -> f msg | None -> ()

let gauges t =
  [
    ("serve_queue_depth", "Tasks waiting for a pool worker.",
     float_of_int (Parallel.queue_depth t.pool));
    ("serve_inflight", "Cells currently being computed.",
     float_of_int
       (Mutex.protect t.inflight_mu (fun () -> Hashtbl.length t.inflight)));
    ("serve_clients", "Connected clients.",
     float_of_int
       (Mutex.protect t.clients_mu (fun () -> List.length !(t.clients))));
    ("serve_cells_simulated", "Cells simulated since daemon start.",
     float_of_int (Atomic.get t.simulated));
    ("serve_cells_cached", "Cells replayed from the shard store.",
     float_of_int (Atomic.get t.cached));
    ("serve_cells_merged", "Cells merged onto a concurrent computation.",
     float_of_int (Atomic.get t.merged));
    ("serve_requests", "Requests handled since daemon start.",
     float_of_int (Atomic.get t.requests));
    ("serve_errors", "Cells and frames that failed since daemon start.",
     float_of_int (Atomic.get t.errors));
  ]

let publish_gauges t =
  match t.opts.monitor with
  | None -> ()
  | Some m ->
    List.iter (fun (n, help, v) -> Monitor.set_gauge m ~help n v) (gauges t);
    List.iter
      (fun (stage, h) ->
        if Span.Hist.count h > 0 then
          Monitor.set_histogram m
            ~help:(Printf.sprintf "Per-cell %s latency, seconds." stage)
            (Printf.sprintf "serve_%s_seconds" stage)
            ~buckets:(Span.Hist.buckets h) ~sum:(Span.Hist.sum h)
            ~count:(Span.Hist.count h))
      t.lat_hist

let observe_stage t stage v =
  (match List.assoc_opt stage t.lat with
  | Some w -> Span.Window.observe w v
  | None -> ());
  match List.assoc_opt stage t.lat_hist with
  | Some h -> Span.Hist.observe h v
  | None -> ()

let latency_json t =
  Json.Obj
    (List.map
       (fun (stage, w) ->
         let p q =
           match Span.Window.percentile w q with
           | Some v -> Json.float v
           | None -> Json.Null
         in
         ( stage,
           Json.Obj
             [
               ("seen", Json.Int (Span.Window.seen w));
               ("window", Json.Int (Span.Window.count w));
               ("p50_s", p 0.5);
               ("p95_s", p 0.95);
               ("p99_s", p 0.99);
             ] ))
       t.lat)

let stats_snapshot t =
  Schema.tag
    [
      ("kind", Json.String "levioso-serve-stats");
      ("proto", Json.Int Protocol.version);
      ("pool", Json.Int (Parallel.size t.pool));
      ( "queue_max",
        match t.opts.queue_max with Some n -> Json.Int n | None -> Json.Null );
      ("cache", Json.Bool (t.opts.cache <> None));
      ("uptime_s", Json.float (Unix.gettimeofday () -. t.started));
      ("requests", Json.Int (Atomic.get t.requests));
      ("errors", Json.Int (Atomic.get t.errors));
      ( "gauges",
        Json.Obj (List.map (fun (n, _, v) -> (n, Json.float v)) (gauges t)) );
      ("latency", latency_json t);
    ]

(* --- continuous telemetry (--history-out) ------------------------------

   One sampler thread wakes every interval, reads the clock once,
   assembles the daemon's whole observable state into flat float fields
   and appends a tsdb sample.  Field names deliberately match what the
   alert language and the dashboard read: gauges lose their "serve_"
   prefix (queue_depth, requests, ...), latency percentiles are
   "<stage>_p50_s" etc. so a "total_p99_ms > 500" rule resolves via the
   Alerts _ms fallback. *)

let history_fields t ~ts =
  let gauge_fields =
    List.map
      (fun (name, _, v) ->
        let name =
          if String.length name > 6 && String.sub name 0 6 = "serve_" then
            String.sub name 6 (String.length name - 6)
          else name
        in
        (name, v))
      (gauges t)
  in
  let lat_fields =
    List.concat_map
      (fun (stage, w) ->
        let p q suffix =
          match Span.Window.percentile w q with
          | Some v -> [ (stage ^ suffix, v) ]
          | None -> []
        in
        [ (stage ^ "_seen", float_of_int (Span.Window.seen w)) ]
        @ p 0.5 "_p50_s" @ p 0.95 "_p95_s" @ p 0.99 "_p99_s")
      t.lat
  in
  let hist_fields =
    List.concat_map
      (fun (stage, h) ->
        [
          (stage ^ "_hist_count", float_of_int (Span.Hist.count h));
          (stage ^ "_hist_sum_s", Span.Hist.sum h);
        ]
        (* full cumulative buckets for the end-to-end stage only: 4
           stages x ~25 buckets per sample would triple record size for
           curves nobody alerts on *)
        @
        if stage = "total" then
          List.filter_map
            (fun (le, n) ->
              if n > 0 then
                Some (Printf.sprintf "total_le_%g" le, float_of_int n)
              else None)
            (Span.Hist.buckets h)
        else [])
      t.lat_hist
  in
  let gc = Gc.quick_stat () in
  let gc_fields =
    [
      ("gc_heap_words", float_of_int gc.Gc.heap_words);
      ("gc_top_heap_words", float_of_int gc.Gc.top_heap_words);
      ("gc_minor_collections", float_of_int gc.Gc.minor_collections);
      ("gc_major_collections", float_of_int gc.Gc.major_collections);
      ("gc_minor_words", gc.Gc.minor_words);
      ("gc_promoted_words", gc.Gc.promoted_words);
    ]
  in
  (("uptime_s", ts -. t.started) :: gauge_fields) @ lat_fields @ hist_fields
  @ gc_fields

let history_rates h ~ts fields =
  let get name = Option.value ~default:0. (List.assoc_opt name fields) in
  let requests = get "requests" and errors = get "errors" in
  let simulated = get "cells_simulated" and cached = get "cells_cached" in
  let rates =
    match h.h_prev with
    | Some (pts, preq, perr, psim, pcache) when ts > pts ->
      let dt = ts -. pts in
      let sim_d = simulated -. psim and cache_d = cached -. pcache in
      let served = sim_d +. cache_d in
      [
        ("requests_per_s", (requests -. preq) /. dt);
        ("errors_per_s", (errors -. perr) /. dt);
        ("cells_per_s", served /. dt);
        ("cache_hit_share", if served > 0. then cache_d /. served else 0.);
      ]
    | _ -> []
  in
  h.h_prev <- Some (ts, requests, errors, simulated, cached);
  rates

let sample_history t h =
  let ts = Tsdb.now h.tsdb in
  let fields = history_fields t ~ts in
  let fields = fields @ history_rates h ~ts fields in
  let s = Tsdb.append ~ts h.tsdb fields in
  Flight.add_sample h.flight s;
  let lookup name = List.assoc_opt name s.Tsdb.fields in
  let transitions = Alerts.eval h.halerts ~now:ts ~lookup in
  List.iter
    (fun { Alerts.rule; firing; value } ->
      log t
        (if firing then
           Printf.sprintf "alert FIRING: %s (value %g)" rule.Alerts.name value
         else Printf.sprintf "alert resolved: %s" rule.Alerts.name);
      Tsdb.append_alert h.tsdb ~ts ~rule:rule.Alerts.name ~firing)
    transitions;
  match t.opts.monitor with
  | Some m ->
    Monitor.set_gauge m ~help:"Alert rules currently firing." "alerts_firing"
      (float_of_int (Alerts.firing h.halerts))
  | None -> ()

(* Post-mortem dump: flight-recorder rings to disk.  Called from the
   sampler thread (SIGUSR1 flag), a client thread (uncaught request
   error) or the submit path (deadlock diagnostic); Flight and Tsdb are
   mutex-guarded so any thread may dump. *)
let postmortem t ~reason =
  match t.history with
  | None -> ()
  | Some h -> (
    match
      Flight.write h.flight ~dir:h.h_dir ~reason ~ts:(Tsdb.now h.tsdb)
    with
    | Ok path -> log t (Printf.sprintf "post-mortem (%s) -> %s" reason path)
    | Error e -> log t (Printf.sprintf "post-mortem (%s) failed: %s" reason e))

let sampler_loop t h =
  sample_history t h;
  let next = ref (Unix.gettimeofday () +. h.h_interval_s) in
  let slice = Float.min 0.05 (Float.max 0.005 (h.h_interval_s /. 4.)) in
  while not (Atomic.get h.h_stop) do
    (match Atomic.exchange h.dump_req None with
    | Some reason -> postmortem t ~reason
    | None -> ());
    let now = Unix.gettimeofday () in
    if now >= !next then begin
      sample_history t h;
      (* re-anchor on the grid so a slow sample slips the phase instead
         of bunching the next ticks *)
      next := Float.max (!next +. h.h_interval_s) (now +. (h.h_interval_s /. 2.))
    end;
    Thread.delay slice
  done;
  (match Atomic.exchange h.dump_req None with
  | Some reason -> postmortem t ~reason
  | None -> ());
  (* final sample so even a short-lived daemon leaves >= 2 points *)
  sample_history t h

(* The in-flight memo key: everything that determines the result bits,
   plus the cache flag — a --no-cache submission must not merge onto a
   cache-enabled computation that could replay from the shard store. *)
let cell_key ~use_cache (c : Protocol.cell) =
  String.concat "\x00"
    [
      string_of_bool use_cache;
      Run_cache.config_key c.Protocol.config;
      c.Protocol.workload;
      c.Protocol.policy;
      string_of_bool c.Protocol.audit;
      (match c.Protocol.sample with
      | None -> "off"
      | Some sp -> Levioso_uarch.Sampler.spec_to_string sp);
    ]

let exec t ~use_cache ?scope cell () =
  (match t.opts.monitor with
  | Some m ->
    Monitor.start m (cell.Protocol.workload ^ "/" ^ cell.Protocol.policy)
  | None -> ());
  let cache = if use_cache then t.opts.cache else None in
  match Engine.run_cell ?cache ?scope cell with
  | o ->
    (match o.Engine.source with
    | "cache" -> Atomic.incr t.cached
    | _ -> Atomic.incr t.simulated);
    (match t.opts.monitor with
    | Some m -> Monitor.item_done m ~wall_s:o.Engine.wall_s ()
    | None -> ());
    o
  | exception e ->
    (* the monitor's per-domain "current item" must clear even when a
       cell raises, or the live view shows it as stuck forever *)
    (match t.opts.monitor with
    | Some m -> Monitor.item_done m ()
    | None -> ());
    raise e

(* Schedule one cell, merging onto an identical in-flight computation
   when one exists.  The memo is advisory: a racing double-insert or an
   early removal only costs a duplicate simulation, never a wrong
   result (cells are deterministic).  The lock is never held across
   [Parallel.async] — a bounded pool blocks there, and a worker
   finishing a task must not need the lock we hold (deadlock). *)
let schedule t ~use_cache ?scope cell =
  let key = cell_key ~use_cache cell in
  match
    Mutex.protect t.inflight_mu (fun () -> Hashtbl.find_opt t.inflight key)
  with
  | Some fut ->
    Atomic.incr t.merged;
    (fut, false)
  | None ->
    let fut = Parallel.async t.pool (exec t ~use_cache ?scope cell) in
    Mutex.protect t.inflight_mu (fun () ->
        if not (Hashtbl.mem t.inflight key) then Hashtbl.add t.inflight key fut);
    (fut, true)

let unschedule t ~use_cache cell fut =
  let key = cell_key ~use_cache cell in
  Mutex.protect t.inflight_mu (fun () ->
      match Hashtbl.find_opt t.inflight key with
      | Some f when f == fut -> Hashtbl.remove t.inflight key
      | _ -> ())

(* Queue-wait and execution time of [fut], clamped to the window that
   opens at this submission's schedule instant [t_sched]: a merged cell
   rides a future another submission created — possibly long before we
   arrived — and the access-log invariant queue + exec <= total must
   hold per request, not per future. *)
let cell_times fut ~t_sched =
  match Parallel.times fut with
  | None -> (0., 0.)
  | Some tm ->
    let base = Float.max tm.Parallel.submitted_s t_sched in
    let queue_s = Float.max 0. (tm.Parallel.started_s -. base) in
    let exec_s =
      Float.max 0.
        (tm.Parallel.finished_s -. Float.max tm.Parallel.started_s base)
    in
    (queue_s, exec_s)

let handle_submit t oc ~id ~cache ~trace cells =
  let n = List.length cells in
  Protocol.(write_frame oc (response_to_json (Ack { id; cells = n })));
  let trace = match trace with Some tr -> tr | None -> Span.mint_trace () in
  let req_span =
    Option.map
      (fun spans ->
        let sp = Span.start spans ~trace "submit" in
        Span.add_attr sp "request" id;
        Span.add_attr sp "cells" (string_of_int n);
        sp)
      t.opts.spans
  in
  let req_parent = match req_span with Some sp -> Span.id sp | None -> -1 in
  let t0 = Unix.gettimeofday () in
  (* Enqueue everything up front (a bounded queue blocks right here —
     that is the backpressure), then stream results in submission order
     as they complete.  Validation is per cell: an invalid cell becomes
     its own [error] result and the rest of the batch proceeds. *)
  let scheduled =
    List.map
      (fun cell ->
        match Engine.validate_cell cell with
        | Error msg ->
          let msg =
            Printf.sprintf "%s/%s: %s" cell.Protocol.workload
              cell.Protocol.policy msg
          in
          (cell, `Invalid (msg, Unix.gettimeofday ()))
        | Ok () ->
          let cspan =
            Option.map
              (fun spans ->
                let sp = Span.start spans ~trace ~parent:req_parent "cell" in
                Span.add_attr sp "workload" cell.Protocol.workload;
                Span.add_attr sp "policy" cell.Protocol.policy;
                sp)
              t.opts.spans
          in
          let scope =
            Option.map
              (fun spans ->
                {
                  Engine.spans;
                  trace;
                  parent =
                    (match cspan with Some sp -> Span.id sp | None -> -1);
                })
              t.opts.spans
          in
          let t_sched = Unix.gettimeofday () in
          let fut, fresh = schedule t ~use_cache:cache ?scope cell in
          if fresh then
            Option.iter (fun m -> Monitor.inc_total m 1) t.opts.monitor;
          publish_gauges t;
          (cell, `Scheduled (fut, fresh, t_sched, cspan)))
      cells
  in
  let simulated = ref 0 and cached = ref 0 and failed = ref 0 in
  (* The single exit point per cell: stream the result frame, close the
     cell span, feed the latency windows and append the access record —
     so every accounting surface agrees on what was served. *)
  let emit ~index ~cell ~t_sched ~cspan ~source ~wall_s ~summary ~error
      ~queue_s ~exec_s ~engine_stages ~merged =
    let t_ser = Unix.gettimeofday () in
    Protocol.(
      write_frame oc
        (response_to_json (Result { id; index; source; wall_s; summary; error })));
    let t_done = Unix.gettimeofday () in
    let serialize_s = t_done -. t_ser in
    let total_s = Float.max 0. (t_done -. t_sched) in
    (match t.opts.spans with
    | Some spans ->
      Option.iter
        (fun sp ->
          Span.finish spans
            ~attrs:
              ([ ("index", string_of_int index); ("source", source) ]
              @ (if merged then [ ("merged", "true") ] else [])
              @ (match error with Some e -> [ ("error", e) ] | None -> []))
            sp)
        cspan
    | None -> ());
    if error = None then begin
      observe_stage t "queue" queue_s;
      observe_stage t "exec" exec_s;
      observe_stage t "serialize" serialize_s;
      observe_stage t "total" total_s
    end;
    if t.opts.access_log <> None || t.history <> None then begin
      (* one record, two consumers: the JSONL access log and the flight
         recorder's bounded ring.  All timestamps above were already
         taken, so feeding the ring costs no extra clock reads. *)
      let record =
        Span.access_record ~ts:t_done ~trace ~request:id ~index
          ~workload:cell.Protocol.workload ~policy:cell.Protocol.policy
          ~source ?error
          ~stages:
            ([ ("queue", queue_s); ("exec", exec_s) ]
            @ engine_stages
            @ [ ("serialize", serialize_s) ])
          ~total_s ()
      in
      (match t.opts.access_log with
      | None -> ()
      | Some log_oc ->
        Mutex.protect t.access_mu (fun () ->
            output_string log_oc (Json.to_string ~minify:true record);
            output_char log_oc '\n';
            flush log_oc));
      match t.history with
      | Some h -> Flight.add_record h.flight record
      | None -> ()
    end
  in
  (* Whatever interrupts the stream — a Failed future re-raised by
     await, a write to a vanished client — every fresh cell of the
     batch must leave the memo, or its key is poisoned for the daemon's
     lifetime (later identical submissions would merge onto the dead
     future instead of re-simulating).  [unschedule] is idempotent, so
     the eager per-cell removal below and this sweep can overlap. *)
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (cell, disp) ->
          match disp with
          | `Scheduled (fut, true, _, _) ->
            unschedule t ~use_cache:cache cell fut
          | _ -> ())
        scheduled;
      (match (req_span, t.opts.spans) with
      | Some sp, Some spans ->
        Span.finish spans ~attrs:[ ("failed", string_of_int !failed) ] sp
      | _ -> ());
      publish_gauges t)
    (fun () ->
      List.iteri
        (fun index (cell, disp) ->
          match disp with
          | `Invalid (msg, t_sched) ->
            incr failed;
            Atomic.incr t.errors;
            emit ~index ~cell ~t_sched ~cspan:None ~source:"error" ~wall_s:0.
              ~summary:Json.Null ~error:(Some msg) ~queue_s:0. ~exec_s:0.
              ~engine_stages:[] ~merged:false
          | `Scheduled (fut, fresh, t_sched, cspan) -> (
            match Parallel.await fut with
            | o ->
              if fresh then unschedule t ~use_cache:cache cell fut;
              (match o.Engine.source with
              | "cache" -> incr cached
              | _ -> incr simulated);
              publish_gauges t;
              let queue_s, exec_s = cell_times fut ~t_sched in
              emit ~index ~cell ~t_sched ~cspan ~source:o.Engine.source
                ~wall_s:o.Engine.wall_s ~summary:o.Engine.summary ~error:None
                ~queue_s ~exec_s ~engine_stages:o.Engine.stages
                ~merged:(not fresh)
            | exception e ->
              (* a raising cell is that cell's failure, not the
                 batch's: drop its memo entry so later submissions
                 re-simulate, report it, and keep streaming *)
              if fresh then unschedule t ~use_cache:cache cell fut;
              incr failed;
              Atomic.incr t.errors;
              (* a deadlocked simulation is exactly the moment the
                 flight recorder exists for: dump the recent rings
                 before the diagnostic is reduced to one error string *)
              (match e with
              | Pipeline.Deadlock _ ->
                postmortem t
                  ~reason:
                    (Printf.sprintf "deadlock: %s/%s" cell.Protocol.workload
                       cell.Protocol.policy)
              | _ -> ());
              let queue_s, exec_s = cell_times fut ~t_sched in
              emit ~index ~cell ~t_sched ~cspan ~source:"error" ~wall_s:0.
                ~summary:Json.Null ~error:(Some (Printexc.to_string e))
                ~queue_s ~exec_s ~engine_stages:[] ~merged:(not fresh)))
        scheduled;
      Protocol.(
        write_frame oc
          (response_to_json
             (Done
                {
                  id;
                  stats =
                    {
                      simulated = !simulated;
                      cached = !cached;
                      failed = !failed;
                      wall_s = Unix.gettimeofday () -. t0;
                    };
                }))))

let stop_accepting t =
  if Atomic.compare_and_set t.running true false then begin
    (* wake the accept loop: shutdown works on Linux listening sockets,
       and the self-connect covers platforms where it does not *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect probe (Unix.ADDR_UNIX t.opts.socket_path)
     with Unix.Unix_error _ -> ());
    try Unix.close probe with Unix.Unix_error _ -> ()
  end

let handle_request t oc req =
  Atomic.incr t.requests;
  match (req : Protocol.request) with
  | Protocol.List ->
    Protocol.(
      write_frame oc
        (response_to_json
           (Listing
              { workloads = Catalog.listing (); policies = Catalog.policies () })))
  | Protocol.Ping -> Protocol.(write_frame oc (response_to_json Pong))
  | Protocol.Stats ->
    Protocol.(
      write_frame oc (response_to_json (Stats_snapshot (stats_snapshot t))))
  | Protocol.Prune days ->
    let removed =
      match t.opts.cache with
      | Some cache -> Run_cache.prune cache ~max_age_days:days
      | None -> 0
    in
    log t (Printf.sprintf "prune: removed %d entries" removed);
    Protocol.(write_frame oc (response_to_json (Pruned removed)))
  | Protocol.Shutdown ->
    log t "shutdown requested";
    Protocol.(write_frame oc (response_to_json Bye));
    stop_accepting t
  | Protocol.Submit { id; cache; trace; cells } ->
    handle_submit t oc ~id ~cache ~trace cells
  | Protocol.History { since; until; last } -> (
    match t.history with
    | None ->
      Protocol.(
        write_frame oc
          (response_to_json
             (Error "daemon is running without --history-out")))
    | Some h -> (
      match Tsdb.read_dir ?since ?until h.h_dir with
      | Error e ->
        Atomic.incr t.errors;
        Protocol.(write_frame oc (response_to_json (Error e)))
      | Ok records ->
        let records =
          if last > 0 then
            let n = List.length records in
            List.filteri (fun i _ -> i >= n - last) records
          else records
        in
        Protocol.(
          write_frame oc
            (response_to_json (History_data (Protocol.history_doc records))))))

let handle_client t conn fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let finally () =
    Mutex.protect t.clients_mu (fun () ->
        t.clients := List.filter (fun (_, f) -> f <> fd) !(t.clients));
    publish_gauges t;
    (try flush oc with Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      Protocol.(
        write_frame oc
          (response_to_json
             (Hello
                {
                  proto = Protocol.version;
                  pool = Parallel.size t.pool;
                  cache = t.opts.cache <> None;
                })));
      let rec loop () =
        match Protocol.read_frame ic with
        | Ok None -> log t (Printf.sprintf "client %d: disconnected" conn)
        | Error msg ->
          log t (Printf.sprintf "client %d: %s" conn msg);
          Atomic.incr t.errors;
          Protocol.(write_frame oc (response_to_json (Error msg)))
        | Ok (Some j) ->
          (match Protocol.request_of_json j with
          | Error msg ->
            Atomic.incr t.errors;
            Protocol.(write_frame oc (response_to_json (Error msg)))
          | Ok req -> (
            match handle_request t oc req with
            | () -> ()
            | exception e ->
              (* a failing request must not kill the connection: report
                 and keep serving (Invalid_argument from a stopped pool,
                 Sys_error from a vanished cache directory, ...) *)
              Atomic.incr t.errors;
              (* dump the flight recorder for genuine daemon faults; a
                 client that vanished mid-write (EPIPE & friends) is
                 the client's problem, not a post-mortem *)
              (match e with
              | Sys_error _ | End_of_file | Unix.Unix_error _ -> ()
              | _ ->
                postmortem t
                  ~reason:("server-error: " ^ Printexc.to_string e));
              Protocol.(
                write_frame oc
                  (response_to_json (Error (Printexc.to_string e))))));
          if Atomic.get t.running then loop ()
      in
      try loop ()
      with Sys_error _ | End_of_file ->
        (* client went away mid-frame; nothing to answer *)
        ())

let bind_listener socket_path =
  if Sys.file_exists socket_path then begin
    (* refuse to clobber a live daemon; clean up a dead one's socket *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX socket_path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "levioso_serve: %s is already served by a live daemon"
           socket_path);
    Sys.remove socket_path
  end;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  listener

let run ?(on_ready = fun () -> ()) opts =
  (* A client that disconnects mid-stream must surface as a Sys_error
     (EPIPE) on the write — which handle_client absorbs — not as a
     SIGPIPE whose default action kills the daemon for everyone. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listener = bind_listener opts.socket_path in
  let pool =
    Parallel.create ~size:(max 1 opts.pool_size) ?max_pending:opts.queue_max ()
  in
  let history =
    Option.map
      (fun ho ->
        {
          h_dir = ho.history_dir;
          h_interval_s = Float.max 0.01 ho.history_interval_s;
          tsdb = Tsdb.create ~dir:ho.history_dir ();
          halerts = Alerts.create ho.alert_rules;
          flight = Flight.create ();
          dump_req = Atomic.make None;
          h_stop = Atomic.make false;
          h_prev = None;
        })
      opts.history
  in
  let t =
    {
      opts;
      listener;
      pool;
      running = Atomic.make true;
      started = Unix.gettimeofday ();
      inflight = Hashtbl.create 64;
      inflight_mu = Mutex.create ();
      clients = ref [];
      clients_mu = Mutex.create ();
      next_conn = Atomic.make 0;
      simulated = Atomic.make 0;
      cached = Atomic.make 0;
      merged = Atomic.make 0;
      requests = Atomic.make 0;
      errors = Atomic.make 0;
      lat =
        List.map (fun s -> (s, Span.Window.create window_capacity)) lat_stages;
      lat_hist = List.map (fun s -> (s, Span.Hist.create ())) lat_stages;
      access_mu = Mutex.create ();
      history;
    }
  in
  let sampler =
    Option.map
      (fun h ->
        (* SIGUSR1 = operator-requested post-mortem.  The handler only
           flips an atomic flag; the sampler thread does the dump. *)
        (try
           Sys.set_signal Sys.sigusr1
             (Sys.Signal_handle
                (fun _ -> Atomic.set h.dump_req (Some "sigusr1")))
         with Invalid_argument _ | Sys_error _ -> ());
        log t
          (Printf.sprintf "history -> %s (every %gs%s)" h.h_dir h.h_interval_s
             (match List.length (Alerts.rules h.halerts) with
             | 0 -> ""
             | n -> Printf.sprintf ", %d alert rules" n));
        Thread.create (fun () -> sampler_loop t h) ())
      history
  in
  log t
    (Printf.sprintf "listening on %s (pool %d%s, cache %s)" opts.socket_path
       (Parallel.size pool)
       (match opts.queue_max with
       | Some n -> Printf.sprintf ", queue <= %d" n
       | None -> "")
       (if opts.cache <> None then "on" else "off"));
  publish_gauges t;
  on_ready ();
  let rec accept_loop () =
    match Unix.accept t.listener with
    | exception Unix.Unix_error _ -> if Atomic.get t.running then accept_loop ()
    | fd, _ ->
      if not (Atomic.get t.running) then (
        try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        let conn = Atomic.fetch_and_add t.next_conn 1 in
        log t (Printf.sprintf "client %d: connected" conn);
        let th = Thread.create (fun () -> handle_client t conn fd) () in
        Mutex.protect t.clients_mu (fun () ->
            t.clients := (th, fd) :: !(t.clients));
        publish_gauges t;
        accept_loop ()
      end
  in
  accept_loop ();
  (* drain: outstanding submissions finish against the still-live pool,
     then lingering idle connections are nudged with an EOF *)
  Parallel.shutdown pool;
  let remaining = Mutex.protect t.clients_mu (fun () -> !(t.clients)) in
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    remaining;
  List.iter (fun (th, _) -> Thread.join th) remaining;
  (* stop the sampler after the drain so the shutdown burst is still
     recorded; it takes one final sample on its way out *)
  (match (history, sampler) with
  | Some h, Some th ->
    Atomic.set h.h_stop true;
    Thread.join th;
    Tsdb.close h.tsdb
  | _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (try Sys.remove opts.socket_path with Sys_error _ -> ());
  (match opts.monitor with Some m -> Monitor.close m | None -> ());
  log t "stopped"
