lib/ir/ir.ml: Array Buffer Printf
