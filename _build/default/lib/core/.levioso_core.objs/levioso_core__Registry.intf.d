lib/core/registry.mli: Levioso_uarch
