module Ir = Levioso_ir.Ir
module Pipeline = Levioso_uarch.Pipeline
module Cache = Levioso_uarch.Cache

let maker _config _program pipe =
  let speculative seq = Pipeline.exists_older_unresolved_branch pipe ~seq in
  let l1 () = Cache.Hierarchy.l1 (Pipeline.hierarchy pipe) in
  let hits_l1 seq =
    match Pipeline.load_address_if_ready pipe seq with
    | Some addr -> Cache.probe (l1 ()) addr
    | None -> false
  in
  let may_execute ~seq =
    match Pipeline.instr_of pipe seq with
    | Ir.Load _ -> (not (speculative seq)) || hits_l1 seq
    | Ir.Flush _ -> not (speculative seq)
    | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Rdcycle _ | Ir.Halt ->
      true
  in
  (* Speculative hits are served without touching cache state, so a squash
     erases every trace of them; once bound, accesses behave normally. *)
  let load_visibility ~seq =
    if speculative seq then Pipeline.Invisible else Pipeline.Normal
  in
  (* A refused access is a speculative L1 miss; the speculation it hides
     behind is the set of older unresolved branches. *)
  let explain ~seq =
    Levioso_telemetry.Audit.Branch_dep
      (List.map
         (fun s -> (s, Pipeline.pc_of pipe s))
         (Pipeline.older_unresolved_branches pipe ~seq))
  in
  {
    Pipeline.always_execute_policy with
    policy_name = "dom";
    may_execute;
    load_visibility;
    explain;
  }
