(** A TAGE-style branch predictor (Seznec & Michaud): a bimodal base table
    plus several partially-tagged tables indexed by geometrically longer
    global-history folds.  The longest-history matching table provides the
    prediction; usefulness counters arbitrate against the alternate
    prediction; new entries are allocated on mispredictions.

    This is the "lite" variant used for the predictor-sensitivity figure:
    four tagged tables with history lengths 5/11/21/42, 8-bit tags, 3-bit
    counters, 2-bit usefulness, and a simple first-free / weakest-u
    allocation policy.  Speculative state is only the global history
    register; table updates happen at commit with the history captured at
    prediction time, mirroring {!Predictor}'s discipline. *)

type t

val create : table_bits:int -> t
(** [table_bits] is log2 of each tagged table's size (the base table gets
    [table_bits + 1]). *)

val predict : t -> pc:int -> history:int -> bool
(** Pure: does not touch the history (the caller owns it). *)

val update : t -> pc:int -> history:int -> taken:bool -> unit
(** Commit-time training with the history captured at prediction time. *)

type state
(** Deep copy of everything the predictor learned (base + tagged tables,
    allocation confidence, aging tick) — the checkpointable form. *)

val save : t -> state

val restore : t -> state -> unit
(** @raise Invalid_argument when the state came from a differently-sized
    predictor. *)

val num_tables : int
(** Tagged tables (4). *)

val history_lengths : int array
(** Geometric history lengths per tagged table. *)
