(** Execution of one wire-protocol cell, shared by the daemon and the
    in-process tests.

    The simulation path makes {e exactly} the calls a local serial bench
    cell makes ([Pipeline.create] → [Pipeline.run] →
    [Summary.of_pipeline], or the [Sampler] pair for sampled cells, with
    no host section), so a remote summary is bit-identical to an
    in-process run of the same cell. *)

type outcome = {
  summary : Levioso_telemetry.Json.t;
  source : string;  (** ["sim"] or ["cache"] *)
  wall_s : float;
}

val validate_cell : Protocol.cell -> (unit, string) result
(** Config sanity, workload/policy existence, audit×sample conflict —
    checked before acking a submission so a bad batch fails atomically
    instead of mid-stream. *)

val cacheable : Protocol.cell -> bool
(** Plain cells only: audited and sampled summaries never enter (or
    replay from) the shared store. *)

val run_cell : ?cache:Levioso_uarch.Run_cache.t -> Protocol.cell -> outcome
(** Replay from the shard store when possible (schema-checked, stats
    block must parse — the same strictness as bench's local replay),
    otherwise simulate and store.

    @raise Invalid_argument on unknown workload/policy names; call
    {!validate_cell} first. *)
