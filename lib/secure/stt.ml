module Ir = Levioso_ir.Ir
module Pipeline = Levioso_uarch.Pipeline
module Config = Levioso_uarch.Config

(* Taint of a value: the set of root load sequence numbers it (transitively)
   derives from, or [Conservative] when the hardware tracking budget
   overflowed.  Roots whose loads are already bound (no older unresolved
   branch) are pruned on propagation — the hardware untaint broadcast —
   which keeps loop-carried chains from saturating the budget. *)
type taint =
  | Roots of int list
  | Conservative

let maker (config : Config.t) _program pipe =
  let budget = config.Config.depset_budget in
  let taints : (int, taint) Hashtbl.t = Hashtbl.create 256 in
  let root_bound root_seq =
    (* A committed load is trivially bound; an in-flight one is bound when
       no older branch is still unresolved (its visibility point passed). *)
    root_seq < Pipeline.oldest_seq pipe
    || not (Pipeline.exists_older_unresolved_branch pipe ~seq:root_seq)
  in
  let union a b =
    match (a, b) with
    | Conservative, _ | _, Conservative -> Conservative
    | Roots xs, Roots ys ->
      let merged =
        List.sort_uniq compare
          (List.filter
             (fun root -> not (root_bound root))
             (List.rev_append xs ys))
      in
      if List.length merged > budget then Conservative else Roots merged
  in
  let taint_of seq =
    Option.value ~default:(Roots []) (Hashtbl.find_opt taints seq)
  in
  (* Taint feeding an instruction's operands (excluding its own root). *)
  let operand_taint seq =
    List.fold_left
      (fun acc p -> union acc (taint_of p))
      (Roots [])
      (Pipeline.producers_of pipe seq)
  in
  let on_decode ~seq =
    let base = operand_taint seq in
    let full =
      match Pipeline.instr_of pipe seq with
      | Ir.Load _ -> union base (Roots [ seq ])
      | Ir.Alu _ | Ir.Store _ | Ir.Branch _ | Ir.Jump _ | Ir.Flush _
      | Ir.Rdcycle _ | Ir.Halt ->
        base
    in
    Hashtbl.replace taints seq full
  in
  (* STT gates two kinds of instructions on tainted operands: explicit
     transmitters (loads/flushes — the cache channel) and branches (the
     implicit channel: resolving a branch on speculative data changes the
     squash pattern, which is observable).  Everything else propagates
     taint freely. *)
  let gated instr =
    Pipeline.is_transmitter instr
    ||
    match instr with
    | Ir.Branch _ -> true
    | Ir.Alu _ | Ir.Load _ | Ir.Store _ | Ir.Jump _ | Ir.Flush _
    | Ir.Rdcycle _ | Ir.Halt ->
      false
  in
  let may_execute ~seq =
    if not (gated (Pipeline.instr_of pipe seq)) then true
    else
      match operand_taint seq with
      | Roots roots -> List.for_all root_bound roots
      | Conservative -> not (Pipeline.exists_older_unresolved_branch pipe ~seq)
  in
  let on_squash ~boundary =
    Hashtbl.filter_map_inplace
      (fun seq t -> if seq > boundary then None else Some t)
      taints
  in
  let on_commit ~seq = Hashtbl.remove taints seq in
  let explain ~seq =
    match operand_taint seq with
    | Conservative -> Levioso_telemetry.Audit.Overflow
    | Roots roots ->
      Levioso_telemetry.Audit.Taint
        (List.filter_map
           (fun root ->
             if root_bound root then None
             else if Pipeline.in_flight pipe root then
               Some (root, Pipeline.pc_of pipe root)
             else Some (root, -1))
           roots)
  in
  {
    Pipeline.policy_name = "stt";
    on_decode;
    on_resolve = (fun ~seq:_ -> ());
    on_squash;
    on_commit;
    may_execute;
    load_visibility = (fun ~seq:_ -> Pipeline.Normal);
    explain;
  }
