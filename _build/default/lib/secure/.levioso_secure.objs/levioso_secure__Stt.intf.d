lib/secure/stt.mli: Levioso_uarch
