module Counter = struct
  type c = { c_name : string; mutable value : int }

  let incr c = c.value <- c.value + 1
  let add c n = c.value <- c.value + n
  let value c = c.value
  let name c = c.c_name
end

module Histogram = struct
  (* Observations are kept verbatim in a growable buffer while they fit;
     a histogram created with a [bound] switches to uniform reservoir
     sampling (Vitter's Algorithm R) once the bound is reached, so
     memory stays O(bound) under millions of observations.  Count, sum,
     mean and max stay exact; percentiles come from the reservoir.  The
     replacement stream is SplitMix64 seeded from the instrument name,
     so sampled percentiles are deterministic run-to-run and across
     domains. *)
  type h = {
    h_name : string;
    mutable data : int array;
    mutable len : int;  (* stored samples *)
    mutable seen : int;  (* total observations *)
    mutable max_v : int;
    mutable sum : int;
    bound : int;  (* 0 = unbounded (exact) *)
    mutable rng : int64;
  }

  let seed_of name = Int64.of_int (Hashtbl.hash name + 1)

  (* SplitMix64 step, inlined (this library has no dependencies). *)
  let next_rng h =
    let open Int64 in
    let z = add h.rng 0x9E3779B97F4A7C15L in
    h.rng <- z;
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* uniform in [0, bound) — bound is at most a few million, so a simple
     modulo over 62 random bits has negligible bias *)
  let rand_below h bound =
    Int64.to_int (Int64.logand (next_rng h) 0x3FFFFFFFFFFFFFFFL) mod bound

  let observe h v =
    h.seen <- h.seen + 1;
    h.sum <- h.sum + v;
    if v > h.max_v then h.max_v <- v;
    if h.bound > 0 && h.len >= h.bound then begin
      (* Algorithm R: the i-th observation replaces a random reservoir
         slot with probability bound/i, keeping the sample uniform. *)
      let j = rand_below h h.seen in
      if j < h.bound then h.data.(j) <- v
    end
    else begin
      if h.len = Array.length h.data then begin
        let bigger = Array.make (max 16 (2 * h.len)) 0 in
        Array.blit h.data 0 bigger 0 h.len;
        h.data <- bigger
      end;
      h.data.(h.len) <- v;
      h.len <- h.len + 1
    end

  let count h = h.seen

  let stored h = h.len

  let mean h =
    if h.seen = 0 then 0.0 else float_of_int h.sum /. float_of_int h.seen

  let percentile h p =
    if h.len = 0 then invalid_arg "Histogram.percentile: empty histogram";
    let sorted = Array.sub h.data 0 h.len in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.len)) in
    sorted.(max 0 (min (h.len - 1) (rank - 1)))

  let max_value h = h.max_v
  let name h = h.h_name

  let reset h =
    h.len <- 0;
    h.seen <- 0;
    h.max_v <- 0;
    h.sum <- 0;
    h.rng <- seed_of h.h_name
end

type instrument =
  | I_counter of Counter.c
  | I_histogram of Histogram.h

type t = { prefix : string; table : (string, instrument) Hashtbl.t }

let create () = { prefix = ""; table = Hashtbl.create 32 }

let scope t sub = { t with prefix = t.prefix ^ sub ^ "/" }

let counter t name =
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.table full with
  | Some (I_counter c) -> c
  | Some (I_histogram _) ->
    invalid_arg ("Registry.counter: " ^ full ^ " exists as a histogram")
  | None ->
    let c = { Counter.c_name = full; value = 0 } in
    Hashtbl.add t.table full (I_counter c);
    c

let histogram ?(bound = 0) t name =
  if bound < 0 then invalid_arg "Registry.histogram: negative bound";
  let full = t.prefix ^ name in
  match Hashtbl.find_opt t.table full with
  | Some (I_histogram h) -> h
  | Some (I_counter _) ->
    invalid_arg ("Registry.histogram: " ^ full ^ " exists as a counter")
  | None ->
    let h =
      {
        Histogram.h_name = full;
        data = [||];
        len = 0;
        seen = 0;
        max_v = 0;
        sum = 0;
        bound;
        rng = Histogram.seed_of full;
      }
    in
    Hashtbl.add t.table full (I_histogram h);
    h

let counter_value t name =
  match Hashtbl.find_opt t.table (t.prefix ^ name) with
  | Some (I_counter c) -> Some (Counter.value c)
  | Some (I_histogram _) | None -> None

let in_scope t full =
  String.length full >= String.length t.prefix
  && String.sub full 0 (String.length t.prefix) = t.prefix

let strip t full =
  String.sub full (String.length t.prefix)
    (String.length full - String.length t.prefix)

let instruments t =
  Hashtbl.fold
    (fun full i acc -> if in_scope t full then (strip t full, i) :: acc else acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names t = List.map fst (instruments t)

let to_rows t =
  List.map
    (fun (name, i) ->
      match i with
      | I_counter c -> (name, string_of_int (Counter.value c))
      | I_histogram h ->
        let render =
          if Histogram.count h = 0 then "n=0"
          else
            Printf.sprintf "n=%d mean=%.1f p50=%d p95=%d max=%d"
              (Histogram.count h) (Histogram.mean h)
              (Histogram.percentile h 50.0)
              (Histogram.percentile h 95.0)
              (Histogram.max_value h)
        in
        (name, render))
    (instruments t)

let to_json t =
  Json.Obj
    (List.map
       (fun (name, i) ->
         match i with
         | I_counter c -> (name, Json.Int (Counter.value c))
         | I_histogram h ->
           let n = Histogram.count h in
           ( name,
             Json.Obj
               [
                 ("count", Json.Int n);
                 ("mean", Json.Float (Histogram.mean h));
                 ("p50", if n = 0 then Json.Null else Json.Int (Histogram.percentile h 50.0));
                 ("p95", if n = 0 then Json.Null else Json.Int (Histogram.percentile h 95.0));
                 ("max", Json.Int (Histogram.max_value h));
               ] ))
       (instruments t))

let reset t =
  Hashtbl.iter
    (fun full i ->
      if in_scope t full then
        match i with
        | I_counter c -> c.Counter.value <- 0
        | I_histogram h -> Histogram.reset h)
    t.table
