(* Continuous-telemetry building blocks, each driven by explicit fake
   clocks so time never leaks into the assertions: the on-disk tsdb
   (round-trips, byte-determinism, clock-read economy, rotation,
   retention, time-range reads), the alert-rule engine (grammar,
   sustained-duration fire/resolve, _ms fallback, absent-metric
   resolution), the flight recorder (bounded rings, schema-tagged
   post-mortem) and the HTML dashboard (deterministic rendering). *)

module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Tsdb = Levioso_telemetry.Tsdb
module Alerts = Levioso_telemetry.Alerts
module Flight = Levioso_telemetry.Flight
module Dashboard = Levioso_uarch.Dashboard

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

(* A clock that returns 100, 101, 102, ... and counts its reads. *)
let ticking ?(start = 100.) () =
  let reads = ref 0 in
  let clock () =
    let v = start +. float_of_int !reads in
    incr reads;
    v
  in
  (clock, reads)

let fail_fmt fmt = Printf.ksprintf (fun msg -> Alcotest.fail msg) fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_all dir =
  match Tsdb.read_dir dir with
  | Ok records -> records
  | Error msg -> Alcotest.fail msg

(* ---------- tsdb ---------- *)

let test_tsdb_round_trip () =
  let dir = temp_dir "tsdb-rt" in
  let clock, _ = ticking () in
  let t = Tsdb.create ~clock ~dir () in
  let s1 = Tsdb.append t [ ("queue_depth", 3.); ("requests", 10.) ] in
  Tsdb.append_alert t ~ts:s1.Tsdb.ts ~rule:"requests > 0" ~firing:true;
  let s2 = Tsdb.append t [ ("queue_depth", 0.); ("requests", 12.) ] in
  Tsdb.append_alert t ~ts:s2.Tsdb.ts ~rule:"requests > 0" ~firing:false;
  Tsdb.close t;
  match read_all dir with
  | [ Tsdb.Sample a; Tsdb.Alert f; Tsdb.Sample b; Tsdb.Alert r ] ->
    Alcotest.(check bool) "first sample round-trips" true (a = s1);
    Alcotest.(check bool) "second sample round-trips" true (b = s2);
    Alcotest.(check bool) "alert fired at the first sample" true
      (f.Tsdb.firing && f.Tsdb.a_ts = s1.Tsdb.ts
     && f.Tsdb.rule = "requests > 0");
    Alcotest.(check bool) "alert resolved at the second sample" true
      ((not r.Tsdb.firing) && r.Tsdb.a_ts = s2.Tsdb.ts)
  | records -> fail_fmt "expected 4 records, got %d" (List.length records)

let test_tsdb_byte_deterministic () =
  let contents dir =
    List.map
      (fun path ->
        let ic = open_in_bin path in
        let body = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (Filename.basename path, body))
      (Tsdb.segment_files dir)
  in
  let write dir =
    let clock, _ = ticking () in
    let t = Tsdb.create ~clock ~dir () in
    for i = 1 to 20 do
      ignore
        (Tsdb.append t
           [ ("queue_depth", float_of_int (i mod 5)); ("nan", Float.nan) ])
    done;
    Tsdb.close t
  in
  let d1 = temp_dir "tsdb-da" and d2 = temp_dir "tsdb-db" in
  write d1;
  write d2;
  Alcotest.(check bool) "segments exist" true (contents d1 <> []);
  Alcotest.(check bool) "same clock, byte-identical segments" true
    (contents d1 = contents d2);
  (* the non-finite field was dropped at append time, not nulled *)
  List.iter
    (function
      | Tsdb.Sample s ->
        Alcotest.(check bool) "nan field dropped" false
          (List.mem_assoc "nan" s.Tsdb.fields)
      | Tsdb.Alert _ -> ())
    (read_all d1)

let test_tsdb_clock_economy () =
  let dir = temp_dir "tsdb-clock" in
  let clock, reads = ticking () in
  let t = Tsdb.create ~clock ~dir () in
  Alcotest.(check int) "create reads no clock" 0 !reads;
  ignore (Tsdb.append t [ ("a", 1.) ]);
  Alcotest.(check int) "append without ~ts reads once" 1 !reads;
  let ts = Tsdb.now t in
  Alcotest.(check int) "now reads once" 2 !reads;
  ignore (Tsdb.append ~ts t [ ("a", 2.) ]);
  Tsdb.append_alert t ~ts ~rule:"a > 0" ~firing:true;
  Alcotest.(check int) "explicit ~ts appends read nothing" 2 !reads;
  Tsdb.close t;
  Alcotest.(check int) "close reads nothing" 2 !reads

let test_tsdb_rotation_and_resume () =
  let dir = temp_dir "tsdb-rot" in
  let clock, _ = ticking () in
  let t = Tsdb.create ~clock ~max_segment_bytes:200 ~dir () in
  for i = 1 to 10 do
    ignore (Tsdb.append t [ ("v", float_of_int i) ])
  done;
  Tsdb.close t;
  let segs = Tsdb.segment_files dir in
  Alcotest.(check bool) "small segment cap forces rotation" true
    (List.length segs > 1);
  Alcotest.(check int) "no records lost across rotation" 10
    (List.length (Tsdb.samples (read_all dir)));
  (* a second writer resumes after the existing segments *)
  let clock2, _ = ticking ~start:200. () in
  let t2 = Tsdb.create ~clock:clock2 ~max_segment_bytes:200 ~dir () in
  ignore (Tsdb.append t2 [ ("v", 11.) ]);
  Tsdb.close t2;
  Alcotest.(check int) "restart extends instead of clobbering" 11
    (List.length (Tsdb.samples (read_all dir)))

let test_tsdb_retention () =
  let dir = temp_dir "tsdb-ret" in
  let clock, _ = ticking () in
  let t =
    Tsdb.create ~clock ~max_segment_bytes:200 ~max_total_bytes:600 ~dir ()
  in
  for i = 1 to 50 do
    ignore (Tsdb.append t [ ("v", float_of_int i) ])
  done;
  Tsdb.close t;
  let total =
    List.fold_left
      (fun acc p -> acc + (Unix.stat p).Unix.st_size)
      0 (Tsdb.segment_files dir)
  in
  (* the active segment may carry the store past the cap by at most one
     segment's worth; rotated history stays under budget *)
  Alcotest.(check bool) "retention bounds the store" true (total <= 900);
  match Tsdb.samples (read_all dir) with
  | [] -> Alcotest.fail "retention deleted everything"
  | samples ->
    let last = List.nth samples (List.length samples - 1) in
    Alcotest.(check (float 0.0)) "newest sample survives" 50.
      (List.assoc "v" last.Tsdb.fields)

let test_tsdb_time_range () =
  let dir = temp_dir "tsdb-range" in
  let clock, _ = ticking () in
  (* ts 100..109 *)
  let t = Tsdb.create ~clock ~dir () in
  for i = 1 to 10 do
    ignore (Tsdb.append t [ ("v", float_of_int i) ])
  done;
  Tsdb.close t;
  let count ?since ?until () =
    match Tsdb.read_dir ?since ?until dir with
    | Ok records -> List.length (Tsdb.samples records)
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "no bounds" 10 (count ());
  Alcotest.(check int) "since is inclusive" 5 (count ~since:105. ());
  Alcotest.(check int) "until is inclusive" 3 (count ~until:102. ());
  Alcotest.(check int) "both bounds" 2 (count ~since:104. ~until:105. ())

let test_tsdb_rejects_garbage () =
  let dir = temp_dir "tsdb-bad" in
  let clock, _ = ticking () in
  let t = Tsdb.create ~clock ~dir () in
  ignore (Tsdb.append t [ ("v", 1.) ]);
  Tsdb.close t;
  let seg = List.hd (Tsdb.segment_files dir) in
  let oc = open_out_gen [ Open_append ] 0o644 seg in
  output_string oc "{\"kind\":\"levioso-tsdb-sample\"}\n";
  close_out oc;
  match Tsdb.read_dir dir with
  | Ok _ -> Alcotest.fail "untagged line should fail the read"
  | Error msg ->
    Alcotest.(check bool) "error names the segment" true
      (contains msg (Filename.basename seg))

(* ---------- alert rules ---------- *)

let test_alert_parse () =
  let rules =
    match
      Alerts.parse
        "# comment\n\nqueue_depth >= 100 for 30s\ntotal_p99_ms > 500\n\
         errors_per_s > 0 for 1.5s\n"
    with
    | Ok rules -> rules
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (list string))
    "canonical names"
    [
      "queue_depth >= 100 for 30s"; "total_p99_ms > 500";
      "errors_per_s > 0 for 1.5s";
    ]
    (List.map (fun (r : Alerts.rule) -> r.Alerts.name) rules);
  (match rules with
  | { Alerts.op = Alerts.Ge; threshold = 100.; for_s = 30.; _ } :: _ -> ()
  | _ -> Alcotest.fail "first rule misparsed");
  List.iter
    (fun bad ->
      match Alerts.parse bad with
      | Ok _ -> fail_fmt "accepted %S" bad
      | Error msg ->
        Alcotest.(check bool)
          (bad ^ " error names line 1") true
          (contains msg "line 1"))
    [
      "queue_depth ~ 3"; "queue_depth > tall"; "queue_depth > 1 for ever";
      "> 5"; "queue_depth >";
    ]

let test_alert_fire_resolve () =
  let rules =
    match Alerts.parse "queue_depth > 10 for 2s" with
    | Ok rules -> rules
    | Error msg -> Alcotest.fail msg
  in
  let t = Alerts.create rules in
  let feed now v =
    Alerts.eval t ~now ~lookup:(fun m ->
        if m = "queue_depth" then v else None)
  in
  Alcotest.(check int) "below threshold: nothing" 0
    (List.length (feed 0. (Some 5.)));
  Alcotest.(check int) "first breach: held 0s, no fire" 0
    (List.length (feed 1. (Some 50.)));
  Alcotest.(check int) "held 1s: still pending" 0
    (List.length (feed 2. (Some 50.)));
  (match feed 3. (Some 50.) with
  | [ { Alerts.firing = true; value = 50.; _ } ] ->
    Alcotest.(check int) "one rule firing" 1 (Alerts.firing t)
  | ts -> fail_fmt "held 2s: expected a fire, got %d transitions"
            (List.length ts));
  Alcotest.(check int) "still true: no repeat transition" 0
    (List.length (feed 4. (Some 50.)));
  (match feed 5. (Some 5.) with
  | [ { Alerts.firing = false; _ } ] ->
    Alcotest.(check int) "resolved" 0 (Alerts.firing t)
  | ts -> fail_fmt "drop below: expected resolve, got %d" (List.length ts));
  (* a dip resets the sustained-duration counter *)
  Alcotest.(check int) "re-breach restarts the hold" 0
    (List.length (feed 6. (Some 50.)));
  Alcotest.(check int) "one second in" 0 (List.length (feed 7. (Some 50.)));
  Alcotest.(check int) "fires again after a full hold" 1
    (List.length (feed 8. (Some 50.)))

let test_alert_ms_fallback_and_absent () =
  let rules =
    match Alerts.parse "total_p99_ms > 500" with
    | Ok rules -> rules
    | Error msg -> Alcotest.fail msg
  in
  let t = Alerts.create rules in
  (* the sampler records seconds; the rule speaks milliseconds *)
  let feed now v =
    Alerts.eval t ~now ~lookup:(fun m ->
        if m = "total_p99_s" then v else None)
  in
  Alcotest.(check int) "0.4s = 400ms: below" 0
    (List.length (feed 0. (Some 0.4)));
  (match feed 1. (Some 0.75) with
  | [ { Alerts.firing = true; value = 750.; _ } ] -> ()
  | _ -> Alcotest.fail "0.75s = 750ms should fire with the scaled value");
  (* metric vanishes (e.g. the window emptied): the rule resolves
     rather than staying stuck firing *)
  match feed 2. None with
  | [ { Alerts.firing = false; _ } ] -> ()
  | ts -> fail_fmt "absent metric: expected resolve, got %d" (List.length ts)

(* ---------- flight recorder ---------- *)

let test_flight_recorder () =
  let fl = Flight.create ~samples:4 ~records:2 () in
  Alcotest.(check int) "empty" 0 (Flight.sample_count fl);
  for i = 1 to 10 do
    Flight.add_sample fl
      { Tsdb.ts = float_of_int i; fields = [ ("v", float_of_int i) ] };
    Flight.add_record fl (Json.Obj [ ("i", Json.Int i) ])
  done;
  Alcotest.(check int) "ring capacity bounds samples" 4
    (Flight.sample_count fl);
  let doc = Flight.dump fl ~reason:"test" ~ts:99. in
  (match Schema.check ~what:"post-mortem" doc with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Json.member "kind" doc with
  | Some (Json.String "levioso-postmortem") -> ()
  | _ -> Alcotest.fail "post-mortem kind");
  (match Json.member "samples" doc with
  | Some (Json.List samples) ->
    (* the last N samples, oldest first *)
    Alcotest.(check (list string))
      "last 4 samples, oldest first"
      (List.map
         (fun i ->
           Json.to_string
             (Tsdb.sample_to_json
                { Tsdb.ts = float_of_int i; fields = [ ("v", float_of_int i) ] }))
         [ 7; 8; 9; 10 ])
      (List.map Json.to_string samples)
  | _ -> Alcotest.fail "post-mortem samples");
  (match Json.member "records" doc with
  | Some (Json.List [ a; b ]) ->
    Alcotest.(check string) "last 2 records survive" "[{\"i\":9},{\"i\":10}]"
      (Json.to_string ~minify:true (Json.List [ a; b ]))
  | _ -> Alcotest.fail "post-mortem records");
  let dir = temp_dir "flight" in
  (match Flight.write fl ~dir ~reason:"test" ~ts:99. with
  | Error msg -> Alcotest.fail msg
  | Ok path ->
    Alcotest.(check string) "first post-mortem name" "postmortem-000.json"
      (Filename.basename path);
    let ic = open_in_bin path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.of_string body with
    | Ok j -> Alcotest.(check bool) "file round-trips" true (j = doc)
    | Error msg -> Alcotest.fail msg));
  (* a second write does not clobber the first *)
  match Flight.write fl ~dir ~reason:"again" ~ts:100. with
  | Error msg -> Alcotest.fail msg
  | Ok path ->
    Alcotest.(check string) "second post-mortem name" "postmortem-001.json"
      (Filename.basename path)

(* ---------- dashboard ---------- *)

let test_dashboard_deterministic () =
  let dir = temp_dir "tsdb-dash" in
  let clock, _ = ticking () in
  let t = Tsdb.create ~clock ~dir () in
  for i = 0 to 9 do
    let s =
      Tsdb.append t
        [
          ("queue_depth", float_of_int (i mod 3));
          ("requests_per_s", 2.5 +. float_of_int i);
          ("errors_per_s", 0.);
          ("total_p50_s", 0.001);
          ("total_p95_s", 0.002 +. (0.0001 *. float_of_int i));
          ("total_p99_s", 0.004);
          ("cache_hit_share", 0.5);
          ("gc_heap_words", 1e6 +. (1e4 *. float_of_int i));
        ]
    in
    if i = 5 then
      Tsdb.append_alert t ~ts:s.Tsdb.ts ~rule:"queue_depth > 1" ~firing:true
  done;
  Tsdb.close t;
  let records = read_all dir in
  let html =
    match Dashboard.render records with
    | Ok html -> html
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check string) "re-render byte-identical" html
    (Dashboard.render_exn records);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains html needle))
    [
      "<h2>Queue depth</h2>"; "<h2>Requests per second</h2>";
      "<h2>Error rate</h2>"; "<h2>End-to-end latency percentiles</h2>";
      "<h2>Cache hit share</h2>"; "<h2>GC heap</h2>"; "<h2>Alerts</h2>";
      "queue_depth &gt; 1"; "FIRING"; "<polyline"; "10 samples";
    ];
  Alcotest.(check bool) "no external references" false
    (contains html "http");
  match Dashboard.render [] with
  | Ok _ -> Alcotest.fail "empty history should not render"
  | Error msg ->
    Alcotest.(check bool) "empty error mentions samples" true
      (contains msg "no samples")

let suite =
  ( "tsdb",
    [
      Alcotest.test_case "tsdb: append/read round-trip" `Quick
        test_tsdb_round_trip;
      Alcotest.test_case "tsdb: byte-deterministic under a fixed clock" `Quick
        test_tsdb_byte_deterministic;
      Alcotest.test_case "tsdb: clock-read economy" `Quick
        test_tsdb_clock_economy;
      Alcotest.test_case "tsdb: rotation and restart resume" `Quick
        test_tsdb_rotation_and_resume;
      Alcotest.test_case "tsdb: size retention" `Quick test_tsdb_retention;
      Alcotest.test_case "tsdb: since/until reads" `Quick test_tsdb_time_range;
      Alcotest.test_case "tsdb: malformed line fails the read" `Quick
        test_tsdb_rejects_garbage;
      Alcotest.test_case "alerts: grammar" `Quick test_alert_parse;
      Alcotest.test_case "alerts: sustained fire then resolve" `Quick
        test_alert_fire_resolve;
      Alcotest.test_case "alerts: _ms fallback and absent metric" `Quick
        test_alert_ms_fallback_and_absent;
      Alcotest.test_case "flight: bounded rings and post-mortem" `Quick
        test_flight_recorder;
      Alcotest.test_case "dashboard: deterministic render" `Quick
        test_dashboard_deterministic;
    ] )
