(* Binary search (xalancbmk-flavoured symbol lookup): every iteration's
   branch compares against a freshly loaded key, so branch resolution waits
   on memory and the next probe address is control- and data-dependent on
   the outcome.  This is the worst case for *every* restrictive scheme —
   Levioso included, since the dependences are true. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let size = 16384
let queries = 800

let mem_init mem =
  for i = 0 to size - 1 do
    mem.(Layout.data_base + i) <- 3 * i
  done

let build b =
  let q = Builder.fresh_reg b in
  let key = Builder.fresh_reg b in
  let lo = Builder.fresh_reg b in
  let hi = Builder.fresh_reg b in
  let mid = Builder.fresh_reg b in
  let probe = Builder.fresh_reg b in
  let found = Builder.fresh_reg b in
  Builder.mov b found (Ir.Imm 0);
  Builder.for_down b ~counter:q ~from:(Ir.Imm queries) (fun () ->
      (* key = (q * large-prime) mod (3 * size): about a third hit *)
      Builder.mul b key (Ir.Reg q) (Ir.Imm 48271);
      Builder.alu b Ir.Rem key (Ir.Reg key) (Ir.Imm (3 * size));
      Builder.mov b lo (Ir.Imm 0);
      Builder.mov b hi (Ir.Imm size);
      Builder.while_ b
        ~cond:(fun () -> (Ir.Lt, Ir.Reg lo, Ir.Reg hi))
        (fun () ->
          Builder.add b mid (Ir.Reg lo) (Ir.Reg hi);
          Builder.alu b Ir.Shr mid (Ir.Reg mid) (Ir.Imm 1);
          Builder.load b probe (Ir.Reg mid) (Ir.Imm Layout.data_base);
          Builder.if_then_else b
            ~cond:(Ir.Lt, Ir.Reg probe, Ir.Reg key)
            (fun () -> Builder.add b lo (Ir.Reg mid) (Ir.Imm 1))
            (fun () -> Builder.mov b hi (Ir.Reg mid)));
      (* count exact hits *)
      Builder.if_then b
        ~cond:(Ir.Lt, Ir.Reg lo, Ir.Imm size)
        (fun () ->
          Builder.load b probe (Ir.Reg lo) (Ir.Imm Layout.data_base);
          Builder.if_then b
            ~cond:(Ir.Eq, Ir.Reg probe, Ir.Reg key)
            (fun () -> Builder.add b found (Ir.Reg found) (Ir.Imm 1))));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg found);
  Builder.halt b

let workload =
  Workload.make ~name:"bsearch"
    ~description:"binary search with memory-dependent branches (lookup-heavy)"
    ~build ~mem_init
