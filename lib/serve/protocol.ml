module Json = Levioso_telemetry.Json
module Schema = Levioso_telemetry.Schema
module Tsdb = Levioso_telemetry.Tsdb
module Config = Levioso_uarch.Config
module Sampler = Levioso_uarch.Sampler

let version = 1

let frame_tag = Printf.sprintf "levioso-serve/v%d" version

type cell = {
  config : Config.t;
  workload : string;
  policy : string;
  audit : bool;
  sample : Sampler.spec option;
}

type request =
  | List
  | Ping
  | Stats
  | Shutdown
  | Prune of int
  | Submit of {
      id : string;
      cache : bool;
      trace : string option;
      cells : cell list;
    }
  | History of { since : float option; until : float option; last : int }

type done_stats = {
  simulated : int;
  cached : int;
  failed : int;
  wall_s : float;
}

type response =
  | Hello of { proto : int; pool : int; cache : bool }
  | Listing of { workloads : (string * string) list; policies : string list }
  | Ack of { id : string; cells : int }
  | Result of {
      id : string;
      index : int;
      source : string;
      wall_s : float;
      summary : Json.t;
      error : string option;
    }
  | Done of { id : string; stats : done_stats }
  | Pruned of int
  | Stats_snapshot of Json.t
  | History_data of Json.t
      (** schema-tagged ["levioso-history"] document with a [records]
          list of tsdb sample/alert objects *)
  | Pong
  | Error of string
  | Bye

(* --- encoding --------------------------------------------------------- *)

let frame fields = Json.Obj (("frame", Json.String frame_tag) :: fields)

let cell_to_json c =
  Json.Obj
    [
      ("workload", Json.String c.workload);
      ("policy", Json.String c.policy);
      ("audit", Json.Bool c.audit);
      ( "sample",
        Json.String
          (match c.sample with
          | None -> "off"
          | Some sp -> Sampler.spec_to_string sp) );
      ("config", Config.to_json c.config);
    ]

let request_to_json = function
  | List -> frame [ ("type", Json.String "list") ]
  | Ping -> frame [ ("type", Json.String "ping") ]
  | Stats -> frame [ ("type", Json.String "stats") ]
  | Shutdown -> frame [ ("type", Json.String "shutdown") ]
  | Prune days ->
    frame [ ("type", Json.String "prune"); ("days", Json.Int days) ]
  | Submit { id; cache; trace; cells } ->
    frame
      ([ ("type", Json.String "submit"); ("id", Json.String id) ]
      @ (match trace with
        | Some tr -> [ ("trace", Json.String tr) ]
        | None -> [])
      @ [
          ("cache", Json.Bool cache);
          ("cells", Json.List (List.map cell_to_json cells));
        ])
  | History { since; until; last } ->
    frame
      ([ ("type", Json.String "history") ]
      @ (match since with
        | Some s -> [ ("since", Json.float s) ]
        | None -> [])
      @ (match until with
        | Some u -> [ ("until", Json.float u) ]
        | None -> [])
      @ [ ("last", Json.Int last) ])

let response_to_json = function
  | Hello { proto; pool; cache } ->
    frame
      [
        ("type", Json.String "hello");
        ("proto", Json.Int proto);
        ("pool", Json.Int pool);
        ("cache", Json.Bool cache);
      ]
  | Listing { workloads; policies } ->
    frame
      [
        ("type", Json.String "listing");
        ( "workloads",
          Json.List
            (List.map
               (fun (name, description) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("description", Json.String description);
                   ])
               workloads) );
        ("policies", Json.List (List.map (fun p -> Json.String p) policies));
      ]
  | Ack { id; cells } ->
    frame
      [
        ("type", Json.String "ack");
        ("id", Json.String id);
        ("cells", Json.Int cells);
      ]
  | Result { id; index; source; wall_s; summary; error } ->
    frame
      ([
         ("type", Json.String "result");
         ("id", Json.String id);
         ("index", Json.Int index);
         ("source", Json.String source);
       ]
      @ (match error with
        | Some msg -> [ ("error", Json.String msg) ]
        | None -> [])
      @ [ ("wall_s", Json.float wall_s); ("summary", summary) ])
  | Done { id; stats } ->
    frame
      [
        ("type", Json.String "done");
        ("id", Json.String id);
        ("simulated", Json.Int stats.simulated);
        ("cached", Json.Int stats.cached);
        ("failed", Json.Int stats.failed);
        ("wall_s", Json.float stats.wall_s);
      ]
  | Pruned removed ->
    frame [ ("type", Json.String "pruned"); ("removed", Json.Int removed) ]
  | Stats_snapshot j -> frame [ ("type", Json.String "stats"); ("snapshot", j) ]
  | History_data j -> frame [ ("type", Json.String "history"); ("data", j) ]
  | Pong -> frame [ ("type", Json.String "pong") ]
  | Error msg ->
    frame [ ("type", Json.String "error"); ("message", Json.String msg) ]
  | Bye -> frame [ ("type", Json.String "bye") ]

(* --- decoding --------------------------------------------------------- *)

let ( let* ) = Result.bind

let check_frame j =
  match Json.member "frame" j with
  | Some (Json.String tag) when tag = frame_tag -> (
    match Json.member "type" j with
    | Some (Json.String ty) -> Ok ty
    | Some _ | None -> Error "frame has no \"type\" field")
  | Some (Json.String tag) ->
    Error
      (Printf.sprintf "protocol mismatch: got %S, this side speaks %S" tag
         frame_tag)
  | Some _ | None -> Error "not a levioso-serve frame (missing \"frame\" tag)"

let string_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | Some _ | None ->
    Error (Printf.sprintf "frame field %S is missing or not a string" name)

let int_field j name =
  match Json.member name j with
  | Some (Json.Int n) -> Ok n
  | Some _ | None ->
    Error (Printf.sprintf "frame field %S is missing or not an integer" name)

let float_field j name =
  match Json.member name j with
  | Some (Json.Int n) -> Ok (float_of_int n)
  | Some (Json.Float f) -> Ok f
  | Some _ | None ->
    Error (Printf.sprintf "frame field %S is missing or not a number" name)

let bool_field j name =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ | None ->
    Error (Printf.sprintf "frame field %S is missing or not a boolean" name)

(* Optional fields added after v1 shipped: absent on frames from older
   peers (both directions keep working), malformed still rejected. *)
let opt_string_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok (Some s)
  | None -> Ok None
  | Some _ -> Error (Printf.sprintf "frame field %S is not a string" name)

let int_field_default j name ~default =
  match Json.member name j with
  | Some (Json.Int n) -> Ok n
  | None -> Ok default
  | Some _ -> Error (Printf.sprintf "frame field %S is not an integer" name)

let opt_float_field j name =
  match Json.member name j with
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int n) -> Ok (Some (float_of_int n))
  | None -> Ok None
  | Some _ -> Error (Printf.sprintf "frame field %S is not a number" name)

let cell_of_json j =
  let* workload = string_field j "workload" in
  let* policy = string_field j "policy" in
  let* audit = bool_field j "audit" in
  let* sample_str = string_field j "sample" in
  let* sample = Sampler.parse sample_str in
  let* config =
    match Json.member "config" j with
    | Some c -> Config.of_json c
    | None -> Error "cell has no \"config\""
  in
  Ok { config; workload; policy; audit; sample }

let request_of_json j =
  let* ty = check_frame j in
  match ty with
  | "list" -> Ok List
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "prune" ->
    let* days = int_field j "days" in
    Ok (Prune days)
  | "submit" ->
    let* id = string_field j "id" in
    let* cache = bool_field j "cache" in
    let* trace = opt_string_field j "trace" in
    let* cells =
      match Json.member "cells" j with
      | Some (Json.List l) ->
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* cell = cell_of_json c in
            Ok (cell :: acc))
          (Ok []) l
        |> Result.map List.rev
      | Some _ | None -> Error "submit has no \"cells\" list"
    in
    Ok (Submit { id; cache; trace; cells })
  | "history" ->
    let* since = opt_float_field j "since" in
    let* until = opt_float_field j "until" in
    let* last = int_field_default j "last" ~default:0 in
    Ok (History { since; until; last })
  | ty -> Error (Printf.sprintf "unknown request type %S" ty)

let response_of_json j =
  let* ty = check_frame j in
  match ty with
  | "hello" ->
    let* proto = int_field j "proto" in
    let* pool = int_field j "pool" in
    let* cache = bool_field j "cache" in
    Ok (Hello { proto; pool; cache })
  | "listing" ->
    let* workloads =
      match Json.member "workloads" j with
      | Some (Json.List l) ->
        List.fold_left
          (fun acc w ->
            let* acc = acc in
            let* name = string_field w "name" in
            let* description = string_field w "description" in
            Ok ((name, description) :: acc))
          (Ok []) l
        |> Result.map List.rev
      | Some _ | None -> Error "listing has no \"workloads\""
    in
    let* policies =
      match Json.member "policies" j with
      | Some (Json.List l) ->
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match p with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error "listing policy is not a string")
          (Ok []) l
        |> Result.map List.rev
      | Some _ | None -> Error "listing has no \"policies\""
    in
    Ok (Listing { workloads; policies })
  | "ack" ->
    let* id = string_field j "id" in
    let* cells = int_field j "cells" in
    Ok (Ack { id; cells })
  | "result" ->
    let* id = string_field j "id" in
    let* index = int_field j "index" in
    let* source = string_field j "source" in
    let* error = opt_string_field j "error" in
    let* wall_s = float_field j "wall_s" in
    let* summary =
      match Json.member "summary" j with
      | Some s -> Ok s
      | None -> Error "result has no \"summary\""
    in
    Ok (Result { id; index; source; wall_s; summary; error })
  | "done" ->
    let* id = string_field j "id" in
    let* simulated = int_field j "simulated" in
    let* cached = int_field j "cached" in
    let* failed = int_field_default j "failed" ~default:0 in
    let* wall_s = float_field j "wall_s" in
    Ok (Done { id; stats = { simulated; cached; failed; wall_s } })
  | "pruned" ->
    let* removed = int_field j "removed" in
    Ok (Pruned removed)
  | "stats" -> (
    match Json.member "snapshot" j with
    | Some s -> Ok (Stats_snapshot s)
    | None -> Error "stats has no \"snapshot\"")
  | "history" -> (
    match Json.member "data" j with
    | Some d -> Ok (History_data d)
    | None -> Error "history has no \"data\"")
  | "pong" -> Ok Pong
  | "error" ->
    let* msg = string_field j "message" in
    Ok (Error msg)
  | "bye" -> Ok Bye
  | ty -> Error (Printf.sprintf "unknown response type %S" ty)

(* --- history documents ------------------------------------------------

   The payload of a [History_data] response, also what `levioso_serve
   history --json` prints: a schema-tagged wrapper around verbatim tsdb
   records, so the same document shape works whether the records came
   over the wire or straight off disk. *)

let history_doc records =
  Schema.tag
    [
      ("kind", Json.String "levioso-history");
      ("count", Json.Int (List.length records));
      ( "records",
        Json.List
          (List.map
             (function
               | Tsdb.Sample s -> Tsdb.sample_to_json s
               | Tsdb.Alert a -> Tsdb.alert_to_json a)
             records) );
    ]

let history_records j =
  let* () = Schema.check ~what:"history document" j in
  match Json.member "records" j with
  | Some (Json.List l) ->
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* record = Tsdb.record_of_json r in
        Ok (record :: acc))
      (Ok []) l
    |> Result.map List.rev
  | Some _ | None -> Error "history document has no \"records\" list"

(* --- framing ----------------------------------------------------------

   One minified JSON object per line.  [Json.to_string ~minify:true]
   never emits a newline, so a line is always exactly one frame, and
   [input_line] is the whole decoder. *)

let write_frame oc j =
  output_string oc (Json.to_string ~minify:true j);
  output_char oc '\n';
  flush oc

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> Ok None
  | exception Sys_error msg -> Result.Error msg
  | line -> (
    match Json.of_string line with
    | Ok j -> Ok (Some j)
    | Result.Error msg -> Result.Error ("bad frame: " ^ msg))
