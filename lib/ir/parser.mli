(** Parser for the textual assembly produced by {!Ir.instr_to_string}, plus
    symbolic labels.  Useful for writing tests and examples as readable
    listings.

    Grammar (one instruction or label per line; [;] starts a comment):
    {v
      loop:
        add r1, r1, #1
        load r2, [r3 + #8]
        store [r3 + #0], r2
        blt r1, r4, loop
        setge r5, r1, r4
        jump end
        flush [r3 + #0]
        rdcycle r6
      end:
        halt
    v} *)

exception Parse_error of string
(** Raised by {!parse_exn}; the message carries the line number. *)

val parse : string -> (Ir.program, string) result
(** Parse a full listing.  Errors carry a line number and message.
    Branch targets may be labels or absolute [@pc] references (the form
    {!Ir.program_to_string} prints), so print → parse round-trips. *)

val parse_exn : string -> Ir.program
(** @raise Parse_error on parse errors. *)
