lib/workload/stream.ml: Array Layout Levioso_ir Levioso_util Workload
