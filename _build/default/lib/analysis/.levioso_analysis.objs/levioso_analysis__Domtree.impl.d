lib/analysis/domtree.ml: Array List
