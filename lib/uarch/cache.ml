(* Tags with LRU ordering per set, kept in one flat int array:
   [data.(set * ways + i)] is the i-th most-recently-used line of [set]
   (-1 = empty way).  Flat storage keeps lookup/fill allocation-free on
   the pipeline's per-load hot path (the previous int-list sets consed a
   fresh list per access). *)

type t = {
  geometry : Config.cache_geometry;
  ways : int;
  data : int array;  (* sets * ways, MRU-first line addresses, -1 empty *)
}

let create geometry =
  {
    geometry;
    ways = geometry.Config.ways;
    data = Array.make (geometry.Config.sets * geometry.Config.ways) (-1);
  }

let line_of t addr = addr / t.geometry.Config.line_words

let set_of t line = line land (t.geometry.Config.sets - 1)

let find_way t base line =
  let rec go i =
    if i >= t.ways then -1 else if t.data.(base + i) = line then i else go (i + 1)
  in
  go 0

let move_to_front t base i line =
  for k = i downto 1 do
    t.data.(base + k) <- t.data.(base + k - 1)
  done;
  t.data.(base) <- line

let lookup t addr =
  let line = line_of t addr in
  let base = set_of t line * t.ways in
  let i = find_way t base line in
  if i < 0 then false
  else begin
    move_to_front t base i line;
    true
  end

let fill t addr =
  let line = line_of t addr in
  let base = set_of t line * t.ways in
  let i = find_way t base line in
  if i >= 0 then move_to_front t base i line
  else begin
    (* insert at MRU, shifting the rest right (LRU way falls off) *)
    move_to_front t base (t.ways - 1) line
  end

let invalidate t addr =
  let line = line_of t addr in
  let base = set_of t line * t.ways in
  let i = find_way t base line in
  if i >= 0 then begin
    for k = i to t.ways - 2 do
      t.data.(base + k) <- t.data.(base + k + 1)
    done;
    t.data.(base + t.ways - 1) <- -1
  end

let probe t addr =
  let line = line_of t addr in
  find_way t (set_of t line * t.ways) line >= 0

let reset t = Array.fill t.data 0 (Array.length t.data) (-1)

type snapshot = int array

let snapshot t = Array.copy t.data

let restore t s =
  if Array.length s <> Array.length t.data then
    invalid_arg "Cache.restore: snapshot geometry mismatch";
  Array.blit s 0 t.data 0 (Array.length s)

module Hierarchy = struct
  module Registry = Levioso_telemetry.Registry

  (* Access counters live in a telemetry registry (scoped "cache/") so
     harnesses that pass a shared registry into [create] read them next to
     every other instrument; standalone hierarchies get a private one. *)
  type h = {
    l1 : t;
    l2 : t;
    l1_hit : int;
    l2_hit : int;
    mem_lat : int;
    registry : Registry.t;
    n_l1_hit : Registry.Counter.c;
    n_l1_miss : Registry.Counter.c;
    n_l2_hit : Registry.Counter.c;
    n_l2_miss : Registry.Counter.c;
  }

  type level =
    | L1
    | L2
    | Memory

  let create ?registry (config : Config.t) =
    let registry =
      Registry.scope
        (match registry with
        | Some r -> r
        | None -> Registry.create ())
        "cache"
    in
    {
      l1 = create config.Config.l1;
      l2 = create config.Config.l2;
      l1_hit = config.Config.l1.Config.hit_latency;
      l2_hit = config.Config.l2.Config.hit_latency;
      mem_lat = config.Config.memory_latency;
      registry;
      n_l1_hit = Registry.counter registry "l1_hits";
      n_l1_miss = Registry.counter registry "l1_misses";
      n_l2_hit = Registry.counter registry "l2_hits";
      n_l2_miss = Registry.counter registry "l2_misses";
    }

  (* Tuple-free load for the pipeline hot path: mutates exactly like
     [load] and returns only the serving level; the latency comes from
     [latency_of_level]. *)
  let load_level h addr =
    if lookup h.l1 addr then begin
      Registry.Counter.incr h.n_l1_hit;
      L1
    end
    else begin
      Registry.Counter.incr h.n_l1_miss;
      if lookup h.l2 addr then begin
        Registry.Counter.incr h.n_l2_hit;
        fill h.l1 addr;
        L2
      end
      else begin
        Registry.Counter.incr h.n_l2_miss;
        fill h.l2 addr;
        fill h.l1 addr;
        Memory
      end
    end

  let latency_of_level h = function
    | L1 -> h.l1_hit
    | L2 -> h.l2_hit
    | Memory -> h.mem_lat

  let load h addr =
    let level = load_level h addr in
    (latency_of_level h level, level)

  let prefetch h addr =
    fill h.l2 addr;
    fill h.l1 addr

  let store_commit h addr =
    fill h.l2 addr;
    fill h.l1 addr

  let flush h addr =
    invalidate h.l1 addr;
    invalidate h.l2 addr

  let probe h addr =
    if probe h.l1 addr then L1 else if probe h.l2 addr then L2 else Memory

  let load_latency h addr =
    match probe h addr with
    | L1 -> h.l1_hit
    | L2 -> h.l2_hit
    | Memory -> h.mem_lat

  let l1 h = h.l1
  let l2 h = h.l2

  type hsnapshot = {
    hs_l1 : snapshot;
    hs_l2 : snapshot;
  }

  let snapshot h = { hs_l1 = snapshot h.l1; hs_l2 = snapshot h.l2 }

  let restore h s =
    restore h.l1 s.hs_l1;
    restore h.l2 s.hs_l2

  let stats h =
    [
      ("l1_hits", Registry.Counter.value h.n_l1_hit);
      ("l1_misses", Registry.Counter.value h.n_l1_miss);
      ("l2_hits", Registry.Counter.value h.n_l2_hit);
      ("l2_misses", Registry.Counter.value h.n_l2_miss);
    ]

  let registry h = h.registry

  let reset_stats h = Registry.reset h.registry
end
