(* Bounded rings + post-mortem dump.  See flight.mli. *)

type 'a ring = {
  buf : 'a option array;
  mutable pushed : int;  (* total ever pushed; buf.(pushed mod cap) is next *)
}

let ring_create cap = { buf = Array.make (max 1 cap) None; pushed = 0 }

let ring_push r x =
  r.buf.(r.pushed mod Array.length r.buf) <- Some x;
  r.pushed <- r.pushed + 1

let ring_count r = min r.pushed (Array.length r.buf)

let ring_to_list r =
  (* oldest first *)
  let cap = Array.length r.buf in
  let n = ring_count r in
  List.init n (fun i -> Option.get r.buf.((r.pushed - n + i) mod cap))

type t = {
  mu : Mutex.t;
  samples : Tsdb.sample ring;
  records : Json.t ring;
}

let create ?(samples = 256) ?(records = 256) () =
  { mu = Mutex.create (); samples = ring_create samples; records = ring_create records }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let add_sample t s = locked t (fun () -> ring_push t.samples s)
let add_record t j = locked t (fun () -> ring_push t.records j)
let sample_count t = locked t (fun () -> ring_count t.samples)

let dump t ~reason ~ts =
  locked t (fun () ->
      Schema.tag
        [
          ("kind", Json.String "levioso-postmortem");
          ("reason", Json.String reason);
          ("ts", Json.float ts);
          ( "samples",
            Json.List (List.map Tsdb.sample_to_json (ring_to_list t.samples))
          );
          ("records", Json.List (ring_to_list t.records));
        ])

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write t ~dir ~reason ~ts =
  let json = dump t ~reason ~ts in
  mkdir_p dir;
  let rec free_path n =
    if n > 999 then None
    else
      let path = Filename.concat dir (Printf.sprintf "postmortem-%03d.json" n) in
      if Sys.file_exists path then free_path (n + 1) else Some path
  in
  match free_path 0 with
  | None -> Error "flight recorder: no free postmortem-NNN.json slot"
  | Some path -> (
      try
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Json.to_channel oc json;
        output_char oc '\n';
        close_out oc;
        Sys.rename tmp path;
        Ok path
      with Sys_error e -> Error e)
