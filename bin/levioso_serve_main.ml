(* levioso_serve: simulation as a service.

   A long-lived daemon owns one domain pool and one sharded result
   store; clients submit batched (workload x policy x config) matrices
   over a Unix-domain socket and stream results back in submission
   order, bit-identical to a local serial run.

   Examples:
     levioso_serve serve --socket /tmp/lev.sock -j 8 &
     levioso_serve list --socket /tmp/lev.sock
     levioso_serve submit --socket /tmp/lev.sock -w stream -p levioso --json
     levioso_serve stress --socket /tmp/lev.sock --cells 200
     levioso_serve shutdown --socket /tmp/lev.sock *)

module Config = Levioso_uarch.Config
module Sampler = Levioso_uarch.Sampler
module Run_cache = Levioso_uarch.Run_cache
module Registry = Levioso_core.Registry
module Suite = Levioso_workload.Suite
module Json = Levioso_telemetry.Json
module Monitor = Levioso_telemetry.Monitor
module Span = Levioso_telemetry.Span
module Tsdb = Levioso_telemetry.Tsdb
module Alerts = Levioso_telemetry.Alerts
module Report = Levioso_util.Report
module Stats = Levioso_util.Stats
module Serve = Levioso_serve
module Protocol = Levioso_serve.Protocol
module Client = Levioso_serve.Client
module Server = Levioso_serve.Server
module Catalog = Levioso_serve.Catalog

(* ---------- serve ---------- *)

let serve socket jobs queue_max cache_dir no_cache metrics_file progress_file
    trace_out access_log_path history_out history_interval alerts_file quiet =
  if jobs < 0 then `Error (false, "-j expects a non-negative integer")
  else if queue_max < 0 then
    `Error (false, "--queue-max expects a non-negative integer")
  else if history_interval <= 0. then
    `Error (false, "--history-interval expects a positive number of seconds")
  else if alerts_file <> None && history_out = None then
    `Error
      ( false,
        "--alerts needs --history-out (rules are evaluated against the \
         recorded samples)" )
  else begin
    let history =
      match history_out with
      | None -> Ok None
      | Some dir -> (
        match
          match alerts_file with None -> Ok [] | Some f -> Alerts.load f
        with
        | Error msg -> Error msg
        | Ok alert_rules ->
          Ok
            (Some
               {
                 Server.history_dir = dir;
                 history_interval_s = history_interval;
                 alert_rules;
               }))
    in
    match history with
    | Error msg -> `Error (false, msg)
    | Ok history ->
    let cache =
      if no_cache then None else Some (Run_cache.create ~dir:cache_dir ())
    in
    let monitor =
      if metrics_file <> None || progress_file <> None then
        Some
          (Monitor.create ?json_path:progress_file ?metrics_path:metrics_file
             ~label:"levioso_serve" ())
      else None
    in
    let log =
      if quiet then None
      else
        Some
          (fun msg ->
            Printf.eprintf "[levioso_serve %.3f] %s\n%!"
              (Unix.gettimeofday ()) msg)
    in
    let pool_size =
      if jobs = 0 then Levioso_util.Parallel.default_size () else jobs
    in
    (* the collector also powers the access log's engine-stage columns,
       so either flag turns it on *)
    let spans =
      if trace_out <> None || access_log_path <> None then
        Some (Span.create ())
      else None
    in
    let access_log = Option.map open_out access_log_path in
    let close_access () =
      Option.iter (fun oc -> try close_out oc with Sys_error _ -> ()) access_log
    in
    match
      Server.run
        {
          Server.socket_path = socket;
          pool_size;
          queue_max = (if queue_max = 0 then None else Some queue_max);
          cache;
          monitor;
          log;
          spans;
          access_log;
          history;
        }
    with
    | () ->
      (match (spans, trace_out) with
      | Some sp, Some path ->
        let oc = open_out path in
        Span.write_chrome oc (Span.drain sp);
        close_out oc
      | _ -> ());
      close_access ();
      `Ok ()
    | exception Failure msg ->
      close_access ();
      `Error (false, msg)
    | exception Unix.Unix_error (e, fn, arg) ->
      close_access ();
      `Error
        ( false,
          Printf.sprintf "%s: %s(%s): %s" socket fn arg (Unix.error_message e)
        )
  end

(* ---------- client-side helpers ---------- *)

let with_client socket f =
  match Client.connect socket with
  | exception Client.Server_error msg -> `Error (false, msg)
  | c -> (
    match f c with
    | v ->
      Client.close c;
      `Ok v
    | exception Client.Server_error msg ->
      Client.close c;
      `Error (false, msg))

let cycles_of_summary summary =
  let stat block field =
    Option.bind (Json.member block summary) (Json.member field)
  in
  match stat "sampled" "estimated_cycles" with
  | Some (Json.Int n) -> n
  | _ -> (
    match stat "stats" "cycles" with
    | Some (Json.Int n) -> n
    | _ -> -1)

let print_batch_stats (stats : Protocol.done_stats) =
  Printf.eprintf "serve: %d simulated, %d cached%s in %.2fs\n%!"
    stats.Protocol.simulated stats.Protocol.cached
    (if stats.Protocol.failed > 0 then
       Printf.sprintf ", %d FAILED" stats.Protocol.failed
     else "")
    stats.Protocol.wall_s

let print_cell_errors cells (results : Client.result_cell array) =
  Array.iteri
    (fun i (r : Client.result_cell) ->
      match r.Client.error with
      | Some msg ->
        let cell = List.nth cells i in
        Printf.eprintf "serve: cell %d (%s/%s) failed: %s\n%!" i
          cell.Protocol.workload cell.Protocol.policy msg
      | None -> ())
    results

(* ---------- human-readable stats rendering (stats / top) ---------- *)

let fmt_dur s =
  if s < 0.001 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let fmt_uptime s =
  let s = int_of_float s in
  if s >= 3600 then
    Printf.sprintf "%dh %dm %ds" (s / 3600) (s mod 3600 / 60) (s mod 60)
  else if s >= 60 then Printf.sprintf "%dm %ds" (s / 60) (s mod 60)
  else Printf.sprintf "%ds" s

let render_stats socket j =
  let num name =
    match Json.member name j with
    | Some (Json.Int n) -> float_of_int n
    | Some (Json.Float f) -> f
    | _ -> 0.
  in
  let int_ name = int_of_float (num name) in
  let gauge name =
    match Option.bind (Json.member "gauges" j) (Json.member name) with
    | Some (Json.Float f) -> int_of_float f
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "levioso_serve @ %s — up %s, proto %d, pool %d, cache %s\n" socket
    (fmt_uptime (num "uptime_s"))
    (int_ "proto") (int_ "pool")
    (match Json.member "cache" j with
    | Some (Json.Bool true) -> "on"
    | _ -> "off");
  Printf.bprintf buf
    "requests %d   errors %d   clients %d   queue %d   inflight %d\n"
    (int_ "requests") (int_ "errors") (gauge "serve_clients")
    (gauge "serve_queue_depth")
    (gauge "serve_inflight");
  Printf.bprintf buf "cells: %d simulated, %d cached, %d merged\n\n"
    (gauge "serve_cells_simulated")
    (gauge "serve_cells_cached")
    (gauge "serve_cells_merged");
  let header = [ "stage"; "seen"; "window"; "p50"; "p95"; "p99" ] in
  let rows =
    match Json.member "latency" j with
    | Some (Json.Obj stages) ->
      List.map
        (fun (stage, sj) ->
          let dur name =
            match Json.member name sj with
            | Some (Json.Float v) -> fmt_dur v
            | Some (Json.Int v) -> fmt_dur (float_of_int v)
            | _ -> "-"
          in
          let count name =
            match Json.member name sj with
            | Some (Json.Int v) -> string_of_int v
            | _ -> "0"
          in
          [
            stage; count "seen"; count "window"; dur "p50_s"; dur "p95_s";
            dur "p99_s";
          ])
        stages
    | _ -> []
  in
  Buffer.add_string buf (Report.table ~header ~rows);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------- submit ---------- *)

let submit socket workload_names policy_names rob predictor budget audit
    sample no_cache json quiet =
  match Sampler.parse sample with
  | Error msg -> `Error (false, msg)
  | Ok sample_spec ->
    let config =
      {
        Config.default with
        Config.rob_size = rob;
        predictor;
        depset_budget = budget;
      }
    in
    let workloads =
      match workload_names with [] -> Suite.names | names -> names
    in
    let policies =
      match policy_names with [] -> Registry.names | names -> names
    in
    let cells =
      List.concat_map
        (fun w ->
          List.map
            (fun p ->
              {
                Protocol.config;
                workload = w;
                policy = p;
                audit;
                sample = sample_spec;
              })
            policies)
        workloads
    in
    with_client socket (fun c ->
        let results, stats =
          Client.submit ~cache:(not no_cache) c cells
        in
        if not quiet then print_batch_stats stats;
        print_cell_errors cells results;
        if json then
          print_endline
            (Json.to_string
               (Levioso_uarch.Summary.runs
                  (Array.to_list
                     (Array.map
                        (fun (r : Client.result_cell) -> r.Client.summary)
                        results))))
        else begin
          let n = List.length policies in
          let baseline row =
            List.find_opt (fun (p, _) -> p = "unsafe") row
            |> Option.map (fun (_, c) -> c)
          in
          let header =
            "workload" :: List.map (fun p -> p ^ " (cyc)") policies
          in
          let body =
            List.mapi
              (fun i w ->
                let row =
                  List.mapi
                    (fun j p ->
                      (p, cycles_of_summary results.((i * n) + j).Client.summary))
                    policies
                in
                let base = baseline row in
                w
                :: List.map
                     (fun (_, c) ->
                       match base with
                       | Some b when b > 0 && b <> c ->
                         Printf.sprintf "%d (%+.1f%%)" c
                           (Stats.overhead_pct ~baseline:(float_of_int b)
                              (float_of_int c))
                       | Some _ | None -> string_of_int c)
                     row)
              workloads
          in
          print_endline (Report.table ~header ~rows:body)
        end)

(* ---------- stress ---------- *)

let stress socket cells_n workload policy use_cache =
  if cells_n < 1 then `Error (false, "--cells expects a positive integer")
  else
    (* distinct rob sizes make every cell real scheduled work instead of
       one simulation plus (N-1) merges *)
    let cells =
      List.init cells_n (fun i ->
          {
            Protocol.config =
              { Config.default with Config.rob_size = 64 + i };
            workload;
            policy;
            audit = false;
            sample = None;
          })
    in
    with_client socket (fun c ->
        let walls = ref [] in
        let t0 = Unix.gettimeofday () in
        let _, stats =
          Client.submit ~cache:use_cache
            ~on_result:(fun _ rc ->
              if rc.Client.error = None then
                walls := rc.Client.wall_s :: !walls)
            c cells
        in
        let wall = Unix.gettimeofday () -. t0 in
        Printf.printf
          "stress: %d cells (%d simulated, %d cached%s) in %.2fs — %.1f \
           cells/s\n"
          cells_n stats.Protocol.simulated stats.Protocol.cached
          (if stats.Protocol.failed > 0 then
             Printf.sprintf ", %d failed" stats.Protocol.failed
           else "")
          wall
          (float_of_int cells_n /. wall);
        let sorted = Array.of_list (List.sort compare !walls) in
        let n = Array.length sorted in
        if n > 0 then begin
          let pct q =
            sorted.(min (n - 1)
                      (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))
          in
          Printf.printf "  cell wall: p50 %s, p95 %s, p99 %s\n"
            (fmt_dur (pct 0.5)) (fmt_dur (pct 0.95)) (fmt_dur (pct 0.99))
        end)

(* ---------- one-frame commands ---------- *)

let list_cmd socket =
  with_client socket (fun c ->
      let workloads, policies = Client.list c in
      print_endline "workloads:";
      List.iter
        (fun (n, d) -> Printf.printf "  %-16s %s\n" n d)
        workloads;
      print_endline "policies:";
      List.iter (fun p -> Printf.printf "  %s\n" p) policies)

let ping_cmd socket =
  with_client socket (fun c ->
      Client.ping c;
      Printf.printf "pong (pool %d, cache %s)\n" (Client.pool c)
        (if Client.server_cache c then "on" else "off"))

let stats_cmd socket json =
  with_client socket (fun c ->
      let j = Client.stats c in
      if json then print_endline (Json.to_string j)
      else print_string (render_stats socket j))

(* ---------- top ---------- *)

let top_cmd socket interval iterations =
  if interval <= 0. then `Error (false, "--interval expects a positive number")
  else if iterations < 0 then
    `Error (false, "--iterations expects a non-negative integer")
  else
    with_client socket (fun c ->
        (* in-place redraw only when talking to a terminal, so piping
           `top --iterations 1` stays clean text *)
        let ansi = Unix.isatty Unix.stdout in
        let rec loop i =
          let j = Client.stats c in
          if ansi then print_string "\027[2J\027[H";
          print_string (render_stats socket j);
          flush stdout;
          if iterations = 0 || i < iterations then begin
            Unix.sleepf interval;
            loop (i + 1)
          end
        in
        loop 1)

let prune_cmd socket days =
  if days < 0 then `Error (false, "--days expects a non-negative integer")
  else
    with_client socket (fun c ->
        Printf.printf "pruned %d entries\n" (Client.prune c ~max_age_days:days))

let shutdown_cmd socket =
  with_client socket (fun c ->
      Client.shutdown c;
      print_endline "daemon stopped")

(* ---------- history ---------- *)

(* Curated default columns: the operational signals someone debugging a
   daemon wants first.  --fields overrides with any recorded field. *)
let history_default_fields =
  [
    "uptime_s"; "queue_depth"; "clients"; "requests"; "errors";
    "requests_per_s"; "cells_per_s"; "cache_hit_share"; "total_p50_s";
    "total_p99_s"; "gc_heap_words";
  ]

let render_history records fields =
  let samples = Levioso_telemetry.Tsdb.samples records in
  match samples with
  | [] -> print_endline "no samples in the requested range"
  | first :: _ ->
    let t0 = first.Tsdb.ts in
    let present name =
      List.exists (fun s -> List.mem_assoc name s.Tsdb.fields) samples
    in
    let columns =
      match fields with
      | Some names -> names  (* explicit request: keep even when absent *)
      | None -> List.filter present history_default_fields
    in
    let header = "t" :: columns in
    let rows =
      List.map
        (fun s ->
          Printf.sprintf "+%.1fs" (s.Tsdb.ts -. t0)
          :: List.map
               (fun name ->
                 match List.assoc_opt name s.Tsdb.fields with
                 | Some v -> Printf.sprintf "%g" v
                 | None -> "-")
               columns)
        samples
    in
    print_string (Report.table ~header ~rows);
    List.iter
      (function
        | Tsdb.Alert a ->
          Printf.printf "%s t+%.1fs: %s\n"
            (if a.Tsdb.firing then "alert FIRING " else "alert resolved")
            (a.Tsdb.a_ts -. t0) a.Tsdb.rule
        | Tsdb.Sample _ -> ())
      records

let history_cmd socket dir since until last json fields =
  if last < 0 then `Error (false, "--last expects a non-negative integer")
  else
    let fields =
      Option.map
        (fun csv ->
          String.split_on_char ',' csv
          |> List.map String.trim
          |> List.filter (fun s -> s <> ""))
        fields
    in
    let render records =
      if json then print_endline (Json.to_string (Protocol.history_doc records))
      else render_history records fields
    in
    match dir with
    | Some dir -> (
      (* offline: read the segments directly, no daemon required *)
      match Tsdb.read_dir ?since ?until dir with
      | Error msg -> `Error (false, msg)
      | Ok records ->
        let records =
          if last > 0 then
            let n = List.length records in
            List.filteri (fun i _ -> i >= n - last) records
          else records
        in
        render records;
        `Ok ())
    | None ->
      with_client socket (fun c ->
          let doc = Client.history ?since ?until ~last c in
          if json then print_endline (Json.to_string doc)
          else
            match Protocol.history_records doc with
            | Ok records -> render_history records fields
            | Error msg -> raise (Client.Server_error msg))

(* ---------- cmdliner ---------- *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "levioso.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the daemon.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Simulation domains in the daemon's pool; 0 (the default) uses \
           every core.")

let queue_max_arg =
  Arg.(
    value & opt int 0
    & info [ "queue-max" ] ~docv:"N"
        ~doc:
          "Bound the work queue at $(docv) pending cells: submissions \
           beyond it block (backpressure).  0 (the default) is unbounded.")

let cache_dir_arg =
  Arg.(
    value
    & opt string (Filename.concat "bench" ".cache")
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Sharded result store shared by every client of this daemon \
           (created, and any flat legacy entries migrated, on start).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Run without a result store (always simulate).")

let metrics_serve_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Periodically write daemon gauges (queue depth, clients, cells \
           simulated/cached/merged) in OpenMetrics text format to $(docv).")

let progress_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "progress-file" ] ~docv:"FILE"
        ~doc:"Periodically write a machine-readable progress snapshot.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the event log.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "On shutdown, write every request's spans as Chrome trace_event \
           JSON (loadable in Perfetto: one track per trace id, submit → \
           cell → cache_probe/replay/simulate nesting) to $(docv).")

let access_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:
          "Append one schema-tagged JSONL record per served cell to $(docv): \
           trace/request identity plus per-stage durations (queue, exec, \
           cache_probe, replay, simulate, serialize) and total_s.")

let history_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "history-out" ] ~docv:"DIR"
        ~doc:
          "Continuous telemetry: sample the daemon's gauges, latency \
           percentiles, histogram mass and GC counters every \
           --history-interval seconds into an append-only on-disk \
           time-series under $(docv) (query with `levioso_serve history`, \
           render with `levioso_report --dashboard`).  Also arms the \
           flight recorder: SIGUSR1, a deadlock diagnostic or an uncaught \
           server error dumps recent samples and access records to a \
           post-mortem JSON in $(docv).")

let history_interval_arg =
  Arg.(
    value & opt float 5.0
    & info [ "history-interval" ] ~docv:"SECS"
        ~doc:"Seconds between history samples (default 5).")

let alerts_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "alerts" ] ~docv:"FILE"
        ~doc:
          "Alert rules evaluated at every history sample, one per line: \
           `metric OP threshold [for DURs]`, e.g. `total_p99_ms > 500 for \
           30s` or `queue_depth >= 100`.  Transitions are logged, recorded \
           in the time-series and exported as the levioso_alerts_firing \
           gauge.  Requires --history-out.")

let serve_cmd =
  let doc = "run the simulation daemon (blocks until a shutdown request)" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const serve $ socket_arg $ jobs_arg $ queue_max_arg $ cache_dir_arg
       $ no_cache_arg $ metrics_serve_arg $ progress_file_arg $ trace_out_arg
       $ access_log_arg $ history_out_arg $ history_interval_arg $ alerts_arg
       $ quiet_arg))

let workloads_arg =
  let doc =
    "Workload to submit (repeatable; default: the whole suite). Known: "
    ^ String.concat ", " (Catalog.workload_names ())
  in
  Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let policies_arg =
  let doc =
    "Defense policy (repeatable; default: all). Known: "
    ^ String.concat ", " Registry.names
  in
  Arg.(value & opt_all string [] & info [ "p"; "policy" ] ~docv:"NAME" ~doc)

let rob_arg =
  Arg.(
    value
    & opt int Config.default.Config.rob_size
    & info [ "rob" ] ~docv:"N" ~doc:"Reorder-buffer size.")

let predictor_arg =
  let predictor_conv =
    Arg.enum
      [
        ("always-taken", Config.Always_taken);
        ("bimodal", Config.Bimodal);
        ("gshare", Config.Gshare);
        ("tage", Config.Tage);
      ]
  in
  Arg.(
    value
    & opt predictor_conv Config.default.Config.predictor
    & info [ "predictor" ] ~docv:"KIND"
        ~doc:"Branch predictor: always-taken, bimodal, gshare or tage.")

let budget_arg =
  Arg.(
    value
    & opt int Config.default.Config.depset_budget
    & info [ "budget" ] ~docv:"K" ~doc:"Dependency-set hardware budget.")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:"Record restriction provenance (disables caching).")

let sample_arg =
  Arg.(
    value & opt string "off"
    & info [ "sample" ] ~docv:"N:W[:P]"
        ~doc:
          "Two-tier sampled simulation (see levioso_sim --sample); \
           estimates never enter the result store.")

let submit_no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Bypass the daemon's result store for this batch.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the summaries as JSON — the same artifact a local \
           levioso_sim --json run of the matrix produces.")

let submit_cmd =
  let doc = "submit a workload x policy matrix and stream the results" in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      ret
        (const submit $ socket_arg $ workloads_arg $ policies_arg $ rob_arg
       $ predictor_arg $ budget_arg $ audit_arg $ sample_arg
       $ submit_no_cache_arg $ json_arg $ quiet_arg))

let cells_arg =
  Arg.(
    value & opt int 200
    & info [ "cells" ] ~docv:"N"
        ~doc:"Distinct cells to submit (reorder-buffer sweep).")

let stress_workload_arg =
  Arg.(
    value
    & opt string (List.hd Suite.names)
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to sweep.")

let stress_policy_arg =
  Arg.(
    value & opt string "unsafe"
    & info [ "p"; "policy" ] ~docv:"NAME" ~doc:"Policy to sweep.")

let stress_cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Let the sweep use the daemon's result store (default: bypass it \
           so every cell is real scheduled work).")

let stress_cmd =
  let doc = "queued-load exercise: one large batch of distinct cells" in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(
      ret
        (const stress $ socket_arg $ cells_arg $ stress_workload_arg
       $ stress_policy_arg $ stress_cache_arg))

let list_sub =
  Cmd.v
    (Cmd.info "list" ~doc:"list the daemon's workloads and policies")
    Term.(ret (const list_cmd $ socket_arg))

let ping_sub =
  Cmd.v
    (Cmd.info "ping" ~doc:"check daemon liveness")
    Term.(ret (const ping_cmd $ socket_arg))

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the raw schema-tagged snapshot instead of the \
           human-readable view.")

let stats_sub =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"print the daemon's queue/throughput/latency snapshot")
    Term.(ret (const stats_cmd $ socket_arg $ stats_json_arg))

let interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "interval" ] ~docv:"SECS"
        ~doc:"Seconds between refreshes (default 2).")

let iterations_arg =
  Arg.(
    value & opt int 0
    & info [ "iterations" ] ~docv:"N"
        ~doc:
          "Stop after $(docv) refreshes; 0 (the default) runs until \
           interrupted.")

let top_sub =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "live per-stage latency view (p50/p95/p99 over a sliding window, \
          redrawn in place on a terminal)")
    Term.(ret (const top_cmd $ socket_arg $ interval_arg $ iterations_arg))

let days_arg =
  Arg.(
    value & opt int 30
    & info [ "days" ] ~docv:"N"
        ~doc:"Delete entries older than $(docv) days (default 30).")

let prune_sub =
  Cmd.v
    (Cmd.info "prune" ~doc:"delete stale entries from the daemon's store")
    Term.(ret (const prune_cmd $ socket_arg $ days_arg))

let shutdown_sub =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"drain outstanding work and stop the daemon")
    Term.(ret (const shutdown_cmd $ socket_arg))

let history_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Read the time-series segments in $(docv) directly instead of \
           querying a live daemon — works after the daemon exited.")

let since_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "since" ] ~docv:"TS"
        ~doc:"Keep records with timestamp >= $(docv) (Unix epoch seconds).")

let until_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "until" ] ~docv:"TS"
        ~doc:"Keep records with timestamp <= $(docv) (Unix epoch seconds).")

let last_arg =
  Arg.(
    value & opt int 0
    & info [ "last" ] ~docv:"N"
        ~doc:"Keep only the newest $(docv) records; 0 (the default) = all.")

let history_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the schema-tagged levioso-history document instead of the \
           aligned-column view.")

let fields_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fields" ] ~docv:"A,B,C"
        ~doc:
          "Comma-separated field columns to show (default: a curated \
           operational set; any field recorded in the samples works, e.g. \
           exec_p95_s or gc_minor_collections).")

let history_sub =
  Cmd.v
    (Cmd.info "history"
       ~doc:
         "query the daemon's recorded telemetry time-series (or read \
          segment files directly with --dir)")
    Term.(
      ret
        (const history_cmd $ socket_arg $ history_dir_arg $ since_arg
       $ until_arg $ last_arg $ history_json_arg $ fields_arg))

let cmd =
  let doc = "levioso simulation-as-a-service daemon and client" in
  Cmd.group
    (Cmd.info "levioso_serve" ~doc)
    [
      serve_cmd;
      submit_cmd;
      stress_cmd;
      list_sub;
      ping_sub;
      stats_sub;
      top_sub;
      history_sub;
      prune_sub;
      shutdown_sub;
    ]

let () = exit (Cmd.eval cmd)
