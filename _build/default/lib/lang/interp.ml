exception Stuck of string

exception Halted

(* return value propagation out of inlined-call evaluation *)
exception Returning of int

type env = {
  mutable vars : (string * int ref) list;
  fns : (string, Ast.fn) Hashtbl.t;
  mem : int array;
  mutable fuel : int;
}

let mask env addr = addr land (Array.length env.mem - 1)

let lookup env x =
  match List.assoc_opt x env.vars with
  | Some r -> r
  | None -> raise (Stuck ("unbound variable " ^ x))

let bool_int b = if b then 1 else 0

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Lit n -> n
  | Ast.Var x -> !(lookup env x)
  | Ast.Neg a -> -eval env a
  | Ast.Not a -> bool_int (eval env a = 0)
  | Ast.Load a -> env.mem.(mask env (eval env a))
  | Ast.Rdcycle a ->
    (match a with
    | Some e -> ignore (eval env e : int)
    | None -> ());
    0
  | Ast.Binop (op, a, b) -> (
    let x = eval env a in
    let y = eval env b in
    match op with
    | Ast.Add -> x + y
    | Ast.Sub -> x - y
    | Ast.Mul -> x * y
    | Ast.Div -> if y = 0 then 0 else x / y
    | Ast.Rem -> if y = 0 then 0 else x mod y
    | Ast.And -> x land y
    | Ast.Or -> x lor y
    | Ast.Xor -> x lxor y
    | Ast.Shl -> x lsl (y land 63)
    | Ast.Shr -> x asr (y land 63)
    | Ast.Eq -> bool_int (x = y)
    | Ast.Ne -> bool_int (x <> y)
    | Ast.Lt -> bool_int (x < y)
    | Ast.Le -> bool_int (x <= y)
    | Ast.Gt -> bool_int (x > y)
    | Ast.Ge -> bool_int (x >= y)
    | Ast.Logic_and -> bool_int (x <> 0 && y <> 0)
    | Ast.Logic_or -> bool_int (x <> 0 || y <> 0))
  | Ast.Call (name, args) -> call env name args

and call env name args =
  let f =
    match Hashtbl.find_opt env.fns name with
    | Some f -> f
    | None -> raise (Stuck ("undefined function " ^ name))
  in
  let values = List.map (fun a -> eval env a) args in
  let saved = env.vars in
  env.vars <- List.map2 (fun p v -> (p, ref v)) f.Ast.params values;
  let result = (try block env f.Ast.body; 0 with Returning v -> v) in
  env.vars <- saved;
  result

and block env stmts =
  let saved = env.vars in
  List.iter (stmt env) stmts;
  env.vars <- saved

and stmt env (s : Ast.stmt) =
  env.fuel <- env.fuel - 1;
  if env.fuel <= 0 then raise (Stuck "out of fuel");
  match s with
  | Ast.Decl (x, e) ->
    let v = eval env e in
    env.vars <- (x, ref v) :: env.vars
  | Ast.Assign (x, e) -> lookup env x := eval env e
  | Ast.If (c, then_, else_) ->
    if eval env c <> 0 then block env then_
    else Option.iter (block env) else_
  | Ast.While (c, body) ->
    while eval env c <> 0 do
      env.fuel <- env.fuel - 1;
      if env.fuel <= 0 then raise (Stuck "out of fuel");
      block env body
    done
  | Ast.Store (a, v) ->
    let addr = mask env (eval env a) in
    env.mem.(addr) <- eval env v
  | Ast.Flush _ -> () (* caches are not architectural *)
  | Ast.Expr_stmt e -> ignore (eval env e : int)
  | Ast.Return e -> raise (Returning (Option.fold ~none:0 ~some:(eval env) e))
  | Ast.Halt -> raise Halted

let run ?(fuel = 10_000_000) ~mem fns =
  let table = Hashtbl.create 16 in
  List.iter (fun (f : Ast.fn) -> Hashtbl.replace table f.Ast.name f) fns;
  let env = { vars = []; fns = table; mem; fuel } in
  match Hashtbl.find_opt table "main" with
  | None -> raise (Stuck "no main")
  | Some main -> (
    try block env main.Ast.body with
    | Halted -> ()
    | Returning _ -> ())
