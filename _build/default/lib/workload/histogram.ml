(* Histogram (image/analytics flavour): bin addresses derive from loaded
   data (load-to-load dependence through address arithmetic) but the only
   branch is the counted loop, so branch pressure is low while transmitter
   density is high. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let size = 12000
let bins = 64
let bins_base = Layout.data_base
let input_base = Layout.data_base + 256

let mem_init mem =
  let rng = Layout.rng 3 in
  for i = 0 to size - 1 do
    mem.(input_base + i) <- Rng.int rng 100_000
  done

let build b =
  let i = Builder.fresh_reg b in
  let v = Builder.fresh_reg b in
  let bin = Builder.fresh_reg b in
  let count = Builder.fresh_reg b in
  let total = Builder.fresh_reg b in
  Builder.for_down b ~counter:i ~from:(Ir.Imm size) (fun () ->
      Builder.load b v (Ir.Reg i) (Ir.Imm input_base);
      Builder.alu b Ir.And bin (Ir.Reg v) (Ir.Imm (bins - 1));
      Builder.load b count (Ir.Reg bin) (Ir.Imm bins_base);
      Builder.add b count (Ir.Reg count) (Ir.Imm 1);
      Builder.store b (Ir.Reg bin) (Ir.Imm bins_base) (Ir.Reg count));
  (* checksum: weighted sum of bins *)
  Builder.mov b total (Ir.Imm 0);
  Builder.for_down b ~counter:i ~from:(Ir.Imm bins) (fun () ->
      Builder.load b count (Ir.Reg i) (Ir.Imm bins_base);
      Builder.mul b count (Ir.Reg count) (Ir.Reg i);
      Builder.add b total (Ir.Reg total) (Ir.Reg count));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg total);
  Builder.halt b

let workload =
  Workload.make ~name:"histogram"
    ~description:"data-dependent binning with read-modify-write updates"
    ~build ~mem_init
