module Cfg = Levioso_ir.Cfg

type loop = {
  header : int;
  back_edge_source : int;
  body : int list;
}

type t = {
  loop_list : loop list;
  depth : int array;
}

(* body of the natural loop of back edge u -> v: v plus everything that
   reaches u backwards without passing through v *)
let natural_loop cfg ~header ~latch =
  let in_body = Hashtbl.create 16 in
  Hashtbl.replace in_body header ();
  let rec pull b =
    if not (Hashtbl.mem in_body b) then begin
      Hashtbl.replace in_body b ();
      List.iter pull (Cfg.block cfg b).Cfg.preds
    end
  in
  pull latch;
  Hashtbl.fold (fun b () acc -> b :: acc) in_body [] |> List.sort compare

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let dom =
    Domtree.compute ~num_nodes:n ~entry:(Cfg.entry cfg)
      ~succs:(fun b -> (Cfg.block cfg b).Cfg.succs)
      ~preds:(fun b -> (Cfg.block cfg b).Cfg.preds)
  in
  let loop_list = ref [] in
  for u = 0 to n - 1 do
    if Domtree.reachable dom u then
      List.iter
        (fun v ->
          if Domtree.dominates dom v u then
            loop_list :=
              {
                header = v;
                back_edge_source = u;
                body = natural_loop cfg ~header:v ~latch:u;
              }
              :: !loop_list)
        (Cfg.block cfg u).Cfg.succs
  done;
  let loop_list =
    List.sort (fun a b -> compare (a.header, a.back_edge_source) (b.header, b.back_edge_source)) !loop_list
  in
  let depth = Array.make n 0 in
  (* distinct headers only: two back edges to one header are one loop *)
  let seen_headers = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if not (Hashtbl.mem seen_headers l.header) then begin
        Hashtbl.replace seen_headers l.header ();
        (* the union of bodies of all back edges sharing this header *)
        let body =
          List.concat_map
            (fun l' -> if l'.header = l.header then l'.body else [])
            loop_list
          |> List.sort_uniq compare
        in
        List.iter (fun b -> depth.(b) <- depth.(b) + 1) body
      end)
    loop_list;
  { loop_list; depth }

let loops t = t.loop_list

let depth_of_block t b = t.depth.(b)

let max_depth t = Array.fold_left max 0 t.depth

let headers t =
  List.map (fun l -> l.header) t.loop_list |> List.sort_uniq compare
