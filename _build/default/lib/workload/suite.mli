(** The synthetic benchmark suite standing in for SPEC CPU2017 (see
    DESIGN.md for the substitution argument).  Order is the plotting order
    of the evaluation figures. *)

val all : Workload.t list
(** The eleven kernels. *)

val names : string list

val find : string -> Workload.t option

val find_exn : string -> Workload.t
(** @raise Invalid_argument on unknown names. *)
