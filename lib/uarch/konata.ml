module Ir = Levioso_ir.Ir
module Stall = Levioso_telemetry.Stall
module Timeline = Levioso_telemetry.Timeline

let cause_code = function
  | Stall.Policy_gate -> "Gp"
  | Stall.Operand_wait -> "Op"
  | Stall.Lsq_order -> "Lq"
  | Stall.Exec_port -> "Xp"
  | Stall.Rob_full -> "Rf"

let timeline ?window program =
  let disasm pc =
    if pc >= 0 && pc < Array.length program then Ir.instr_to_string program.(pc)
    else Printf.sprintf "pc=%d" pc
  in
  Timeline.create ?window ~disasm ()

let feed tl ~cycle (event : Pipeline.event) =
  match event with
  | Pipeline.Fetched { seq; pc } -> Timeline.fetch tl ~cycle ~seq ~pc
  | Pipeline.Issued { seq; _ } -> Timeline.issue tl ~cycle ~seq
  | Pipeline.Completed { seq; _ } -> Timeline.complete tl ~cycle ~seq
  | Pipeline.Committed { seq; _ } -> Timeline.commit tl ~cycle ~seq
  | Pipeline.Branch_resolved { seq; taken; mispredicted; _ } ->
      Timeline.resolve tl ~cycle ~seq ~taken ~mispredicted
  | Pipeline.Squashed { boundary; count } ->
      Timeline.squash tl ~cycle ~boundary ~count

let feed_stall tl ~cycle ~seq ~pc:_ ~cause =
  Timeline.stall tl ~cycle ~seq
    ~cause:(Stall.cause_to_string cause)
    ~code:(cause_code cause)

let attach tl pipe =
  Pipeline.set_tracer pipe (fun ~cycle ev -> feed tl ~cycle ev);
  Pipeline.set_stall_tracer pipe (fun ~cycle ~seq ~pc ~cause ->
      feed_stall tl ~cycle ~seq ~pc ~cause)
