(* levioso_fuzz: the fuzzing / differential-testing front end.

   Examples:
     levioso_fuzz                              # 500 iterations, all oracles
     levioso_fuzz --seed 7 --iters 2000 -j 4   # parallel, still deterministic
     levioso_fuzz --oracle noninterference --time-budget 30
     levioso_fuzz --json --no-persist          # machine-readable, no corpus
     levioso_fuzz --replay fuzz/corpus         # regression-check the corpus
     levioso_fuzz --iters 50000 --progress     # live status line on stderr
     levioso_fuzz --list-oracles

   Iteration seeds derive from --seed by a SplitMix64 finalizer, and
   results fold into counters in input order, so any -j N run is
   bit-identical to -j 1 (given --iters rather than --time-budget).
   Failures are shrunk greedily and persisted under fuzz/corpus/ as
   self-describing .levir listings; exit status is 1 when any oracle
   failed (or any replayed corpus entry disagreed), 0 otherwise. *)

module Oracle = Levioso_fuzz.Oracle
module Campaign = Levioso_fuzz.Campaign
module Corpus = Levioso_fuzz.Corpus
module Json = Levioso_telemetry.Json
module Monitor = Levioso_telemetry.Monitor

let list_oracles () =
  List.iter
    (fun (o : Oracle.t) ->
      Printf.printf "%-18s %s\n" o.Oracle.name o.Oracle.describe)
    Oracle.all;
  `Ok ()

let replay_corpus ~config ~json dir =
  let files = Corpus.files dir in
  if files = [] then begin
    Printf.eprintf "no .levir files under %s\n" dir;
    `Ok ()
  end
  else begin
    let results =
      List.map
        (fun path ->
          match Corpus.load path with
          | Error msg -> (path, None, Error msg)
          | Ok entry -> (path, entry.Corpus.leak, Corpus.replay ~config entry))
        files
    in
    let bad = List.filter (fun (_, _, r) -> Result.is_error r) results in
    if json then
      Json.to_channel stdout
        (Json.Obj
           [
             ("replayed", Json.Int (List.length results));
             ("disagreements", Json.Int (List.length bad));
             ( "results",
               Json.List
                 (List.map
                    (fun (path, leak, r) ->
                      Json.Obj
                        [
                          ("path", Json.String path);
                          ( "ok",
                            match r with
                            | Ok () -> Json.Bool true
                            | Error msg -> Json.String msg );
                          ( "leak",
                            match leak with
                            | Some chain -> Json.String chain
                            | None -> Json.Null );
                        ])
                    results) );
           ])
    else
      List.iter
        (fun (path, leak, r) ->
          (match r with
          | Ok () -> Printf.printf "ok   %s\n" path
          | Error msg -> Printf.printf "FAIL %s: %s\n" path msg);
          (* recorded leak provenance rides along with the repro *)
          match leak with
          | Some chain ->
            String.split_on_char '\n' (String.trim chain)
            |> List.iter (fun l -> Printf.printf "     | %s\n" l)
          | None -> ())
        results;
    if bad = [] then `Ok () else `Error (false, "corpus replay disagreed")
  end

let record_anchors ~config ~dir specs =
  let record spec =
    match String.split_on_char ':' spec with
    | [ name; seed_str ] -> (
      match (Oracle.find name, int_of_string_opt seed_str) with
      | Some oracle, Some seed ->
        let outcome = oracle.Oracle.run ~config ~seed in
        let verdict, detail =
          match outcome.Oracle.verdict with
          | Oracle.Pass -> ("pass", "regression anchor")
          | Oracle.Fail f -> ("fail", f.Oracle.detail)
        in
        let program, source = Oracle.input_of oracle ~seed in
        let path =
          Corpus.save ~dir
            {
              Corpus.oracle = name;
              seed;
              verdict;
              detail;
              source;
              leak = None;
              program;
            }
        in
        Printf.printf "recorded %s (%s)\n" path verdict;
        Ok ()
      | _ ->
        Error (Printf.sprintf "bad --record %S (want ORACLE:SEED)" spec))
    | _ -> Error (Printf.sprintf "bad --record %S (want ORACLE:SEED)" spec)
  in
  let errors = List.filter_map (fun s -> Result.fold ~ok:(fun () -> None) ~error:Option.some (record s)) specs in
  match errors with
  | [] -> `Ok ()
  | e :: _ -> `Error (false, e)

let main seed iters time_budget jobs oracle_names corpus_dir no_persist
    shrink_budget max_failures json replay record list progress progress_file
    metrics_file =
  if list then list_oracles ()
  else
    let config = Levioso_fuzz.Gen.default_config in
    if record <> [] then record_anchors ~config ~dir:corpus_dir record
    else
    match replay with
    | Some dir -> replay_corpus ~config ~json dir
    | None -> (
      let unknown =
        List.filter (fun n -> Oracle.find n = None) oracle_names
      in
      if unknown <> [] then
        `Error
          ( false,
            Printf.sprintf "unknown oracle(s): %s (try --list-oracles)"
              (String.concat ", " unknown) )
      else if iters = 0 && time_budget = None then
        `Error (false, "--iters 0 needs a --time-budget")
      else begin
        let oracles =
          match oracle_names with
          | [] -> Oracle.all
          | names -> List.filter_map Oracle.find names
        in
        (* the monitor hangs off the campaign's chunk-boundary callback;
           it is observational only, so the report (and exit status) is
           the same with or without it *)
        let monitor =
          if progress || progress_file <> None || metrics_file <> None then begin
            let m =
              (* the status line shows on a TTY, is auto-suppressed when
                 stderr is piped, and --progress forces it regardless *)
              Monitor.create ~ansi:stderr ~force_ansi:progress
                ?json_path:progress_file ?metrics_path:metrics_file
                ~label:"levioso_fuzz" ()
            in
            if iters > 0 then Monitor.set_total m iters;
            Some m
          end
          else None
        in
        let on_progress =
          Option.map
            (fun m ~executed ~failures ->
              Monitor.progress m ~failures ~done_:executed ())
            monitor
        in
        let options =
          {
            Campaign.default_options with
            Campaign.seed;
            iters;
            time_budget;
            jobs;
            oracles;
            corpus_dir = (if no_persist then None else Some corpus_dir);
            shrink_budget;
            max_failures =
              (if max_failures <= 0 then None else Some max_failures);
            on_progress;
          }
        in
        let report = Campaign.run options in
        Option.iter Monitor.close monitor;
        if json then Json.to_channel stdout (Campaign.to_json report)
        else Campaign.print stdout report;
        if report.Campaign.failures = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d oracle failure(s)"
                (List.length report.Campaign.failures) )
      end)

open Cmdliner

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Base seed; every iteration derives its own seed from it.")

let iters_arg =
  Arg.(
    value & opt int 500
    & info [ "iters" ] ~docv:"N"
        ~doc:
          "Total iterations, spread round-robin over the selected oracles; \
           0 means unlimited (requires --time-budget).")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Stop at the first chunk boundary past $(docv) seconds of wall \
           clock (iteration count then depends on machine speed).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run iterations on $(docv) worker domains; output is \
           bit-identical to -j 1.")

let oracle_arg =
  let doc =
    "Oracle to run (repeatable; default all). Known: "
    ^ String.concat ", " Oracle.names
  in
  Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)

let corpus_arg =
  Arg.(
    value & opt string Corpus.default_dir
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for shrunk failure reproductions.")

let no_persist_arg =
  Arg.(
    value & flag
    & info [ "no-persist" ] ~doc:"Do not write corpus files on failure.")

let shrink_budget_arg =
  Arg.(
    value & opt int 2000
    & info [ "shrink-budget" ] ~docv:"N"
        ~doc:"Oracle re-evaluations the shrinker may spend per failure.")

let max_failures_arg =
  Arg.(
    value & opt int 20
    & info [ "max-failures" ] ~docv:"N"
        ~doc:
          "Stop early once $(docv) failures have been collected (each \
           failure costs a shrink run); 0 disables the cap.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the report as JSON (stable across -j settings: no \
           timing, no job count).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"DIR"
        ~doc:
          "Instead of fuzzing, reload every .levir file under $(docv) and \
           check that each recorded verdict still holds.")

let record_arg =
  Arg.(
    value & opt_all string []
    & info [ "record" ] ~docv:"ORACLE:SEED"
        ~doc:
          "Run the named oracle at $(docv) once and save its input and \
           verdict to the corpus as a regression anchor (repeatable).")

let list_arg =
  Arg.(
    value & flag & info [ "list-oracles" ] ~doc:"List oracles and exit.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Show an in-place status line on stderr, updated at chunk \
           boundaries (observational: the report is unchanged).")

let progress_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "progress-file" ] ~docv:"FILE"
        ~doc:
          "Atomically rewrite $(docv) with a JSON progress snapshot at \
           chunk boundaries.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Atomically rewrite $(docv) in OpenMetrics text format at \
           chunk boundaries.")

let cmd =
  let doc = "fuzz the simulator: differential and security oracles" in
  let info = Cmd.info "levioso_fuzz" ~doc in
  Cmd.v info
    Term.(
      ret
        (const main $ seed_arg $ iters_arg $ time_budget_arg $ jobs_arg
       $ oracle_arg $ corpus_arg $ no_persist_arg $ shrink_budget_arg
       $ max_failures_arg $ json_arg $ replay_arg $ record_arg $ list_arg
       $ progress_arg $ progress_file_arg $ metrics_arg))

let () = exit (Cmd.eval cmd)
