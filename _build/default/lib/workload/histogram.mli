(** data-dependent binning with read-modify-write updates — one kernel of the suite standing in for SPEC CPU2017; see the
    implementation header for the behavioural axes it stresses. *)

val workload : Workload.t
