(** The Lev language: a small C-like frontend for the simulator, making the
    full compiler-informed pipeline concrete — source → IR → reconvergence
    annotation ({!Levioso_core.Annotation}) → secure simulation.

    Grammar:
    {v
    program  := fn*
    fn       := "fn" name "(" [name ("," name)*] ")" block
    block    := "{" stmt* "}"
    stmt     := "var" name "=" expr ";"
              | name "=" expr ";"
              | "if" "(" expr ")" block ["else" block]
              | "while" "(" expr ")" block
              | "store" "(" expr "," expr ")" ";"
              | "flush" "(" expr ")" ";"
              | name "(" args ")" ";"
              | "return" [expr] ";"
              | "halt" ";"
    expr     := precedence-climbing over
                (lowest) || && | ^ & ==,!= <,<=,>,>= <<,>> +,- *,/,%
                with unary - and !, and primaries:
                integer | name | name "(" args ")"
                | "load" "(" expr ")" | "rdcycle" "(" [expr] ")" | "(" expr ")"
    v}

    Semantics notes:
    - all values are machine integers; comparisons and [!] yield 0/1;
      [&&]/[||] are boolean-valued but {e strict} (both sides always
      evaluate — there is one basic block per arm anyway on this scale);
    - [load]/[store] address words directly (no types, no arrays — index
      arithmetic is explicit, as in the paper's kernels);
    - [rdcycle(x)] reads the cycle counter once [x] is available —
      the timing primitive attack code needs;
    - functions are inlined (the ISA has no stack); recursion is a
      compile-time error;
    - execution starts at [main]; falling off [main] (or [return] in it)
      halts the machine. *)

val compile : string -> (Levioso_ir.Ir.program, string) result
(** Lex, parse, resolve, generate.  The first error wins; resolver errors
    arrive as one newline-separated batch. *)

val compile_exn : string -> Levioso_ir.Ir.program
(** @raise Failure on any compilation error. *)
