lib/uarch/predictor.mli: Config
