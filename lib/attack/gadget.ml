module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder

type t = {
  name : string;
  program : Ir.program;
  mem_init : int array -> unit;
  secret : int;
}

(* Fixed attack memory layout (word addresses). *)
let guard_ind_addr = 64  (* holds guard_addr: indirection doubles the window *)
let guard_addr = 72
let secret_addr = 128
let array1_base = 1024
let array1_size = 16
let victim_offset = 600  (* array1_base + 600 = the secret's address *)
let timing_results_base = 2048
let probe_base = 16384
let probe_values = 64
let line_words = 8

let probe_line_addr v = probe_base + (v * line_words)
let oob_secret_addr = array1_base + victim_offset
let reg_secret_addr = secret_addr

(* Decoy transmit value used during training: encodes one line past the
   probed range, so training never preheats a probed line. *)
let decoy = probe_values

(* Measure the reload time of every probe line and store it to
   [timing_results_base + v].  Each probe load's address depends on the
   preceding timestamp so the out-of-order core cannot hoist it; the whole
   loop is serialized behind [after] (the victim's guard value) through a
   dependency chain, playing the role of the lfence real PoCs issue before
   probing — otherwise the probe loads pre-execute speculatively under the
   still-unresolved victim branch and pollute their own lines. *)
let emit_timing_probe b ~after =
  let v = Builder.fresh_reg b in
  let addr = Builder.fresh_reg b in
  let t0 = Builder.fresh_reg b in
  let t1 = Builder.fresh_reg b in
  let x = Builder.fresh_reg b in
  Builder.alu b Ir.And t1 after (Ir.Imm 0);
  for _ = 1 to 8 do
    Builder.add b t1 (Ir.Reg t1) (Ir.Imm 0)
  done;
  Builder.for_down b ~counter:v ~from:(Ir.Imm probe_values) (fun () ->
      Builder.rdcycle ~after:(Ir.Reg t1) b t0;
      Builder.alu b Ir.And addr (Ir.Reg t0) (Ir.Imm 0);
      Builder.alu b Ir.Shl x (Ir.Reg v) (Ir.Imm 3);
      Builder.add b addr (Ir.Reg addr) (Ir.Reg x);
      Builder.load b x (Ir.Reg addr) (Ir.Imm probe_base);
      Builder.rdcycle ~after:(Ir.Reg x) b t1;
      Builder.sub b x (Ir.Reg t1) (Ir.Reg t0);
      Builder.store b (Ir.Reg v) (Ir.Imm timing_results_base) (Ir.Reg x))

(* Attack-round preparation: flush the guard indirection chain (so the
   victim branch resolves ~2 memory latencies late) and the probe array. *)
let emit_flushes b ~scratch1 ~scratch2 =
  Builder.flush b (Ir.Imm guard_ind_addr) (Ir.Imm 0);
  Builder.flush b (Ir.Imm guard_addr) (Ir.Imm 0);
  Builder.for_down b ~counter:scratch1 ~from:(Ir.Imm probe_values) (fun () ->
      Builder.alu b Ir.Shl scratch2 (Ir.Reg scratch1) (Ir.Imm 3);
      Builder.flush b (Ir.Reg scratch2) (Ir.Imm probe_base))

(* Load the guard value through its indirection (cheap while trained,
   two chained misses during the attack round). *)
let emit_guard_load b ~guard_ptr ~size =
  Builder.load b guard_ptr (Ir.Imm guard_ind_addr) (Ir.Imm 0);
  Builder.load b size (Ir.Reg guard_ptr) (Ir.Imm 0)

let base_mem_init mem =
  mem.(guard_ind_addr) <- guard_addr;
  for i = 0 to array1_size - 1 do
    (* benign in-bounds data transmits only the decoy line *)
    mem.(array1_base + i) <- decoy
  done

(* Spectre-v1 sandbox gadget.  One loop; the victim code (guard load +
   bounds-checked access + transmit) has a single static pc for its branch,
   which the benign rounds train not-taken; the final round (counter = 0)
   flushes and aims out of bounds. *)
let bounds_check_bypass ?(training_rounds = 40) ?(timing = false) ~secret () =
  assert (secret >= 0 && secret < probe_values);
  let b = Builder.create () in
  let t = Builder.fresh_reg b in
  let s1 = Builder.fresh_reg b in
  let s2 = Builder.fresh_reg b in
  let idx = Builder.fresh_reg b in
  let size = Builder.fresh_reg b in
  let guard_ptr = Builder.fresh_reg b in
  let v = Builder.fresh_reg b in
  Builder.for_down b ~counter:t ~from:(Ir.Imm (training_rounds + 1)) (fun () ->
      (* benign rounds sweep in-bounds indices; the final round aims at the
         secret's offset after flushing *)
      Builder.alu b Ir.And idx (Ir.Reg t) (Ir.Imm (array1_size - 1));
      Builder.if_then b
        ~cond:(Ir.Eq, Ir.Reg t, Ir.Imm 0)
        (fun () ->
          Builder.mov b idx (Ir.Imm victim_offset);
          emit_flushes b ~scratch1:s1 ~scratch2:s2);
      (* the victim *)
      emit_guard_load b ~guard_ptr ~size;
      Builder.if_then b
        ~cond:(Ir.Lt, Ir.Reg idx, Ir.Reg size)
        (fun () ->
          Builder.load b v (Ir.Reg idx) (Ir.Imm array1_base);
          Builder.alu b Ir.Shl v (Ir.Reg v) (Ir.Imm 3);
          Builder.load b v (Ir.Reg v) (Ir.Imm probe_base)));
  if timing then emit_timing_probe b ~after:(Ir.Reg size);
  Builder.halt b;
  {
    name = "bounds-check-bypass";
    program = Builder.build b;
    mem_init =
      (fun mem ->
        base_mem_init mem;
        mem.(guard_addr) <- array1_size;
        mem.(array1_base + victim_offset) <- secret);
    secret;
  }

(* Non-speculative-secret gadget.  The secret is loaded architecturally at
   program start and sits in a register (as in constant-time code); the
   benign rounds execute the guarded path with a decoy transmit value; the
   attack round switches the transmit register to the secret (harmless
   architecturally — the guard now steers away) and lets the trained
   predictor run the transmit on the wrong path. *)
let register_secret ?(training_rounds = 40) ?(timing = false) ~secret () =
  assert (secret >= 0 && secret < probe_values);
  let b = Builder.create () in
  let t = Builder.fresh_reg b in
  let s1 = Builder.fresh_reg b in
  let s2 = Builder.fresh_reg b in
  let trans = Builder.fresh_reg b in
  let x = Builder.fresh_reg b in
  let size = Builder.fresh_reg b in
  let guard_ptr = Builder.fresh_reg b in
  let secret_reg = Builder.fresh_reg b in
  let junk = Builder.fresh_reg b in
  (* the secret is read long before any speculation and simply kept in a
     register — no taint survives its commit *)
  Builder.load b secret_reg (Ir.Imm secret_addr) (Ir.Imm 0);
  Builder.for_down b ~counter:t ~from:(Ir.Imm (training_rounds + 1)) (fun () ->
      Builder.mov b trans (Ir.Imm (decoy * line_words));
      Builder.mov b x (Ir.Imm 0);
      Builder.if_then b
        ~cond:(Ir.Eq, Ir.Reg t, Ir.Imm 0)
        (fun () ->
          Builder.alu b Ir.Shl trans (Ir.Reg secret_reg) (Ir.Imm 3);
          Builder.mov b x (Ir.Imm 1_000_000);
          emit_flushes b ~scratch1:s1 ~scratch2:s2);
      (* the victim *)
      emit_guard_load b ~guard_ptr ~size;
      Builder.if_then b
        ~cond:(Ir.Lt, Ir.Reg x, Ir.Reg size)
        (fun () -> Builder.load b junk (Ir.Reg trans) (Ir.Imm probe_base)));
  if timing then emit_timing_probe b ~after:(Ir.Reg size);
  Builder.halt b;
  {
    name = "register-secret";
    program = Builder.build b;
    mem_init =
      (fun mem ->
        base_mem_init mem;
        mem.(guard_addr) <- 500;
        mem.(secret_addr) <- secret);
    secret;
  }
