test/test_attack.ml: Alcotest Levioso_attack Levioso_core Levioso_ir Levioso_uarch List Printf
