(** Machine-readable run summaries.

    One serializer for everything a finished pipeline run can report —
    [levioso_sim --json] and the bench harness both emit through this
    module, so downstream tooling sees a single schema:

    {v
    {"workload": …, "policy": …,
     "stats": {cycles, ipc, mpki, …},
     "cache": {l1_hits, …},
     "stalls": {total, by_cause: {policy_gate, operand_wait, lsq_order,
                rob_full, exec_port}, top_pcs: […]},
     "audit": {…},          (only when the run was audited)
     "host": {phases: {…}, total: {wall_s, minor_words, …}}}
                            (only when host profiling was requested)
    v} *)

val of_pipeline :
  ?workload:string ->
  ?policy:string ->
  ?host:(string * Levioso_telemetry.Hostprof.span) list ->
  ?top_k:int ->
  Pipeline.t ->
  Levioso_telemetry.Json.t
(** Summarize one finished run.  [workload]/[policy] label the cell when
    given; [top_k] (default 10) bounds the costliest-PC lists in the
    stall and audit breakdowns.  When the pipeline was created with an
    audit recorder, an ["audit"] section
    ([Levioso_telemetry.Audit.to_json]) is appended.  [host] attaches a
    host self-profiling section (named phases measured with
    [Levioso_telemetry.Hostprof.measure]); note the section carries wall
    clock, so summaries meant to be byte-compared across runs should
    omit it. *)

val of_sampled :
  ?workload:string ->
  ?policy:string ->
  ?host:(string * Levioso_telemetry.Hostprof.span) list ->
  ?top_k:int ->
  Sampler.result ->
  Levioso_telemetry.Json.t
(** Summarize a two-tier sampled run: same shape as {!of_pipeline}
    (stats/cache/stalls cover the detailed intervals) plus a ["sampled"]
    section carrying the cycle estimate, its error bound and the interval
    accounting. *)

val runs : Levioso_telemetry.Json.t list -> Levioso_telemetry.Json.t
(** Wrap per-run summaries as [{"schema_version": …, "runs": […]}] — for
    harnesses that serialize each cell as it finishes instead of keeping
    every pipeline (8 MB of simulated memory each) alive. *)

val matrix :
  (string * string * Pipeline.t) list -> Levioso_telemetry.Json.t
(** [matrix cells] with [(workload, policy, pipe)] triples:
    [{"runs": [summary, …]}]. *)
