lib/secure/dom.ml: Levioso_ir Levioso_uarch
