(** An append-only, schema-tagged, on-disk metrics time-series.

    The serve daemon samples its full operational state (queue gauges,
    latency percentiles, histogram mass, GC counters) at a fixed
    interval and appends each sample here; [levioso_serve history] and
    [levioso_report --dashboard] read the segments back.  Design goals,
    in the order they were traded off:

    - {b Durable and bounded.}  Samples land in numbered segment files
      ([seg-00000000.jsonl], …) under one directory.  The active segment
      is flushed after every record, so a reader (or a post-mortem) sees
      every completed line; rotation closes the active segment and opens
      the next, and retention unlinks whole rotated segments — never
      partial files — once the store exceeds a byte or age budget.
    - {b Self-describing.}  One record per line, minified JSON, tagged
      with [schema_version] and a [kind] ("levioso-tsdb-sample" or
      "levioso-tsdb-alert") so any consumer can validate before
      trusting layout.  Field values are bare floats; non-finite values
      are dropped at append time rather than smuggled through as null.
    - {b Deterministic when it matters.}  The clock is injectable.
      With a fixed clock the byte content of every segment is a pure
      function of the appended data, so tests can compare whole files.
      Writers read the clock exactly once per {!append} and never
      otherwise — a daemon started without [--history-out] constructs
      no [Tsdb.t] and therefore performs zero history clock reads. *)

type clock = unit -> float
(** Absolute seconds (Unix epoch in production). *)

type sample = {
  ts : float;  (** clock reading when the sample was appended *)
  fields : (string * float) list;
      (** metric name -> value, insertion order preserved *)
}

type alert = {
  a_ts : float;
  rule : string;  (** canonical rule text, e.g. ["total_p99_ms > 500 for 30s"] *)
  firing : bool;  (** [true] = transition to firing, [false] = resolved *)
}

type record = Sample of sample | Alert of alert

(** {1 Writing} *)

type t

val create :
  ?clock:clock ->
  ?max_segment_bytes:int ->
  ?max_total_bytes:int ->
  ?max_age_s:float ->
  dir:string ->
  unit ->
  t
(** Open (creating directories as needed) a store rooted at [dir].
    New records append to a fresh segment numbered after any already
    present, so restarts extend history instead of clobbering it.
    Defaults: [clock = Unix.gettimeofday], [max_segment_bytes] 256 KiB,
    [max_total_bytes] 16 MiB, [max_age_s] unbounded.  [create] itself
    never reads the clock. *)

val now : t -> float
(** Read the store's clock (counts as a clock read). *)

val append : ?ts:float -> t -> (string * float) list -> sample
(** Append one sample; returns it so the caller can reuse the
    timestamp (alert evaluation, rate deltas).  Without [?ts] the
    stamp costs exactly one clock read; callers that already read the
    clock (via {!now}, for rate computation) pass it explicitly and
    [append] reads nothing.  Non-finite field values are dropped.  May
    rotate the active segment and delete expired ones. *)

val append_alert : t -> ts:float -> rule:string -> firing:bool -> unit
(** Record an alert transition.  Takes the timestamp explicitly (alert
    evaluation always follows an {!append}) so it costs no clock read. *)

val close : t -> unit
(** Flush and close the active segment.  The [t] must not be used
    afterwards. *)

(** {1 Reading} *)

val segment_files : string -> string list
(** Absolute paths of the segment files under [dir], oldest first.
    Empty list when the directory is missing or holds no segments. *)

val read_dir :
  ?since:float -> ?until:float -> string -> (record list, string) result
(** Parse every segment under [dir] in timestamp order, keeping records
    with [since <= ts <= until].  Each line is schema-checked; a
    malformed line fails the whole read with a message naming the file
    and line number. *)

val samples : record list -> sample list
(** Just the [Sample] records, in order. *)

(** {1 Serialization} (exposed for the flight recorder and tests) *)

val sample_to_json : sample -> Json.t
val alert_to_json : alert -> Json.t

val record_of_json : Json.t -> (record, string) result
(** Inverse of the two printers; schema-checks first. *)
