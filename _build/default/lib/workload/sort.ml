(* Insertion sort (general integer-code flavour): the inner while-branch
   compares freshly loaded elements, mispredicts often near the insertion
   point, and every iteration moves data — branch-resolution latency and
   store/load traffic together. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let size = 220

let mem_init mem =
  let rng = Layout.rng 7 in
  for i = 0 to size - 1 do
    mem.(Layout.data_base + i) <- Rng.int rng 10_000
  done

let build b =
  let i = Builder.fresh_reg b in
  let j = Builder.fresh_reg b in
  let key = Builder.fresh_reg b in
  let probe = Builder.fresh_reg b in
  let stop = Builder.fresh_reg b in
  let check = Builder.fresh_reg b in
  Builder.mov b i (Ir.Imm 1);
  Builder.while_ b
    ~cond:(fun () -> (Ir.Lt, Ir.Reg i, Ir.Imm size))
    (fun () ->
      Builder.load b key (Ir.Reg i) (Ir.Imm Layout.data_base);
      Builder.mov b j (Ir.Reg i);
      Builder.mov b stop (Ir.Imm 0);
      Builder.while_ b
        ~cond:(fun () -> (Ir.Eq, Ir.Reg stop, Ir.Imm 0))
        (fun () ->
          Builder.if_then_else b
            ~cond:(Ir.Le, Ir.Reg j, Ir.Imm 0)
            (fun () -> Builder.mov b stop (Ir.Imm 1))
            (fun () ->
              Builder.load b probe (Ir.Reg j) (Ir.Imm (Layout.data_base - 1));
              Builder.if_then_else b
                ~cond:(Ir.Gt, Ir.Reg probe, Ir.Reg key)
                (fun () ->
                  Builder.store b (Ir.Reg j) (Ir.Imm Layout.data_base)
                    (Ir.Reg probe);
                  Builder.sub b j (Ir.Reg j) (Ir.Imm 1))
                (fun () -> Builder.mov b stop (Ir.Imm 1))));
      Builder.store b (Ir.Reg j) (Ir.Imm Layout.data_base) (Ir.Reg key);
      Builder.add b i (Ir.Reg i) (Ir.Imm 1));
  (* checksum: sampled order statistic sum *)
  Builder.mov b check (Ir.Imm 0);
  Builder.for_down b ~counter:j ~from:(Ir.Imm 16) (fun () ->
      Builder.mul b probe (Ir.Reg j) (Ir.Imm (size / 16));
      Builder.load b probe (Ir.Reg probe) (Ir.Imm Layout.data_base);
      Builder.add b check (Ir.Reg check) (Ir.Reg probe));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg check);
  Builder.halt b

let workload =
  Workload.make ~name:"sort"
    ~description:"insertion sort with mispredict-prone comparison branches"
    ~build ~mem_init
