(** Self-contained HTML rendering of a bench matrix.

    [render] turns a {!Summary.matrix} JSON value (the shape
    [levioso_bench --json] and [BENCH_matrix.json] emit) into one HTML
    document with inline CSS and inline SVG charts — no external
    resources, no scripts, so the file opens anywhere and the output is
    byte-deterministic for golden tests:

    - normalized execution overhead per policy, grouped by workload
      (the paper's fig. 3 shape), baseline = the ["unsafe"] run of the
      same workload when present;
    - stacked stall-cause bars per run;
    - the necessary/unnecessary restriction split per audited run;
    - a top-K restricted-PC table per audited run.

    Numbers are rendered with fixed precision; nothing in the output
    depends on time, locale or environment. *)

val render :
  ?title:string -> Levioso_telemetry.Json.t -> (string, string) result
(** [render matrix] is the full HTML document.  [Error] when [matrix]
    has no ["runs"] list. *)

val render_exn : ?title:string -> Levioso_telemetry.Json.t -> string
