lib/ir/builder.ml: Array Hashtbl Ir List Printf
