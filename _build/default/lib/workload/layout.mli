(** Shared memory-layout conventions for the workload kernels. *)

val result_addr : int
(** Every kernel stores its final checksum here. *)

val data_base : int
(** Start of kernel input data regions. *)

val rng : int -> Levioso_util.Rng.t
(** Kernel-seeded deterministic RNG for input generation. *)
