lib/analysis/postdom.ml: Domtree Levioso_ir List
