lib/workload/strsearch.mli: Workload
