let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let sum_logs = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (sum_logs /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    a.(idx)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let ratio a b = if b = 0.0 then 0.0 else a /. b

let overhead_pct ~baseline x =
  if baseline = 0.0 then 0.0 else (x /. baseline -. 1.0) *. 100.0
