examples/quickstart.ml: Array Levioso_core Levioso_ir Levioso_uarch List Printf String
