(* Append-only on-disk metrics time-series.  See tsdb.mli for the
   design contract; the invariants that matter here:

   - every completed record is one full line in exactly one segment
     file, flushed before [append] returns;
   - rotation and retention only ever create or unlink whole segment
     files, so concurrent readers of the directory see a consistent
     prefix of history;
   - the clock is read exactly once per [append] and nowhere else. *)

type clock = unit -> float

type sample = { ts : float; fields : (string * float) list }
type alert = { a_ts : float; rule : string; firing : bool }
type record = Sample of sample | Alert of alert

let sample_kind = "levioso-tsdb-sample"
let alert_kind = "levioso-tsdb-alert"

let sample_to_json s =
  Schema.tag
    [
      ("kind", Json.String sample_kind);
      ("ts", Json.float s.ts);
      ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.float v)) s.fields));
    ]

let alert_to_json a =
  Schema.tag
    [
      ("kind", Json.String alert_kind);
      ("ts", Json.float a.a_ts);
      ("rule", Json.String a.rule);
      ("state", Json.String (if a.firing then "firing" else "resolved"));
    ]

let record_of_json j =
  let ( let* ) = Result.bind in
  let* () = Schema.check ~what:"tsdb record" j in
  let str_field name =
    match Json.member name j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "tsdb record: missing %S field" name)
  in
  let float_field name =
    match Json.member name j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "tsdb record: missing %S field" name)
  in
  let* kind = str_field "kind" in
  let* ts = float_field "ts" in
  if kind = sample_kind then
    match Json.member "fields" j with
    | Some (Json.Obj kvs) ->
        let fields =
          List.filter_map
            (fun (k, v) ->
              match v with
              | Json.Float f -> Some (k, f)
              | Json.Int i -> Some (k, float_of_int i)
              | _ -> None)
            kvs
        in
        Ok (Sample { ts; fields })
    | _ -> Error "tsdb sample: missing \"fields\" object"
  else if kind = alert_kind then
    let* rule = str_field "rule" in
    let* state = str_field "state" in
    match state with
    | "firing" -> Ok (Alert { a_ts = ts; rule; firing = true })
    | "resolved" -> Ok (Alert { a_ts = ts; rule; firing = false })
    | s -> Error (Printf.sprintf "tsdb alert: unknown state %S" s)
  else Error (Printf.sprintf "tsdb record: unknown kind %S" kind)

let record_ts = function Sample s -> s.ts | Alert a -> a.a_ts
let samples records = List.filter_map (function Sample s -> Some s | Alert _ -> None) records

(* ---------- segment naming ---------- *)

let segment_name seq = Printf.sprintf "seg-%08d.jsonl" seq

let segment_seq name =
  (* [seg-00000042.jsonl] -> [Some 42] *)
  if
    String.length name = String.length "seg-00000000.jsonl"
    && String.sub name 0 4 = "seg-"
    && Filename.check_suffix name ".jsonl"
  then int_of_string_opt (String.sub name 4 8)
  else None

let segment_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let segs =
        Array.to_list names
        |> List.filter_map (fun n ->
               match segment_seq n with
               | Some seq -> Some (seq, Filename.concat dir n)
               | None -> None)
      in
      List.sort compare segs |> List.map snd

(* ---------- writer ---------- *)

type t = {
  dir : string;
  clock : clock;
  max_segment_bytes : int;
  max_total_bytes : int;
  max_age_s : float;
  mu : Mutex.t;
  mutable seq : int;  (* sequence number of the active segment *)
  mutable chan : out_channel option;  (* active segment, opened lazily *)
  mutable chan_bytes : int;  (* bytes written to the active segment *)
  mutable last_ts : float;  (* newest timestamp appended (age retention) *)
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ?(clock = Unix.gettimeofday) ?(max_segment_bytes = 256 * 1024)
    ?(max_total_bytes = 16 * 1024 * 1024) ?(max_age_s = infinity) ~dir () =
  mkdir_p dir;
  let seq =
    (* resume after any segment a previous process left behind *)
    List.fold_left
      (fun acc path ->
        match segment_seq (Filename.basename path) with
        | Some s when s >= acc -> s + 1
        | _ -> acc)
      0 (segment_files dir)
  in
  {
    dir;
    clock;
    max_segment_bytes;
    max_total_bytes;
    max_age_s;
    mu = Mutex.create ();
    seq;
    chan = None;
    chan_bytes = 0;
    last_ts = neg_infinity;
  }

let now t = t.clock ()

let active_chan t =
  match t.chan with
  | Some ch -> ch
  | None ->
      let ch = open_out (Filename.concat t.dir (segment_name t.seq)) in
      t.chan <- Some ch;
      t.chan_bytes <- 0;
      ch

let rotate_locked t =
  (match t.chan with
  | Some ch ->
      close_out ch;
      t.chan <- None;
      t.chan_bytes <- 0
  | None -> ());
  t.seq <- t.seq + 1

(* Last timestamp recorded in a segment file, for age-based retention of
   segments inherited from a previous process.  O(file), but only runs
   when retention actually considers deleting an old segment. *)
let file_last_ts path =
  let ic = open_in path in
  let last = ref neg_infinity in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.of_string line with
         | Ok j -> (
             match Json.member "ts" j with
             | Some (Json.Float f) -> last := f
             | Some (Json.Int i) -> last := float_of_int i
             | _ -> ())
         | Error _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  !last

let retain_locked t =
  (* Consider only rotated (closed) segments, oldest first; the active
     segment is never deleted out from under the writer. *)
  let rotated =
    List.filter
      (fun path ->
        match segment_seq (Filename.basename path) with
        | Some s -> s < t.seq
        | None -> false)
      (segment_files t.dir)
  in
  let sizes =
    List.map (fun p -> (p, try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0)) rotated
  in
  let total = ref (List.fold_left (fun acc (_, s) -> acc + s) t.chan_bytes sizes) in
  List.iter
    (fun (path, size) ->
      let too_big = !total > t.max_total_bytes in
      let too_old =
        t.max_age_s < infinity
        && t.last_ts > neg_infinity
        && t.last_ts -. file_last_ts path > t.max_age_s
      in
      if too_big || too_old then begin
        (try Sys.remove path with Sys_error _ -> ());
        total := !total - size
      end)
    sizes

let write_line t json =
  let line = Json.to_string ~minify:true json ^ "\n" in
  let len = String.length line in
  if t.chan_bytes > 0 && t.chan_bytes + len > t.max_segment_bytes then begin
    rotate_locked t;
    retain_locked t
  end;
  let ch = active_chan t in
  output_string ch line;
  flush ch;
  t.chan_bytes <- t.chan_bytes + len

let append ?ts t fields =
  let ts = match ts with Some ts -> ts | None -> t.clock () in
  let fields = List.filter (fun (_, v) -> Float.is_finite v) fields in
  let s = { ts; fields } in
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      t.last_ts <- ts;
      write_line t (sample_to_json s));
  s

let append_alert t ~ts ~rule ~firing =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () -> write_line t (alert_to_json { a_ts = ts; rule; firing }))

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      match t.chan with
      | Some ch ->
          close_out ch;
          t.chan <- None
      | None -> ())

(* ---------- reader ---------- *)

let read_dir ?(since = neg_infinity) ?(until = infinity) dir =
  let ( let* ) = Result.bind in
  let read_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line when String.trim line = "" -> loop (lineno + 1) acc
          | line -> (
              let where =
                Printf.sprintf "%s:%d" (Filename.basename path) lineno
              in
              match Json.of_string line with
              | Error e -> Error (Printf.sprintf "%s: %s" where e)
              | Ok j -> (
                  match record_of_json j with
                  | Error e -> Error (Printf.sprintf "%s: %s" where e)
                  | Ok r -> loop (lineno + 1) (r :: acc)))
        in
        loop 1 [])
  in
  let rec walk = function
    | [] -> Ok []
    | path :: rest ->
        let* records = read_file path in
        let* tail = walk rest in
        Ok (records @ tail)
  in
  let* all = walk (segment_files dir) in
  Ok (List.filter (fun r -> record_ts r >= since && record_ts r <= until) all)
