lib/lang/codegen.mli: Ast Levioso_ir
