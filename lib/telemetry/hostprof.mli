(** Host self-profiling: wall clock + allocator behavior per phase.

    Wraps a computation with [Unix.gettimeofday] and [Gc.quick_stat]
    deltas so every JSON summary and bench-matrix cell can carry a
    [host] section.  Allocation counts are near-deterministic for a
    deterministic computation (and therefore a useful regression
    metric); wall clock is not, which is why [host] sections are kept
    out of the byte-compared simulation artifacts and only attached to
    timing-oriented ones (cell provenance, [BENCH_matrix.json]). *)

type span = {
  wall_s : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;  (** peak major-heap size over the span *)
}

val measure : (unit -> 'a) -> 'a * span
(** Runs the thunk on the calling domain; GC deltas are per-domain
    (OCaml 5), so the span reflects the thunk's own allocation as long
    as it does not itself spawn domains. *)

val add : span -> span -> span
(** Componentwise sum; [top_heap_words] is the max. *)

val zero : span

val alloc_mwords : span -> float
(** Words allocated (minor + major - promoted, so promotions are not
    double-counted), in millions. *)

val to_json : span -> Json.t

val phases_to_json : (string * span) list -> Json.t
(** [{"phases": {name: span, ...}, "total": span}] — the [host]
    section attached to summaries and bench cells. *)
