(* Hash-probe join (database/gcc symbol-table flavour): hash an input key,
   load the bucket's stored key, branch on match (memory-dependent branch),
   accumulate the payload on hit.  Addresses are hash-computed (not
   load-derived), so taint-style defenses are cheap here while
   delay-all-transmitters keeps paying for the match branches. *)

module Ir = Levioso_ir.Ir
module Builder = Levioso_ir.Builder
module Rng = Levioso_util.Rng

let buckets = 1024  (* power of two; bucket i at data_base + 2i: key, value *)
let probes = 4000

let bucket_addr i = Layout.data_base + (2 * i)

let hash key = key * 2654435761 land (buckets - 1)

let mem_init mem =
  let rng = Layout.rng 2 in
  (* fill ~60% of buckets with key = hash-consistent values *)
  for _slot = 0 to buckets - 1 do
    if Rng.chance rng 0.6 then begin
      let key = Rng.int rng 1_000_000 in
      mem.(bucket_addr (hash key)) <- key;
      mem.(bucket_addr (hash key) + 1) <- key mod 251
    end
  done

let build b =
  let q = Builder.fresh_reg b in
  let key = Builder.fresh_reg b in
  let h = Builder.fresh_reg b in
  let stored = Builder.fresh_reg b in
  let payload = Builder.fresh_reg b in
  let acc = Builder.fresh_reg b in
  Builder.mov b acc (Ir.Imm 0);
  Builder.for_down b ~counter:q ~from:(Ir.Imm probes) (fun () ->
      Builder.mul b key (Ir.Reg q) (Ir.Imm 1103515245);
      Builder.alu b Ir.Rem key (Ir.Reg key) (Ir.Imm 1_000_000);
      Builder.mul b h (Ir.Reg key) (Ir.Imm 2654435761);
      Builder.alu b Ir.And h (Ir.Reg h) (Ir.Imm (buckets - 1));
      Builder.alu b Ir.Shl h (Ir.Reg h) (Ir.Imm 1);
      Builder.load b stored (Ir.Reg h) (Ir.Imm Layout.data_base);
      Builder.if_then b
        ~cond:(Ir.Eq, Ir.Reg stored, Ir.Reg key)
        (fun () ->
          Builder.load b payload (Ir.Reg h) (Ir.Imm (Layout.data_base + 1));
          Builder.add b acc (Ir.Reg acc) (Ir.Reg payload)));
  Builder.store b (Ir.Imm Layout.result_addr) (Ir.Imm 0) (Ir.Reg acc);
  Builder.halt b

let workload =
  Workload.make ~name:"hashjoin"
    ~description:"hash-table probe with match branches (database join kernel)"
    ~build ~mem_init
