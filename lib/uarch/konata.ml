module Ir = Levioso_ir.Ir
module Stall = Levioso_telemetry.Stall
module Timeline = Levioso_telemetry.Timeline

let cause_code = function
  | Stall.Policy_gate -> "Gp"
  | Stall.Operand_wait -> "Op"
  | Stall.Lsq_order -> "Lq"
  | Stall.Exec_port -> "Xp"
  | Stall.Rob_full -> "Rf"

let timeline ?window program =
  let disasm pc =
    if pc >= 0 && pc < Array.length program then Ir.instr_to_string program.(pc)
    else Printf.sprintf "pc=%d" pc
  in
  Timeline.create ?window ~disasm ()

let feed tl ~cycle (event : Pipeline.event) =
  match event with
  | Pipeline.Fetched { seq; pc } -> Timeline.fetch tl ~cycle ~seq ~pc
  | Pipeline.Issued { seq; _ } -> Timeline.issue tl ~cycle ~seq
  | Pipeline.Completed { seq; _ } -> Timeline.complete tl ~cycle ~seq
  | Pipeline.Committed { seq; _ } -> Timeline.commit tl ~cycle ~seq
  | Pipeline.Branch_resolved { seq; taken; mispredicted; _ } ->
      Timeline.resolve tl ~cycle ~seq ~taken ~mispredicted
  | Pipeline.Squashed { boundary; count } ->
      Timeline.squash tl ~cycle ~boundary ~count

let feed_stall tl ~cycle ~seq ~pc:_ ~cause =
  Timeline.stall tl ~cycle ~seq
    ~cause:(Stall.cause_to_string cause)
    ~code:(cause_code cause)

(* Taint highlighting: flow-tracer source/transmit events become lane-1
   stage marks, so leaking instructions stand out in Konata's view.  The
   feeder keeps its own node-id -> seq map (Source/Transmit events name
   graph nodes, not ROB slots). *)
let flow_feeder tl =
  let module Flowtrace = Levioso_telemetry.Flowtrace in
  let seq_of = Hashtbl.create 64 in
  let mark ~cycle id cause code =
    match Hashtbl.find_opt seq_of id with
    | Some seq -> Timeline.stall tl ~cycle ~seq ~cause ~code
    | None -> ()
  in
  fun ~cycle (ev : Flowtrace.event) ->
    match ev with
    | Flowtrace.Node { id; seq; _ } -> Hashtbl.replace seq_of id seq
    | Flowtrace.Source { id; _ } -> mark ~cycle id "taint source" "Ts"
    | Flowtrace.Transmit { id; _ } -> mark ~cycle id "tainted transmit" "Tn"
    | Flowtrace.Edge _ | Flowtrace.Resolved _ | Flowtrace.Committed _
    | Flowtrace.Squashed _ ->
      ()

let attach tl pipe =
  Pipeline.set_tracer pipe (fun ~cycle ev -> feed tl ~cycle ev);
  Pipeline.set_stall_tracer pipe (fun ~cycle ~seq ~pc ~cause ->
      feed_stall tl ~cycle ~seq ~pc ~cause)
