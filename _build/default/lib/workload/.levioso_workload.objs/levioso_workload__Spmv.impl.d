lib/workload/spmv.ml: Array Fun Layout Levioso_ir Levioso_util Workload
