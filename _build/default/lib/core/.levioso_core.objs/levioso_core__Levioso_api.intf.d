lib/core/levioso_api.mli: Levioso_ir Levioso_uarch
