(* Recursive descent with precedence climbing for binary operators. *)

type state = {
  mutable tokens : Lexer.located list;
}

exception Error of string

let fail (loc : Lexer.located) msg =
  raise
    (Error
       (Printf.sprintf "line %d, col %d: %s (at '%s')" loc.Lexer.line
          loc.Lexer.col msg
          (Lexer.token_to_string loc.Lexer.token)))

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> assert false (* the lexer always appends Eof *)

let advance st =
  match st.tokens with
  | _ :: rest when rest <> [] -> st.tokens <- rest
  | _ -> ()

let eat st token msg =
  let t = peek st in
  if t.Lexer.token = token then advance st else fail t msg

let eat_ident st msg =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Ident name ->
    advance st;
    name
  | _ -> fail t msg

(* binary operator precedence: higher binds tighter *)
let binop_of_token = function
  | Lexer.Or_or -> Some (Ast.Logic_or, 1)
  | Lexer.And_and -> Some (Ast.Logic_and, 2)
  | Lexer.Pipe -> Some (Ast.Or, 3)
  | Lexer.Caret -> Some (Ast.Xor, 4)
  | Lexer.Amp -> Some (Ast.And, 5)
  | Lexer.Eq -> Some (Ast.Eq, 6)
  | Lexer.Ne -> Some (Ast.Ne, 6)
  | Lexer.Lt -> Some (Ast.Lt, 7)
  | Lexer.Le -> Some (Ast.Le, 7)
  | Lexer.Gt -> Some (Ast.Gt, 7)
  | Lexer.Ge -> Some (Ast.Ge, 7)
  | Lexer.Shl -> Some (Ast.Shl, 8)
  | Lexer.Shr -> Some (Ast.Shr, 8)
  | Lexer.Plus -> Some (Ast.Add, 9)
  | Lexer.Minus -> Some (Ast.Sub, 9)
  | Lexer.Star -> Some (Ast.Mul, 10)
  | Lexer.Slash -> Some (Ast.Div, 10)
  | Lexer.Percent -> Some (Ast.Rem, 10)
  | _ -> None

let rec expr st = binary st 1

and binary st min_prec =
  let lhs = ref (unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st).Lexer.token with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      (* left-associative: the right side binds at prec + 1 *)
      let rhs = binary st (prec + 1) in
      lhs := Ast.Binop (op, !lhs, rhs)
    | Some _ | None -> continue_ := false
  done;
  !lhs

and unary st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Minus ->
    advance st;
    Ast.Neg (unary st)
  | Lexer.Bang ->
    advance st;
    Ast.Not (unary st)
  | _ -> primary st

and primary st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Int n ->
    advance st;
    Ast.Lit n
  | Lexer.Lparen ->
    advance st;
    let e = expr st in
    eat st Lexer.Rparen "expected )";
    e
  | Lexer.Ident "load" when looks_like_call st ->
    advance st;
    eat st Lexer.Lparen "expected (";
    let addr = expr st in
    eat st Lexer.Rparen "expected )";
    Ast.Load addr
  | Lexer.Ident "rdcycle" when looks_like_call st ->
    advance st;
    eat st Lexer.Lparen "expected (";
    let arg =
      if (peek st).Lexer.token = Lexer.Rparen then None else Some (expr st)
    in
    eat st Lexer.Rparen "expected )";
    Ast.Rdcycle arg
  | Lexer.Ident name when looks_like_call st ->
    advance st;
    let args = call_args st in
    Ast.Call (name, args)
  | Lexer.Ident name ->
    advance st;
    Ast.Var name
  | _ -> fail t "expected an expression"

and looks_like_call st =
  match st.tokens with
  | { Lexer.token = Lexer.Ident _; _ } :: { Lexer.token = Lexer.Lparen; _ } :: _ ->
    true
  | _ -> false

and call_args st =
  eat st Lexer.Lparen "expected (";
  if (peek st).Lexer.token = Lexer.Rparen then begin
    advance st;
    []
  end
  else begin
    let rec more acc =
      let e = expr st in
      match (peek st).Lexer.token with
      | Lexer.Comma ->
        advance st;
        more (e :: acc)
      | _ ->
        eat st Lexer.Rparen "expected , or )";
        List.rev (e :: acc)
    in
    more []
  end

let rec block st =
  eat st Lexer.Lbrace "expected {";
  let stmts = ref [] in
  while (peek st).Lexer.token <> Lexer.Rbrace do
    stmts := statement st :: !stmts
  done;
  advance st;
  List.rev !stmts

and statement st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Kw_var ->
    advance st;
    let name = eat_ident st "expected variable name" in
    eat st Lexer.Assign "expected =";
    let e = expr st in
    eat st Lexer.Semi "expected ;";
    Ast.Decl (name, e)
  | Lexer.Kw_if ->
    advance st;
    eat st Lexer.Lparen "expected (";
    let cond = expr st in
    eat st Lexer.Rparen "expected )";
    let then_ = block st in
    let else_ =
      if (peek st).Lexer.token = Lexer.Kw_else then begin
        advance st;
        Some (block st)
      end
      else None
    in
    Ast.If (cond, then_, else_)
  | Lexer.Kw_while ->
    advance st;
    eat st Lexer.Lparen "expected (";
    let cond = expr st in
    eat st Lexer.Rparen "expected )";
    Ast.While (cond, block st)
  | Lexer.Kw_return ->
    advance st;
    if (peek st).Lexer.token = Lexer.Semi then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = expr st in
      eat st Lexer.Semi "expected ;";
      Ast.Return (Some e)
    end
  | Lexer.Kw_halt ->
    advance st;
    eat st Lexer.Semi "expected ;";
    Ast.Halt
  | Lexer.Ident "store" when looks_like_call st ->
    advance st;
    eat st Lexer.Lparen "expected (";
    let addr = expr st in
    eat st Lexer.Comma "expected ,";
    let value = expr st in
    eat st Lexer.Rparen "expected )";
    eat st Lexer.Semi "expected ;";
    Ast.Store (addr, value)
  | Lexer.Ident "flush" when looks_like_call st ->
    advance st;
    eat st Lexer.Lparen "expected (";
    let addr = expr st in
    eat st Lexer.Rparen "expected )";
    eat st Lexer.Semi "expected ;";
    Ast.Flush addr
  | Lexer.Ident name when looks_like_call st ->
    advance st;
    let args = call_args st in
    eat st Lexer.Semi "expected ;";
    Ast.Expr_stmt (Ast.Call (name, args))
  | Lexer.Ident name ->
    advance st;
    eat st Lexer.Assign "expected = (assignment)";
    let e = expr st in
    eat st Lexer.Semi "expected ;";
    Ast.Assign (name, e)
  | _ -> fail t "expected a statement"

let fn st =
  let t = peek st in
  eat st Lexer.Kw_fn "expected fn";
  let name = eat_ident st "expected function name" in
  eat st Lexer.Lparen "expected (";
  let params =
    if (peek st).Lexer.token = Lexer.Rparen then begin
      advance st;
      []
    end
    else begin
      let rec more acc =
        let p = eat_ident st "expected parameter name" in
        match (peek st).Lexer.token with
        | Lexer.Comma ->
          advance st;
          more (p :: acc)
        | _ ->
          eat st Lexer.Rparen "expected , or )";
          List.rev (p :: acc)
      in
      more []
    end
  in
  let body = block st in
  { Ast.name; params; body; line = t.Lexer.line }

let program st =
  let fns = ref [] in
  while (peek st).Lexer.token <> Lexer.Eof do
    fns := fn st :: !fns
  done;
  List.rev !fns

let with_tokens source k =
  match Lexer.tokenize source with
  | Error msg -> Result.Error msg
  | Ok tokens -> (
    let st = { tokens } in
    try Ok (k st) with Error msg -> Result.Error msg)

let parse source =
  with_tokens source (fun st ->
      let p = program st in
      p)

let parse_expr source =
  with_tokens source (fun st ->
      let e = expr st in
      let t = peek st in
      if t.Lexer.token <> Lexer.Eof then fail t "trailing tokens after expression";
      e)
