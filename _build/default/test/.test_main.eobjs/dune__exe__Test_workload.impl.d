test/test_workload.ml: Alcotest Array Levioso_analysis Levioso_core Levioso_ir Levioso_uarch Levioso_workload List Printf
