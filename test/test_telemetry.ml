(* The telemetry layer: JSON tree, counter/histogram registry, stall
   attribution and trace sinks — plus the end-to-end invariants the
   machine-readable simulator reports rely on. *)

module Json = Levioso_telemetry.Json
module Monitor = Levioso_telemetry.Monitor
module Registry = Levioso_telemetry.Registry
module Stall = Levioso_telemetry.Stall
module Trace = Levioso_telemetry.Trace
module Config = Levioso_uarch.Config
module Pipeline = Levioso_uarch.Pipeline
module Sim_stats = Levioso_uarch.Sim_stats
module Summary = Levioso_uarch.Summary
module Parser = Levioso_ir.Parser
module Policy_registry = Levioso_core.Registry

(* --- Json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("string", Json.String "hi \"there\"\n");
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
      ]
  in
  let parsed = Json.of_string_exn (Json.to_string v) in
  Alcotest.(check bool) "pretty roundtrip" true (parsed = v);
  let parsed_min = Json.of_string_exn (Json.to_string ~minify:true v) in
  Alcotest.(check bool) "minified roundtrip" true (parsed_min = v)

let test_json_parse_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "parsed invalid JSON: %s" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  let v = Json.of_string_exn {|{"a": {"b": [1, 2.5, "x"]}}|} in
  let b = Json.member_exn "b" (Json.member_exn "a" v) in
  (match Json.to_list_exn b with
  | [ x; y; z ] ->
    Alcotest.(check int) "int elem" 1 (Json.to_int_exn x);
    Alcotest.(check (float 1e-9)) "float elem" 2.5 (Json.to_float_exn y);
    Alcotest.(check string) "string elem" "x" (Json.to_string_exn z)
  | _ -> Alcotest.fail "wrong list shape");
  Alcotest.(check bool) "missing member" true (Json.member "zzz" v = None)

(* --- Registry ------------------------------------------------------- *)

let test_counter_semantics () =
  let r = Registry.create () in
  let c = Registry.counter r "hits" in
  Registry.Counter.incr c;
  Registry.Counter.add c 10;
  Alcotest.(check int) "value" 11 (Registry.Counter.value c);
  (* find-or-create returns the same instrument *)
  let c' = Registry.counter r "hits" in
  Registry.Counter.incr c';
  Alcotest.(check int) "shared" 12 (Registry.Counter.value c);
  Alcotest.(check (option int)) "read by name" (Some 12)
    (Registry.counter_value r "hits");
  Alcotest.(check (option int)) "unknown name" None
    (Registry.counter_value r "nope");
  (* a name cannot be both a counter and a histogram *)
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Registry.histogram: hits exists as a counter")
    (fun () -> ignore (Registry.histogram r "hits"))

let test_histogram_semantics () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" in
  List.iter (Registry.Histogram.observe h) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "count" 5 (Registry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Registry.Histogram.mean h);
  Alcotest.(check int) "p50" 5 (Registry.Histogram.percentile h 50.0);
  Alcotest.(check int) "max" 9 (Registry.Histogram.max_value h);
  (* p95 of 100 observations 1..100 is 95 under nearest-rank *)
  let h2 = Registry.histogram r "lat2" in
  for i = 1 to 100 do
    Registry.Histogram.observe h2 i
  done;
  Alcotest.(check int) "p95" 95 (Registry.Histogram.percentile h2 95.0)

let test_registry_scoping () =
  let root = Registry.create () in
  let a = Registry.scope root "levioso" in
  let b = Registry.scope root "fence" in
  Registry.Counter.add (Registry.counter a "stalls") 3;
  Registry.Counter.add (Registry.counter b "stalls") 8;
  (* same relative name, distinct instruments *)
  Alcotest.(check (option int)) "scope a" (Some 3)
    (Registry.counter_value a "stalls");
  Alcotest.(check (option int)) "scope b" (Some 8)
    (Registry.counter_value b "stalls");
  Alcotest.(check (option int)) "root sees full name" (Some 3)
    (Registry.counter_value root "levioso/stalls");
  (* root enumerates both; each scope only itself, names stripped *)
  Alcotest.(check (list string))
    "root names"
    [ "fence/stalls"; "levioso/stalls" ]
    (Registry.names root);
  Alcotest.(check (list string)) "scoped names" [ "stalls" ] (Registry.names a);
  (* reset is scope-local *)
  Registry.reset a;
  Alcotest.(check (option int)) "reset a" (Some 0)
    (Registry.counter_value a "stalls");
  Alcotest.(check (option int)) "b untouched" (Some 8)
    (Registry.counter_value b "stalls")

let test_registry_json () =
  let r = Registry.create () in
  Registry.Counter.add (Registry.counter r "c") 4;
  Registry.Histogram.observe (Registry.histogram r "h") 10;
  let j = Registry.to_json r in
  Alcotest.(check int) "counter field" 4 (Json.to_int_exn (Json.member_exn "c" j));
  let h = Json.member_exn "h" j in
  Alcotest.(check int) "hist count" 1
    (Json.to_int_exn (Json.member_exn "count" h));
  Alcotest.(check int) "hist p95" 10 (Json.to_int_exn (Json.member_exn "p95" h))

(* --- Stall attribution ---------------------------------------------- *)

let test_stall_table () =
  let t = Stall.create ~num_pcs:8 in
  for _ = 1 to 5 do
    Stall.charge t ~cause:Stall.Policy_gate ~pc:3
  done;
  for _ = 1 to 2 do
    Stall.charge t ~cause:Stall.Operand_wait ~pc:3
  done;
  Stall.charge t ~cause:Stall.Rob_full ~pc:0;
  Alcotest.(check int) "total" 8 (Stall.total t);
  Alcotest.(check int) "policy gate" 5 (Stall.count t Stall.Policy_gate);
  Alcotest.(check int) "per pc" 7 (Stall.per_pc_total t ~pc:3);
  (match Stall.top_k t ~k:2 with
  | [ (3, 7, causes); (0, 1, _) ] ->
    Alcotest.(check int) "cause split" 5 (List.assoc Stall.Policy_gate causes)
  | other ->
    Alcotest.failf "unexpected top_k shape (%d entries)" (List.length other));
  Alcotest.check_raises "pc bounds"
    (Invalid_argument "Stall.charge: pc 9 out of range") (fun () ->
      Stall.charge t ~cause:Stall.Exec_port ~pc:9)

(* A loop with a data-dependent branch and loads, so every policy has
   something to restrict. *)
let kernel_src =
  {|
    mov r1, #0
    mov r2, #0
  head:
    bge r1, #48, out
    load r3, [r1 + #256]
    blt r3, #6, skip
    load r4, [r3 + #512]
    add r2, r2, r4
  skip:
    add r1, r1, #1
    jump head
  out:
    halt
  |}

let run_kernel policy =
  let program = Parser.parse_exn kernel_src in
  let config = { Config.default with Config.mem_words = 65536 } in
  let pipe =
    Pipeline.create
      ~mem_init:(fun mem ->
        for i = 0 to 63 do
          mem.(256 + i) <- (i * 13) mod 11
        done)
      config
      ~policy:(Policy_registry.find_exn policy)
      program
  in
  Pipeline.run pipe;
  pipe

(* The invariant the JSON stall breakdown advertises: the Policy_gate
   charges are exactly the cycles the legacy counter observed — every
   per-cycle policy refusal is attributed, and nothing else lands in
   that bucket. *)
let test_attribution_matches_policy_stalls () =
  List.iter
    (fun policy ->
      let pipe = run_kernel policy in
      let stats = Pipeline.stats pipe in
      let stall = Pipeline.stall_attribution pipe in
      Alcotest.(check int)
        (policy ^ ": policy_gate = policy_stall_cycles")
        stats.Sim_stats.policy_stall_cycles
        (Stall.count stall Stall.Policy_gate);
      Alcotest.(check int)
        (policy ^ ": by_cause sums to total")
        (Stall.total stall)
        (List.fold_left ( + ) 0 (List.map snd (Stall.by_cause stall))))
    [ "unsafe"; "fence"; "delay"; "levioso" ]

let test_attribution_unsafe_has_no_policy_gate () =
  let stall = Pipeline.stall_attribution (run_kernel "unsafe") in
  Alcotest.(check int) "no gate charges" 0 (Stall.count stall Stall.Policy_gate);
  Alcotest.(check bool) "but stalls exist" true (Stall.total stall > 0)

let test_attribution_per_pc_consistency () =
  let stall = Pipeline.stall_attribution (run_kernel "delay") in
  let program_len = List.length (String.split_on_char '\n' kernel_src) in
  let sum = ref 0 in
  for pc = 0 to program_len do
    sum := !sum + Stall.per_pc_total stall ~pc
  done;
  Alcotest.(check int) "per-pc totals sum to total" (Stall.total stall) !sum;
  (* top_k is sorted descending and bounded *)
  let top = Stall.top_k stall ~k:3 in
  Alcotest.(check bool) "at most k" true (List.length top <= 3);
  let totals = List.map (fun (_, t, _) -> t) top in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) totals) totals

(* --- Trace sinks ---------------------------------------------------- *)

let mk_event i =
  { Trace.cycle = i; seq = i; pc = i mod 7; stage = "issue"; args = [] }

let test_trace_sampling () =
  let got = ref [] in
  let sink = Trace.of_fn ~every:3 (fun e -> got := e.Trace.cycle :: !got) in
  for i = 0 to 9 do
    Trace.emit sink (mk_event i)
  done;
  Trace.close sink;
  Alcotest.(check (list int)) "kept every 3rd" [ 0; 3; 6; 9 ] (List.rev !got);
  Alcotest.(check int) "seen" 10 (Trace.seen sink);
  Alcotest.(check int) "written" 4 (Trace.written sink)

let with_temp_trace ~format ~every emit_n =
  let file = Filename.temp_file "levioso_trace" ".out" in
  let oc = open_out file in
  let sink = Trace.to_channel ~every ~format oc in
  Trace.begin_process sink ~name:"test/run";
  for i = 0 to emit_n - 1 do
    Trace.emit sink (mk_event i)
  done;
  Trace.close sink;
  close_out oc;
  let ic = open_in file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  contents

let test_trace_chrome_format () =
  let contents = with_temp_trace ~format:Trace.Chrome ~every:1 5 in
  let j = Json.of_string_exn contents in
  let events = Json.to_list_exn (Json.member_exn "traceEvents" j) in
  (* 1 process_name metadata record + 5 events *)
  Alcotest.(check int) "event count" 6 (List.length events);
  let meta = List.hd events in
  Alcotest.(check string) "metadata" "process_name"
    (Json.to_string_exn (Json.member_exn "name" meta));
  let e = List.nth events 1 in
  Alcotest.(check string) "ph" "X" (Json.to_string_exn (Json.member_exn "ph" e));
  Alcotest.(check int) "ts" 0 (Json.to_int_exn (Json.member_exn "ts" e))

let test_trace_jsonl_format () =
  let contents = with_temp_trace ~format:Trace.Jsonl ~every:2 6 in
  let lines =
    String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
  in
  (* 1 process line + events 0, 2, 4 *)
  Alcotest.(check int) "line count" 4 (List.length lines);
  List.iter
    (fun l ->
      match Json.of_string l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable line %s: %s" l e)
    lines

let test_format_of_filename () =
  Alcotest.(check bool) "jsonl" true
    (Trace.format_of_filename "t.jsonl" = Trace.Jsonl);
  Alcotest.(check bool) "json" true
    (Trace.format_of_filename "t.json" = Trace.Chrome)

(* --- machine-readable summary (the --json schema) -------------------- *)

let test_summary_golden_keys () =
  let pipe = run_kernel "levioso" in
  let text =
    Json.to_string
      (Summary.runs [ Summary.of_pipeline ~workload:"kernel" ~policy:"levioso" pipe ])
  in
  (* must survive a print/parse roundtrip *)
  let j = Json.of_string_exn text in
  let run = List.hd (Json.to_list_exn (Json.member_exn "runs" j)) in
  Alcotest.(check string) "workload" "kernel"
    (Json.to_string_exn (Json.member_exn "workload" run));
  let stats = Json.member_exn "stats" run in
  List.iter
    (fun key -> ignore (Json.to_int_exn (Json.member_exn key stats)))
    [
      "cycles"; "committed"; "mispredicts"; "policy_stall_cycles";
      "transmit_stall_cycles"; "wrong_path_transmits"; "max_rob_occupancy";
    ];
  Alcotest.(check bool) "ipc positive" true
    (Json.to_float_exn (Json.member_exn "ipc" stats) > 0.0);
  let cache = Json.member_exn "cache" run in
  List.iter
    (fun key -> ignore (Json.to_int_exn (Json.member_exn key cache)))
    [ "l1_hits"; "l1_misses"; "l2_hits"; "l2_misses" ];
  let by_cause = Json.member_exn "by_cause" (Json.member_exn "stalls" run) in
  let cause_sum =
    List.fold_left
      (fun acc c ->
        acc
        + Json.to_int_exn (Json.member_exn (Stall.cause_to_string c) by_cause))
      0 Stall.all_causes
  in
  Alcotest.(check int) "stall sum consistent"
    (Json.to_int_exn
       (Json.member_exn "total" (Json.member_exn "stalls" run)))
    cause_sum;
  (* the acceptance-criterion consistency: gate charges = legacy counter *)
  Alcotest.(check int) "gate = policy_stall_cycles"
    (Json.to_int_exn (Json.member_exn "policy_stall_cycles" stats))
    (Json.to_int_exn (Json.member_exn "policy_gate" by_cause))

(* --- O(1) wrong-path transmit recording ------------------------------ *)

let test_wrong_path_counter_tracks_length () =
  let s = Sim_stats.create () in
  for i = 0 to 99 do
    Sim_stats.record_wrong_path_transmit s ~branch_pc:i ~pc:i
  done;
  Alcotest.(check int) "count field" 100 s.Sim_stats.wrong_path_transmit_count;
  Alcotest.(check int) "list length" 100
    (List.length s.Sim_stats.wrong_path_transmits)

(* --- schema versioning ---------------------------------------------- *)

module Schema = Levioso_telemetry.Schema

let test_schema_tag_and_check () =
  let tagged = Schema.tag [ ("x", Json.Int 1) ] in
  Alcotest.(check bool) "tagged passes" true (Schema.check tagged = Ok ());
  Alcotest.(check int)
    "version field first"
    Schema.version
    (Json.to_int_exn (Json.member_exn "schema_version" tagged));
  Alcotest.(check bool)
    "untagged fails" true
    (Result.is_error (Schema.check (Json.Obj [ ("x", Json.Int 1) ])));
  Alcotest.(check bool)
    "wrong version fails" true
    (Result.is_error
       (Schema.check
          (Json.Obj [ ("schema_version", Json.Int (Schema.version + 1)) ])));
  match Schema.check ~what:"history" (Json.Obj []) with
  | Error msg ->
    Alcotest.(check bool)
      "error names the artifact" true
      (String.length msg >= 7 && String.sub msg 0 7 = "history")
  | Ok () -> Alcotest.fail "expected a version error"

(* --- non-finite float policy ----------------------------------------- *)

let test_json_nonfinite_policy () =
  Alcotest.(check bool) "nan sanitizes" true (Json.float Float.nan = Json.Null);
  Alcotest.(check bool)
    "inf sanitizes" true
    (Json.float Float.infinity = Json.Null);
  Alcotest.(check bool)
    "-inf sanitizes" true
    (Json.float Float.neg_infinity = Json.Null);
  Alcotest.(check bool) "finite passes" true (Json.float 2.5 = Json.Float 2.5);
  List.iter
    (fun f ->
      match Json.to_string (Json.Obj [ ("x", Json.Float f) ]) with
      | (_ : string) -> Alcotest.fail "printing a non-finite float must raise"
      | exception Invalid_argument _ -> ())
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* Every tree the sanitizing constructors can build survives a print ->
   parse round trip bit-exactly (generator restricted to exactly
   representable floats). *)
let test_json_roundtrip_property () =
  for seed = 0 to 249 do
    let v = Levioso_fuzz.Gen.json seed in
    List.iter
      (fun minify ->
        match Json.of_string (Json.to_string ~minify v) with
        | Ok parsed ->
          if parsed <> v then
            Alcotest.failf "seed %d (minify %b): %s reparsed as %s" seed minify
              (Json.to_string ~minify:true v)
              (Json.to_string ~minify:true parsed)
        | Error msg ->
          Alcotest.failf "seed %d (minify %b): parse error %s" seed minify msg)
      [ false; true ]
  done

(* --- reservoir histograms -------------------------------------------- *)

let test_reservoir_bounds_memory () =
  let r = Registry.create () in
  let h = Registry.histogram ~bound:1024 r "lat" in
  (* 1M observations, uniform over [0, 1000) by construction *)
  for i = 0 to 999_999 do
    Registry.Histogram.observe h (i mod 1000)
  done;
  Alcotest.(check int) "count exact" 1_000_000 (Registry.Histogram.count h);
  Alcotest.(check int) "stored = bound" 1024 (Registry.Histogram.stored h);
  Alcotest.(check int) "max exact" 999 (Registry.Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean exact" 499.5 (Registry.Histogram.mean h);
  let p50 = Registry.Histogram.percentile h 50.0 in
  let p95 = Registry.Histogram.percentile h 95.0 in
  (* sampled percentiles: 4-sigma tolerance for a 1024-sample reservoir *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 %d within tolerance" p50)
    true
    (abs (p50 - 500) <= 65);
  Alcotest.(check bool)
    (Printf.sprintf "p95 %d within tolerance" p95)
    true
    (abs (p95 - 950) <= 40);
  (* deterministic: same name, same stream -> same reservoir *)
  let r2 = Registry.create () in
  let h2 = Registry.histogram ~bound:1024 r2 "lat" in
  for i = 0 to 999_999 do
    Registry.Histogram.observe h2 (i mod 1000)
  done;
  Alcotest.(check int)
    "deterministic p95" p95
    (Registry.Histogram.percentile h2 95.0)

let test_reservoir_json_schema_matches_unbounded () =
  let keys j =
    match j with
    | Json.Obj fields -> List.map fst fields
    | _ -> []
  in
  let render bound =
    let r = Registry.create () in
    let h = Registry.histogram ?bound r "lat" in
    for i = 1 to 100 do
      Registry.Histogram.observe h i
    done;
    keys (Json.member_exn "lat" (Registry.to_json r))
  in
  Alcotest.(check (list string))
    "same keys" (render None)
    (render (Some 16))

let test_reservoir_exact_under_bound () =
  let r = Registry.create () in
  let h = Registry.histogram ~bound:1000 r "lat" in
  for i = 1 to 100 do
    Registry.Histogram.observe h i
  done;
  (* under the bound nothing is sampled: exact percentiles *)
  Alcotest.(check int) "p50 exact" 50 (Registry.Histogram.percentile h 50.0);
  Alcotest.(check int) "p95 exact" 95 (Registry.Histogram.percentile h 95.0);
  Alcotest.(check bool)
    "negative bound rejected" true
    (match Registry.histogram ~bound:(-1) r "neg" with
    | (_ : Registry.Histogram.h) -> false
    | exception Invalid_argument _ -> true)

(* --- monitor gauges / OpenMetrics exposition -------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_monitor_gauge_sanitization () =
  let m = Monitor.create ~label:"t" () in
  (* a hostile name must come out in the OpenMetrics charset *)
  Monitor.set_gauge m ~help:"weird" "queue depth (cells)!" 3.;
  let text = Monitor.openmetrics m in
  Alcotest.(check bool) "name sanitized to the metric charset" true
    (contains text "levioso_queue_depth__cells__{job=\"t\"} 3");
  Alcotest.(check bool) "raw name absent" false
    (contains text "queue depth (cells)");
  (* sanitized collisions update in place rather than duplicating *)
  Monitor.set_gauge m "queue depth {cells}!" 7.;
  let text = Monitor.openmetrics m in
  Alcotest.(check bool) "collided name updated, not duplicated" true
    (contains text "levioso_queue_depth__cells__{job=\"t\"} 7"
    && not (contains text "levioso_queue_depth__cells__{job=\"t\"} 3"));
  Monitor.close m

let test_monitor_help_escaping () =
  let m = Monitor.create ~label:"t" () in
  Monitor.set_gauge m ~help:"line one\nline two \\ slash" "g" 1.;
  let text = Monitor.openmetrics m in
  (* the newline must be escaped or the exposition format is corrupt *)
  Alcotest.(check bool) "HELP newline escaped" true
    (contains text "line one\\nline two");
  Alcotest.(check bool) "HELP backslash escaped" true
    (contains text "\\\\ slash");
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] <> '#' then
        Alcotest.(check bool)
          ("sample line well-formed: " ^ line)
          true
          (contains line "levioso_" || line = "# EOF"))
    (String.split_on_char '\n' text);
  Monitor.close m

let test_monitor_metric_ordering_stable () =
  let m = Monitor.create ~label:"t" () in
  Monitor.set_gauge m "alpha" 1.;
  Monitor.set_gauge m "beta" 2.;
  Monitor.set_gauge m "gamma" 3.;
  let order text =
    List.filter_map
      (fun name ->
        let rec find i =
          if i + String.length name > String.length text then None
          else if String.sub text i (String.length name) = name then Some i
          else find (i + 1)
        in
        find 0 |> Option.map (fun i -> (i, name)))
      [ "levioso_alpha"; "levioso_beta"; "levioso_gamma" ]
    |> List.sort compare
    |> List.map snd
  in
  let before = order (Monitor.openmetrics m) in
  Alcotest.(check (list string)) "insertion order"
    [ "levioso_alpha"; "levioso_beta"; "levioso_gamma" ]
    before;
  (* updating an early gauge must not reshuffle the exposition *)
  Monitor.set_gauge m "beta" 9.;
  Monitor.set_gauge m "alpha" 8.;
  Alcotest.(check (list string)) "stable across updates" before
    (order (Monitor.openmetrics m));
  Monitor.close m

let test_monitor_histogram_exposition () =
  let m = Monitor.create ~label:"t" () in
  Monitor.set_histogram m ~help:"latency" "lat_seconds"
    ~buckets:[ (0.001, 2); (0.01, 5) ]
    ~sum:0.025 ~count:6;
  let text = Monitor.openmetrics m in
  Alcotest.(check bool) "TYPE histogram declared" true
    (contains text "# TYPE levioso_lat_seconds histogram");
  Alcotest.(check bool) "le buckets rendered" true
    (contains text "levioso_lat_seconds_bucket{"
    && contains text "le=\"0.001\"} 2"
    && contains text "le=\"0.01\"} 5");
  Alcotest.(check bool) "+Inf bucket carries the total count" true
    (contains text "le=\"+Inf\"} 6");
  Alcotest.(check bool) "sum and count series" true
    (contains text "levioso_lat_seconds_sum{job=\"t\"} 0.025"
    && contains text "levioso_lat_seconds_count{job=\"t\"} 6");
  (* JSON snapshot carries the compact echo *)
  let j = Monitor.snapshot_json m in
  (match Option.bind (Json.member "histograms" j) (Json.member "lat_seconds") with
  | Some h ->
    Alcotest.(check bool) "json echo has count" true
      (Json.member "count" h = Some (Json.Int 6))
  | None -> Alcotest.fail "histogram missing from the JSON snapshot");
  Monitor.close m

let test_monitor_process_metrics () =
  let m = Monitor.create ~label:"t" () in
  Monitor.set_gauge m "queue_depth" 1.;
  let text = Monitor.openmetrics m in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exposed") true (contains text name))
    [
      "levioso_uptime_seconds"; "levioso_gc_heap_words";
      "levioso_gc_top_heap_words"; "levioso_gc_minor_collections";
      "levioso_gc_major_collections"; "levioso_gc_minor_words";
    ];
  let j = Monitor.snapshot_json m in
  (match Json.member "process" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun name ->
        match List.assoc_opt name fields with
        | Some (Json.Float v) ->
          Alcotest.(check bool) (name ^ " non-negative") true (v >= 0.)
        | _ -> Alcotest.fail (name ^ " missing from the process object"))
      [ "uptime_seconds"; "gc_heap_words"; "gc_minor_collections" ];
    (* the major heap of a live process is never empty *)
    (match List.assoc_opt "gc_heap_words" fields with
    | Some (Json.Float v) ->
      Alcotest.(check bool) "heap words positive" true (v > 0.)
    | _ -> ())
  | _ -> Alcotest.fail "snapshot has no process object");
  Monitor.close m

(* --- schema sweep over every artifact family -------------------------- *)

(* One producer per schema-tagged artifact the toolchain writes.  Each
   must pass Schema.check as produced, and be rejected — with an error
   that names the artifact — when the version is wrong or missing, so a
   consumer of any family gets the same friendly failure instead of a
   field-shape crash deeper in. *)
let test_schema_check_sweep () =
  let module Tsdb = Levioso_telemetry.Tsdb in
  let module Flight = Levioso_telemetry.Flight in
  let module Span = Levioso_telemetry.Span in
  let module Protocol = Levioso_serve.Protocol in
  let monitor = Monitor.create ~label:"t" () in
  let artifacts =
    [
      ("run summary", Summary.runs []);
      ( "bench matrix",
        Schema.tag
          [
            ("schema", Json.String "levioso-bench-matrix/v1");
            ("matrix", Json.List []);
          ] );
      ("progress snapshot", Monitor.snapshot_json monitor);
      ("chrome trace", Span.to_chrome []);
      ( "access record",
        Span.access_record ~ts:1. ~trace:"tr" ~request:"submit" ~index:0
          ~workload:"stream" ~policy:"unsafe" ~source:"sim"
          ~stages:[ ("queue", 0.001) ]
          ~total_s:0.002 () );
      ("tsdb sample", Tsdb.sample_to_json { Tsdb.ts = 1.; fields = [ ("a", 1.) ] });
      ( "tsdb alert",
        Tsdb.alert_to_json { Tsdb.a_ts = 1.; rule = "a > 0"; firing = true } );
      ("post-mortem", Flight.dump (Flight.create ()) ~reason:"test" ~ts:1.);
      ("history", Protocol.history_doc []);
    ]
  in
  Monitor.close monitor;
  let with_version j v =
    match j with
    | Json.Obj fields ->
      Json.Obj (("schema_version", Json.Int v) :: List.remove_assoc "schema_version" fields)
    | j -> j
  in
  let without_version j =
    match j with
    | Json.Obj fields -> Json.Obj (List.remove_assoc "schema_version" fields)
    | j -> j
  in
  List.iter
    (fun (what, doc) ->
      Alcotest.(check bool) (what ^ ": as produced passes") true
        (Schema.check ~what doc = Ok ());
      (match Schema.check ~what (with_version doc (Schema.version + 1)) with
      | Ok () -> Alcotest.failf "%s: future version accepted" what
      | Error msg ->
        Alcotest.(check bool) (what ^ ": version error names it") true
          (contains msg what && contains msg "expected"));
      match Schema.check ~what (without_version doc) with
      | Ok () -> Alcotest.failf "%s: untagged accepted" what
      | Error msg ->
        Alcotest.(check bool) (what ^ ": missing-tag error names it") true
          (contains msg what && contains msg "missing schema_version"))
    artifacts

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "json accessors" `Quick test_json_accessors;
      Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
      Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
      Alcotest.test_case "registry scoping" `Quick test_registry_scoping;
      Alcotest.test_case "registry json" `Quick test_registry_json;
      Alcotest.test_case "stall table" `Quick test_stall_table;
      Alcotest.test_case "attribution = policy stalls" `Quick
        test_attribution_matches_policy_stalls;
      Alcotest.test_case "unsafe has no gate charges" `Quick
        test_attribution_unsafe_has_no_policy_gate;
      Alcotest.test_case "per-pc consistency" `Quick
        test_attribution_per_pc_consistency;
      Alcotest.test_case "trace sampling" `Quick test_trace_sampling;
      Alcotest.test_case "trace chrome format" `Quick test_trace_chrome_format;
      Alcotest.test_case "trace jsonl format" `Quick test_trace_jsonl_format;
      Alcotest.test_case "trace format by extension" `Quick
        test_format_of_filename;
      Alcotest.test_case "summary golden keys" `Quick test_summary_golden_keys;
      Alcotest.test_case "wrong-path record is O(1)" `Quick
        test_wrong_path_counter_tracks_length;
      Alcotest.test_case "schema tag and check" `Quick
        test_schema_tag_and_check;
      Alcotest.test_case "json non-finite policy" `Quick
        test_json_nonfinite_policy;
      Alcotest.test_case "json roundtrip property" `Quick
        test_json_roundtrip_property;
      Alcotest.test_case "reservoir bounds memory" `Quick
        test_reservoir_bounds_memory;
      Alcotest.test_case "reservoir json schema" `Quick
        test_reservoir_json_schema_matches_unbounded;
      Alcotest.test_case "reservoir exact under bound" `Quick
        test_reservoir_exact_under_bound;
      Alcotest.test_case "monitor gauge sanitization" `Quick
        test_monitor_gauge_sanitization;
      Alcotest.test_case "monitor HELP escaping" `Quick
        test_monitor_help_escaping;
      Alcotest.test_case "monitor metric ordering stable" `Quick
        test_monitor_metric_ordering_stable;
      Alcotest.test_case "monitor histogram exposition" `Quick
        test_monitor_histogram_exposition;
      Alcotest.test_case "monitor process self-metrics" `Quick
        test_monitor_process_metrics;
      Alcotest.test_case "schema sweep over every artifact" `Quick
        test_schema_check_sweep;
    ] )
