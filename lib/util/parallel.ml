type task = Task of (unit -> unit) | Stop

type t = {
  pool_size : int;
  max_pending : int option;
  tasks : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  not_full : Condition.t;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
}

let default_size () = Domain.recommended_domain_count ()

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks do
    Condition.wait pool.nonempty pool.mutex
  done;
  let task = Queue.pop pool.tasks in
  Condition.signal pool.not_full;
  Mutex.unlock pool.mutex;
  match task with
  | Stop -> ()
  | Task f ->
    f ();
    worker_loop pool

let create ?size ?max_pending () =
  let size =
    match size with
    | Some n -> max 1 n
    | None -> default_size ()
  in
  let pool =
    {
      pool_size = size;
      max_pending = Option.map (max 1) max_pending;
      tasks = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      not_full = Condition.create ();
      workers = [];
      stopped = false;
    }
  in
  if size > 1 then
    pool.workers <-
      List.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = t.pool_size

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.tasks in
  Mutex.unlock t.mutex;
  n

(* [Stop] bypasses the bound so {!shutdown} can always drain a full
   queue; real work blocks here until a worker frees a slot, which is
   the daemon's backpressure.  [t.stopped] is checked under the mutex:
   a submitter blocked on a full queue when {!shutdown} begins is woken
   by the shutdown broadcast and rejected, instead of enqueueing a task
   behind the [Stop] markers that no worker will ever run (which would
   strand its {!await} forever). *)
let submit t task =
  Mutex.lock t.mutex;
  (match (t.max_pending, task) with
  | Some m, Task _ ->
    while (not t.stopped) && Queue.length t.tasks >= m do
      Condition.wait t.not_full t.mutex
    done
  | _ -> ());
  match (t.stopped, task) with
  | true, Task _ ->
    Mutex.unlock t.mutex;
    invalid_arg "Parallel.submit: pool has been shut down"
  | _ ->
    Queue.push task t.tasks;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    (* wake submitters blocked on a full queue so they observe the stop *)
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex;
    List.iter (fun _ -> submit t Stop) t.workers;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* One slot per input element; a worker never touches another element's
   slot, and the caller reads slots only after the countdown says every
   element is done (synchronized through [done_mutex]), so slot access is
   race-free. *)
type 'b slot =
  | Pending
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

let ensure_live t what =
  Mutex.lock t.mutex;
  let stopped = t.stopped in
  Mutex.unlock t.mutex;
  if stopped then invalid_arg (what ^ ": pool has been shut down")

let map t f xs =
  ensure_live t "Parallel.map";
  if t.pool_size <= 1 then List.map f xs
  else begin
    let n = List.length xs in
    if n = 0 then []
    else begin
      let slots = Array.make n Pending in
      let remaining = Atomic.make n in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      List.iteri
        (fun i x ->
          submit t
            (Task
               (fun () ->
                 (slots.(i) <-
                   (match f x with
                   | y -> Value y
                   | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
                 if Atomic.fetch_and_add remaining (-1) = 1 then begin
                   Mutex.lock done_mutex;
                   Condition.broadcast done_cond;
                   Mutex.unlock done_mutex
                 end)))
        xs;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (* The lowest-indexed failure wins, independent of completion order,
         so error reporting is as deterministic as the results. *)
      Array.iter
        (function
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Pending | Value _ -> ())
        slots;
      List.init n (fun i ->
          match slots.(i) with
          | Value y -> y
          | Pending | Raised _ -> assert false)
    end
  end

let iter t f xs = ignore (map t (fun x -> f x) xs : unit list)

(* --- single-task futures (the daemon's scheduling primitive) --- *)

type 'a outcome =
  | Running
  | Finished of 'a
  | Failed of exn * Printexc.raw_backtrace

type times = { submitted_s : float; started_s : float; finished_s : float }

type 'a future = {
  fmu : Mutex.t;
  fcond : Condition.t;
  mutable fstate : 'a outcome;
  fsubmitted : float;
  (* stamped by the worker under [fmu] together with the final state, so
     a reader that observed completion also observes the stamps *)
  mutable fstarted : float;
  mutable ffinished : float;
}

let async t f =
  ensure_live t "Parallel.async";
  let fut =
    {
      fmu = Mutex.create ();
      fcond = Condition.create ();
      fstate = Running;
      fsubmitted = Unix.gettimeofday ();
      fstarted = 0.;
      ffinished = 0.;
    }
  in
  let run () =
    let started = Unix.gettimeofday () in
    let result =
      match f () with
      | y -> Finished y
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    let finished = Unix.gettimeofday () in
    Mutex.lock fut.fmu;
    fut.fstarted <- started;
    fut.ffinished <- finished;
    fut.fstate <- result;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.fmu
  in
  (* A serial pool computes at submission time, in the calling thread —
     same degenerate path as [map]. *)
  if t.pool_size <= 1 then run () else submit t (Task run);
  fut

let await fut =
  Mutex.lock fut.fmu;
  while (match fut.fstate with Running -> true | _ -> false) do
    Condition.wait fut.fcond fut.fmu
  done;
  let state = fut.fstate in
  Mutex.unlock fut.fmu;
  match state with
  | Finished y -> y
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Running -> assert false

let peek fut =
  Mutex.lock fut.fmu;
  let done_ = (match fut.fstate with Running -> false | _ -> true) in
  Mutex.unlock fut.fmu;
  done_

let times fut =
  Mutex.lock fut.fmu;
  let r =
    match fut.fstate with
    | Running -> None
    | Finished _ | Failed _ ->
      Some
        {
          submitted_s = fut.fsubmitted;
          started_s = fut.fstarted;
          finished_s = fut.ffinished;
        }
  in
  Mutex.unlock fut.fmu;
  r

let with_pool ?size ?max_pending f =
  let pool = create ?size ?max_pending () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
