(** Persistence of fuzzing reproductions as self-describing [.levir]
    files.

    A corpus file is a valid {!Levioso_ir.Parser} listing whose leading
    comment lines carry machine-readable metadata ([; key: value]):
    which oracle failed, the generator seed, the recorded verdict and a
    one-line detail, plus (for compiler-path failures) the original Lev
    source embedded as [; src:] lines.  Because metadata travels in
    comments, every corpus file also loads in any tool that reads plain
    listings.

    Checked-in corpus files double as regression anchors:
    {!replay} re-runs the named oracle at the recorded seed and checks
    that the live verdict still matches the recorded one — a [pass]
    entry failing (a regression) or a [fail] entry passing (a stale
    repro that should be pruned or re-recorded) are both reported. *)

type entry = {
  oracle : string;  (** oracle name ({!Oracle.names}) *)
  seed : int;  (** generator seed that produced the input *)
  verdict : string;  (** ["fail"] or ["pass"] *)
  detail : string;  (** one-line description of the divergence *)
  source : string option;  (** original Lev source, when applicable *)
  leak : string option;
      (** rendered speculative leak chain ([; leak:] lines) — attached
          by the campaign to noninterference failures *)
  program : Levioso_ir.Ir.program;  (** the (possibly shrunk) input *)
}

val default_dir : string
(** ["fuzz/corpus"], relative to the repository root. *)

val path_for : dir:string -> entry -> string
(** Deterministic file name: [<dir>/<oracle>-seed<seed>.levir]. *)

val save : dir:string -> entry -> string
(** Write (creating [dir] if needed) and return the path. *)

val load : string -> (entry, string) result
(** Parse a corpus file back; [Error] on missing metadata or an
    unparseable program body. *)

val files : string -> string list
(** The [.levir] files under a directory, sorted; empty if the
    directory does not exist. *)

val replay :
  config:Levioso_uarch.Config.t -> entry -> (unit, string) result
(** Re-run [entry.oracle] at [entry.seed] and compare the live verdict
    with the recorded one (see above).  [Error] also covers unknown
    oracle names. *)
