(** The fuzzing campaign driver: a deterministic, optionally parallel
    loop over (oracle, seed) pairs with shrinking and corpus persistence
    on failure.

    Iteration [i] runs oracle [i mod n] on a seed derived from the base
    seed by a SplitMix64 finalizer — O(1) random access, so any subset
    of iterations can be re-run independently and worker scheduling
    cannot perturb inputs.  Results are folded into counters {e in input
    order} on the calling domain, so a run with [jobs = k] is
    bit-identical to the same run with [jobs = 1] (shrinking and corpus
    writes also happen on the calling domain, serially).

    [time_budget] trades that determinism for wall-clock control: the
    loop stops at the first chunk boundary past the budget, so the
    iteration count then depends on machine speed. *)

type options = {
  seed : int;  (** base seed; iteration seeds derive from it *)
  iters : int;
      (** total iterations; [0] means unlimited (requires
          [time_budget]) *)
  time_budget : float option;  (** wall-clock seconds, [None] = no cap *)
  jobs : int;  (** worker domains; [<= 1] runs serially in-process *)
  oracles : Oracle.t list;  (** round-robin rotation, in order *)
  corpus_dir : string option;
      (** where to persist shrunk failures; [None] disables
          persistence *)
  shrink_budget : int;  (** predicate evaluations per failure *)
  max_failures : int option;
      (** stop at the first chunk boundary once this many failures have
          been collected (shrinking every failure of a badly broken
          policy is expensive and redundant); [None] = keep going *)
  config : Levioso_uarch.Config.t;  (** simulated machine *)
  on_progress : (executed:int -> failures:int -> unit) option;
      (** called on the calling domain after each chunk is folded in —
          long campaigns are no longer silent until the end.  Strictly
          observational (feed it a [Levioso_telemetry.Monitor]): it must
          not influence the run, and the report stays bit-identical with
          or without it. *)
}

val default_options : options
(** seed 1, 500 iterations, no time budget, serial, every oracle,
    {!Corpus.default_dir}, shrink budget 2000, at most 20 failures,
    {!Gen.default_config}, no progress callback. *)

type failure = {
  oracle : string;
  seed : int;  (** the derived iteration seed (re-runs the case alone) *)
  detail : string;
  original_len : int;  (** instructions before shrinking *)
  shrunk_len : int;  (** instructions after shrinking *)
  program : Levioso_ir.Ir.program;  (** the shrunk reproduction *)
  source : string option;
  path : string option;  (** corpus file, when persistence is on *)
  leak : string option;
      (** rendered speculative leak chain for the shrunk reproduction
          (noninterference failures only — see {!Oracle.fail}) *)
  leak_path : string option;
      (** [.leaktrace] sidecar next to [path] holding [leak], for CI
          artifact upload *)
}

type report = {
  base_seed : int;
  iterations : int;  (** iterations actually executed *)
  failures : failure list;  (** in iteration order *)
  counters : Levioso_telemetry.Registry.t;
      (** [<oracle>/runs], [<oracle>/failures], and each oracle's extra
          counters (e.g. [noninterference/ni_unsafe_divergence]) *)
}

val iter_seed : int -> int -> int
(** [iter_seed base i] — the derived seed for iteration [i] (exposed so
    tests and corpus replays can name individual cases). *)

val run : options -> report
(** @raise Invalid_argument when [iters = 0] without a [time_budget]. *)

val to_json : report -> Levioso_telemetry.Json.t
(** Machine-readable report.  Deliberately excludes wall-clock time and
    job count, so byte-equality across [jobs] settings holds. *)

val print : out_channel -> report -> unit
(** Human-readable summary (same determinism guarantee). *)
