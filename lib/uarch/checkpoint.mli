(** Architectural + microarchitectural checkpoints.

    A checkpoint is everything the two-tier engine needs to resume
    detailed simulation at an architectural point: registers, memory,
    PC/retired-count, both cache levels' tag/LRU state and the full
    branch-predictor state (learned tables and history).  Captures are
    deep copies — mutating the live machine afterwards never corrupts a
    checkpoint, and one checkpoint can seed any number of independent
    resumed runs. *)

type t

val capture :
  Levioso_ir.Emulator.state ->
  hierarchy:Cache.Hierarchy.h ->
  predictor:Predictor.t ->
  t
(** Snapshot the fast tier (the emulator carries the architectural state;
    the warmed hierarchy/predictor travel alongside it). *)

val restore_emulator : t -> Levioso_ir.Emulator.state -> unit
(** Roll an emulator (over the same program shape) back to the
    checkpoint.  @raise Invalid_argument on a memory-size mismatch. *)

val restore_uarch :
  t -> hierarchy:Cache.Hierarchy.h -> predictor:Predictor.t -> unit
(** Restore the microarchitectural half into existing structures.
    @raise Invalid_argument on geometry/kind mismatch. *)

val to_pipeline :
  ?registry:Levioso_telemetry.Registry.t ->
  ?audit:Levioso_telemetry.Audit.t ->
  t ->
  Config.t ->
  policy:Pipeline.policy_maker ->
  Levioso_ir.Ir.program ->
  Pipeline.t
(** Build a fresh detailed pipeline resumed from the checkpoint: private
    copies of memory, a new hierarchy/predictor restored from the
    snapshot, registers and fetch PC warm-started.  The checkpoint is
    not aliased.  @raise Invalid_argument when [cfg.mem_words] differs
    from the checkpointed memory size. *)
